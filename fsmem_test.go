package fsmem_test

import (
	"testing"

	"fsmem"
)

func TestPublicAPISimulate(t *testing.T) {
	mix, err := fsmem.RateWorkload("zeusmp", 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fsmem.NewConfig(mix, fsmem.FSRankPart)
	cfg.TargetReads = 1500
	res, err := fsmem.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.TotalReads() < 1500 {
		t.Fatalf("completed %d reads", res.Run.TotalReads())
	}
	base := cfg
	base.Scheduler = fsmem.Baseline
	bres, err := fsmem.Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	w, err := fsmem.WeightedIPC(res.Run, bres.Run)
	if err != nil {
		t.Fatal(err)
	}
	if w <= 0 || w > 8.01 {
		t.Errorf("weighted IPC %v out of range", w)
	}
}

func TestPublicAPISolver(t *testing.T) {
	p := fsmem.DDR3x1600()
	l, err := fsmem.MinSlotSpacing(fsmem.FixedData, fsmem.PartitionRank, p)
	if err != nil || l != 7 {
		t.Fatalf("MinSlotSpacing = %d, %v; want 7", l, err)
	}
	table := fsmem.SolverTable(p)
	if len(table) != 9 {
		t.Errorf("solver table has %d entries, want 9", len(table))
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	names := fsmem.Workloads()
	if len(names) < 10 {
		t.Fatalf("only %d workloads", len(names))
	}
	m1, err1 := fsmem.Mix1()
	m2, err2 := fsmem.Mix2()
	if err1 != nil || err2 != nil || len(m1.Profiles) != 8 || len(m2.Profiles) != 8 {
		t.Errorf("mixes malformed: %v, %v", err1, err2)
	}
	p := fsmem.SyntheticWorkload("probe", 12)
	if p.MPKI() < 11.9 || p.MPKI() > 12.1 {
		t.Errorf("synthetic MPKI %v", p.MPKI())
	}
}

func TestPublicAPILeakage(t *testing.T) {
	att, err := fsmem.RateWorkload("mcf", 1)
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := fsmem.CollectLeakageProfile(fsmem.FSRankPart, att.Profiles[0],
		fsmem.SyntheticWorkload("idle", 0.01), 8, 10_000, 60_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	loud, err := fsmem.CollectLeakageProfile(fsmem.FSRankPart, att.Profiles[0],
		fsmem.SyntheticWorkload("hog", 45), 8, 10_000, 60_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !fsmem.ProfilesIdentical(quiet, loud) {
		t.Fatal("public API leakage check failed")
	}
}

func TestPublicAPIEnergy(t *testing.T) {
	m := fsmem.NewEnergyModel(fsmem.DDR3x1600())
	if m.ActivateEnergy() <= 0 {
		t.Error("activate energy must be positive")
	}
}
