GO ?= go

.PHONY: tier1 build vet test race fmt staticcheck bench bench-baseline benchdiff chaos audit sweep cover fuzz trace clean

# COVER_FLOOR is the statement-coverage percentage `make cover` enforces;
# FUZZTIME bounds each `make fuzz` target run.
COVER_FLOOR ?= 70
FUZZTIME ?= 30s

# tier1 is the gate every change must pass: full build, vet, the test suite
# (plain and under the race detector), and gofmt cleanliness. CI runs the
# same set plus staticcheck and the determinism / bench-regression gates.
tier1: build vet test race fmt

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# RACE_TIMEOUT widens the per-package deadline: the simulation-heavy suites
# (experiments, leakage) exceed go test's default 10m under the race
# detector on single-core machines.
RACE_TIMEOUT ?= 30m

race:
	$(GO) test -race -timeout $(RACE_TIMEOUT) ./...

# fmt fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# staticcheck runs if the binary is on PATH and is otherwise a no-op with a
# hint, so tier1 stays runnable on machines that cannot install tools.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2024.1.1)"; fi

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-baseline refreshes the committed regression baseline from a fresh
# 3-count run; benchdiff gates the current tree against it.
bench-baseline:
	$(GO) test -bench=. -benchmem -benchtime=1x -count=3 -run=^$$ . | $(GO) run ./cmd/benchdiff -write -note "make bench-baseline"

benchdiff:
	$(GO) test -bench=. -benchmem -benchtime=1x -count=3 -run=^$$ . | $(GO) run ./cmd/benchdiff -src . -trend \
		-ratio-max BenchmarkSimulateFastForwardXalanRate2:BenchmarkSimulateDenseXalanRate2:0.5 \
		-ratio-max BenchmarkKolmogorovSmirnov:BenchmarkKolmogorovSmirnovInsertionSort:0.25

# chaos runs the fault-injection campaign against every scheduler; it exits
# non-zero if any Fixed Service variant lets a fault through undetected.
chaos:
	$(GO) run ./cmd/chaos

# audit runs the adversarial leakage auditor over every scheduler and
# prints one leakage certificate per line (JSONL) on stdout.
audit:
	$(GO) run ./cmd/audit

sweep:
	$(GO) run ./cmd/sweep -fig all

# cover measures statement coverage across every package (tests in one
# package exercise code in others, hence -coverpkg=./...) and fails if the
# total drops below COVER_FLOOR percent. Writes cover.out for tooling.
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./... ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(t+0 >= f+0) }' || \
	{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# fuzz runs both native fuzz targets (config parsing and trace-file
# ingestion) for FUZZTIME each.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzLoad -fuzztime=$(FUZZTIME) ./internal/config
	$(GO) test -run='^$$' -fuzz=FuzzReadTrace -fuzztime=$(FUZZTIME) ./internal/trace

# trace runs a small observed FS_BP simulation, exports the command stream,
# and renders it as a per-cycle timeline — a quick smoke of the whole
# observability path (tracer -> JSONL export -> tracedump).
trace:
	$(GO) run ./cmd/memsim -workload mcf -sched fs_bp -cores 2 -reads 200 -seed 7 -cmd-trace /tmp/fsmem-trace.jsonl
	$(GO) run ./cmd/tracedump /tmp/fsmem-trace.jsonl

clean:
	$(GO) clean ./...
