GO ?= go

.PHONY: tier1 build vet test race bench chaos sweep clean

# tier1 is the gate every change must pass: full build, vet, and the test
# suite under the race detector.
tier1: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# chaos runs the fault-injection campaign against every scheduler; it exits
# non-zero if any Fixed Service variant lets a fault through undetected.
chaos:
	$(GO) run ./cmd/chaos

sweep:
	$(GO) run ./cmd/sweep -figure all

clean:
	$(GO) clean ./...
