GO ?= go

.PHONY: tier1 build vet test race fmt staticcheck bench bench-baseline benchdiff chaos sweep clean

# tier1 is the gate every change must pass: full build, vet, the test suite
# (plain and under the race detector), and gofmt cleanliness. CI runs the
# same set plus staticcheck and the determinism / bench-regression gates.
tier1: build vet test race fmt

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fmt fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# staticcheck runs if the binary is on PATH and is otherwise a no-op with a
# hint, so tier1 stays runnable on machines that cannot install tools.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2024.1.1)"; fi

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-baseline refreshes the committed regression baseline from a fresh
# 3-count run; benchdiff gates the current tree against it.
bench-baseline:
	$(GO) test -bench=. -benchmem -benchtime=1x -count=3 -run=^$$ . | $(GO) run ./cmd/benchdiff -write -note "make bench-baseline"

benchdiff:
	$(GO) test -bench=. -benchmem -benchtime=1x -count=3 -run=^$$ . | $(GO) run ./cmd/benchdiff

# chaos runs the fault-injection campaign against every scheduler; it exits
# non-zero if any Fixed Service variant lets a fault through undetected.
chaos:
	$(GO) run ./cmd/chaos

sweep:
	$(GO) run ./cmd/sweep -fig all

clean:
	$(GO) clean ./...
