// Package fsmem is a cycle-accurate simulator of timing-channel-free DDR3
// memory controllers, reproducing "Avoiding Information Leakage in the
// Memory Controller with Fixed Service Policies" (Shafiee et al.,
// MICRO 2015).
//
// The library contains three layers:
//
//   - a DDR3 channel model with the full JEDEC timing-constraint set and an
//     independent command-stream checker;
//   - memory scheduling policies: an optimized non-secure FR-FCFS baseline,
//     Temporal Partitioning (Wang et al., HPCA 2014), and the paper's Fixed
//     Service (FS) family — rank-partitioned, bank-partitioned, reordered
//     bank-partitioned, no-partitioning, and triple alternation — together
//     with the constraint solver that derives each pipeline's minimal slot
//     spacing from the timing parameters;
//   - a full-system harness: ROB-modeled cores, synthetic SPEC-like
//     workloads, a sandbox prefetcher, a DDR3 energy model, leakage
//     measurement (execution-profile divergence, mutual information, covert
//     channels), and an adversarial leakage auditor that searches an attack
//     library and emits machine-readable certificates (Audit).
//
// Quick start:
//
//	mix, _ := fsmem.RateWorkload("mcf", 8)
//	cfg := fsmem.NewConfig(mix, fsmem.FSRankPart)
//	res, err := fsmem.Simulate(cfg)
//
// Every experiment in the paper's evaluation can be regenerated with
// RunFigure (or the cmd/sweep tool); see EXPERIMENTS.md for the index.
package fsmem

import (
	"context"
	"io"

	"fsmem/internal/addr"
	"fsmem/internal/audit"
	"fsmem/internal/core"
	"fsmem/internal/dram"
	"fsmem/internal/energy"
	"fsmem/internal/experiments"
	"fsmem/internal/fault"
	"fsmem/internal/fsmerr"
	"fsmem/internal/leakage"
	"fsmem/internal/obs"
	"fsmem/internal/server"
	"fsmem/internal/sim"
	"fsmem/internal/stats"
	"fsmem/internal/workload"
)

// DRAMParams is the DDR3 organization and timing parameter set (Table 1).
type DRAMParams = dram.Params

// DDR3x1600 returns the paper's DDR3-1600 configuration.
func DDR3x1600() DRAMParams { return dram.DDR3_1600() }

// DDR4x2400 returns a JESD79-4 DDR4-2400 configuration with four bank
// groups per rank; the solver and every FS variant work on it unchanged.
func DDR4x2400() DRAMParams { return dram.DDR4_2400() }

// SchedulerKind selects a memory scheduling policy.
type SchedulerKind = sim.SchedulerKind

// The available scheduling policies.
const (
	Baseline        = sim.Baseline
	TPBank          = sim.TPBank
	TPNone          = sim.TPNone
	FSRankPart      = sim.FSRankPart
	FSBankPart      = sim.FSBankPart
	FSReorderedBank = sim.FSReorderedBank
	FSNoPart        = sim.FSNoPart
	FSNoPartTriple  = sim.FSNoPartTriple
)

// Config describes one simulation run.
type Config = sim.Config

// Result is a completed run's statistics.
type Result = sim.Result

// Run is the statistics bundle of one simulation.
type Run = stats.Run

// Mix is a multiprogrammed workload (one profile per core).
type Mix = workload.Mix

// Profile is a synthetic benchmark model.
type Profile = workload.Profile

// EnergyOpts enables the paper's three FS energy optimizations.
type EnergyOpts = core.EnergyOpts

// NewConfig returns the Table 1 default configuration for a mix and policy.
func NewConfig(mix Mix, k SchedulerKind) Config { return sim.DefaultConfig(mix, k) }

// Simulate builds and runs one simulation.
func Simulate(cfg Config) (Result, error) { return sim.Simulate(cfg) }

// SimulateContext is Simulate with cooperative cancellation: a run cut
// short by the context returns an ErrCanceled error rather than partial
// statistics.
func SimulateContext(ctx context.Context, cfg Config) (Result, error) {
	return sim.SimulateContext(ctx, cfg)
}

// WeightedIPC computes the paper's throughput metric: the sum of per-domain
// IPCs normalized against the same domains under the baseline run.
func WeightedIPC(run, baseline Run) (float64, error) { return stats.WeightedIPC(run, baseline) }

// RateWorkload builds n copies of a named benchmark (the paper's rate mode).
func RateWorkload(name string, n int) (Mix, error) { return workload.Rate(name, n) }

// Workloads lists the available benchmark names.
func Workloads() []string {
	var out []string
	for _, p := range workload.All() {
		out = append(out, p.Name)
	}
	return out
}

// Mix1 and Mix2 are the paper's mixed workloads.
func Mix1() (Mix, error) { return workload.Mix1() }

// Mix2 is the paper's second mixed workload.
func Mix2() (Mix, error) { return workload.Mix2() }

// SyntheticWorkload builds an artificial profile with the given memory
// intensity in misses per kilo-instruction.
func SyntheticWorkload(name string, mpki float64) Profile { return workload.Synthetic(name, mpki) }

// Anchor selects the fixed-periodic event of the FS pipeline solver.
type Anchor = core.Anchor

// The solver anchors.
const (
	FixedData = core.FixedData
	FixedRAS  = core.FixedRAS
	FixedCAS  = core.FixedCAS
)

// PartitionKind is a spatial partitioning policy.
type PartitionKind = addr.PartitionKind

// The spatial partitioning policies.
const (
	PartitionNone    = addr.PartitionNone
	PartitionRank    = addr.PartitionRank
	PartitionBank    = addr.PartitionBank
	PartitionChannel = addr.PartitionChannel
)

// Routing selects how the multi-channel fabric maps requests to channels:
// page-colored by security domain (each domain owns whole channels, so the
// single-channel non-interference argument composes) or address-interleaved
// by column bits (the conventional bandwidth-first layout, which shares
// every channel across domains and is what the auditor flags as LEAKY under
// a Baseline scheduler).
type Routing = addr.Routing

// The fabric routing policies.
const (
	RouteColored     = addr.RouteColored
	RouteInterleaved = addr.RouteInterleaved
)

// RoutingByName parses "colored" or "interleaved" (the cmd flag spellings).
func RoutingByName(name string) (Routing, error) { return addr.RoutingByName(name) }

// MinSlotSpacing solves the paper's Equations 1-4 generalization: the
// smallest conflict-free slot spacing l for an anchor and partitioning mode
// at the given timings (7 for rank partitioning with fixed periodic data at
// the Table 1 parameters).
func MinSlotSpacing(a Anchor, mode PartitionKind, p DRAMParams) (int, error) {
	return core.MinL(a, mode, p)
}

// SolverTable returns minimal l for every anchor/mode combination.
func SolverTable(p DRAMParams) map[string]int { return core.SolverTable(p) }

// MinSlotSpacingRotation solves the G-way bank-group rotation generalizing
// the paper's triple alternation (G=3 on DDR3 recovers l=15; DDR4's native
// bank groups do better via the short cross-group timings).
func MinSlotSpacingRotation(groups int, a Anchor, p DRAMParams) (int, error) {
	return core.MinLRotation(groups, a, p)
}

// SolveConsecutive reproduces the §3.1 N-consecutive-transactions analysis.
func SolveConsecutive(n int, p DRAMParams) (core.ConsecutivePlan, error) {
	return core.SolveConsecutive(n, p)
}

// ExperimentSettings scales the figure harness.
type ExperimentSettings = experiments.Settings

// FigureTable is one regenerated figure.
type FigureTable = experiments.Table

// RunFigures regenerates every evaluation figure at the given scale.
// Figures that fail are skipped; their errors are aggregated in the second
// return value alongside the tables that did regenerate. Each figure's
// simulation grid is sharded across Settings.Workers pool workers
// (0 = GOMAXPROCS); the tables are byte-identical for every worker count.
func RunFigures(s ExperimentSettings) ([]FigureTable, error) {
	return experiments.All(experiments.NewRunner(s))
}

// ObserveOptions configures the observability layer: a bounded ring-buffer
// command/event tracer plus an end-of-run metrics snapshot.
type ObserveOptions = obs.Options

// TraceEvent is one recorded tracer event.
type TraceEvent = obs.Event

// MetricsSnapshot is the sorted end-of-run metrics set.
type MetricsSnapshot = obs.Snapshot

// Observe attaches the observability layer to a configuration: the run
// returns Result.Trace (the command/event ring) and Result.Metrics (the
// end-of-run snapshot). The zero ObserveOptions selects the default trace
// capacity. Observation never alters simulated behavior: with Observe
// unset, instrumentation costs a single nil-check per site.
func Observe(cfg *Config, o ObserveOptions) { cfg.Observe = &o }

// TraceExport writes a run's command/event trace in the named format:
// "jsonl" (the tracer's native line format, readable by cmd/tracedump) or
// "chrome" (a Chrome trace_event JSON array loadable in Perfetto or
// chrome://tracing). The run must have been configured with Observe.
func TraceExport(w io.Writer, res Result, format string) error {
	if res.Trace == nil {
		return fsmerr.New(fsmerr.CodeConfig, "fsmem.TraceExport",
			"run has no trace: configure it with fsmem.Observe before simulating")
	}
	switch format {
	case "jsonl":
		return obs.WriteJSONL(w, res.Trace)
	case "chrome":
		return obs.WriteChrome(w, res.Trace)
	default:
		return fsmerr.New(fsmerr.CodeConfig, "fsmem.TraceExport",
			"unknown trace format %q (want \"jsonl\" or \"chrome\")", format)
	}
}

// ServerOptions configures the fsmemd simulation-service daemon:
// listen address, executor pool width, queue depth, result-cache size,
// rate limiting, and drain behavior.
type ServerOptions = server.Options

// JobRequest is the daemon's job-submission payload (simulation,
// figure-grid, leakage-profile, or fault-campaign work).
type JobRequest = server.JobRequest

// JobStatus is the daemon's job status document.
type JobStatus = server.JobStatus

// Serve runs the simulation-as-a-service daemon (cmd/fsmemd) until ctx
// is canceled, then drains gracefully: in-flight and queued jobs
// finish, new submissions are rejected with 503, and a clean drain
// returns nil. Results are served from a content-addressed cache keyed
// by the same canonical config normalization the experiment harness
// memoizes on, so identical concurrent submissions simulate exactly
// once.
func Serve(ctx context.Context, o ServerOptions) error { return server.Serve(ctx, o) }

// LeakageProfile is an attacker execution profile (Figure 4).
type LeakageProfile = leakage.Profile

// CollectLeakageProfile times an attacker benchmark against co-runners on
// a single-channel system. Use CollectLeakageProfileFabric to profile an
// N-channel fabric.
func CollectLeakageProfile(k SchedulerKind, attacker, coRunner Profile, domains int,
	milestone, totalInstr int64, seed uint64) (LeakageProfile, error) {
	return leakage.CollectProfile(k, attacker, coRunner, domains, milestone, totalInstr, seed,
		1, addr.RouteColored)
}

// CollectLeakageProfileFabric is CollectLeakageProfile over a multi-channel
// fabric: the attacker's milestones are timed while its requests route
// through channels (>= 1) memory channels under the given routing policy.
func CollectLeakageProfileFabric(k SchedulerKind, attacker, coRunner Profile, domains int,
	milestone, totalInstr int64, seed uint64, channels int, routing Routing) (LeakageProfile, error) {
	return leakage.CollectProfile(k, attacker, coRunner, domains, milestone, totalInstr, seed,
		channels, routing)
}

// ProfilesIdentical reports strict non-interference between two profiles.
func ProfilesIdentical(a, b LeakageProfile) bool { return leakage.Identical(a, b) }

// AuditOptions configures the adversarial leakage audit: campaign size,
// adaptive-search depth, certification seeds, permutation rounds, worker
// pool width, and an optional fault plan for anti-vacuity checks. The
// zero value selects the standard campaign.
type AuditOptions = audit.Options

// AuditVerdict classifies a finished audit: SECURE (no attack in the
// library or search neighborhood distinguishes sender bits), LEAKY (some
// attack decodes, or the observables are statistically distinguishable),
// or FAIL (the runtime monitor saw violations, so nothing can be
// certified).
type AuditVerdict = audit.Verdict

// The audit verdicts.
const (
	AuditSecure = audit.VerdictSecure
	AuditLeaky  = audit.VerdictLeaky
	AuditFail   = audit.VerdictFail
)

// LeakageCertificate is the audit's machine-readable output: verdict,
// best attack strategy and parameters, bias-corrected mutual information
// and KS statistics with permutation-test p-values, channel capacity in
// bits per second, and the seeds that make the document reproducible.
type LeakageCertificate = audit.LeakageCertificate

// Audit throws the adversarial strategy library plus an adaptive search
// loop at a scheduler and certifies the best attack found across
// independent seeds. Certificates are byte-identical for every
// AuditOptions.Workers value (also when served by the fsmemd "audit"
// job kind).
func Audit(ctx context.Context, k SchedulerKind, o AuditOptions) (*LeakageCertificate, error) {
	return audit.Run(ctx, k, o)
}

// MarshalLeakageCertificate renders a certificate in the canonical
// newline-terminated single-line JSON encoding the byte-identity
// guarantees are stated over.
func MarshalLeakageCertificate(c *LeakageCertificate) ([]byte, error) {
	return audit.MarshalCertificate(c)
}

// EnergyModel is the Micron-style DDR3 energy model.
type EnergyModel = energy.Model

// NewEnergyModel builds the energy model with typical 4Gb DDR3 currents.
func NewEnergyModel(p DRAMParams) *EnergyModel { return energy.NewModel(p, energy.DDR3_4Gb()) }

// Error is the structured error type every library path returns: a Code
// classifying the failure plus, where meaningful, the offending bus cycle
// and DRAM command. Use errors.As to recover it and ErrorCodeOf for the
// code alone.
type Error = fsmerr.Error

// ErrorCode classifies an Error for programmatic handling.
type ErrorCode = fsmerr.Code

// The error-code taxonomy (see DESIGN.md).
const (
	ErrConfig     = fsmerr.CodeConfig
	ErrWorkload   = fsmerr.CodeWorkload
	ErrTiming     = fsmerr.CodeTiming
	ErrSchedule   = fsmerr.CodeSchedule
	ErrQueue      = fsmerr.CodeQueue
	ErrDrain      = fsmerr.CodeDrain
	ErrTruncated  = fsmerr.CodeTruncated
	ErrExperiment = fsmerr.CodeExperiment
	ErrFault      = fsmerr.CodeFault
	ErrCanceled   = fsmerr.CodeCanceled
	ErrPanic      = fsmerr.CodePanic
)

// ErrorCodeOf extracts the ErrorCode of an error, or "" for foreign errors.
func ErrorCodeOf(err error) ErrorCode { return fsmerr.CodeOf(err) }

// FaultPlan is a seeded, deterministic fault-injection plan: DRAM timing
// derates (the monitor's model of the "true" hardware), command-stream
// faults (drop/delay/duplicate on the bus), and load faults (per-domain
// arrival jitter, queue spikes, refresh storms).
type FaultPlan = fault.Plan

// Fault-plan building blocks.
type (
	// CommandFault drops, delays, or duplicates the first matching command.
	CommandFault = fault.CommandFault
	// RankDerate slows one rank (or all, Rank = -1) of the true hardware.
	RankDerate = fault.RankDerate
	// LoadFault perturbs one domain's request stream.
	LoadFault = fault.LoadFault
	// TimingDerate multiplies individual DRAM timing parameters.
	TimingDerate = fault.Derate
	// FaultAction selects what a CommandFault does to the matched command.
	FaultAction = fault.Action
	// LoadKind selects a load-fault flavor.
	LoadKind = fault.LoadKind
)

// Command-fault actions.
const (
	FaultDrop      = fault.ActionDrop
	FaultDelay     = fault.ActionDelay
	FaultDuplicate = fault.ActionDuplicate
)

// Load-fault flavors.
const (
	LoadJitter       = fault.LoadJitter
	LoadQueueSpike   = fault.LoadQueueSpike
	LoadRefreshStorm = fault.LoadRefreshStorm
)

// MonitorReport is the always-on runtime monitor's verdict on a run: shadow
// timing-checker violations, planned-vs-observed schedule divergences
// (Fixed Service only), scheduler-reported violations, and the per-domain
// read-delivery traces the non-interference comparison is built on.
type MonitorReport = fault.Report

// SimulateChaos runs one simulation under a fault plan. The monitor's
// verdict is in Result.Monitor (also populated, without faults, by
// Simulate).
func SimulateChaos(cfg Config, plan *FaultPlan) (Result, error) {
	return sim.SimulateChaos(cfg, plan)
}

// FaultOutcome classifies what one fault plan did to one scheduler, and
// FaultCampaign is the full matrix for one configuration.
type (
	FaultOutcome  = sim.FaultOutcome
	FaultVerdict  = sim.FaultVerdict
	FaultCampaign = sim.CampaignResult
)

// Campaign verdicts.
const (
	FaultDetected   = sim.VerdictDetected
	FaultHarmless   = sim.VerdictHarmless
	FaultUndetected = sim.VerdictUndetected
)

// StandardFaultPlans builds the standard campaign plan set against the
// given target domains.
func StandardFaultPlans(domains int, seed uint64) []*FaultPlan {
	return fault.CampaignPlans(domains, seed)
}

// RunFaultCampaign executes every plan against the configuration plus an
// unfaulted reference run and classifies each fault as detected, harmless,
// or undetected. Fixed Service schedulers must show zero undetected faults;
// the non-secure baseline will not. Runs are sharded across a
// GOMAXPROCS-wide worker pool; verdicts are byte-identical to a serial
// campaign.
func RunFaultCampaign(cfg Config, plans []*FaultPlan) (*FaultCampaign, error) {
	return sim.RunCampaign(cfg, plans)
}

// RunFaultCampaignContext is RunFaultCampaign with cancellation and an
// explicit worker-pool width (workers <= 0 selects the GOMAXPROCS
// default).
func RunFaultCampaignContext(ctx context.Context, cfg Config, plans []*FaultPlan, workers int) (*FaultCampaign, error) {
	return sim.RunCampaignContext(ctx, cfg, plans, workers)
}
