package mem

import (
	chanaddr "fsmem/internal/addr"
	"fsmem/internal/dram"
)

// Fabric is the request-routing shim of a multi-channel memory system: it
// presents the same enqueue interface a single Controller does (cores
// cannot tell the difference), and forwards each transaction to one of N
// per-channel controllers according to the routing policy.
//
// Under colored routing each channel's controller is sized for its own
// contiguous block of domains, so the fabric also remaps the global
// security-domain id to the channel-local one — the controller then sees
// exactly the calls a standalone single-channel run would produce. Under
// interleaved routing every controller is sized for all domains and ids
// pass through unchanged.
//
// The fabric holds no clock and no queues of its own: each controller
// keeps its own cycle counter and completion machinery, and completion
// callbacks flow back to cores through the closures the cores supplied,
// so no reverse routing is needed.
type Fabric struct {
	ctls    []*Controller
	routing chanaddr.Routing
	domains int // global security-domain count
	per     int // domains per channel under colored routing
}

// NewFabric wires per-channel controllers behind one request interface.
// Under colored routing, domains must split evenly over the channels
// (validated by the caller).
func NewFabric(ctls []*Controller, routing chanaddr.Routing, domains int) *Fabric {
	f := &Fabric{ctls: ctls, routing: routing, domains: domains}
	if n := len(ctls); n > 0 {
		f.per = domains / n
	}
	return f
}

// Channels returns the fabric width.
func (f *Fabric) Channels() int { return len(f.ctls) }

// Controller returns channel c's controller.
func (f *Fabric) Controller(c int) *Controller { return f.ctls[c] }

// Controllers returns the per-channel controllers in channel order.
func (f *Fabric) Controllers() []*Controller { return f.ctls }

// Routing returns the fabric's routing policy.
func (f *Fabric) Routing() chanaddr.Routing { return f.routing }

// ChannelOf computes the channel a request from the given global domain
// for the given address routes to.
func (f *Fabric) ChannelOf(domain int, a dram.Address) int {
	return chanaddr.RouteChannel(f.routing, domain, f.domains, len(f.ctls), a)
}

// LocalDomain translates a global domain id into the id the target
// channel's controller uses (identity under interleaved routing).
func (f *Fabric) LocalDomain(domain int) int {
	if f.routing == chanaddr.RouteColored && f.per > 0 {
		return domain % f.per
	}
	return domain
}

// EnqueueRead routes a demand read to its channel; done runs when data is
// delivered. Returns false when the target queue is full.
func (f *Fabric) EnqueueRead(domain int, a dram.Address, done func()) bool {
	c := f.ChannelOf(domain, a)
	return f.ctls[c].EnqueueRead(f.LocalDomain(domain), a, done)
}

// EnqueueWrite routes a write-back to its channel. Returns false when the
// target write buffer is full.
func (f *Fabric) EnqueueWrite(domain int, a dram.Address) bool {
	c := f.ChannelOf(domain, a)
	return f.ctls[c].EnqueueWrite(f.LocalDomain(domain), a)
}
