package mem

import (
	"testing"

	"fsmem/internal/dram"
	"fsmem/internal/fsmerr"
	"fsmem/internal/prefetch"
)

// nopSched issues nothing; tests drive the controller directly.
type nopSched struct{}

func (nopSched) Name() string     { return "nop" }
func (nopSched) Tick(*Controller) {}

func newCtl(domains int) *Controller {
	return NewController(dram.DDR3_1600(), DefaultConfig(domains), nopSched{})
}

func addr(rank, bank, row int) dram.Address { return dram.Address{Rank: rank, Bank: bank, Row: row} }

func TestEnqueueBackpressure(t *testing.T) {
	c := newCtl(2)
	for i := 0; i < c.Cfg.ReadCap; i++ {
		if !c.EnqueueRead(0, addr(0, 0, i), nil) {
			t.Fatalf("read %d rejected below capacity", i)
		}
	}
	if c.EnqueueRead(0, addr(0, 0, 99), nil) {
		t.Fatal("read accepted above capacity")
	}
	// Domain 1 is unaffected.
	if !c.EnqueueRead(1, addr(1, 0, 0), nil) {
		t.Fatal("other domain's queue should be independent")
	}
	for i := 0; i < c.Cfg.WriteCap; i++ {
		if !c.EnqueueWrite(0, addr(0, 1, i)) {
			t.Fatalf("write %d rejected below capacity", i)
		}
	}
	if c.EnqueueWrite(0, addr(0, 1, 99)) {
		t.Fatal("write accepted above capacity")
	}
	if c.PendingReads() != c.Cfg.ReadCap+1 || c.PendingWrites() != c.Cfg.WriteCap {
		t.Errorf("pending counts %d/%d", c.PendingReads(), c.PendingWrites())
	}
}

func TestCompletionOrderingAndStats(t *testing.T) {
	c := newCtl(1)
	var order []int
	mk := func(id int, cycle int64) {
		req := &Request{Domain: 0, Addr: addr(0, 0, id)}
		req.done = func() { order = append(order, id) }
		c.CompleteAt(req, cycle)
	}
	mk(2, 20)
	mk(1, 10)
	mk(3, 30)
	for i := 0; i < 40; i++ {
		c.Tick()
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("completion order %v", order)
	}
	if c.Dom[0].Reads != 3 {
		t.Errorf("Reads = %d", c.Dom[0].Reads)
	}
	if c.Dom[0].ReadLatencyCount != 3 || c.Dom[0].ReadLatencySum == 0 {
		t.Errorf("latency accounting: %+v", c.Dom[0])
	}
}

func TestFinishClassifiesRequests(t *testing.T) {
	c := newCtl(1)
	c.CompleteAt(&Request{Domain: 0, Write: true}, 1)
	c.CompleteAt(&Request{Domain: 0, Dummy: true}, 1)
	c.CompleteAt(&Request{Domain: 0, Prefetch: true}, 1)
	c.CompleteAt(&Request{Domain: 0}, 1)
	for i := 0; i < 3; i++ {
		c.Tick()
	}
	d := c.Dom[0]
	if d.Writes != 1 || d.Dummies != 1 || d.Prefetches != 1 || d.Reads != 1 {
		t.Errorf("classification: %+v", d)
	}
}

func TestPopAndRemove(t *testing.T) {
	c := newCtl(1)
	c.EnqueueRead(0, addr(0, 0, 1), nil)
	c.EnqueueRead(0, addr(0, 0, 2), nil)
	r := c.PopRead(0)
	if r == nil || r.Addr.Row != 1 {
		t.Fatalf("PopRead = %+v", r)
	}
	r2 := c.ReadQ[0][0]
	if err := c.RemoveRead(r2); err != nil {
		t.Fatalf("RemoveRead: %v", err)
	}
	if c.PendingReads() != 0 {
		t.Fatal("remove failed")
	}
	if c.PopRead(0) != nil {
		t.Fatal("pop from empty queue should be nil")
	}
	c.EnqueueWrite(0, addr(0, 0, 3))
	w := c.PopWrite(0)
	if w == nil || !w.Write {
		t.Fatalf("PopWrite = %+v", w)
	}
	if c.PopWrite(0) != nil {
		t.Fatal("pop from empty write queue should be nil")
	}

	if err := c.RemoveRead(&Request{Domain: 0}); err == nil {
		t.Error("removing a foreign request should return an error")
	} else if fsmerr.CodeOf(err) != fsmerr.CodeQueue {
		t.Errorf("foreign remove: code = %q, want %q", fsmerr.CodeOf(err), fsmerr.CodeQueue)
	}
	if err := c.RemoveWrite(&Request{Domain: 99}); err == nil {
		t.Error("removing with an out-of-range domain should return an error")
	} else if fsmerr.CodeOf(err) != fsmerr.CodeQueue {
		t.Errorf("out-of-range remove: code = %q, want %q", fsmerr.CodeOf(err), fsmerr.CodeQueue)
	}
}

func TestRecordFirstCommandQueueDelay(t *testing.T) {
	c := newCtl(1)
	c.EnqueueRead(0, addr(0, 0, 1), nil)
	req := c.ReadQ[0][0]
	for i := 0; i < 7; i++ {
		c.Tick()
	}
	c.RecordFirstCommand(req)
	if req.FirstCmd != 7 {
		t.Fatalf("FirstCmd = %d", req.FirstCmd)
	}
	if c.Dom[0].QueueDelaySum != 7 {
		t.Fatalf("QueueDelaySum = %d", c.Dom[0].QueueDelaySum)
	}
	// Idempotent.
	c.Tick()
	c.RecordFirstCommand(req)
	if c.Dom[0].QueueDelaySum != 7 {
		t.Error("RecordFirstCommand double-counted")
	}
}

func TestPrefetchBufferHit(t *testing.T) {
	c := newCtl(1)
	c.EnablePrefetch(func(int) *prefetch.Sandbox { return prefetch.New(c.P) })
	a := addr(0, 3, 42)
	// A completed prefetch fills the buffer.
	c.CompleteAt(&Request{Domain: 0, Prefetch: true, Addr: a}, 1)
	c.Tick()
	c.Tick()
	done := false
	if !c.EnqueueRead(0, a, func() { done = true }) {
		t.Fatal("read rejected")
	}
	if c.PendingReads() != 0 {
		t.Fatal("prefetch hit should not enter the read queue")
	}
	for i := 0; i < 3; i++ {
		c.Tick()
	}
	if !done {
		t.Fatal("prefetch-buffer hit did not complete quickly")
	}
	if c.Dom[0].UsefulPrefetches != 1 {
		t.Errorf("UsefulPrefetches = %d", c.Dom[0].UsefulPrefetches)
	}
	// The buffer entry is consumed: a second read goes to the queue.
	c.EnqueueRead(0, a, nil)
	if c.PendingReads() != 1 {
		t.Error("second read should miss the prefetch buffer")
	}
}

func TestPrefetchBufferEviction(t *testing.T) {
	c := NewController(dram.DDR3_1600(), Config{Domains: 1, ReadCap: 4, WriteCap: 4, PrefetchBufCap: 2}, nopSched{})
	c.EnablePrefetch(func(int) *prefetch.Sandbox { return prefetch.New(c.P) })
	for i := 0; i < 3; i++ {
		c.CompleteAt(&Request{Domain: 0, Prefetch: true, Addr: addr(0, 0, i)}, int64(i+1))
	}
	for i := 0; i < 6; i++ {
		c.Tick()
	}
	if got := len(c.pfBuf[0]); got != 2 {
		t.Fatalf("prefetch buffer size %d, want 2 (evicted oldest)", got)
	}
	// The oldest fill (row 0) must be the evicted one.
	if _, ok := c.pfBuf[0][lineKey(addr(0, 0, 0))]; ok {
		t.Error("oldest prefetch not evicted")
	}
}

func TestDrained(t *testing.T) {
	c := newCtl(1)
	if !c.Drained() {
		t.Fatal("fresh controller should be drained")
	}
	c.EnqueueRead(0, addr(0, 0, 1), nil)
	if c.Drained() {
		t.Fatal("queued read should block drained")
	}
}
