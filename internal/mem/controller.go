// Package mem implements the memory-controller shell shared by every
// scheduling policy: per-security-domain transaction queues, write buffers,
// the completion machinery that returns read data to cores, and an optional
// per-domain prefetch engine. Scheduling policy itself is pluggable — the
// non-secure baseline and Temporal Partitioning live in internal/sched, the
// Fixed Service family in internal/core.
package mem

import (
	"fsmem/internal/dram"
	"fsmem/internal/fault"
	"fsmem/internal/fsmerr"
	"fsmem/internal/obs"
	"fsmem/internal/prefetch"
	"fsmem/internal/stats"
)

// Request is one memory transaction from arrival at the controller to data
// delivery.
type Request struct {
	Domain   int
	Write    bool
	Addr     dram.Address
	Arrive   int64 // bus cycle the request entered the controller
	FirstCmd int64 // bus cycle of its first DRAM command (-1 until issued)
	DataEnd  int64 // bus cycle its data burst completes (-1 until known)

	Dummy    bool // injected by FS shaping, carries no data
	Prefetch bool // injected into an FS dummy slot or by the baseline
	Acted    bool // an ACT was issued for this request (false on a row hit)

	done func() // completion callback to the core (nil for writes/dummies)
}

// Scheduler is a memory scheduling policy. Tick is called once per DRAM bus
// cycle and may issue at most one command on the channel's command bus via
// the controller helpers.
type Scheduler interface {
	Name() string
	Tick(c *Controller)
}

// EventSource is implemented by schedulers that can bound their next state
// change for the fast-forward kernel: NextEvent returns the earliest future
// bus cycle at which the scheduler's Tick could do anything (issue a
// command, mutate queues, emit a trace event). Returning the current cycle
// is always safe; returning a later cycle asserts every Tick before it is a
// no-op. Schedulers that do not implement it force dense stepping.
type EventSource interface {
	NextEvent(c *Controller) int64
}

type completion struct {
	cycle int64
	req   *Request
}

// completionHeap is a hand-rolled binary min-heap on cycle. container/heap
// would box every completion through interface{} on Push and Pop — an
// allocation per scheduled transaction in the controller's hot loop.
type completionHeap []completion

func (h *completionHeap) push(c completion) {
	*h = append(*h, c)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].cycle <= s[i].cycle {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *completionHeap) pop() completion {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = completion{}
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && s[l].cycle < s[least].cycle {
			least = l
		}
		if r < n && s[r].cycle < s[least].cycle {
			least = r
		}
		if least == i {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}

// Config sizes the controller.
type Config struct {
	Domains  int
	ReadCap  int // per-domain read transaction queue capacity
	WriteCap int // per-domain write buffer capacity
	// PrefetchBufCap, when > 0 with prefetching enabled, is the per-domain
	// prefetch buffer capacity (completed prefetches waiting to be hit).
	PrefetchBufCap int
}

// DefaultConfig returns the controller sizing used in the evaluation.
func DefaultConfig(domains int) Config {
	return Config{Domains: domains, ReadCap: 32, WriteCap: 32, PrefetchBufCap: 64}
}

// Controller is the memory-controller shell for one channel.
type Controller struct {
	P    dram.Params
	Cfg  Config
	Chan *dram.Channel

	Cycle int64

	ReadQ  [][]*Request // per-domain demand reads, arrival order
	WriteQ [][]*Request // per-domain write-backs, arrival order

	Dom []stats.Domain
	// LatHist collects per-domain demand-read latency distributions.
	LatHist []*stats.Histogram

	// Obs is the optional command/event tracer (nil = off; every Tracer
	// method nil-checks, so instrumentation costs one branch when unset).
	Obs *obs.Tracer

	// Observability counters (plain fields, snapshotted by ObsMetrics):
	// enqueues the controller had to reject because a domain's queue was
	// full, and retirements by class.
	RejectedReads  obs.Counter
	RejectedWrites obs.Counter
	Retired        obs.Counter

	sched       Scheduler
	completions completionHeap

	mon *fault.Monitor  // always-on runtime verifier (nil in bare tests)
	inj *fault.Injector // command-stream fault injector (nil when unfaulted)

	// Prefetch support (nil when disabled).
	Prefetchers []*prefetch.Sandbox
	pfBuf       []map[uint64]int64 // per-domain: line key -> fill cycle
}

// NewController builds a controller around a fresh channel.
func NewController(p dram.Params, cfg Config, sched Scheduler) *Controller {
	c := &Controller{
		P:    p,
		Cfg:  cfg,
		Chan: dram.NewChannel(p),
		Dom:  make([]stats.Domain, cfg.Domains),

		sched: sched,
	}
	c.LatHist = make([]*stats.Histogram, cfg.Domains)
	for d := range c.LatHist {
		c.LatHist[d] = stats.NewLatencyHistogram()
	}
	c.ReadQ = make([][]*Request, cfg.Domains)
	c.WriteQ = make([][]*Request, cfg.Domains)
	return c
}

// Scheduler returns the active scheduling policy.
func (c *Controller) Scheduler() Scheduler { return c.sched }

// SetScheduler swaps the scheduling policy. The caller must have drained
// the controller first (see sim.System.Reconfigure): swapping with work in
// flight would hand the new policy requests whose commands are half
// issued.
func (c *Controller) SetScheduler(s Scheduler) { c.sched = s }

// EnablePrefetch attaches one sandbox prefetcher per domain.
func (c *Controller) EnablePrefetch(mk func(domain int) *prefetch.Sandbox) {
	c.Prefetchers = make([]*prefetch.Sandbox, c.Cfg.Domains)
	c.pfBuf = make([]map[uint64]int64, c.Cfg.Domains)
	for d := 0; d < c.Cfg.Domains; d++ {
		c.Prefetchers[d] = mk(d)
		c.pfBuf[d] = make(map[uint64]int64)
	}
}

func lineKey(a dram.Address) uint64 {
	return uint64(a.Channel)<<48 | uint64(a.Rank)<<40 | uint64(a.Bank)<<32 |
		uint64(a.Row)<<12 | uint64(a.Col)
}

// EnqueueRead submits a demand read; done runs when data is delivered.
// Returns false when the domain's read queue is full.
func (c *Controller) EnqueueRead(domain int, a dram.Address, done func()) bool {
	if c.Prefetchers != nil {
		c.Prefetchers[domain].Observe(a)
		if _, hit := c.pfBuf[domain][lineKey(a)]; hit {
			delete(c.pfBuf[domain], lineKey(a))
			c.Dom[domain].UsefulPrefetches++
			// Serviced from the prefetch buffer: near-immediate completion.
			c.completions.push(completion{cycle: c.Cycle + 1, req: &Request{
				Domain: domain, Addr: a, Arrive: c.Cycle, done: done,
			}})
			return true
		}
	}
	if len(c.ReadQ[domain]) >= c.Cfg.ReadCap {
		c.RejectedReads.Inc()
		c.Obs.QueueFull(domain, c.Cycle, false)
		return false
	}
	c.Obs.Enqueue(domain, a, c.Cycle)
	c.ReadQ[domain] = append(c.ReadQ[domain], &Request{
		Domain: domain, Addr: a, Arrive: c.Cycle, FirstCmd: -1, DataEnd: -1, done: done,
	})
	return true
}

// EnqueueWrite submits a write-back. Returns false when the write buffer is
// full.
func (c *Controller) EnqueueWrite(domain int, a dram.Address) bool {
	if len(c.WriteQ[domain]) >= c.Cfg.WriteCap {
		c.RejectedWrites.Inc()
		c.Obs.QueueFull(domain, c.Cycle, true)
		return false
	}
	c.WriteQ[domain] = append(c.WriteQ[domain], &Request{
		Domain: domain, Write: true, Addr: a, Arrive: c.Cycle, FirstCmd: -1, DataEnd: -1,
	})
	return true
}

// NextPrefetch pops a high-confidence prefetch candidate for the domain, or
// ok=false if prefetching is disabled or nothing is queued.
func (c *Controller) NextPrefetch(domain int) (dram.Address, bool) {
	if c.Prefetchers == nil {
		return dram.Address{}, false
	}
	return c.Prefetchers[domain].NextCandidate()
}

// AttachMonitor installs the runtime verification monitor. Every command
// that reaches the bus afterwards is shadowed through it.
func (c *Controller) AttachMonitor(m *fault.Monitor) { c.mon = m }

// Monitor returns the attached runtime monitor, or nil.
func (c *Controller) Monitor() *fault.Monitor { return c.mon }

// AttachInjector installs a command-stream fault injector between the
// scheduler and the channel.
func (c *Controller) AttachInjector(in *fault.Injector) { c.inj = in }

// ReportViolation forwards a scheduler-detected violation (a planned
// command the live channel refused) to the runtime monitor, if attached.
func (c *Controller) ReportViolation(err error) {
	if c.mon != nil {
		c.mon.SchedulerViolation(err)
	}
}

// Issue places a command on the channel at the current cycle.
func (c *Controller) Issue(cmd dram.Command) error {
	return c.issue(cmd, false)
}

// IssueSuppressed places a command whose timing footprint is modeled but
// whose DRAM operation is elided (FS energy optimizations).
func (c *Controller) IssueSuppressed(cmd dram.Command) error {
	return c.issue(cmd, true)
}

func (c *Controller) issue(cmd dram.Command, suppressed bool) error {
	if c.mon == nil && c.inj == nil {
		if err := c.Chan.IssueEx(cmd, c.Cycle, suppressed); err != nil {
			return err
		}
		c.Obs.Command(cmd, c.Cycle, suppressed)
		return nil
	}
	// FR-FCFS-style schedulers probe with Issue and treat an error as
	// back-off, so only a command that would legally issue counts as
	// scheduler intent or is eligible for perturbation.
	if err := c.Chan.CanIssue(cmd, c.Cycle); err != nil {
		return err
	}
	if c.mon != nil {
		c.mon.Intended(cmd, c.Cycle)
	}
	if c.inj != nil {
		switch d, replay := c.inj.Decide(cmd, c.Cycle); d {
		case fault.Drop:
			return nil // the scheduler believes it issued
		case fault.Delay:
			c.inj.AddReplay(cmd, replay)
			return nil
		case fault.Duplicate:
			c.inj.AddReplay(cmd, replay)
		}
	}
	if err := c.Chan.IssueEx(cmd, c.Cycle, suppressed); err != nil {
		return err
	}
	c.Obs.Command(cmd, c.Cycle, suppressed)
	if c.mon != nil {
		c.mon.Applied(cmd, c.Cycle, suppressed)
	}
	return nil
}

// CompleteAt schedules the request's completion bookkeeping (and its core
// callback for demand reads) at the given cycle, which is when the paper's
// release policy makes the data visible — normally the end of the data
// burst, or the end of the Q-cycle interval under reordered bank
// partitioning.
func (c *Controller) CompleteAt(req *Request, cycle int64) {
	c.completions.push(completion{cycle: cycle, req: req})
}

// RecordFirstCommand notes queue delay when a request's first command
// issues.
func (c *Controller) RecordFirstCommand(req *Request) {
	if req.FirstCmd >= 0 {
		return
	}
	req.FirstCmd = c.Cycle
	if !req.Dummy && !req.Prefetch {
		c.Dom[req.Domain].QueueDelaySum += c.Cycle - req.Arrive
		c.Obs.FirstCommand(req.Domain, req.Addr, c.Cycle, c.Cycle-req.Arrive, req.Write)
	}
}

// Tick advances the controller by one bus cycle: deliver due completions,
// pump any injected command replays onto the bus, then let the policy
// issue.
func (c *Controller) Tick() {
	for len(c.completions) > 0 && c.completions[0].cycle <= c.Cycle {
		c.finish(c.completions.pop().req)
	}
	if c.inj != nil {
		for _, tc := range c.inj.Due(c.Cycle) {
			if err := c.Chan.Issue(tc.Cmd, c.Cycle); err != nil {
				// The model cannot apply an illegal command; the original's
				// disappearance is still caught by the schedule check.
				c.inj.Stats.ReplayRejects++
				continue
			}
			c.Obs.Command(tc.Cmd, c.Cycle, false)
			if c.mon != nil {
				c.mon.Applied(tc.Cmd, c.Cycle, false)
			}
		}
	}
	c.sched.Tick(c)
	c.Cycle++
}

// NextEvent returns the earliest future bus cycle at which this
// controller's state can change without external input: the scheduler's own
// horizon, capped by the earliest pending completion and the earliest
// injector replay/extra. Returns the current cycle (no skip possible) when
// the scheduler does not implement EventSource.
func (c *Controller) NextEvent() int64 {
	es, ok := c.sched.(EventSource)
	if !ok {
		return c.Cycle
	}
	h := es.NextEvent(c)
	if len(c.completions) > 0 && c.completions[0].cycle < h {
		h = c.completions[0].cycle
	}
	if c.inj != nil {
		if d := c.inj.NextDue(); d < h {
			h = d
		}
	}
	return h
}

// AdvanceIdle jumps the controller clock by n bus cycles the caller has
// proven idle (no completion due, scheduler Tick a no-op, no injector
// activity). It is the fast-forward counterpart of n Tick calls.
func (c *Controller) AdvanceIdle(n int64) {
	c.Cycle += n
}

// TryIssue issues cmd if the channel would accept it right now, reporting
// whether it did. It is the allocation-free probe for FR-FCFS-style
// schedulers that treat timing rejections as back-off: Ready costs no
// allocation on failure, unlike Issue's explanatory *TimingError.
func (c *Controller) TryIssue(cmd dram.Command) bool {
	if !c.Chan.Ready(cmd, c.Cycle) {
		return false
	}
	return c.issue(cmd, false) == nil
}

func (c *Controller) finish(req *Request) {
	c.Retired.Inc()
	d := &c.Dom[req.Domain]
	switch {
	case req.Dummy:
		d.Dummies++
		c.Obs.Complete(obs.EvDummy, req.Domain, req.Addr, c.Cycle, 0)
	case req.Prefetch:
		d.Prefetches++
		c.Obs.Complete(obs.EvPrefetchFill, req.Domain, req.Addr, c.Cycle, 0)
		if c.pfBuf != nil {
			buf := c.pfBuf[req.Domain]
			if len(buf) >= c.Cfg.PrefetchBufCap {
				// Evict the oldest fill.
				var oldKey uint64
				oldCycle := int64(1<<62 - 1)
				for k, v := range buf {
					if v < oldCycle {
						oldCycle, oldKey = v, k
					}
				}
				delete(buf, oldKey)
			}
			buf[lineKey(req.Addr)] = c.Cycle
		}
	case req.Write:
		d.Writes++
		c.Obs.Complete(obs.EvWriteDone, req.Domain, req.Addr, c.Cycle, 0)
	default:
		d.Reads++
		d.ReadLatencySum += c.Cycle - req.Arrive
		d.ReadLatencyCount++
		c.LatHist[req.Domain].Observe(c.Cycle - req.Arrive)
		c.Obs.Complete(obs.EvDeliver, req.Domain, req.Addr, c.Cycle, c.Cycle-req.Arrive)
		if c.mon != nil {
			c.mon.ReadCompleted(req.Domain, c.Cycle)
		}
		if req.done != nil {
			req.done()
		}
	}
}

// PopRead removes and returns the oldest read of the domain, or nil.
func (c *Controller) PopRead(domain int) *Request {
	q := c.ReadQ[domain]
	if len(q) == 0 {
		return nil
	}
	c.ReadQ[domain] = q[1:]
	return q[0]
}

// PopWrite removes and returns the oldest write of the domain, or nil.
func (c *Controller) PopWrite(domain int) *Request {
	q := c.WriteQ[domain]
	if len(q) == 0 {
		return nil
	}
	c.WriteQ[domain] = q[1:]
	return q[0]
}

// RemoveRead deletes the request from its domain's read queue, returning a
// CodeQueue error if it is not there.
func (c *Controller) RemoveRead(req *Request) error {
	return c.removeFrom(c.ReadQ, req, "mem.RemoveRead")
}

// RemoveWrite deletes the request from its domain's write queue, returning
// a CodeQueue error if it is not there.
func (c *Controller) RemoveWrite(req *Request) error {
	return c.removeFrom(c.WriteQ, req, "mem.RemoveWrite")
}

func (c *Controller) removeFrom(qs [][]*Request, req *Request, op string) error {
	if req.Domain < 0 || req.Domain >= len(qs) {
		e := fsmerr.New(fsmerr.CodeQueue, op, "domain %d out of range [0,%d)", req.Domain, len(qs))
		e.Cycle = c.Cycle
		return e
	}
	q := qs[req.Domain]
	for i, r := range q {
		if r == req {
			qs[req.Domain] = append(q[:i:i], q[i+1:]...)
			return nil
		}
	}
	e := fsmerr.New(fsmerr.CodeQueue, op, "request dom=%d addr=%s not in queue", req.Domain, req.Addr)
	e.Cycle = c.Cycle
	return e
}

// PendingReads returns the total queued demand reads across domains.
func (c *Controller) PendingReads() int {
	n := 0
	for _, q := range c.ReadQ {
		n += len(q)
	}
	return n
}

// PendingWrites returns the total buffered writes across domains.
func (c *Controller) PendingWrites() int {
	n := 0
	for _, q := range c.WriteQ {
		n += len(q)
	}
	return n
}

// Drained reports whether no work remains anywhere in the controller.
func (c *Controller) Drained() bool {
	return c.PendingReads() == 0 && c.PendingWrites() == 0 && len(c.completions) == 0
}

// ObsMetrics contributes the controller-shell counters to an obs.Registry
// snapshot (structural obs.MetricSource; see DESIGN.md §9).
func (c *Controller) ObsMetrics(emit func(name string, value float64)) {
	emit("read_queue_rejects", float64(c.RejectedReads.Value()))
	emit("write_buffer_rejects", float64(c.RejectedWrites.Value()))
	emit("retired", float64(c.Retired.Value()))
	emit("pending_reads", float64(c.PendingReads()))
	emit("pending_writes", float64(c.PendingWrites()))
}
