package sched

import (
	"fmt"
	"math"

	"fsmem/internal/dram"
	"fsmem/internal/mem"
)

// TPMode selects the spatial assumption under Temporal Partitioning.
type TPMode int

const (
	// TPBankPartitioned: domains own disjoint banks, so consecutive turns
	// only contend for the buses and same-rank turnarounds.
	TPBankPartitioned TPMode = iota
	// TPNoPartitioning: any domain may touch any bank, so a turn must leave
	// enough room for the worst case — the next turn reusing the same bank
	// after a write.
	TPNoPartitioning
)

// String names the TP mode.
func (m TPMode) String() string {
	if m == TPBankPartitioned {
		return "bank-partitioned"
	}
	return "no-partitioning"
}

// Reserve returns how many cycles before the turn's end the last new
// transaction (ACT) may start, so that the next thread's turn beginning
// immediately after is conflict-free. These equal the basic Fixed Service
// slot spacings — the paper's point that fine-grained TP is the special
// case of the basic FS pipelines:
//
//	bank-partitioned: the write-to-read turnaround, 15 cycles;
//	no-partitioning:  full worst-case bank recovery
//	                  tRCD+tCWD+tBURST+tWR+tRP = 43 cycles.
func (m TPMode) Reserve(p dram.Params) int64 {
	if m == TPBankPartitioned {
		return int64(p.WriteToReadGap())
	}
	return int64(p.TRCD + p.TCWD + p.TBURST + p.TWR + p.TRP)
}

// MinTurnLength returns the smallest legal turn: exactly one transaction
// per turn (the fine-grained model, leftmost bars of Figure 5: 60 CPU =
// 15 bus cycles for BP, 172 CPU = 43 bus cycles for NP).
func (m TPMode) MinTurnLength(p dram.Params) int64 { return m.Reserve(p) }

// TurnLengths returns the Figure 5 sweep for the mode, in bus cycles
// (the paper labels them in CPU cycles: BP 60/100/156, NP 172/212/268).
func (m TPMode) TurnLengths(p dram.Params) []int64 {
	r := m.Reserve(p)
	return []int64{r, r + 10, r + 24}
}

// IntraSpacing is the minimum gap between transaction starts of the same
// thread within one turn ("multiple requests from a thread can be issued
// before finally having a 15-cycle gap and switching to the next thread",
// §4.2). Bank-partitioned turns pack at the read-to-write turnaround; under
// no partitioning consecutive own requests may share a rank and need the
// bank-partitioned spacing.
func (m TPMode) IntraSpacing(p dram.Params) int64 {
	if m == TPBankPartitioned {
		return int64(p.ReadToWriteGap())
	}
	return int64(p.WriteToReadGap())
}

// TP is Temporal Partitioning (Wang et al., HPCA 2014): the channel is
// owned exclusively by one security domain per fixed-length turn, rotating
// round-robin. Turn boundaries never depend on behavior, which closes the
// timing channel; idle turns are simply wasted, and queuing delays grow
// with the thread count.
type TP struct {
	p       dram.Params
	mode    TPMode
	domains int

	TurnLength int64
	Res        int64 // reserve: no new ACT within Res cycles of turn end
	Intra      int64 // minimum spacing between transaction starts in a turn

	lastAct     int64 // cycle of the last intra-turn ACT
	lastActTurn int64
	started     []*inflight
}

type inflight struct {
	req *mem.Request
}

// NewTP builds a TP scheduler with the given turn length in bus cycles
// (use mode.MinTurnLength for the paper's best configuration).
func NewTP(p dram.Params, mode TPMode, domains int, turnLength int64) (*TP, error) {
	if domains <= 0 {
		return nil, fmt.Errorf("sched: TP needs at least one domain, got %d", domains)
	}
	res := mode.Reserve(p)
	if turnLength < res {
		return nil, fmt.Errorf("sched: turn length %d shorter than reserve %d", turnLength, res)
	}
	return &TP{
		p:          p,
		mode:       mode,
		domains:    domains,
		TurnLength: turnLength,
		Res:        res,
		Intra:      mode.IntraSpacing(p),
		lastAct:    dram.NeverCycle,
	}, nil
}

// Name implements mem.Scheduler.
func (t *TP) Name() string { return fmt.Sprintf("tp-%s-%d", t.mode, t.TurnLength) }

// NextEvent implements mem.EventSource. Turn rotation itself is pure
// arithmetic on the cycle counter, so an empty scheduler — nothing in
// flight, nothing queued — never acts no matter which turn is live.
func (t *TP) NextEvent(c *mem.Controller) int64 {
	if len(t.started) > 0 || c.PendingReads() > 0 || c.PendingWrites() > 0 {
		return c.Cycle
	}
	return math.MaxInt64
}

// Tick issues at most one command for the domain owning the current turn.
func (t *TP) Tick(c *mem.Controller) {
	turn := c.Cycle / t.TurnLength
	domain := int(turn % int64(t.domains))
	turnEnd := (turn + 1) * t.TurnLength

	// Finish transactions already activated: issue their CAS+AP. The
	// reserve guarantees these belong to the current turn's owner.
	for i, fl := range t.started {
		if t.issueCAS(c, fl.req) {
			t.started = append(t.started[:i], t.started[i+1:]...)
			return
		}
	}

	// Start a new transaction if the reserve still allows it and the
	// intra-turn spacing since this turn's previous transaction has passed.
	if turnEnd-c.Cycle < t.Res {
		return
	}
	if t.lastActTurn == turn && c.Cycle-t.lastAct < t.Intra {
		return
	}
	req := t.pick(c, domain)
	if req == nil {
		return
	}
	cmd := dram.Command{Kind: dram.KindActivate, Rank: req.Addr.Rank, Bank: req.Addr.Bank, Row: req.Addr.Row, Domain: req.Domain}
	if !c.TryIssue(cmd) {
		return
	}
	c.RecordFirstCommand(req)
	req.Acted = true
	t.lastAct, t.lastActTurn = c.Cycle, turn
	var err error
	if req.Write {
		err = c.RemoveWrite(req)
	} else {
		err = c.RemoveRead(req)
	}
	if err != nil {
		c.ReportViolation(err)
	}
	t.started = append(t.started, &inflight{req: req})
}

// pick chooses the oldest eligible request of the domain (reads before
// writes unless the write buffer is near full), skipping banks that already
// have a transaction in flight this turn.
func (t *TP) pick(c *mem.Controller, domain int) *mem.Request {
	preferWrites := len(c.WriteQ[domain]) >= c.Cfg.WriteCap*3/4
	order := [][]*mem.Request{c.ReadQ[domain], c.WriteQ[domain]}
	if preferWrites {
		order[0], order[1] = order[1], order[0]
	}
	for _, q := range order {
		for _, r := range q {
			if !t.bankBusy(r.Addr.Rank, r.Addr.Bank) {
				return r
			}
		}
	}
	return nil
}

func (t *TP) bankBusy(rank, bank int) bool {
	for _, fl := range t.started {
		if fl.req.Addr.Rank == rank && fl.req.Addr.Bank == bank {
			return true
		}
	}
	return false
}

func (t *TP) issueCAS(c *mem.Controller, req *mem.Request) bool {
	kind := dram.KindReadAP
	dataStart := t.p.ReadDataStart()
	if req.Write {
		kind = dram.KindWriteAP
		dataStart = t.p.WriteDataStart()
	}
	cmd := dram.Command{Kind: kind, Rank: req.Addr.Rank, Bank: req.Addr.Bank, Col: req.Addr.Col, Domain: req.Domain}
	if !c.TryIssue(cmd) {
		return false
	}
	req.DataEnd = c.Cycle + int64(dataStart) + int64(t.p.TBURST)
	c.CompleteAt(req, req.DataEnd)
	return true
}

// ObsMetrics contributes the policy's configuration and live state to an
// observability snapshot (structurally satisfies obs.MetricSource).
func (t *TP) ObsMetrics(emit func(name string, value float64)) {
	emit("turn_length", float64(t.TurnLength))
	emit("reserve", float64(t.Res))
	emit("intra_spacing", float64(t.Intra))
	emit("domains", float64(t.domains))
	emit("inflight", float64(len(t.started)))
}
