package sched

import (
	"testing"

	"fsmem/internal/dram"
	"fsmem/internal/mem"
)

func addr(rank, bank, row int) dram.Address { return dram.Address{Rank: rank, Bank: bank, Row: row} }

func baselineCtl(domains int) (*mem.Controller, *Baseline) {
	p := dram.DDR3_1600()
	cfg := mem.DefaultConfig(domains)
	b := NewBaseline(p, cfg)
	return mem.NewController(p, cfg, b), b
}

func tick(c *mem.Controller, n int) {
	for i := 0; i < n; i++ {
		c.Tick()
	}
}

func TestBaselineServicesARead(t *testing.T) {
	c, _ := baselineCtl(1)
	done := false
	c.EnqueueRead(0, addr(0, 0, 5), func() { done = true })
	tick(c, 100)
	if !done {
		t.Fatal("read never completed")
	}
	if c.Chan.Counters.Acts != 1 || c.Chan.Counters.Reads != 1 {
		t.Errorf("counters: %+v", c.Chan.Counters)
	}
}

func TestBaselineRowHitPriority(t *testing.T) {
	c, _ := baselineCtl(1)
	var order []int
	mkdone := func(id int) func() { return func() { order = append(order, id) } }
	// Oldest request to row 1, then row 2 (same bank), then another row 1.
	c.EnqueueRead(0, addr(0, 0, 1), mkdone(1))
	tick(c, 1)
	c.EnqueueRead(0, addr(0, 0, 2), mkdone(2))
	tick(c, 1)
	c.EnqueueRead(0, addr(0, 0, 1), mkdone(3))
	tick(c, 400)
	if len(order) != 3 {
		t.Fatalf("completed %d of 3", len(order))
	}
	// FR-FCFS: the second row-1 request (id 3) hits the open row and must
	// overtake the row-2 request (id 2).
	if !(order[0] == 1 && order[1] == 3 && order[2] == 2) {
		t.Errorf("completion order %v, want [1 3 2] (row-hit first)", order)
	}
	if c.Dom[0].RowHits == 0 {
		t.Error("no row hits recorded")
	}
}

func TestBaselineOpenPageLeavesRowOpen(t *testing.T) {
	c, _ := baselineCtl(1)
	c.EnqueueRead(0, addr(0, 0, 7), nil)
	tick(c, 100)
	if got := c.Chan.OpenRow(0, 0); got != 7 {
		t.Errorf("open row = %d, want 7 (open-page policy)", got)
	}
}

func TestBaselineWriteDrainWatermark(t *testing.T) {
	c, b := baselineCtl(1)
	// Fill writes past the high watermark with no reads pending.
	for i := 0; i < c.Cfg.WriteCap; i++ {
		c.EnqueueWrite(0, addr(0, i%8, i))
	}
	if c.PendingWrites() <= b.hi {
		t.Skip("watermark larger than a single domain's buffer")
	}
	tick(c, 2000)
	if c.Dom[0].Writes == 0 {
		t.Fatal("no writes drained")
	}
	if c.PendingWrites() > b.lo {
		t.Errorf("drain stopped at %d pending, above the low watermark %d", c.PendingWrites(), b.lo)
	}
}

func TestBaselineReadsPreemptWrites(t *testing.T) {
	c, _ := baselineCtl(1)
	for i := 0; i < 4; i++ {
		c.EnqueueWrite(0, addr(0, 1, i))
	}
	done := false
	c.EnqueueRead(0, addr(0, 0, 1), func() { done = true })
	tick(c, 60)
	if !done {
		t.Error("read starved behind a small write backlog")
	}
}

func TestBaselineRefresh(t *testing.T) {
	p := dram.DDR3_1600()
	cfg := mem.DefaultConfig(1)
	b := NewBaseline(p, cfg)
	b.RefreshEnabled = true
	c := mem.NewController(p, cfg, b)
	// Open a row so the refresh path must precharge first.
	c.EnqueueRead(0, addr(0, 0, 1), nil)
	tick(c, int(p.TREFI)+int(p.TRFC)+200)
	if c.Chan.Counters.Refreshes == 0 {
		t.Fatal("no refresh issued after tREFI")
	}
}

func TestTPConstruction(t *testing.T) {
	p := dram.DDR3_1600()
	if _, err := NewTP(p, TPBankPartitioned, 0, 15); err == nil {
		t.Error("zero domains should fail")
	}
	if _, err := NewTP(p, TPBankPartitioned, 8, 3); err == nil {
		t.Error("turn shorter than reserve should fail")
	}
	tp, err := NewTP(p, TPNoPartitioning, 8, 43)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Name() == "" {
		t.Error("empty name")
	}
}

func TestTPModeParameters(t *testing.T) {
	p := dram.DDR3_1600()
	if got := TPBankPartitioned.Reserve(p); got != 15 {
		t.Errorf("BP reserve = %d, want 15", got)
	}
	if got := TPNoPartitioning.Reserve(p); got != 43 {
		t.Errorf("NP reserve = %d, want 43", got)
	}
	// Figure 5 turn lengths, in bus cycles (x4 = the paper's CPU cycles).
	if got := TPBankPartitioned.TurnLengths(p); got[0] != 15 || got[1] != 25 || got[2] != 39 {
		t.Errorf("BP turns = %v, want [15 25 39]", got)
	}
	if got := TPNoPartitioning.TurnLengths(p); got[0] != 43 || got[1] != 53 || got[2] != 67 {
		t.Errorf("NP turns = %v, want [43 53 67]", got)
	}
	if TPBankPartitioned.String() == TPNoPartitioning.String() {
		t.Error("mode names collide")
	}
}

func tpCtl(t *testing.T, mode TPMode, domains int, turn int64) (*mem.Controller, *TP) {
	t.Helper()
	p := dram.DDR3_1600()
	cfg := mem.DefaultConfig(domains)
	tp, err := NewTP(p, mode, domains, turn)
	if err != nil {
		t.Fatal(err)
	}
	return mem.NewController(p, cfg, tp), tp
}

func TestTPTurnExclusivity(t *testing.T) {
	c, tp := tpCtl(t, TPBankPartitioned, 4, 15)
	// Domain d owns bank d (bank partitioning); track which bank each
	// command touches and map it back to its turn's owner.
	violations := 0
	c.Chan.OnIssue = func(cmd dram.Command, cycle int64, _ bool) {
		if cmd.Kind != dram.KindActivate {
			return
		}
		owner := int((cycle / tp.TurnLength) % int64(4))
		if cmd.Bank != owner {
			violations++
		}
	}
	for d := 0; d < 4; d++ {
		for i := 0; i < 8; i++ {
			c.EnqueueRead(d, addr(d%2, d, i+1), nil)
		}
	}
	tick(c, 2000)
	if violations != 0 {
		t.Fatalf("%d commands issued outside their owner's turn", violations)
	}
	var served int64
	for d := range c.Dom {
		served += c.Dom[d].Reads
	}
	if served != 32 {
		t.Errorf("served %d of 32 reads", served)
	}
}

func TestTPFineGrainedOneTransactionPerTurn(t *testing.T) {
	c, tp := tpCtl(t, TPBankPartitioned, 8, 15)
	for d := 0; d < 8; d++ {
		for i := 0; i < 4; i++ {
			c.EnqueueRead(d, addr(d, d, i+1), nil)
		}
	}
	actsPerTurn := map[int64]int{}
	c.Chan.OnIssue = func(cmd dram.Command, cycle int64, _ bool) {
		if cmd.Kind == dram.KindActivate {
			actsPerTurn[cycle/tp.TurnLength]++
		}
	}
	tick(c, 3000)
	for turn, n := range actsPerTurn {
		if n > 1 {
			t.Fatalf("turn %d started %d transactions at the minimum turn length", turn, n)
		}
	}
}

func TestTPCoarseGrainedMultipleTransactions(t *testing.T) {
	c, tp := tpCtl(t, TPBankPartitioned, 4, 25)
	for d := 0; d < 4; d++ {
		for i := 0; i < 8; i++ {
			c.EnqueueRead(d, addr(i%8, d, i+1), nil)
		}
	}
	maxPerTurn := 0
	acts := map[int64]int{}
	c.Chan.OnIssue = func(cmd dram.Command, cycle int64, _ bool) {
		if cmd.Kind == dram.KindActivate {
			acts[cycle/tp.TurnLength]++
			if acts[cycle/tp.TurnLength] > maxPerTurn {
				maxPerTurn = acts[cycle/tp.TurnLength]
			}
		}
	}
	tick(c, 3000)
	if maxPerTurn < 2 {
		t.Errorf("coarse turn never batched transactions (max %d per turn)", maxPerTurn)
	}
}

func TestTPNoPartitioningIsTimingLegal(t *testing.T) {
	// All domains hammer the same bank: the NP reserve must keep the
	// channel legal (any violation panics inside dram validation... here it
	// surfaces as requests never completing).
	c, _ := tpCtl(t, TPNoPartitioning, 4, 43)
	for d := 0; d < 4; d++ {
		for i := 0; i < 4; i++ {
			c.EnqueueRead(d, addr(0, 0, 100*d+i+1), nil)
		}
	}
	tick(c, 43*4*40)
	var served int64
	for d := range c.Dom {
		served += c.Dom[d].Reads
	}
	if served != 16 {
		t.Fatalf("served %d of 16 same-bank reads", served)
	}
}
