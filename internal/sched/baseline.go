// Package sched contains the non-FS scheduling policies the paper compares
// against: an optimized non-secure baseline in the FR-FCFS family (standing
// in for the Memory Scheduling Championship 2012 winner) and Temporal
// Partitioning (Wang et al., HPCA 2014).
package sched

import (
	"math"

	"fsmem/internal/dram"
	"fsmem/internal/mem"
)

// Baseline is the optimized non-secure scheduler: open-page FR-FCFS with
// row-hit-first command selection, read-over-write priority, and
// watermark-based write draining. It freely mixes requests from all
// domains, which is precisely the behavior that leaks timing information.
type Baseline struct {
	p dram.Params

	// Write-drain watermarks as fractions of total write-buffer capacity.
	hi, lo int

	draining bool

	// Refresh state (per rank), active when RefreshEnabled.
	RefreshEnabled  bool
	refreshDeadline []int64

	// scratch backs gather's age-ordered view, reused across ticks.
	scratch []*mem.Request
}

// NewBaseline builds the baseline policy for the given parameters and
// per-domain controller configuration.
func NewBaseline(p dram.Params, cfg mem.Config) *Baseline {
	total := cfg.WriteCap * cfg.Domains
	b := &Baseline{
		p:  p,
		hi: total * 3 / 4,
		lo: total / 4,
	}
	b.refreshDeadline = make([]int64, p.RanksPerChan)
	for r := range b.refreshDeadline {
		b.refreshDeadline[r] = int64(p.TREFI)
	}
	return b
}

// Name implements mem.Scheduler.
func (b *Baseline) Name() string { return "baseline" }

// NextEvent implements mem.EventSource. With any request queued the policy
// may act on the very next tick; while the drain latch is set an otherwise
// idle tick still settles it back below the low watermark (the latch is
// observable through ObsMetrics, so its settling cycle must stay exact).
// Otherwise only a refresh deadline can wake the scheduler.
func (b *Baseline) NextEvent(c *mem.Controller) int64 {
	if b.draining || c.PendingReads() > 0 || c.PendingWrites() > 0 {
		return c.Cycle
	}
	if !b.RefreshEnabled {
		return math.MaxInt64
	}
	h := int64(math.MaxInt64)
	for _, d := range b.refreshDeadline {
		if d < h {
			h = d
		}
	}
	if h < c.Cycle {
		h = c.Cycle // refresh overdue (e.g. blocked last tick): retry now
	}
	return h
}

// Tick issues at most one command according to FR-FCFS priorities.
func (b *Baseline) Tick(c *mem.Controller) {
	if b.RefreshEnabled && b.tickRefresh(c) {
		return
	}

	pw := c.PendingWrites()
	if pw >= b.hi {
		b.draining = true
	}
	if pw <= b.lo {
		b.draining = false
	}

	writesFirst := b.draining || c.PendingReads() == 0
	if writesFirst {
		if b.serve(c, true) || b.serve(c, false) {
			return
		}
	} else {
		if b.serve(c, false) || b.serve(c, true) {
			return
		}
	}
}

// serve attempts one command for the given request class. Priority order:
//  1. column access for the oldest row-hit request,
//  2. activate for the oldest request to a closed bank,
//  3. precharge for a bank whose oldest request is a row conflict and no
//     queued request still wants the open row.
func (b *Baseline) serve(c *mem.Controller, writes bool) bool {
	reqs := b.gather(c, writes)
	if len(reqs) == 0 {
		return false
	}

	// 1. Row hits, oldest first.
	for _, r := range reqs {
		if c.Chan.OpenRow(r.Addr.Rank, r.Addr.Bank) == r.Addr.Row {
			if b.issueCAS(c, r, writes) {
				return true
			}
		}
	}
	// 2. Activates for closed banks, oldest first.
	for _, r := range reqs {
		if c.Chan.OpenRow(r.Addr.Rank, r.Addr.Bank) == dram.ClosedRow {
			cmd := dram.Command{Kind: dram.KindActivate, Rank: r.Addr.Rank, Bank: r.Addr.Bank, Row: r.Addr.Row, Domain: r.Domain}
			if c.TryIssue(cmd) {
				c.RecordFirstCommand(r)
				r.Acted = true
				return true
			}
		}
	}
	// 3. Precharge row conflicts with no remaining hits to the open row.
	for _, r := range reqs {
		open := c.Chan.OpenRow(r.Addr.Rank, r.Addr.Bank)
		if open == dram.ClosedRow || open == r.Addr.Row {
			continue
		}
		if b.anyWantsRow(c, r.Addr.Rank, r.Addr.Bank, open) {
			continue
		}
		cmd := dram.Command{Kind: dram.KindPrecharge, Rank: r.Addr.Rank, Bank: r.Addr.Bank, Domain: r.Domain}
		if c.TryIssue(cmd) {
			return true
		}
	}
	return false
}

// gather flattens per-domain queues into a single age-ordered view.
func (b *Baseline) gather(c *mem.Controller, writes bool) []*mem.Request {
	qs := c.ReadQ
	if writes {
		qs = c.WriteQ
	}
	out := b.scratch[:0]
	for _, q := range qs {
		out = append(out, q...)
	}
	// Insertion sort by arrival: queues are individually ordered and small.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Arrive < out[j-1].Arrive; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	b.scratch = out
	return out
}

func (b *Baseline) anyWantsRow(c *mem.Controller, rank, bank, row int) bool {
	for _, qs := range [][][]*mem.Request{c.ReadQ, c.WriteQ} {
		for _, q := range qs {
			for _, r := range q {
				if r.Addr.Rank == rank && r.Addr.Bank == bank && r.Addr.Row == row {
					return true
				}
			}
		}
	}
	return false
}

func (b *Baseline) issueCAS(c *mem.Controller, r *mem.Request, write bool) bool {
	kind := dram.KindRead
	dataStart := b.p.ReadDataStart()
	if write {
		kind = dram.KindWrite
		dataStart = b.p.WriteDataStart()
	}
	cmd := dram.Command{Kind: kind, Rank: r.Addr.Rank, Bank: r.Addr.Bank, Col: r.Addr.Col, Domain: r.Domain}
	if !c.TryIssue(cmd) {
		return false
	}
	c.RecordFirstCommand(r)
	if !r.Acted {
		c.Dom[r.Domain].RowHits++
	}
	r.DataEnd = c.Cycle + int64(dataStart) + int64(b.p.TBURST)
	var err error
	if write {
		err = c.RemoveWrite(r)
	} else {
		err = c.RemoveRead(r)
	}
	if err != nil {
		c.ReportViolation(err)
	}
	c.CompleteAt(r, r.DataEnd)
	return true
}

// tickRefresh manages per-rank refresh: when a deadline passes, open banks
// are precharged and REF issued; returns true if it used the command bus.
func (b *Baseline) tickRefresh(c *mem.Controller) bool {
	for rank := range b.refreshDeadline {
		if c.Cycle < b.refreshDeadline[rank] {
			continue
		}
		// Close any open bank first.
		for bank := 0; bank < b.p.BanksPerRank; bank++ {
			if c.Chan.OpenRow(rank, bank) != dram.ClosedRow {
				cmd := dram.Command{Kind: dram.KindPrecharge, Rank: rank, Bank: bank, Domain: dram.NoDomain}
				if c.TryIssue(cmd) {
					return true
				}
				return false // blocked this cycle; retry next
			}
		}
		cmd := dram.Command{Kind: dram.KindRefresh, Rank: rank, Domain: dram.NoDomain}
		if c.TryIssue(cmd) {
			b.refreshDeadline[rank] += int64(b.p.TREFI)
			return true
		}
		return false
	}
	return false
}

// ObsMetrics contributes the policy's live state to an observability
// snapshot (structurally satisfies obs.MetricSource).
func (b *Baseline) ObsMetrics(emit func(name string, value float64)) {
	emit("drain_high_watermark", float64(b.hi))
	emit("drain_low_watermark", float64(b.lo))
	draining := 0.0
	if b.draining {
		draining = 1
	}
	emit("draining", draining)
}
