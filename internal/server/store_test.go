package server

import (
	"bytes"
	"os"
	"testing"

	"fsmem/internal/fault"
	"fsmem/internal/fsmerr"
)

func TestStorePutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := "sim|mcf|fs_bp|c2|r300|s1"
	payload := []byte(`{"result":"payload without trailing newline"}`)
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get = ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get returned %q, want %q", got, payload)
	}
	// Rewriting the same key is idempotent (deterministic replay
	// produces identical bytes) and does not double-count the entry.
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	entries, hits, misses, corrupt, writes := s.Stats()
	if entries != 1 || hits != 1 || misses != 0 || corrupt != 0 || writes != 2 {
		t.Fatalf("stats = %d/%d/%d/%d/%d, want 1/1/0/0/2", entries, hits, misses, corrupt, writes)
	}

	// A reopened store over the same directory still serves the entry
	// and counts it.
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if entries, _, _, _, _ := s2.Stats(); entries != 1 {
		t.Fatalf("reopened store counts %d entries, want 1", entries)
	}
	got, ok, err = s2.Get(key)
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("reopened Get = %q ok=%v err=%v", got, ok, err)
	}

	// An unknown key is a plain miss.
	if _, ok, err := s.Get("no-such-key"); ok || err != nil {
		t.Fatalf("missing key: ok=%v err=%v, want plain miss", ok, err)
	}
}

// TestStoreCorruptionDetected drives every disk-fault kind through the
// injector and pins the self-healing contract: a damaged entry is
// detected by its embedded checksum, deleted on sight, and reported as
// a miss with a storage error — never served.
func TestStoreCorruptionDetected(t *testing.T) {
	for _, kind := range []fault.DiskFaultKind{fault.DiskTruncate, fault.DiskBitFlip, fault.DiskGarbage} {
		t.Run(kind.String(), func(t *testing.T) {
			s, err := OpenStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key := "k/" + kind.String()
			payload := []byte(`{"doc":"bytes that must never be served once damaged"}`)
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			if err := fault.CorruptFile(s.Path(key), kind, 7); err != nil {
				t.Fatal(err)
			}
			got, ok, err := s.Get(key)
			if ok || got != nil {
				t.Fatalf("corrupt entry served: %q", got)
			}
			if fsmerr.CodeOf(err) != fsmerr.CodeStorage {
				t.Fatalf("corruption error = %v, want CodeStorage", err)
			}
			if _, serr := os.Stat(s.Path(key)); !os.IsNotExist(serr) {
				t.Fatalf("corrupt entry not deleted: stat err %v", serr)
			}
			// The next read is a plain miss: the caller re-simulates.
			if _, ok, err := s.Get(key); ok || err != nil {
				t.Fatalf("post-deletion read: ok=%v err=%v, want plain miss", ok, err)
			}
			entries, _, _, corrupt, _ := s.Stats()
			if entries != 0 || corrupt != 1 {
				t.Fatalf("entries=%d corrupt=%d, want 0/1", entries, corrupt)
			}
		})
	}
}

// TestStoreNilAndDisabled pins the degraded modes: a nil store (no
// -data-dir) is a silent miss/no-op, and a disabled store (crash
// simulation) drops writes.
func TestStoreNilAndDisabled(t *testing.T) {
	var nilStore *Store
	if err := nilStore.Put("k", []byte("v")); err != nil {
		t.Fatalf("nil Put: %v", err)
	}
	if _, ok, err := nilStore.Get("k"); ok || err != nil {
		t.Fatalf("nil Get: ok=%v err=%v", ok, err)
	}
	nilStore.disable() // must not panic

	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.disable()
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("k"); ok {
		t.Fatal("write after disable reached disk")
	}
}
