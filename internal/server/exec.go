package server

import (
	"context"
	"fmt"

	"fsmem/internal/addr"
	"fsmem/internal/audit"
	"fsmem/internal/experiments"
	"fsmem/internal/fault"
	"fsmem/internal/fsmerr"
	"fsmem/internal/leakage"
	"fsmem/internal/obs"
	"fsmem/internal/parallel"
	"fsmem/internal/sim"
	"fsmem/internal/workload"
)

// execute runs one job body on the parallel engine (one cell: panic
// isolation and ordered error semantics for free; grid-shaped jobs
// shard further inside the cell through the same engine). It is also
// where the durability contract is upheld: the transition to running is
// journaled first, a finished result is persisted to the store before
// the job is journaled done (so "done" in the journal implies the
// result is on disk), and a job whose execution panics accumulates a
// crash counter that quarantines it at the manager's threshold instead
// of letting one poison config wedge the queue.
func (m *Manager) execute(j *Job) {
	// Belt and braces on top of the pool's cell isolation: a panic in
	// the journaling or bookkeeping below must never kill the worker
	// goroutine — that would silently shrink the executor pool.
	defer func() {
		if r := recover(); r != nil {
			err := fsmerr.New(fsmerr.CodePanic, "server.execute", "executor panic: %v", r)
			m.failed.Add(1)
			j.finish(StateFailed, nil, err)
			m.noteFinished(j.ID)
		}
	}()

	j.mu.Lock()
	if j.state.Terminal() { // canceled while queued
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j.cancel = cancel
	j.state = StateRunning
	attempts := j.attempts
	j.mu.Unlock()
	defer cancel()

	m.journalState(j.ID, StateRunning, attempts)
	m.executed.Add(1)
	m.inFlight.Add(1)
	defer m.inFlight.Add(-1)
	j.events.publish(JobEvent{Phase: string(StateRunning), State: StateRunning})

	body := m.run
	if m.testRun != nil {
		body = m.testRun
	}
	results, err := parallel.Map(ctx, 1, []parallel.Cell[*cacheEntry]{{
		Key: string(j.Req.Kind) + "/" + j.ID,
		Run: func(ctx context.Context) (*cacheEntry, error) { return body(ctx, j) },
	}})
	entry := results[0]
	switch {
	case err == nil && entry != nil:
		if m.store != nil {
			if perr := m.store.Put(entry.key, entry.result); perr != nil {
				m.storeErrors.Add(1)
			}
		}
		m.cache.put(entry)
		m.completed.Add(1)
		j.finish(StateDone, entry, nil)
		m.journalState(j.ID, StateDone, attempts)
	case fsmerr.CodeOf(err) == fsmerr.CodeCanceled:
		m.canceled.Add(1)
		j.finish(StateCanceled, nil, err)
		m.journalState(j.ID, StateCanceled, attempts)
	case fsmerr.CodeOf(err) == fsmerr.CodePanic:
		attempts = m.bumpAttempts(j.ID)
		j.mu.Lock()
		j.attempts = attempts
		j.mu.Unlock()
		if attempts >= m.quarantineAfter {
			m.quarantined.Add(1)
			j.finish(StateQuarantined, nil, quarantineErr(attempts))
			m.journalState(j.ID, StateQuarantined, attempts)
		} else {
			m.failed.Add(1)
			j.finish(StateFailed, nil, err)
			m.journalState(j.ID, StateFailed, attempts)
		}
	default:
		if err == nil {
			err = fsmerr.New(fsmerr.CodeExperiment, "server.execute", "job produced no result")
		}
		m.failed.Add(1)
		j.finish(StateFailed, nil, err)
		m.journalState(j.ID, StateFailed, attempts)
	}
	m.noteFinished(j.ID)
}

// bumpAttempts increments a job's executor-crash counter.
func (m *Manager) bumpAttempts(id string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.attempts[id]++
	return m.attempts[id]
}

// run computes one job's result document. It runs inside a parallel
// cell, so a panic anywhere below surfaces as a structured CodePanic
// error and a canceled context as CodeCanceled.
func (m *Manager) run(ctx context.Context, j *Job) (*cacheEntry, error) {
	switch j.Req.Kind {
	case KindSimulate:
		return m.runSimulate(ctx, j)
	case KindFigures:
		return m.runFigures(ctx, j)
	case KindLeakage:
		return m.runLeakage(ctx, j)
	case KindChaos:
		return m.runChaos(ctx, j)
	case KindAudit:
		return m.runAudit(ctx, j)
	default:
		return nil, fsmerr.New(fsmerr.CodeConfig, "server.run", "unknown job kind %q", j.Req.Kind)
	}
}

func (m *Manager) runSimulate(ctx context.Context, j *Job) (*cacheEntry, error) {
	cfg, err := j.Req.Simulate.ToSimConfig()
	if err != nil {
		return nil, fsmerr.Wrap(fsmerr.CodeConfig, "server.simulate", err)
	}
	if j.Req.Observe {
		cfg.Observe = &obs.Options{}
	}
	j.progressTotal.Store(1)
	res, err := sim.SimulateContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	j.progressDone.Store(1)
	j.events.publish(JobEvent{Phase: "progress", Cell: experiments.MemoKey(cfg), Done: 1, Total: 1})
	b, err := marshalResult(Summarize(cfg, res))
	if err != nil {
		return nil, fsmerr.Wrap(fsmerr.CodeExperiment, "server.simulate", err)
	}
	return &cacheEntry{key: j.Key, result: b, trace: res.Trace}, nil
}

// figureFuncs maps wire figure IDs onto runner entry points.
var figureFuncs = map[string]func(*experiments.Runner) (experiments.Table, error){
	"3": experiments.Figure3,
	"4": func(r *experiments.Runner) (experiments.Table, error) {
		t, _, err := experiments.Figure4(r)
		return t, err
	},
	"5":  experiments.Figure5,
	"6":  experiments.Figure6,
	"7":  experiments.Figure7,
	"8":  experiments.Figure8,
	"9":  experiments.Figure9,
	"10": experiments.Figure10,
	"s6": experiments.Section6,
}

func (m *Manager) runFigures(ctx context.Context, j *Job) (*cacheEntry, error) {
	req := j.Req.Figures
	workers := req.Workers
	if workers <= 0 || workers > m.gridShards {
		workers = m.gridShards
	}
	r := experiments.NewRunner(experiments.Settings{
		Cores:       req.Cores,
		TargetReads: req.Reads,
		Seed:        req.Seed,
		Workers:     workers,
		OnCell: func(key string) {
			// Per-cell progress from the pool workers; the grid size is
			// not known upfront, so Total stays 0.
			done := int(j.progressDone.Add(1))
			j.events.publish(JobEvent{Phase: "progress", Cell: key, Done: done})
		},
	})
	r.Ctx = ctx

	var out FiguresResult
	runOne := func(id string, f func(*experiments.Runner) (experiments.Table, error)) error {
		t, err := f(r)
		if err != nil {
			if fsmerr.CodeOf(err) == fsmerr.CodeCanceled {
				return err
			}
			out.Errors = append(out.Errors, fmt.Sprintf("figure %s: %v", id, err))
			return nil
		}
		out.Tables = append(out.Tables, t)
		return nil
	}
	ids := req.Figures
	if len(ids) == 0 {
		ids = experiments.Names()
	}
	for _, id := range ids {
		if err := runOne(id, figureFuncs[id]); err != nil {
			return nil, err
		}
	}
	b, err := marshalResult(out)
	if err != nil {
		return nil, fsmerr.Wrap(fsmerr.CodeExperiment, "server.figures", err)
	}
	return &cacheEntry{key: j.Key, result: b}, nil
}

func (m *Manager) runLeakage(ctx context.Context, j *Job) (*cacheEntry, error) {
	req := j.Req.Leakage
	attacker, err := workload.ByName(req.Attacker)
	if err != nil {
		return nil, fsmerr.Wrap(fsmerr.CodeConfig, "server.leakage", err)
	}
	kinds := []sim.SchedulerKind{sim.Baseline, sim.FSRankPart}
	if req.Scheduler != "" {
		k, err := schedulerByName(req.Scheduler)
		if err != nil {
			return nil, fsmerr.Wrap(fsmerr.CodeConfig, "server.leakage", err)
		}
		kinds = []sim.SchedulerKind{k}
	}
	milestone := int64(10_000)
	total := req.Samples * milestone
	// Journal records from before the fabric carry no routing; default it
	// like normalize() does for fresh submissions.
	routing := addr.RouteColored
	if req.Routing != "" {
		routing, err = addr.RoutingByName(req.Routing)
		if err != nil {
			return nil, fsmerr.Wrap(fsmerr.CodeConfig, "server.leakage", err)
		}
	}
	coRunners := []workload.Profile{workload.Synthetic("idle", 0.01), workload.Synthetic("streaming", 45)}

	var cells []parallel.Cell[leakage.Profile]
	for _, k := range kinds {
		for _, co := range coRunners {
			k, co := k, co
			cells = append(cells, parallel.Cell[leakage.Profile]{
				Key: fmt.Sprintf("leakage/%v/%s", k, co.Name),
				Run: func(context.Context) (leakage.Profile, error) {
					p, err := leakage.CollectProfile(k, attacker, co, req.Cores, milestone, total, req.Seed, req.Channels, routing)
					if err == nil {
						done := int(j.progressDone.Add(1))
						j.events.publish(JobEvent{Phase: "progress", Cell: fmt.Sprintf("%v/%s", k, co.Name),
							Done: done, Total: len(kinds) * len(coRunners)})
					}
					return p, err
				},
			})
		}
	}
	j.progressTotal.Store(int64(len(cells)))
	profiles, err := parallel.Map(ctx, m.gridShards, cells)
	if err != nil {
		return nil, err
	}
	out := LeakageResult{Attacker: attacker.Name}
	for i, k := range kinds {
		quiet, loud := profiles[2*i], profiles[2*i+1]
		div, err := leakage.Divergence(quiet, loud)
		if err != nil {
			return nil, fsmerr.Wrap(fsmerr.CodeExperiment, "server.leakage", err)
		}
		mi := leakage.MutualInformationBits(leakage.EpochDurations(quiet), leakage.EpochDurations(loud), 16)
		out.Rows = append(out.Rows, LeakageRow{
			Scheduler:             k.String(),
			Identical:             leakage.Identical(quiet, loud),
			MaxDivergence:         div,
			MutualInformationBits: mi,
		})
	}
	b, err := marshalResult(out)
	if err != nil {
		return nil, fsmerr.Wrap(fsmerr.CodeExperiment, "server.leakage", err)
	}
	return &cacheEntry{key: j.Key, result: b}, nil
}

func (m *Manager) runAudit(ctx context.Context, j *Job) (*cacheEntry, error) {
	req := j.Req.Audit
	k, err := schedulerByName(req.Scheduler)
	if err != nil {
		return nil, fsmerr.Wrap(fsmerr.CodeConfig, "server.audit", err)
	}
	routing := addr.RouteColored
	if req.Routing != "" {
		routing, err = addr.RoutingByName(req.Routing)
		if err != nil {
			return nil, fsmerr.Wrap(fsmerr.CodeConfig, "server.audit", err)
		}
	}
	cert, err := audit.Run(ctx, k, audit.Options{
		Domains:         req.Cores,
		Bits:            req.Bits,
		WindowBusCycles: req.Window,
		Seed:            req.Seed,
		Seeds:           req.Seeds,
		Permutations:    req.Permutations,
		Rounds:          req.Rounds,
		Workers:         m.gridShards,
		FaultPlan:       req.Fault,
		FaultSeed:       req.FaultSeed,
		Channels:        req.Channels,
		Routing:         routing,
		Metrics:         &m.auditMetrics,
		Progress: func(stage string, done, total int) {
			// Campaign totals grow per stage; report the stage-local count
			// and leave the job total open like the figure grid does.
			j.progressDone.Store(int64(done))
			j.events.publish(JobEvent{Phase: "progress", Cell: "audit/" + stage, Done: done})
		},
	})
	if err != nil {
		return nil, err
	}
	// audit.MarshalCertificate and marshalResult produce the same bytes;
	// going through the shared helper keeps daemon-served certificates
	// byte-identical to direct audit.Run output by construction.
	b, err := audit.MarshalCertificate(cert)
	if err != nil {
		return nil, fsmerr.Wrap(fsmerr.CodeExperiment, "server.audit", err)
	}
	return &cacheEntry{key: j.Key, result: b}, nil
}

func (m *Manager) runChaos(ctx context.Context, j *Job) (*cacheEntry, error) {
	req := j.Req.Chaos
	k, err := schedulerByName(req.Scheduler)
	if err != nil {
		return nil, fsmerr.Wrap(fsmerr.CodeConfig, "server.chaos", err)
	}
	mix, err := workload.Rate(req.Workload, req.Cores)
	if err != nil {
		return nil, fsmerr.Wrap(fsmerr.CodeConfig, "server.chaos", err)
	}
	cfg := sim.DefaultConfig(mix, k)
	cfg.Seed = 1
	if req.Cycles > 0 {
		cfg.TargetReads = 0
		cfg.MaxBusCycles = req.Cycles
	}
	plans := fault.CampaignPlans(req.Cores, req.Seed)
	j.progressTotal.Store(int64(len(plans)) + 1) // +1 for the reference run
	res, err := sim.RunCampaignContext(ctx, cfg, plans, m.gridShards)
	if err != nil {
		return nil, err
	}
	j.progressDone.Store(int64(len(plans)) + 1)
	out := ChaosResult{
		Scheduler:  res.Scheduler,
		Cycles:     res.Cycles,
		Undetected: res.Undetected(),
		Outcomes:   res.Outcomes,
	}
	b, err := marshalResult(out)
	if err != nil {
		return nil, fsmerr.Wrap(fsmerr.CodeExperiment, "server.chaos", err)
	}
	return &cacheEntry{key: j.Key, result: b}, nil
}
