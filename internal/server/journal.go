package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"fsmem/internal/fsmerr"
)

// The job journal is fsmemd's write-ahead log: every accepted JobRequest
// is appended (and fsynced) before it is enqueued, and every state
// transition is appended as the job moves through its lifecycle. After a
// crash, replaying the journal reconstructs exactly which jobs were
// accepted and how far they got; because simulation output is a
// byte-deterministic function of the request, re-executing a journaled
// job is guaranteed to reproduce the identical result document, so
// recovery never needs an undo log — replay is always sound.
//
// Format: JSONL, one record per line, each line prefixed with the CRC32
// (IEEE) of its JSON payload in fixed-width hex:
//
//	crc32 <space> {"op":"accept","id":"j...","key":"...","req":{...}}
//	crc32 <space> {"op":"state","id":"j...","state":"done","attempts":0}
//
// A torn or bit-flipped line fails its checksum and is skipped (counted)
// during replay; a "state" record whose job was never accepted is an
// orphan and is also skipped. On startup the journal is compacted: done,
// canceled, and cleanly failed jobs are dropped (results live in the
// Store; failures are reproducible), while queued/running/quarantined
// jobs and failure counters survive as fresh records in a new file
// written atomically beside the old one.

// journalRecord is one journal line's JSON payload.
type journalRecord struct {
	Op       string      `json:"op"` // "accept" or "state"
	ID       string      `json:"id"`
	Key      string      `json:"key,omitempty"`
	Req      *JobRequest `json:"req,omitempty"`
	State    JobState    `json:"state,omitempty"`
	Attempts int         `json:"attempts,omitempty"`
}

// journaledJob is one job's reconstructed lifecycle after replay.
type journaledJob struct {
	ID       string
	Key      string
	Req      JobRequest
	State    JobState
	Attempts int
	seq      int // accept order, for deterministic re-enqueue
}

// journal is the append-side handle. Appends are serialized and fsynced;
// the file is only ever read (and compacted) at startup, before any
// appender exists.
type journal struct {
	mu   sync.Mutex
	f    *os.File
	path string

	// disabled drops appends; the crash tests use it to freeze the
	// on-disk journal the way a SIGKILL would.
	disabled atomic.Bool

	appends atomic.Int64
}

const journalName = "journal.jsonl"

// openJournal opens (creating if needed) the journal file for appending.
func openJournal(dir string) (*journal, error) {
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fsmerr.Wrap(fsmerr.CodeStorage, "server.openJournal", err)
	}
	return &journal{f: f, path: path}, nil
}

// append writes one checksummed record and fsyncs it.
func (j *journal) append(rec journalRecord) error {
	if j == nil || j.disabled.Load() {
		return nil
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fsmerr.Wrap(fsmerr.CodeStorage, "server.journal.append", err)
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(payload), payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.WriteString(line); err != nil {
		return fsmerr.Wrap(fsmerr.CodeStorage, "server.journal.append", err)
	}
	if err := j.f.Sync(); err != nil {
		return fsmerr.Wrap(fsmerr.CodeStorage, "server.journal.append", err)
	}
	j.appends.Add(1)
	return nil
}

// accept journals a job acceptance (the write-ahead step of Submit).
func (j *journal) accept(id, key string, req JobRequest) error {
	return j.append(journalRecord{Op: "accept", ID: id, Key: key, Req: &req})
}

// state journals a lifecycle transition.
func (j *journal) state(id string, s JobState, attempts int) error {
	return j.append(journalRecord{Op: "state", ID: id, State: s, Attempts: attempts})
}

// appendCount reads the append counter for the metrics endpoint.
func (j *journal) appendCount() int64 {
	if j == nil {
		return 0
	}
	return j.appends.Load()
}

// disable drops all subsequent appends (crash simulation for tests).
func (j *journal) disable() {
	if j != nil {
		j.disabled.Store(true)
	}
}

func (j *journal) close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// parseJournalLine decodes one checksummed line. ok=false means the
// line is torn or corrupt and must be skipped.
func parseJournalLine(line []byte) (journalRecord, bool) {
	var rec journalRecord
	if len(line) < 10 || line[8] != ' ' {
		return rec, false
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
		return rec, false
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != sum {
		return rec, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, false
	}
	if rec.ID == "" || (rec.Op != "accept" && rec.Op != "state") {
		return rec, false
	}
	return rec, true
}

// replayJournal reads a journal file and folds it into per-job final
// states. Corrupt lines, orphan state records, and accept records whose
// request no longer normalizes are skipped and counted — a damaged
// journal degrades to losing the damaged jobs, never to a failed boot.
// A missing file is an empty journal.
func replayJournal(dir string) (jobs map[string]*journaledJob, skipped int, err error) {
	f, err := os.Open(filepath.Join(dir, journalName))
	if os.IsNotExist(err) {
		return map[string]*journaledJob{}, 0, nil
	}
	if err != nil {
		return nil, 0, fsmerr.Wrap(fsmerr.CodeStorage, "server.replayJournal", err)
	}
	defer f.Close()

	jobs = map[string]*journaledJob{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	seq := 0
	for sc.Scan() {
		rec, ok := parseJournalLine(sc.Bytes())
		if !ok {
			skipped++
			continue
		}
		switch rec.Op {
		case "accept":
			if rec.Req == nil {
				skipped++
				continue
			}
			req := *rec.Req
			key, err := req.normalize()
			if err != nil || jobID(key) != rec.ID {
				skipped++
				continue
			}
			if _, dup := jobs[rec.ID]; !dup {
				jobs[rec.ID] = &journaledJob{ID: rec.ID, Key: key, Req: req, State: StateQueued, seq: seq}
				seq++
			}
		case "state":
			jj, ok := jobs[rec.ID]
			if !ok {
				skipped++ // orphan: its accept record was lost
				continue
			}
			jj.State = rec.State
			jj.Attempts = rec.Attempts
		}
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fsmerr.Wrap(fsmerr.CodeStorage, "server.replayJournal", err)
	}
	return jobs, skipped, nil
}

// compactJournal atomically rewrites the journal to hold only the jobs
// worth remembering across restarts: non-terminal jobs (they will be
// re-enqueued), quarantined jobs (so the poison verdict sticks), and
// failed jobs with a nonzero failure count (so a crash does not reset
// the road to quarantine). Records are written in original accept order.
func compactJournal(dir string, jobs []*journaledJob) error {
	path := filepath.Join(dir, journalName)
	tmp, err := os.CreateTemp(dir, "journal-*")
	if err != nil {
		return fsmerr.Wrap(fsmerr.CodeStorage, "server.compactJournal", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	writeRec := func(rec journalRecord) error {
		payload, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%08x %s\n", crc32.ChecksumIEEE(payload), payload)
		return err
	}
	for _, jj := range jobs {
		if !keepInJournal(jj) {
			continue
		}
		if err := writeRec(journalRecord{Op: "accept", ID: jj.ID, Key: jj.Key, Req: &jj.Req}); err != nil {
			return fsmerr.Wrap(fsmerr.CodeStorage, "server.compactJournal", err)
		}
		if jj.State != StateQueued || jj.Attempts != 0 {
			if err := writeRec(journalRecord{Op: "state", ID: jj.ID, State: jj.State, Attempts: jj.Attempts}); err != nil {
				return fsmerr.Wrap(fsmerr.CodeStorage, "server.compactJournal", err)
			}
		}
	}
	err = w.Flush()
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fsmerr.Wrap(fsmerr.CodeStorage, "server.compactJournal", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fsmerr.Wrap(fsmerr.CodeStorage, "server.compactJournal", err)
	}
	syncDir(dir)
	return nil
}

// keepInJournal decides which replayed jobs a compaction preserves.
func keepInJournal(jj *journaledJob) bool {
	switch jj.State {
	case StateQueued, StateRunning, StateQuarantined:
		return true
	case StateFailed:
		return jj.Attempts > 0
	default: // done and canceled jobs need no memory
		return false
	}
}
