package server

import (
	"sync"
	"time"
)

// tokenBucket is the submission rate limiter: capacity burst tokens,
// refilled at rate tokens/second. Allow is O(1) and lock-cheap — it is
// on the request path of every POST /v1/jobs. The clock is injected at
// construction so the rate-limit tests (and the Retry-After math) are
// deterministic instead of sleeping real wall time.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

// newTokenBucket builds a full bucket. now may be nil (= time.Now).
func newTokenBucket(rate, burst float64, now func() time.Time) *tokenBucket {
	if rate <= 0 {
		rate = 50
	}
	if burst <= 0 {
		burst = rate
	}
	if now == nil {
		now = time.Now
	}
	b := &tokenBucket{rate: rate, burst: burst, tokens: burst, now: now}
	b.last = b.now()
	return b
}

// refillLocked advances the bucket to the current clock reading.
func (b *tokenBucket) refillLocked() {
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// allow takes one token if available.
func (b *tokenBucket) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// retryAfter reports how long until the next token exists — the
// server's Retry-After hint on a rate_limited rejection.
func (b *tokenBucket) retryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.tokens >= 1 {
		return 0
	}
	return time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}
