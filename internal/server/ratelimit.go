package server

import (
	"sync"
	"time"
)

// tokenBucket is the submission rate limiter: capacity burst tokens,
// refilled at rate tokens/second. Allow is O(1) and lock-cheap — it is
// on the request path of every POST /v1/jobs.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // injectable for tests
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	if rate <= 0 {
		rate = 50
	}
	if burst <= 0 {
		burst = rate
	}
	b := &tokenBucket{rate: rate, burst: burst, tokens: burst, now: time.Now}
	b.last = b.now()
	return b
}

// allow takes one token if available.
func (b *tokenBucket) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
