package cluster

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fsmem/internal/fsmerr"
	"fsmem/internal/obs"
	"fsmem/internal/server"
	"fsmem/internal/server/client"
)

// Options configures the coordinator.
type Options struct {
	// Addr is the listen address for Serve ("" = ":8376").
	Addr string
	// Workers is the initial fleet: fsmemd worker base URLs. More can
	// join later through POST /v1/cluster/register.
	Workers []string
	// HeartbeatInterval paces the fleet health probes (0 = 500ms).
	HeartbeatInterval time.Duration
	// FailAfter is how many consecutive failed heartbeats demote a
	// worker to unhealthy (0 = 2). Demotion cancels the worker's health
	// epoch, which immediately aborts and re-routes everything parked on
	// it — that is the work-stealing path.
	FailAfter int
	// Window bounds in-flight jobs per worker (0 = 8).
	Window int
	// MaxAttempts bounds how many workers one job is tried on before the
	// coordinator gives up (0 = 8). Retrying on another worker is always
	// sound: job IDs are content-addressed and execution is
	// byte-deterministic, so a duplicate execution racing a slow first
	// attempt produces identical bytes.
	MaxAttempts int
	// VerifySample is the fraction [0,1] of completed jobs the
	// coordinator re-executes on a second worker and byte-compares —
	// determinism as a distributed integrity check. Sampling is
	// deterministic per job ID. 0 disables verification.
	VerifySample float64
	// Vnodes is the virtual-node count per ring member (0 = 64).
	Vnodes int
	// CacheEntries bounds the coordinator's local LRU over fetched
	// result documents (0 = 1024); cached jobs are re-served locally
	// without touching the fleet.
	CacheEntries int
	// QueueDepth bounds accepted-but-unfinished jobs; beyond it new
	// submissions get 429 queue_full (0 = 256).
	QueueDepth int
	// PollInterval paces worker status polls for dispatched jobs
	// (0 = 10ms).
	PollInterval time.Duration
	// RequestTimeout bounds request handling (0 = 30s); DrainTimeout
	// bounds graceful drain (0 = 60s).
	RequestTimeout time.Duration
	DrainTimeout   time.Duration

	// newClient overrides worker client construction (tests).
	newClient func(name string) *client.Client
}

func (o *Options) fill() {
	if o.Addr == "" {
		o.Addr = ":8376"
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.FailAfter <= 0 {
		o.FailAfter = 2
	}
	if o.Window <= 0 {
		o.Window = 8
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 8
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 1024
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 10 * time.Millisecond
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 60 * time.Second
	}
}

// job is the coordinator's view of one accepted job.
type job struct {
	ID  string
	Key string
	Req server.JobRequest

	done chan struct{}

	mu       sync.Mutex
	state    server.JobState
	worker   string
	cacheHit bool
	result   []byte
	err      error
}

func (j *job) status() server.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := server.JobStatus{
		ID: j.ID, Kind: j.Req.Kind, State: j.state, Priority: j.Req.Priority,
		CacheHit: j.cacheHit, Worker: j.worker,
	}
	if j.state == server.StateDone {
		s.Progress = server.Progress{Done: 1, Total: 1}
	}
	if j.err != nil {
		s.Error = j.err.Error()
		s.ErrorCode = string(fsmerr.CodeOf(j.err))
	}
	return s
}

func (j *job) setRunning(worker string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		j.state = server.StateRunning
		j.worker = worker
	}
}

// finish moves the job to a terminal state exactly once.
func (j *job) finish(s server.JobState, worker string, result []byte, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = s
	j.worker = worker
	j.result = result
	j.err = err
	j.mu.Unlock()
	close(j.done)
}

// resultEntry is one cached result document and the worker that
// computed it.
type resultEntry struct {
	key    string
	result []byte
	worker string
}

// lruCache is a bounded LRU over fetched result documents, keyed by the
// job's canonical content key.
type lruCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List
	entries map[string]*list.Element
	hits    atomic.Int64
}

func newLRUCache(capEntries int) *lruCache {
	return &lruCache{cap: capEntries, ll: list.New(), entries: map[string]*list.Element{}}
}

func (c *lruCache) get(key string) (*resultEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.hits.Add(1)
	c.ll.MoveToFront(el)
	return el.Value.(*resultEntry), true
}

func (c *lruCache) put(e *resultEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.entries[e.key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*resultEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// maxFinished bounds how many terminal job records stay addressable in
// the coordinator's table (results usually remain in the LRU, so an
// evicted job's resubmission is still a local cache hit).
const maxFinished = 4096

var errNoWorkers = errors.New("no healthy workers")

// Coordinator fronts a fleet of fsmemd workers: it accepts the same
// job API a single daemon serves, consistent-hash-routes each job to a
// worker, re-serves finished results from a local cache, steals work
// off unhealthy workers, and samples cross-worker byte-identity.
type Coordinator struct {
	opts    Options
	members *Registry
	cache   *lruCache

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job
	live     int // accepted, not yet terminal
	finished []string

	registry *obs.Registry
	mux      *http.ServeMux

	httpRequests atomic.Int64
	submitted    atomic.Int64
	completed    atomic.Int64
	failed       atomic.Int64
	cacheHits    atomic.Int64
	retries      atomic.Int64 // dispatch attempts beyond a job's first
	steals       atomic.Int64 // re-routes forced by an unhealthy worker

	verifySampled  atomic.Int64
	verifyOK       atomic.Int64
	verifyMismatch atomic.Int64
	verifySkipped  atomic.Int64 // sampled but no second healthy worker
	verifyErrors   atomic.Int64
}

// New assembles a coordinator over the initial worker fleet and starts
// its heartbeat loop.
func New(o Options) (*Coordinator, error) {
	o.fill()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		opts:       o,
		cache:      newLRUCache(o.CacheEntries),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*job{},
	}
	c.members = newRegistry(o.HeartbeatInterval, o.FailAfter, o.Window, o.Vnodes, o.newClient)
	for _, w := range o.Workers {
		if w == "" {
			continue
		}
		c.members.Add(w)
	}
	c.buildMetrics()
	c.buildRoutes()
	return c, nil
}

// Members exposes the membership registry (tests and /v1/cluster).
func (c *Coordinator) Members() *Registry { return c.members }

// Submit accepts one job: it joins a live duplicate (singleflight),
// answers from the local result cache, or admits the job and dispatches
// it to the fleet in the background. The returned bool is true when
// this call created a new job record.
func (c *Coordinator) Submit(req server.JobRequest) (*job, bool, error) {
	id, key, err := server.Canonicalize(&req)
	if err != nil {
		return nil, false, fsmerr.Wrap(fsmerr.CodeConfig, "cluster.Submit", err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return nil, false, errDraining
	}
	c.submitted.Add(1)
	if j, ok := c.jobs[id]; ok {
		j.mu.Lock()
		terminal := j.state.Terminal()
		j.mu.Unlock()
		if !terminal {
			return j, false, nil // live duplicate: singleflight join
		}
		if j.state == server.StateDone {
			j.mu.Lock()
			j.cacheHit = true
			j.mu.Unlock()
			c.cacheHits.Add(1)
			return j, false, nil
		}
		// Failed terminal record: fall through and retry fresh.
	}
	if e, ok := c.cache.get(key); ok {
		j := c.materializeDoneLocked(id, key, req, e)
		c.cacheHits.Add(1)
		return j, true, nil
	}
	if c.live >= c.opts.QueueDepth {
		return nil, false, errQueueFull
	}
	j := &job{ID: id, Key: key, Req: req, done: make(chan struct{})}
	j.state = server.StateQueued
	c.jobs[id] = j
	c.live++
	c.wg.Add(1)
	go c.dispatch(j)
	return j, true, nil
}

// materializeDoneLocked installs a finished job served from the local
// cache. Caller holds c.mu.
func (c *Coordinator) materializeDoneLocked(id, key string, req server.JobRequest, e *resultEntry) *job {
	j := &job{ID: id, Key: key, Req: req, done: make(chan struct{})}
	j.state = server.StateDone
	j.cacheHit = true
	j.worker = e.worker
	j.result = e.result
	close(j.done)
	c.jobs[id] = j
	c.rememberFinishedLocked(id)
	return j
}

func (c *Coordinator) rememberFinishedLocked(id string) {
	c.finished = append(c.finished, id)
	for len(c.finished) > maxFinished {
		evict := c.finished[0]
		c.finished = c.finished[1:]
		if j, ok := c.jobs[evict]; ok {
			j.mu.Lock()
			terminal := j.state.Terminal()
			j.mu.Unlock()
			if terminal {
				delete(c.jobs, evict)
			}
		}
	}
}

// noteFinished records a job's terminal transition for table eviction
// and the live-count backpressure.
func (c *Coordinator) noteFinished(id string) {
	c.mu.Lock()
	c.live--
	c.rememberFinishedLocked(id)
	c.mu.Unlock()
}

// Get returns a job by ID.
func (c *Coordinator) Get(id string) (*job, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

// dispatch places one job on the fleet, walking the ring's preference
// order across failures: the owner first, then successive distinct
// members. Deterministic worker-side failures stop the walk (the same
// config fails identically everywhere); transport errors and unhealthy
// epochs re-route — the retry is idempotent because the job ID is
// content-addressed.
func (c *Coordinator) dispatch(j *job) {
	defer c.wg.Done()
	defer c.noteFinished(j.ID)
	tried := map[string]bool{}
	var lastErr error = errNoWorkers
	for attempt := 1; attempt <= c.opts.MaxAttempts; attempt++ {
		if c.baseCtx.Err() != nil {
			break
		}
		m := c.members.Pick(j.ID, tried)
		if m == nil {
			// Every member tried or unhealthy: clear the visited set and
			// wait a heartbeat for the fleet to recover before burning
			// another attempt.
			tried = map[string]bool{}
			select {
			case <-c.baseCtx.Done():
			case <-time.After(c.opts.HeartbeatInterval):
			}
			lastErr = errNoWorkers
			continue
		}
		if attempt > 1 {
			c.retries.Add(1)
		}
		err := c.runOn(j, m)
		if err == nil {
			return // job reached a terminal state
		}
		lastErr = err
		tried[m.Name] = true
		if !m.Healthy() {
			m.stolen.Add(1)
			c.steals.Add(1)
		}
	}
	c.failed.Add(1)
	j.finish(server.StateFailed, "", nil,
		fsmerr.New(fsmerr.CodeExperiment, "cluster.dispatch",
			"job %s failed after %d dispatch attempts: %v", j.ID, c.opts.MaxAttempts, lastErr))
}

// runOn executes one dispatch attempt on member m. A nil return means
// the job reached a terminal state (done, or a deterministic worker
// verdict); an error means the attempt should be retried elsewhere.
func (c *Coordinator) runOn(j *job, m *Member) error {
	// Bind the attempt to the member's health epoch: the moment the
	// heartbeat loop demotes m, everything below aborts and the caller
	// re-routes — queued work is stolen off the dying worker without
	// waiting out an HTTP timeout.
	ctx, cancel := context.WithCancel(c.baseCtx)
	defer cancel()
	stop := context.AfterFunc(m.epoch(), cancel)
	defer stop()

	if err := m.acquire(ctx); err != nil {
		return fmt.Errorf("worker %s window: %w", m.Name, err)
	}
	defer m.release()
	m.routed.Add(1)
	j.setRunning(m.Name)

	st, err := m.cl.Submit(ctx, j.Req)
	if err != nil {
		m.failedJobs.Add(1)
		return fmt.Errorf("worker %s submit: %w", m.Name, err)
	}
	if !st.State.Terminal() {
		st, err = m.cl.Wait(ctx, st.ID, c.opts.PollInterval)
		if err != nil {
			m.failedJobs.Add(1)
			return fmt.Errorf("worker %s wait: %w", m.Name, err)
		}
	}
	switch st.State {
	case server.StateDone:
		raw, err := m.cl.Result(ctx, st.ID)
		if err != nil {
			m.failedJobs.Add(1)
			return fmt.Errorf("worker %s result: %w", m.Name, err)
		}
		c.complete(j, m, raw)
		return nil
	case server.StateFailed, server.StateQuarantined:
		// Deterministic verdict: byte-deterministic execution means the
		// same config fails the same way on every worker, so re-routing
		// would only repeat it.
		c.failed.Add(1)
		code := fsmerr.Code(st.ErrorCode)
		if code == "" {
			code = fsmerr.CodeExperiment
		}
		j.finish(st.State, m.Name, nil,
			fsmerr.New(code, "cluster.runOn", "worker %s: job %s: %s", m.Name, st.State, st.Error))
		return nil
	default:
		// Canceled on the worker (its drain raced ours): transient.
		m.failedJobs.Add(1)
		return fmt.Errorf("worker %s: job ended %s", m.Name, st.State)
	}
}

// complete records a finished result, re-serves it from the local cache
// from now on, and kicks off the sampled cross-worker verification.
func (c *Coordinator) complete(j *job, m *Member, raw []byte) {
	c.cache.put(&resultEntry{key: j.Key, result: raw, worker: m.Name})
	m.completed.Add(1)
	c.completed.Add(1)
	j.finish(server.StateDone, m.Name, raw, nil)
	if c.sampled(j.ID) {
		c.verifySampled.Add(1)
		c.wg.Add(1)
		go c.verify(j, m.Name, raw)
	}
}

// sampled decides — deterministically per job ID — whether a finished
// job is re-executed on a second worker for the byte-identity check.
func (c *Coordinator) sampled(id string) bool {
	s := c.opts.VerifySample
	if s <= 0 {
		return false
	}
	if s >= 1 {
		return true
	}
	return float64(hash64(id+"|verify")%1_000_000) < s*1_000_000
}

// verify re-executes a finished job on a different worker and
// byte-compares the result documents. Determinism says they must be
// identical; a mismatch means a worker computed (or stored) the wrong
// bytes, and is surfaced through the fleet metrics.
func (c *Coordinator) verify(j *job, firstWorker string, want []byte) {
	defer c.wg.Done()
	var second *Member
	for _, name := range c.ringOrder(j.ID) {
		if name == firstWorker {
			continue
		}
		if m, ok := c.members.Get(name); ok && m.Healthy() {
			second = m
			break
		}
	}
	if second == nil {
		c.verifySkipped.Add(1)
		return
	}
	ctx, cancel := context.WithTimeout(c.baseCtx, c.opts.RequestTimeout)
	defer cancel()
	st, err := second.cl.Submit(ctx, j.Req)
	if err == nil && !st.State.Terminal() {
		st, err = second.cl.Wait(ctx, st.ID, c.opts.PollInterval)
	}
	if err != nil || st.State != server.StateDone {
		c.verifyErrors.Add(1)
		return
	}
	got, err := second.cl.Result(ctx, st.ID)
	if err != nil {
		c.verifyErrors.Add(1)
		return
	}
	if string(got) == string(want) {
		c.verifyOK.Add(1)
	} else {
		c.verifyMismatch.Add(1)
	}
}

func (c *Coordinator) ringOrder(id string) []string {
	c.members.mu.Lock()
	defer c.members.mu.Unlock()
	return c.members.ring.Lookup(id, len(c.members.members))
}

// Status assembles the /v1/cluster fleet document.
func (c *Coordinator) Status() server.ClusterStatus {
	st := server.ClusterStatus{
		Submitted:        c.submitted.Load(),
		Completed:        c.completed.Load(),
		Failed:           c.failed.Load(),
		CacheHits:        c.cacheHits.Load(),
		Retries:          c.retries.Load(),
		Steals:           c.steals.Load(),
		VerifySampled:    c.verifySampled.Load(),
		VerifyOK:         c.verifyOK.Load(),
		VerifyMismatches: c.verifyMismatch.Load(),
	}
	c.mu.Lock()
	st.Live = c.live
	c.mu.Unlock()
	for _, m := range c.members.Members() {
		st.Workers = append(st.Workers, server.ClusterWorker{
			Name:           m.Name,
			Healthy:        m.Healthy(),
			InFlight:       m.inFlight.Load(),
			Routed:         m.routed.Load(),
			Completed:      m.completed.Load(),
			Failed:         m.failedJobs.Load(),
			Stolen:         m.stolen.Load(),
			HeartbeatFails: m.heartbeatFails.Load(),
		})
	}
	return st
}

// buildMetrics registers the fleet counters for /metrics: coordinator
// totals under fsmemd_cluster_*, plus one block per worker keyed by its
// sanitized name.
func (c *Coordinator) buildMetrics() {
	r := obs.NewRegistry()
	r.Source("fsmemd.cluster", obs.SourceFunc(func(emit func(string, float64)) {
		emit("jobs.submitted", float64(c.submitted.Load()))
		emit("jobs.completed", float64(c.completed.Load()))
		emit("jobs.failed", float64(c.failed.Load()))
		emit("jobs.cache_hits", float64(c.cacheHits.Load()))
		c.mu.Lock()
		live := c.live
		c.mu.Unlock()
		emit("jobs.live", float64(live))
		emit("cache.entries", float64(c.cache.len()))
		emit("dispatch.retries", float64(c.retries.Load()))
		emit("dispatch.steals", float64(c.steals.Load()))
		emit("verify.sampled", float64(c.verifySampled.Load()))
		emit("verify.ok", float64(c.verifyOK.Load()))
		emit("verify.mismatches", float64(c.verifyMismatch.Load()))
		emit("verify.skipped", float64(c.verifySkipped.Load()))
		emit("verify.errors", float64(c.verifyErrors.Load()))
		emit("http.requests", float64(c.httpRequests.Load()))
		members := c.members.Members()
		healthy := 0
		for _, m := range members {
			if m.Healthy() {
				healthy++
			}
		}
		emit("workers.registered", float64(len(members)))
		emit("workers.healthy", float64(healthy))
		for _, m := range members {
			label := "worker." + obs.LabelName(m.Name) + "."
			up := 0.0
			if m.Healthy() {
				up = 1
			}
			emit(label+"healthy", up)
			emit(label+"in_flight", float64(m.inFlight.Load()))
			emit(label+"routed", float64(m.routed.Load()))
			emit(label+"completed", float64(m.completed.Load()))
			emit(label+"failed", float64(m.failedJobs.Load()))
			emit(label+"stolen", float64(m.stolen.Load()))
			emit(label+"heartbeat_fails", float64(m.heartbeatFails.Load()))
		}
	}))
	c.registry = r
}

// Submission errors mapped onto HTTP status codes.
var (
	errQueueFull = errors.New("cluster job table full")
	errDraining  = errors.New("coordinator is draining")
)

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, ec string, format string, args ...any) {
	writeJSON(w, code, server.ErrorBody{Error: fmt.Sprintf(format, args...), Code: ec})
}

func (c *Coordinator) buildRoutes() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		c.mu.Lock()
		draining := c.draining
		c.mu.Unlock()
		if draining {
			writeError(w, http.StatusServiceUnavailable, "draining", "coordinator is draining")
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obs.WritePrometheus(w, c.registry.Snapshot())
	})
	timeout := func(h http.HandlerFunc) http.Handler {
		return http.TimeoutHandler(h, c.opts.RequestTimeout, "request timed out")
	}
	mux.Handle("POST /v1/jobs", timeout(c.handleSubmit))
	mux.Handle("GET /v1/jobs/{id}", timeout(c.handleStatus))
	mux.Handle("GET /v1/jobs/{id}/result", timeout(c.handleResult))
	mux.Handle("GET /v1/cluster", timeout(c.handleCluster))
	mux.Handle("POST /v1/cluster/register", timeout(c.handleRegister))
	c.mux = mux
}

// Handler returns the coordinator's HTTP handler. The job endpoints
// speak the same wire contract as a single fsmemd, so the typed client
// and cmd/fsload work against a coordinator unchanged.
func (c *Coordinator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.httpRequests.Add(1)
		c.mux.ServeHTTP(w, r)
	})
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req server.JobRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding job request: %v", err)
		return
	}
	j, created, err := c.Submit(req)
	switch {
	case errors.Is(err, errDraining):
		w.Header().Set("Retry-After", "2")
		writeError(w, http.StatusServiceUnavailable, "draining", "coordinator is draining")
		return
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(c.queueRetryAfterSecs()))
		writeError(w, http.StatusTooManyRequests, "queue_full", "cluster job table is full")
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, string(fsmerr.CodeOf(err)), "%v", err)
		return
	}
	st := j.status()
	code := http.StatusAccepted
	if st.State.Terminal() || !created {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// queueRetryAfterSecs spreads the live backlog across the fleet's
// aggregate window as a backoff hint, clamped to [1s, 30s].
func (c *Coordinator) queueRetryAfterSecs() int {
	c.mu.Lock()
	live := c.live
	c.mu.Unlock()
	slots := c.members.HealthyCount() * c.opts.Window
	if slots < 1 {
		slots = 1
	}
	secs := 1 + live/slots
	if secs > 30 {
		secs = 30
	}
	return secs
}

func (c *Coordinator) job(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	j, ok := c.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "unknown job %q", id)
		return nil, false
	}
	return j, true
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := c.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(w, r)
	if !ok {
		return
	}
	st := j.status()
	j.mu.Lock()
	result := j.result
	j.mu.Unlock()
	if st.State != server.StateDone || result == nil {
		if st.State == server.StateFailed || st.State == server.StateCanceled || st.State == server.StateQuarantined {
			writeError(w, http.StatusConflict, st.ErrorCode, "job %s: %s", st.State, st.Error)
			return
		}
		writeError(w, http.StatusConflict, "not_done", "job is %s; poll status", st.State)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(result)
}

func (c *Coordinator) handleCluster(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req server.RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding register request: %v", err)
		return
	}
	if req.Addr == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "register needs a worker addr")
		return
	}
	c.mu.Lock()
	draining := c.draining
	c.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "draining", "coordinator is draining")
		return
	}
	c.members.Add(req.Addr)
	writeJSON(w, http.StatusOK, c.Status())
}

// Drain stops intake and waits for in-flight dispatches (and pending
// verifications) to finish; past ctx it hard-cancels stragglers.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		c.baseCancel()
		<-done
		err = ctx.Err()
	}
	c.baseCancel()
	c.members.close()
	return err
}

// Serve listens on o.Addr and runs the coordinator until ctx is
// canceled, then drains gracefully (bounded by DrainTimeout).
func Serve(ctx context.Context, o Options) error {
	c, err := New(o)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", c.opts.Addr)
	if err != nil {
		return err
	}
	return c.ServeListener(ctx, ln)
}

// ServeListener is Serve on an existing listener (ownership transfers).
func (c *Coordinator) ServeListener(ctx context.Context, ln net.Listener) error {
	httpSrv := &http.Server{
		Handler:           c.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return context.WithoutCancel(ctx) },
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), c.opts.DrainTimeout)
	defer cancel()
	drainErr := c.Drain(dctx)
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		httpSrv.Close()
		if drainErr == nil {
			drainErr = err
		}
	}
	<-serveErr
	return drainErr
}
