package cluster

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("j%016x", hash64(fmt.Sprintf("key-%d", i)))
	}
	return out
}

// TestRingDeterministic pins the property the coordinator's placement
// stability rests on: a ring built from the same member set — in any
// insertion order, in any process ("across restarts") — routes every
// key identically.
func TestRingDeterministic(t *testing.T) {
	cases := []struct {
		name   string
		orderA []string
		orderB []string
	}{
		{"two members swapped", []string{"w1", "w2"}, []string{"w2", "w1"}},
		{"three members rotated", []string{"w1", "w2", "w3"}, []string{"w3", "w1", "w2"}},
		{"five members reversed",
			[]string{"a", "b", "c", "d", "e"},
			[]string{"e", "d", "c", "b", "a"}},
		{"urls", []string{"http://10.0.0.1:8377", "http://10.0.0.2:8377", "http://10.0.0.3:8377"},
			[]string{"http://10.0.0.3:8377", "http://10.0.0.2:8377", "http://10.0.0.1:8377"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := NewRing(0), NewRing(0)
			for _, m := range tc.orderA {
				a.Add(m)
			}
			for _, m := range tc.orderB {
				b.Add(m)
			}
			for _, k := range keys(500) {
				if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
					t.Fatalf("key %s: owner %q vs %q across insertion orders", k, ao, bo)
				}
				if al, bl := a.Lookup(k, len(tc.orderA)), b.Lookup(k, len(tc.orderB)); !reflect.DeepEqual(al, bl) {
					t.Fatalf("key %s: preference order %v vs %v", k, al, bl)
				}
			}
		})
	}
}

// TestRingRebalance pins consistent hashing's minimal-disruption
// contract: removing one member only moves the keys it owned, and
// adding it back restores the original assignment exactly.
func TestRingRebalance(t *testing.T) {
	cases := []struct {
		name    string
		members int
	}{
		{"two workers", 2},
		{"three workers", 3},
		{"five workers", 5},
		{"eight workers", 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRing(0)
			var members []string
			for i := 0; i < tc.members; i++ {
				m := fmt.Sprintf("http://worker-%d:8377", i)
				members = append(members, m)
				r.Add(m)
			}
			ks := keys(2000)
			before := map[string]string{}
			owned := map[string]int{}
			for _, k := range ks {
				o := r.Owner(k)
				before[k] = o
				owned[o]++
			}
			// Every member owns a share (64 vnodes spread well enough).
			for _, m := range members {
				if owned[m] == 0 {
					t.Fatalf("member %s owns zero of %d keys", m, len(ks))
				}
			}

			gone := members[tc.members/2]
			r.Remove(gone)
			moved := 0
			for _, k := range ks {
				after := r.Owner(k)
				if before[k] == gone {
					moved++
					if after == gone {
						t.Fatalf("key %s still routed to removed member", k)
					}
					continue
				}
				if after != before[k] {
					t.Fatalf("key %s moved %s -> %s though its owner survived", k, before[k], after)
				}
			}
			if moved != owned[gone] {
				t.Fatalf("moved %d keys, expected exactly the %d the removed member owned", moved, owned[gone])
			}

			// Re-adding restores the original assignment bit for bit.
			r.Add(gone)
			for _, k := range ks {
				if got := r.Owner(k); got != before[k] {
					t.Fatalf("after re-add, key %s owner %s != original %s", k, got, before[k])
				}
			}
		})
	}
}

// TestRingLookupOrder pins the retry/steal walk: distinct members, the
// owner first, stable length.
func TestRingLookupOrder(t *testing.T) {
	r := NewRing(0)
	members := []string{"w1", "w2", "w3", "w4"}
	for _, m := range members {
		r.Add(m)
	}
	for _, k := range keys(200) {
		order := r.Lookup(k, len(members))
		if len(order) != len(members) {
			t.Fatalf("key %s: %d members in order, want %d", k, len(order), len(members))
		}
		if order[0] != r.Owner(k) {
			t.Fatalf("key %s: preference order starts at %s, owner is %s", k, order[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range order {
			if seen[m] {
				t.Fatalf("key %s: member %s repeated in order %v", k, m, order)
			}
			seen[m] = true
		}
	}
	if got := r.Lookup("anything", 2); len(got) != 2 {
		t.Fatalf("Lookup n=2 returned %d members", len(got))
	}
	if NewRing(0).Owner("k") != "" || NewRing(0).Lookup("k", 3) != nil {
		t.Fatal("empty ring must route nowhere")
	}
}

// TestCoordinatorPlacementSurvivesRestart builds two independent
// coordinators over the same fleet and checks they'd place the same job
// on the same worker — the "same job ID → same worker across restarts"
// contract, at the membership layer the dispatcher actually uses.
func TestCoordinatorPlacementSurvivesRestart(t *testing.T) {
	fleet := []string{"http://a:8377", "http://b:8377", "http://c:8377"}
	build := func() *Coordinator {
		c, err := New(Options{Workers: fleet, HeartbeatInterval: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.members.close() })
		return c
	}
	c1, c2 := build(), build()
	for _, id := range keys(300) {
		m1, m2 := c1.members.Pick(id, nil), c2.members.Pick(id, nil)
		if m1 == nil || m2 == nil {
			t.Fatalf("id %s: no member picked", id)
		}
		if m1.Name != m2.Name {
			t.Fatalf("id %s placed on %s by one coordinator, %s by its restart", id, m1.Name, m2.Name)
		}
	}
}
