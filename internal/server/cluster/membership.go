package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"fsmem/internal/server/client"
)

// Member is one registered fsmemd worker: a typed client for it, a
// bounded in-flight window, a health state driven by the heartbeat
// loop, and per-worker counters for the fleet metrics.
type Member struct {
	// Name is the worker's base URL; it is both the routing identity on
	// the hash ring and the dial target.
	Name string

	cl     *client.Client
	window chan struct{} // in-flight slots; send acquires, receive releases

	mu          sync.Mutex
	healthy     bool
	fails       int // consecutive heartbeat failures
	epochCtx    context.Context
	epochCancel context.CancelFunc

	// Counters, read by the fleet metrics and /v1/cluster.
	routed         atomic.Int64 // dispatch attempts placed on this worker
	completed      atomic.Int64 // jobs this worker finished for the coordinator
	failedJobs     atomic.Int64 // dispatch attempts that errored here
	stolen         atomic.Int64 // jobs re-routed away after this worker turned unhealthy
	heartbeatFails atomic.Int64 // lifetime failed heartbeats
	inFlight       atomic.Int64
}

// Client returns the member's typed client.
func (m *Member) Client() *client.Client { return m.cl }

// Healthy reports the heartbeat verdict.
func (m *Member) Healthy() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.healthy
}

// epoch returns the member's current health epoch: a context that is
// canceled the moment the heartbeat loop marks the member unhealthy.
// Dispatches bind to it so work parked on a dying worker aborts (and is
// stolen) immediately instead of waiting out an HTTP timeout.
func (m *Member) epoch() context.Context {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epochCtx
}

// acquire takes an in-flight slot, aborting if the member's epoch or
// ctx ends first. release must be called iff acquire returned nil.
func (m *Member) acquire(ctx context.Context) error {
	epoch := m.epoch()
	select {
	case m.window <- struct{}{}:
		m.inFlight.Add(1)
		return nil
	default:
	}
	select {
	case m.window <- struct{}{}:
		m.inFlight.Add(1)
		return nil
	case <-epoch.Done():
		return epoch.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (m *Member) release() {
	m.inFlight.Add(-1)
	<-m.window
}

// Registry is the fleet membership table: the hash ring over the
// registered members plus the heartbeat loop that drives their health.
type Registry struct {
	interval  time.Duration
	failAfter int
	window    int
	newClient func(name string) *client.Client

	mu      sync.Mutex
	ring    *Ring
	members map[string]*Member

	hbCtx    context.Context
	hbCancel context.CancelFunc
	hbDone   chan struct{}
}

// newRegistry builds the registry and starts its heartbeat loop.
func newRegistry(interval time.Duration, failAfter, window, vnodes int, newClient func(string) *client.Client) *Registry {
	if newClient == nil {
		newClient = func(name string) *client.Client { return client.New(name, nil) }
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Registry{
		interval:  interval,
		failAfter: failAfter,
		window:    window,
		newClient: newClient,
		ring:      NewRing(vnodes),
		members:   map[string]*Member{},
		hbCtx:     ctx,
		hbCancel:  cancel,
		hbDone:    make(chan struct{}),
	}
	go r.heartbeatLoop()
	return r
}

// Add registers a worker (idempotent). New members start healthy and
// enter the ring immediately; the first failed heartbeats demote them.
func (r *Registry) Add(name string) *Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.members[name]; ok {
		return m
	}
	ectx, ecancel := context.WithCancel(context.Background())
	m := &Member{
		Name:        name,
		cl:          r.newClient(name),
		window:      make(chan struct{}, r.window),
		healthy:     true,
		epochCtx:    ectx,
		epochCancel: ecancel,
	}
	r.members[name] = m
	r.ring.Add(name)
	return m
}

// Members returns every registered member, sorted by name.
func (r *Registry) Members() []*Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Member, 0, len(r.members))
	for _, name := range r.ring.Members() {
		out = append(out, r.members[name])
	}
	return out
}

// Get returns a member by name.
func (r *Registry) Get(name string) (*Member, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[name]
	return m, ok
}

// HealthyCount reports how many members currently pass heartbeats.
func (r *Registry) HealthyCount() int {
	n := 0
	for _, m := range r.Members() {
		if m.Healthy() {
			n++
		}
	}
	return n
}

// Pick returns the preferred member for key: the first healthy,
// not-yet-tried member in the ring's deterministic preference order.
// The first choice is always the ring owner, so routing is stable; the
// walk past it is exactly the steal/retry order.
func (r *Registry) Pick(key string, tried map[string]bool) *Member {
	r.mu.Lock()
	order := r.ring.Lookup(key, len(r.members))
	members := make([]*Member, 0, len(order))
	for _, name := range order {
		members = append(members, r.members[name])
	}
	r.mu.Unlock()
	for _, m := range members {
		if tried[m.Name] {
			continue
		}
		if m.Healthy() {
			return m
		}
	}
	return nil
}

// heartbeatLoop probes every member's /healthz each interval. failAfter
// consecutive failures demote a member (canceling its epoch, which
// aborts and re-routes everything parked on it); one success promotes
// it back with a fresh epoch.
func (r *Registry) heartbeatLoop() {
	defer close(r.hbDone)
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-r.hbCtx.Done():
			return
		case <-t.C:
		}
		var wg sync.WaitGroup
		for _, m := range r.Members() {
			wg.Add(1)
			go func(m *Member) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(r.hbCtx, r.interval)
				err := m.cl.Health(ctx)
				cancel()
				r.noteHeartbeat(m, err)
			}(m)
		}
		wg.Wait()
	}
}

func (r *Registry) noteHeartbeat(m *Member, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err == nil {
		m.fails = 0
		if !m.healthy {
			m.healthy = true
			m.epochCtx, m.epochCancel = context.WithCancel(context.Background())
		}
		return
	}
	m.heartbeatFails.Add(1)
	m.fails++
	if m.healthy && m.fails >= r.failAfter {
		m.healthy = false
		m.epochCancel()
	}
}

// close stops the heartbeat loop and cancels every member epoch.
func (r *Registry) close() {
	r.hbCancel()
	<-r.hbDone
	for _, m := range r.Members() {
		m.mu.Lock()
		m.epochCancel()
		m.mu.Unlock()
	}
}
