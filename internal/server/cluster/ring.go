// Package cluster is fsmemd's horizontal scale-out layer: a
// coordinator that routes content-addressed jobs across a registered
// fleet of fsmemd workers.
//
// Design (DESIGN.md §12):
//
//   - Routing is a consistent-hash ring over the fleet, keyed by the
//     job's content-addressed ID (server.Canonicalize). The ring is a
//     pure function of the membership set, so the same job maps to the
//     same worker across coordinator restarts, and a membership change
//     only moves the keys that hashed to the departed (or arrived)
//     member.
//   - Every FS-policy simulation is byte-deterministic (the paper's
//     core property), which makes jobs perfectly relocatable: any
//     worker produces the identical result document. The coordinator
//     exploits that three ways — transparent retry on another worker
//     when one fails (the content-addressed ID makes the resubmission
//     idempotent), work-stealing of jobs parked on an unhealthy worker,
//     and a sampled cross-worker byte-identity check that re-executes a
//     fraction of finished jobs on a second worker and diffs the bytes:
//     determinism doubling as a distributed integrity check.
//   - Backpressure is per-worker: each member has a bounded in-flight
//     window; dispatches queue for a slot and abort (to be re-routed)
//     the moment the member's health epoch is canceled.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVnodes is the virtual-node count per member: enough that a
// three-worker fleet splits load roughly evenly, cheap enough that a
// membership change rebuilds the ring in microseconds.
const defaultVnodes = 64

// Ring is a consistent-hash ring over member names. It is a pure value:
// rebuilding a ring from the same member set — in any insertion order,
// in any process — yields identical routing, which is what makes the
// coordinator's placement reproducible across restarts. Not safe for
// concurrent mutation; the membership registry guards it.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds an empty ring with the given virtual-node count per
// member (0 = 64).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	return &Ring{vnodes: vnodes}
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Add inserts a member's virtual nodes. Adding a present member is a
// no-op.
func (r *Ring) Add(member string) {
	for _, p := range r.points {
		if p.member == member {
			return
		}
	}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash64(fmt.Sprintf("%s#%d", member, i)), member})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (astronomically rare with 64-bit FNV) break on the member
		// name so the order stays total and insertion-independent.
		return r.points[i].member < r.points[j].member
	})
}

// Remove deletes a member's virtual nodes; the surviving points keep
// their positions, so only keys owned by the removed member move.
func (r *Ring) Remove(member string) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the distinct member names, sorted.
func (r *Ring) Members() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range r.points {
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	sort.Strings(out)
	return out
}

// Owner returns the member owning key: the first virtual node at or
// clockwise after the key's hash. It never allocates — this is the
// routing hot path (BenchmarkClusterRouting pins it). Empty ring
// returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Lookup returns up to n distinct members in preference order: the
// key's owner first, then each further distinct member walking
// clockwise. The order is the coordinator's retry/steal sequence — the
// same key yields the same sequence on every coordinator over the same
// membership.
func (r *Ring) Lookup(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if start == len(r.points) {
		start = 0
	}
	var out []string
	seen := map[string]bool{}
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}
