package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fsmem"
	"fsmem/internal/config"
	"fsmem/internal/server"
	"fsmem/internal/server/client"
)

// startWorker boots a plain single-node daemon behind httptest and
// returns its base URL — which doubles as its fleet identity.
func startWorker(t *testing.T) string {
	t.Helper()
	s, err := server.New(server.Options{Workers: 2, RatePerSec: 100_000})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain(context.Background())
	})
	return ts.URL
}

// startCoordinator fronts the given workers with a coordinator behind
// httptest and returns it plus a typed client — the same client the
// single-node API tests use, because the wire contract is shared.
func startCoordinator(t *testing.T, workers []string, tweak func(*Options)) (*Coordinator, *client.Client) {
	t.Helper()
	o := Options{
		Workers:           workers,
		HeartbeatInterval: 15 * time.Millisecond,
		PollInterval:      2 * time.Millisecond,
	}
	if tweak != nil {
		tweak(&o)
	}
	c, err := New(o)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		c.Drain(dctx)
		ts.Close()
	})
	return c, client.New(ts.URL, ts.Client())
}

func simReq(seed uint64, reads int64) server.JobRequest {
	e := config.Default()
	e.Workload = "mcf"
	e.Scheduler = "fs_bp"
	e.Cores = 2
	e.Reads = reads
	e.Seed = seed
	return server.JobRequest{Kind: server.KindSimulate, Simulate: &e}
}

// directBytes computes the result document a single-node daemon would
// serve for req, straight from the simulator.
func directBytes(t *testing.T, req server.JobRequest) []byte {
	t.Helper()
	cfg, err := req.Simulate.ToSimConfig()
	if err != nil {
		t.Fatal(err)
	}
	res, err := fsmem.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(server.Summarize(cfg, res))
	if err != nil {
		t.Fatal(err)
	}
	return append(want, '\n')
}

func runJob(t *testing.T, cl *client.Client, req server.JobRequest) (server.JobStatus, []byte) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err = cl.Wait(ctx, st.ID, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.State != server.StateDone {
		t.Fatalf("job %s ended %s (%s)", st.ID, st.State, st.Error)
	}
	raw, err := cl.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	return st, raw
}

// TestClusterResultsMatchDirectSimulate pins the tentpole contract: a
// job routed through the coordinator returns bytes identical to a
// direct in-process simulation, jobs spread across the fleet, and a
// resubmission is re-served from the coordinator's local cache.
func TestClusterResultsMatchDirectSimulate(t *testing.T) {
	workers := []string{startWorker(t), startWorker(t), startWorker(t)}
	c, cl := startCoordinator(t, workers, nil)

	const n = 12
	used := map[string]bool{}
	for seed := uint64(1); seed <= n; seed++ {
		req := simReq(seed, 300)
		st, raw := runJob(t, cl, req)
		if st.Worker == "" {
			t.Fatalf("job %s has no worker attribution", st.ID)
		}
		used[st.Worker] = true
		if want := directBytes(t, req); !bytes.Equal(raw, want) {
			t.Fatalf("seed %d: coordinator bytes differ from direct simulation\ncluster: %s\ndirect:  %s", seed, raw, want)
		}
	}
	if len(used) < 2 {
		t.Fatalf("12 jobs landed on %d worker(s); expected consistent hashing to spread them", len(used))
	}

	// Resubmission: answered locally, cache-hit flagged, same bytes.
	ctx := context.Background()
	req := simReq(1, 300)
	st, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !st.State.Terminal() || !st.CacheHit {
		t.Fatalf("resubmission not a coordinator cache hit: %+v", st)
	}
	raw, err := cl.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := directBytes(t, req); !bytes.Equal(raw, want) {
		t.Fatal("cached result differs from direct simulation bytes")
	}

	cs := c.Status()
	if cs.Completed != n || cs.Failed != 0 {
		t.Fatalf("fleet counters: completed=%d failed=%d, want %d/0", cs.Completed, cs.Failed, n)
	}
	if cs.CacheHits < 1 {
		t.Fatalf("cache hits %d, want >= 1", cs.CacheHits)
	}
}

// ownedBy returns up to n distinct seeds whose job IDs the ring places
// on the given worker first.
func ownedBy(t *testing.T, c *Coordinator, worker string, n int) []uint64 {
	t.Helper()
	var seeds []uint64
	for seed := uint64(1); seed < 10_000 && len(seeds) < n; seed++ {
		req := simReq(seed, 300)
		id, _, err := server.Canonicalize(&req)
		if err != nil {
			t.Fatal(err)
		}
		if order := c.ringOrder(id); len(order) > 0 && order[0] == worker {
			seeds = append(seeds, seed)
		}
	}
	if len(seeds) < n {
		t.Fatalf("found only %d/%d seeds owned by %s", len(seeds), n, worker)
	}
	return seeds
}

// TestClusterFailoverToNextWorker pins transparent retry: jobs whose
// ring owner is dead complete on the next member — byte-identically —
// the dead worker is demoted by the heartbeat, and later jobs skip it
// without burning a retry.
func TestClusterFailoverToNextWorker(t *testing.T) {
	live := startWorker(t)
	deadTS := httptest.NewServer(http.NotFoundHandler())
	dead := deadTS.URL
	deadTS.Close() // connection refused from the first dial

	// A deliberately slow heartbeat (demotion after ~1s) so every job
	// below exercises the retry path before the dead worker is demoted.
	c, cl := startCoordinator(t, []string{live, dead}, func(o *Options) {
		o.HeartbeatInterval = 500 * time.Millisecond
		o.FailAfter = 2
	})

	seeds := ownedBy(t, c, dead, 4)
	for _, seed := range seeds {
		req := simReq(seed, 300)
		st, raw := runJob(t, cl, req)
		if st.Worker != live {
			t.Fatalf("seed %d completed on %q, want failover to %q", seed, st.Worker, live)
		}
		if want := directBytes(t, req); !bytes.Equal(raw, want) {
			t.Fatalf("seed %d: failover result differs from direct simulation", seed)
		}
	}
	cs := c.Status()
	if cs.Retries < int64(len(seeds)) {
		t.Fatalf("retries=%d, want >= %d (one per dead-owned job)", cs.Retries, len(seeds))
	}
	if cs.Failed != 0 {
		t.Fatalf("failed=%d, want 0 — no job may be lost to a dead worker", cs.Failed)
	}

	// The heartbeat demotes the dead worker; once it does, routing skips
	// it entirely.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m, ok := c.Members().Get(dead); ok && !m.Healthy() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dead worker never demoted by heartbeat")
		}
		time.Sleep(5 * time.Millisecond)
	}
	before := c.Status().Retries
	extra := ownedBy(t, c, dead, len(seeds)+1)[len(seeds)]
	if st, _ := runJob(t, cl, simReq(extra, 300)); st.Worker != live {
		t.Fatalf("post-demotion job ran on %q, want %q", st.Worker, live)
	}
	if after := c.Status().Retries; after != before {
		t.Fatalf("post-demotion dispatch burned %d retries; unhealthy workers must be skipped outright", after-before)
	}
}

// TestClusterStealsFromUnhealthyWorker pins the work-stealing path: a
// worker that accepts jobs and then hangs has its parked work aborted —
// via the health-epoch cancellation, not an HTTP timeout — and re-run
// on a healthy member with zero lost jobs.
func TestClusterStealsFromUnhealthyWorker(t *testing.T) {
	live := startWorker(t)

	// A worker that heartbeats fine until flipped, and never answers a
	// submission — jobs park on it until the epoch is canceled. The body
	// must be drained before blocking: the net/http server only notices a
	// client disconnect (and cancels r.Context()) once the request body
	// has been consumed.
	var sick atomic.Bool
	stop := make(chan struct{})
	victimTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			if sick.Load() {
				http.Error(w, "sick", http.StatusInternalServerError)
				return
			}
			fmt.Fprintln(w, "ok")
			return
		}
		io.Copy(io.Discard, r.Body)
		select { // hang every job endpoint
		case <-r.Context().Done():
		case <-stop:
		}
	}))
	t.Cleanup(victimTS.Close)
	t.Cleanup(func() { close(stop) }) // LIFO: unblock handlers before Close waits on them
	victim := victimTS.URL

	c, cl := startCoordinator(t, []string{live, victim}, func(o *Options) {
		o.Window = 1 // second victim-owned job must queue behind the first
		o.FailAfter = 2
	})

	seeds := ownedBy(t, c, victim, 2)
	type res struct {
		st  server.JobStatus
		raw []byte
	}
	results := make(chan res, len(seeds))
	for _, seed := range seeds {
		go func(seed uint64) {
			st, raw := runJob(t, cl, simReq(seed, 300))
			results <- res{st, raw}
		}(seed)
	}

	// Let both jobs park on the victim (one in flight, one waiting on
	// its window), then make it flunk heartbeats.
	time.Sleep(50 * time.Millisecond)
	sick.Store(true)

	for range seeds {
		r := <-results
		if r.st.Worker != live {
			t.Fatalf("stolen job completed on %q, want %q", r.st.Worker, live)
		}
	}
	cs := c.Status()
	if cs.Failed != 0 {
		t.Fatalf("failed=%d, want 0 — stealing must not lose jobs", cs.Failed)
	}
	if cs.Steals < 1 {
		t.Fatalf("steals=%d, want >= 1 — re-routes off the unhealthy worker must be counted", cs.Steals)
	}
	for _, seed := range seeds {
		req := simReq(seed, 300)
		id, _, err := server.Canonicalize(&req)
		if err != nil {
			t.Fatal(err)
		}
		j, ok := c.Get(id)
		if !ok {
			t.Fatalf("seed %d: job missing after steal", seed)
		}
		j.mu.Lock()
		raw := j.result
		j.mu.Unlock()
		if want := directBytes(t, req); !bytes.Equal(raw, want) {
			t.Fatalf("seed %d: stolen job's bytes differ from direct simulation", seed)
		}
	}
}

// TestClusterVerifySampling pins the distributed integrity check: with
// a 100% sample every completion is re-executed on a second worker, and
// byte-determinism makes every comparison come back identical.
func TestClusterVerifySampling(t *testing.T) {
	workers := []string{startWorker(t), startWorker(t)}
	c, cl := startCoordinator(t, workers, func(o *Options) {
		o.VerifySample = 1
	})

	const n = 5
	for seed := uint64(1); seed <= n; seed++ {
		runJob(t, cl, simReq(seed, 300))
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		cs := c.Status()
		if cs.VerifyOK == n {
			if cs.VerifySampled != n || cs.VerifyMismatches != 0 {
				t.Fatalf("verification counters: %+v", cs)
			}
			// Pin the exposition names the CI cluster-smoke job greps.
			metrics, err := cl.Metrics(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range []string{
				fmt.Sprintf("fsmemd_cluster_verify_ok %d\n", n),
				"fsmemd_cluster_verify_mismatches 0\n",
				"fsmemd_cluster_workers_registered 2\n",
			} {
				if !strings.Contains(metrics, want) {
					t.Fatalf("/metrics missing %q:\n%s", want, metrics)
				}
			}
			return
		}
		if cs.VerifyMismatches > 0 {
			t.Fatalf("byte-identity verification found a mismatch: %+v", cs)
		}
		if time.Now().After(deadline) {
			t.Fatalf("verification never finished: %+v", cs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterSingleflightAndDraining pins admission control: duplicate
// submissions join the same job record, and a draining coordinator
// refuses new work.
func TestClusterSingleflightAndDraining(t *testing.T) {
	c, _ := startCoordinator(t, []string{startWorker(t)}, nil)

	req := simReq(42, 300)
	j1, created1, err := c.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	j2, created2, err := c.Submit(simReq(42, 300))
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Fatal("duplicate submission produced a second job record")
	}
	if !created1 || created2 {
		t.Fatalf("created flags %v/%v, want true/false", created1, created2)
	}
	<-j1.done

	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, _, err := c.Submit(simReq(43, 300)); err != errDraining {
		t.Fatalf("submit while draining: %v, want errDraining", err)
	}
}

// TestClusterRegister pins dynamic membership: a worker joining through
// the register endpoint (what fsmemd -join calls) becomes routable, and
// registration is idempotent.
func TestClusterRegister(t *testing.T) {
	first := startWorker(t)
	c, cl := startCoordinator(t, []string{first}, nil)

	second := startWorker(t)
	ctx := context.Background()
	if err := cl.Register(ctx, second); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := cl.Register(ctx, second); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	cs, err := cl.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Workers) != 2 {
		t.Fatalf("fleet has %d workers after register, want 2", len(cs.Workers))
	}

	// The joined worker owns part of the ring and serves jobs.
	seeds := ownedBy(t, c, second, 1)
	if st, _ := runJob(t, cl, simReq(seeds[0], 300)); st.Worker != second {
		t.Fatalf("job owned by joined worker ran on %q", st.Worker)
	}
}
