package server

import (
	"context"
	"sync"
)

// eventLog is one job's append-only progress history. Subscribers read
// it cursor-style: every subscriber sees the full sequence from the
// first event, so an SSE client attaching late still replays the whole
// lifecycle. Writers broadcast on a condition variable; readers wake on
// new events, log closure, or their own context's cancellation.
type eventLog struct {
	mu     sync.Mutex
	cond   *sync.Cond
	events []JobEvent
	closed bool
}

func newEventLog() *eventLog {
	l := &eventLog{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// publish appends one event, stamping its sequence number.
func (l *eventLog) publish(ev JobEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	ev.Seq = len(l.events)
	l.events = append(l.events, ev)
	l.cond.Broadcast()
}

// close marks the log complete (the job reached a terminal state);
// readers drain the remaining history and stop.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.cond.Broadcast()
}

// next blocks until the event at cursor exists, returning it and ok =
// true, or ok = false when the log is closed past its end or ctx is
// done.
func (l *eventLog) next(ctx context.Context, cursor int) (JobEvent, bool) {
	// Wake this reader when the caller goes away; AfterFunc keeps the
	// wait loop free of extra channels.
	stop := context.AfterFunc(ctx, func() {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	})
	defer stop()
	l.mu.Lock()
	defer l.mu.Unlock()
	for cursor >= len(l.events) && !l.closed && ctx.Err() == nil {
		l.cond.Wait()
	}
	if cursor < len(l.events) && ctx.Err() == nil {
		return l.events[cursor], true
	}
	return JobEvent{}, false
}
