package server

import (
	"container/list"
	"sync"

	"fsmem/internal/obs"
)

// cacheEntry is one finished job's cached payload: the canonical result
// document plus, for observed simulate jobs, the command/event trace
// the /trace endpoint re-exports.
type cacheEntry struct {
	key    string
	result []byte
	trace  *obs.Tracer
}

// resultCache is a bounded LRU over finished job results, keyed by the
// canonical content key (the experiments memo key for simulations).
// Concurrent identical submissions never reach the cache twice while a
// job is live — the manager's deterministic job IDs collapse them into
// one job — so the cache only needs plain mutual exclusion, not
// per-key filling locks.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recent
	entries map[string]*list.Element

	hits, misses int64
}

func newResultCache(capEntries int) *resultCache {
	if capEntries <= 0 {
		capEntries = 256
	}
	return &resultCache{cap: capEntries, ll: list.New(), entries: map[string]*list.Element{}}
}

// get returns the cached entry for key, promoting it to most recent.
func (c *resultCache) get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put stores an entry, evicting the least recently used beyond capacity.
func (c *resultCache) put(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.entries[e.key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// stats reads the cache counters for the metrics endpoint.
func (c *resultCache) stats() (entries int, hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.hits, c.misses
}
