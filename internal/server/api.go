// Package server is the simulation-as-a-service layer: an HTTP/JSON
// daemon (cmd/fsmemd) that accepts simulation, figure-grid,
// leakage-profile, fault-campaign, and leakage-audit jobs, executes
// them on the internal/parallel worker pool, and serves results from a
// persistent content-addressed LRU cache.
//
// Design (DESIGN.md §10):
//
//   - Job identity is content addressing. A job's ID is a hash of its
//     canonical payload — for simulations, the same memo-key
//     normalization internal/experiments uses (experiments.MemoKey) —
//     so resubmitting an identical request joins the existing job
//     (singleflight) or answers straight from cache. Identical
//     concurrent submissions simulate exactly once.
//   - Everything a simulation job returns is a pure function of its
//     config, so cached result documents are byte-identical to what a
//     direct fsmem.Simulate caller would compute (pinned by tests).
//   - Backpressure is explicit: a bounded two-priority queue (429
//     queue_full when saturated), a token-bucket rate limit on
//     submissions (429 rate_limited), and graceful drain on SIGTERM
//     (503 draining for new work while in-flight jobs finish).
//   - Progress streams over SSE (GET /v1/jobs/{id}/events), fed from
//     the experiment runner's per-cell callbacks; observed jobs
//     re-export their command trace as JSONL or Chrome trace_event.
package server

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"fsmem/internal/addr"
	"fsmem/internal/audit"
	"fsmem/internal/config"
	"fsmem/internal/energy"
	"fsmem/internal/experiments"
	"fsmem/internal/fault"
	"fsmem/internal/obs"
	"fsmem/internal/sim"
)

// JobKind selects what a job computes.
type JobKind string

// The job kinds.
const (
	// KindSimulate runs one simulation (the payload is the same JSON
	// shape cmd/memsim -config accepts).
	KindSimulate JobKind = "simulate"
	// KindFigures regenerates evaluation figures on the experiment
	// runner's memoized grid.
	KindFigures JobKind = "figures"
	// KindLeakage collects Figure 4 execution profiles and the derived
	// divergence / mutual-information statistics.
	KindLeakage JobKind = "leakage"
	// KindChaos runs the standard fault-injection campaign.
	KindChaos JobKind = "chaos"
	// KindAudit runs the adversarial leakage audit and returns the
	// scheduler's LeakageCertificate.
	KindAudit JobKind = "audit"
)

// Job priorities.
const (
	PriorityNormal = "normal"
	PriorityHigh   = "high"
)

// JobRequest is the POST /v1/jobs payload. Exactly one of the kind
// payloads must be set, matching Kind.
type JobRequest struct {
	Kind JobKind `json:"kind"`
	// Priority is "normal" (default) or "high"; high-priority jobs are
	// dispatched first.
	Priority string `json:"priority,omitempty"`
	// Observe attaches the command/event tracer to a simulate job so
	// GET /v1/jobs/{id}/trace can re-export it. Observation never
	// changes the simulated result, but observed jobs cache separately
	// (their entry carries the trace).
	Observe bool `json:"observe,omitempty"`

	Simulate *config.Experiment `json:"simulate,omitempty"`
	Figures  *FiguresRequest    `json:"figures,omitempty"`
	Leakage  *LeakageRequest    `json:"leakage,omitempty"`
	Chaos    *ChaosRequest      `json:"chaos,omitempty"`
	Audit    *AuditRequest      `json:"audit,omitempty"`
}

// FiguresRequest asks for evaluation figures at a given scale.
type FiguresRequest struct {
	// Figures lists figure IDs ("3".."10", plus "s6" for the Section 6
	// multi-channel target system); empty means every figure.
	Figures []string `json:"figures,omitempty"`
	Cores   int      `json:"cores,omitempty"`   // default 8
	Reads   int64    `json:"reads,omitempty"`   // default 20000
	Seed    uint64   `json:"seed,omitempty"`    // default 42
	Workers int      `json:"workers,omitempty"` // grid shard width (0 = server default)
}

// LeakageRequest asks for an execution-profile leakage measurement.
type LeakageRequest struct {
	// Scheduler is a config scheduler name; empty runs the Figure 4
	// pair (baseline and fs_rp).
	Scheduler string `json:"scheduler,omitempty"`
	Attacker  string `json:"attacker,omitempty"` // default mcf
	Cores     int    `json:"cores,omitempty"`    // default 8
	Samples   int64  `json:"samples,omitempty"`  // x10K instructions, default 40
	Seed      uint64 `json:"seed,omitempty"`     // default 42
	Channels  int    `json:"channels,omitempty"` // memory channels, default 1
	Routing   string `json:"routing,omitempty"`  // colored (default) or interleaved
}

// ChaosRequest asks for a fault-injection campaign.
type ChaosRequest struct {
	Scheduler string `json:"scheduler"`          // config scheduler name
	Workload  string `json:"workload,omitempty"` // default milc
	Cores     int    `json:"cores,omitempty"`    // default 4
	Seed      uint64 `json:"seed,omitempty"`     // fault-plan seed, default 7
	Cycles    int64  `json:"cycles,omitempty"`   // fixed run length (0 = standard)
}

// AuditRequest asks for an adversarial leakage audit of one scheduler.
// Zero values take the audit engine's defaults; every field is part of
// the content key, so two requests differing only in spelled-out
// defaults still address the same job.
type AuditRequest struct {
	Scheduler    string `json:"scheduler"`              // config scheduler name, required
	Cores        int    `json:"cores,omitempty"`        // security domains, default 4
	Bits         int    `json:"bits,omitempty"`         // message length, default 16
	Window       int64  `json:"window,omitempty"`       // base window in bus cycles, default 10000
	Seeds        int    `json:"seeds,omitempty"`        // certification seeds, default 3
	Permutations int    `json:"permutations,omitempty"` // permutation-test rounds, default 199
	Rounds       int    `json:"rounds,omitempty"`       // adaptive search rounds, default 2
	Seed         uint64 `json:"seed,omitempty"`         // campaign seed, default 42
	Fault        string `json:"fault,omitempty"`        // fault plan name (anti-vacuity), default none
	FaultSeed    uint64 `json:"fault_seed,omitempty"`   // fault plan seed, default 7
	Channels     int    `json:"channels,omitempty"`     // memory channels, default 1
	Routing      string `json:"routing,omitempty"`      // colored (default) or interleaved
}

// JobState is a job's lifecycle phase.
type JobState string

// The job states.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
	// StateQuarantined marks a poison job: it panicked the executor (or
	// was running at a daemon crash) QuarantineAfter times, so it is
	// permanently parked instead of re-executed. Resubmissions return
	// the quarantined record without touching the queue.
	StateQuarantined JobState = "quarantined"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateQuarantined
}

// Progress counts completed work units (simulation grid cells for
// figure jobs, campaign runs for chaos jobs, 1 for plain simulations).
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total,omitempty"` // 0 when the total is not known upfront
}

// JobStatus is the status document for one job.
type JobStatus struct {
	ID       string   `json:"id"`
	Kind     JobKind  `json:"kind"`
	State    JobState `json:"state"`
	Priority string   `json:"priority"`
	// CacheHit marks a job answered from the result cache (in-memory or
	// disk store) without re-simulating.
	CacheHit bool     `json:"cache_hit,omitempty"`
	Progress Progress `json:"progress"`
	// Worker names the daemon (or, through a coordinator, the fleet
	// member) the job ran on: a single daemon stamps its configured
	// WorkerName, a coordinator the routed worker's URL. Empty on
	// unnamed single-node daemons. cmd/fsload aggregates it into its
	// per-worker breakdown.
	Worker string `json:"worker,omitempty"`
	// Attempts counts executor crashes attributed to this job; at the
	// server's quarantine threshold the job moves to "quarantined".
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
	// ErrorCode is the fsmerr code of a failed job, for programmatic
	// handling ("canceled", "config", ...).
	ErrorCode string `json:"error_code,omitempty"`
}

// JobEvent is one SSE progress event.
type JobEvent struct {
	Seq   int      `json:"seq"`
	Phase string   `json:"phase"` // queued, running, progress, done, failed, canceled
	Cell  string   `json:"cell,omitempty"`
	Done  int      `json:"done,omitempty"`
	Total int      `json:"total,omitempty"`
	State JobState `json:"state,omitempty"`
	Error string   `json:"error,omitempty"`
}

// ErrorBody is the JSON error envelope every non-2xx response carries.
type ErrorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// DomainSummary is one security domain's row in a simulation result.
type DomainSummary struct {
	Domain         int     `json:"domain"`
	IPC            float64 `json:"ipc"`
	Reads          int64   `json:"reads"`
	Writes         int64   `json:"writes"`
	Dummies        int64   `json:"dummies"`
	Prefetches     int64   `json:"prefetches"`
	RowHits        int64   `json:"row_hits"`
	AvgReadLatency float64 `json:"avg_read_latency"`
}

// LatencyTail is the domain-0 demand-read latency distribution.
type LatencyTail struct {
	P50 int64 `json:"p50"`
	P95 int64 `json:"p95"`
	P99 int64 `json:"p99"`
	Max int64 `json:"max"`
}

// SimulationSummary is the canonical result document of a simulate job:
// the same statistics cmd/memsim prints, as raw values. It is computed
// deterministically from the simulation result alone, so identical
// configs produce byte-identical documents — the content-addressed
// cache and the byte-equality tests rely on this.
type SimulationSummary struct {
	Scheduler       string          `json:"scheduler"`
	Workload        string          `json:"workload"`
	Domains         int             `json:"domains"`
	BusCycles       int64           `json:"bus_cycles"`
	Reads           int64           `json:"reads"`
	Instructions    int64           `json:"instructions"`
	AvgReadLatency  float64         `json:"avg_read_latency"`
	BusUtilization  float64         `json:"bus_utilization"`
	DummyFraction   float64         `json:"dummy_fraction"`
	EnergyMJ        float64         `json:"energy_mj"`
	EnergyPerReadNJ float64         `json:"energy_per_read_nj"`
	Truncated       bool            `json:"truncated,omitempty"`
	TruncateReason  string          `json:"truncate_reason,omitempty"`
	Latency         *LatencyTail    `json:"latency,omitempty"`
	PerDomain       []DomainSummary `json:"per_domain"`
	// Metrics is the end-of-run observability snapshot, present only on
	// observed jobs.
	Metrics obs.Snapshot `json:"metrics,omitempty"`
}

// Summarize reduces a finished simulation to its canonical result
// document. The daemon and the tests share it: a direct fsmem.Simulate
// caller summarizing the same config gets byte-identical JSON.
func Summarize(cfg sim.Config, res sim.Result) SimulationSummary {
	run := res.Run
	model := energy.NewModel(cfg.DRAM, energy.DDR3_4Gb())
	bill := model.ForRun(run, res.FS)
	s := SimulationSummary{
		Scheduler:       run.Scheduler,
		Workload:        run.Workload,
		Domains:         len(run.Domains),
		BusCycles:       run.BusCycles,
		Reads:           run.TotalReads(),
		Instructions:    run.TotalInstructions(),
		AvgReadLatency:  run.AvgReadLatency(),
		BusUtilization:  run.BusUtilization(),
		DummyFraction:   run.DummyFraction(),
		EnergyMJ:        bill.Total * 1e3,
		EnergyPerReadNJ: energy.PerRead(bill, run) * 1e9,
		Truncated:       res.Truncated,
		TruncateReason:  res.TruncateReason,
		Metrics:         res.Metrics,
	}
	if len(run.Latency) > 0 && run.Latency[0] != nil && run.Latency[0].Count() > 0 {
		h := run.Latency[0]
		s.Latency = &LatencyTail{
			P50: h.Quantile(0.5), P95: h.Quantile(0.95), P99: h.Quantile(0.99), Max: h.Max(),
		}
	}
	for d, dom := range run.Domains {
		s.PerDomain = append(s.PerDomain, DomainSummary{
			Domain: d, IPC: dom.IPC(), Reads: dom.Reads, Writes: dom.Writes,
			Dummies: dom.Dummies, Prefetches: dom.Prefetches, RowHits: dom.RowHits,
			AvgReadLatency: dom.AvgReadLatency(),
		})
	}
	return s
}

// FiguresResult is the result document of a figures job.
type FiguresResult struct {
	Tables []experiments.Table `json:"tables"`
	// Errors lists figures that failed to regenerate (a partial grid
	// still returns every healthy table).
	Errors []string `json:"errors,omitempty"`
}

// LeakageRow is one scheduler's leakage measurement.
type LeakageRow struct {
	Scheduler             string  `json:"scheduler"`
	Identical             bool    `json:"identical"`
	MaxDivergence         float64 `json:"max_divergence"`
	MutualInformationBits float64 `json:"mutual_information_bits"`
}

// LeakageResult is the result document of a leakage job.
type LeakageResult struct {
	Attacker string       `json:"attacker"`
	Rows     []LeakageRow `json:"rows"`
}

// ChaosResult is the result document of a chaos job.
type ChaosResult struct {
	Scheduler  string             `json:"scheduler"`
	Cycles     int64              `json:"cycles"`
	Undetected int                `json:"undetected"`
	Outcomes   []sim.FaultOutcome `json:"outcomes"`
}

// normalize fills request defaults and validates shape; it returns the
// canonical content key the job's ID and cache entry derive from.
func (r *JobRequest) normalize() (string, error) {
	switch r.Priority {
	case "":
		r.Priority = PriorityNormal
	case PriorityNormal, PriorityHigh:
	default:
		return "", fmt.Errorf("unknown priority %q (want %q or %q)", r.Priority, PriorityNormal, PriorityHigh)
	}
	if r.Observe && r.Kind != KindSimulate {
		return "", fmt.Errorf("observe is only supported on %q jobs", KindSimulate)
	}
	set := 0
	for _, ok := range []bool{r.Simulate != nil, r.Figures != nil, r.Leakage != nil, r.Chaos != nil, r.Audit != nil} {
		if ok {
			set++
		}
	}
	if set > 1 {
		return "", fmt.Errorf("exactly one job payload may be set, got %d", set)
	}
	switch r.Kind {
	case KindSimulate:
		if r.Simulate == nil {
			return "", fmt.Errorf("%q job needs a simulate payload", r.Kind)
		}
		cfg, err := r.Simulate.ToSimConfig()
		if err != nil {
			return "", err
		}
		key := "sim|" + experiments.MemoKey(cfg)
		if r.Observe {
			key += "|observe"
		}
		return key, nil
	case KindFigures:
		f := r.Figures
		if f == nil {
			f = &FiguresRequest{}
			r.Figures = f
		}
		if f.Cores == 0 {
			f.Cores = 8
		}
		if f.Reads == 0 {
			f.Reads = 20_000
		}
		if f.Seed == 0 {
			f.Seed = 42
		}
		known := experiments.Names()
		for _, id := range f.Figures {
			found := false
			for _, k := range known {
				if id == k {
					found = true
					break
				}
			}
			if !found {
				return "", fmt.Errorf("unknown figure %q (options: %s)", id, strings.Join(known, ", "))
			}
		}
		figs := append([]string(nil), f.Figures...)
		sort.Strings(figs)
		// Workers is an execution hint, not content: it never changes the
		// tables, so it stays out of the key.
		return fmt.Sprintf("figures|%s|cores=%d|reads=%d|seed=%d",
			strings.Join(figs, ","), f.Cores, f.Reads, f.Seed), nil
	case KindLeakage:
		l := r.Leakage
		if l == nil {
			l = &LeakageRequest{}
			r.Leakage = l
		}
		if l.Attacker == "" {
			l.Attacker = "mcf"
		}
		if l.Cores == 0 {
			l.Cores = 8
		}
		if l.Samples == 0 {
			l.Samples = 40
		}
		if l.Seed == 0 {
			l.Seed = 42
		}
		if l.Scheduler != "" {
			if _, err := schedulerByName(l.Scheduler); err != nil {
				return "", err
			}
		}
		if l.Channels == 0 {
			l.Channels = 1
		}
		if l.Routing == "" {
			l.Routing = addr.RouteColored.String()
		}
		if _, err := addr.RoutingByName(l.Routing); err != nil {
			return "", err
		}
		return fmt.Sprintf("leakage|sched=%s|attacker=%s|cores=%d|samples=%d|seed=%d|channels=%d|routing=%s",
			l.Scheduler, l.Attacker, l.Cores, l.Samples, l.Seed, l.Channels, l.Routing), nil
	case KindChaos:
		c := r.Chaos
		if c == nil {
			return "", fmt.Errorf("%q job needs a chaos payload", r.Kind)
		}
		if c.Workload == "" {
			c.Workload = "milc"
		}
		if c.Cores == 0 {
			c.Cores = 4
		}
		if c.Seed == 0 {
			c.Seed = 7
		}
		if _, err := schedulerByName(c.Scheduler); err != nil {
			return "", err
		}
		return fmt.Sprintf("chaos|sched=%s|workload=%s|cores=%d|seed=%d|cycles=%d",
			c.Scheduler, c.Workload, c.Cores, c.Seed, c.Cycles), nil
	case KindAudit:
		a := r.Audit
		if a == nil {
			return "", fmt.Errorf("%q job needs an audit payload", r.Kind)
		}
		if a.Cores == 0 {
			a.Cores = audit.DefaultDomains
		}
		if a.Bits == 0 {
			a.Bits = audit.DefaultBits
		}
		a.Bits += a.Bits % 2 // the engine rounds up to even; bake it into the key
		if a.Window == 0 {
			a.Window = audit.DefaultWindow
		}
		if a.Seeds == 0 {
			a.Seeds = audit.DefaultSeeds
		}
		if a.Permutations == 0 {
			a.Permutations = audit.DefaultPermutations
		}
		if a.Rounds == 0 {
			a.Rounds = audit.DefaultRounds
		}
		if a.Seed == 0 {
			a.Seed = 42
		}
		// A fault seed only means something alongside a fault plan; zero it
		// otherwise so requests differing only in a dangling seed address
		// the same job (and the certificate omits it, like a direct run).
		if a.Fault == "" {
			a.FaultSeed = 0
		} else if a.FaultSeed == 0 {
			a.FaultSeed = 7
		}
		if _, err := schedulerByName(a.Scheduler); err != nil {
			return "", err
		}
		if a.Fault != "" {
			if _, ok := fault.PlanByName(a.Fault, a.Cores, a.FaultSeed); !ok {
				return "", fmt.Errorf("unknown fault plan %q", a.Fault)
			}
		}
		if a.Channels == 0 {
			a.Channels = 1
		}
		if a.Routing == "" {
			a.Routing = addr.RouteColored.String()
		}
		if _, err := addr.RoutingByName(a.Routing); err != nil {
			return "", err
		}
		return fmt.Sprintf("audit|sched=%s|cores=%d|bits=%d|window=%d|seeds=%d|perms=%d|rounds=%d|seed=%d|fault=%s|faultseed=%d|channels=%d|routing=%s",
			a.Scheduler, a.Cores, a.Bits, a.Window, a.Seeds, a.Permutations, a.Rounds, a.Seed, a.Fault, a.FaultSeed, a.Channels, a.Routing), nil
	default:
		return "", fmt.Errorf("unknown job kind %q (options: %s, %s, %s, %s, %s)",
			r.Kind, KindSimulate, KindFigures, KindLeakage, KindChaos, KindAudit)
	}
}

// Canonicalize validates req, fills its defaults in place, and returns
// the job's content-addressed ID and canonical content key — the same
// identity Submit assigns. The cluster coordinator routes on it, so
// routing and execution can never disagree about what a job is, and a
// resubmission on another worker is idempotent by construction.
func Canonicalize(req *JobRequest) (id, key string, err error) {
	key, err = req.normalize()
	if err != nil {
		return "", "", err
	}
	return jobID(key), key, nil
}

// ClusterWorker is one fleet member's row in the coordinator's
// /v1/cluster document.
type ClusterWorker struct {
	Name           string `json:"name"`
	Healthy        bool   `json:"healthy"`
	InFlight       int64  `json:"in_flight"`
	Routed         int64  `json:"routed"`
	Completed      int64  `json:"completed"`
	Failed         int64  `json:"failed"`
	Stolen         int64  `json:"stolen"`
	HeartbeatFails int64  `json:"heartbeat_fails"`
}

// ClusterStatus is the coordinator's GET /v1/cluster fleet document.
type ClusterStatus struct {
	Workers          []ClusterWorker `json:"workers"`
	Submitted        int64           `json:"submitted"`
	Completed        int64           `json:"completed"`
	Failed           int64           `json:"failed"`
	CacheHits        int64           `json:"cache_hits"`
	Live             int             `json:"live"`
	Retries          int64           `json:"retries"`
	Steals           int64           `json:"steals"`
	VerifySampled    int64           `json:"verify_sampled"`
	VerifyOK         int64           `json:"verify_ok"`
	VerifyMismatches int64           `json:"verify_mismatches"`
}

// RegisterRequest is the POST /v1/cluster/register payload a worker
// sends (via fsmemd -join) to enter a coordinator's fleet.
type RegisterRequest struct {
	// Addr is the worker's advertised base URL, e.g.
	// "http://10.0.0.7:8377".
	Addr string `json:"addr"`
}

// jobID derives the deterministic job ID from the canonical content
// key: the same request always maps to the same job, which is what
// makes concurrent identical submissions collapse into one execution.
func jobID(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("j%016x", h.Sum64())
}

// schedulerByName resolves a config scheduler name.
func schedulerByName(name string) (sim.SchedulerKind, error) {
	k, ok := config.SchedulerByName(name)
	if !ok {
		return 0, fmt.Errorf("unknown scheduler %q (options: %s)",
			name, strings.Join(config.SchedulerNames(), ", "))
	}
	return k, nil
}

// marshalResult encodes a result document with a stable layout.
func marshalResult(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
