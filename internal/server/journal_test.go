package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// journalJob normalizes a small request and returns everything a
// journal record needs.
func journalJob(t *testing.T, seed uint64) (id, key string, req JobRequest) {
	t.Helper()
	req = smallSim(seed)
	key, err := req.normalize()
	if err != nil {
		t.Fatal(err)
	}
	return jobID(key), key, req
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jl, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	idA, keyA, reqA := journalJob(t, 1)
	idB, keyB, reqB := journalJob(t, 2)
	if err := jl.accept(idA, keyA, reqA); err != nil {
		t.Fatal(err)
	}
	if err := jl.state(idA, StateRunning, 0); err != nil {
		t.Fatal(err)
	}
	if err := jl.state(idA, StateDone, 0); err != nil {
		t.Fatal(err)
	}
	if err := jl.accept(idB, keyB, reqB); err != nil {
		t.Fatal(err)
	}
	if got := jl.appendCount(); got != 4 {
		t.Fatalf("appendCount = %d, want 4", got)
	}
	if err := jl.close(); err != nil {
		t.Fatal(err)
	}

	jobs, skipped, err := replayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped = %d, want 0", skipped)
	}
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	a, b := jobs[idA], jobs[idB]
	if a == nil || a.State != StateDone || a.Key != keyA {
		t.Fatalf("job A replayed as %+v", a)
	}
	if b == nil || b.State != StateQueued || b.Key != keyB {
		t.Fatalf("job B replayed as %+v", b)
	}
	if a.seq >= b.seq {
		t.Fatalf("accept order lost: seq %d vs %d", a.seq, b.seq)
	}
	// The replayed request must round-trip to the same identity.
	k, err := a.Req.normalize()
	if err != nil || k != keyA || jobID(k) != idA {
		t.Fatalf("replayed request renormalizes to %q (%v)", k, err)
	}
}

// TestJournalSkipsDamage pins the degradation contract: torn lines,
// bit-flipped lines, orphan state records, and accept records that no
// longer normalize are each skipped and counted — never a failed boot.
func TestJournalSkipsDamage(t *testing.T) {
	dir := t.TempDir()
	jl, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	idA, keyA, reqA := journalJob(t, 1)
	idB, keyB, reqB := journalJob(t, 2)
	if err := jl.accept(idA, keyA, reqA); err != nil {
		t.Fatal(err)
	}
	if err := jl.accept(idB, keyB, reqB); err != nil {
		t.Fatal(err)
	}
	if err := jl.state(idA, StateDone, 0); err != nil {
		t.Fatal(err)
	}
	// An orphan state record (its accept was never written).
	if err := jl.state("jdeadbeef00000000", StateRunning, 1); err != nil {
		t.Fatal(err)
	}
	// An accept whose request no longer normalizes (valid CRC).
	if err := jl.append(journalRecord{Op: "accept", ID: "jfeedface00000000", Key: "k", Req: &JobRequest{Kind: "nope"}}); err != nil {
		t.Fatal(err)
	}
	// An accept whose ID does not match its key (tampered).
	if err := jl.append(journalRecord{Op: "accept", ID: "j0000000000000000", Key: keyA, Req: &reqA}); err != nil {
		t.Fatal(err)
	}
	if err := jl.close(); err != nil {
		t.Fatal(err)
	}

	// Bit-flip job B's accept line and append a torn fragment, as a
	// crash mid-append would leave it.
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[1] = strings.Replace(lines[1], `"op":"accept"`, `"op":"accepX"`, 1)
	damaged := strings.Join(lines, "") + "00a1b2c3 {\"op\":\"accept\",\"id\":\"jtr" // torn mid-line
	if err := os.WriteFile(path, []byte(damaged), 0o644); err != nil {
		t.Fatal(err)
	}

	jobs, skipped, err := replayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Damaged: B's flipped accept, the orphan state, the bad-kind
	// accept, the ID-mismatch accept, the torn tail.
	if skipped != 5 {
		t.Fatalf("skipped = %d, want 5", skipped)
	}
	if len(jobs) != 1 {
		t.Fatalf("replayed %d jobs, want 1 (only A survives)", len(jobs))
	}
	if a := jobs[idA]; a == nil || a.State != StateDone {
		t.Fatalf("job A replayed as %+v", jobs[idA])
	}
	_ = idB
}

// TestJournalCompaction pins what survives a compaction: queued,
// running, and quarantined jobs plus failed jobs with a nonzero crash
// counter; done, canceled, and cleanly failed jobs are dropped.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	jl, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	type want struct {
		state    JobState
		attempts int
		keep     bool
	}
	cases := map[uint64]want{
		1: {StateDone, 0, false},
		2: {StateCanceled, 0, false},
		3: {StateQueued, 0, true},
		4: {StateRunning, 1, true},
		5: {StateQuarantined, 3, true},
		6: {StateFailed, 2, true},
		7: {StateFailed, 0, false}, // clean failure is reproducible, no memory needed
	}
	ids := map[uint64]string{}
	for seed := uint64(1); seed <= 7; seed++ {
		id, key, req := journalJob(t, seed)
		ids[seed] = id
		if err := jl.accept(id, key, req); err != nil {
			t.Fatal(err)
		}
		w := cases[seed]
		if w.state != StateQueued {
			if err := jl.state(id, w.state, w.attempts); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := jl.close(); err != nil {
		t.Fatal(err)
	}

	jobs, _, err := replayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	ordered := make([]*journaledJob, 0, len(jobs))
	for _, jj := range jobs {
		ordered = append(ordered, jj)
	}
	if err := compactJournal(dir, ordered); err != nil {
		t.Fatal(err)
	}

	after, skipped, err := replayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("compacted journal has %d damaged lines", skipped)
	}
	for seed, w := range cases {
		jj, ok := after[ids[seed]]
		if ok != w.keep {
			t.Errorf("seed %d (%s): kept=%v, want %v", seed, w.state, ok, w.keep)
			continue
		}
		if !ok {
			continue
		}
		if jj.State != w.state || jj.Attempts != w.attempts {
			t.Errorf("seed %d: replayed %s/%d, want %s/%d", seed, jj.State, jj.Attempts, w.state, w.attempts)
		}
	}
	// Compacting a journal of only-droppable jobs leaves an empty file.
	done := []*journaledJob{{ID: "j1", State: StateDone}}
	if err := compactJournal(dir, done); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("fully-compacted journal holds %d bytes: %q", len(data), data)
	}
}

func TestParseJournalLine(t *testing.T) {
	id, key, req := journalJob(t, 1)
	dir := t.TempDir()
	jl, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.accept(id, key, req); err != nil {
		t.Fatal(err)
	}
	jl.close()
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	valid := strings.TrimSuffix(string(data), "\n")
	if rec, ok := parseJournalLine([]byte(valid)); !ok || rec.ID != id {
		t.Fatalf("valid line rejected: %+v %v", rec, ok)
	}
	bad := []string{
		"",
		"short",
		"xxxxxxxx {\"op\":\"accept\",\"id\":\"j1\"}",  // non-hex checksum
		"00000000 {\"op\":\"accept\",\"id\":\"j1\"}",  // wrong checksum
		"0ef265e1 not json",                           // checksum of garbage won't match either
		valid[:len(valid)/2],                          // torn
		strings.Replace(valid, "accept", "accepX", 1), // payload flipped under old checksum
	}
	for _, line := range bad {
		if _, ok := parseJournalLine([]byte(line)); ok {
			t.Errorf("damaged line accepted: %q", line)
		}
	}
}
