package server

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"fsmem/internal/config"
)

// smallSim returns a fast, deterministic simulate request; vary seed to
// address distinct cache entries.
func smallSim(seed uint64) JobRequest {
	e := config.Default()
	e.Workload = "mcf"
	e.Scheduler = "fs_bp"
	e.Cores = 2
	e.Reads = 300
	e.Seed = seed
	return JobRequest{Kind: KindSimulate, Simulate: &e}
}

// mustManager builds a manager or fails the test.
func mustManager(t *testing.T, o Options) *Manager {
	t.Helper()
	m, err := newManager(o)
	if err != nil {
		t.Fatalf("newManager: %v", err)
	}
	return m
}

func waitJob(t *testing.T, j *Job) JobStatus {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", j.ID)
	}
	return j.Status()
}

func TestJobIDDeterministic(t *testing.T) {
	a, b, c := smallSim(1), smallSim(1), smallSim(2)
	ka, err := a.normalize()
	if err != nil {
		t.Fatal(err)
	}
	kb, _ := b.normalize()
	kc, _ := c.normalize()
	if ka != kb || jobID(ka) != jobID(kb) {
		t.Fatalf("identical requests got different keys: %q vs %q", ka, kb)
	}
	if ka == kc {
		t.Fatalf("different seeds share a key: %q", ka)
	}
	obs := smallSim(1)
	obs.Observe = true
	ko, err := obs.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if ko == ka {
		t.Fatal("observed request must cache separately from unobserved")
	}
}

func TestNormalizeRejectsBadRequests(t *testing.T) {
	cases := map[string]JobRequest{
		"unknown kind":      {Kind: "nope"},
		"missing payload":   {Kind: KindSimulate},
		"missing chaos":     {Kind: KindChaos},
		"two payloads":      {Kind: KindSimulate, Simulate: smallSim(1).Simulate, Chaos: &ChaosRequest{Scheduler: "fs_bp"}},
		"bad priority":      func() JobRequest { r := smallSim(1); r.Priority = "urgent"; return r }(),
		"observe non-sim":   {Kind: KindFigures, Observe: true, Figures: &FiguresRequest{}},
		"bad scheduler":     {Kind: KindChaos, Chaos: &ChaosRequest{Scheduler: "nope"}},
		"bad figure":        {Kind: KindFigures, Figures: &FiguresRequest{Figures: []string{"99"}}},
		"bad sim config":    {Kind: KindSimulate, Simulate: &config.Experiment{Workload: "mcf", Scheduler: "nope"}},
		"bad leakage sched": {Kind: KindLeakage, Leakage: &LeakageRequest{Scheduler: "nope"}},
	}
	for name, req := range cases {
		req := req
		if _, err := req.normalize(); err == nil {
			t.Errorf("%s: normalize accepted %+v", name, req)
		}
	}
}

// TestManagerDedup pins the singleflight property: N concurrent
// identical submissions collapse into one job and exactly one
// simulation.
func TestManagerDedup(t *testing.T) {
	m := mustManager(t, Options{Workers: 2, QueueDepth: 16, CacheEntries: 16, GridShards: 1})
	defer m.Drain(context.Background())

	const n = 16
	jobs := make([]*Job, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, _, err := m.Submit(smallSim(9))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobs[i] = j
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if jobs[i] == nil || jobs[0] == nil {
			t.Fatal("missing job")
		}
		if jobs[i].ID != jobs[0].ID {
			t.Fatalf("submission %d got job %s, want %s", i, jobs[i].ID, jobs[0].ID)
		}
	}
	st := waitJob(t, jobs[0])
	if st.State != StateDone {
		t.Fatalf("job state %s (%s), want done", st.State, st.Error)
	}
	if got := m.executed.Load(); got != 1 {
		t.Fatalf("executed %d simulations for %d identical submissions, want 1", got, n)
	}

	// A later identical submission is a cache hit with identical bytes.
	j, _, err := m.Submit(smallSim(9))
	if err != nil {
		t.Fatal(err)
	}
	st = waitJob(t, j)
	if !st.CacheHit {
		t.Fatal("resubmission after completion was not a cache hit")
	}
	a, _ := jobs[0].Result()
	b, _ := j.Result()
	if !bytes.Equal(a.result, b.result) {
		t.Fatal("cache hit returned different bytes")
	}
	if got := m.executed.Load(); got != 1 {
		t.Fatalf("cache hit re-executed: executed = %d", got)
	}
}

// TestManagerDrain pins the drain contract: accepted jobs (running or
// still queued) finish, new submissions fail with errDraining.
func TestManagerDrain(t *testing.T) {
	m := mustManager(t, Options{Workers: 1, QueueDepth: 16, CacheEntries: 16, GridShards: 1})
	a, _, err := m.Submit(smallSim(21))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := m.Submit(smallSim(22)) // queued behind a on the single worker
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := a.Status(); st.State != StateDone {
		t.Fatalf("in-flight job dropped by drain: %s (%s)", st.State, st.Error)
	}
	if st := b.Status(); st.State != StateDone {
		t.Fatalf("queued job dropped by drain: %s (%s)", st.State, st.Error)
	}
	if _, _, err := m.Submit(smallSim(23)); !errors.Is(err, errDraining) {
		t.Fatalf("submit after drain: %v, want errDraining", err)
	}
	// Drain is idempotent.
	if err := m.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

func TestManagerCancelQueued(t *testing.T) {
	m := mustManager(t, Options{Workers: 1, QueueDepth: 16, CacheEntries: 16, GridShards: 1})
	defer m.Drain(context.Background())
	// Occupy the single worker so the second job stays queued.
	a, _, err := m.Submit(JobRequest{Kind: KindSimulate, Simulate: func() *config.Experiment {
		e := config.Default()
		e.Workload = "mcf"
		e.Scheduler = "fs_bp"
		e.Cores = 2
		e.Reads = 5_000
		e.Seed = 31
		return &e
	}()})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := m.Submit(smallSim(32))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Cancel(b.ID) {
		t.Fatal("cancel returned false for a known job")
	}
	st := waitJob(t, b)
	if st.State != StateCanceled {
		t.Fatalf("canceled queued job is %s, want canceled", st.State)
	}
	if st := waitJob(t, a); st.State != StateDone {
		t.Fatalf("unrelated job is %s, want done", st.State)
	}
	// A fresh identical submission replaces the canceled record.
	b2, created, err := m.Submit(smallSim(32))
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("resubmission of a canceled job did not create a fresh attempt")
	}
	if st := waitJob(t, b2); st.State != StateDone {
		t.Fatalf("resubmitted job is %s, want done", st.State)
	}
}

func TestManagerQueueFull(t *testing.T) {
	m := mustManager(t, Options{Workers: 1, QueueDepth: 1, CacheEntries: 16, GridShards: 1})
	defer m.Drain(context.Background())
	// One running + one queued fills the depth-1 queue; the third
	// distinct submission must fail fast.
	if _, _, err := m.Submit(smallSim(41)); err != nil {
		t.Fatal(err)
	}
	var sawFull bool
	for seed := uint64(42); seed < 50; seed++ {
		if _, _, err := m.Submit(smallSim(seed)); errors.Is(err, errQueueFull) {
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("bounded queue never reported errQueueFull")
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.put(&cacheEntry{key: "a", result: []byte("a")})
	c.put(&cacheEntry{key: "b", result: []byte("b")})
	if _, ok := c.get("a"); !ok { // promote a
		t.Fatal("missing a")
	}
	c.put(&cacheEntry{key: "c", result: []byte("c")}) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction past capacity")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used a was evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("missing c")
	}
	entries, hits, misses := c.stats()
	if entries != 2 {
		t.Fatalf("entries = %d, want 2", entries)
	}
	if hits != 3 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 3/1", hits, misses)
	}
	// Same-key put replaces in place.
	c.put(&cacheEntry{key: "c", result: []byte("c2")})
	if e, _ := c.get("c"); string(e.result) != "c2" {
		t.Fatal("same-key put did not replace the entry")
	}
}

func TestTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newTokenBucket(10, 2, func() time.Time { return now })
	if !b.allow() || !b.allow() {
		t.Fatal("burst tokens rejected")
	}
	if b.allow() {
		t.Fatal("empty bucket allowed a request")
	}
	// The Retry-After hint is the exact deterministic refill time.
	if ra := b.retryAfter(); ra != 100*time.Millisecond {
		t.Fatalf("retryAfter = %v, want 100ms", ra)
	}
	now = now.Add(100 * time.Millisecond) // refills 1 token at 10/s
	if !b.allow() {
		t.Fatal("refilled token rejected")
	}
	if b.allow() {
		t.Fatal("bucket over-refilled")
	}
	now = now.Add(time.Hour)
	for i := 0; i < 2; i++ { // capped at burst, not rate*3600
		if !b.allow() {
			t.Fatalf("token %d after refill rejected", i)
		}
	}
	if b.allow() {
		t.Fatal("refill exceeded burst cap")
	}
}

func TestEventLog(t *testing.T) {
	l := newEventLog()
	l.publish(JobEvent{Phase: "queued"})
	l.publish(JobEvent{Phase: "running"})

	// Late subscriber replays history from the start.
	ctx := context.Background()
	ev, ok := l.next(ctx, 0)
	if !ok || ev.Phase != "queued" || ev.Seq != 0 {
		t.Fatalf("replay[0] = %+v, %v", ev, ok)
	}
	ev, ok = l.next(ctx, 1)
	if !ok || ev.Phase != "running" || ev.Seq != 1 {
		t.Fatalf("replay[1] = %+v, %v", ev, ok)
	}

	// A blocked reader wakes on publish.
	got := make(chan JobEvent, 1)
	go func() {
		ev, _ := l.next(ctx, 2)
		got <- ev
	}()
	time.Sleep(10 * time.Millisecond)
	l.publish(JobEvent{Phase: "done"})
	select {
	case ev := <-got:
		if ev.Phase != "done" {
			t.Fatalf("woke with %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader never woke on publish")
	}

	// After close, reads past the end return ok=false; publishes drop.
	l.close()
	if _, ok := l.next(ctx, 3); ok {
		t.Fatal("read past end of a closed log succeeded")
	}
	l.publish(JobEvent{Phase: "late"})
	if _, ok := l.next(ctx, 3); ok {
		t.Fatal("publish after close was recorded")
	}

	// A canceled context unblocks a waiting reader.
	l2 := newEventLog()
	cctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := l2.next(cctx, 0)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("canceled reader reported an event")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled reader never unblocked")
	}
}
