package server

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fsmem/internal/fault"
)

// durableOpts is the standard manager config for the crash tests: one
// worker (deterministic queue order) over a journal + store in dir.
func durableOpts(dir string) Options {
	return Options{Workers: 1, QueueDepth: 16, CacheEntries: 16, GridShards: 1, DataDir: dir}
}

func resultBytes(t *testing.T, j *Job) []byte {
	t.Helper()
	e, ok := j.Result()
	if !ok {
		t.Fatalf("job %s has no result (state %s)", j.ID, j.Status().State)
	}
	return e.result
}

// TestRecoveryServesDoneFromStore pins the restart-over-done path: a
// SIGKILLed daemon restarted on the same data directory answers a
// resubmission byte-identically from the disk store, without
// re-simulating, and compacts the journal down to nothing.
func TestRecoveryServesDoneFromStore(t *testing.T) {
	dir := t.TempDir()
	m1 := mustManager(t, durableOpts(dir))
	j1, _, err := m1.Submit(smallSim(51))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j1); st.State != StateDone {
		t.Fatalf("job state %s (%s)", st.State, st.Error)
	}
	want := resultBytes(t, j1)
	m1.crash()

	m2 := mustManager(t, durableOpts(dir))
	defer m2.Drain(context.Background())
	// A client polling j1's ID across the crash keeps getting answers:
	// recovery rematerializes journaled done jobs from the store instead
	// of forgetting them (a poller would otherwise hit 404s).
	rj, ok := m2.Get(j1.ID)
	if !ok {
		t.Fatalf("done job %s forgotten across restart", j1.ID)
	}
	if st := rj.Status(); st.State != StateDone || !st.CacheHit {
		t.Fatalf("recovered done job: state %s cacheHit %v, want done hit", st.State, st.CacheHit)
	}
	if got := m2.recoveredServed.Load(); got != 1 {
		t.Fatalf("recoveredServed = %d, want 1", got)
	}
	j2, _, err := m2.Submit(smallSim(51))
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j2)
	if st.State != StateDone || !st.CacheHit {
		t.Fatalf("restarted resubmission: state %s cacheHit %v, want done hit", st.State, st.CacheHit)
	}
	if got := resultBytes(t, j2); !bytes.Equal(got, want) {
		t.Fatalf("restart served different bytes:\npre:  %s\npost: %s", want, got)
	}
	if got := m2.executed.Load(); got != 0 {
		t.Fatalf("restart re-simulated a persisted result (%d executions)", got)
	}
	if _, hits, _, _, _ := m2.store.Stats(); hits != 1 {
		t.Fatalf("store hits = %d, want 1", hits)
	}
	// The startup compaction dropped the done job's records.
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("journal not compacted after recovery: %q", data)
	}
}

// TestRecoveryRequeuesAcceptedJobs pins the zero-lost-jobs contract: a
// crash with one job running and two queued restarts into a manager
// that re-executes all three to done, with the interrupted job's crash
// counter advanced, and the re-executed result is byte-identical to a
// fresh simulation of the same request.
func TestRecoveryRequeuesAcceptedJobs(t *testing.T) {
	dir := t.TempDir()
	m1 := mustManager(t, durableOpts(dir))
	// Capacity covers every job: after the crash cancels the base
	// context, the worker still drains the (closed) queues' buffered
	// jobs through this body, and those sends must not block.
	started := make(chan string, 8)
	m1.testRun = func(ctx context.Context, j *Job) (*cacheEntry, error) {
		started <- j.ID
		<-ctx.Done() // wedge the worker until the "SIGKILL"
		return nil, ctx.Err()
	}
	var ids []string
	for seed := uint64(61); seed <= 63; seed++ {
		j, _, err := m1.Submit(smallSim(seed))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	running := <-started // the single worker has journaled job 1 running
	if running != ids[0] {
		t.Fatalf("worker picked %s first, want %s", running, ids[0])
	}
	m1.crash()

	m2 := mustManager(t, durableOpts(dir)) // real executor this time
	defer m2.Drain(context.Background())
	if got := m2.recoveredRequeued.Load(); got != 3 {
		t.Fatalf("recovered %d jobs, want 3", got)
	}
	for i, id := range ids {
		j, ok := m2.Get(id)
		if !ok {
			t.Fatalf("job %d (%s) lost across the crash", i, id)
		}
		if st := waitJob(t, j); st.State != StateDone {
			t.Fatalf("recovered job %d: state %s (%s)", i, st.State, st.Error)
		}
	}
	j0, _ := m2.Get(ids[0])
	if st := j0.Status(); st.Attempts != 1 {
		t.Fatalf("interrupted job attempts = %d, want 1 (it was running at the crash)", st.Attempts)
	}

	// Deterministic-replay soundness: the post-crash re-execution
	// produced exactly the bytes a fresh, never-crashed manager does.
	fresh := mustManager(t, Options{Workers: 1, QueueDepth: 16, CacheEntries: 16, GridShards: 1})
	defer fresh.Drain(context.Background())
	jf, _, err := fresh.Submit(smallSim(61))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, jf); st.State != StateDone {
		t.Fatalf("fresh run: %s", st.State)
	}
	if !bytes.Equal(resultBytes(t, j0), resultBytes(t, jf)) {
		t.Fatal("recovered re-execution differs from a fresh simulation")
	}
}

// TestPoisonJobQuarantine pins the in-process quarantine path: a job
// whose body panics is isolated (the worker survives), fails with an
// advancing crash counter, and is parked at the threshold; further
// resubmissions report the verdict without re-executing, and the
// verdict survives a crash/restart.
func TestPoisonJobQuarantine(t *testing.T) {
	dir := t.TempDir()
	o := durableOpts(dir)
	o.QuarantineAfter = 3
	m1 := mustManager(t, o)
	m1.testRun = func(ctx context.Context, j *Job) (*cacheEntry, error) {
		panic("poison config: simulator invariant violated")
	}
	for attempt := 1; attempt <= 3; attempt++ {
		j, created, err := m1.Submit(smallSim(71))
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if !created {
			t.Fatalf("attempt %d joined a stale job instead of retrying", attempt)
		}
		st := waitJob(t, j)
		wantState := StateFailed
		if attempt == 3 {
			wantState = StateQuarantined
		}
		if st.State != wantState || st.Attempts != attempt {
			t.Fatalf("attempt %d: state %s attempts %d, want %s/%d (%s)",
				attempt, st.State, st.Attempts, wantState, attempt, st.Error)
		}
	}
	if got := m1.executed.Load(); got != 3 {
		t.Fatalf("executed %d times, want 3", got)
	}
	// Attempt 4: the verdict is served without touching the executor.
	j, _, err := m1.Submit(smallSim(71))
	if err != nil {
		t.Fatal(err)
	}
	if st := j.Status(); st.State != StateQuarantined {
		t.Fatalf("resubmitted poison: %s, want quarantined", st.State)
	}
	if got := m1.executed.Load(); got != 3 {
		t.Fatalf("quarantined job re-executed (%d executions)", got)
	}
	m1.crash()

	// The verdict survives the crash: the restarted manager (with a
	// healthy executor!) still refuses to run it.
	m2 := mustManager(t, o)
	defer m2.Drain(context.Background())
	if got := m2.recoveredQuarantined.Load(); got != 1 {
		t.Fatalf("recoveredQuarantined = %d, want 1", got)
	}
	j2, _, err := m2.Submit(smallSim(71))
	if err != nil {
		t.Fatal(err)
	}
	st := j2.Status()
	if st.State != StateQuarantined || st.Attempts != 3 {
		t.Fatalf("post-restart poison: %s/%d, want quarantined/3", st.State, st.Attempts)
	}
	if got := m2.executed.Load(); got != 0 {
		t.Fatalf("restarted manager executed a quarantined job %d times", got)
	}
}

// TestRecoveryQuarantinesCrashLoop pins the hard-crash loop breaker: a
// journal that says a job was mid-execution when the process died (for
// the Nth time) quarantines the job at recovery instead of letting it
// kill the daemon again.
func TestRecoveryQuarantinesCrashLoop(t *testing.T) {
	dir := t.TempDir()
	id, key, req := journalJob(t, 81)
	jl, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.accept(id, key, req); err != nil {
		t.Fatal(err)
	}
	// Two prior lives already died running this job; this journal is
	// what the third life's SIGKILL left behind.
	if err := jl.state(id, StateRunning, 2); err != nil {
		t.Fatal(err)
	}
	if err := jl.close(); err != nil {
		t.Fatal(err)
	}

	o := durableOpts(dir)
	o.QuarantineAfter = 3
	m := mustManager(t, o)
	defer m.Drain(context.Background())
	if got := m.recoveredQuarantined.Load(); got != 1 {
		t.Fatalf("recoveredQuarantined = %d, want 1", got)
	}
	j, ok := m.Get(id)
	if !ok {
		t.Fatal("crash-loop job missing from the table")
	}
	st := j.Status()
	if st.State != StateQuarantined || st.Attempts != 3 {
		t.Fatalf("crash-loop job: %s/%d, want quarantined/3", st.State, st.Attempts)
	}
	if got := m.executed.Load(); got != 0 {
		t.Fatal("crash-loop job was re-executed")
	}
	// One crash short of the threshold re-enqueues instead.
	dir2 := t.TempDir()
	id2, key2, req2 := journalJob(t, 82)
	jl2, err := openJournal(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if err := jl2.accept(id2, key2, req2); err != nil {
		t.Fatal(err)
	}
	if err := jl2.state(id2, StateRunning, 1); err != nil {
		t.Fatal(err)
	}
	jl2.close()
	o2 := durableOpts(dir2)
	o2.QuarantineAfter = 3
	m2 := mustManager(t, o2)
	defer m2.Drain(context.Background())
	j2, ok := m2.Get(id2)
	if !ok {
		t.Fatal("below-threshold job missing")
	}
	if st := waitJob(t, j2); st.State != StateDone || st.Attempts != 2 {
		t.Fatalf("below-threshold job: %s/%d, want done/2", st.State, st.Attempts)
	}
}

// TestRecoveryCorruptStoreEntry closes the self-healing loop end to
// end: a persisted result damaged on disk is detected by checksum at
// recovery, deleted, transparently re-simulated, and the fresh result
// is byte-identical to the original.
func TestRecoveryCorruptStoreEntry(t *testing.T) {
	dir := t.TempDir()
	req := smallSim(91)
	key, err := req.normalize()
	if err != nil {
		t.Fatal(err)
	}
	m1 := mustManager(t, durableOpts(dir))
	j1, _, err := m1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j1); st.State != StateDone {
		t.Fatalf("job state %s (%s)", st.State, st.Error)
	}
	want := resultBytes(t, j1)
	m1.crash()

	// Flip a bit in the persisted entry, as media rot would.
	path := (&Store{dir: filepath.Join(dir, "store")}).Path(key)
	if err := fault.CorruptFile(path, fault.DiskBitFlip, 7); err != nil {
		t.Fatal(err)
	}

	m2 := mustManager(t, durableOpts(dir))
	defer m2.Drain(context.Background())
	j2, _, err := m2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j2); st.State != StateDone {
		t.Fatalf("re-simulated job: %s (%s)", st.State, st.Error)
	}
	if got := resultBytes(t, j2); !bytes.Equal(got, want) {
		t.Fatal("re-simulated result differs from the pre-corruption bytes")
	}
	if got := m2.executed.Load(); got != 1 {
		t.Fatalf("executed %d times, want exactly 1 re-simulation", got)
	}
	if _, _, _, corrupt, _ := m2.store.Stats(); corrupt != 1 {
		t.Fatalf("store corrupt counter = %d, want 1", corrupt)
	}
	if got := m2.storeErrors.Load(); got != 1 {
		t.Fatalf("manager storeErrors = %d, want 1", got)
	}
	// The healed entry is back on disk and serves the next restart.
	m2.Drain(context.Background())
	m3 := mustManager(t, durableOpts(dir))
	defer m3.Drain(context.Background())
	j3, _, err := m3.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j3)
	if st.State != StateDone || !st.CacheHit {
		t.Fatalf("healed entry not re-served: %s hit=%v", st.State, st.CacheHit)
	}
	if !bytes.Equal(resultBytes(t, j3), want) {
		t.Fatal("healed entry serves different bytes")
	}
	if got := m3.executed.Load(); got != 0 {
		t.Fatal("healed entry was re-simulated again")
	}
}

// TestCacheEvictionUnderConcurrentSubmit hammers a 2-entry LRU with 4
// distinct configs from many goroutines so evictions constantly race
// live singleflight joins; every completion must return the canonical
// bytes for its seed. Run under -race this pins the cache/manager
// interaction the serving path depends on.
func TestCacheEvictionUnderConcurrentSubmit(t *testing.T) {
	m := mustManager(t, Options{Workers: 4, QueueDepth: 64, CacheEntries: 2, GridShards: 1})
	defer m.Drain(context.Background())

	const seeds = 4
	canonical := make([][]byte, seeds)
	for i := 0; i < seeds; i++ {
		j, _, err := m.Submit(smallSim(uint64(100 + i)))
		if err != nil {
			t.Fatal(err)
		}
		if st := waitJob(t, j); st.State != StateDone {
			t.Fatalf("seed %d: %s", i, st.State)
		}
		canonical[i] = resultBytes(t, j)
	}

	const goroutines, iters = 8, 6
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for it := 0; it < iters; it++ {
				seed := (g + it) % seeds
				j, _, err := m.Submit(smallSim(uint64(100 + seed)))
				if err != nil {
					errc <- err
					return
				}
				select {
				case <-j.Done():
				case <-time.After(30 * time.Second):
					errc <- fmt.Errorf("goroutine %d: job %s stuck", g, j.ID)
					return
				}
				if st := j.Status(); st.State != StateDone {
					errc <- fmt.Errorf("goroutine %d seed %d: state %s (%s)", g, seed, st.State, st.Error)
					return
				}
				e, ok := j.Result()
				if !ok || !bytes.Equal(e.result, canonical[seed]) {
					errc <- fmt.Errorf("goroutine %d seed %d: wrong bytes (ok=%v)", g, seed, ok)
					return
				}
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
