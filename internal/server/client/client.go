// Package client is the typed Go client for the fsmemd daemon. The
// API tests and cmd/fsload drive the server exclusively through it, so
// the wire contract is exercised end to end.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fsmem/internal/server"
	"fsmem/internal/trace"
)

// APIError is a non-2xx response decoded from the server's error
// envelope.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
	// RetryAfter is the server's backoff hint (429/503 responses carry
	// one computed from queue depth or the rate limiter), 0 if absent.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("fsmemd: %d %s: %s", e.StatusCode, e.Code, e.Message)
}

// RetryPolicy configures automatic resubmission on transient failures:
// connection errors (the daemon is restarting) and 429/503 backpressure
// responses. Retrying a submit is always safe — job IDs are
// content-addressed, so a resubmission that races a surviving first
// attempt joins the same job (singleflight) instead of duplicating
// work.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request, including
	// the first (<= 1 disables retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (0 = 100ms); attempt k
	// waits about BaseDelay * 2^(k-1), half-jittered.
	BaseDelay time.Duration
	// MaxDelay caps one backoff step (0 = 5s). A server Retry-After
	// hint overrides the computed delay when it is longer, and is
	// itself capped at 2*MaxDelay.
	MaxDelay time.Duration
	// Seed makes the jitter deterministic for tests (0 = 1).
	Seed uint64
}

func (p RetryPolicy) fill() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Client talks to one fsmemd instance.
type Client struct {
	base string
	hc   *http.Client

	retry RetryPolicy

	jitterMu sync.Mutex
	jitter   *trace.RNG

	retries   atomic.Int64
	retryWait atomic.Int64 // nanoseconds spent backing off
}

// New builds a client for a base URL like "http://127.0.0.1:8377".
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// EnableRetry turns on automatic retry with exponential backoff and
// jitter for every non-streaming request.
func (c *Client) EnableRetry(p RetryPolicy) {
	c.retry = p.fill()
	c.jitter = trace.NewRNG(c.retry.Seed)
}

// RetryStats reports how many requests were retried and the total time
// spent waiting between attempts (cmd/fsload surfaces both in its
// report).
func (c *Client) RetryStats() (retries int64, waited time.Duration) {
	return c.retries.Load(), time.Duration(c.retryWait.Load())
}

// retryable reports whether an attempt's failure is transient: a
// connection-level error (daemon down or restarting — never a context
// cancellation) or explicit server backpressure.
func retryable(ctx context.Context, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	ae, ok := err.(*APIError)
	if !ok {
		return true // transport error: connection refused/reset, EOF, ...
	}
	return ae.StatusCode == http.StatusTooManyRequests || ae.StatusCode == http.StatusServiceUnavailable
}

// backoff computes the wait before attempt+1, honoring the server's
// Retry-After hint when it asks for more patience than the local
// exponential schedule.
func (c *Client) backoff(attempt int, err error) time.Duration {
	d := c.retry.BaseDelay << (attempt - 1)
	if d > c.retry.MaxDelay || d <= 0 { // <= 0: shift overflow
		d = c.retry.MaxDelay
	}
	// Half-jitter: [d/2, d), so synchronized clients spread out while
	// the schedule stays roughly exponential.
	c.jitterMu.Lock()
	d = d/2 + time.Duration(c.jitter.Float64()*float64(d/2))
	c.jitterMu.Unlock()
	if ae, ok := err.(*APIError); ok && ae.RetryAfter > d {
		d = ae.RetryAfter
		if cap := 2 * c.retry.MaxDelay; d > cap {
			d = cap
		}
	}
	return d
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = c.doOnce(ctx, method, path, body, out)
		if err == nil || attempt >= attempts || !retryable(ctx, err) {
			return err
		}
		wait := c.backoff(attempt, err)
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return err
		case <-t.C:
		}
		c.retries.Add(1)
		c.retryWait.Add(int64(wait))
	}
}

func (c *Client) doOnce(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return decodeError(resp.StatusCode, data, resp.Header)
	}
	if out != nil {
		if raw, ok := out.(*[]byte); ok {
			*raw = data
			return nil
		}
		return json.Unmarshal(data, out)
	}
	return nil
}

func decodeError(status int, data []byte, hdr http.Header) error {
	ae := &APIError{StatusCode: status, Message: strings.TrimSpace(string(data))}
	var body server.ErrorBody
	if json.Unmarshal(data, &body) == nil && body.Error != "" {
		ae.Code = body.Code
		ae.Message = body.Error
	}
	if hdr != nil {
		if secs, err := strconv.Atoi(hdr.Get("Retry-After")); err == nil && secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Ready checks /readyz (an error with code "draining" means the server
// is shutting down).
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil)
}

// Submit posts a job and returns its status document.
func (c *Client) Submit(ctx context.Context, req server.JobRequest) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st)
	return st, err
}

// Job fetches a job's current status.
func (c *Client) Job(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Cancel cancels a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait polls until the job reaches a terminal state (or ctx expires)
// and returns the final status.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (server.JobStatus, error) {
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Result fetches a finished job's raw result document.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	var raw []byte
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &raw)
	return raw, err
}

// ResultJSON fetches and decodes a finished job's result document.
func (c *Client) ResultJSON(ctx context.Context, id string, out any) error {
	raw, err := c.Result(ctx, id)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, out)
}

// Trace streams a finished observed job's command trace ("jsonl" or
// "chrome") into w.
func (c *Client) Trace(ctx context.Context, id, format string, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+id+"/trace?format="+format, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(resp.Body)
		return decodeError(resp.StatusCode, data, resp.Header)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// Events streams the job's SSE progress events, invoking fn per event,
// until the job reaches a terminal state, fn returns false, or ctx is
// done. It replays the job's full history from the first event.
func (c *Client) Events(ctx context.Context, id string, fn func(server.JobEvent) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(resp.Body)
		return decodeError(resp.StatusCode, data, resp.Header)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev server.JobEvent
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			return fmt.Errorf("fsmemd: decoding event: %w", err)
		}
		if !fn(ev) {
			return nil
		}
		if ev.State.Terminal() {
			return nil
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

// Metrics fetches the /metrics exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	var raw []byte
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &raw)
	return string(raw), err
}

// Cluster fetches a coordinator's fleet document (GET /v1/cluster).
// Against a plain single-node daemon it returns a not_found APIError.
func (c *Client) Cluster(ctx context.Context) (server.ClusterStatus, error) {
	var st server.ClusterStatus
	err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, &st)
	return st, err
}

// Register joins a worker (by its advertised base URL) to the
// coordinator's fleet (POST /v1/cluster/register). fsmemd -join calls
// this on startup; it is idempotent.
func (c *Client) Register(ctx context.Context, workerAddr string) error {
	return c.do(ctx, http.MethodPost, "/v1/cluster/register",
		server.RegisterRequest{Addr: workerAddr}, nil)
}
