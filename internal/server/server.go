package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"fsmem/internal/fsmerr"
	"fsmem/internal/obs"
)

// Options configures the daemon.
type Options struct {
	// Addr is the listen address for Serve ("" = ":8377").
	Addr string
	// Workers bounds concurrent job executions (0 = GOMAXPROCS).
	Workers int
	// GridShards bounds the worker pool each grid-shaped job (figures,
	// chaos, leakage) shards its simulations across (0 = Workers).
	GridShards int
	// QueueDepth bounds each priority queue (0 = 64); a full queue
	// rejects submissions with 429 queue_full.
	QueueDepth int
	// CacheEntries bounds the LRU result cache (0 = 256).
	CacheEntries int
	// RatePerSec and Burst shape the submission token bucket
	// (0 = 50/s, burst = rate).
	RatePerSec float64
	Burst      float64
	// RequestTimeout bounds non-streaming request handling (0 = 30s).
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful drain: in-flight and queued jobs get
	// this long to finish before they are canceled (0 = 60s).
	DrainTimeout time.Duration
	// DataDir enables crash-safe durability: accepted jobs are journaled
	// (write-ahead) under it and finished results are persisted to a
	// content-addressed disk store, so a restarted daemon re-serves done
	// work byte-identically and re-enqueues interrupted work. Empty
	// keeps the daemon fully in-memory (the pre-durability behavior).
	DataDir string
	// QuarantineAfter is how many executor crashes (panics, or being
	// mid-run when the process dies) park a job as "quarantined" instead
	// of re-executing it (0 = 3).
	QuarantineAfter int
	// WorkerName is this daemon's identity, stamped on every job status
	// document (fsmemd -advertise sets it for cluster workers so
	// per-worker attribution survives end to end). Empty leaves statuses
	// unattributed.
	WorkerName string
	// now overrides the clock for the rate limiter and Retry-After
	// computation (tests; nil = time.Now).
	now func() time.Time
}

func (o *Options) fill() {
	if o.Addr == "" {
		o.Addr = ":8377"
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 60 * time.Second
	}
}

// Server is the daemon: job manager, result cache, rate limiter, and
// the HTTP API over them.
type Server struct {
	opts    Options
	manager *Manager
	bucket  *tokenBucket
	mux     *http.ServeMux

	registry *obs.Registry

	httpRequests atomic.Int64
	rateLimited  atomic.Int64
}

// New assembles a Server (the executor pool starts immediately; use
// Drain to stop it). The returned server's Handler can be mounted on
// any listener — the tests use httptest. With Options.DataDir set, New
// first recovers journaled state from a previous process: it only
// errors when that durability layer cannot be opened.
func New(o Options) (*Server, error) {
	o.fill()
	m, err := newManager(o)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:    o,
		manager: m,
		bucket:  newTokenBucket(o.RatePerSec, o.Burst, o.now),
	}
	s.buildMetrics()
	s.buildRoutes()
	return s, nil
}

// Manager exposes the job manager (tests and fsmem.Serve use it).
func (s *Server) Manager() *Manager { return s.manager }

// buildMetrics registers the server counters alongside the obs
// conventions: dotted names, sanitized at exposition time. Sources read
// atomics, so the per-scrape snapshot is safe against concurrent
// request handling.
func (s *Server) buildMetrics() {
	r := obs.NewRegistry()
	r.Source("fsmemd", obs.SourceFunc(func(emit func(string, float64)) {
		m := s.manager
		emit("jobs.submitted", float64(m.submitted.Load()))
		emit("jobs.executed", float64(m.executed.Load()))
		emit("jobs.completed", float64(m.completed.Load()))
		emit("jobs.failed", float64(m.failed.Load()))
		emit("jobs.canceled", float64(m.canceled.Load()))
		emit("jobs.in_flight", float64(m.inFlight.Load()))
		emit("queue.depth", float64(m.QueueDepth()))
		entries, hits, misses := m.cache.stats()
		emit("cache.entries", float64(entries))
		emit("cache.hits", float64(hits))
		emit("cache.misses", float64(misses))
		ratio := 0.0
		if hits+misses > 0 {
			ratio = float64(hits) / float64(hits+misses)
		}
		emit("cache.hit_ratio", ratio)
		emit("jobs.quarantined", float64(m.quarantined.Load()))
		emit("recovery.requeued", float64(m.recoveredRequeued.Load()))
		emit("recovery.served_from_store", float64(m.recoveredServed.Load()))
		emit("recovery.quarantined", float64(m.recoveredQuarantined.Load()))
		emit("journal.appends", float64(m.journal.appendCount()))
		emit("journal.corrupt_skipped", float64(m.journalSkipped.Load()))
		sEntries, sHits, sMisses, sCorrupt, sWrites := m.store.Stats()
		emit("store.entries", float64(sEntries))
		emit("store.hits", float64(sHits))
		emit("store.misses", float64(sMisses))
		emit("store.corrupt", float64(sCorrupt))
		emit("store.writes", float64(sWrites))
		emit("store.errors", float64(m.storeErrors.Load()))
		emit("http.requests", float64(s.httpRequests.Load()))
		emit("http.rate_limited", float64(s.rateLimited.Load()))
		draining := 0.0
		if m.Draining() {
			draining = 1
		}
		emit("draining", draining)
	}))
	r.Source("fsmemd.audit", &s.manager.auditMetrics)
	s.registry = r
}

func (s *Server) buildRoutes() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	timeout := func(h http.HandlerFunc) http.Handler {
		return http.TimeoutHandler(h, s.opts.RequestTimeout, "request timed out")
	}
	mux.Handle("POST /v1/jobs", timeout(s.handleSubmit))
	mux.Handle("GET /v1/jobs/{id}", timeout(s.handleStatus))
	mux.Handle("GET /v1/jobs/{id}/result", timeout(s.handleResult))
	mux.Handle("GET /v1/jobs/{id}/trace", timeout(s.handleTrace))
	mux.Handle("DELETE /v1/jobs/{id}", timeout(s.handleCancel))
	// SSE must flush incrementally; TimeoutHandler would buffer it.
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux = mux
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.httpRequests.Add(1)
		s.mux.ServeHTTP(w, r)
	})
}

// Drain gracefully stops the job layer: new submissions 503, queued
// and in-flight jobs finish (bounded by DrainTimeout), then workers
// exit.
func (s *Server) Drain(ctx context.Context) error {
	dctx, cancel := context.WithTimeout(ctx, s.opts.DrainTimeout)
	defer cancel()
	return s.manager.Drain(dctx)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, ec string, format string, args ...any) {
	writeJSON(w, code, ErrorBody{Error: fmt.Sprintf(format, args...), Code: ec})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.manager.Draining() {
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	obs.WritePrometheus(w, s.registry.Snapshot())
}

// queueRetryAfter estimates how long a rejected client should back off
// before the queue has drained enough to accept it: the current depth
// spread across the worker pool, clamped to [1s, 30s]. It is a load
// signal, not a promise — the client's jittered backoff rides on it.
func (s *Server) queueRetryAfter() time.Duration {
	d := time.Duration(1+s.manager.QueueDepth()/s.manager.workers) * time.Second
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// setRetryAfter stamps the Retry-After header in whole seconds.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.bucket.allow() {
		s.rateLimited.Add(1)
		setRetryAfter(w, s.bucket.retryAfter())
		writeError(w, http.StatusTooManyRequests, "rate_limited", "submission rate limit exceeded")
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding job request: %v", err)
		return
	}
	job, created, err := s.manager.Submit(req)
	switch {
	case errors.Is(err, errDraining):
		setRetryAfter(w, 2*time.Second) // a replacement process may be recovering
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	case errors.Is(err, errQueueFull):
		setRetryAfter(w, s.queueRetryAfter())
		writeError(w, http.StatusTooManyRequests, "queue_full", "job queue is full")
		return
	case fsmerr.CodeOf(err) == fsmerr.CodeStorage:
		writeError(w, http.StatusInternalServerError, string(fsmerr.CodeStorage), "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, string(fsmerr.CodeOf(err)), "%v", err)
		return
	}
	status := job.Status()
	code := http.StatusAccepted
	if status.State.Terminal() || !created {
		code = http.StatusOK
	}
	writeJSON(w, code, status)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.manager.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "unknown job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	status := j.Status()
	entry, done := j.Result()
	if !done {
		if status.State == StateFailed || status.State == StateCanceled {
			writeError(w, http.StatusConflict, status.ErrorCode, "job %s: %s", status.State, status.Error)
			return
		}
		writeError(w, http.StatusConflict, "not_done", "job is %s; poll status or stream /events", status.State)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(entry.result)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	entry, done := j.Result()
	if !done {
		writeError(w, http.StatusConflict, "not_done", "job has not completed")
		return
	}
	if entry.trace == nil {
		writeError(w, http.StatusNotFound, "no_trace", "job was not observed: submit with \"observe\": true")
		return
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "", "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		obs.WriteJSONL(w, entry.trace)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		obs.WriteChrome(w, entry.trace)
	default:
		writeError(w, http.StatusBadRequest, "bad_request", "unknown trace format %q (jsonl or chrome)", format)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	s.manager.Cancel(j.ID)
	writeJSON(w, http.StatusOK, j.Status())
}

// handleEvents streams the job's progress log as server-sent events,
// replaying history first, until the job reaches a terminal state or
// the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusNotImplemented, "no_stream", "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for cursor := 0; ; cursor++ {
		ev, ok := j.events.next(r.Context(), cursor)
		if !ok {
			return
		}
		data, err := json.Marshal(ev)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Phase, data)
		flusher.Flush()
	}
}

// Serve listens on o.Addr and runs the daemon until ctx is canceled,
// then drains gracefully: readiness flips to 503, in-flight and queued
// jobs finish (bounded by DrainTimeout), and the HTTP server shuts
// down. A clean drain returns nil.
func Serve(ctx context.Context, o Options) error {
	s, err := New(o)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return err
	}
	return s.ServeListener(ctx, ln)
}

// ServeListener is Serve on an existing listener (ownership transfers;
// the listener is closed on return).
func (s *Server) ServeListener(ctx context.Context, ln net.Listener) error {
	httpSrv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return context.WithoutCancel(ctx) },
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	// Drain first — a completed submission is never dropped — then stop
	// the HTTP listener, giving streaming clients a moment to read
	// their terminal events.
	drainErr := s.Drain(context.Background())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		httpSrv.Close()
		if drainErr == nil {
			drainErr = err
		}
	}
	<-serveErr // Serve has returned http.ErrServerClosed
	return drainErr
}
