package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fsmem"
	"fsmem/internal/config"
	"fsmem/internal/server"
	"fsmem/internal/server/client"
)

// startServer runs the daemon on an httptest listener and returns a
// typed client for it. The manager is drained at test end.
func startServer(t *testing.T, o server.Options) (*client.Client, *server.Server) {
	t.Helper()
	if o.RatePerSec == 0 {
		o.RatePerSec = 100_000 // tests that don't exercise limiting never hit it
	}
	s, err := server.New(o)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Drain(context.Background())
		ts.Close()
	})
	return client.New(ts.URL, ts.Client()), s
}

func simReq(seed uint64, reads int64) server.JobRequest {
	e := config.Default()
	e.Workload = "mcf"
	e.Scheduler = "fs_bp"
	e.Cores = 2
	e.Reads = reads
	e.Seed = seed
	return server.JobRequest{Kind: server.KindSimulate, Simulate: &e}
}

// TestAPIResultMatchesDirectSimulate pins the core contract: the result
// document served for a job is byte-identical to what a direct
// fsmem.Simulate caller computes from the same config.
func TestAPIResultMatchesDirectSimulate(t *testing.T) {
	cl, _ := startServer(t, server.Options{Workers: 2})
	ctx := context.Background()

	req := simReq(7, 400)
	st, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st, err = cl.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("job state %s (%s)", st.State, st.Error)
	}
	got, err := cl.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	cfg, err := req.Simulate.ToSimConfig()
	if err != nil {
		t.Fatal(err)
	}
	res, err := fsmem.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(server.Summarize(cfg, res))
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(got, want) {
		t.Fatalf("server result differs from direct simulation:\nserver: %s\ndirect: %s", got, want)
	}

	// Resubmission is answered from cache with the same bytes.
	st2, err := cl.Submit(ctx, simReq(7, 400))
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID {
		t.Fatalf("identical request got a new job: %s vs %s", st2.ID, st.ID)
	}
	if !st2.State.Terminal() || !st2.CacheHit {
		t.Fatalf("resubmission not a cache hit: %+v", st2)
	}
	again, err := cl.Result(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatal("cached result differs from the original bytes")
	}
}

// TestAPIConcurrentDedup pins singleflight end to end: N concurrent
// identical POSTs produce exactly one simulation (read back from
// /metrics) and byte-identical results.
func TestAPIConcurrentDedup(t *testing.T) {
	cl, _ := startServer(t, server.Options{Workers: 4})
	ctx := context.Background()

	const n = 12
	results := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := cl.Submit(ctx, simReq(11, 300))
			if err == nil && !st.State.Terminal() {
				st, err = cl.Wait(ctx, st.ID, 5*time.Millisecond)
			}
			if err == nil {
				results[i], err = cl.Result(ctx, st.ID)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("client %d got different bytes", i)
		}
	}
	metrics, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "fsmemd_jobs_executed 1\n") {
		t.Fatalf("want exactly one executed simulation, metrics:\n%s", metrics)
	}
}

// TestAPIEventsAndTrace exercises the SSE stream and the trace
// re-export for an observed job.
func TestAPIEventsAndTrace(t *testing.T) {
	cl, _ := startServer(t, server.Options{Workers: 2})
	ctx := context.Background()

	req := simReq(13, 300)
	req.Observe = true
	st, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	var phases []string
	err = cl.Events(ctx, st.ID, func(ev server.JobEvent) bool {
		phases = append(phases, ev.Phase)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) == 0 || phases[len(phases)-1] != string(server.StateDone) {
		t.Fatalf("event phases %v must end in done", phases)
	}
	for i, want := range []string{"queued", "running"} {
		if i < len(phases)-1 && phases[i] != want {
			t.Fatalf("event phases %v, want prefix [queued running ...]", phases)
		}
	}

	var jsonl bytes.Buffer
	if err := cl.Trace(ctx, st.ID, "jsonl", &jsonl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) == 0 || len(lines[0]) == 0 {
		t.Fatal("empty JSONL trace for an observed job")
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("JSONL line 0 is not JSON: %v", err)
	}
	var chrome bytes.Buffer
	if err := cl.Trace(ctx, st.ID, "chrome", &chrome); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(chrome.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}

	// An unobserved job has no trace: 404 no_trace.
	st2, err := cl.Submit(ctx, simReq(14, 300))
	if err != nil {
		t.Fatal(err)
	}
	if _, err = cl.Wait(ctx, st2.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	err = cl.Trace(ctx, st2.ID, "jsonl", &bytes.Buffer{})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound || ae.Code != "no_trace" {
		t.Fatalf("trace of unobserved job: %v, want 404 no_trace", err)
	}
}

func TestAPIErrors(t *testing.T) {
	cl, _ := startServer(t, server.Options{Workers: 1})
	ctx := context.Background()

	var ae *client.APIError
	_, err := cl.Job(ctx, "jdeadbeef")
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %v, want 404", err)
	}
	_, err = cl.Submit(ctx, server.JobRequest{Kind: "nope"})
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind: %v, want 400", err)
	}
	bad := simReq(1, 100)
	bad.Simulate.Scheduler = "nope"
	_, err = cl.Submit(ctx, bad)
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad scheduler: %v, want 400", err)
	}
}

func TestAPIRateLimit(t *testing.T) {
	cl, _ := startServer(t, server.Options{Workers: 1, RatePerSec: 0.001, Burst: 1})
	ctx := context.Background()
	if _, err := cl.Submit(ctx, simReq(1, 100)); err != nil {
		t.Fatalf("first submission should spend the burst token: %v", err)
	}
	_, err := cl.Submit(ctx, simReq(2, 100))
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusTooManyRequests || ae.Code != "rate_limited" {
		t.Fatalf("over-rate submission: %v, want 429 rate_limited", err)
	}
}

// TestAPIDrain pins the graceful-drain contract over HTTP: readiness
// flips to 503, new submissions get 503 draining, and the already
// accepted job still completes with its result available.
func TestAPIDrain(t *testing.T) {
	cl, s := startServer(t, server.Options{Workers: 1})
	ctx := context.Background()

	st, err := cl.Submit(ctx, simReq(17, 5_000))
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(ctx) }()

	// Draining is flagged synchronously at drain start; readiness must
	// flip even while the accepted job is still running.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := cl.Ready(ctx); err != nil {
			var ae *client.APIError
			if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("readyz during drain: %v, want 503", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503 during drain")
		}
		time.Sleep(time.Millisecond)
	}
	_, err = cl.Submit(ctx, simReq(18, 100))
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable || ae.Code != "draining" {
		t.Fatalf("submit during drain: %v, want 503 draining", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	final, err := cl.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.StateDone {
		t.Fatalf("accepted job was dropped by drain: %s (%s)", final.State, final.Error)
	}
	if _, err := cl.Result(ctx, st.ID); err != nil {
		t.Fatalf("result after drain: %v", err)
	}
	if err := cl.Health(ctx); err != nil {
		t.Fatalf("healthz after drain: %v", err)
	}
}

// TestAPIFiguresJob runs a tiny figures job end to end: progress events
// stream from the runner's per-cell callbacks and the result decodes.
func TestAPIFiguresJob(t *testing.T) {
	if testing.Short() {
		t.Skip("figures grid is slow")
	}
	cl, _ := startServer(t, server.Options{Workers: 2, GridShards: 2})
	ctx := context.Background()
	st, err := cl.Submit(ctx, server.JobRequest{
		Kind:    server.KindFigures,
		Figures: &server.FiguresRequest{Figures: []string{"3"}, Cores: 2, Reads: 400, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	progress := 0
	err = cl.Events(ctx, st.ID, func(ev server.JobEvent) bool {
		if ev.Phase == "progress" {
			progress++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if progress == 0 {
		t.Fatal("figures job streamed no per-cell progress events")
	}
	var out server.FiguresResult
	if err := cl.ResultJSON(ctx, st.ID, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Tables) != 1 || len(out.Errors) != 0 {
		t.Fatalf("figures result: %d tables, errors %v", len(out.Tables), out.Errors)
	}
}

// TestAPIAuditJob pins the audit integration's determinism contract end
// to end: the certificate the daemon serves is byte-identical to what a
// direct fsmem.Audit caller computes, resubmission is a content-key
// cache hit, and a fault-injected audit FAILS through the API too.
func TestAPIAuditJob(t *testing.T) {
	cl, _ := startServer(t, server.Options{Workers: 2, GridShards: 4})
	ctx := context.Background()

	req := server.JobRequest{
		Kind: server.KindAudit,
		Audit: &server.AuditRequest{
			Scheduler:    "fs_np",
			Cores:        4,
			Bits:         8,
			Seeds:        2,
			Permutations: 49,
			Rounds:       1,
			Seed:         42,
		},
	}
	st, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st, err = cl.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("audit job state %s (%s)", st.State, st.Error)
	}
	got, err := cl.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	cert, err := fsmem.Audit(ctx, fsmem.FSNoPart, fsmem.AuditOptions{
		Domains: 4, Bits: 8, Seeds: 2, Permutations: 49, Rounds: 1, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fsmem.MarshalLeakageCertificate(cert)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("daemon certificate differs from direct audit:\nserver: %s\ndirect: %s", got, want)
	}
	if cert.Verdict != fsmem.AuditSecure {
		t.Fatalf("fs_np audit verdict %s, want SECURE", cert.Verdict)
	}

	// Identical request (with defaults spelled differently) hits the cache.
	st2, err := cl.Submit(ctx, server.JobRequest{
		Kind:  server.KindAudit,
		Audit: &server.AuditRequest{Scheduler: "fs_np", Bits: 8, Seeds: 2, Permutations: 49, Rounds: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID {
		t.Fatalf("equivalent audit request got a new job: %s vs %s", st2.ID, st.ID)
	}
	if !st2.State.Terminal() || !st2.CacheHit {
		t.Fatalf("resubmission not a cache hit: %+v", st2)
	}

	// Anti-vacuity through the API: a fault-injected FS audit must FAIL.
	st3, err := cl.Submit(ctx, server.JobRequest{
		Kind: server.KindAudit,
		Audit: &server.AuditRequest{
			Scheduler: "fs_np", Bits: 8, Seeds: 2, Permutations: 49, Rounds: 1,
			Fault: "derate-trcd",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st3, err = cl.Wait(ctx, st3.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var faulted fsmem.LeakageCertificate
	if err := cl.ResultJSON(ctx, st3.ID, &faulted); err != nil {
		t.Fatal(err)
	}
	if faulted.Verdict != fsmem.AuditFail {
		t.Fatalf("fault-injected audit verdict %s, want FAIL", faulted.Verdict)
	}
	if faulted.MonitorViolations == 0 {
		t.Fatal("fault-injected audit reported zero monitor violations")
	}

	// The audit job surfaced its engine counters on /metrics.
	metrics, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "fsmemd_audit_attacks_evaluated") {
		t.Fatalf("audit metrics missing from /metrics:\n%s", metrics)
	}
}
