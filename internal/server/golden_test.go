package server

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"testing"

	"fsmem/internal/sim"
	"fsmem/internal/workload"
)

// TestSingleChannelOutputPinned pins the fabric refactor's first
// correctness anchor: with one channel (the default), the canonical
// result document is byte-identical to the pre-fabric simulator's. The
// hashes were captured from the tree immediately before the fabric
// landed; a change here means single-channel behavior drifted.
func TestSingleChannelOutputPinned(t *testing.T) {
	cases := []struct {
		name  string
		sched sim.SchedulerKind
		wl    string
		cores int
		reads int64
		want  string
	}{
		{"fsrp-mcf4", sim.FSRankPart, "mcf", 4, 2000,
			"9bbc3b09806364a472e58f1b34fb5b3bbc0a23a56b9685e17dd6cab5dbfb2e80"},
		{"baseline-milc4", sim.Baseline, "milc", 4, 2000,
			"d5236e0660ce3512603c2277bcfe47fecc4766fef21ba83c24a5c2896a0571fe"},
		{"fsbp-mix8", sim.FSBankPart, "milc", 8, 1500,
			"0f053398ce131f6912093005886003e8646c8bdf63c2b41f61174b74c6a30041"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mix, err := workload.Rate(c.wl, c.cores)
			if err != nil {
				t.Fatal(err)
			}
			cfg := sim.DefaultConfig(mix, c.sched)
			cfg.TargetReads = c.reads
			res, err := sim.Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			doc, err := json.Marshal(Summarize(cfg, res))
			if err != nil {
				t.Fatal(err)
			}
			if got := fmt.Sprintf("%x", sha256.Sum256(doc)); got != c.want {
				t.Errorf("single-channel summary drifted from the pre-fabric simulator:\n got %s\nwant %s", got, c.want)
			}
		})
	}
}
