package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"fsmem/internal/fsmerr"
)

// Store is the disk-backed content-addressed result store layered under
// the in-memory LRU: every finished job's canonical result document is
// written here before the job is journaled done, so a restarted daemon
// re-serves previously computed results byte-identically without
// re-simulating.
//
// Each entry is one file named by the SHA-256 of the content key. The
// file carries a JSON header line (key, payload length, payload SHA-256)
// followed by the raw result bytes. Writes are atomic (temp file in the
// same directory + rename) and fsynced; reads verify the embedded
// checksum and length, and a corrupt entry is deleted on sight so the
// next submission transparently re-simulates (sound because simulation
// output is byte-deterministic).
//
// Store is exported so the root-package benchmarks can pin the
// read-verify path (BenchmarkStoreReadVerify); traces of observed jobs
// are not persisted — only the result document is.
type Store struct {
	dir string

	// disabled drops writes; the crash tests use it to freeze on-disk
	// state the way a SIGKILL would.
	disabled atomic.Bool

	mu      sync.Mutex // serializes writers per store (renames are cheap)
	entries atomic.Int64

	hits, misses, corrupt, writes atomic.Int64
}

// storeHeader is the first line of every entry file.
type storeHeader struct {
	Key    string `json:"key"`
	Len    int    `json:"len"`
	SHA256 string `json:"sha256"`
}

// OpenStore opens (creating if needed) a result store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fsmerr.Wrap(fsmerr.CodeStorage, "server.OpenStore", err)
	}
	s := &Store{dir: dir}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fsmerr.Wrap(fsmerr.CodeStorage, "server.OpenStore", err)
	}
	n := 0
	for _, e := range names {
		if !e.IsDir() && strings.HasSuffix(e.Name(), storeExt) {
			n++
		}
	}
	s.entries.Store(int64(n))
	return s, nil
}

const storeExt = ".res"

// Path returns the entry file path for a content key (the disk-fault
// injector corrupts entries through it).
func (s *Store) Path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+storeExt)
}

// Put atomically persists one result document under its content key.
// Rewriting an existing key is fine (deterministic replay produces the
// same bytes, so the result is unchanged either way).
func (s *Store) Put(key string, result []byte) error {
	if s == nil || s.disabled.Load() {
		return nil
	}
	sum := sha256.Sum256(result)
	hdr, err := json.Marshal(storeHeader{Key: key, Len: len(result), SHA256: hex.EncodeToString(sum[:])})
	if err != nil {
		return fsmerr.Wrap(fsmerr.CodeStorage, "server.Store.Put", err)
	}
	path := s.Path(key)

	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return fsmerr.Wrap(fsmerr.CodeStorage, "server.Store.Put", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	_, err = tmp.Write(append(append(hdr, '\n'), result...))
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fsmerr.Wrap(fsmerr.CodeStorage, "server.Store.Put", err)
	}
	_, statErr := os.Stat(path)
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fsmerr.Wrap(fsmerr.CodeStorage, "server.Store.Put", err)
	}
	syncDir(s.dir)
	s.writes.Add(1)
	if statErr != nil { // the key was not on disk before this rename
		s.entries.Add(1)
	}
	return nil
}

// Get reads and verifies the entry for key. A missing entry is a plain
// miss (nil, false, nil). A corrupt entry — unparsable header, length
// mismatch, or checksum mismatch — is counted, deleted, and reported as
// a miss with a CodeStorage error describing the corruption, so the
// caller can log it and transparently re-simulate.
func (s *Store) Get(key string) ([]byte, bool, error) {
	if s == nil {
		return nil, false, nil
	}
	data, err := os.ReadFile(s.Path(key))
	if err != nil {
		s.misses.Add(1)
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fsmerr.Wrap(fsmerr.CodeStorage, "server.Store.Get", err)
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, false, s.quarantineCorrupt(key, "no header line")
	}
	var hdr storeHeader
	if err := json.Unmarshal(data[:nl], &hdr); err != nil {
		return nil, false, s.quarantineCorrupt(key, "unparsable header: %v", err)
	}
	payload := data[nl+1:]
	if hdr.Key != key {
		return nil, false, s.quarantineCorrupt(key, "header key %q does not match", hdr.Key)
	}
	if len(payload) != hdr.Len {
		return nil, false, s.quarantineCorrupt(key, "payload is %d bytes, header says %d", len(payload), hdr.Len)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != hdr.SHA256 {
		return nil, false, s.quarantineCorrupt(key, "payload checksum mismatch")
	}
	s.hits.Add(1)
	return payload, true, nil
}

// quarantineCorrupt deletes a corrupt entry (the content is
// reproducible, so deletion is always safe) and reports it.
func (s *Store) quarantineCorrupt(key, format string, args ...any) error {
	s.corrupt.Add(1)
	s.misses.Add(1)
	if os.Remove(s.Path(key)) == nil {
		s.entries.Add(-1)
	}
	return fsmerr.New(fsmerr.CodeStorage, "server.Store.Get",
		"corrupt entry for key %q deleted: %s", key, fmt.Sprintf(format, args...))
}

// Stats reads the store counters for the metrics endpoint.
func (s *Store) Stats() (entries, hits, misses, corrupt, writes int64) {
	if s == nil {
		return 0, 0, 0, 0, 0
	}
	return s.entries.Load(), s.hits.Load(), s.misses.Load(), s.corrupt.Load(), s.writes.Load()
}

// disable drops all subsequent writes (crash simulation for tests).
func (s *Store) disable() {
	if s != nil {
		s.disabled.Store(true)
	}
}

// syncDir best-effort fsyncs a directory so renames are durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
