package server

import (
	"context"
	"errors"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"fsmem/internal/audit"
	"fsmem/internal/fsmerr"
	"fsmem/internal/parallel"
)

// Job is one unit of daemon work. Identity is content-addressed: the
// ID hashes the request's canonical key, so identical requests share a
// Job (and therefore execute at most once while live — singleflight
// without a separate filling lock).
type Job struct {
	ID  string
	Key string
	Req JobRequest
	// worker is the owning daemon's WorkerName, stamped at creation.
	worker string

	events *eventLog
	done   chan struct{} // closed at any terminal state
	cancel context.CancelFunc

	// progress counters are written by pool workers mid-run.
	progressDone  atomic.Int64
	progressTotal atomic.Int64

	mu       sync.Mutex
	state    JobState
	cacheHit bool
	attempts int
	entry    *cacheEntry
	err      error
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobStatus{
		ID: j.ID, Kind: j.Req.Kind, State: j.state, Priority: j.Req.Priority,
		CacheHit: j.cacheHit,
		Worker:   j.worker,
		Attempts: j.attempts,
		Progress: Progress{Done: int(j.progressDone.Load()), Total: int(j.progressTotal.Load())},
	}
	if j.err != nil {
		s.Error = j.err.Error()
		s.ErrorCode = string(fsmerr.CodeOf(j.err))
	}
	return s
}

// Result returns the finished job's cached payload.
func (j *Job) Result() (*cacheEntry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.entry, j.entry != nil && j.state == StateDone
}

// Done exposes the terminal-state signal (closed when the job finishes,
// fails, or is canceled).
func (j *Job) Done() <-chan struct{} { return j.done }

// finish moves the job to a terminal state exactly once, publishing the
// closing event and releasing waiters.
func (j *Job) finish(s JobState, entry *cacheEntry, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = s
	j.entry = entry
	j.err = err
	j.mu.Unlock()
	ev := JobEvent{Phase: string(s), State: s, Done: int(j.progressDone.Load()), Total: int(j.progressTotal.Load())}
	if err != nil {
		ev.Error = err.Error()
	}
	j.events.publish(ev)
	j.events.close()
	close(j.done)
}

// Submission errors the HTTP layer maps onto status codes.
var (
	errQueueFull = errors.New("job queue full")
	errDraining  = errors.New("server is draining")
)

// Manager owns the job table, the bounded two-priority queue, and the
// executor pool. Execution itself funnels every job body through
// internal/parallel, which supplies panic isolation and cancellation
// semantics identical to the batch CLIs'.
//
// With a data directory configured, the manager is also the durability
// layer: accepted jobs are journaled before they become runnable,
// finished results are persisted to the content-addressed Store before
// the job is journaled done, and a fresh manager replays the journal —
// re-serving done work from the store, re-enqueueing interrupted work
// (sound, because re-execution is byte-identical), and quarantining
// jobs that keep crashing the executor.
type Manager struct {
	workers         int
	gridShards      int
	queueDepth      int // submission backpressure threshold
	quarantineAfter int
	name            string // Options.WorkerName, stamped on job statuses
	cache           *resultCache

	journal *journal
	store   *Store

	baseCtx    context.Context
	baseCancel context.CancelFunc

	high, normal chan *Job
	wg           sync.WaitGroup
	closeOnce    sync.Once

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job
	finished []string       // FIFO of terminal job IDs, for table eviction
	attempts map[string]int // executor-crash counters, by job ID

	// testRun, when set, replaces Manager.run inside the execution cell
	// (the quarantine tests use it to build deterministic poison jobs).
	testRun func(context.Context, *Job) (*cacheEntry, error)

	// counters for /metrics
	submitted, executed, completed, failed, canceled atomic.Int64
	inFlight, quarantined                            atomic.Int64
	recoveredRequeued, recoveredServed               atomic.Int64
	recoveredQuarantined, journalSkipped             atomic.Int64
	storeErrors                                      atomic.Int64
	// auditMetrics accumulates leakage-audit campaign counters across
	// every audit job this manager executes, exposed under
	// fsmemd.audit.* on /metrics.
	auditMetrics audit.Metrics
}

// maxFinished bounds how many terminal job records stay addressable;
// beyond it the oldest are evicted (their results usually remain in the
// LRU cache, so a resubmission is still a cache hit).
const maxFinished = 1024

// defaultQuarantineAfter is how many executor crashes park a job when
// Options.QuarantineAfter is unset.
const defaultQuarantineAfter = 3

// newManager builds the manager, recovers journaled state when a data
// directory is configured, and starts the executor pool.
func newManager(o Options) (*Manager, error) {
	workers := o.Workers
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	queueDepth := o.QueueDepth
	if queueDepth <= 0 {
		queueDepth = 64
	}
	gridShards := o.GridShards
	if gridShards <= 0 {
		gridShards = workers
	}
	quarantineAfter := o.QuarantineAfter
	if quarantineAfter <= 0 {
		quarantineAfter = defaultQuarantineAfter
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		workers:         workers,
		gridShards:      gridShards,
		queueDepth:      queueDepth,
		quarantineAfter: quarantineAfter,
		name:            o.WorkerName,
		cache:           newResultCache(o.CacheEntries),
		baseCtx:         ctx,
		baseCancel:      cancel,
		jobs:            map[string]*Job{},
		attempts:        map[string]int{},
	}

	var requeue []*Job
	if o.DataDir != "" {
		store, err := OpenStore(filepath.Join(o.DataDir, "store"))
		if err != nil {
			cancel()
			return nil, err
		}
		m.store = store
		requeue, err = m.recover(o.DataDir)
		if err != nil {
			cancel()
			return nil, err
		}
		jl, err := openJournal(o.DataDir)
		if err != nil {
			cancel()
			return nil, err
		}
		m.journal = jl
	}

	// The channels get headroom for recovered jobs so a restart never
	// rejects work the previous process had already accepted; Submit
	// enforces the policy depth itself.
	nHigh := 0
	for _, j := range requeue {
		if j.Req.Priority == PriorityHigh {
			nHigh++
		}
	}
	m.high = make(chan *Job, queueDepth+nHigh)
	m.normal = make(chan *Job, queueDepth+len(requeue)-nHigh)
	for _, j := range requeue {
		if j.Req.Priority == PriorityHigh {
			m.high <- j
		} else {
			m.normal <- j
		}
		j.events.publish(JobEvent{Phase: string(StateQueued), State: StateQueued})
	}

	m.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.worker()
	}
	return m, nil
}

// recover replays the journal, resolves every surviving job, compacts
// the journal, and returns the jobs to re-enqueue in accept order.
// Resolution per journaled job:
//
//   - canceled: forgotten.
//   - done / queued / running with a verified store entry: materialized
//     as a finished job, so a client that was polling the ID when the
//     process died keeps getting answers instead of a 404. For queued
//     and running jobs this covers a crash after the result was
//     persisted but before the done record.
//   - done without a store entry (deleted or corrupt): re-enqueued —
//     re-execution heals the store.
//   - running without a store entry: it may have killed the process, so
//     its crash counter increments before it is re-enqueued; at the
//     quarantine threshold it is parked instead, which is what breaks a
//     poison-job crash loop.
//   - queued without a store entry: re-enqueued unchanged.
//   - quarantined: re-materialized as quarantined.
//   - failed with a nonzero crash counter: the counter is preloaded so
//     resubmissions keep progressing toward quarantine.
func (m *Manager) recover(dataDir string) ([]*Job, error) {
	replayed, skipped, err := replayJournal(dataDir)
	if err != nil {
		return nil, err
	}
	m.journalSkipped.Store(int64(skipped))
	ordered := make([]*journaledJob, 0, len(replayed))
	for _, jj := range replayed {
		ordered = append(ordered, jj)
	}
	sort.Slice(ordered, func(i, k int) bool { return ordered[i].seq < ordered[k].seq })

	var requeue []*Job
	for _, jj := range ordered {
		switch jj.State {
		case StateCanceled:
			continue
		case StateFailed:
			if jj.Attempts > 0 {
				m.attempts[jj.ID] = jj.Attempts
			}
			continue
		case StateQuarantined:
			m.attempts[jj.ID] = jj.Attempts
			m.materializeQuarantined(jj.ID, jj.Key, jj.Req, jj.Attempts)
			m.recoveredQuarantined.Add(1)
			continue
		}
		// done, queued, or running: prefer the persisted result.
		result, ok, serr := m.store.Get(jj.Key)
		if serr != nil {
			m.storeErrors.Add(1) // corrupt entry deleted; re-run heals it
		}
		if ok {
			j := m.materializeDone(jj.ID, jj.Key, jj.Req, &cacheEntry{key: jj.Key, result: result})
			m.cache.put(j.entry)
			jj.State = StateDone // compaction drops it
			m.recoveredServed.Add(1)
			continue
		}
		switch jj.State {
		case StateRunning:
			jj.Attempts++ // it was live when the process died
			jj.State = StateQueued
		case StateDone:
			jj.State = StateQueued // store entry lost: re-run to heal
		}
		if jj.Attempts >= m.quarantineAfter {
			m.attempts[jj.ID] = jj.Attempts
			m.materializeQuarantined(jj.ID, jj.Key, jj.Req, jj.Attempts)
			jj.State = StateQuarantined
			m.recoveredQuarantined.Add(1)
			continue
		}
		if jj.Attempts > 0 {
			m.attempts[jj.ID] = jj.Attempts
		}
		j := &Job{ID: jj.ID, Key: jj.Key, Req: jj.Req, worker: m.name, events: newEventLog(), done: make(chan struct{})}
		j.state = StateQueued
		j.attempts = jj.Attempts
		m.jobs[jj.ID] = j
		requeue = append(requeue, j)
		m.recoveredRequeued.Add(1)
	}
	if err := compactJournal(dataDir, ordered); err != nil {
		return nil, err
	}
	return requeue, nil
}

// materializeDone installs a finished job served from persisted state.
// Callers hold no locks (construction time) or m.mu (Submit path).
func (m *Manager) materializeDone(id, key string, req JobRequest, entry *cacheEntry) *Job {
	j := &Job{ID: id, Key: key, Req: req, worker: m.name, events: newEventLog(), done: make(chan struct{})}
	j.cacheHit = true
	j.state = StateDone
	j.entry = entry
	j.progressDone.Store(1)
	j.progressTotal.Store(1)
	m.jobs[id] = j
	m.rememberFinishedLocked(id)
	j.events.publish(JobEvent{Phase: string(StateDone), State: StateDone, Done: 1, Total: 1})
	j.events.close()
	close(j.done)
	return j
}

// quarantineErr is the error a quarantined job reports.
func quarantineErr(attempts int) error {
	return fsmerr.New(fsmerr.CodePanic, "server.quarantine",
		"job quarantined after crashing the executor %d times; it will not be re-executed", attempts)
}

// materializeQuarantined installs a parked poison job.
func (m *Manager) materializeQuarantined(id, key string, req JobRequest, attempts int) *Job {
	j := &Job{ID: id, Key: key, Req: req, worker: m.name, events: newEventLog(), done: make(chan struct{})}
	j.state = StateQuarantined
	j.attempts = attempts
	j.err = quarantineErr(attempts)
	m.jobs[id] = j
	m.rememberFinishedLocked(id)
	m.quarantined.Add(1)
	j.events.publish(JobEvent{Phase: string(StateQuarantined), State: StateQuarantined, Error: j.err.Error()})
	j.events.close()
	close(j.done)
	return j
}

// QueueDepth reports queued (not yet running) jobs.
func (m *Manager) QueueDepth() int { return len(m.high) + len(m.normal) }

// Submit registers a job for the request. The returned bool is true
// when this call created a new job; false when the request joined an
// existing live job or was answered from cache. Submit never blocks on
// execution: a full queue fails fast with errQueueFull and a draining
// manager with errDraining. With durability enabled, the request is
// journaled (and fsynced) before it becomes runnable — the write-ahead
// step that makes accepted jobs survive a crash.
func (m *Manager) Submit(req JobRequest) (*Job, bool, error) {
	key, err := req.normalize()
	if err != nil {
		return nil, false, fsmerr.Wrap(fsmerr.CodeConfig, "server.Submit", err)
	}
	id := jobID(key)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, false, errDraining
	}
	m.submitted.Add(1)
	if j, ok := m.jobs[id]; ok {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		if !state.Terminal() {
			// Live job: join it (this is the singleflight).
			return j, false, nil
		}
		if state == StateQuarantined {
			// Poison stays parked; resubmission reports the verdict.
			return j, false, nil
		}
		// Terminal: a done job is re-answered from the cache below (a
		// fresh hit-materialized record replaces it); a failed or
		// canceled one does not poison the table — fall through and
		// retry with a fresh attempt.
	}

	if entry, ok := m.cache.get(key); ok {
		// Warm path: materialize a finished job straight from cache.
		return m.materializeDone(id, key, req, entry), true, nil
	}
	if result, ok, serr := m.store.Get(key); ok {
		// Disk path: the store outlives both the LRU and the process.
		entry := &cacheEntry{key: key, result: result}
		m.cache.put(entry)
		return m.materializeDone(id, key, req, entry), true, nil
	} else if serr != nil {
		m.storeErrors.Add(1) // corrupt entry deleted; re-simulate below
	}
	if m.attempts[id] >= m.quarantineAfter {
		// The poison verdict survives table eviction and restarts.
		m.journalAccept(id, key, req)
		m.journalState(id, StateQuarantined, m.attempts[id])
		return m.materializeQuarantined(id, key, req, m.attempts[id]), true, nil
	}

	queue := m.normal
	if req.Priority == PriorityHigh {
		queue = m.high
	}
	// All senders hold m.mu, so the depth check below cannot race with
	// another enqueue: once it passes, the send cannot block.
	if len(queue) >= m.queueDepth {
		m.submitted.Add(-1)
		return nil, false, errQueueFull
	}
	if err := m.journalAccept(id, key, req); err != nil {
		m.submitted.Add(-1)
		return nil, false, err
	}
	j := &Job{ID: id, Key: key, Req: req, worker: m.name, events: newEventLog(), done: make(chan struct{})}
	j.state = StateQueued
	j.attempts = m.attempts[id]
	queue <- j
	m.jobs[id] = j
	j.events.publish(JobEvent{Phase: string(StateQueued), State: StateQueued})
	return j, true, nil
}

// journalAccept appends the write-ahead accept record.
func (m *Manager) journalAccept(id, key string, req JobRequest) error {
	if err := m.journal.accept(id, key, req); err != nil {
		m.storeErrors.Add(1)
		return err
	}
	return nil
}

// journalState appends a lifecycle transition, counting (but not
// failing on) append errors: the job already ran, losing the record
// only costs a redundant re-execution after a crash.
func (m *Manager) journalState(id string, s JobState, attempts int) {
	if err := m.journal.state(id, s, attempts); err != nil {
		m.storeErrors.Add(1)
	}
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel cancels a queued or running job.
func (m *Manager) Cancel(id string) bool {
	j, ok := m.Get(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	cancel := j.cancel
	terminal := j.state.Terminal()
	j.mu.Unlock()
	if terminal {
		return true
	}
	if cancel != nil {
		cancel() // running: the simulation truncates at its next watchdog check
		return true
	}
	// Still queued: finish it now; the worker skips terminal jobs.
	m.canceled.Add(1)
	j.finish(StateCanceled, nil, fsmerr.New(fsmerr.CodeCanceled, "server.Cancel", "job canceled before start"))
	m.journalState(j.ID, StateCanceled, 0)
	m.noteFinished(j.ID)
	return true
}

func (m *Manager) rememberFinishedLocked(id string) {
	m.finished = append(m.finished, id)
	for len(m.finished) > maxFinished {
		evict := m.finished[0]
		m.finished = m.finished[1:]
		if j, ok := m.jobs[evict]; ok {
			j.mu.Lock()
			terminal := j.state.Terminal()
			j.mu.Unlock()
			if terminal {
				delete(m.jobs, evict)
			}
		}
	}
}

func (m *Manager) noteFinished(id string) {
	m.mu.Lock()
	m.rememberFinishedLocked(id)
	m.mu.Unlock()
}

// worker is one executor goroutine: it drains the high-priority queue
// first, then either queue, until both are closed by Drain.
func (m *Manager) worker() {
	defer m.wg.Done()
	high, normal := m.high, m.normal
	for high != nil || normal != nil {
		select {
		case j, ok := <-high:
			if !ok {
				high = nil
				continue
			}
			m.execute(j)
			continue
		default:
		}
		if high == nil {
			j, ok := <-normal
			if !ok {
				return
			}
			m.execute(j)
			continue
		}
		select {
		case j, ok := <-high:
			if !ok {
				high = nil
				continue
			}
			m.execute(j)
		case j, ok := <-normal:
			if !ok {
				normal = nil
				continue
			}
			m.execute(j)
		}
	}
}

// Draining reports whether the manager has begun shutting down.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Drain stops intake and waits for in-flight and queued jobs to finish.
// New submissions fail with errDraining immediately; queued jobs still
// execute (a completed submission is never dropped). If ctx expires
// first, remaining jobs are canceled and Drain waits for the workers to
// acknowledge before returning ctx's error.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.high)
		close(m.normal)
	}
	m.mu.Unlock()

	workersDone := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(workersDone)
	}()
	var err error
	select {
	case <-workersDone:
	case <-ctx.Done():
		m.baseCancel() // hard-cancel stragglers, then wait them out
		<-workersDone
		err = ctx.Err()
	}
	m.closeOnce.Do(func() { m.journal.close() })
	return err
}

// crash simulates a SIGKILL for the recovery tests: the durability
// layer stops writing (as if the process died), every running job is
// hard-canceled, and the workers exit. On-disk state is frozen exactly
// as a real crash would leave it; a fresh manager over the same data
// directory must recover from it.
func (m *Manager) crash() {
	m.journal.disable()
	m.store.disable()
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.high)
		close(m.normal)
	}
	m.mu.Unlock()
	m.baseCancel()
	m.wg.Wait()
	m.closeOnce.Do(func() { m.journal.close() })
}
