package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"fsmem/internal/fsmerr"
	"fsmem/internal/parallel"
)

// Job is one unit of daemon work. Identity is content-addressed: the
// ID hashes the request's canonical key, so identical requests share a
// Job (and therefore execute at most once while live — singleflight
// without a separate filling lock).
type Job struct {
	ID  string
	Key string
	Req JobRequest

	events *eventLog
	done   chan struct{} // closed at any terminal state
	cancel context.CancelFunc

	// progress counters are written by pool workers mid-run.
	progressDone  atomic.Int64
	progressTotal atomic.Int64

	mu       sync.Mutex
	state    JobState
	cacheHit bool
	entry    *cacheEntry
	err      error
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobStatus{
		ID: j.ID, Kind: j.Req.Kind, State: j.state, Priority: j.Req.Priority,
		CacheHit: j.cacheHit,
		Progress: Progress{Done: int(j.progressDone.Load()), Total: int(j.progressTotal.Load())},
	}
	if j.err != nil {
		s.Error = j.err.Error()
		s.ErrorCode = string(fsmerr.CodeOf(j.err))
	}
	return s
}

// Result returns the finished job's cached payload.
func (j *Job) Result() (*cacheEntry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.entry, j.entry != nil && j.state == StateDone
}

// Done exposes the terminal-state signal (closed when the job finishes,
// fails, or is canceled).
func (j *Job) Done() <-chan struct{} { return j.done }

func (j *Job) setState(s JobState) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// finish moves the job to a terminal state exactly once, publishing the
// closing event and releasing waiters.
func (j *Job) finish(s JobState, entry *cacheEntry, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = s
	j.entry = entry
	j.err = err
	j.mu.Unlock()
	ev := JobEvent{Phase: string(s), State: s, Done: int(j.progressDone.Load()), Total: int(j.progressTotal.Load())}
	if err != nil {
		ev.Error = err.Error()
	}
	j.events.publish(ev)
	j.events.close()
	close(j.done)
}

// Submission errors the HTTP layer maps onto status codes.
var (
	errQueueFull = errors.New("job queue full")
	errDraining  = errors.New("server is draining")
)

// Manager owns the job table, the bounded two-priority queue, and the
// executor pool. Execution itself funnels every job body through
// internal/parallel, which supplies panic isolation and cancellation
// semantics identical to the batch CLIs'.
type Manager struct {
	workers    int
	gridShards int
	cache      *resultCache

	baseCtx    context.Context
	baseCancel context.CancelFunc

	high, normal chan *Job
	wg           sync.WaitGroup

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job
	finished []string // FIFO of terminal job IDs, for table eviction

	// counters for /metrics
	submitted, executed, completed, failed, canceled atomic.Int64
	inFlight                                         atomic.Int64
}

// maxFinished bounds how many terminal job records stay addressable;
// beyond it the oldest are evicted (their results usually remain in the
// LRU cache, so a resubmission is still a cache hit).
const maxFinished = 1024

// newManager builds and starts the executor pool.
func newManager(workers, queueDepth, cacheEntries, gridShards int) *Manager {
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	if queueDepth <= 0 {
		queueDepth = 64
	}
	if gridShards <= 0 {
		gridShards = workers
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		workers:    workers,
		gridShards: gridShards,
		cache:      newResultCache(cacheEntries),
		baseCtx:    ctx,
		baseCancel: cancel,
		high:       make(chan *Job, queueDepth),
		normal:     make(chan *Job, queueDepth),
		jobs:       map[string]*Job{},
	}
	m.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.worker()
	}
	return m
}

// QueueDepth reports queued (not yet running) jobs.
func (m *Manager) QueueDepth() int { return len(m.high) + len(m.normal) }

// Submit registers a job for the request. The returned bool is true
// when this call created a new job; false when the request joined an
// existing live job or was answered from cache. Submit never blocks on
// execution: a full queue fails fast with errQueueFull and a draining
// manager with errDraining.
func (m *Manager) Submit(req JobRequest) (*Job, bool, error) {
	key, err := req.normalize()
	if err != nil {
		return nil, false, fsmerr.Wrap(fsmerr.CodeConfig, "server.Submit", err)
	}
	id := jobID(key)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, false, errDraining
	}
	m.submitted.Add(1)
	if j, ok := m.jobs[id]; ok {
		j.mu.Lock()
		terminal := j.state.Terminal()
		j.mu.Unlock()
		if !terminal {
			// Live job: join it (this is the singleflight).
			return j, false, nil
		}
		// Terminal: a done job is re-answered from the cache below (a
		// fresh hit-materialized record replaces it); a failed or
		// canceled one does not poison the table — fall through and
		// retry with a fresh attempt.
	}

	j := &Job{ID: id, Key: key, Req: req, events: newEventLog(), done: make(chan struct{})}
	if entry, ok := m.cache.get(key); ok {
		// Warm path: materialize a finished job straight from cache.
		j.cacheHit = true
		j.state = StateDone
		j.entry = entry
		j.progressDone.Store(1)
		j.progressTotal.Store(1)
		m.jobs[id] = j
		m.rememberFinishedLocked(id)
		j.events.publish(JobEvent{Phase: string(StateDone), State: StateDone, Done: 1, Total: 1})
		j.events.close()
		close(j.done)
		return j, true, nil
	}

	j.state = StateQueued
	queue := m.normal
	if req.Priority == PriorityHigh {
		queue = m.high
	}
	select {
	case queue <- j:
	default:
		m.submitted.Add(-1)
		return nil, false, errQueueFull
	}
	m.jobs[id] = j
	j.events.publish(JobEvent{Phase: string(StateQueued), State: StateQueued})
	return j, true, nil
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel cancels a queued or running job.
func (m *Manager) Cancel(id string) bool {
	j, ok := m.Get(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	cancel := j.cancel
	terminal := j.state.Terminal()
	j.mu.Unlock()
	if terminal {
		return true
	}
	if cancel != nil {
		cancel() // running: the simulation truncates at its next watchdog check
		return true
	}
	// Still queued: finish it now; the worker skips terminal jobs.
	m.canceled.Add(1)
	j.finish(StateCanceled, nil, fsmerr.New(fsmerr.CodeCanceled, "server.Cancel", "job canceled before start"))
	m.noteFinished(j.ID)
	return true
}

func (m *Manager) rememberFinishedLocked(id string) {
	m.finished = append(m.finished, id)
	for len(m.finished) > maxFinished {
		evict := m.finished[0]
		m.finished = m.finished[1:]
		if j, ok := m.jobs[evict]; ok {
			j.mu.Lock()
			terminal := j.state.Terminal()
			j.mu.Unlock()
			if terminal {
				delete(m.jobs, evict)
			}
		}
	}
}

func (m *Manager) noteFinished(id string) {
	m.mu.Lock()
	m.rememberFinishedLocked(id)
	m.mu.Unlock()
}

// worker is one executor goroutine: it drains the high-priority queue
// first, then either queue, until both are closed by Drain.
func (m *Manager) worker() {
	defer m.wg.Done()
	high, normal := m.high, m.normal
	for high != nil || normal != nil {
		select {
		case j, ok := <-high:
			if !ok {
				high = nil
				continue
			}
			m.execute(j)
			continue
		default:
		}
		if high == nil {
			j, ok := <-normal
			if !ok {
				return
			}
			m.execute(j)
			continue
		}
		select {
		case j, ok := <-high:
			if !ok {
				high = nil
				continue
			}
			m.execute(j)
		case j, ok := <-normal:
			if !ok {
				normal = nil
				continue
			}
			m.execute(j)
		}
	}
}

// execute runs one job body on the parallel engine (one cell: panic
// isolation and ordered error semantics for free; grid-shaped jobs
// shard further inside the cell through the same engine).
func (m *Manager) execute(j *Job) {
	j.mu.Lock()
	if j.state.Terminal() { // canceled while queued
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j.cancel = cancel
	j.state = StateRunning
	j.mu.Unlock()
	defer cancel()

	m.executed.Add(1)
	m.inFlight.Add(1)
	defer m.inFlight.Add(-1)
	j.events.publish(JobEvent{Phase: string(StateRunning), State: StateRunning})

	results, err := parallel.Map(ctx, 1, []parallel.Cell[*cacheEntry]{{
		Key: string(j.Req.Kind) + "/" + j.ID,
		Run: func(ctx context.Context) (*cacheEntry, error) { return m.run(ctx, j) },
	}})
	entry := results[0]
	switch {
	case err == nil && entry != nil:
		m.cache.put(entry)
		m.completed.Add(1)
		j.finish(StateDone, entry, nil)
	case fsmerr.CodeOf(err) == fsmerr.CodeCanceled:
		m.canceled.Add(1)
		j.finish(StateCanceled, nil, err)
	default:
		if err == nil {
			err = fsmerr.New(fsmerr.CodeExperiment, "server.execute", "job produced no result")
		}
		m.failed.Add(1)
		j.finish(StateFailed, nil, err)
	}
	m.noteFinished(j.ID)
}

// Draining reports whether the manager has begun shutting down.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Drain stops intake and waits for in-flight and queued jobs to finish.
// New submissions fail with errDraining immediately; queued jobs still
// execute (a completed submission is never dropped). If ctx expires
// first, remaining jobs are canceled and Drain waits for the workers to
// acknowledge before returning ctx's error.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.high)
		close(m.normal)
	}
	m.mu.Unlock()

	workersDone := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
		return nil
	case <-ctx.Done():
		m.baseCancel() // hard-cancel stragglers, then wait them out
		<-workersDone
		return ctx.Err()
	}
}
