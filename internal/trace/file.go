package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"fsmem/internal/dram"
)

// Trace files hold post-LLC reference streams in a USIMM-like text format,
// one record per line:
//
//	<gap> R|W <rank> <bank> <row> <col>
//
// where gap is the number of non-memory instructions preceding the
// reference. Lines starting with '#' are comments.

// WriteTrace serializes refs to w.
func WriteTrace(w io.Writer, refs []Ref) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# fsmem trace v1: gap R|W rank bank row col"); err != nil {
		return err
	}
	for _, r := range refs {
		op := "R"
		if r.Write {
			op = "W"
		}
		if _, err := fmt.Fprintf(bw, "%d %s %d %d %d %d\n",
			r.Gap, op, r.Addr.Rank, r.Addr.Bank, r.Addr.Row, r.Addr.Col); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace file.
func ReadTrace(r io.Reader) ([]Ref, error) {
	var refs []Ref
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var gap, rank, bank, row, col int
		var op string
		if _, err := fmt.Sscanf(line, "%d %s %d %d %d %d", &gap, &op, &rank, &bank, &row, &col); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		if op != "R" && op != "W" {
			return nil, fmt.Errorf("trace: line %d: op %q is not R or W", lineNo, op)
		}
		if gap < 0 || rank < 0 || bank < 0 || row < 0 || col < 0 {
			return nil, fmt.Errorf("trace: line %d: negative field", lineNo)
		}
		refs = append(refs, Ref{
			Gap:   gap,
			Write: op == "W",
			Addr:  dram.Address{Rank: rank, Bank: bank, Row: row, Col: col},
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("trace: no records")
	}
	return refs, nil
}

// Capture records n references from a stream (e.g. to snapshot a synthetic
// workload into a replayable trace file).
func Capture(s Stream, n int) []Ref {
	out := make([]Ref, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s.Next())
	}
	return out
}
