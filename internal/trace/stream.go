package trace

import "fsmem/internal/dram"

// Ref is one post-LLC memory reference in a core's instruction stream:
// Gap non-memory instructions execute, then the reference itself (which is
// also one instruction).
type Ref struct {
	Gap   int  // non-memory instructions preceding this reference
	Write bool // store (write-back) vs load
	Addr  dram.Address
}

// Stream produces an unbounded sequence of references. Rate-mode workloads
// never terminate; the simulator stops on its own instruction/read budget.
type Stream interface {
	// Next returns the next reference.
	Next() Ref
}

// SliceStream replays a fixed reference sequence cyclically. It is useful
// for tests and for file-based traces.
type SliceStream struct {
	Refs []Ref
	pos  int
}

// Next returns the next reference, wrapping at the end.
func (s *SliceStream) Next() Ref {
	if len(s.Refs) == 0 {
		return Ref{Gap: 1 << 20}
	}
	r := s.Refs[s.pos]
	s.pos++
	if s.pos == len(s.Refs) {
		s.pos = 0
	}
	return r
}

// IdleStream never issues a memory reference: an endless run of non-memory
// instructions. It models the paper's "synthetic threads that make no
// memory accesses" (Figure 4).
type IdleStream struct{}

// Next returns a reference that is effectively never reached.
func (IdleStream) Next() Ref { return Ref{Gap: 1 << 30} }
