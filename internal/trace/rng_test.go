package trace

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(8)
	if NewRNG(7).Uint64() == c.Uint64() {
		t.Error("different seeds produced the same first value")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	r := NewRNG(2)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) covered %d values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(3)
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("Bool(0.3) frequency %v", got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(4)
	for _, mean := range []float64{2, 10, 50} {
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Geometric(mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > mean*0.1 {
			t.Errorf("Geometric(%v) mean %v", mean, got)
		}
	}
	if r.Geometric(0) != 0 || r.Geometric(-3) != 0 {
		t.Error("non-positive mean should yield 0")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(5)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Error("split stream mirrors parent")
	}
}

func TestSliceStreamWrapsAndEmptyIsIdle(t *testing.T) {
	s := &SliceStream{Refs: []Ref{{Gap: 1}, {Gap: 2}}}
	if s.Next().Gap != 1 || s.Next().Gap != 2 || s.Next().Gap != 1 {
		t.Error("SliceStream does not cycle")
	}
	empty := &SliceStream{}
	if empty.Next().Gap < 1<<19 {
		t.Error("empty SliceStream should behave as idle")
	}
	var idle IdleStream
	if idle.Next().Gap < 1<<29 {
		t.Error("IdleStream gap too small")
	}
}
