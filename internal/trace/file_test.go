package trace

import (
	"bytes"
	"strings"
	"testing"

	"fsmem/internal/dram"
)

func TestTraceRoundTrip(t *testing.T) {
	refs := []Ref{
		{Gap: 3, Write: false, Addr: dram.Address{Rank: 1, Bank: 2, Row: 100, Col: 7}},
		{Gap: 0, Write: true, Addr: dram.Address{Rank: 7, Bank: 0, Row: 65535, Col: 127}},
		{Gap: 1 << 20, Write: false, Addr: dram.Address{}},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, refs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(refs) {
		t.Fatalf("round trip: %d records, want %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], refs[i])
		}
	}
}

func TestReadTraceSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n 5 R 0 1 2 3 \n# tail\n"
	got, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Gap != 5 || got[0].Addr.Col != 3 {
		t.Fatalf("parsed %+v", got)
	}
}

func TestReadTraceErrors(t *testing.T) {
	for _, in := range []string{
		"",               // empty
		"x R 0 0 0 0\n",  // bad gap
		"1 Q 0 0 0 0\n",  // bad op
		"1 R 0 0 0\n",    // short line
		"-1 R 0 0 0 0\n", // negative gap
		"1 W 0 -2 0 0\n", // negative bank
	} {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestCapture(t *testing.T) {
	s := &SliceStream{Refs: []Ref{{Gap: 1}, {Gap: 2}}}
	got := Capture(s, 5)
	if len(got) != 5 || got[0].Gap != 1 || got[4].Gap != 1 {
		t.Fatalf("Capture = %+v", got)
	}
}
