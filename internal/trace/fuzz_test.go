package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTrace drives the USIMM-like trace parser with arbitrary bytes:
// it must never panic, and any stream it accepts must survive a
// write/read round trip unchanged.
func FuzzReadTrace(f *testing.F) {
	f.Add([]byte("# fsmem trace v1: gap R|W rank bank row col\n10 R 0 1 17 3\n0 W 1 7 100 127\n"))
	f.Add([]byte("0 R 0 0 0 0\n"))
	f.Add([]byte("5 X 0 0 0 0\n"))
	f.Add([]byte("-1 R 0 0 0 0\n"))
	f.Add([]byte("1 R 0 0 0\n"))
	f.Add([]byte("# only a comment\n"))
	f.Add([]byte(""))
	f.Add([]byte("99999999999999999999 R 0 0 0 0\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		refs, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := WriteTrace(&buf, refs); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		refs2, err := ReadTrace(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("serialized trace failed to reparse: %v\n%s", err, buf.String())
		}
		if len(refs2) != len(refs) {
			t.Fatalf("round trip changed record count: %d vs %d", len(refs), len(refs2))
		}
		for i := range refs {
			if refs[i] != refs2[i] {
				t.Fatalf("record %d changed in round trip: %+v vs %+v", i, refs[i], refs2[i])
			}
		}
	})
}
