// Package trace provides the deterministic random-number generator and the
// memory-reference stream abstraction that workload generators implement.
// Every source of randomness in the simulator flows from a seeded RNG so
// that experiments are reproducible byte-for-byte.
package trace

import "math"

// RNG is a splitmix64 pseudo-random generator: tiny state, excellent
// statistical quality for simulation purposes, and fully deterministic.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with the given value.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Geometric returns a sample from a geometric distribution with the given
// mean (the number of failures before a success with p = 1/(mean+1)).
// A mean <= 0 always returns 0.
func (r *RNG) Geometric(mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1.0 / (mean + 1.0)
	// Closed-form inverse-transform sampling on the geometric CDF: the
	// smallest n with 1-(1-p)^(n+1) > u is floor(log(1-u)/log(1-p)). O(1)
	// regardless of the sampled value — idle workloads draw gaps in the
	// thousands, and accumulating the CDF term by term made stream
	// generation the simulator's hottest function.
	u := r.Float64()
	// Avoid log(0).
	if u >= 1.0 {
		u = 0.9999999999999999
	}
	n := int(math.Log1p(-u) / math.Log1p(-p))
	if n < 0 {
		n = 0
	}
	if n > 1<<20 {
		n = 1 << 20
	}
	return n
}

// Split derives an independent generator from this one, for giving each
// domain or component its own stream without correlation.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a55a5a5a5a)
}
