package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"fsmem/internal/fsmerr"
)

// TestMapOrderedResults pins the determinism contract: results come back in
// cell input order for every worker count, even when later cells finish
// first.
func TestMapOrderedResults(t *testing.T) {
	const n = 24
	cells := make([]Cell[int], n)
	for i := range cells {
		i := i
		cells[i] = Cell[int]{
			Key: fmt.Sprintf("cell-%d", i),
			Run: func(context.Context) (int, error) {
				// Later cells sleep less, so completion order is roughly the
				// reverse of input order.
				time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
				return i * i, nil
			},
		}
	}
	for _, workers := range []int{1, 3, 8, 16} {
		out, err := Map(context.Background(), workers, cells)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapWorkersExceedCells: a pool wider than the grid must clamp, not
// deadlock or spin idle goroutines.
func TestMapWorkersExceedCells(t *testing.T) {
	cells := []Cell[string]{
		{Key: "a", Run: func(context.Context) (string, error) { return "a", nil }},
		{Key: "b", Run: func(context.Context) (string, error) { return "b", nil }},
	}
	out, err := Map(context.Background(), 64, cells)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != "a" || out[1] != "b" {
		t.Fatalf("out = %v", out)
	}
}

// TestMapZeroCells: an empty grid completes immediately with no error.
func TestMapZeroCells(t *testing.T) {
	out, err := Map[int](context.Background(), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("out = %v, want empty", out)
	}
}

// TestMapCellError: a cell returning a structured fsmerr.Error must not
// stop the pool — every other cell completes, and the joined error
// surfaces the structured failure via errors.As.
func TestMapCellError(t *testing.T) {
	var completed atomic.Int32
	want := fsmerr.New(fsmerr.CodeTiming, "test.cell", "injected failure")
	cells := make([]Cell[int], 10)
	for i := range cells {
		i := i
		cells[i] = Cell[int]{
			Key: fmt.Sprintf("cell-%d", i),
			Run: func(context.Context) (int, error) {
				if i == 3 {
					return 0, want
				}
				completed.Add(1)
				return i, nil
			},
		}
	}
	out, err := Map(context.Background(), 4, cells)
	if err == nil {
		t.Fatal("want joined error, got nil")
	}
	var fe *fsmerr.Error
	if !errors.As(err, &fe) || fe.Code != fsmerr.CodeTiming {
		t.Fatalf("joined error lost the structured cell error: %v", err)
	}
	if got := completed.Load(); got != 9 {
		t.Errorf("pool did not drain: %d of 9 healthy cells completed", got)
	}
	for i, v := range out {
		if i != 3 && v != i {
			t.Errorf("out[%d] = %d, want %d", i, v, i)
		}
	}
}

// TestMapPanicIsolation: a panicking cell becomes a CodePanic error naming
// the cell; its siblings still run.
func TestMapPanicIsolation(t *testing.T) {
	var completed atomic.Int32
	cells := []Cell[int]{
		{Key: "healthy-0", Run: func(context.Context) (int, error) { completed.Add(1); return 1, nil }},
		{Key: "broken", Run: func(context.Context) (int, error) { panic("boom") }},
		{Key: "healthy-1", Run: func(context.Context) (int, error) { completed.Add(1); return 2, nil }},
	}
	_, err := Map(context.Background(), 2, cells)
	if fsmerr.CodeOf(err) != fsmerr.CodePanic {
		t.Fatalf("want CodePanic, got %v", err)
	}
	if err == nil || !errors.As(err, new(*fsmerr.Error)) {
		t.Fatalf("panic not converted to structured error: %v", err)
	}
	if completed.Load() != 2 {
		t.Errorf("healthy cells did not complete after sibling panic")
	}
}

// TestMapCancellation: canceling mid-sweep stops dispatch, lets running
// cells observe the canceled context, and reports the cancellation exactly
// once — the pool drains instead of hanging.
func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int32
	cells := make([]Cell[int], 32)
	for i := range cells {
		i := i
		cells[i] = Cell[int]{
			Key: fmt.Sprintf("cell-%d", i),
			Run: func(ctx context.Context) (int, error) {
				started.Add(1)
				if i == 0 {
					cancel()
					return 0, nil
				}
				select {
				case <-ctx.Done():
					return 0, fsmerr.Wrap(fsmerr.CodeCanceled, "test.cell", ctx.Err())
				case <-time.After(5 * time.Second):
					return i, nil
				}
			},
		}
	}
	done := make(chan struct{})
	var err error
	go func() {
		_, err = Map(ctx, 2, cells)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Map did not drain after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in joined error, got %v", err)
	}
	if fsmerr.CodeOf(err) != fsmerr.CodeCanceled {
		t.Fatalf("want a CodeCanceled fsmerr, got %v", err)
	}
	if n := started.Load(); n >= 32 {
		t.Errorf("cancellation did not stop dispatch: all %d cells started", n)
	}
}

// TestMapDeterministicAcrossWorkerCounts: the same pure cells produce
// bit-identical output vectors for every pool width.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	mk := func() []Cell[uint64] {
		cells := make([]Cell[uint64], 40)
		for i := range cells {
			key := fmt.Sprintf("grid/%d", i)
			cells[i] = Cell[uint64]{
				Key: key,
				Run: func(context.Context) (uint64, error) {
					// A cell using randomness derives its seed from its key:
					// the value depends only on the cell, never the schedule.
					s := DeriveSeed(42, key)
					for j := 0; j < 1000; j++ {
						s = s*6364136223846793005 + 1442695040888963407
					}
					return s, nil
				},
			}
		}
		return cells
	}
	ref, err := Map(context.Background(), 1, mk())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7, 16} {
		got, err := Map(context.Background(), workers, mk())
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestDeriveSeed: stable, key-sensitive, and base-sensitive.
func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(42, "a/b") != DeriveSeed(42, "a/b") {
		t.Error("DeriveSeed not stable")
	}
	if DeriveSeed(42, "a/b") == DeriveSeed(42, "a/c") {
		t.Error("DeriveSeed ignores the key")
	}
	if DeriveSeed(42, "a/b") == DeriveSeed(43, "a/b") {
		t.Error("DeriveSeed ignores the base seed")
	}
}
