// Package parallel is the bounded worker-pool execution engine behind the
// experiment sweeps and fault campaigns. The paper's evaluation is a large
// grid of independent simulations (scheduler x partitioning x workload x
// seed); this package shards such a grid across a fixed number of workers
// and merges the results through a deterministic ordered reduce, so every
// table, figure, and campaign verdict is byte-identical whatever the worker
// count or goroutine scheduling order.
//
// Determinism contract:
//
//   - Results are returned in cell input order, never completion order.
//   - Per-cell errors are collected with errors.Join in input order; one
//     failed or panicking cell never prevents the others from finishing.
//   - A cell that needs randomness must derive its seed from its own key
//     (DeriveSeed), never draw from an RNG shared across cells — a shared
//     RNG would couple a cell's output to the order its siblings ran in.
//
// Cancellation: the pool stops dispatching new cells as soon as the context
// is done and hands the context to running cells so in-flight simulations
// can stop at their next watchdog check. Map then drains cleanly and
// reports the cancellation exactly once, as an fsmerr CodeCanceled error
// joined after the per-cell errors.
package parallel

import (
	"context"
	"errors"
	"hash/fnv"
	"runtime"
	"sync"

	"fsmem/internal/fsmerr"
)

// DefaultWorkers is the GOMAXPROCS-aware default pool width used when a
// caller passes workers <= 0.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// DeriveSeed derives a per-cell seed from a base seed and the cell's key:
// base XOR FNV-1a(key). Two cells with different keys get decorrelated
// streams, and the derivation depends only on (base, key) — never on which
// worker ran the cell or when — so results are independent of scheduling
// order by construction.
func DeriveSeed(base uint64, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return base ^ h.Sum64()
}

// Cell is one independent unit of work in a sharded grid. Key identifies
// the cell in error messages and seed derivation and should be stable
// across runs (e.g. "Figure6/milc/FS_RP").
type Cell[T any] struct {
	Key string
	Run func(ctx context.Context) (T, error)
}

// Map runs every cell on a pool of at most `workers` goroutines
// (workers <= 0 selects DefaultWorkers) and returns the results in cell
// input order. Errors from individual cells are joined in input order; a
// panicking cell is converted to a CodePanic error rather than crashing
// the process. When ctx is canceled, cells not yet started are skipped,
// running cells receive the canceled context, and a single CodeCanceled
// error is joined last.
func Map[T any](ctx context.Context, workers int, cells []Cell[T]) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(cells)
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range cells {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = runCell(ctx, cells[i])
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		errs = append(errs, fsmerr.Wrap(fsmerr.CodeCanceled, "parallel.Map", err))
	}
	return out, errors.Join(errs...)
}

// runCell executes one cell, isolating panics so a single broken cell
// surfaces as a structured error instead of tearing down the whole sweep.
func runCell[T any](ctx context.Context, c Cell[T]) (res T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fsmerr.New(fsmerr.CodePanic, "parallel.Map("+c.Key+")", "panic: %v", p)
		}
	}()
	// A cell the cancellation already overtook is skipped silently: Map
	// reports the cancellation once rather than once per unstarted cell.
	if ctx.Err() != nil {
		return res, nil
	}
	return c.Run(ctx)
}
