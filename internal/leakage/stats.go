// Statistical certification primitives: a bias-corrected mutual-
// information estimator and a label-permutation test, both fully
// deterministic for a given input and seed so audit certificates are
// byte-identical across runs and worker counts.
//
// The point of both: a point-estimate MI of 0.03 bits on 40 samples says
// nothing by itself — small-sample histogram estimators are biased upward
// (Miller 1955), and "is this distinguishable from zero leakage?" is a
// hypothesis test, not a number. Gong & Kiyavash's scheduler-leakage
// quantification and the covert-channel literature both phrase security
// claims against the null of identical observable distributions; the
// permutation test calibrates exactly that null.
package leakage

import (
	"math"

	"fsmem/internal/trace"
)

// histogram2 bins the pooled samples of both classes over their common
// range and returns the per-class counts (not normalized).
func histogram2(class0, class1 []float64, bins int) (h0, h1 []int, ok bool) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, xs := range [][]float64{class0, class1} {
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
	}
	if hi <= lo {
		return nil, nil, false // all observations identical: channel silent
	}
	width := (hi - lo) / float64(bins)
	h0, h1 = make([]int, bins), make([]int, bins)
	fill := func(h []int, xs []float64) {
		for _, x := range xs {
			i := int((x - lo) / width)
			if i >= bins {
				i = bins - 1
			}
			h[i]++
		}
	}
	fill(h0, class0)
	fill(h1, class1)
	return h0, h1, true
}

// MutualInformationMillerMadow estimates I(victim class; observation) in
// bits with the plug-in histogram estimator minus the Miller–Madow bias
// correction. The plug-in estimator overshoots by roughly
// (cells - 1) / (2N ln 2) bits on N samples; for mutual information the
// correction is (M_xy - M_x - M_y + 1) / (2N ln 2) with M_* the counts of
// non-empty joint and marginal cells. The corrected estimate is clamped
// at zero: negative information is an estimation artifact.
func MutualInformationMillerMadow(class0, class1 []float64, bins int) float64 {
	if bins <= 0 || len(class0) == 0 || len(class1) == 0 {
		return 0
	}
	h0, h1, ok := histogram2(class0, class1, bins)
	if !ok {
		return 0
	}
	n0, n1 := float64(len(class0)), float64(len(class1))
	n := n0 + n1
	// Plug-in I(X;Y) over the joint (bin, class) table with empirical
	// class priors.
	var mi float64
	mJoint, mX := 0, 0
	for i := 0; i < bins; i++ {
		joint0 := float64(h0[i]) / n
		joint1 := float64(h1[i]) / n
		px := joint0 + joint1
		if px > 0 {
			mX++
		}
		for c, j := range []float64{joint0, joint1} {
			if j == 0 {
				continue
			}
			mJoint++
			py := n0 / n
			if c == 1 {
				py = n1 / n
			}
			mi += j * math.Log2(j/(px*py))
		}
	}
	mY := 0
	if n0 > 0 {
		mY++
	}
	if n1 > 0 {
		mY++
	}
	correction := float64(mJoint-mX-mY+1) / (2 * n * math.Ln2)
	mi -= correction
	if mi < 0 {
		mi = 0
	}
	return mi
}

// Statistic is a two-sample test statistic, e.g. KolmogorovSmirnov or a
// mutual-information estimate, where larger means "more distinguishable".
type Statistic func(class0, class1 []float64) float64

// PermutationPValue runs a label-permutation test of the null hypothesis
// that both classes draw from the same distribution: the observed
// statistic is ranked against `rounds` random relabelings of the pooled
// samples, and the returned p-value is (1 + #{perm >= observed}) /
// (rounds + 1) — the add-one form guarantees a valid test (p is never 0)
// and makes p-values uniform on {1/(R+1), ..., 1} under the null.
//
// Everything is driven by the seed: the same samples, statistic, rounds,
// and seed always return the same p-value, which is what lets a leakage
// certificate pin an exact p across worker counts and daemon restarts.
// When every pooled observation is identical the channel is provably
// silent and the p-value is exactly 1.
func PermutationPValue(class0, class1 []float64, stat Statistic, rounds int, seed uint64) float64 {
	if rounds <= 0 || len(class0) == 0 || len(class1) == 0 {
		return 1
	}
	observed := stat(class0, class1)
	pool := make([]float64, 0, len(class0)+len(class1))
	pool = append(pool, class0...)
	pool = append(pool, class1...)

	rng := trace.NewRNG(seed)
	ge := 0
	perm0 := make([]float64, len(class0))
	perm1 := make([]float64, len(class1))
	for r := 0; r < rounds; r++ {
		// Fisher–Yates over the pool, then split at the original sizes.
		for i := len(pool) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			pool[i], pool[j] = pool[j], pool[i]
		}
		copy(perm0, pool[:len(class0)])
		copy(perm1, pool[len(class0):])
		if stat(perm0, perm1) >= observed {
			ge++
		}
	}
	return float64(1+ge) / float64(rounds+1)
}
