package leakage

import (
	"testing"

	"fsmem/internal/core"
	"fsmem/internal/sim"
	"fsmem/internal/workload"
)

// collectWith runs the Figure 4 profile collection with extra config.
func collectWith(t *testing.T, k sim.SchedulerKind, coMPKI float64, mutate func(*sim.Config)) Profile {
	t.Helper()
	att, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	co := workload.Synthetic("co", coMPKI)
	mix := workload.Mix{Name: "leakage", Profiles: make([]workload.Profile, 8)}
	mix.Profiles[0] = att
	for d := 1; d < 8; d++ {
		mix.Profiles[d] = co
	}
	cfg := sim.DefaultConfig(mix, k)
	cfg.Seed = 123
	cfg.TargetReads = 0
	cfg.MaxBusCycles = 100_000_000
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prof := Profile{Scheduler: k.String(), CoRunner: co.Name, Milestone: 10_000}
	next := int64(10_000)
	for cycle := int64(0); cycle < cfg.MaxBusCycles; cycle++ {
		sys.Step()
		retired := sys.Controller().Dom[0].Instructions
		for retired >= next {
			prof.CyclesAt = append(prof.CyclesAt, (cycle+1)*4)
			next += 10_000
		}
		if retired >= 200_000 {
			return prof
		}
	}
	t.Fatal("attacker never finished")
	return prof
}

// TestPrefetchPreservesNonInterference: the sandbox prefetcher observes
// only its own domain's stream and fills only its own dummy slots, so it
// must not reopen the channel.
func TestPrefetchPreservesNonInterference(t *testing.T) {
	pf := func(c *sim.Config) { c.Prefetch = true }
	quiet := collectWith(t, sim.FSRankPart, 0.01, pf)
	loud := collectWith(t, sim.FSRankPart, 45, pf)
	if !Identical(quiet, loud) {
		d, _ := Divergence(quiet, loud)
		t.Fatalf("prefetching leaked: divergence %.5f", d)
	}
}

// TestEnergyOptsPreserveNonInterference: suppressed dummies, row-buffer
// boosts, and rank power-down change only the DRAM operations performed,
// never the command grid a co-runner could observe.
func TestEnergyOptsPreserveNonInterference(t *testing.T) {
	eo := func(c *sim.Config) {
		c.Energy = core.EnergyOpts{SuppressDummies: true, RowBufferBoost: true, PowerDown: true}
	}
	quiet := collectWith(t, sim.FSRankPart, 0.01, eo)
	loud := collectWith(t, sim.FSRankPart, 45, eo)
	if !Identical(quiet, loud) {
		d, _ := Divergence(quiet, loud)
		t.Fatalf("energy optimizations leaked: divergence %.5f", d)
	}
}

// TestWeightedSlotsPreserveNonInterference: SLA weights reshape the slot
// grid, but the grid is still fixed at configuration time.
func TestWeightedSlotsPreserveNonInterference(t *testing.T) {
	w := func(c *sim.Config) { c.SLAWeights = []int{2, 1, 1, 1, 1, 1, 1, 1} }
	quiet := collectWith(t, sim.FSRankPart, 0.01, w)
	loud := collectWith(t, sim.FSRankPart, 45, w)
	if !Identical(quiet, loud) {
		d, _ := Divergence(quiet, loud)
		t.Fatalf("weighted slots leaked: divergence %.5f", d)
	}
}

// TestRefreshEnabledPreservesNonInterference at the system level.
func TestRefreshEnabledPreservesNonInterference(t *testing.T) {
	rf := func(c *sim.Config) { c.RefreshEnabled = true }
	quiet := collectWith(t, sim.FSRankPart, 0.01, rf)
	loud := collectWith(t, sim.FSRankPart, 45, rf)
	if !Identical(quiet, loud) {
		d, _ := Divergence(quiet, loud)
		t.Fatalf("deterministic refresh leaked: divergence %.5f", d)
	}
}

// TestBaselinePrefetchStillLeaks: a sanity inversion — adding a prefetcher
// to the non-secure baseline does not accidentally make it secure.
func TestBaselinePrefetchStillLeaks(t *testing.T) {
	pf := func(c *sim.Config) { c.Prefetch = true }
	quiet := collectWith(t, sim.Baseline, 0.01, pf)
	loud := collectWith(t, sim.Baseline, 45, pf)
	if Identical(quiet, loud) {
		t.Fatal("baseline+prefetch should still leak")
	}
}
