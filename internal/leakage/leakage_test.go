package leakage

import (
	"testing"

	"fsmem/internal/addr"
	"fsmem/internal/sim"
	"fsmem/internal/workload"
)

func attacker(t *testing.T) workload.Profile {
	t.Helper()
	p, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func collect(t *testing.T, k sim.SchedulerKind, coMPKI float64) Profile {
	t.Helper()
	co := workload.Synthetic("co", coMPKI)
	prof, err := CollectProfile(k, attacker(t), co, 8, 10_000, 300_000, 99, 1, addr.RouteColored)
	if err != nil {
		t.Fatalf("%v: %v", k, err)
	}
	return prof
}

// TestFigure4NonInterference is the heart of the paper's security claim:
// the attacker's execution profile under every FS variant must be
// bit-identical whether its co-runners are idle or memory-intensive, while
// the non-secure baseline visibly diverges.
func TestFigure4NonInterference(t *testing.T) {
	for _, k := range []sim.SchedulerKind{sim.FSRankPart, sim.FSBankPart, sim.FSReorderedBank, sim.FSNoPart, sim.FSNoPartTriple} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			quiet := collect(t, k, 0.01)
			loud := collect(t, k, 45)
			if !Identical(quiet, loud) {
				d, _ := Divergence(quiet, loud)
				t.Fatalf("%v leaked: profiles diverge by %.4f", k, d)
			}
		})
	}
}

func TestBaselineLeaks(t *testing.T) {
	quiet := collect(t, sim.Baseline, 0.01)
	loud := collect(t, sim.Baseline, 45)
	if Identical(quiet, loud) {
		t.Fatal("baseline profiles identical: simulated contention is not visible at all")
	}
	d, err := Divergence(quiet, loud)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.05 {
		t.Errorf("baseline divergence %.4f suspiciously small; Figure 4 shows a large gap", d)
	}
}

func TestTPDoesNotLeakTiming(t *testing.T) {
	// Wang et al.'s TP is also secure; our model must preserve that.
	quiet := collect(t, sim.TPBank, 0.01)
	loud := collect(t, sim.TPBank, 45)
	if !Identical(quiet, loud) {
		d, _ := Divergence(quiet, loud)
		t.Fatalf("TP_BP leaked: divergence %.4f", d)
	}
}

func TestMutualInformation(t *testing.T) {
	quietB := collect(t, sim.Baseline, 0.01)
	loudB := collect(t, sim.Baseline, 45)
	miB := MutualInformationBits(EpochDurations(quietB), EpochDurations(loudB), 16)

	quietF := collect(t, sim.FSRankPart, 0.01)
	loudF := collect(t, sim.FSRankPart, 45)
	miF := MutualInformationBits(EpochDurations(quietF), EpochDurations(loudF), 16)

	if miF != 0 {
		t.Errorf("FS mutual information = %.4f bits, want exactly 0", miF)
	}
	if miB <= 0.1 {
		t.Errorf("baseline mutual information = %.4f bits, want clearly positive", miB)
	}
	t.Logf("mutual information: baseline %.3f bits, FS_RP %.3f bits", miB, miF)
}

func TestMutualInformationEstimator(t *testing.T) {
	// Identical distributions carry zero information.
	same := []float64{1, 2, 3, 4, 5, 1, 2, 3}
	if mi := MutualInformationBits(same, same, 8); mi != 0 {
		t.Errorf("MI(same, same) = %v, want 0", mi)
	}
	// Perfectly separated distributions carry ~1 bit.
	lo := []float64{1, 1.1, 0.9, 1.05, 0.95, 1.02}
	hi := []float64{9, 9.1, 8.9, 9.05, 8.95, 9.02}
	if mi := MutualInformationBits(lo, hi, 8); mi < 0.9 {
		t.Errorf("MI(separated) = %v, want ~1 bit", mi)
	}
	// Degenerate inputs.
	if mi := MutualInformationBits(nil, hi, 8); mi != 0 {
		t.Errorf("MI(nil, x) = %v, want 0", mi)
	}
	if mi := MutualInformationBits(lo, hi, 0); mi != 0 {
		t.Errorf("MI with 0 bins = %v, want 0", mi)
	}
}

func TestCovertChannel(t *testing.T) {
	if testing.Short() {
		t.Skip("covert channel runs many windows")
	}
	message := []bool{true, false, true, true, false, false, true, false, true, false, false, true}
	base, err := CovertChannel(sim.Baseline, 8, message, 40_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	fsres, err := CovertChannel(sim.FSRankPart, 8, message, 40_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("covert channel BER: baseline %.2f, FS_RP %.2f", base.BitErrorRate, fsres.BitErrorRate)
	if base.BitErrorRate > 0.2 {
		t.Errorf("baseline covert channel BER %.2f: the channel should work on a non-secure scheduler", base.BitErrorRate)
	}
	if fsres.BitErrorRate < 0.3 {
		t.Errorf("FS covert channel BER %.2f: FS should reduce the channel to chance", fsres.BitErrorRate)
	}
}

func TestDivergenceErrors(t *testing.T) {
	if _, err := Divergence(Profile{}, Profile{}); err == nil {
		t.Error("Divergence on empty profiles should error")
	}
}
