// Package leakage measures timing-channel information flow through the
// memory controller: the Figure 4 execution-profile experiment (an attacker
// thread timed against co-runners of different memory intensity), a
// mutual-information estimate over the attacker's epoch timings, and a
// covert-channel encode/decode harness.
package leakage

import (
	"fmt"
	"math"

	"fsmem/internal/sim"
	"fsmem/internal/workload"
)

// Profile is one execution profile: the CPU cycle at which the attacker
// domain crossed each instruction milestone (Figure 4's Y values; the
// paper samples every 10K instructions).
type Profile struct {
	Scheduler   string
	CoRunner    string
	Milestone   int64 // instructions per sample
	CyclesAt    []int64
	Instruction []int64
}

// CollectProfile runs the attacker benchmark as domain 0 against
// (domains-1) co-runner copies of coRunner, sampling the attacker's
// progress every milestone instructions until it retires totalInstr.
func CollectProfile(k sim.SchedulerKind, attacker workload.Profile, coRunner workload.Profile,
	domains int, milestone, totalInstr int64, seed uint64) (Profile, error) {

	mix := workload.Mix{Name: "leakage", Profiles: make([]workload.Profile, domains)}
	mix.Profiles[0] = attacker
	for d := 1; d < domains; d++ {
		mix.Profiles[d] = coRunner
	}
	cfg := sim.DefaultConfig(mix, k)
	cfg.Seed = seed
	cfg.TargetReads = 0 // run on instruction budget instead
	cfg.MaxBusCycles = 200_000_000

	sys, err := sim.New(cfg)
	if err != nil {
		return Profile{}, err
	}
	prof := Profile{
		Scheduler: k.String(),
		CoRunner:  coRunner.Name,
		Milestone: milestone,
	}
	next := milestone
	cpuPerBus := int64(cfg.DRAM.CPUCyclesPerBusCycle)
	for cycle := int64(0); cycle < cfg.MaxBusCycles; cycle++ {
		sys.Step()
		retired := sys.Controller().Dom[0].Instructions
		for retired >= next {
			prof.CyclesAt = append(prof.CyclesAt, (cycle+1)*cpuPerBus)
			prof.Instruction = append(prof.Instruction, next)
			next += milestone
		}
		if retired >= totalInstr {
			return prof, nil
		}
	}
	return prof, fmt.Errorf("leakage: attacker retired only %d of %d instructions before the cycle budget",
		sys.Controller().Dom[0].Instructions, totalInstr)
}

// Divergence returns the maximum absolute difference between two profiles'
// milestone times, normalized by the larger final time. Zero means the
// attacker's observable progress is identical — the paper's
// non-interference claim.
func Divergence(a, b Profile) (float64, error) {
	n := len(a.CyclesAt)
	if len(b.CyclesAt) < n {
		n = len(b.CyclesAt)
	}
	if n == 0 {
		return 0, fmt.Errorf("leakage: empty profile")
	}
	var maxDiff float64
	for i := 0; i < n; i++ {
		d := math.Abs(float64(a.CyclesAt[i] - b.CyclesAt[i]))
		if d > maxDiff {
			maxDiff = d
		}
	}
	den := float64(a.CyclesAt[n-1])
	if f := float64(b.CyclesAt[n-1]); f > den {
		den = f
	}
	return maxDiff / den, nil
}

// Identical reports whether two profiles are bit-identical over their
// common prefix (the strict form of non-interference).
func Identical(a, b Profile) bool {
	n := len(a.CyclesAt)
	if len(b.CyclesAt) < n {
		n = len(b.CyclesAt)
	}
	for i := 0; i < n; i++ {
		if a.CyclesAt[i] != b.CyclesAt[i] {
			return false
		}
	}
	return n > 0
}

// EpochDurations converts a profile into per-milestone durations, the
// attacker's observable samples.
func EpochDurations(p Profile) []float64 {
	out := make([]float64, 0, len(p.CyclesAt))
	prev := int64(0)
	for _, c := range p.CyclesAt {
		out = append(out, float64(c-prev))
		prev = c
	}
	return out
}

// MutualInformationBits estimates I(victim class; epoch duration) in bits
// with a plug-in histogram estimator: samples from class 0 and class 1 are
// the attacker's epoch durations under two victim behaviors. Zero bits
// means the observable distribution carries no information about the
// victim; for a binary secret the maximum is 1 bit.
func MutualInformationBits(class0, class1 []float64, bins int) float64 {
	if bins <= 0 || len(class0) == 0 || len(class1) == 0 {
		return 0
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, xs := range [][]float64{class0, class1} {
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
	}
	if hi <= lo {
		// All observations identical: the channel is provably silent.
		return 0
	}
	width := (hi - lo) / float64(bins)
	hist := func(xs []float64) []float64 {
		h := make([]float64, bins)
		for _, x := range xs {
			i := int((x - lo) / width)
			if i >= bins {
				i = bins - 1
			}
			h[i]++
		}
		for i := range h {
			h[i] /= float64(len(xs))
		}
		return h
	}
	h0, h1 := hist(class0), hist(class1)
	// Equal class priors.
	mi := 0.0
	for i := 0; i < bins; i++ {
		m := (h0[i] + h1[i]) / 2
		for _, p := range []float64{h0[i], h1[i]} {
			if p > 0 && m > 0 {
				mi += 0.5 * p * math.Log2(p/m)
			}
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}

// KolmogorovSmirnov returns the two-sample KS statistic between the
// attacker's epoch-duration distributions under two victim behaviors:
// sup_x |F0(x) - F1(x)|, in [0, 1]. Zero means the distributions are
// indistinguishable; the baseline controller typically scores near 1.
func KolmogorovSmirnov(class0, class1 []float64) float64 {
	if len(class0) == 0 || len(class1) == 0 {
		return 0
	}
	s0 := append([]float64(nil), class0...)
	s1 := append([]float64(nil), class1...)
	insertionSort(s0)
	insertionSort(s1)
	var i, j int
	var d float64
	for i < len(s0) && j < len(s1) {
		// Step past the smallest current value in BOTH samples, so ties
		// advance the two empirical CDFs together.
		v := s0[i]
		if s1[j] < v {
			v = s1[j]
		}
		for i < len(s0) && s0[i] == v {
			i++
		}
		for j < len(s1) && s1[j] == v {
			j++
		}
		f0 := float64(i) / float64(len(s0))
		f1 := float64(j) / float64(len(s1))
		if diff := math.Abs(f0 - f1); diff > d {
			d = diff
		}
	}
	return d
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// CovertResult summarizes a covert-channel attempt.
type CovertResult struct {
	Scheduler string
	Bits      int
	Errors    int
	// Decoded holds the bits the receiver recovered, aligned with the
	// message.
	Decoded []bool
	// BitErrorRate 0 means a perfect channel; 0.5 means the receiver
	// learned nothing.
	BitErrorRate float64
}

// CovertChannel runs the §2.2-style covert channel: a sender domain
// modulates its memory intensity per window (burst = 1, idle = 0) while a
// receiver times its own fixed access loop per window and thresholds
// against the median. Under the baseline the receiver decodes the message;
// under FS the bit error rate collapses to chance.
func CovertChannel(k sim.SchedulerKind, domains int, message []bool, windowBusCycles int64, seed uint64) (CovertResult, error) {
	// Sender: domain 1 alternates between a heavy streaming profile and
	// idling. Receiver: domain 0 runs a steady probe load. Implemented by
	// running one simulation per window so the sender's behavior is a
	// per-window choice, exactly like a sender flipping load phases.
	probe := workload.Synthetic("probe", 25)
	heavy := workload.Synthetic("burst", 40)
	idle := workload.Synthetic("quiet", 0.01)

	durations := make([]float64, len(message))
	for i, bit := range message {
		victim := idle
		if bit {
			victim = heavy
		}
		mix := workload.Mix{Name: "covert", Profiles: make([]workload.Profile, domains)}
		mix.Profiles[0] = probe
		for d := 1; d < domains; d++ {
			mix.Profiles[d] = victim
		}
		cfg := sim.DefaultConfig(mix, k)
		cfg.Seed = seed // same seed per window: the only varying input is the sender's behavior
		cfg.TargetReads = 0
		cfg.MaxBusCycles = windowBusCycles
		res, err := sim.Simulate(cfg)
		if err != nil {
			return CovertResult{}, err
		}
		// Receiver observable: its own progress in the fixed window.
		durations[i] = float64(res.Run.Domains[0].Instructions)
	}

	// Threshold halfway between the fastest and slowest windows (the
	// attacker would calibrate the two levels the same way). A degenerate
	// spread means the channel carried nothing; everything decodes to 0.
	min, max := durations[0], durations[0]
	for _, d := range durations {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	thr := (min + max) / 2
	errors := 0
	decoded := make([]bool, len(message))
	for i, bit := range message {
		rx := max > min && durations[i] < thr // contention slows the receiver
		decoded[i] = rx
		if rx != bit {
			errors++
		}
	}
	return CovertResult{
		Scheduler:    k.String(),
		Bits:         len(message),
		Errors:       errors,
		Decoded:      decoded,
		BitErrorRate: float64(errors) / float64(len(message)),
	}, nil
}
