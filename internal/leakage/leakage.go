// Package leakage measures timing-channel information flow through the
// memory controller: the Figure 4 execution-profile experiment (an attacker
// thread timed against co-runners of different memory intensity), a
// mutual-information estimate over the attacker's epoch timings, and a
// covert-channel encode/decode harness.
package leakage

import (
	"fmt"
	"math"
	"sort"

	"fsmem/internal/addr"
	"fsmem/internal/fault"
	"fsmem/internal/fsmerr"
	"fsmem/internal/sim"
	"fsmem/internal/workload"
)

// Profile is one execution profile: the CPU cycle at which the attacker
// domain crossed each instruction milestone (Figure 4's Y values; the
// paper samples every 10K instructions).
type Profile struct {
	Scheduler   string
	CoRunner    string
	Milestone   int64 // instructions per sample
	CyclesAt    []int64
	Instruction []int64
}

// CollectProfile runs the attacker benchmark as domain 0 against
// (domains-1) co-runner copies of coRunner, sampling the attacker's
// progress every milestone instructions until it retires totalInstr.
// channels and routing select the memory fabric (channels <= 1 is the
// classic single-channel machine; routing is ignored there).
func CollectProfile(k sim.SchedulerKind, attacker workload.Profile, coRunner workload.Profile,
	domains int, milestone, totalInstr int64, seed uint64,
	channels int, routing addr.Routing) (Profile, error) {

	mix := workload.Mix{Name: "leakage", Profiles: make([]workload.Profile, domains)}
	mix.Profiles[0] = attacker
	for d := 1; d < domains; d++ {
		mix.Profiles[d] = coRunner
	}
	cfg := sim.DefaultConfig(mix, k)
	cfg.Seed = seed
	cfg.TargetReads = 0 // run on instruction budget instead
	cfg.MaxBusCycles = 200_000_000
	cfg.Channels = channels
	cfg.Routing = routing

	sys, err := sim.New(cfg)
	if err != nil {
		return Profile{}, err
	}
	prof := Profile{
		Scheduler: k.String(),
		CoRunner:  coRunner.Name,
		Milestone: milestone,
	}
	next := milestone
	cpuPerBus := int64(cfg.DRAM.CPUCyclesPerBusCycle)
	for cycle := int64(0); cycle < cfg.MaxBusCycles; cycle++ {
		sys.Step()
		retired := sys.DomainInstructions(0)
		for retired >= next {
			prof.CyclesAt = append(prof.CyclesAt, (cycle+1)*cpuPerBus)
			prof.Instruction = append(prof.Instruction, next)
			next += milestone
		}
		if retired >= totalInstr {
			return prof, nil
		}
	}
	return prof, fmt.Errorf("leakage: attacker retired only %d of %d instructions before the cycle budget",
		sys.DomainInstructions(0), totalInstr)
}

// Divergence returns the maximum absolute difference between two profiles'
// milestone times, normalized by the larger final time. Zero means the
// attacker's observable progress is identical — the paper's
// non-interference claim.
func Divergence(a, b Profile) (float64, error) {
	n := len(a.CyclesAt)
	if len(b.CyclesAt) < n {
		n = len(b.CyclesAt)
	}
	if n == 0 {
		return 0, fmt.Errorf("leakage: empty profile")
	}
	var maxDiff float64
	for i := 0; i < n; i++ {
		d := math.Abs(float64(a.CyclesAt[i] - b.CyclesAt[i]))
		if d > maxDiff {
			maxDiff = d
		}
	}
	den := float64(a.CyclesAt[n-1])
	if f := float64(b.CyclesAt[n-1]); f > den {
		den = f
	}
	return maxDiff / den, nil
}

// Identical reports whether two profiles are bit-identical over their
// common prefix (the strict form of non-interference).
func Identical(a, b Profile) bool {
	n := len(a.CyclesAt)
	if len(b.CyclesAt) < n {
		n = len(b.CyclesAt)
	}
	for i := 0; i < n; i++ {
		if a.CyclesAt[i] != b.CyclesAt[i] {
			return false
		}
	}
	return n > 0
}

// EpochDurations converts a profile into per-milestone durations, the
// attacker's observable samples.
func EpochDurations(p Profile) []float64 {
	out := make([]float64, 0, len(p.CyclesAt))
	prev := int64(0)
	for _, c := range p.CyclesAt {
		out = append(out, float64(c-prev))
		prev = c
	}
	return out
}

// MutualInformationBits estimates I(victim class; epoch duration) in bits
// with a plug-in histogram estimator: samples from class 0 and class 1 are
// the attacker's epoch durations under two victim behaviors. Zero bits
// means the observable distribution carries no information about the
// victim; for a binary secret the maximum is 1 bit.
func MutualInformationBits(class0, class1 []float64, bins int) float64 {
	if bins <= 0 || len(class0) == 0 || len(class1) == 0 {
		return 0
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, xs := range [][]float64{class0, class1} {
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
	}
	if hi <= lo {
		// All observations identical: the channel is provably silent.
		return 0
	}
	width := (hi - lo) / float64(bins)
	hist := func(xs []float64) []float64 {
		h := make([]float64, bins)
		for _, x := range xs {
			i := int((x - lo) / width)
			if i >= bins {
				i = bins - 1
			}
			h[i]++
		}
		for i := range h {
			h[i] /= float64(len(xs))
		}
		return h
	}
	h0, h1 := hist(class0), hist(class1)
	// Equal class priors.
	mi := 0.0
	for i := 0; i < bins; i++ {
		m := (h0[i] + h1[i]) / 2
		for _, p := range []float64{h0[i], h1[i]} {
			if p > 0 && m > 0 {
				mi += 0.5 * p * math.Log2(p/m)
			}
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}

// KolmogorovSmirnov returns the two-sample KS statistic between the
// attacker's epoch-duration distributions under two victim behaviors:
// sup_x |F0(x) - F1(x)|, in [0, 1]. Zero means the distributions are
// indistinguishable; the baseline controller typically scores near 1.
func KolmogorovSmirnov(class0, class1 []float64) float64 {
	if len(class0) == 0 || len(class1) == 0 {
		return 0
	}
	s0 := append([]float64(nil), class0...)
	s1 := append([]float64(nil), class1...)
	sort.Float64s(s0)
	sort.Float64s(s1)
	var i, j int
	var d float64
	for i < len(s0) && j < len(s1) {
		// Step past the smallest current value in BOTH samples, so ties
		// advance the two empirical CDFs together.
		v := s0[i]
		if s1[j] < v {
			v = s1[j]
		}
		for i < len(s0) && s0[i] == v {
			i++
		}
		for j < len(s1) && s1[j] == v {
			j++
		}
		f0 := float64(i) / float64(len(s0))
		f1 := float64(j) / float64(len(s1))
		if diff := math.Abs(f0 - f1); diff > d {
			d = diff
		}
	}
	return d
}

// CovertResult summarizes a covert-channel attempt.
type CovertResult struct {
	Scheduler string
	Bits      int
	Errors    int
	// Decoded holds the bits the receiver recovered, aligned with the
	// message.
	Decoded []bool
	// BitErrorRate 0 means a perfect channel; 0.5 means the receiver
	// learned nothing.
	BitErrorRate float64
}

// ChannelParams fully parameterizes one covert-channel attempt: the
// receiver's probe workload, the sender's per-bit profiles, the
// per-window observation length, and an optional fault plan injected
// into every window (the audit engine's anti-vacuity hook).
type ChannelParams struct {
	// Domains is the number of security domains; domain 0 is the
	// receiver, every other domain runs the sender profile.
	Domains int
	// Probe is the receiver's steady load; On and Off are the sender's
	// profiles for a 1 and a 0 bit respectively.
	Probe, On, Off workload.Profile
	// WindowBusCycles is the fixed per-bit observation window.
	WindowBusCycles int64
	// Seed is the simulation seed, identical for every window so the
	// sender's behavior is the only varying input.
	Seed uint64
	// Fault, when non-nil, runs every window under the given fault plan;
	// the summed monitor verdicts surface in ChannelRun.
	Fault *fault.Plan
	// Channels selects the memory-fabric width; zero or one is the
	// classic single-channel machine. Routing picks how requests map to
	// channels (colored keeps domains on disjoint channels, interleaved
	// stripes every domain across all of them — the configuration whose
	// cross-channel contention the audit engine must flag).
	Channels int
	Routing  addr.Routing
}

// ChannelRun is a decoded covert-channel attempt plus the raw per-window
// observables the statistical certification runs on.
type ChannelRun struct {
	Result CovertResult
	// Durations holds the receiver's observable per window (instructions
	// retired in the fixed window), aligned with the message.
	Durations []float64
	// Class0 and Class1 split Durations by the bit the sender transmitted.
	Class0, Class1 []float64
	// MonitorViolations sums the always-on runtime monitor's verdicts
	// (timing + schedule + scheduler violations) across every window. A
	// nonzero count means the runs cannot certify anything: the premises
	// of the non-interference argument did not hold while measuring.
	MonitorViolations int
}

// RunChannel runs the parameterized covert channel: domain 0 times a fixed
// probe loop per window while every other domain replays the On profile
// for a 1 bit and the Off profile for a 0 bit; the receiver thresholds its
// window observable halfway between the fastest and slowest windows (the
// calibration a real attacker would do). One simulation per window, all
// with the same seed, so the sender's modulation is the only varying
// input — exactly a sender flipping load phases.
func RunChannel(k sim.SchedulerKind, message []bool, p ChannelParams) (ChannelRun, error) {
	if p.WindowBusCycles <= 0 {
		return ChannelRun{}, fsmerr.New(fsmerr.CodeConfig, "leakage.RunChannel",
			"window must be positive, got %d bus cycles", p.WindowBusCycles)
	}
	if p.Domains < 2 {
		return ChannelRun{}, fsmerr.New(fsmerr.CodeConfig, "leakage.RunChannel",
			"covert channel needs a receiver and at least one sender domain, got %d", p.Domains)
	}
	if len(message) == 0 {
		return ChannelRun{}, fsmerr.New(fsmerr.CodeConfig, "leakage.RunChannel", "empty message")
	}

	run := ChannelRun{Durations: make([]float64, len(message))}
	for i, bit := range message {
		victim := p.Off
		if bit {
			victim = p.On
		}
		mix := workload.Mix{Name: "covert", Profiles: make([]workload.Profile, p.Domains)}
		mix.Profiles[0] = p.Probe
		for d := 1; d < p.Domains; d++ {
			mix.Profiles[d] = victim
		}
		cfg := sim.DefaultConfig(mix, k)
		cfg.Seed = p.Seed
		cfg.TargetReads = 0
		cfg.MaxBusCycles = p.WindowBusCycles
		cfg.Fault = p.Fault
		cfg.Channels = p.Channels
		cfg.Routing = p.Routing
		res, err := sim.Simulate(cfg)
		if err != nil {
			return ChannelRun{}, err
		}
		// Receiver observable: its own progress in the fixed window.
		run.Durations[i] = float64(res.Run.Domains[0].Instructions)
		if m := res.Monitor; m != nil {
			run.MonitorViolations += m.TimingViolations + m.ScheduleViolations + m.SchedulerViolations
		}
	}

	// Threshold halfway between the fastest and slowest windows. A
	// degenerate spread means the channel carried nothing; everything
	// decodes to 0.
	min, max := run.Durations[0], run.Durations[0]
	for _, d := range run.Durations {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	thr := (min + max) / 2
	errors := 0
	decoded := make([]bool, len(message))
	for i, bit := range message {
		rx := max > min && run.Durations[i] < thr // contention slows the receiver
		decoded[i] = rx
		if rx != bit {
			errors++
		}
		if bit {
			run.Class1 = append(run.Class1, run.Durations[i])
		} else {
			run.Class0 = append(run.Class0, run.Durations[i])
		}
	}
	run.Result = CovertResult{
		Scheduler:    k.String(),
		Bits:         len(message),
		Errors:       errors,
		Decoded:      decoded,
		BitErrorRate: float64(errors) / float64(len(message)),
	}
	return run, nil
}

// CovertChannel runs the §2.2-style covert channel with the classic
// burst/idle sender and a fixed probe receiver: the single strategy the
// evaluation always reports. The audit engine generalizes it through
// RunChannel with a whole strategy library. A non-positive window is a
// CodeConfig error rather than a silent zero-window run.
func CovertChannel(k sim.SchedulerKind, domains int, message []bool, windowBusCycles int64, seed uint64) (CovertResult, error) {
	run, err := RunChannel(k, message, ChannelParams{
		Domains:         domains,
		Probe:           workload.Synthetic("probe", 25),
		On:              workload.Synthetic("burst", 40),
		Off:             workload.Synthetic("quiet", 0.01),
		WindowBusCycles: windowBusCycles,
		Seed:            seed,
	})
	if err != nil {
		return CovertResult{}, err
	}
	return run.Result, nil
}
