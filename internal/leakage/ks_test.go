package leakage

import (
	"testing"

	"fsmem/internal/sim"
)

func TestKolmogorovSmirnovEstimator(t *testing.T) {
	same := []float64{1, 2, 3, 4, 5}
	if d := KolmogorovSmirnov(same, same); d != 0 {
		t.Errorf("KS(same, same) = %v, want 0", d)
	}
	lo := []float64{1, 1.2, 0.8, 1.1}
	hi := []float64{10, 10.2, 9.8, 10.1}
	if d := KolmogorovSmirnov(lo, hi); d != 1 {
		t.Errorf("KS(separated) = %v, want 1", d)
	}
	if d := KolmogorovSmirnov(nil, hi); d != 0 {
		t.Errorf("KS(nil, x) = %v, want 0", d)
	}
	// Overlapping distributions land strictly between.
	a := []float64{1, 2, 3, 4, 5, 6}
	b := []float64{4, 5, 6, 7, 8, 9}
	if d := KolmogorovSmirnov(a, b); d <= 0 || d >= 1 {
		t.Errorf("KS(overlap) = %v, want in (0,1)", d)
	}
}

func TestKolmogorovSmirnovOnSchedulers(t *testing.T) {
	base0 := collect(t, sim.Baseline, 0.01)
	base1 := collect(t, sim.Baseline, 45)
	fs0 := collect(t, sim.FSRankPart, 0.01)
	fs1 := collect(t, sim.FSRankPart, 45)
	ksBase := KolmogorovSmirnov(EpochDurations(base0), EpochDurations(base1))
	ksFS := KolmogorovSmirnov(EpochDurations(fs0), EpochDurations(fs1))
	t.Logf("KS statistic: baseline %.3f, FS_RP %.3f", ksBase, ksFS)
	if ksFS != 0 {
		t.Errorf("FS KS statistic %v, want exactly 0", ksFS)
	}
	if ksBase < 0.5 {
		t.Errorf("baseline KS statistic %v, want clearly separated distributions", ksBase)
	}
}
