package leakage

import (
	"math"
	"sort"
	"testing"

	"fsmem/internal/fsmerr"
	"fsmem/internal/trace"
)

func ksStat(a, b []float64) float64 { return KolmogorovSmirnov(a, b) }

func miStat(a, b []float64) float64 { return MutualInformationBits(a, b, 16) }

// gaussianish draws n deterministic samples from a fixed unimodal
// distribution (sum of uniforms), shifted by loc.
func gaussianish(rng *trace.RNG, n int, loc float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		s := 0.0
		for k := 0; k < 4; k++ {
			s += rng.Float64()
		}
		out[i] = loc + s
	}
	return out
}

// Under the same-distribution null, permutation p-values must be
// (roughly) uniform on (0, 1]: that is the whole point of calibrating
// "zero leakage" instead of eyeballing a point estimate. Everything is
// seeded, so the assertions are exact, not flaky.
func TestPermutationPValueCalibratedUnderNull(t *testing.T) {
	for name, stat := range map[string]Statistic{"ks": ksStat, "mi": miStat} {
		rng := trace.NewRNG(0xca11b)
		const datasets = 60
		var ps []float64
		for d := 0; d < datasets; d++ {
			c0 := gaussianish(rng, 40, 0)
			c1 := gaussianish(rng, 40, 0) // same distribution: the null holds
			ps = append(ps, PermutationPValue(c0, c1, stat, 99, uint64(d)*7+1))
		}
		sort.Float64s(ps)
		// Kolmogorov distance between the empirical p-value distribution
		// and uniform(0,1]. The bound is looser than the n=60 critical
		// value (~0.21) because with 99 rounds the p-values live on a
		// 1/100 lattice and tie-heavy statistics lump them; a genuinely
		// miscalibrated test (p clustered near 0) scores far higher.
		var dmax float64
		for i, p := range ps {
			lo := math.Abs(p - float64(i)/datasets)
			hi := math.Abs(p - float64(i+1)/datasets)
			dmax = math.Max(dmax, math.Max(lo, hi))
		}
		if dmax > 0.27 {
			t.Errorf("%s: null p-values not uniform: KS distance %.3f (p-values %v...)", name, dmax, ps[:5])
		}
		// Validity is the property certificates rely on: under the null,
		// P(p <= 0.05) must not exceed ~0.05. Allow binomial noise on 60
		// datasets (3 expected; 8 is > 2 sigma above).
		reject := 0
		for _, p := range ps {
			if p <= 0.05 {
				reject++
			}
		}
		if reject > 8 {
			t.Errorf("%s: %d/%d null datasets rejected at alpha=0.05, want ~3", name, reject, datasets)
		}
		mean := 0.0
		for _, p := range ps {
			mean += p
		}
		mean /= datasets
		if mean < 0.35 || mean > 0.65 {
			t.Errorf("%s: null p-values have mean %.3f, want ~0.5", name, mean)
		}
	}
}

// A genuinely shifted alternative must be detected with the smallest
// reachable p-value.
func TestPermutationPValueDetectsShift(t *testing.T) {
	rng := trace.NewRNG(0x5eed)
	c0 := gaussianish(rng, 50, 0)
	c1 := gaussianish(rng, 50, 5) // disjoint supports
	p := PermutationPValue(c0, c1, ksStat, 199, 3)
	if want := 1.0 / 200; p != want {
		t.Fatalf("shifted alternative: p = %v, want %v", p, want)
	}
}

// Identical observations mean a provably silent channel: p must be
// exactly 1, never "significant".
func TestPermutationPValueSilentChannel(t *testing.T) {
	c0 := []float64{7, 7, 7, 7}
	c1 := []float64{7, 7, 7, 7}
	if p := PermutationPValue(c0, c1, ksStat, 100, 9); p != 1 {
		t.Fatalf("silent channel: p = %v, want 1", p)
	}
}

func TestPermutationPValueDeterministic(t *testing.T) {
	rng := trace.NewRNG(11)
	c0 := gaussianish(rng, 30, 0)
	c1 := gaussianish(rng, 30, 0.5)
	a := PermutationPValue(c0, c1, ksStat, 99, 42)
	b := PermutationPValue(c0, c1, ksStat, 99, 42)
	if a != b {
		t.Fatalf("same seed, different p: %v vs %v", a, b)
	}
	c := PermutationPValue(c0, c1, ksStat, 99, 43)
	if a == c {
		t.Log("different seeds gave the same p (possible, but worth a look)")
	}
}

// Miller–Madow must correct the plug-in estimator toward zero on null
// data (the plug-in's upward bias is the artifact being removed) and
// never exceed it.
func TestMillerMadowShrinksPlugIn(t *testing.T) {
	rng := trace.NewRNG(0xbead)
	for i := 0; i < 10; i++ {
		c0 := gaussianish(rng, 40, 0)
		c1 := gaussianish(rng, 40, 0)
		plug := MutualInformationBits(c0, c1, 16)
		mm := MutualInformationMillerMadow(c0, c1, 16)
		if mm > plug+1e-12 {
			t.Fatalf("dataset %d: Miller–Madow %v exceeds plug-in %v", i, mm, plug)
		}
		if mm < 0 {
			t.Fatalf("dataset %d: negative corrected MI %v", i, mm)
		}
	}
}

// On a strong alternative the correction must not destroy the signal.
func TestMillerMadowKeepsRealSignal(t *testing.T) {
	rng := trace.NewRNG(0xfeed)
	c0 := gaussianish(rng, 200, 0)
	c1 := gaussianish(rng, 200, 10)
	mm := MutualInformationMillerMadow(c0, c1, 16)
	if mm < 0.8 {
		t.Fatalf("disjoint classes: corrected MI %v, want ~1 bit", mm)
	}
	if c0[0] == c1[0] {
		t.Fatal("test data degenerate")
	}
}

func TestMillerMadowSilent(t *testing.T) {
	if mm := MutualInformationMillerMadow([]float64{3, 3}, []float64{3, 3}, 16); mm != 0 {
		t.Fatalf("silent channel: corrected MI %v, want 0", mm)
	}
}

// The CovertChannel wrapper must reject a non-positive window with a
// typed config error instead of silently running zero windows.
func TestCovertChannelRejectsBadWindow(t *testing.T) {
	for _, w := range []int64{0, -5} {
		_, err := CovertChannel(0, 4, []bool{true, false}, w, 1)
		if err == nil {
			t.Fatalf("window %d: no error", w)
		}
		if code := fsmerr.CodeOf(err); code != fsmerr.CodeConfig {
			t.Fatalf("window %d: error code %q, want %q (%v)", w, code, fsmerr.CodeConfig, err)
		}
	}
}
