// Package energy implements a Micron-power-calculator-style DDR3 energy
// model: per-operation energies derived from IDD currents, plus background
// power in active/precharge standby and power-down states, driven by the
// simulator's event counts. Absolute joules are representative of a 4Gb
// DDR3-1600 part; the figures only compare schemes, which the model's
// ratios preserve.
package energy

import (
	"fsmem/internal/core"
	"fsmem/internal/dram"
	"fsmem/internal/stats"
)

// IDD holds the datasheet currents (mA, per device) and voltage used by the
// Micron power methodology.
type IDD struct {
	VDD   float64 // supply voltage, V
	IDD0  float64 // one-bank ACT-PRE current
	IDD2N float64 // precharge standby
	IDD2P float64 // precharge power-down
	IDD3N float64 // active standby
	IDD4R float64 // burst read
	IDD4W float64 // burst write
	IDD5  float64 // refresh

	DevicesPerRank int // DRAM chips ganged per rank (x8 -> 8 devices)
}

// DDR3_4Gb returns typical DDR3-1600 4Gb x8 datasheet values.
func DDR3_4Gb() IDD {
	return IDD{
		VDD:            1.5,
		IDD0:           95,
		IDD2N:          42,
		IDD2P:          12,
		IDD3N:          55,
		IDD4R:          180,
		IDD4W:          185,
		IDD5:           215,
		DevicesPerRank: 8,
	}
}

// Model converts event counts into energy for a given clock.
type Model struct {
	P   dram.Params
	Cur IDD

	busHz float64 // bus clock (cycles per second)
}

// NewModel builds the energy model for the DDR3-1600 bus clock (800 MHz).
func NewModel(p dram.Params, cur IDD) *Model {
	return &Model{P: p, Cur: cur, busHz: 800e6}
}

func (m *Model) cyc() float64 { return 1.0 / m.busHz } // seconds per bus cycle

// rankWatts converts a per-device current to rank watts.
func (m *Model) rankWatts(mA float64) float64 {
	return mA / 1000.0 * m.Cur.VDD * float64(m.Cur.DevicesPerRank)
}

// ActivateEnergy returns joules for one ACT+PRE pair across the rank:
// (IDD0 - IDD3N) * tRC worth of charge above active standby.
func (m *Model) ActivateEnergy() float64 {
	return m.rankWatts(m.Cur.IDD0-m.Cur.IDD3N) * float64(m.P.TRC) * m.cyc()
}

// ReadEnergy returns joules for one read burst above standby.
func (m *Model) ReadEnergy() float64 {
	return m.rankWatts(m.Cur.IDD4R-m.Cur.IDD3N) * float64(m.P.TBURST) * m.cyc()
}

// WriteEnergy returns joules for one write burst above standby.
func (m *Model) WriteEnergy() float64 {
	return m.rankWatts(m.Cur.IDD4W-m.Cur.IDD3N) * float64(m.P.TBURST) * m.cyc()
}

// RefreshEnergy returns joules for one refresh.
func (m *Model) RefreshEnergy() float64 {
	return m.rankWatts(m.Cur.IDD5-m.Cur.IDD2N) * float64(m.P.TRFC) * m.cyc()
}

// Breakdown is the energy of one run split by source.
type Breakdown struct {
	ActivateJ   float64
	ReadJ       float64
	WriteJ      float64
	RefreshJ    float64
	BackgroundJ float64
	Total       float64
}

// ForRun computes the energy of a simulation run. fsStats may be nil for
// non-FS schedulers; when present, row-buffer boosts subtract elided
// ACT+PRE pairs and power-down cycles swap standby for power-down current.
func (m *Model) ForRun(run stats.Run, fsStats *core.FSStats) Breakdown {
	var b Breakdown
	c := run.Channel

	b.ActivateJ = float64(c.Acts) * m.ActivateEnergy()
	b.ReadJ = float64(c.Reads) * m.ReadEnergy()
	b.WriteJ = float64(c.Writes) * m.WriteEnergy()
	b.RefreshJ = float64(c.Refreshes) * m.RefreshEnergy()

	// Background: approximate each rank as active standby while the channel
	// is busy in proportion to its share of traffic, precharge standby
	// otherwise. With closed-page FS policies banks spend most time
	// precharged; with the open-page baseline rows stay open. We scale
	// between IDD3N and IDD2N by the channel's activity duty cycle.
	seconds := float64(run.BusCycles) * m.cyc()
	duty := 0.0
	if run.BusCycles > 0 {
		duty = float64(c.DataBusBusy) / float64(run.BusCycles)
		if duty > 1 {
			duty = 1
		}
	}
	standbyW := m.rankWatts(m.Cur.IDD2N) + duty*(m.rankWatts(m.Cur.IDD3N)-m.rankWatts(m.Cur.IDD2N))
	ranks := float64(m.P.RanksPerChan)

	var pdSeconds float64
	if fsStats != nil {
		// Row-buffer boosts elided an ACT+PRE pair each.
		b.ActivateJ -= float64(fsStats.RowHitBoosts) * m.ActivateEnergy()
		if b.ActivateJ < 0 {
			b.ActivateJ = 0
		}
		for _, cycles := range fsStats.PowerDownCycles {
			pdSeconds += float64(cycles) * m.cyc()
		}
	}
	activeRankSeconds := seconds*ranks - pdSeconds
	if activeRankSeconds < 0 {
		activeRankSeconds = 0
	}
	b.BackgroundJ = activeRankSeconds*standbyW + pdSeconds*m.rankWatts(m.Cur.IDD2P)

	b.Total = b.ActivateJ + b.ReadJ + b.WriteJ + b.RefreshJ + b.BackgroundJ
	return b
}

// PerRead returns energy per serviced demand read, the normalized metric
// Figures 8 and 9 compare (energy normalized to work done).
func PerRead(b Breakdown, run stats.Run) float64 {
	reads := run.TotalReads()
	if reads == 0 {
		return 0
	}
	return b.Total / float64(reads)
}
