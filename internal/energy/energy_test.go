package energy

import (
	"testing"

	"fsmem/internal/core"
	"fsmem/internal/dram"
	"fsmem/internal/stats"
)

func model() *Model { return NewModel(dram.DDR3_1600(), DDR3_4Gb()) }

func TestPerOperationEnergiesPlausible(t *testing.T) {
	m := model()
	// Representative DDR3 figures: an ACT+PRE pair costs a few nJ across
	// the rank; a burst costs a few nJ. Sanity-band them.
	if e := m.ActivateEnergy(); e < 1e-10 || e > 1e-7 {
		t.Errorf("ActivateEnergy %.3g J implausible", e)
	}
	if e := m.ReadEnergy(); e < 1e-11 || e > 1e-8 {
		t.Errorf("ReadEnergy %.3g J implausible", e)
	}
	if m.WriteEnergy() <= m.ReadEnergy()*0.5 || m.WriteEnergy() >= m.ReadEnergy()*2 {
		t.Errorf("write energy %.3g vs read %.3g out of family", m.WriteEnergy(), m.ReadEnergy())
	}
	if m.RefreshEnergy() <= m.ActivateEnergy() {
		t.Errorf("a refresh (%.3g) should cost more than one activate (%.3g)", m.RefreshEnergy(), m.ActivateEnergy())
	}
}

func runWith(acts, reads, writes, busy, cycles int64) stats.Run {
	return stats.Run{
		BusCycles: cycles,
		Domains:   []stats.Domain{{Reads: reads}},
		Channel:   dram.Counters{Acts: acts, Reads: reads, Writes: writes, DataBusBusy: busy},
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	m := model()
	b := m.ForRun(runWith(100, 80, 20, 400, 10000), nil)
	sum := b.ActivateJ + b.ReadJ + b.WriteJ + b.RefreshJ + b.BackgroundJ
	if diff := b.Total - sum; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("Total %.3g != sum %.3g", b.Total, sum)
	}
	if b.Total <= 0 {
		t.Error("non-empty run must consume energy")
	}
}

func TestMoreActivityMoreEnergy(t *testing.T) {
	m := model()
	small := m.ForRun(runWith(100, 80, 20, 400, 10000), nil)
	big := m.ForRun(runWith(200, 160, 40, 800, 10000), nil)
	if big.Total <= small.Total {
		t.Errorf("doubling activity should raise energy: %.3g vs %.3g", big.Total, small.Total)
	}
}

func TestRowHitBoostsReduceActivateEnergy(t *testing.T) {
	m := model()
	run := runWith(100, 80, 20, 400, 10000)
	plain := m.ForRun(run, nil)
	boosted := m.ForRun(run, &core.FSStats{RowHitBoosts: 40, PowerDownCycles: make([]int64, 8)})
	want := plain.ActivateJ - 40*m.ActivateEnergy()
	if diff := boosted.ActivateJ - want; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("boosted activate energy %.3g, want %.3g", boosted.ActivateJ, want)
	}
	// Boosts can never drive activate energy negative.
	over := m.ForRun(run, &core.FSStats{RowHitBoosts: 10000, PowerDownCycles: make([]int64, 8)})
	if over.ActivateJ < 0 {
		t.Error("activate energy went negative")
	}
}

func TestPowerDownReducesBackground(t *testing.T) {
	m := model()
	run := runWith(100, 80, 20, 400, 10000)
	pd := make([]int64, 8)
	pd[0] = 8000 // rank 0 powered down most of the run
	with := m.ForRun(run, &core.FSStats{PowerDownCycles: pd})
	without := m.ForRun(run, &core.FSStats{PowerDownCycles: make([]int64, 8)})
	if with.BackgroundJ >= without.BackgroundJ {
		t.Errorf("power-down should cut background energy: %.3g vs %.3g", with.BackgroundJ, without.BackgroundJ)
	}
}

func TestPerRead(t *testing.T) {
	m := model()
	run := runWith(100, 80, 20, 400, 10000)
	b := m.ForRun(run, nil)
	if got := PerRead(b, run); got <= 0 {
		t.Errorf("PerRead = %v", got)
	}
	if PerRead(b, stats.Run{Domains: []stats.Domain{{}}}) != 0 {
		t.Error("PerRead with zero reads should be 0")
	}
}
