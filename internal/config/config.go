// Package config serializes experiment configurations as JSON, so runs can
// be captured, shared, and replayed exactly (cmd/memsim -config).
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"fsmem/internal/addr"
	"fsmem/internal/core"
	"fsmem/internal/dram"
	"fsmem/internal/fsmerr"
	"fsmem/internal/sim"
	"fsmem/internal/workload"
)

// Experiment is the JSON shape of one simulation configuration.
type Experiment struct {
	Workload  string `json:"workload"`  // benchmark name (rate mode), "mix1", or "mix2"
	Cores     int    `json:"cores"`     // domains (ignored for mixes)
	Scheduler string `json:"scheduler"` // baseline, tp_bp, tp_np, fs_rp, fs_bp, fs_reordered_bp, fs_np, fs_np_optimized
	DRAM      string `json:"dram"`      // "ddr3-1600" (default) or "ddr4-2400"

	Reads        int64  `json:"reads"`
	Seed         uint64 `json:"seed"`
	Prefetch     bool   `json:"prefetch,omitempty"`
	Refresh      bool   `json:"refresh,omitempty"`
	TPTurnLength int64  `json:"tp_turn_length,omitempty"`
	SLAWeights   []int  `json:"sla_weights,omitempty"`

	// Channels widens the memory fabric (0 or 1 = classic single channel);
	// Routing is "colored" (default) or "interleaved" and only meaningful
	// with Channels > 1.
	Channels int    `json:"channels,omitempty"`
	Routing  string `json:"routing,omitempty"`

	EnergyOpts struct {
		SuppressDummies bool `json:"suppress_dummies,omitempty"`
		RowBufferBoost  bool `json:"row_buffer_boost,omitempty"`
		PowerDown       bool `json:"power_down,omitempty"`
	} `json:"energy_opts,omitempty"`
}

var schedulers = map[string]sim.SchedulerKind{
	"baseline":        sim.Baseline,
	"tp_bp":           sim.TPBank,
	"tp_np":           sim.TPNone,
	"fs_rp":           sim.FSRankPart,
	"fs_bp":           sim.FSBankPart,
	"fs_reordered_bp": sim.FSReorderedBank,
	"fs_np":           sim.FSNoPart,
	"fs_np_optimized": sim.FSNoPartTriple,
}

// SchedulerByName resolves one of the accepted scheduler strings
// (case-insensitively) to its kind.
func SchedulerByName(name string) (sim.SchedulerKind, bool) {
	k, ok := schedulers[strings.ToLower(name)]
	return k, ok
}

// SchedulerNames lists the accepted scheduler strings.
func SchedulerNames() []string {
	names := make([]string, 0, len(schedulers))
	for k := range schedulers {
		names = append(names, k)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// Default returns a runnable starting configuration.
func Default() Experiment {
	e := Experiment{
		Workload:  "mcf",
		Cores:     8,
		Scheduler: "fs_rp",
		DRAM:      "ddr3-1600",
		Reads:     50_000,
		Seed:      42,
	}
	return e
}

// Load parses an experiment from JSON, rejecting unknown fields.
func Load(r io.Reader) (Experiment, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var e Experiment
	if err := dec.Decode(&e); err != nil {
		return e, fmt.Errorf("config: %w", err)
	}
	return e, nil
}

// Save writes the experiment as indented JSON.
func (e Experiment) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// ToSimConfig validates and converts the experiment to a sim.Config.
func (e Experiment) ToSimConfig() (sim.Config, error) {
	k, ok := schedulers[strings.ToLower(e.Scheduler)]
	if !ok {
		return sim.Config{}, fmt.Errorf("config: unknown scheduler %q (options: %s)",
			e.Scheduler, strings.Join(SchedulerNames(), ", "))
	}

	var params dram.Params
	switch strings.ToLower(e.DRAM) {
	case "", "ddr3-1600", "ddr3":
		params = dram.DDR3_1600()
	case "ddr4-2400", "ddr4":
		params = dram.DDR4_2400()
	default:
		return sim.Config{}, fmt.Errorf("config: unknown dram %q (ddr3-1600 or ddr4-2400)", e.DRAM)
	}

	cores := e.Cores
	if cores == 0 {
		cores = 8
	}
	if cores < 1 || cores > workload.MaxCores {
		return sim.Config{}, fmt.Errorf("config: cores %d out of range [1, %d]", e.Cores, workload.MaxCores)
	}
	var mix workload.Mix
	var err error
	switch e.Workload {
	case "mix1":
		mix, err = workload.Mix1()
		if err != nil {
			return sim.Config{}, err
		}
	case "mix2":
		mix, err = workload.Mix2()
		if err != nil {
			return sim.Config{}, err
		}
	default:
		mix, err = workload.Rate(e.Workload, cores)
		if err != nil {
			return sim.Config{}, err
		}
	}

	// Fabric shape: reject bad channel/routing combinations here with
	// typed errors, before a sim.Config escapes into a job queue or a
	// saved experiment file.
	if e.Channels < 0 {
		return sim.Config{}, fsmerr.New(fsmerr.CodeConfig, "config.ToSimConfig",
			"channels must be non-negative, got %d", e.Channels)
	}
	routing := addr.RouteColored
	if e.Routing != "" {
		routing, err = addr.RoutingByName(e.Routing)
		if err != nil {
			return sim.Config{}, fsmerr.New(fsmerr.CodeConfig, "config.ToSimConfig",
				"routing %q: want colored or interleaved", e.Routing)
		}
		if e.Channels <= 1 {
			return sim.Config{}, fsmerr.New(fsmerr.CodeConfig, "config.ToSimConfig",
				"routing %q requires channels > 1, got %d", e.Routing, e.Channels)
		}
	}
	if e.Channels > 1 && routing == addr.RouteColored && len(mix.Profiles)%e.Channels != 0 {
		return sim.Config{}, fsmerr.New(fsmerr.CodeConfig, "config.ToSimConfig",
			"%d domains do not split evenly over %d colored channels",
			len(mix.Profiles), e.Channels)
	}

	cfg := sim.DefaultConfig(mix, k)
	cfg.DRAM = params
	cfg.Channels = e.Channels
	cfg.Routing = routing
	if e.Reads > 0 {
		cfg.TargetReads = e.Reads
	}
	if e.Seed != 0 {
		cfg.Seed = e.Seed
	}
	cfg.Prefetch = e.Prefetch
	cfg.RefreshEnabled = e.Refresh
	cfg.TPTurnLength = e.TPTurnLength
	cfg.SLAWeights = e.SLAWeights
	cfg.Energy = core.EnergyOpts{
		SuppressDummies: e.EnergyOpts.SuppressDummies,
		RowBufferBoost:  e.EnergyOpts.RowBufferBoost,
		PowerDown:       e.EnergyOpts.PowerDown,
	}
	return cfg, nil
}
