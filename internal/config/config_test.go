package config

import (
	"bytes"
	"strings"
	"testing"

	"fsmem/internal/addr"
	"fsmem/internal/fsmerr"
	"fsmem/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	e := Default()
	e.Scheduler = "fs_reordered_bp"
	e.SLAWeights = []int{2, 1, 1, 1, 1, 1, 1, 1}
	e.EnergyOpts.SuppressDummies = true
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scheduler != e.Scheduler || got.Reads != e.Reads || !got.EnergyOpts.SuppressDummies {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if len(got.SLAWeights) != 8 {
		t.Fatalf("weights lost: %+v", got.SLAWeights)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"workload":"mcf","typo_field":1}`)); err == nil {
		t.Fatal("unknown field should be rejected")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Fatal("bad JSON should be rejected")
	}
}

func TestToSimConfig(t *testing.T) {
	e := Default()
	cfg, err := e.ToSimConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scheduler != sim.FSRankPart || len(cfg.Mix.Profiles) != 8 || cfg.TargetReads != 50_000 {
		t.Fatalf("conversion wrong: %+v", cfg)
	}

	e.DRAM = "ddr4-2400"
	cfg, err = e.ToSimConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DRAM.BankGroups != 4 {
		t.Error("DDR4 params not selected")
	}

	e.Workload = "mix1"
	cfg, err = e.ToSimConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mix.Name != "mix1" || len(cfg.Mix.Profiles) != 8 {
		t.Error("mix1 not resolved")
	}
}

func TestToSimConfigErrors(t *testing.T) {
	e := Default()
	e.Scheduler = "nope"
	if _, err := e.ToSimConfig(); err == nil {
		t.Error("unknown scheduler should fail")
	}
	e = Default()
	e.DRAM = "ddr5"
	if _, err := e.ToSimConfig(); err == nil {
		t.Error("unknown dram should fail")
	}
	e = Default()
	e.Workload = "nope"
	if _, err := e.ToSimConfig(); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestToSimConfigFabric(t *testing.T) {
	e := Default()
	e.Channels = 4
	e.Routing = "interleaved"
	cfg, err := e.ToSimConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Channels != 4 || cfg.Routing != addr.RouteInterleaved {
		t.Fatalf("fabric shape lost: channels=%d routing=%v", cfg.Channels, cfg.Routing)
	}

	// Default routing is colored, and it survives a JSON round trip.
	e = Default()
	e.Channels = 2
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err = got.ToSimConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Channels != 2 || cfg.Routing != addr.RouteColored {
		t.Fatalf("round-tripped fabric shape wrong: channels=%d routing=%v", cfg.Channels, cfg.Routing)
	}
}

func TestToSimConfigFabricErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Experiment)
	}{
		{"negative channels", func(e *Experiment) { e.Channels = -2 }},
		{"unknown routing", func(e *Experiment) { e.Channels = 2; e.Routing = "striped" }},
		{"routing without fabric", func(e *Experiment) { e.Routing = "interleaved" }},
		{"uneven coloring", func(e *Experiment) { e.Cores = 6; e.Channels = 4 }},
	}
	for _, tc := range cases {
		e := Default()
		tc.mut(&e)
		_, err := e.ToSimConfig()
		if err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
			continue
		}
		if fsmerr.CodeOf(err) != fsmerr.CodeConfig {
			t.Errorf("%s: want CodeConfig, got %v (%v)", tc.name, fsmerr.CodeOf(err), err)
		}
	}

	// Interleaved routing has no divisibility constraint: 6 cores over 4
	// channels is fine when lines stripe by address.
	e := Default()
	e.Cores = 6
	e.Channels = 4
	e.Routing = "interleaved"
	if _, err := e.ToSimConfig(); err != nil {
		t.Fatalf("interleaved 6/4 should be accepted: %v", err)
	}
}

func TestConfiguredRunExecutes(t *testing.T) {
	e := Default()
	e.Reads = 1000
	cfg, err := e.ToSimConfig()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.TotalReads() < 1000 {
		t.Fatalf("run completed %d reads", res.Run.TotalReads())
	}
}

func TestSchedulerNamesSorted(t *testing.T) {
	names := SchedulerNames()
	if len(names) != 8 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names unsorted: %v", names)
		}
	}
}
