package config

import (
	"bytes"
	"strings"
	"testing"

	"fsmem/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	e := Default()
	e.Scheduler = "fs_reordered_bp"
	e.SLAWeights = []int{2, 1, 1, 1, 1, 1, 1, 1}
	e.EnergyOpts.SuppressDummies = true
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scheduler != e.Scheduler || got.Reads != e.Reads || !got.EnergyOpts.SuppressDummies {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if len(got.SLAWeights) != 8 {
		t.Fatalf("weights lost: %+v", got.SLAWeights)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"workload":"mcf","typo_field":1}`)); err == nil {
		t.Fatal("unknown field should be rejected")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Fatal("bad JSON should be rejected")
	}
}

func TestToSimConfig(t *testing.T) {
	e := Default()
	cfg, err := e.ToSimConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scheduler != sim.FSRankPart || len(cfg.Mix.Profiles) != 8 || cfg.TargetReads != 50_000 {
		t.Fatalf("conversion wrong: %+v", cfg)
	}

	e.DRAM = "ddr4-2400"
	cfg, err = e.ToSimConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DRAM.BankGroups != 4 {
		t.Error("DDR4 params not selected")
	}

	e.Workload = "mix1"
	cfg, err = e.ToSimConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mix.Name != "mix1" || len(cfg.Mix.Profiles) != 8 {
		t.Error("mix1 not resolved")
	}
}

func TestToSimConfigErrors(t *testing.T) {
	e := Default()
	e.Scheduler = "nope"
	if _, err := e.ToSimConfig(); err == nil {
		t.Error("unknown scheduler should fail")
	}
	e = Default()
	e.DRAM = "ddr5"
	if _, err := e.ToSimConfig(); err == nil {
		t.Error("unknown dram should fail")
	}
	e = Default()
	e.Workload = "nope"
	if _, err := e.ToSimConfig(); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestConfiguredRunExecutes(t *testing.T) {
	e := Default()
	e.Reads = 1000
	cfg, err := e.ToSimConfig()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.TotalReads() < 1000 {
		t.Fatalf("run completed %d reads", res.Run.TotalReads())
	}
}

func TestSchedulerNamesSorted(t *testing.T) {
	names := SchedulerNames()
	if len(names) != 8 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names unsorted: %v", names)
		}
	}
}
