package config

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad drives the JSON experiment parser with arbitrary bytes: it must
// never panic, and anything it accepts must survive a save/load round trip
// and a ToSimConfig call (which validates or rejects, never panics).
func FuzzLoad(f *testing.F) {
	f.Add([]byte(`{"workload":"mcf","cores":8,"scheduler":"fs_rp","reads":1000,"seed":42}`))
	f.Add([]byte(`{"workload":"mix1","scheduler":"baseline","dram":"ddr4-2400"}`))
	f.Add([]byte(`{"workload":"milc","cores":2,"scheduler":"tp_bp","tp_turn_length":25}`))
	f.Add([]byte(`{"workload":"mcf","scheduler":"fs_bp","sla_weights":[2,1],"energy_opts":{"suppress_dummies":true}}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"cores":-1,"reads":-5,"scheduler":"fs_rp","workload":"mcf"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted experiments must be re-serializable...
		var buf strings.Builder
		if err := e.Save(&buf); err != nil {
			t.Fatalf("accepted experiment failed to save: %v", err)
		}
		e2, err := Load(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("saved experiment failed to reload: %v\n%s", err, buf.String())
		}
		if e2.Scheduler != e.Scheduler || e2.Workload != e.Workload || e2.Cores != e.Cores {
			t.Fatalf("round trip changed the experiment: %+v vs %+v", e, e2)
		}
		// ...and conversion must classify, never panic (errors are fine:
		// unknown workloads/schedulers are data, not bugs).
		_, _ = e.ToSimConfig()
	})
}
