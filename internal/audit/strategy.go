// Strategy library: the parameterized attacker families the audit engine
// searches over, plus the neighborhood generator the adaptive loop uses to
// refine promising attacks. Every attack is a deterministic value — names
// encode the full mutation path, so per-attack seeds derived from names
// are independent of evaluation order and worker count.
package audit

import (
	"fmt"

	"fsmem/internal/workload"
)

// Attack fully parameterizes one covert-channel strategy: the receiver's
// probe profile, the sender's on/off modulation profiles, and the shared
// per-bit observation window. The struct doubles as the wire-level attack
// description inside a certificate.
type Attack struct {
	// Name identifies the strategy family and, for refined attacks, the
	// mutation path (e.g. "intensity-hi/w2/on1.5").
	Name string `json:"name"`
	// Probe is the receiver's steady workload; its progress per window is
	// the observable.
	Probe workload.Profile `json:"probe"`
	// On and Off are the sender's profiles for a 1 and a 0 bit.
	On  workload.Profile `json:"on"`
	Off workload.Profile `json:"off"`
	// WindowBusCycles is the per-bit observation window both sides agree
	// on (the receiver's integration time).
	WindowBusCycles int64 `json:"window_bus_cycles"`
}

// synth builds an attack profile with explicit spatial behavior, unlike
// workload.Synthetic which fixes locality and spread.
func synth(name string, read, write, locality float64, spread, rows int, burst float64) workload.Profile {
	return workload.Profile{
		Name:          name,
		ReadMPKI:      read,
		WriteMPKI:     write,
		RowLocality:   locality,
		BankSpread:    spread,
		Burstiness:    burst,
		FootprintRows: rows,
	}
}

// Library returns the base strategy families, all sharing the given
// default window:
//
//   - intensity-*: the classic burst/idle sender at three modulation
//     depths (the single strategy the evaluation used to report);
//   - bank-conflict: equal-intensity sender that modulates *where* it
//     hits — scattered across banks with no row reuse versus pinned to
//     one hot row — so only spatial interference distinguishes the bits;
//   - rw-mix: equal-intensity sender that modulates its read/write mix,
//     targeting bus-turnaround and write-recovery coupling;
//   - phase-*: the burst/idle sender probed at half and double the
//     receiver window, sweeping the timing alignment of the channel.
func Library(window int64) []Attack {
	probe := workload.Synthetic("probe", 25)
	burst := workload.Synthetic("burst", 40)
	quiet := workload.Synthetic("quiet", 0.01)
	return []Attack{
		{Name: "intensity-hi", Probe: probe, On: burst, Off: quiet, WindowBusCycles: window},
		{Name: "intensity-mid", Probe: probe, On: workload.Synthetic("mid", 45), Off: workload.Synthetic("low", 5), WindowBusCycles: window},
		{Name: "intensity-lo", Probe: probe, On: workload.Synthetic("soft", 24), Off: quiet, WindowBusCycles: window},
		{
			Name:  "bank-conflict",
			Probe: probe,
			On:    synth("scatter", 28, 12, 0.05, 8, 4096, 0.7),
			Off:   synth("pinned", 28, 12, 0.95, 1, 64, 0.7),

			WindowBusCycles: window,
		},
		{
			Name:  "rw-mix",
			Probe: probe,
			On:    synth("writer", 8, 32, 0.5, 4, 1024, 0.5),
			Off:   synth("reader", 32, 8, 0.5, 4, 1024, 0.5),

			WindowBusCycles: window,
		},
		{Name: "phase-half", Probe: probe, On: burst, Off: quiet, WindowBusCycles: window / 2},
		{Name: "phase-double", Probe: probe, On: burst, Off: quiet, WindowBusCycles: window * 2},
	}
}

// mutation limits: windows and intensities outside these bounds either
// cannot carry a bit or blow the campaign budget.
const (
	minWindow    = 2048
	maxWindowMul = 8
	minMPKI      = 0.01
	maxMPKI      = 80
)

func scaleProfile(p workload.Profile, f float64) workload.Profile {
	p.ReadMPKI *= f
	p.WriteMPKI *= f
	if t := p.ReadMPKI + p.WriteMPKI; t < minMPKI {
		p.ReadMPKI, p.WriteMPKI = minMPKI, 0
	} else if t > maxMPKI {
		s := maxMPKI / t
		p.ReadMPKI *= s
		p.WriteMPKI *= s
	}
	return p
}

// Neighbors generates the adaptive-search neighborhood of an attack:
// receiver window halved and doubled (receiver-side co-tuning), sender
// modulation deepened and shallowed, and receiver probe pressure scaled.
// Out-of-bounds mutations are dropped; names record the mutation so the
// same attack always evaluates under the same derived seed.
func Neighbors(a Attack, baseWindow int64) []Attack {
	var out []Attack
	add := func(n Attack, suffix string) {
		n.Name = a.Name + "/" + suffix
		out = append(out, n)
	}

	if w := a.WindowBusCycles / 2; w >= minWindow {
		n := a
		n.WindowBusCycles = w
		add(n, "w0.5")
	}
	if w := a.WindowBusCycles * 2; w <= baseWindow*maxWindowMul {
		n := a
		n.WindowBusCycles = w
		add(n, "w2")
	}
	for _, f := range []float64{1.5, 0.6} {
		n := a
		n.On = scaleProfile(a.On, f)
		add(n, fmt.Sprintf("on%g", f))
	}
	for _, f := range []float64{2, 0.5} {
		n := a
		n.Probe = scaleProfile(a.Probe, f)
		add(n, fmt.Sprintf("probe%g", f))
	}
	return out
}
