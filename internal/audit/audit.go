// Package audit is the adversarial leakage-audit engine: it attacks a
// scheduler configuration with a library of parameterized covert-channel
// strategies, adaptively refines the most promising ones, certifies the
// best attack statistically over a multi-seed campaign, and emits a
// deterministic machine-readable LeakageCertificate.
//
// The design answers the critique Gong & Kiyavash level at fixed-strategy
// leakage evaluations: a security claim only holds against the *best*
// adversary, and "zero leakage" needs calibration against the null of
// identical observable distributions, not a point estimate. The engine
// therefore searches sender modulation and receiver window jointly,
// then reports permutation-test p-values and bias-corrected mutual
// information rather than raw statistics. Anti-vacuity is built in: any
// runtime-monitor violation observed during the campaign (e.g. an
// injected timing fault breaking the Fixed Service premises) forces a
// FAIL verdict — the auditor must catch a broken implementation, not
// just bless a working one.
//
// Determinism contract: for fixed options the certificate bytes are
// identical across worker counts, process restarts, and direct-vs-daemon
// execution. Per-attack seeds derive from attack names, never from
// evaluation order; every random draw (message shuffle, permutation
// tests) is seeded from Options.Seed.
package audit

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"fsmem/internal/addr"
	"fsmem/internal/fault"
	"fsmem/internal/fsmerr"
	"fsmem/internal/leakage"
	"fsmem/internal/parallel"
	"fsmem/internal/sim"
	"fsmem/internal/trace"
)

// Campaign defaults. BusHz is DDR3-1600's 800 MHz bus clock, matching
// dram.DDR3_1600's timing grid; everything else is sized so a full
// 8-scheduler audit stays interactive while keeping the statistics sound
// (199 permutation rounds put the smallest reachable p-value at 0.005,
// well under the 0.05 gate).
const (
	DefaultDomains      = 4
	DefaultBits         = 16
	DefaultWindow       = 10_000
	DefaultSeeds        = 3
	DefaultPermutations = 199
	DefaultRounds       = 2
	DefaultTopK         = 3
	DefaultBusHz        = 800e6
	// MIBins is the histogram resolution of the MI estimators.
	MIBins = 16
	// earlyExitExploit stops the adaptive search once an attack is this
	// far from coin-flipping: the channel is already decisively broken
	// open, further refinement cannot change the verdict.
	earlyExitExploit = 0.45
)

// Options parameterizes one audit campaign. Zero values take the
// defaults above; Bits is rounded up to even so a balanced message makes
// a silent channel decode to BER exactly 0.5.
type Options struct {
	Domains int
	Bits    int
	// WindowBusCycles is the base receiver window the strategy library
	// starts from; the search explores multiples of it.
	WindowBusCycles int64
	Seed            uint64
	// Seeds is the number of certification seeds the best attack is
	// re-run under.
	Seeds        int
	Permutations int
	// Rounds bounds the adaptive refinement iterations; TopK attacks are
	// refined per round.
	Rounds int
	TopK   int
	// Workers bounds the parallel fan-out (0 = GOMAXPROCS). Certificates
	// are byte-identical for every value.
	Workers int
	BusHz   float64
	// FaultPlan, when non-empty, names a fault.CampaignPlans plan
	// injected into every window — the anti-vacuity hook.
	FaultPlan string
	FaultSeed uint64

	// Channels audits an N-channel fabric (0 or 1 = the classic
	// single-channel machine); Routing selects how requests map to
	// channels. Interleaved routing stripes every domain across all
	// channels — shared FR-FCFS queues on every channel — so a baseline
	// interleaved fabric must come back LEAKY while colored Fixed
	// Service stays SECURE.
	Channels int
	Routing  addr.Routing

	// Progress, when non-nil, is called after each completed evaluation
	// with the campaign stage and running counts. It may be called from
	// multiple goroutines.
	Progress func(stage string, done, total int)
	// Metrics, when non-nil, accumulates live campaign counters.
	Metrics *Metrics
}

// Metrics holds live campaign counters, safe for concurrent update. It
// implements obs.MetricSource structurally via ObsMetrics.
type Metrics struct {
	AttacksEvaluated  atomic.Int64
	WindowsSimulated  atomic.Int64
	MonitorViolations atomic.Int64
	CertifyRuns       atomic.Int64
}

// ObsMetrics emits the counters under stable names.
func (m *Metrics) ObsMetrics(emit func(name string, value float64)) {
	emit("attacks_evaluated", float64(m.AttacksEvaluated.Load()))
	emit("windows_simulated", float64(m.WindowsSimulated.Load()))
	emit("monitor_violations", float64(m.MonitorViolations.Load()))
	emit("certify_runs", float64(m.CertifyRuns.Load()))
}

func (o Options) withDefaults() Options {
	if o.Domains == 0 {
		o.Domains = DefaultDomains
	}
	if o.Bits == 0 {
		o.Bits = DefaultBits
	}
	o.Bits += o.Bits % 2 // balanced message needs an even length
	if o.WindowBusCycles == 0 {
		o.WindowBusCycles = DefaultWindow
	}
	if o.Seeds == 0 {
		o.Seeds = DefaultSeeds
	}
	if o.Permutations == 0 {
		o.Permutations = DefaultPermutations
	}
	if o.Rounds == 0 {
		o.Rounds = DefaultRounds
	}
	if o.TopK == 0 {
		o.TopK = DefaultTopK
	}
	if o.BusHz == 0 {
		o.BusHz = DefaultBusHz
	}
	if o.FaultPlan == "" {
		// A fault seed only means something alongside a fault plan; drop a
		// dangling one so it can't differentiate otherwise-identical
		// certificates.
		o.FaultSeed = 0
	}
	return o
}

func (o Options) validate() error {
	switch {
	case o.Domains < 2:
		return fsmerr.New(fsmerr.CodeConfig, "audit.Run", "need a receiver and at least one sender domain, got %d", o.Domains)
	case o.Bits < 2:
		return fsmerr.New(fsmerr.CodeConfig, "audit.Run", "message must be at least 2 bits, got %d", o.Bits)
	case o.WindowBusCycles <= 0:
		return fsmerr.New(fsmerr.CodeConfig, "audit.Run", "window must be positive, got %d bus cycles", o.WindowBusCycles)
	case o.Seeds < 1:
		return fsmerr.New(fsmerr.CodeConfig, "audit.Run", "need at least one certification seed, got %d", o.Seeds)
	case o.Permutations < 19:
		return fsmerr.New(fsmerr.CodeConfig, "audit.Run", "need at least 19 permutation rounds for a p < %.2f to be reachable, got %d", Alpha, o.Permutations)
	case o.Rounds < 0 || o.TopK < 1:
		return fsmerr.New(fsmerr.CodeConfig, "audit.Run", "invalid search shape: rounds %d, topK %d", o.Rounds, o.TopK)
	case o.Channels < 0:
		return fsmerr.New(fsmerr.CodeConfig, "audit.Run", "channels must be non-negative, got %d", o.Channels)
	case o.Channels > 1 && o.Routing == addr.RouteColored && o.Domains%o.Channels != 0:
		return fsmerr.New(fsmerr.CodeConfig, "audit.Run",
			"%d domains do not split evenly over %d colored channels", o.Domains, o.Channels)
	}
	return nil
}

// Message builds the balanced, seed-shuffled bit string every evaluation
// transmits: exactly half ones, so a channel that carries nothing decodes
// to BER exactly 0.5 under the degenerate all-zeros threshold.
func Message(bits int, seed uint64) []bool {
	msg := make([]bool, bits)
	for i := 0; i < bits/2; i++ {
		msg[i] = true
	}
	rng := trace.NewRNG(parallel.DeriveSeed(seed, "audit/message"))
	for i := len(msg) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		msg[i], msg[j] = msg[j], msg[i]
	}
	return msg
}

// outcome pairs an attack with its exploration run.
type outcome struct {
	attack Attack
	run    leakage.ChannelRun
}

func exploit(r leakage.ChannelRun) float64 {
	d := r.Result.BitErrorRate - 0.5
	if d < 0 {
		d = -d
	}
	return d
}

// decodedBER is the attacker's polarity-calibrated bit error rate. The
// raw decoder thresholds "high observable = 1", so an anti-correlated
// channel reports a raw BER near 1 — but a real receiver pins the
// threshold direction with a known preamble, decoding that channel just
// as cleanly. Certificates therefore report min(raw, 1-raw), per run.
func decodedBER(raw float64) float64 {
	if raw > 0.5 {
		return 1 - raw
	}
	return raw
}

// rank orders outcomes by exploit score descending, attack name ascending
// — a total order independent of evaluation order.
func rank(results []outcome) []outcome {
	out := append([]outcome(nil), results...)
	sort.Slice(out, func(i, j int) bool {
		ei, ej := exploit(out[i].run), exploit(out[j].run)
		if ei != ej {
			return ei > ej
		}
		return out[i].attack.Name < out[j].attack.Name
	})
	return out
}

// Run executes a full audit campaign against one scheduler and returns
// its certificate.
func Run(ctx context.Context, k sim.SchedulerKind, o Options) (*LeakageCertificate, error) {
	o = o.withDefaults()
	if err := o.validate(); err != nil {
		return nil, err
	}
	var plan *fault.Plan
	if o.FaultPlan != "" {
		p, ok := fault.PlanByName(o.FaultPlan, o.Domains, o.FaultSeed)
		if !ok {
			return nil, fsmerr.New(fsmerr.CodeConfig, "audit.Run", "unknown fault plan %q", o.FaultPlan)
		}
		plan = p
	}
	msg := Message(o.Bits, o.Seed)

	var done atomic.Int64
	evaluate := func(stage string, batch []Attack, total int, seedFor func(a Attack) uint64) ([]leakage.ChannelRun, error) {
		cells := make([]parallel.Cell[leakage.ChannelRun], len(batch))
		for i, a := range batch {
			a := a
			cells[i] = parallel.Cell[leakage.ChannelRun]{
				Key: "audit/" + stage + "/" + a.Name,
				Run: func(ctx context.Context) (leakage.ChannelRun, error) {
					run, err := leakage.RunChannel(k, msg, leakage.ChannelParams{
						Domains:         o.Domains,
						Probe:           a.Probe,
						On:              a.On,
						Off:             a.Off,
						WindowBusCycles: a.WindowBusCycles,
						Seed:            seedFor(a),
						Fault:           plan,
						Channels:        o.Channels,
						Routing:         o.Routing,
					})
					if err != nil {
						return leakage.ChannelRun{}, err
					}
					if m := o.Metrics; m != nil {
						m.WindowsSimulated.Add(int64(len(msg)))
						m.MonitorViolations.Add(int64(run.MonitorViolations))
					}
					if o.Progress != nil {
						o.Progress(stage, int(done.Add(1)), total)
					}
					return run, nil
				},
			}
		}
		return parallel.Map(ctx, o.Workers, cells)
	}

	// Phase 1: explore the strategy library, then adaptively refine the
	// top performers. Seeds derive from attack names so a result never
	// depends on what else is in flight.
	attackSeed := func(a Attack) uint64 { return parallel.DeriveSeed(o.Seed, "audit/attack/"+a.Name) }
	library := Library(o.WindowBusCycles)
	seen := map[string]bool{}
	for _, a := range library {
		seen[a.Name] = true
	}
	runs, err := evaluate("explore", library, len(library), attackSeed)
	if err != nil {
		return nil, err
	}
	var results []outcome
	violations := 0
	absorb := func(batch []Attack, runs []leakage.ChannelRun) {
		for i, r := range runs {
			results = append(results, outcome{batch[i], r})
			violations += r.MonitorViolations
		}
		if m := o.Metrics; m != nil {
			m.AttacksEvaluated.Add(int64(len(batch)))
		}
	}
	absorb(library, runs)

	for round := 0; round < o.Rounds; round++ {
		ranked := rank(results)
		if exploit(ranked[0].run) >= earlyExitExploit {
			break // channel already decisively open; refinement can't change the verdict
		}
		var batch []Attack
		top := o.TopK
		if top > len(ranked) {
			top = len(ranked)
		}
		for _, t := range ranked[:top] {
			for _, n := range Neighbors(t.attack, o.WindowBusCycles) {
				if !seen[n.Name] {
					seen[n.Name] = true
					batch = append(batch, n)
				}
			}
		}
		if len(batch) == 0 {
			break
		}
		runs, err := evaluate(fmt.Sprintf("refine-%d", round+1), batch, len(batch), attackSeed)
		if err != nil {
			return nil, err
		}
		absorb(batch, runs)
	}

	ranked := rank(results)
	best := ranked[0].attack

	// Phase 2: certify the best attack over independent seeds, pooling
	// the per-class observables for the statistics.
	certifySeeds := make([]uint64, o.Seeds)
	certifyAttacks := make([]Attack, o.Seeds)
	for i := range certifySeeds {
		certifySeeds[i] = parallel.DeriveSeed(o.Seed, fmt.Sprintf("audit/certify/%d", i))
		a := best
		a.Name = fmt.Sprintf("%s@%d", best.Name, i)
		certifyAttacks[i] = a
	}
	seedByName := map[string]uint64{}
	for i, a := range certifyAttacks {
		seedByName[a.Name] = certifySeeds[i]
	}
	certRuns, err := evaluate("certify", certifyAttacks, len(certifyAttacks), func(a Attack) uint64 { return seedByName[a.Name] })
	if err != nil {
		return nil, err
	}
	var class0, class1 []float64
	berSum := 0.0
	for _, r := range certRuns {
		class0 = append(class0, r.Class0...)
		class1 = append(class1, r.Class1...)
		berSum += decodedBER(r.Result.BitErrorRate)
		violations += r.MonitorViolations
	}
	if m := o.Metrics; m != nil {
		m.CertifyRuns.Add(int64(len(certRuns)))
	}

	miStat := func(a, b []float64) float64 { return leakage.MutualInformationBits(a, b, MIBins) }
	stats := StatBlock{
		BitErrorRate: berSum / float64(len(certRuns)),
		MIBits:       leakage.MutualInformationMillerMadow(class0, class1, MIBins),
		MIPValue:     leakage.PermutationPValue(class0, class1, miStat, o.Permutations, parallel.DeriveSeed(o.Seed, "audit/perm/mi")),
		KSStat:       leakage.KolmogorovSmirnov(class0, class1),
		KSPValue:     leakage.PermutationPValue(class0, class1, leakage.KolmogorovSmirnov, o.Permutations, parallel.DeriveSeed(o.Seed, "audit/perm/ks")),
	}

	verdict := VerdictSecure
	berDist := stats.BitErrorRate - 0.5
	if berDist < 0 {
		berDist = -berDist
	}
	switch {
	case violations > 0:
		verdict = VerdictFail
	case berDist > BERMargin || stats.MIPValue < Alpha || stats.KSPValue < Alpha:
		verdict = VerdictLeaky
	}

	attacks := make([]AttackOutcome, len(ranked))
	for i, r := range ranked {
		attacks[i] = AttackOutcome{
			Name:         r.attack.Name,
			BitErrorRate: decodedBER(r.run.Result.BitErrorRate),
			Exploit:      exploit(r.run),
		}
	}

	cert := &LeakageCertificate{
		Version:            1,
		Scheduler:          k.String(),
		Verdict:            verdict,
		Domains:            o.Domains,
		Bits:               o.Bits,
		Seed:               o.Seed,
		CertifySeeds:       certifySeeds,
		Permutations:       o.Permutations,
		SearchRounds:       o.Rounds,
		Fault:              o.FaultPlan,
		FaultSeed:          o.FaultSeed,
		MonitorViolations:  violations,
		BestAttack:         best,
		Stats:              stats,
		CapacityBitsPerSec: Capacity(stats.BitErrorRate, best.WindowBusCycles, o.BusHz),
		BusHz:              o.BusHz,
		Attacks:            attacks,
	}
	if o.Channels > 1 {
		cert.Channels = o.Channels
		cert.Routing = o.Routing.String()
	}
	return cert, nil
}

// FragmentFor computes the single-strategy certificate fragment for one
// finished channel run — the shared schema between `cmd/leakage -json`
// and full audit certificates.
func FragmentFor(a Attack, run leakage.ChannelRun, permutations int, seed uint64) Fragment {
	miStat := func(x, y []float64) float64 { return leakage.MutualInformationBits(x, y, MIBins) }
	return Fragment{
		Scheduler: run.Result.Scheduler,
		Attack:    a,
		Stats: StatBlock{
			BitErrorRate: decodedBER(run.Result.BitErrorRate),
			MIBits:       leakage.MutualInformationMillerMadow(run.Class0, run.Class1, MIBins),
			MIPValue:     leakage.PermutationPValue(run.Class0, run.Class1, miStat, permutations, parallel.DeriveSeed(seed, "fragment/perm/mi")),
			KSStat:       leakage.KolmogorovSmirnov(run.Class0, run.Class1),
			KSPValue:     leakage.PermutationPValue(run.Class0, run.Class1, leakage.KolmogorovSmirnov, permutations, parallel.DeriveSeed(seed, "fragment/perm/ks")),
		},
		MonitorViolations: run.MonitorViolations,
	}
}
