package audit

import (
	"bytes"
	"context"
	"testing"

	"fsmem/internal/addr"
	"fsmem/internal/fsmerr"
	"fsmem/internal/sim"
)

// fastOpts keeps unit-test campaigns small; the full-size defaults run in
// CI's audit-smoke job.
func fastOpts() Options {
	return Options{
		Domains:      4,
		Bits:         8,
		Seeds:        2,
		Permutations: 49,
		Rounds:       1,
		Seed:         42,
	}
}

// The determinism contract the whole integration rests on: same options,
// any worker count, byte-identical certificate.
func TestCertificateByteIdentityAcrossWorkers(t *testing.T) {
	var want []byte
	for _, j := range []int{1, 4, 8} {
		o := fastOpts()
		o.Workers = j
		cert, err := Run(context.Background(), sim.FSNoPart, o)
		if err != nil {
			t.Fatalf("j=%d: %v", j, err)
		}
		b, err := MarshalCertificate(cert)
		if err != nil {
			t.Fatalf("j=%d: marshal: %v", j, err)
		}
		if want == nil {
			want = b
		} else if !bytes.Equal(b, want) {
			t.Fatalf("j=%d: certificate differs from j=1:\n%s\nvs\n%s", j, b, want)
		}
	}
}

func TestBaselineCertifiesLeaky(t *testing.T) {
	cert, err := Run(context.Background(), sim.Baseline, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if cert.Verdict != VerdictLeaky {
		t.Fatalf("baseline verdict %s, want LEAKY (stats %+v)", cert.Verdict, cert.Stats)
	}
	if d := cert.Stats.BitErrorRate; d > 0.1 {
		t.Errorf("baseline best attack BER %.3f, want decisively decodable (< 0.1 after polarity calibration)", d)
	}
	if cert.CapacityBitsPerSec <= 0 {
		t.Errorf("leaky channel reports zero capacity")
	}
	if cert.MonitorViolations != 0 {
		t.Errorf("clean baseline audit saw %d monitor violations", cert.MonitorViolations)
	}
}

func TestFSVariantsCertifySecure(t *testing.T) {
	for _, k := range []sim.SchedulerKind{sim.FSNoPart, sim.FSNoPartTriple} {
		cert, err := Run(context.Background(), k, fastOpts())
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if cert.Verdict != VerdictSecure {
			t.Fatalf("%v verdict %s, want SECURE (stats %+v)", k, cert.Verdict, cert.Stats)
		}
		if cert.Stats.BitErrorRate != 0.5 {
			t.Errorf("%v: BER %.4f, want exactly 0.5 from a balanced message on a silent channel", k, cert.Stats.BitErrorRate)
		}
		if cert.Stats.MIPValue != 1 || cert.Stats.KSPValue != 1 {
			t.Errorf("%v: p-values (%.3f, %.3f), want exactly 1 for identical observables", k, cert.Stats.MIPValue, cert.Stats.KSPValue)
		}
		if cert.CapacityBitsPerSec != 0 {
			t.Errorf("%v: capacity %.1f, want 0", k, cert.CapacityBitsPerSec)
		}
	}
}

// The fabric-level security claim, certified both ways: interleaved
// routing shares every channel across domains, so a Baseline scheduler
// on a 2-channel fabric still leaks; colored routing dedicates channels
// to domain blocks, so FS composes to a SECURE multi-channel system.
func TestFabricRoutingVerdicts(t *testing.T) {
	o := fastOpts()
	o.Channels = 2
	o.Routing = addr.RouteInterleaved
	cert, err := Run(context.Background(), sim.Baseline, o)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Verdict != VerdictLeaky {
		t.Fatalf("interleaved baseline verdict %s, want LEAKY (stats %+v)", cert.Verdict, cert.Stats)
	}
	if cert.Channels != 2 || cert.Routing != "interleaved" {
		t.Errorf("certificate fabric fields: channels=%d routing=%q", cert.Channels, cert.Routing)
	}

	o = fastOpts()
	o.Channels = 2
	o.Routing = addr.RouteColored
	cert, err = Run(context.Background(), sim.FSRankPart, o)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Verdict != VerdictSecure {
		t.Fatalf("colored FS verdict %s, want SECURE (stats %+v)", cert.Verdict, cert.Stats)
	}
	if cert.Channels != 2 || cert.Routing != "colored" {
		t.Errorf("certificate fabric fields: channels=%d routing=%q", cert.Channels, cert.Routing)
	}
}

// Single-channel certificates must not grow fabric fields: the JSON bytes
// are pinned by CI diffs against pre-fabric archives.
func TestSingleChannelCertificateOmitsFabric(t *testing.T) {
	cert, err := Run(context.Background(), sim.FSNoPart, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalCertificate(cert)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte(`"channels"`)) || bytes.Contains(b, []byte(`"routing"`)) {
		t.Fatalf("single-channel certificate carries fabric fields:\n%s", b)
	}
}

// Anti-vacuity: the auditor must FAIL a Fixed Service run whose premises
// are broken by an injected timing fault, not certify it SECURE.
func TestFaultInjectedFSFailsCertification(t *testing.T) {
	o := fastOpts()
	o.FaultPlan = "derate-trcd"
	o.FaultSeed = 7
	cert, err := Run(context.Background(), sim.FSNoPart, o)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Verdict != VerdictFail {
		t.Fatalf("fault-injected FS verdict %s, want FAIL", cert.Verdict)
	}
	if cert.MonitorViolations == 0 {
		t.Fatal("fault-injected FS reported zero monitor violations")
	}
	if cert.Fault != "derate-trcd" {
		t.Errorf("certificate fault field %q", cert.Fault)
	}
}

func TestUnknownFaultPlanRejected(t *testing.T) {
	o := fastOpts()
	o.FaultPlan = "no-such-plan"
	_, err := Run(context.Background(), sim.FSNoPart, o)
	if fsmerr.CodeOf(err) != fsmerr.CodeConfig {
		t.Fatalf("unknown fault plan: error %v, want CodeConfig", err)
	}
}

func TestOptionValidation(t *testing.T) {
	cases := []Options{
		{Domains: 1, Bits: 8, Seeds: 1, Permutations: 49, WindowBusCycles: 4096},
		{Domains: 4, Bits: 8, Seeds: 1, Permutations: 5, WindowBusCycles: 4096},
		{Domains: 4, Bits: 8, Seeds: 1, Permutations: 49, WindowBusCycles: -1},
		{Domains: 4, Bits: 8, Seeds: 1, Permutations: 49, WindowBusCycles: 4096, TopK: -1},
	}
	for i, o := range cases {
		if _, err := Run(context.Background(), sim.FSNoPart, o); fsmerr.CodeOf(err) != fsmerr.CodeConfig {
			t.Errorf("case %d: error %v, want CodeConfig", i, err)
		}
	}
}

func TestMessageBalancedAndDeterministic(t *testing.T) {
	a, b := Message(16, 9), Message(16, 9)
	ones := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different messages")
		}
		if a[i] {
			ones++
		}
	}
	if ones != 8 {
		t.Fatalf("message has %d ones out of 16, want 8", ones)
	}
}

func TestCapacityBounds(t *testing.T) {
	if c := Capacity(0, 10_000, 800e6); c != 80_000 {
		t.Errorf("perfect channel capacity %.1f, want 80000", c)
	}
	if c := Capacity(1, 10_000, 800e6); c != 80_000 {
		t.Errorf("inverted channel capacity %.1f, want 80000", c)
	}
	if c := Capacity(0.5, 10_000, 800e6); c != 0 {
		t.Errorf("coin-flip capacity %.2f, want 0", c)
	}
	if c := Capacity(0.1, 0, 800e6); c != 0 {
		t.Errorf("zero window capacity %.2f, want 0", c)
	}
}

// The neighborhood generator must stay in bounds and produce stable
// names regardless of how often it is called.
func TestNeighborsBoundedAndStable(t *testing.T) {
	base := Library(DefaultWindow)[0]
	n1, n2 := Neighbors(base, DefaultWindow), Neighbors(base, DefaultWindow)
	if len(n1) == 0 || len(n1) != len(n2) {
		t.Fatalf("neighbor counts %d vs %d", len(n1), len(n2))
	}
	for i := range n1 {
		if n1[i].Name != n2[i].Name {
			t.Fatalf("neighbor %d name %q vs %q", i, n1[i].Name, n2[i].Name)
		}
		if n1[i].WindowBusCycles < minWindow || n1[i].WindowBusCycles > DefaultWindow*maxWindowMul {
			t.Errorf("neighbor %q window %d out of bounds", n1[i].Name, n1[i].WindowBusCycles)
		}
		if err := n1[i].On.Validate(); err != nil {
			t.Errorf("neighbor %q On profile invalid: %v", n1[i].Name, err)
		}
		if err := n1[i].Probe.Validate(); err != nil {
			t.Errorf("neighbor %q Probe profile invalid: %v", n1[i].Name, err)
		}
	}
}

func TestMetricsAccumulate(t *testing.T) {
	o := fastOpts()
	o.Workers = 1 // serial so the progress counter needs no locking
	var m Metrics
	o.Metrics = &m
	progress := 0
	o.Progress = func(stage string, done, total int) { progress++ }
	if _, err := Run(context.Background(), sim.FSNoPart, o); err != nil {
		t.Fatal(err)
	}
	if m.AttacksEvaluated.Load() == 0 || m.WindowsSimulated.Load() == 0 || m.CertifyRuns.Load() != 2 {
		t.Errorf("metrics did not accumulate: %+v", map[string]int64{
			"attacks": m.AttacksEvaluated.Load(), "windows": m.WindowsSimulated.Load(), "certify": m.CertifyRuns.Load()})
	}
	if progress == 0 {
		t.Error("progress callback never fired")
	}
}
