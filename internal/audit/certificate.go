// The leakage certificate: the audit engine's machine-readable output.
// A certificate is a plain JSON document whose byte encoding is a pure
// function of the audited scheduler and the audit options — independent of
// worker count, wall-clock, and whether it was produced directly or
// through the daemon — so it can be cached content-addressed, diffed in
// CI, and re-verified anywhere.
package audit

import (
	"encoding/json"
	"math"
)

// Verdict is the certificate's overall security conclusion.
type Verdict string

const (
	// VerdictSecure: the best attack found decodes nothing (BER within
	// 0.5 ± the BER margin) and neither the MI nor the KS permutation
	// test rejects the identical-distributions null at α = 0.05.
	VerdictSecure Verdict = "SECURE"
	// VerdictLeaky: at least one attack strategy extracts information —
	// the channel decodes, or a calibrated test rejects the null.
	VerdictLeaky Verdict = "LEAKY"
	// VerdictFail: the runtime monitor observed violations while the
	// campaign ran, so the non-interference premises did not hold and
	// nothing can be certified. A fault-injected FS run must land here.
	VerdictFail Verdict = "FAIL"
)

// Thresholds for the verdict. Alpha applies to both permutation tests;
// BERMargin is how far from coin-flipping the best attack may decode
// before the channel counts as real.
const (
	Alpha     = 0.05
	BERMargin = 0.05
)

// StatBlock is the certification statistics over the pooled multi-seed
// observables of one attack.
type StatBlock struct {
	// BitErrorRate is the mean polarity-calibrated decoded BER across
	// certification seeds, in [0, 0.5]; 0.5 means the receiver learned
	// nothing and 0 means every bit decoded.
	BitErrorRate float64 `json:"bit_error_rate"`
	// MIBits is the Miller–Madow bias-corrected mutual information
	// between the sent bit and the receiver observable, in bits.
	MIBits float64 `json:"mi_bits"`
	// MIPValue and KSPValue are permutation-test p-values for the MI and
	// KS statistics under the identical-distributions null.
	MIPValue float64 `json:"mi_p_value"`
	// KSStat is the two-sample Kolmogorov–Smirnov statistic.
	KSStat   float64 `json:"ks_stat"`
	KSPValue float64 `json:"ks_p_value"`
}

// AttackOutcome summarizes one explored attack for the certificate's
// campaign log.
type AttackOutcome struct {
	Name         string  `json:"name"`
	BitErrorRate float64 `json:"bit_error_rate"`
	// Exploit is |BER - 0.5|: distance from coin-flipping, the score the
	// adaptive search maximizes.
	Exploit float64 `json:"exploit"`
}

// LeakageCertificate is the audit verdict for one scheduler.
type LeakageCertificate struct {
	Version   int     `json:"version"`
	Scheduler string  `json:"scheduler"`
	Verdict   Verdict `json:"verdict"`

	Domains      int      `json:"domains"`
	Bits         int      `json:"bits"`
	Seed         uint64   `json:"seed"`
	CertifySeeds []uint64 `json:"certify_seeds"`
	Permutations int      `json:"permutations"`
	SearchRounds int      `json:"search_rounds"`

	// Fault names the injected fault plan, empty for a clean audit.
	Fault     string `json:"fault,omitempty"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`

	// Channels and Routing describe the audited memory fabric; both are
	// omitted for single-channel audits, so pre-fabric certificate bytes
	// are unchanged.
	Channels int    `json:"channels,omitempty"`
	Routing  string `json:"routing,omitempty"`

	// MonitorViolations counts runtime-monitor verdicts (timing, schedule,
	// scheduler) summed over every window of every evaluation in the
	// campaign. Nonzero forces VerdictFail.
	MonitorViolations int `json:"monitor_violations"`

	// BestAttack is the strategy with the highest exploit score; Stats
	// certifies it over the multi-seed campaign.
	BestAttack Attack    `json:"best_attack"`
	Stats      StatBlock `json:"stats"`

	// CapacityBitsPerSec bounds the channel rate of the best surviving
	// attack: (1 - H2(BER)) bits per window at BusHz bus cycles/second.
	CapacityBitsPerSec float64 `json:"capacity_bits_per_sec"`
	BusHz              float64 `json:"bus_hz"`

	// Attacks logs every strategy the campaign evaluated, best first.
	Attacks []AttackOutcome `json:"attacks"`
}

// Fragment is the single-strategy certificate fragment `cmd/leakage -json`
// emits: the same Attack and StatBlock schema as a full certificate,
// without the campaign search.
type Fragment struct {
	Scheduler         string    `json:"scheduler"`
	Attack            Attack    `json:"attack"`
	Stats             StatBlock `json:"stats"`
	MonitorViolations int       `json:"monitor_violations"`
}

// MarshalCertificate renders the canonical byte encoding of a
// certificate: compact JSON plus a trailing newline — the exact bytes the
// daemon stores and serves, so direct and daemon-served audits diff clean.
func MarshalCertificate(c *LeakageCertificate) ([]byte, error) {
	b, err := json.Marshal(c)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// MarshalFragment renders a fragment in the same canonical form.
func MarshalFragment(f Fragment) ([]byte, error) {
	b, err := json.Marshal(f)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// binaryEntropy is H2(p) in bits, with H2(0) = H2(1) = 0.
func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// Capacity converts a decoded bit-error rate into a bits-per-second
// channel bound: the BSC capacity 1 - H2(BER) per window, at busHz bus
// cycles per second. A BER of exactly 0.5 is a zero-capacity channel.
func Capacity(ber float64, windowBusCycles int64, busHz float64) float64 {
	if windowBusCycles <= 0 || busHz <= 0 {
		return 0
	}
	p := math.Min(ber, 1-ber)
	return (1 - binaryEntropy(p)) * busHz / float64(windowBusCycles)
}
