package sim

import (
	"fmt"

	"fsmem/internal/stats"
	"fsmem/internal/workload"
)

// SimulateChannels runs the paper's full target system: a multi-channel
// processor (4 channels, 32 cores in Section 6) in which each channel is
// page-colored to a disjoint set of security domains and runs its own
// scheduler instance. Channels share no hardware, so the system is the
// product of independent per-channel simulations — which is exactly why
// channel partitioning has no timing channel (Section 4.1).
//
// Domains are assigned to channels in contiguous blocks. The per-channel
// read target is cfg.TargetReads (each channel simulates the same work the
// single-channel experiments do).
func SimulateChannels(cfg Config, channels int) (stats.Run, []Result, error) {
	domains := len(cfg.Mix.Profiles)
	if channels <= 0 {
		return stats.Run{}, nil, fmt.Errorf("sim: channels must be positive, got %d", channels)
	}
	if domains%channels != 0 {
		return stats.Run{}, nil, fmt.Errorf("sim: %d domains do not split evenly over %d channels", domains, channels)
	}
	per := domains / channels
	results := make([]Result, channels)
	merged := stats.Run{
		Scheduler: fmt.Sprintf("%dch/%s", channels, cfg.Scheduler),
		Workload:  cfg.Mix.Name,
	}
	for c := 0; c < channels; c++ {
		sub := cfg
		sub.Mix = workload.Mix{
			Name:     fmt.Sprintf("%s-ch%d", cfg.Mix.Name, c),
			Profiles: cfg.Mix.Profiles[c*per : (c+1)*per],
		}
		sub.Seed = cfg.Seed + uint64(c)*0x9e3779b97f4a7c15
		res, err := Simulate(sub)
		if err != nil {
			return stats.Run{}, nil, fmt.Errorf("channel %d: %w", c, err)
		}
		results[c] = res
		merged.Domains = append(merged.Domains, res.Run.Domains...)
		if res.Run.BusCycles > merged.BusCycles {
			merged.BusCycles = res.Run.BusCycles
		}
		merged.Channel.Acts += res.Run.Channel.Acts
		merged.Channel.Reads += res.Run.Channel.Reads
		merged.Channel.Writes += res.Run.Channel.Writes
		merged.Channel.Precharges += res.Run.Channel.Precharges
		merged.Channel.Refreshes += res.Run.Channel.Refreshes
		merged.Channel.DataBusBusy += res.Run.Channel.DataBusBusy
		merged.Channel.CmdBusBusy += res.Run.Channel.CmdBusBusy
	}
	return merged, results, nil
}
