package sim

import (
	"fmt"

	"fsmem/internal/addr"
	"fsmem/internal/stats"
	"fsmem/internal/workload"
)

// SimulateChannels runs the paper's full target system: a multi-channel
// processor (4 channels, 32 cores in Section 6) in which each channel is
// page-colored to a disjoint set of security domains and runs its own
// scheduler instance. It is now a thin wrapper over the colored-routing
// fabric (Config.Channels + addr.RouteColored), which reproduces the old
// product-of-independent-runs byte for byte — channels share no hardware,
// which is exactly why channel partitioning has no timing channel
// (Section 4.1).
//
// Domains are assigned to channels in contiguous blocks. The per-channel
// read target is cfg.TargetReads (each channel simulates the same work the
// single-channel experiments do).
//
// The merged Run reports BusCycles as the longest channel's cycle count
// (the wall-clock span), each channel's own count in ChannelCycles, and
// every hardware counter summed across channels; ratio metrics like
// BusUtilization divide by the summed per-channel cycles. (The legacy
// merge summed only a subset of counters against the max cycle count,
// which made merged utilization inconsistent.)
func SimulateChannels(cfg Config, channels int) (stats.Run, []Result, error) {
	domains := len(cfg.Mix.Profiles)
	if channels <= 0 {
		return stats.Run{}, nil, fmt.Errorf("sim: channels must be positive, got %d", channels)
	}
	if domains%channels != 0 {
		return stats.Run{}, nil, fmt.Errorf("sim: %d domains do not split evenly over %d channels", domains, channels)
	}
	if channels == 1 {
		// One channel is the plain single-channel machine under the
		// legacy per-channel labels (the "-ch0" mix and "1ch/" scheduler
		// prefix predate the fabric; callers parse them).
		sub := cfg
		sub.Channels = 1
		sub.Mix = workload.Mix{
			Name:     fmt.Sprintf("%s-ch0", cfg.Mix.Name),
			Profiles: cfg.Mix.Profiles,
		}
		res, err := Simulate(sub)
		if err != nil {
			return stats.Run{}, nil, fmt.Errorf("channel 0: %w", err)
		}
		merged := res.Run
		merged.Scheduler = fmt.Sprintf("1ch/%s", cfg.Scheduler)
		merged.Workload = cfg.Mix.Name
		merged.ChannelCycles = []int64{res.Run.BusCycles}
		return merged, []Result{res}, nil
	}
	cfg.Channels = channels
	cfg.Routing = addr.RouteColored
	res, err := Simulate(cfg)
	if err != nil {
		return stats.Run{}, nil, err
	}
	return res.Run, res.PerChannel, nil
}
