package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"fsmem/internal/fault"
	"fsmem/internal/fsmerr"
	"fsmem/internal/workload"
)

// TestRunCampaignWorkerEquivalence: the fault campaign's verdicts are
// byte-identical whatever the pool width — each run is a pure function of
// its Config and the plans carry their own seeds, so sharding the campaign
// must not move a single counter.
func TestRunCampaignWorkerEquivalence(t *testing.T) {
	mix, err := workload.Rate("milc", 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(mix, FSRankPart)
	cfg.Seed = 1
	plans := fault.CampaignPlans(4, 7)

	serial, err := RunCampaignContext(context.Background(), cfg, plans, 1)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := RunCampaignContext(context.Background(), cfg, plans, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Fatalf("campaign verdicts diverged between 1 and 8 workers:\nserial: %+v\nwide:   %+v", serial, wide)
	}
	def, err := RunCampaign(cfg, plans)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, serial) {
		t.Fatal("RunCampaign (default workers) diverged from explicit pools")
	}
}

// TestSimulateContextCanceled: a canceled context yields a structured
// CodeCanceled error, never a partial Result a sweep could mistake for a
// completed run.
func TestSimulateContextCanceled(t *testing.T) {
	mix, err := workload.Rate("milc", 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultConfig(mix, FSRankPart)
	cfg.TargetReads = 1_000_000 // far beyond what a canceled run may reach
	_, err = SimulateContext(ctx, cfg)
	if err == nil {
		t.Fatal("canceled simulation returned no error")
	}
	if fsmerr.CodeOf(err) != fsmerr.CodeCanceled {
		t.Fatalf("want CodeCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause lost: %v", err)
	}
}

// TestRunCampaignCanceled: cancellation mid-campaign drains the pool and
// surfaces CodeCanceled instead of returning half-classified outcomes.
func TestRunCampaignCanceled(t *testing.T) {
	mix, err := workload.Rate("milc", 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(mix, FSRankPart)
	cfg.Seed = 1
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunCampaignContext(ctx, cfg, fault.CampaignPlans(4, 7), 4)
	if err == nil {
		t.Fatalf("canceled campaign returned outcomes: %+v", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
