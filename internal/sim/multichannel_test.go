package sim

import (
	"testing"

	"fsmem/internal/stats"
	"fsmem/internal/workload"
)

// TestSimulateChannelsTargetSystem runs the paper's Section 6 target
// system: 32 cores over 4 channels, each channel running FS_RP across its
// 8 domains.
func TestSimulateChannelsTargetSystem(t *testing.T) {
	mix, err := workload.Rate("milc", 32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(mix, FSRankPart)
	cfg.TargetReads = 1200
	merged, per, err := SimulateChannels(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 4 {
		t.Fatalf("got %d channel results", len(per))
	}
	if len(merged.Domains) != 32 {
		t.Fatalf("merged domains = %d, want 32", len(merged.Domains))
	}
	if merged.TotalReads() < 4*1200 {
		t.Fatalf("merged reads = %d", merged.TotalReads())
	}
	for d, dom := range merged.Domains {
		if dom.IPC() <= 0 {
			t.Errorf("domain %d idle", d)
		}
	}
}

// TestSimulateChannelsIsolation: channels are independent hardware, so one
// channel's workload cannot affect another channel's statistics at all.
func TestSimulateChannelsIsolation(t *testing.T) {
	mk := func(hot bool) []workload.Profile {
		ps := make([]workload.Profile, 16)
		for i := range ps {
			ps[i] = workload.Synthetic("calm", 5)
		}
		if hot {
			for i := 8; i < 16; i++ {
				ps[i] = workload.Synthetic("hot", 45)
			}
		}
		return ps
	}
	run := func(hot bool) stats.Run {
		cfg := DefaultConfig(workload.Mix{Name: "iso", Profiles: mk(hot)}, FSRankPart)
		cfg.TargetReads = 0
		cfg.MaxBusCycles = 100_000
		merged, _, err := SimulateChannels(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		return merged
	}
	a := run(false)
	b := run(true)
	for d := 0; d < 8; d++ {
		if a.Domains[d] != b.Domains[d] {
			t.Fatalf("channel 0 domain %d perturbed by channel 1's workload", d)
		}
	}
}

func TestSimulateChannelsErrors(t *testing.T) {
	mix, _ := workload.Rate("milc", 8)
	cfg := DefaultConfig(mix, FSRankPart)
	if _, _, err := SimulateChannels(cfg, 0); err == nil {
		t.Error("0 channels should fail")
	}
	if _, _, err := SimulateChannels(cfg, 3); err == nil {
		t.Error("uneven split should fail")
	}
}
