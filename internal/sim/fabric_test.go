package sim

import (
	"fmt"
	"reflect"
	"testing"

	"fsmem/internal/addr"
	"fsmem/internal/fsmerr"
	"fsmem/internal/workload"
)

// legacyProduct reimplements the pre-fabric SimulateChannels semantics —
// N fully independent single-channel runs over contiguous domain blocks —
// as the reference the colored fabric must reproduce byte for byte.
func legacyProduct(t *testing.T, cfg Config, channels int) []Result {
	t.Helper()
	per := len(cfg.Mix.Profiles) / channels
	results := make([]Result, channels)
	for c := 0; c < channels; c++ {
		sub := cfg
		sub.Channels = 0
		sub.Routing = 0
		sub.Mix = workload.Mix{
			Name:     fmt.Sprintf("%s-ch%d", cfg.Mix.Name, c),
			Profiles: cfg.Mix.Profiles[c*per : (c+1)*per],
		}
		sub.Seed = cfg.Seed + uint64(c)*channelSeedStride
		res, err := Simulate(sub)
		if err != nil {
			t.Fatalf("legacy channel %d: %v", c, err)
		}
		results[c] = res
	}
	return results
}

// TestColoredFabricMatchesLegacyProduct pins the refactor's central
// correctness anchor: under colored routing every per-channel Result of
// the fabric is byte-identical to the standalone single-channel
// simulation of the same domain block (the legacy SimulateChannels
// product-of-runs).
func TestColoredFabricMatchesLegacyProduct(t *testing.T) {
	cases := []struct {
		sched    SchedulerKind
		cores    int
		channels int
	}{
		{FSRankPart, 8, 2},
		{FSReorderedBank, 8, 2},
		{Baseline, 8, 2},
		{TPBank, 8, 2},
		{FSRankPart, 16, 4},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s-%dch", tc.sched, tc.channels), func(t *testing.T) {
			mix, err := workload.Rate("milc", tc.cores)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig(mix, tc.sched)
			cfg.TargetReads = 600
			want := legacyProduct(t, cfg, tc.channels)

			cfg.Channels = tc.channels
			cfg.Routing = addr.RouteColored
			got, err := Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.PerChannel) != tc.channels {
				t.Fatalf("PerChannel = %d results, want %d", len(got.PerChannel), tc.channels)
			}
			for c := range want {
				if !reflect.DeepEqual(got.PerChannel[c], want[c]) {
					t.Errorf("channel %d result diverges from the legacy standalone run:\n got %+v\nwant %+v",
						c, got.PerChannel[c].Run, want[c].Run)
				}
			}
			// The merged view concatenates domain blocks in channel order
			// and reports the wall-clock span plus per-channel cycles.
			var wantBus int64
			for c, w := range want {
				if w.Run.BusCycles > wantBus {
					wantBus = w.Run.BusCycles
				}
				if got.Run.ChannelCycles[c] != w.Run.BusCycles {
					t.Errorf("ChannelCycles[%d] = %d, want %d", c, got.Run.ChannelCycles[c], w.Run.BusCycles)
				}
			}
			if got.Run.BusCycles != wantBus {
				t.Errorf("merged BusCycles = %d, want max %d", got.Run.BusCycles, wantBus)
			}
			per := tc.cores / tc.channels
			for c, w := range want {
				for d, dom := range w.Run.Domains {
					if got.Run.Domains[c*per+d] != dom {
						t.Errorf("merged domain %d diverges", c*per+d)
					}
				}
			}
		})
	}
}

// TestSimulateChannelsDelegatesToFabric: the wrapper and the direct
// fabric configuration are the same computation.
func TestSimulateChannelsDelegatesToFabric(t *testing.T) {
	mix, err := workload.Rate("milc", 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(mix, FSRankPart)
	cfg.TargetReads = 600
	merged, per, err := SimulateChannels(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Channels = 2
	cfg.Routing = addr.RouteColored
	direct, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, direct.Run) {
		t.Error("SimulateChannels merged Run differs from the fabric Run")
	}
	if !reflect.DeepEqual(per, direct.PerChannel) {
		t.Error("SimulateChannels per-channel results differ from the fabric's")
	}
}

// TestInterleavedFabric exercises the genuinely shared mode: every
// domain's lines stripe across all channels, so every channel services
// every domain and the merged statistics still account for each read
// exactly once.
func TestInterleavedFabric(t *testing.T) {
	for _, kind := range []SchedulerKind{Baseline, FSRankPart} {
		t.Run(kind.String(), func(t *testing.T) {
			mix, err := workload.Rate("milc", 8)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig(mix, kind)
			cfg.TargetReads = 800
			cfg.Channels = 2
			cfg.Routing = addr.RouteInterleaved
			res, err := Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Truncated {
				t.Fatalf("truncated: %s", res.TruncateReason)
			}
			if got := res.Run.TotalReads(); got < 800 {
				t.Errorf("merged reads = %d, want >= 800", got)
			}
			if len(res.Run.Domains) != 8 {
				t.Fatalf("merged domains = %d, want 8", len(res.Run.Domains))
			}
			for d, dom := range res.Run.Domains {
				if dom.IPC() <= 0 {
					t.Errorf("domain %d idle (ipc=0)", d)
				}
				if dom.Reads == 0 {
					t.Errorf("domain %d completed no reads", d)
				}
			}
			// Both channels must actually service traffic: striping by
			// column bits splits every domain's stream.
			for c, cres := range res.PerChannel {
				var reads int64
				for _, dom := range cres.Run.Domains {
					reads += dom.Reads
				}
				if reads == 0 {
					t.Errorf("channel %d serviced no reads under interleaved routing", c)
				}
			}
			// Each read is counted once: per-channel sums equal the merged total.
			var sum int64
			for _, cres := range res.PerChannel {
				for _, dom := range cres.Run.Domains {
					sum += dom.Reads
				}
			}
			if sum != res.Run.TotalReads() {
				t.Errorf("per-channel reads sum %d != merged %d", sum, res.Run.TotalReads())
			}
		})
	}
}

// TestFabricConfigErrors pins the typed rejection of inconsistent
// channel configurations.
func TestFabricConfigErrors(t *testing.T) {
	mix, err := workload.Rate("milc", 6)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, cfg Config) {
		t.Helper()
		_, err := New(cfg)
		if err == nil {
			t.Fatalf("%s: config accepted, want CodeConfig error", name)
		}
		if fsmerr.CodeOf(err) != fsmerr.CodeConfig {
			t.Fatalf("%s: got %v, want typed CodeConfig error", name, err)
		}
	}
	cfg := DefaultConfig(mix, FSRankPart)
	cfg.Channels = 4
	cfg.Routing = addr.RouteColored
	check("uneven colored split", cfg) // 6 domains over 4 channels

	cfg = DefaultConfig(mix, FSRankPart)
	cfg.Channels = 2
	cfg.DRAM.Channels = 4
	check("Channels vs DRAM.Channels mismatch", cfg)

	cfg = DefaultConfig(mix, FSRankPart)
	cfg.Channels = -1
	check("negative channels", cfg)
}

// TestDRAMChannelsSelectsFabricWidth: dram.Params.Channels is no longer
// validated-but-ignored; it selects the fabric width when Config.Channels
// is unset.
func TestDRAMChannelsSelectsFabricWidth(t *testing.T) {
	mix, err := workload.Rate("milc", 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(mix, FSRankPart)
	cfg.DRAM.Channels = 2
	cfg.TargetReads = 200
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Channels() != 2 {
		t.Fatalf("Channels() = %d, want 2 (from DRAM.Channels)", sys.Channels())
	}
	if sys.Fabric() == nil || sys.Fabric().Channels() != 2 {
		t.Fatal("fabric not constructed from DRAM.Channels")
	}
}
