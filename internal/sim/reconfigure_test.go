package sim

import (
	"testing"

	"fsmem/internal/fsmerr"
	"fsmem/internal/workload"
)

// TestReconfigureSLA performs the §5.1 SLA change mid-run: drain, swap to
// weighted slots, keep running. The channel model validates every command,
// so a broken handover would panic.
func TestReconfigureSLA(t *testing.T) {
	mix, err := workload.Rate("milc", 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(mix, FSRankPart)
	cfg.TargetReads = 0
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 60_000; i++ {
		sys.Step()
	}
	var before []int64
	for d := range sys.Controller().Dom {
		before = append(before, sys.Controller().Dom[d].Reads)
	}

	if err := sys.Reconfigure([]int{3, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 120_000; i++ {
		sys.Step()
	}
	ctl := sys.Controller()
	d0 := ctl.Dom[0].Reads - before[0]
	d1 := ctl.Dom[1].Reads - before[1]
	if d0 == 0 || d1 == 0 {
		t.Fatalf("service stalled after reconfiguration: %d / %d", d0, d1)
	}
	// Domain 0 now holds 3 of 6 slots; under saturation it should clearly
	// out-serve a weight-1 domain.
	if float64(d0) < 1.5*float64(d1) {
		t.Errorf("post-reconfiguration service ratio %.2f (reads %d vs %d), want > 1.5", float64(d0)/float64(d1), d0, d1)
	}
}

// TestReconfigureRejectsNonFS pins the documented restriction: only Fixed
// Service schedulers have a slot grid to re-weight; everything else gets a
// structured config error, not a panic or a silent no-op.
func TestReconfigureRejectsNonFS(t *testing.T) {
	mix, err := workload.Rate("milc", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []SchedulerKind{Baseline, TPBank, TPNone} {
		sys, err := New(DefaultConfig(mix, k))
		if err != nil {
			t.Fatal(err)
		}
		err = sys.Reconfigure([]int{2, 1, 1, 1})
		if err == nil {
			t.Fatalf("%s: reconfiguration should be rejected", k)
		}
		if fsmerr.CodeOf(err) != fsmerr.CodeConfig {
			t.Errorf("%s: error code %q, want %q (%v)", k, fsmerr.CodeOf(err), fsmerr.CodeConfig, err)
		}
	}
}

// TestReconfigureRejectsBadWeights covers the weight-validation error
// paths: wrong length, all-zero weights, and the reordered variant (which
// serves exactly one transaction per domain per interval by construction).
// A rejected reconfiguration must leave the old schedule in force.
func TestReconfigureRejectsBadWeights(t *testing.T) {
	cases := []struct {
		name    string
		kind    SchedulerKind
		weights []int
	}{
		{"wrong-length", FSRankPart, []int{1, 2}},
		{"zero-sum", FSRankPart, []int{0, 0, 0, 0}},
		{"reordered", FSReorderedBank, []int{2, 1, 1, 1}},
	}
	mix, err := workload.Rate("milc", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(mix, tc.kind)
			cfg.TargetReads = 0
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4000; i++ {
				sys.Step()
			}
			err = sys.Reconfigure(tc.weights)
			if err == nil {
				t.Fatal("bad weights accepted")
			}
			if fsmerr.CodeOf(err) != fsmerr.CodeConfig {
				t.Errorf("error code %q, want %q (%v)", fsmerr.CodeOf(err), fsmerr.CodeConfig, err)
			}
			// The old schedule must keep serving reads after the rejection.
			before := sys.totalReads()
			for i := 0; i < 4000; i++ {
				sys.Step()
			}
			if sys.totalReads() <= before {
				t.Fatal("system stopped serving reads after a rejected reconfiguration")
			}
		})
	}
}
