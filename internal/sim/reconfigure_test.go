package sim

import (
	"testing"

	"fsmem/internal/workload"
)

// TestReconfigureSLA performs the §5.1 SLA change mid-run: drain, swap to
// weighted slots, keep running. The channel model validates every command,
// so a broken handover would panic.
func TestReconfigureSLA(t *testing.T) {
	mix, err := workload.Rate("milc", 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(mix, FSRankPart)
	cfg.TargetReads = 0
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 60_000; i++ {
		sys.Step()
	}
	var before []int64
	for d := range sys.Controller().Dom {
		before = append(before, sys.Controller().Dom[d].Reads)
	}

	if err := sys.Reconfigure([]int{3, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 120_000; i++ {
		sys.Step()
	}
	ctl := sys.Controller()
	d0 := ctl.Dom[0].Reads - before[0]
	d1 := ctl.Dom[1].Reads - before[1]
	if d0 == 0 || d1 == 0 {
		t.Fatalf("service stalled after reconfiguration: %d / %d", d0, d1)
	}
	// Domain 0 now holds 3 of 6 slots; under saturation it should clearly
	// out-serve a weight-1 domain.
	if float64(d0) < 1.5*float64(d1) {
		t.Errorf("post-reconfiguration service ratio %.2f (reads %d vs %d), want > 1.5", float64(d0)/float64(d1), d0, d1)
	}
}

// TestReconfigureRejectsNonFS pins the documented restriction.
func TestReconfigureRejectsNonFS(t *testing.T) {
	mix, err := workload.Rate("milc", 4)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(DefaultConfig(mix, Baseline))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Reconfigure([]int{2, 1, 1, 1}); err == nil {
		t.Fatal("baseline reconfiguration should be rejected")
	}
}
