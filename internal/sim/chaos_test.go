package sim

import (
	"testing"

	"fsmem/internal/fault"
	"fsmem/internal/workload"
)

func campaignConfig(t *testing.T, k SchedulerKind) Config {
	t.Helper()
	mix, err := workload.Rate("milc", 4)
	if err != nil {
		t.Fatal(err)
	}
	return DefaultConfig(mix, k)
}

// TestCampaignFSDetectsOrHarmless is the tentpole assertion: under every
// standard fault plan, every Fixed Service variant either detects the
// fault or provably leaves all victim domains' command timing unchanged.
// Zero undetected timing violations.
func TestCampaignFSDetectsOrHarmless(t *testing.T) {
	for _, k := range []SchedulerKind{FSRankPart, FSBankPart, FSReorderedBank, FSNoPart, FSNoPartTriple} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			cfg := campaignConfig(t, k)
			plans := fault.CampaignPlans(len(cfg.Mix.Profiles), 7)
			res, err := RunCampaign(cfg, plans)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Outcomes) != len(plans) {
				t.Fatalf("got %d outcomes for %d plans", len(res.Outcomes), len(plans))
			}
			for _, o := range res.Outcomes {
				t.Logf("%-18s %-10s timing=%d schedule=%d scheduler=%d changed=%v injected=%+v",
					o.Plan, o.Verdict, o.TimingViolations, o.ScheduleViolations,
					o.SchedulerViolations, o.ChangedDomains, o.Injected)
				if o.Verdict == VerdictUndetected {
					t.Errorf("plan %s: silent non-interference failure (changed domains %v)",
						o.Plan, o.ChangedDomains)
				}
			}
		})
	}
}

// TestCampaignFSDetectsDerates pins down that marginal hardware is caught,
// not merely tolerated: a tRCD derate must be flagged by the shadow
// checker under FS, because the static offsets assume the nominal tRCD.
func TestCampaignFSDetectsDerates(t *testing.T) {
	cfg := campaignConfig(t, FSRankPart)
	res, err := SimulateChaos(cfg, &fault.Plan{
		Name:    "trcd",
		Derates: []fault.RankDerate{{Rank: -1, Derate: fault.Derate{TRCD: 2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Monitor.TimingViolations == 0 {
		t.Fatal("tRCD derate on true hardware went unnoticed by the shadow checker")
	}
}

// TestCampaignBaselineLeaks demonstrates the flip side: the non-secure
// FR-FCFS baseline under a single-domain load fault silently changes other
// domains' command timing — the monitor has nothing to flag (no schedule
// to check) and the victim traces diverge.
func TestCampaignBaselineLeaks(t *testing.T) {
	cfg := campaignConfig(t, Baseline)
	plans := fault.CampaignPlans(len(cfg.Mix.Profiles), 7)
	res, err := RunCampaign(cfg, plans)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		t.Logf("%-18s %-10s timing=%d schedule=%d scheduler=%d changed=%v",
			o.Plan, o.Verdict, o.TimingViolations, o.ScheduleViolations,
			o.SchedulerViolations, o.ChangedDomains)
	}
	if res.Undetected() == 0 {
		t.Fatal("baseline should silently leak under at least one load fault")
	}
}

// TestChaosZeroPlanMatchesUnfaulted: the zero plan must reproduce the
// unfaulted run exactly — same trace hashes, clean monitor.
func TestChaosZeroPlanMatchesUnfaulted(t *testing.T) {
	cfg := campaignConfig(t, FSRankPart)
	cfg.TargetReads = 0
	cfg.MaxBusCycles = CampaignCycles

	plain, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chaos, err := SimulateChaos(cfg, &fault.Plan{Name: "zero", Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Monitor.Detected() || chaos.Monitor.Detected() {
		t.Fatalf("clean runs flagged: plain=%+v chaos=%+v", plain.Monitor, chaos.Monitor)
	}
	for d := range plain.Monitor.DomainTraces {
		if plain.Monitor.DomainTraces[d] != chaos.Monitor.DomainTraces[d] {
			t.Errorf("domain %d trace diverged under the zero plan", d)
		}
	}
	if plain.Monitor.Commands != chaos.Monitor.Commands {
		t.Errorf("command counts diverged: %d vs %d", plain.Monitor.Commands, chaos.Monitor.Commands)
	}
}
