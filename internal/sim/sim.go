// Package sim assembles the full system: one core per security domain
// driving a synthetic workload through a ROB model, a memory controller
// with a pluggable scheduling policy, and the cycle-accurate DRAM channel.
// The clock loop ticks in DRAM bus cycles; cores run CPUCyclesPerBusCycle
// CPU cycles per tick (4 at 3.2 GHz / DDR3-1600).
package sim

import (
	"fmt"

	"fsmem/internal/addr"
	"fsmem/internal/core"
	"fsmem/internal/cpu"
	"fsmem/internal/dram"
	"fsmem/internal/mem"
	"fsmem/internal/prefetch"
	"fsmem/internal/sched"
	"fsmem/internal/stats"
	"fsmem/internal/trace"
	"fsmem/internal/workload"
)

// SchedulerKind selects the memory scheduling policy under test.
type SchedulerKind int

const (
	// Baseline is the optimized non-secure FR-FCFS scheduler.
	Baseline SchedulerKind = iota
	// TPBank is temporal partitioning with bank partitioning.
	TPBank
	// TPNone is temporal partitioning with no spatial partitioning.
	TPNone
	// FSRankPart .. FSNoPartTriple are the Fixed Service design points.
	FSRankPart
	FSBankPart
	FSReorderedBank
	FSNoPart
	FSNoPartTriple
)

// String names the scheduler with the paper's abbreviations.
func (k SchedulerKind) String() string {
	switch k {
	case Baseline:
		return "Baseline"
	case TPBank:
		return "TP_BP"
	case TPNone:
		return "TP_NP"
	case FSRankPart:
		return "FS_RP"
	case FSBankPart:
		return "FS_BP"
	case FSReorderedBank:
		return "FS_Reordered_BP"
	case FSNoPart:
		return "FS_NP"
	case FSNoPartTriple:
		return "FS_NP_Optimized"
	default:
		return fmt.Sprintf("SchedulerKind(%d)", int(k))
	}
}

// IsFS reports whether the kind is a Fixed Service variant.
func (k SchedulerKind) IsFS() bool { return k >= FSRankPart }

// FSVariant maps the kind to its core.Variant; only valid when IsFS.
func (k SchedulerKind) FSVariant() core.Variant {
	return core.Variant(k - FSRankPart)
}

// Partition returns the spatial partitioning the policy assumes for page
// coloring.
func (k SchedulerKind) Partition() addr.PartitionKind {
	switch k {
	case TPBank, FSBankPart, FSReorderedBank:
		return addr.PartitionBank
	case FSRankPart:
		return addr.PartitionRank
	default:
		return addr.PartitionNone
	}
}

// AllSecure lists the five secure design points of Figure 3/6.
func AllSecure() []SchedulerKind {
	return []SchedulerKind{FSRankPart, FSReorderedBank, TPBank, FSNoPartTriple, TPNone}
}

// Config describes one simulation.
type Config struct {
	DRAM      dram.Params
	Mix       workload.Mix
	Scheduler SchedulerKind

	// TPTurnLength sets the TP turn in bus cycles (0 = the mode's minimum,
	// the best configuration per Figure 5).
	TPTurnLength int64

	// Prefetch enables the sandbox prefetcher (Figure 7).
	Prefetch bool

	// Energy enables the FS energy optimizations (Figure 9).
	Energy core.EnergyOpts

	// RefreshEnabled turns on refresh management (supported by the baseline
	// and by FS with rank partitioning, which folds deterministic refresh
	// windows into the slot grid; see DESIGN.md).
	RefreshEnabled bool

	// SLAWeights assigns each domain a number of FS issue slots per
	// interval (§5.1); nil means equal service.
	SLAWeights []int

	// FSSlotSpacing overrides the solver's slot spacing l (0 = solve).
	// Used by the ablation studies to quantify the cost of pessimistic
	// spacings.
	FSSlotSpacing int

	Seed uint64

	// StreamFactory, when non-nil, overrides the synthetic workload
	// generator for each domain — e.g. to drive the system from a recorded
	// trace or a cache-filtered pre-LLC stream. The mix still provides the
	// domain count and labels.
	StreamFactory func(domain int, space addr.Space, seed uint64) trace.Stream

	// TargetReads stops the run once this many demand reads completed
	// (the paper uses 1M; tests and benches scale down).
	TargetReads int64
	// MaxBusCycles is a safety stop.
	MaxBusCycles int64
}

// DefaultConfig returns an 8-core Table 1 configuration for the given mix
// and scheduler.
func DefaultConfig(mix workload.Mix, k SchedulerKind) Config {
	return Config{
		DRAM:         dram.DDR3_1600(),
		Mix:          mix,
		Scheduler:    k,
		Seed:         42,
		TargetReads:  20000,
		MaxBusCycles: 40_000_000,
	}
}

// Result bundles the run statistics with FS engine counters (nil for
// non-FS policies).
type Result struct {
	Run stats.Run
	FS  *core.FSStats
}

// System is one assembled simulation.
type System struct {
	cfg   Config
	ctl   *mem.Controller
	cores []*cpu.Core
	fs    *core.FS
}

// New builds the system. It validates the configuration, derives each
// domain's partition space, and wires cores to the controller.
func New(cfg Config) (*System, error) {
	if err := cfg.DRAM.Validate(); err != nil {
		return nil, err
	}
	domains := len(cfg.Mix.Profiles)
	if domains == 0 {
		return nil, fmt.Errorf("sim: mix %q has no profiles", cfg.Mix.Name)
	}
	for _, p := range cfg.Mix.Profiles {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}

	var policy mem.Scheduler
	var fs *core.FS
	mcfg := mem.DefaultConfig(domains)
	switch cfg.Scheduler {
	case Baseline:
		b := sched.NewBaseline(cfg.DRAM, mcfg)
		b.RefreshEnabled = cfg.RefreshEnabled
		policy = b
	case TPBank, TPNone:
		mode := sched.TPBankPartitioned
		if cfg.Scheduler == TPNone {
			mode = sched.TPNoPartitioning
		}
		turn := cfg.TPTurnLength
		if turn == 0 {
			turn = mode.MinTurnLength(cfg.DRAM)
		}
		tp, err := sched.NewTP(cfg.DRAM, mode, domains, turn)
		if err != nil {
			return nil, err
		}
		policy = tp
	default:
		var err error
		fs, err = core.NewFS(cfg.DRAM, core.Config{
			Variant:        cfg.Scheduler.FSVariant(),
			Domains:        domains,
			Seed:           cfg.Seed,
			Energy:         cfg.Energy,
			Weights:        cfg.SLAWeights,
			RefreshEnabled: cfg.RefreshEnabled,
			L:              cfg.FSSlotSpacing,
		})
		if err != nil {
			return nil, err
		}
		policy = fs
	}

	ctl := mem.NewController(cfg.DRAM, mcfg, policy)
	if cfg.Prefetch {
		ctl.EnablePrefetch(func(int) *prefetch.Sandbox { return prefetch.New(cfg.DRAM) })
	}

	s := &System{cfg: cfg, ctl: ctl, fs: fs}
	rng := trace.NewRNG(cfg.Seed)
	for d := 0; d < domains; d++ {
		space, err := addr.SpaceFor(cfg.Scheduler.Partition(), d, domains, cfg.DRAM)
		if err != nil {
			return nil, err
		}
		var stream trace.Stream
		seed := rng.Uint64()
		if cfg.StreamFactory != nil {
			stream = cfg.StreamFactory(d, space, seed)
		} else {
			stream = workload.NewGenerator(cfg.Mix.Profiles[d], space, cfg.DRAM, seed)
		}
		s.cores = append(s.cores, cpu.NewCore(d, stream, ctl, &ctl.Dom[d]))
	}
	return s, nil
}

// Controller exposes the memory controller (for examples and tests).
func (s *System) Controller() *mem.Controller { return s.ctl }

// Reconfigure performs the §5.1 SLA change: it drains the memory
// controller "similar to a CPU pipeline drain on a context-switch" (cores
// are stalled, queued transactions finish under the old schedule), then
// swaps in a fresh Fixed Service engine with the new slot weights. Only
// FS policies can be reconfigured, and the spatial partitioning (page
// coloring) is unchanged.
func (s *System) Reconfigure(weights []int) error {
	if s.fs == nil {
		return fmt.Errorf("sim: only Fixed Service schedulers support SLA reconfiguration")
	}
	// Drain in two phases: first let queued demand transactions finish
	// under the old schedule (cores stalled), then quiesce slot planning so
	// the pipeline itself empties.
	deadline := s.ctl.Cycle + 4_000_000
	for s.ctl.PendingReads() > 0 || s.ctl.PendingWrites() > 0 {
		s.ctl.Tick()
		if s.ctl.Cycle > deadline {
			return fmt.Errorf("sim: drain phase 1 did not complete by cycle %d", deadline)
		}
	}
	s.fs.BeginDrain()
	for !(s.ctl.Drained() && s.fs.Idle()) {
		s.ctl.Tick()
		if s.ctl.Cycle > deadline {
			return fmt.Errorf("sim: drain phase 2 did not complete by cycle %d", deadline)
		}
	}
	fs, err := core.NewFS(s.cfg.DRAM, core.Config{
		Variant:        s.cfg.Scheduler.FSVariant(),
		Domains:        len(s.cfg.Mix.Profiles),
		Seed:           s.cfg.Seed + 1,
		Energy:         s.cfg.Energy,
		Weights:        weights,
		RefreshEnabled: s.cfg.RefreshEnabled,
		StartCycle:     s.ctl.Cycle + 1,
	})
	if err != nil {
		return err
	}
	s.fs = fs
	s.ctl.SetScheduler(fs)
	s.cfg.SLAWeights = weights
	return nil
}

// Step advances the system by one DRAM bus cycle.
func (s *System) Step() {
	s.ctl.Tick()
	for cc := 0; cc < s.cfg.DRAM.CPUCyclesPerBusCycle; cc++ {
		for _, c := range s.cores {
			c.Cycle()
		}
	}
}

// Run executes until TargetReads demand reads completed (or the safety
// stop) and returns the collected statistics.
func (s *System) Run() Result {
	max := s.cfg.MaxBusCycles
	if max == 0 {
		max = 40_000_000
	}
	for s.ctl.Cycle < max {
		s.Step()
		if s.cfg.TargetReads > 0 && s.totalReads() >= s.cfg.TargetReads {
			break
		}
	}
	run := stats.Run{
		Scheduler: s.ctl.Scheduler().Name(),
		Workload:  s.cfg.Mix.Name,
		BusCycles: s.ctl.Cycle,
		Domains:   append([]stats.Domain(nil), s.ctl.Dom...),
		Channel:   s.ctl.Chan.Counters,
		Latency:   s.ctl.LatHist,
	}
	var fsStats *core.FSStats
	if s.fs != nil {
		st := s.fs.Stats
		fsStats = &st
	}
	return Result{Run: run, FS: fsStats}
}

func (s *System) totalReads() int64 {
	var n int64
	for d := range s.ctl.Dom {
		n += s.ctl.Dom[d].Reads
	}
	return n
}

// Simulate is the one-call convenience: build and run.
func Simulate(cfg Config) (Result, error) {
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Run(), nil
}
