// Package sim assembles the full system: one core per security domain
// driving a synthetic workload through a ROB model, a memory controller
// with a pluggable scheduling policy, and the cycle-accurate DRAM channel.
// The clock loop ticks in DRAM bus cycles; cores run CPUCyclesPerBusCycle
// CPU cycles per tick (4 at 3.2 GHz / DDR3-1600).
package sim

import (
	"context"
	"fmt"
	"os"
	"time"

	"fsmem/internal/addr"
	"fsmem/internal/core"
	"fsmem/internal/cpu"
	"fsmem/internal/dram"
	"fsmem/internal/fault"
	"fsmem/internal/fsmerr"
	"fsmem/internal/mem"
	"fsmem/internal/obs"
	"fsmem/internal/prefetch"
	"fsmem/internal/sched"
	"fsmem/internal/stats"
	"fsmem/internal/trace"
	"fsmem/internal/workload"
)

// SchedulerKind selects the memory scheduling policy under test.
type SchedulerKind int

const (
	// Baseline is the optimized non-secure FR-FCFS scheduler.
	Baseline SchedulerKind = iota
	// TPBank is temporal partitioning with bank partitioning.
	TPBank
	// TPNone is temporal partitioning with no spatial partitioning.
	TPNone
	// FSRankPart .. FSNoPartTriple are the Fixed Service design points.
	FSRankPart
	FSBankPart
	FSReorderedBank
	FSNoPart
	FSNoPartTriple
)

// String names the scheduler with the paper's abbreviations.
func (k SchedulerKind) String() string {
	switch k {
	case Baseline:
		return "Baseline"
	case TPBank:
		return "TP_BP"
	case TPNone:
		return "TP_NP"
	case FSRankPart:
		return "FS_RP"
	case FSBankPart:
		return "FS_BP"
	case FSReorderedBank:
		return "FS_Reordered_BP"
	case FSNoPart:
		return "FS_NP"
	case FSNoPartTriple:
		return "FS_NP_Optimized"
	default:
		return fmt.Sprintf("SchedulerKind(%d)", int(k))
	}
}

// IsFS reports whether the kind is a Fixed Service variant.
func (k SchedulerKind) IsFS() bool { return k >= FSRankPart }

// FSVariant maps the kind to its core.Variant; only valid when IsFS.
func (k SchedulerKind) FSVariant() core.Variant {
	return core.Variant(k - FSRankPart)
}

// Partition returns the spatial partitioning the policy assumes for page
// coloring.
func (k SchedulerKind) Partition() addr.PartitionKind {
	switch k {
	case TPBank, FSBankPart, FSReorderedBank:
		return addr.PartitionBank
	case FSRankPart:
		return addr.PartitionRank
	default:
		return addr.PartitionNone
	}
}

// AllSecure lists the five secure design points of Figure 3/6.
func AllSecure() []SchedulerKind {
	return []SchedulerKind{FSRankPart, FSReorderedBank, TPBank, FSNoPartTriple, TPNone}
}

// Config describes one simulation.
type Config struct {
	DRAM      dram.Params
	Mix       workload.Mix
	Scheduler SchedulerKind

	// Channels selects the memory-fabric width: how many independent
	// channel controllers the system instantiates, each with its own
	// scheduler instance and clock. 0 defers to DRAM.Channels (1 in the
	// stock geometries); both >1 and disagreeing is a configuration
	// error. With one channel the system is the classic single-controller
	// machine, byte-identical to the pre-fabric simulator.
	Channels int
	// Routing selects how requests map to channels when Channels > 1:
	// addr.RouteColored page-colors contiguous domain blocks onto
	// dedicated channels (no cross-domain sharing, Section 4.1);
	// addr.RouteInterleaved stripes every domain across all channels by
	// address bits (channels become shared, contended resources).
	Routing addr.Routing

	// TPTurnLength sets the TP turn in bus cycles (0 = the mode's minimum,
	// the best configuration per Figure 5).
	TPTurnLength int64

	// Prefetch enables the sandbox prefetcher (Figure 7).
	Prefetch bool

	// Energy enables the FS energy optimizations (Figure 9).
	Energy core.EnergyOpts

	// RefreshEnabled turns on refresh management (supported by the baseline
	// and by FS with rank partitioning, which folds deterministic refresh
	// windows into the slot grid; see DESIGN.md).
	RefreshEnabled bool

	// SLAWeights assigns each domain a number of FS issue slots per
	// interval (§5.1); nil means equal service.
	SLAWeights []int

	// FSSlotSpacing overrides the solver's slot spacing l (0 = solve).
	// Used by the ablation studies to quantify the cost of pessimistic
	// spacings.
	FSSlotSpacing int

	Seed uint64

	// Fault, when non-nil, runs the simulation under the given deterministic
	// fault plan (see internal/fault): timing derates on the monitor's
	// shadow checker, command-stream perturbations between scheduler and
	// device, and load faults. The always-on monitor reports what the
	// faults did in Result.Monitor.
	Fault *fault.Plan

	// WallClockBudget bounds the real time one run may take (0 = none).
	// When exceeded the run stops early with Result.Truncated set rather
	// than hanging the caller.
	WallClockBudget time.Duration

	// StreamFactory, when non-nil, overrides the synthetic workload
	// generator for each domain — e.g. to drive the system from a recorded
	// trace or a cache-filtered pre-LLC stream. The mix still provides the
	// domain count and labels.
	StreamFactory func(domain int, space addr.Space, seed uint64) trace.Stream

	// TargetReads stops the run once this many demand reads completed
	// (the paper uses 1M; tests and benches scale down).
	TargetReads int64
	// MaxBusCycles is a safety stop.
	MaxBusCycles int64

	// Observe, when non-nil, attaches the observability layer: a bounded
	// command/event tracer on the controller and a metrics snapshot built at
	// end of run. Nil keeps the hot path at a single nil-check per
	// instrumentation site (see internal/obs).
	Observe *obs.Options

	// DenseLoop disables the event-horizon fast-forward kernel and runs the
	// original dense per-cycle loop (DESIGN.md §13). The two produce
	// byte-identical Results — enforced by TestFastForwardEquivalence — so
	// this is purely an escape hatch for differential testing and debugging.
	// The FSMEM_DENSE environment variable (any non-empty value) forces the
	// dense loop process-wide.
	DenseLoop bool
}

// envDense pins the dense loop for the whole process, read once so the hot
// loop never consults the environment.
var envDense = os.Getenv("FSMEM_DENSE") != ""

// DefaultConfig returns an 8-core Table 1 configuration for the given mix
// and scheduler.
func DefaultConfig(mix workload.Mix, k SchedulerKind) Config {
	return Config{
		DRAM:         dram.DDR3_1600(),
		Mix:          mix,
		Scheduler:    k,
		Seed:         42,
		TargetReads:  20000,
		MaxBusCycles: 40_000_000,
	}
}

// Result bundles the run statistics with FS engine counters (nil for
// non-FS policies) and the runtime-verification report.
type Result struct {
	Run stats.Run
	FS  *core.FSStats

	// Monitor is the always-on runtime verification report: shadow-checker
	// timing violations, schedule divergences (FS only), and per-domain
	// command-trace hashes.
	Monitor *fault.Report

	// Truncated is set when the run stopped on the max-cycle watchdog or
	// the wall-clock budget instead of reaching TargetReads; the statistics
	// are partial but internally consistent.
	Truncated      bool
	TruncateReason string

	// Metrics is the end-of-run observability snapshot (nil unless
	// Config.Observe was set).
	Metrics obs.Snapshot
	// Trace is the bounded command/event trace (nil unless Config.Observe
	// was set). Export it with obs.WriteJSONL or obs.WriteChrome. In a
	// multi-channel run the per-channel traces are merged by cycle, with
	// each event's Chan field naming its channel.
	Trace *obs.Tracer

	// PerChannel holds each channel's own Result in a multi-channel run
	// (nil for single-channel runs). Under colored routing every entry is
	// byte-identical to the standalone single-channel simulation of that
	// channel's domain block — the legacy SimulateChannels semantics.
	PerChannel []Result
}

// spikeState tracks one pending queue-pressure spike: extra demand reads
// force-fed to a domain's read queue starting at a cycle.
type spikeState struct {
	domain int
	at     int64
	addrs  []dram.Address
	next   int
}

// System is one assembled simulation.
type System struct {
	cfg   Config
	ctl   *mem.Controller
	cores []*cpu.Core
	fs    *core.FS

	mon    *fault.Monitor
	inj    *fault.Injector
	spikes []*spikeState

	// Multi-channel fabric mode (nil/empty when Channels <= 1; the
	// single-channel fields above are unused then, keeping the classic
	// path untouched). See fabric.go.
	fabric    *mem.Fabric
	chans     []*simChannel
	coreStats []stats.Domain // interleaved mode: CPU-side per-domain stats
	clock     int64          // master bus-cycle clock across channels

	// Fast-forward kernel accounting (see FastForward). Deliberately kept
	// out of the obs snapshot: Results must stay byte-identical between
	// dense and fast-forward runs, and these counters differ by definition.
	ffJumps   int64
	ffSkipped int64
}

// New builds the system. It validates the configuration, derives each
// domain's partition space, and wires cores to the controller.
func New(cfg Config) (*System, error) {
	if err := cfg.DRAM.Validate(); err != nil {
		return nil, fsmerr.Wrap(fsmerr.CodeConfig, "sim.New", err)
	}
	domains := len(cfg.Mix.Profiles)
	if domains == 0 {
		return nil, fsmerr.New(fsmerr.CodeWorkload, "sim.New", "mix %q has no profiles", cfg.Mix.Name)
	}
	for _, p := range cfg.Mix.Profiles {
		if err := p.Validate(); err != nil {
			return nil, fsmerr.Wrap(fsmerr.CodeWorkload, "sim.New", err)
		}
	}
	channels, err := cfg.channels()
	if err != nil {
		return nil, err
	}
	if channels > 1 {
		return newMulti(cfg, channels)
	}

	var policy mem.Scheduler
	var fs *core.FS
	mcfg := mem.DefaultConfig(domains)
	switch cfg.Scheduler {
	case Baseline:
		b := sched.NewBaseline(cfg.DRAM, mcfg)
		b.RefreshEnabled = cfg.RefreshEnabled
		policy = b
	case TPBank, TPNone:
		mode := sched.TPBankPartitioned
		if cfg.Scheduler == TPNone {
			mode = sched.TPNoPartitioning
		}
		turn := cfg.TPTurnLength
		if turn == 0 {
			turn = mode.MinTurnLength(cfg.DRAM)
		}
		tp, err := sched.NewTP(cfg.DRAM, mode, domains, turn)
		if err != nil {
			return nil, fsmerr.Wrap(fsmerr.CodeConfig, "sim.New", err)
		}
		policy = tp
	default:
		var err error
		fs, err = core.NewFS(cfg.DRAM, core.Config{
			Variant:        cfg.Scheduler.FSVariant(),
			Domains:        domains,
			Seed:           cfg.Seed,
			Energy:         cfg.Energy,
			Weights:        cfg.SLAWeights,
			RefreshEnabled: cfg.RefreshEnabled,
			L:              cfg.FSSlotSpacing,
		})
		if err != nil {
			return nil, fsmerr.Wrap(fsmerr.CodeConfig, "sim.New", err)
		}
		policy = fs
	}

	ctl := mem.NewController(cfg.DRAM, mcfg, policy)
	if cfg.Observe != nil {
		ctl.Obs = obs.NewTracer(cfg.Observe)
	}
	if cfg.Prefetch {
		ctl.EnablePrefetch(func(int) *prefetch.Sandbox { return prefetch.New(cfg.DRAM) })
	}

	s := &System{cfg: cfg, ctl: ctl, fs: fs}

	// Always-on runtime verification: every run is shadowed by an
	// independent timing checker; FS runs additionally assert that the bus
	// carries exactly the statically planned command stream.
	s.mon = fault.NewMonitor(cfg.DRAM, domains)
	if cfg.Scheduler.IsFS() {
		s.mon.EnableScheduleCheck()
	}
	if cfg.Fault != nil {
		s.mon.ApplyDerates(cfg.Fault.Derates)
		inj := fault.NewInjector(cfg.Fault, cfg.DRAM)
		if inj.Active() {
			s.inj = inj
			ctl.AttachInjector(inj)
		}
		for _, l := range cfg.Fault.Spikes() {
			if l.Domain < 0 || l.Domain >= domains || l.Count <= 0 {
				return nil, fsmerr.New(fsmerr.CodeFault, "sim.New",
					"queue spike targets domain %d (of %d) with count %d", l.Domain, domains, l.Count)
			}
			sp := &spikeState{domain: l.Domain, at: l.AtCycle}
			srng := trace.NewRNG(cfg.Fault.Seed ^ 0x73706b65 ^ uint64(l.Domain))
			space, err := addr.SpaceFor(cfg.Scheduler.Partition(), l.Domain, domains, cfg.DRAM)
			if err != nil {
				return nil, fsmerr.Wrap(fsmerr.CodeConfig, "sim.New", err)
			}
			for i := 0; i < l.Count; i++ {
				sp.addrs = append(sp.addrs, dram.Address{
					Rank: space.Ranks[srng.Intn(len(space.Ranks))],
					Bank: space.Banks[srng.Intn(len(space.Banks))],
					Row:  srng.Intn(cfg.DRAM.RowsPerBank),
					Col:  srng.Intn(cfg.DRAM.ColsPerRow),
				})
			}
			s.spikes = append(s.spikes, sp)
		}
	}
	ctl.AttachMonitor(s.mon)

	rng := trace.NewRNG(cfg.Seed)
	for d := 0; d < domains; d++ {
		space, err := addr.SpaceFor(cfg.Scheduler.Partition(), d, domains, cfg.DRAM)
		if err != nil {
			return nil, fsmerr.Wrap(fsmerr.CodeConfig, "sim.New", err)
		}
		var stream trace.Stream
		seed := rng.Uint64()
		if cfg.StreamFactory != nil {
			stream = cfg.StreamFactory(d, space, seed)
		} else {
			stream = workload.NewGenerator(cfg.Mix.Profiles[d], space, cfg.DRAM, seed)
		}
		stream = cfg.Fault.StreamFor(d, stream)
		s.cores = append(s.cores, cpu.NewCore(d, stream, ctl, &ctl.Dom[d]))
	}
	return s, nil
}

// channels resolves the effective fabric width from Config.Channels and
// DRAM.Channels, rejecting a disagreement and (under colored routing) a
// domain count that does not split evenly over the channels.
func (cfg Config) channels() (int, error) {
	n := cfg.Channels
	if n < 0 {
		return 0, fsmerr.New(fsmerr.CodeConfig, "sim.New", "channels must be non-negative, got %d", n)
	}
	if n == 0 {
		n = cfg.DRAM.Channels
	} else if cfg.DRAM.Channels > 1 && cfg.DRAM.Channels != n {
		return 0, fsmerr.New(fsmerr.CodeConfig, "sim.New",
			"Config.Channels=%d disagrees with DRAM.Channels=%d", n, cfg.DRAM.Channels)
	}
	if n <= 1 {
		return 1, nil
	}
	if cfg.Routing == addr.RouteColored && len(cfg.Mix.Profiles)%n != 0 {
		return 0, fsmerr.New(fsmerr.CodeConfig, "sim.New",
			"%d domains do not split evenly over %d colored channels", len(cfg.Mix.Profiles), n)
	}
	return n, nil
}

// Controller exposes the memory controller (for examples and tests). It
// is nil in multi-channel mode — use Fabric for the per-channel
// controllers there.
func (s *System) Controller() *mem.Controller { return s.ctl }

// Fabric exposes the multi-channel fabric, or nil in single-channel mode.
func (s *System) Fabric() *mem.Fabric { return s.fabric }

// Channels returns the fabric width (1 for the classic single-channel
// system).
func (s *System) Channels() int {
	if s.fabric != nil {
		return s.fabric.Channels()
	}
	return 1
}

// DomainInstructions returns the retired-instruction count of one global
// security domain, independent of fabric mode: single-channel and
// colored-mode counts live in a controller's stats block, interleaved
// counts in the system-owned CPU-side accumulator. Probes (the leakage
// harness) use this instead of reaching into Controller().Dom.
func (s *System) DomainInstructions(domain int) int64 {
	switch {
	case s.fabric == nil:
		return s.ctl.Dom[domain].Instructions
	case s.coreStats != nil: // interleaved
		return s.coreStats[domain].Instructions
	default: // colored: contiguous blocks of len(domains)/channels
		per := len(s.cfg.Mix.Profiles) / len(s.chans)
		return s.chans[domain/per].ctl.Dom[domain%per].Instructions
	}
}

// Reconfigure performs the §5.1 SLA change: it drains the memory
// controller "similar to a CPU pipeline drain on a context-switch" (cores
// are stalled, queued transactions finish under the old schedule), then
// swaps in a fresh Fixed Service engine with the new slot weights. Only
// FS policies can be reconfigured, and the spatial partitioning (page
// coloring) is unchanged.
func (s *System) Reconfigure(weights []int) error {
	if s.fabric != nil {
		return fsmerr.New(fsmerr.CodeConfig, "sim.Reconfigure",
			"SLA reconfiguration is not supported on a multi-channel fabric")
	}
	if s.fs == nil {
		return fsmerr.New(fsmerr.CodeConfig, "sim.Reconfigure",
			"only Fixed Service schedulers support SLA reconfiguration (running %s)", s.ctl.Scheduler().Name())
	}
	newCfg := core.Config{
		Variant:        s.cfg.Scheduler.FSVariant(),
		Domains:        len(s.cfg.Mix.Profiles),
		Seed:           s.cfg.Seed + 1,
		Energy:         s.cfg.Energy,
		Weights:        weights,
		RefreshEnabled: s.cfg.RefreshEnabled,
	}
	// Validate the new schedule BEFORE draining: a rejected reconfiguration
	// must leave the running schedule untouched, and the drain quiesces the
	// old engine. (A dry construction is cheap — the solver is closed-form.)
	if _, err := core.NewFS(s.cfg.DRAM, newCfg); err != nil {
		return fsmerr.Wrap(fsmerr.CodeConfig, "sim.Reconfigure", err)
	}
	// Drain in two phases: first let queued demand transactions finish
	// under the old schedule (cores stalled), then quiesce slot planning so
	// the pipeline itself empties.
	s.ctl.Obs.Reconfigure(s.ctl.Cycle, obs.ReconfigBegin)
	deadline := s.ctl.Cycle + 4_000_000
	for s.ctl.PendingReads() > 0 || s.ctl.PendingWrites() > 0 {
		s.ctl.Tick()
		if s.ctl.Cycle > deadline {
			e := fsmerr.New(fsmerr.CodeDrain, "sim.Reconfigure",
				"drain phase 1 did not complete by cycle %d (%d reads, %d writes pending)",
				deadline, s.ctl.PendingReads(), s.ctl.PendingWrites())
			e.Cycle = s.ctl.Cycle
			return e
		}
	}
	s.fs.BeginDrain()
	for !(s.ctl.Drained() && s.fs.Idle()) {
		s.ctl.Tick()
		if s.ctl.Cycle > deadline {
			s.fs.CancelDrain()
			e := fsmerr.New(fsmerr.CodeDrain, "sim.Reconfigure",
				"drain phase 2 did not complete by cycle %d", deadline)
			e.Cycle = s.ctl.Cycle
			return e
		}
	}
	s.ctl.Obs.Reconfigure(s.ctl.Cycle, obs.ReconfigDrained)
	newCfg.StartCycle = s.ctl.Cycle + 1
	fs, err := core.NewFS(s.cfg.DRAM, newCfg)
	if err != nil {
		// Pre-validation makes this unreachable, but if it ever fires the
		// old schedule must resume rather than stay quiesced forever.
		s.fs.CancelDrain()
		return fsmerr.Wrap(fsmerr.CodeConfig, "sim.Reconfigure", err)
	}
	s.fs = fs
	s.ctl.SetScheduler(fs)
	s.cfg.SLAWeights = weights
	s.ctl.Obs.Reconfigure(s.ctl.Cycle, obs.ReconfigDone)
	return nil
}

// Step advances the system by one DRAM bus cycle.
func (s *System) Step() {
	if s.fabric != nil {
		s.stepMulti()
		return
	}
	s.ctl.Tick()
	for cc := 0; cc < s.cfg.DRAM.CPUCyclesPerBusCycle; cc++ {
		for _, c := range s.cores {
			c.Cycle()
		}
	}
}

// FastForward reports what the event-horizon kernel did during Run: the
// number of clock jumps taken and the total bus cycles those jumps skipped
// (zero under the dense loop).
func (s *System) FastForward() (jumps, skipped int64) { return s.ffJumps, s.ffSkipped }

// horizon returns the highest bus cycle h ≤ max such that every cycle in
// [now, h) is provably a no-op for every component: the controller (its
// scheduler's own horizon, pending completions, injector replays), pending
// queue-pressure spikes, and every core's distance to its next memory
// enqueue attempt. Returns the current cycle when nothing can be skipped.
// Horizons err early, never late: a component may report an event cycle at
// which nothing happens (costing one dense step), but must never place one
// after a real state change — that is the byte-identity proof obligation
// (DESIGN.md §13).
func (s *System) horizon(max int64) int64 {
	now := s.ctl.Cycle
	h := s.ctl.NextEvent()
	if h <= now {
		return now
	}
	for _, sp := range s.spikes {
		if sp.next >= len(sp.addrs) {
			continue // fully delivered
		}
		if sp.at <= now {
			return now // pumping (possibly retrying against a full queue)
		}
		if sp.at < h {
			h = sp.at
		}
	}
	cpb := int64(s.cfg.DRAM.CPUCyclesPerBusCycle)
	for _, c := range s.cores {
		k := c.NextInteraction()
		if k == cpu.Forever {
			continue // stalled until a completion, which bounds h above
		}
		// Skipping n bus cycles runs n*cpb CPU cycles per core, so the
		// enqueue attempt k CPU cycles away caps the jump at (k-1)/cpb.
		hc := now + (k-1)/cpb
		if hc <= now {
			return now
		}
		if hc < h {
			h = hc
		}
	}
	if h > max {
		h = max
	}
	return h
}

// skipTo jumps the clock from the current cycle to h, batch-applying what
// the skipped cycles would have done: the controller clock advances and
// every core replays its interaction-free CPU cycles arithmetically.
func (s *System) skipTo(h int64) {
	n := h - s.ctl.Cycle
	s.ctl.AdvanceIdle(n)
	nc := n * int64(s.cfg.DRAM.CPUCyclesPerBusCycle)
	for _, c := range s.cores {
		c.Skip(nc)
	}
	s.ffJumps++
	s.ffSkipped += n
}

// pumpSpikes force-feeds due queue-pressure spikes into their domain's
// read queue, retrying each cycle while the queue is full.
func (s *System) pumpSpikes() {
	for _, sp := range s.spikes {
		if s.ctl.Cycle < sp.at {
			continue
		}
		for sp.next < len(sp.addrs) && s.ctl.EnqueueRead(sp.domain, sp.addrs[sp.next], nil) {
			sp.next++
		}
	}
}

// Run executes until TargetReads demand reads completed, the max-cycle
// watchdog, or the wall-clock budget, and returns the collected
// statistics. A watchdog stop yields a partial Result with Truncated set
// instead of an error: the statistics up to the stop are still valid.
func (s *System) Run() Result { return s.RunContext(context.Background()) }

// RunContext is Run with cooperative cancellation: the context is polled on
// the same cadence as the wall-clock watchdog, so a canceled sweep cell
// stops within a few thousand bus cycles instead of stalling its worker
// pool. Cancellation truncates the run exactly like a watchdog stop.
func (s *System) RunContext(ctx context.Context) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.fabric != nil {
		return s.runMulti(ctx)
	}
	max := s.cfg.MaxBusCycles
	if max == 0 {
		max = 40_000_000
	}
	ff := !s.cfg.DenseLoop && !envDense
	var res Result
	start := time.Now()
	// The watchdog/cancellation poll fires once per 8192-cycle window. The
	// dense loop lands exactly on each multiple of 8192; a fast-forward jump
	// may overshoot one, in which case the poll runs at the first cycle past
	// it — same cadence, and only truncation timing (inherently wall-clock-
	// dependent) can observe the difference.
	var nextPoll int64
loop:
	for {
		if s.ctl.Cycle >= max {
			// With TargetReads == 0 a fixed-duration run is intentional (the
			// fault campaign needs cycle-aligned runs); only flag truncation
			// when a read target went unmet.
			if s.cfg.TargetReads > 0 {
				res.Truncated = true
				res.TruncateReason = fmt.Sprintf("max-cycle watchdog: %d bus cycles without reaching %d reads",
					max, s.cfg.TargetReads)
			}
			break
		}
		if s.ctl.Cycle >= nextPoll {
			nextPoll = s.ctl.Cycle - s.ctl.Cycle%8192 + 8192
			if s.cfg.WallClockBudget > 0 && time.Since(start) > s.cfg.WallClockBudget {
				res.Truncated = true
				res.TruncateReason = fmt.Sprintf("wall-clock budget %v exhausted at bus cycle %d",
					s.cfg.WallClockBudget, s.ctl.Cycle)
				break
			}
			select {
			case <-ctx.Done():
				res.Truncated = true
				res.TruncateReason = fmt.Sprintf("context canceled at bus cycle %d: %v", s.ctl.Cycle, ctx.Err())
				break loop
			default:
			}
		}
		if ff {
			if h := s.horizon(max); h > s.ctl.Cycle {
				s.skipTo(h)
				if s.ctl.Cycle >= max {
					continue // let the watchdog classify the stop
				}
				// Fall through: the cycle we landed on hosts the next event,
				// so the dense step runs now rather than paying a second
				// horizon computation that would just return "no skip".
			}
		}
		s.pumpSpikes()
		s.Step()
		if s.cfg.TargetReads > 0 && s.totalReads() >= s.cfg.TargetReads {
			break
		}
	}
	run := stats.Run{
		Scheduler: s.ctl.Scheduler().Name(),
		Workload:  s.cfg.Mix.Name,
		BusCycles: s.ctl.Cycle,
		Domains:   append([]stats.Domain(nil), s.ctl.Dom...),
		Channel:   s.ctl.Chan.Counters,
		Latency:   s.ctl.LatHist,
	}
	var fsStats *core.FSStats
	if s.fs != nil {
		st := s.fs.Stats
		fsStats = &st
	}
	res.Run = run
	res.FS = fsStats
	res.Monitor = s.mon.Finalize(s.inj)
	if s.ctl.Obs != nil {
		res.Trace = s.ctl.Obs
		res.Metrics = s.buildMetrics(&res)
	}
	return res
}

// buildMetrics assembles the end-of-run observability snapshot. The
// registry is built here, outside the cycle loop, so observation costs
// nothing per cycle: every subsystem contributes its plain counters once.
func (s *System) buildMetrics(res *Result) obs.Snapshot {
	reg := obs.NewRegistry()
	reg.Source("sim", obs.SourceFunc(func(emit func(string, float64)) {
		emit("bus_cycles", float64(s.ctl.Cycle))
		truncated := 0.0
		if res.Truncated {
			truncated = 1
		}
		emit("truncated", truncated)
		emit("trace_events", float64(len(s.ctl.Obs.Events())))
		emit("trace_dropped", float64(s.ctl.Obs.Dropped()))
	}))
	reg.Source("dram", s.ctl.Chan.Counters)
	reg.Source("mem", s.ctl)
	if s.fs != nil {
		// The FS engine IS the scheduler; one registration under "fs".
		reg.Source("fs", s.fs)
	} else if src, ok := s.ctl.Scheduler().(obs.MetricSource); ok {
		reg.Source("sched", src)
	}
	for d := range s.ctl.Dom {
		reg.Source(fmt.Sprintf("dom%d", d), s.ctl.Dom[d])
	}
	reg.Source("monitor", res.Monitor)
	return reg.Snapshot()
}

func (s *System) totalReads() int64 {
	var n int64
	for d := range s.ctl.Dom {
		n += s.ctl.Dom[d].Reads
	}
	return n
}

// Simulate is the one-call convenience: build and run.
func Simulate(cfg Config) (Result, error) {
	return SimulateContext(context.Background(), cfg)
}

// SimulateContext is Simulate with cooperative cancellation. A run cut
// short by the context returns a CodeCanceled error rather than a
// truncated Result: partial statistics from a canceled sweep cell must
// never be mistaken for (or cached as) a completed experiment.
func SimulateContext(ctx context.Context, cfg Config) (Result, error) {
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	res := s.RunContext(ctx)
	if ctx != nil && ctx.Err() != nil && res.Truncated {
		return Result{}, fsmerr.Wrap(fsmerr.CodeCanceled, "sim.SimulateContext", ctx.Err())
	}
	return res, nil
}
