package sim

import (
	"context"
	"fmt"
	"sort"
	"time"

	"fsmem/internal/addr"
	"fsmem/internal/core"
	"fsmem/internal/cpu"
	"fsmem/internal/dram"
	"fsmem/internal/fault"
	"fsmem/internal/fsmerr"
	"fsmem/internal/mem"
	"fsmem/internal/obs"
	"fsmem/internal/prefetch"
	"fsmem/internal/sched"
	"fsmem/internal/stats"
	"fsmem/internal/trace"
	"fsmem/internal/workload"
)

// channelSeedStride separates per-channel seeds, matching the legacy
// SimulateChannels derivation so colored fabric runs are byte-identical
// to the old product-of-runs.
const channelSeedStride = 0x9e3779b97f4a7c15

// simChannel is one channel of the multi-channel fabric: a controller
// with its own scheduler instance, clock, monitor, injector, and — under
// colored routing — its own block of cores and spikes.
type simChannel struct {
	id   int
	name string // per-channel workload label ("mix-ch2")
	ctl  *mem.Controller
	fs   *core.FS
	mon  *fault.Monitor
	inj  *fault.Injector

	// Colored routing only: the cores and queue-pressure spikes of this
	// channel's domain block (interleaved runs keep cores and spikes on
	// the System, shared across channels).
	cores  []*cpu.Core
	spikes []*spikeState

	// Colored routing only: the channel freezes — stops ticking — once
	// its own domains complete target demand reads, exactly where the
	// standalone single-channel run of the same block would stop.
	target int64
	frozen bool
}

// reads sums the channel's completed demand reads.
func (ch *simChannel) reads() int64 {
	var n int64
	for d := range ch.ctl.Dom {
		n += ch.ctl.Dom[d].Reads
	}
	return n
}

// newChannelPolicy builds one channel's scheduling policy over the given
// domain count, seeded for that channel (FS static schedules are
// independent per channel).
func newChannelPolicy(cfg Config, domains int, seed uint64) (mem.Scheduler, *core.FS, error) {
	switch cfg.Scheduler {
	case Baseline:
		b := sched.NewBaseline(cfg.DRAM, mem.DefaultConfig(domains))
		b.RefreshEnabled = cfg.RefreshEnabled
		return b, nil, nil
	case TPBank, TPNone:
		mode := sched.TPBankPartitioned
		if cfg.Scheduler == TPNone {
			mode = sched.TPNoPartitioning
		}
		turn := cfg.TPTurnLength
		if turn == 0 {
			turn = mode.MinTurnLength(cfg.DRAM)
		}
		tp, err := sched.NewTP(cfg.DRAM, mode, domains, turn)
		if err != nil {
			return nil, nil, fsmerr.Wrap(fsmerr.CodeConfig, "sim.New", err)
		}
		return tp, nil, nil
	default:
		fs, err := core.NewFS(cfg.DRAM, core.Config{
			Variant:        cfg.Scheduler.FSVariant(),
			Domains:        domains,
			Seed:           seed,
			Energy:         cfg.Energy,
			Weights:        cfg.SLAWeights,
			RefreshEnabled: cfg.RefreshEnabled,
			L:              cfg.FSSlotSpacing,
		})
		if err != nil {
			return nil, nil, fsmerr.Wrap(fsmerr.CodeConfig, "sim.New", err)
		}
		return fs, fs, nil
	}
}

// buildSpikes constructs the queue-pressure spike states for one
// simulated machine of the given domain count (a channel under colored
// routing, the whole system under interleaved), mirroring the
// single-channel construction bit for bit.
func buildSpikes(cfg Config, domains int) ([]*spikeState, error) {
	var out []*spikeState
	for _, l := range cfg.Fault.Spikes() {
		if l.Domain < 0 || l.Domain >= domains || l.Count <= 0 {
			return nil, fsmerr.New(fsmerr.CodeFault, "sim.New",
				"queue spike targets domain %d (of %d) with count %d", l.Domain, domains, l.Count)
		}
		sp := &spikeState{domain: l.Domain, at: l.AtCycle}
		srng := trace.NewRNG(cfg.Fault.Seed ^ 0x73706b65 ^ uint64(l.Domain))
		space, err := addr.SpaceFor(cfg.Scheduler.Partition(), l.Domain, domains, cfg.DRAM)
		if err != nil {
			return nil, fsmerr.Wrap(fsmerr.CodeConfig, "sim.New", err)
		}
		for i := 0; i < l.Count; i++ {
			sp.addrs = append(sp.addrs, dram.Address{
				Rank: space.Ranks[srng.Intn(len(space.Ranks))],
				Bank: space.Banks[srng.Intn(len(space.Banks))],
				Row:  srng.Intn(cfg.DRAM.RowsPerBank),
				Col:  srng.Intn(cfg.DRAM.ColsPerRow),
			})
		}
		out = append(out, sp)
	}
	return out, nil
}

// newMulti assembles an N-channel system. Under colored routing each
// channel is the exact machine the legacy SimulateChannels product built
// for its domain block — same controller sizing, scheduler seed, stream
// seeds, monitor, and spikes — so per-channel results are byte-identical
// to the standalone runs. Under interleaved routing every channel's
// controller spans all domains and cores issue through the fabric's
// address-based router.
func newMulti(cfg Config, channels int) (*System, error) {
	domains := len(cfg.Mix.Profiles)
	s := &System{cfg: cfg}
	colored := cfg.Routing == addr.RouteColored

	chDomains := domains
	per := domains
	if colored {
		per = domains / channels
		chDomains = per
	}

	ctls := make([]*mem.Controller, channels)
	for c := 0; c < channels; c++ {
		seed := cfg.Seed + uint64(c)*channelSeedStride
		policy, fs, err := newChannelPolicy(cfg, chDomains, seed)
		if err != nil {
			return nil, err
		}
		ctl := mem.NewController(cfg.DRAM, mem.DefaultConfig(chDomains), policy)
		if cfg.Observe != nil {
			ctl.Obs = obs.NewTracer(cfg.Observe)
			ctl.Obs.SetChannel(c)
		}
		if cfg.Prefetch {
			ctl.EnablePrefetch(func(int) *prefetch.Sandbox { return prefetch.New(cfg.DRAM) })
		}
		ch := &simChannel{
			id:   c,
			name: fmt.Sprintf("%s-ch%d", cfg.Mix.Name, c),
			ctl:  ctl,
			fs:   fs,
		}
		ch.mon = fault.NewMonitor(cfg.DRAM, chDomains)
		if cfg.Scheduler.IsFS() {
			ch.mon.EnableScheduleCheck()
		}
		if cfg.Fault != nil {
			ch.mon.ApplyDerates(cfg.Fault.Derates)
			inj := fault.NewInjector(cfg.Fault, cfg.DRAM)
			if inj.Active() {
				ch.inj = inj
				ctl.AttachInjector(inj)
			}
			if colored {
				// Each channel runs the full fault plan against its own
				// block, as the legacy product-of-runs did.
				spikes, err := buildSpikes(cfg, per)
				if err != nil {
					return nil, err
				}
				ch.spikes = spikes
			}
		}
		ctl.AttachMonitor(ch.mon)
		if colored && cfg.TargetReads > 0 {
			ch.target = cfg.TargetReads
		}
		ctls[c] = ctl
		s.chans = append(s.chans, ch)
	}
	if cfg.Fault != nil && !colored {
		spikes, err := buildSpikes(cfg, domains)
		if err != nil {
			return nil, err
		}
		s.spikes = spikes
	}
	s.fabric = mem.NewFabric(ctls, cfg.Routing, domains)

	if colored {
		// Stream seeds are drawn per channel in local-domain order from
		// the channel's own RNG — the standalone sub-run's derivation.
		for c, ch := range s.chans {
			rng := trace.NewRNG(cfg.Seed + uint64(c)*channelSeedStride)
			for d := 0; d < per; d++ {
				global := c*per + d
				space, err := addr.SpaceFor(cfg.Scheduler.Partition(), d, per, cfg.DRAM)
				if err != nil {
					return nil, fsmerr.Wrap(fsmerr.CodeConfig, "sim.New", err)
				}
				var stream trace.Stream
				seed := rng.Uint64()
				if cfg.StreamFactory != nil {
					stream = cfg.StreamFactory(d, space, seed)
				} else {
					stream = workloadStream(cfg, global, space, seed)
				}
				stream = cfg.Fault.StreamFor(d, stream)
				ch.cores = append(ch.cores, cpu.NewCore(global, stream, s.fabric, &ch.ctl.Dom[d]))
			}
		}
		return s, nil
	}

	// Interleaved: global cores issue into the fabric; their CPU-side
	// stats live in a system-owned accumulator (each channel's controller
	// keeps the memory-side fields for the traffic it serviced).
	s.coreStats = make([]stats.Domain, domains)
	rng := trace.NewRNG(cfg.Seed)
	for d := 0; d < domains; d++ {
		space, err := addr.SpaceFor(cfg.Scheduler.Partition(), d, domains, cfg.DRAM)
		if err != nil {
			return nil, fsmerr.Wrap(fsmerr.CodeConfig, "sim.New", err)
		}
		var stream trace.Stream
		seed := rng.Uint64()
		if cfg.StreamFactory != nil {
			stream = cfg.StreamFactory(d, space, seed)
		} else {
			stream = workloadStream(cfg, d, space, seed)
		}
		stream = cfg.Fault.StreamFor(d, stream)
		s.cores = append(s.cores, cpu.NewCore(d, stream, s.fabric, &s.coreStats[d]))
	}
	return s, nil
}

// stepMulti advances the whole fabric by one bus cycle: every active
// channel ticks, then every active core runs its CPU cycles. Frozen
// colored channels (target met) no longer tick, exactly as a finished
// standalone run would have stopped.
func (s *System) stepMulti() {
	for _, ch := range s.chans {
		if !ch.frozen {
			ch.ctl.Tick()
		}
	}
	for cc := 0; cc < s.cfg.DRAM.CPUCyclesPerBusCycle; cc++ {
		for _, ch := range s.chans {
			if ch.frozen {
				continue
			}
			for _, c := range ch.cores {
				c.Cycle()
			}
		}
		for _, c := range s.cores {
			c.Cycle()
		}
	}
	s.clock++
}

// horizonMulti folds every active channel's NextEvent, pending spikes,
// and every active core's next memory interaction into one fast-forward
// horizon — the multi-channel extension of horizon(), with the same
// early-never-late obligation per component.
func (s *System) horizonMulti(max int64) int64 {
	now := s.clock
	h := max
	spikeBound := func(spikes []*spikeState) bool {
		for _, sp := range spikes {
			if sp.next >= len(sp.addrs) {
				continue
			}
			if sp.at <= now {
				return false
			}
			if sp.at < h {
				h = sp.at
			}
		}
		return true
	}
	cpb := int64(s.cfg.DRAM.CPUCyclesPerBusCycle)
	coreBound := func(cores []*cpu.Core) bool {
		for _, c := range cores {
			k := c.NextInteraction()
			if k == cpu.Forever {
				continue
			}
			hc := now + (k-1)/cpb
			if hc <= now {
				return false
			}
			if hc < h {
				h = hc
			}
		}
		return true
	}
	for _, ch := range s.chans {
		if ch.frozen {
			continue
		}
		hc := ch.ctl.NextEvent()
		if hc <= now {
			return now
		}
		if hc < h {
			h = hc
		}
		if !spikeBound(ch.spikes) || !coreBound(ch.cores) {
			return now
		}
	}
	if !spikeBound(s.spikes) || !coreBound(s.cores) {
		return now
	}
	if h > max {
		h = max
	}
	return h
}

// skipToMulti jumps the master clock and every active channel and core to
// h, the multi-channel counterpart of skipTo.
func (s *System) skipToMulti(h int64) {
	n := h - s.clock
	nc := n * int64(s.cfg.DRAM.CPUCyclesPerBusCycle)
	for _, ch := range s.chans {
		if ch.frozen {
			continue
		}
		ch.ctl.AdvanceIdle(n)
		for _, c := range ch.cores {
			c.Skip(nc)
		}
	}
	for _, c := range s.cores {
		c.Skip(nc)
	}
	s.clock = h
	s.ffJumps++
	s.ffSkipped += n
}

// pumpSpikesMulti force-feeds due queue-pressure spikes: colored spikes
// go straight into their channel's controller (local domains), global
// interleaved spikes route through the fabric.
func (s *System) pumpSpikesMulti() {
	for _, ch := range s.chans {
		if ch.frozen {
			continue
		}
		for _, sp := range ch.spikes {
			if s.clock < sp.at {
				continue
			}
			for sp.next < len(sp.addrs) && ch.ctl.EnqueueRead(sp.domain, sp.addrs[sp.next], nil) {
				sp.next++
			}
		}
	}
	for _, sp := range s.spikes {
		if s.clock < sp.at {
			continue
		}
		for sp.next < len(sp.addrs) && s.fabric.EnqueueRead(sp.domain, sp.addrs[sp.next], nil) {
			sp.next++
		}
	}
}

// freezeAndDone freezes colored channels whose read target was met this
// cycle and reports whether every channel is frozen (run complete).
func (s *System) freezeAndDone() bool {
	done := true
	for _, ch := range s.chans {
		if ch.frozen {
			continue
		}
		if ch.target > 0 && ch.reads() >= ch.target {
			ch.frozen = true
			continue
		}
		done = false
	}
	return done
}

// totalReadsMulti sums completed demand reads across all channels.
func (s *System) totalReadsMulti() int64 {
	var n int64
	for _, ch := range s.chans {
		n += ch.reads()
	}
	return n
}

// runMulti is the multi-channel RunContext body: the same
// watchdog/poll/fast-forward skeleton as the single-channel loop, with
// lockstep channel clocks, per-channel freezing under colored routing,
// and a global read target under interleaved routing.
func (s *System) runMulti(ctx context.Context) Result {
	max := s.cfg.MaxBusCycles
	if max == 0 {
		max = 40_000_000
	}
	ff := !s.cfg.DenseLoop && !envDense
	colored := s.fabric.Routing() == addr.RouteColored
	var truncReason string
	start := time.Now()
	var nextPoll int64
loop:
	for {
		if s.clock >= max {
			if s.cfg.TargetReads > 0 {
				truncReason = fmt.Sprintf("max-cycle watchdog: %d bus cycles without reaching %d reads",
					max, s.cfg.TargetReads)
			}
			break
		}
		if s.clock >= nextPoll {
			nextPoll = s.clock - s.clock%8192 + 8192
			if s.cfg.WallClockBudget > 0 && time.Since(start) > s.cfg.WallClockBudget {
				truncReason = fmt.Sprintf("wall-clock budget %v exhausted at bus cycle %d",
					s.cfg.WallClockBudget, s.clock)
				break
			}
			select {
			case <-ctx.Done():
				truncReason = fmt.Sprintf("context canceled at bus cycle %d: %v", s.clock, ctx.Err())
				break loop
			default:
			}
		}
		if ff {
			if h := s.horizonMulti(max); h > s.clock {
				s.skipToMulti(h)
				if s.clock >= max {
					continue
				}
			}
		}
		s.pumpSpikesMulti()
		s.stepMulti()
		if colored {
			if s.freezeAndDone() {
				break
			}
		} else if s.cfg.TargetReads > 0 && s.totalReadsMulti() >= s.cfg.TargetReads {
			break
		}
	}
	return s.collectMulti(colored, truncReason)
}

// collectMulti assembles per-channel Results and the merged top-level
// Result. The merged Run reports BusCycles as the wall-clock span (the
// max across channels), the per-channel cycle counts in ChannelCycles,
// and every hardware counter summed — see stats.Run.
func (s *System) collectMulti(colored bool, truncReason string) Result {
	domains := len(s.cfg.Mix.Profiles)
	channels := len(s.chans)
	var res Result

	merged := stats.Run{Workload: s.cfg.Mix.Name}
	if colored {
		merged.Scheduler = fmt.Sprintf("%dch/%s", channels, s.cfg.Scheduler)
	} else {
		merged.Scheduler = fmt.Sprintf("%dch-interleaved/%s", channels, s.cfg.Scheduler)
	}

	var reports []*fault.Report
	var fsTotal *core.FSStats
	for _, ch := range s.chans {
		cres := Result{
			Run: stats.Run{
				Scheduler: ch.ctl.Scheduler().Name(),
				Workload:  ch.name,
				BusCycles: ch.ctl.Cycle,
				Domains:   append([]stats.Domain(nil), ch.ctl.Dom...),
				Channel:   ch.ctl.Chan.Counters,
				Latency:   ch.ctl.LatHist,
			},
			Monitor: ch.mon.Finalize(ch.inj),
		}
		if ch.fs != nil {
			st := ch.fs.Stats
			cres.FS = &st
			if fsTotal == nil {
				fsTotal = &core.FSStats{PowerDownCycles: make([]int64, len(st.PowerDownCycles))}
			}
			fsTotal.RowHitBoosts += st.RowHitBoosts
			fsTotal.PowerDownSlots += st.PowerDownSlots
			for r := range st.PowerDownCycles {
				fsTotal.PowerDownCycles[r] += st.PowerDownCycles[r]
			}
		}
		if colored && !ch.frozen && truncReason != "" {
			cres.Truncated = true
			cres.TruncateReason = truncReason
		}
		reports = append(reports, cres.Monitor)
		res.PerChannel = append(res.PerChannel, cres)

		merged.ChannelCycles = append(merged.ChannelCycles, ch.ctl.Cycle)
		if ch.ctl.Cycle > merged.BusCycles {
			merged.BusCycles = ch.ctl.Cycle
		}
		merged.Channel.Add(ch.ctl.Chan.Counters)
	}

	if colored {
		for _, ch := range s.chans {
			merged.Domains = append(merged.Domains, ch.ctl.Dom...)
			merged.Latency = append(merged.Latency, ch.ctl.LatHist...)
		}
	} else {
		merged.Domains = make([]stats.Domain, domains)
		merged.Latency = make([]*stats.Histogram, domains)
		for d := 0; d < domains; d++ {
			dom := s.coreStats[d]
			h := stats.NewLatencyHistogram()
			for _, ch := range s.chans {
				dom.Add(ch.ctl.Dom[d])
				// Same fixed bucketing everywhere; Merge cannot fail.
				_ = h.Merge(ch.ctl.LatHist[d])
			}
			merged.Domains[d] = dom
			merged.Latency[d] = h
		}
	}

	res.Run = merged
	res.FS = fsTotal
	res.Monitor = mergeReports(reports, colored, domains/max1(channels, colored))
	if truncReason != "" {
		res.Truncated = true
		res.TruncateReason = truncReason
	}
	if s.cfg.Observe != nil {
		tracers := make([]*obs.Tracer, channels)
		for c, ch := range s.chans {
			tracers[c] = ch.ctl.Obs
		}
		res.Trace = obs.Merge(tracers...)
		res.Metrics = s.buildMetricsMulti(&res, merged)
	}
	return res
}

func max1(channels int, colored bool) int {
	if colored {
		return channels
	}
	return 1
}

// mergeReports folds per-channel monitor reports into one system report:
// counters sum, structured violations and per-domain trace hashes
// concatenate (colored channel order is global domain order), the
// unattributed-command hash is FNV-folded across channels, and faulted
// domains are remapped to global ids and deduplicated.
func mergeReports(rs []*fault.Report, colored bool, perChannel int) *fault.Report {
	m := &fault.Report{}
	faulted := map[int]bool{}
	for c, r := range rs {
		m.Commands += r.Commands
		m.TimingViolations += r.TimingViolations
		m.ScheduleViolations += r.ScheduleViolations
		m.SchedulerViolations += r.SchedulerViolations
		m.Violations = append(m.Violations, r.Violations...)
		m.DomainTraces = append(m.DomainTraces, r.DomainTraces...)
		m.DomainBusTraces = append(m.DomainBusTraces, r.DomainBusTraces...)
		m.OtherTrace = m.OtherTrace*1099511628211 ^ r.OtherTrace
		m.Injected.Drops += r.Injected.Drops
		m.Injected.Delays += r.Injected.Delays
		m.Injected.Duplicates += r.Injected.Duplicates
		m.Injected.Extras += r.Injected.Extras
		m.Injected.ReplayRejects += r.Injected.ReplayRejects
		for _, d := range r.FaultedDomains {
			if colored {
				d += c * perChannel
			}
			faulted[d] = true
		}
	}
	for d := range faulted {
		m.FaultedDomains = append(m.FaultedDomains, d)
	}
	sort.Ints(m.FaultedDomains)
	return m
}

// buildMetricsMulti assembles the multi-channel observability snapshot:
// system-wide counters under "sim", each channel's hardware and
// controller sources under a "chN." prefix, merged per-domain stats under
// the usual global "domN" names, and the merged monitor.
func (s *System) buildMetricsMulti(res *Result, merged stats.Run) obs.Snapshot {
	reg := obs.NewRegistry()
	reg.Source("sim", obs.SourceFunc(func(emit func(string, float64)) {
		emit("bus_cycles", float64(s.clock))
		truncated := 0.0
		if res.Truncated {
			truncated = 1
		}
		emit("truncated", truncated)
		emit("channels", float64(len(s.chans)))
		emit("trace_events", float64(len(res.Trace.Events())))
		emit("trace_dropped", float64(res.Trace.Dropped()))
	}))
	for c, ch := range s.chans {
		reg.Source(fmt.Sprintf("ch%d.dram", c), ch.ctl.Chan.Counters)
		reg.Source(fmt.Sprintf("ch%d.mem", c), ch.ctl)
		if ch.fs != nil {
			reg.Source(fmt.Sprintf("ch%d.fs", c), ch.fs)
		} else if src, ok := ch.ctl.Scheduler().(obs.MetricSource); ok {
			reg.Source(fmt.Sprintf("ch%d.sched", c), src)
		}
	}
	for d := range merged.Domains {
		reg.Source(fmt.Sprintf("dom%d", d), merged.Domains[d])
	}
	reg.Source("monitor", res.Monitor)
	return reg.Snapshot()
}

// workloadStream builds the default synthetic generator for one global
// domain (split out so colored and interleaved construction share it).
func workloadStream(cfg Config, globalDomain int, space addr.Space, seed uint64) trace.Stream {
	return workload.NewGenerator(cfg.Mix.Profiles[globalDomain], space, cfg.DRAM, seed)
}
