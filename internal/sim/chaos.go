package sim

import (
	"context"

	"fsmem/internal/fault"
	"fsmem/internal/fsmerr"
	"fsmem/internal/parallel"
)

// FaultVerdict classifies what one fault plan did to one scheduler.
type FaultVerdict string

const (
	// VerdictDetected: the runtime monitor flagged the fault (timing,
	// schedule, or scheduler-reported violation).
	VerdictDetected FaultVerdict = "detected"
	// VerdictHarmless: the monitor stayed clean AND every non-target
	// domain's command trace is identical to the unfaulted reference run —
	// the fault provably did not move any victim's memory timing.
	VerdictHarmless FaultVerdict = "harmless"
	// VerdictUndetected: the monitor stayed clean but some non-target
	// domain's command trace silently diverged — exactly the timing leak
	// the paper's fixed service policies exist to close.
	VerdictUndetected FaultVerdict = "undetected"
)

// FaultOutcome is the campaign verdict for one plan.
type FaultOutcome struct {
	Plan    string
	Verdict FaultVerdict

	TimingViolations    int
	ScheduleViolations  int
	SchedulerViolations int
	Injected            fault.Counts

	// ChangedDomains lists non-target domains whose read-delivery trace —
	// the core-observable timing — diverged from the reference run. A
	// non-empty list without a monitor flag is a silent leak.
	ChangedDomains []int
	// ChangedBusDomains lists non-target domains whose command-bus trace
	// diverged. Diagnostic: expected under reordered bank partitioning
	// (slot order follows the global read/write mix) and FR-FCFS even when
	// the delivery trace is intact.
	ChangedBusDomains []int
}

// CampaignResult is a full fault campaign against one scheduler.
type CampaignResult struct {
	Scheduler string
	Cycles    int64 // fixed run length shared by every run
	Outcomes  []FaultOutcome
}

// Undetected counts silent non-interference failures across the campaign.
// Zero for a sound detection story; expectedly positive for the non-secure
// baseline.
func (c *CampaignResult) Undetected() int {
	n := 0
	for _, o := range c.Outcomes {
		if o.Verdict == VerdictUndetected {
			n++
		}
	}
	return n
}

// CampaignCycles is the default fixed run length for campaign runs: long
// enough that every standard plan fires and its consequences unfold, short
// enough to run the whole matrix in seconds.
const CampaignCycles = 24_000

// SimulateChaos is Simulate under a fault plan: the plan's faults are
// injected and the always-on monitor reports what they did in
// Result.Monitor.
func SimulateChaos(cfg Config, plan *fault.Plan) (Result, error) {
	cfg.Fault = plan
	return Simulate(cfg)
}

// RunCampaign executes every plan against the configuration plus one
// unfaulted reference run, all with the same fixed duration, and classifies
// each fault as detected, harmless, or undetected. The caller's
// TargetReads/MaxBusCycles are overridden: verdicts need cycle-aligned
// runs to compare per-domain command traces. Runs are sharded across a
// GOMAXPROCS-wide worker pool; see RunCampaignContext for an explicit
// worker count and cancellation.
func RunCampaign(cfg Config, plans []*fault.Plan) (*CampaignResult, error) {
	return RunCampaignContext(context.Background(), cfg, plans, 0)
}

// RunCampaignContext is RunCampaign over an explicit worker pool
// (workers <= 0 selects the GOMAXPROCS default). Every run — the unfaulted
// reference and each plan — is an independent cell: each simulation is a
// pure function of its Config (the plans carry their own seeds), so the
// campaign's outcomes are byte-identical for every worker count and
// scheduling order. Verdict classification happens after the pool drains,
// in plan order. Cancellation stops in-flight runs at their next watchdog
// check and surfaces a CodeCanceled error.
func RunCampaignContext(ctx context.Context, cfg Config, plans []*fault.Plan, workers int) (*CampaignResult, error) {
	// A caller that explicitly prepared a fixed-duration config
	// (TargetReads == 0 with a cycle bound) keeps its run length; any
	// read-target config is converted to the standard campaign duration.
	if cfg.TargetReads != 0 || cfg.MaxBusCycles == 0 {
		cfg.MaxBusCycles = CampaignCycles
	}
	cfg.TargetReads = 0
	cfg.Fault = nil

	cells := make([]parallel.Cell[Result], 0, len(plans)+1)
	base := cfg
	cells = append(cells, parallel.Cell[Result]{
		Key: "reference",
		Run: func(ctx context.Context) (Result, error) {
			res, err := SimulateContext(ctx, base)
			if err != nil {
				return Result{}, fsmerr.Wrap(fsmerr.CodeFault, "sim.RunCampaign", err)
			}
			return res, nil
		},
	})
	for _, plan := range plans {
		plan := plan
		run := base
		run.Fault = plan
		cells = append(cells, parallel.Cell[Result]{
			Key: "plan:" + plan.Name,
			Run: func(ctx context.Context) (Result, error) {
				res, err := SimulateContext(ctx, run)
				if err != nil {
					return Result{}, fsmerr.Wrap(fsmerr.CodeFault, "sim.RunCampaign("+plan.Name+")", err)
				}
				return res, nil
			},
		})
	}
	results, err := parallel.Map(ctx, workers, cells)
	if err != nil {
		return nil, err
	}

	ref := results[0]
	if ref.Monitor.Detected() {
		return nil, fsmerr.New(fsmerr.CodeFault, "sim.RunCampaign",
			"reference run of %s is not clean: %d timing, %d schedule, %d scheduler violations",
			cfg.Scheduler, ref.Monitor.TimingViolations, ref.Monitor.ScheduleViolations,
			ref.Monitor.SchedulerViolations)
	}

	out := &CampaignResult{Scheduler: cfg.Scheduler.String(), Cycles: cfg.MaxBusCycles}
	for i, plan := range plans {
		res := results[i+1]
		rep := res.Monitor
		o := FaultOutcome{
			Plan:                plan.Name,
			TimingViolations:    rep.TimingViolations,
			ScheduleViolations:  rep.ScheduleViolations,
			SchedulerViolations: rep.SchedulerViolations,
			Injected:            rep.Injected,
		}
		// Exclude intentionally perturbed domains from the leak verdict:
		// load-fault targets and the direct victims of command faults. Their
		// own timing legitimately changes; the non-interference question is
		// whether anyone *else*'s does.
		targets := plan.TargetDomains()
		for _, d := range rep.FaultedDomains {
			targets[d] = true
		}
		for d := range rep.DomainTraces {
			if targets[d] {
				continue
			}
			if rep.DomainTraces[d] != ref.Monitor.DomainTraces[d] {
				o.ChangedDomains = append(o.ChangedDomains, d)
			}
			if rep.DomainBusTraces[d] != ref.Monitor.DomainBusTraces[d] {
				o.ChangedBusDomains = append(o.ChangedBusDomains, d)
			}
		}
		switch {
		case rep.Detected():
			o.Verdict = VerdictDetected
		case len(o.ChangedDomains) == 0:
			o.Verdict = VerdictHarmless
		default:
			o.Verdict = VerdictUndetected
		}
		out.Outcomes = append(out.Outcomes, o)
	}
	return out, nil
}
