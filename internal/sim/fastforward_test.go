package sim

import (
	"fmt"
	"reflect"
	"testing"

	"fsmem/internal/addr"
	"fsmem/internal/core"
	"fsmem/internal/dram"
	"fsmem/internal/fault"
	"fsmem/internal/mem"
	"fsmem/internal/obs"
	"fsmem/internal/stats"
	"fsmem/internal/workload"
)

// diffLoops runs the same configuration under the dense loop and the
// fast-forward kernel and fails unless the full Results agree bit for bit —
// statistics, monitor report (per-domain command-trace hashes), FS
// counters, the observability snapshot, and every trace event's cycle
// stamp. This is the kernel's proof obligation (DESIGN.md §13): horizons
// may be early, never late.
func diffLoops(t *testing.T, cfg Config) {
	t.Helper()
	dense := cfg
	dense.DenseLoop = true
	a, err := Simulate(dense)
	if err != nil {
		t.Fatal(err)
	}
	fast := cfg
	fast.DenseLoop = false
	b, err := Simulate(fast)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Run, b.Run) {
		t.Errorf("run statistics diverged between dense and fast-forward loops:\ndense %+v\nfast  %+v", a.Run, b.Run)
	}
	if !reflect.DeepEqual(a.Monitor, b.Monitor) {
		t.Error("monitor reports (command-trace hashes, verdicts) diverged between loops")
	}
	if !reflect.DeepEqual(a.FS, b.FS) {
		t.Error("FS counters diverged between loops")
	}
	if a.Truncated != b.Truncated || a.TruncateReason != b.TruncateReason {
		t.Errorf("truncation diverged: dense (%v, %q) vs fast (%v, %q)",
			a.Truncated, a.TruncateReason, b.Truncated, b.TruncateReason)
	}
	if len(a.PerChannel) != len(b.PerChannel) {
		t.Fatalf("per-channel result counts diverged: dense %d vs fast %d", len(a.PerChannel), len(b.PerChannel))
	}
	for c := range a.PerChannel {
		if !reflect.DeepEqual(a.PerChannel[c], b.PerChannel[c]) {
			t.Errorf("channel %d result diverged between loops:\ndense %+v\nfast  %+v",
				c, a.PerChannel[c].Run, b.PerChannel[c].Run)
		}
	}
	if cfg.Observe != nil {
		if !reflect.DeepEqual(a.Metrics, b.Metrics) {
			t.Error("metrics snapshots diverged between loops")
		}
		ae, be := a.Trace.Events(), b.Trace.Events()
		if !reflect.DeepEqual(ae, be) {
			t.Errorf("trace events diverged between loops: dense %d events, fast %d events", len(ae), len(be))
		}
		if a.Trace.Dropped() != b.Trace.Dropped() {
			t.Errorf("trace drop counts diverged: dense %d vs fast %d", a.Trace.Dropped(), b.Trace.Dropped())
		}
	}
}

func allKinds() []SchedulerKind {
	return []SchedulerKind{Baseline, TPBank, TPNone, FSRankPart, FSBankPart, FSReorderedBank, FSNoPart, FSNoPartTriple}
}

// TestFastForwardEquivalence sweeps every scheduler kind over a
// memory-heavy and an idle-heavy mix with full observability attached and
// diffs the complete Result against the dense loop.
func TestFastForwardEquivalence(t *testing.T) {
	for _, mixName := range []string{"milc", "xalancbmk"} {
		mix, err := workload.Rate(mixName, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range allKinds() {
			k := k
			t.Run(mixName+"/"+k.String(), func(t *testing.T) {
				t.Parallel()
				cfg := DefaultConfig(mix, k)
				cfg.TargetReads = 1500
				cfg.Observe = &obs.Options{}
				diffLoops(t, cfg)
			})
		}
	}
}

// TestFastForwardEquivalenceMultiChannel extends the dense-vs-fast-forward
// proof obligation to the fabric: 2- and 4-channel systems in both routing
// modes must produce byte-identical merged AND per-channel Results under
// either loop. Multi-channel horizons fold every channel's NextEvent and
// every core's next interaction into one jump; a single late component
// would shift cycles on one channel and show up here.
func TestFastForwardEquivalenceMultiChannel(t *testing.T) {
	for _, mixName := range []string{"milc", "xalancbmk"} {
		mix, err := workload.Rate(mixName, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, channels := range []int{2, 4} {
			for _, routing := range []addr.Routing{addr.RouteColored, addr.RouteInterleaved} {
				for _, k := range []SchedulerKind{Baseline, TPBank, FSRankPart, FSReorderedBank} {
					channels, routing, k := channels, routing, k
					name := fmt.Sprintf("%s/%dch-%s/%s", mixName, channels, routing, k)
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						cfg := DefaultConfig(mix, k)
						cfg.TargetReads = 600
						cfg.Channels = channels
						cfg.Routing = routing
						cfg.Observe = &obs.Options{}
						diffLoops(t, cfg)
					})
				}
			}
		}
	}
}

// FuzzFabricFastForward fuzzes the multi-channel equivalence over seeds,
// widths, routing modes, and scheduler kinds with a small read budget —
// the sim-level counterpart of cpu.FuzzNextEvent's fanout mode.
func FuzzFabricFastForward(f *testing.F) {
	f.Add(uint64(1), uint8(0), false, uint8(0))
	f.Add(uint64(2), uint8(0), true, uint8(2))
	f.Add(uint64(3), uint8(1), false, uint8(2))
	f.Add(uint64(0xfab), uint8(1), true, uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, width uint8, interleaved bool, sched uint8) {
		kinds := []SchedulerKind{Baseline, TPBank, FSRankPart}
		mix, err := workload.Rate("xalancbmk", 8)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(mix, kinds[int(sched)%len(kinds)])
		cfg.Seed = seed
		cfg.TargetReads = 200
		cfg.MaxBusCycles = 2_000_000
		cfg.Channels = []int{2, 4}[int(width)%2]
		cfg.Routing = addr.RouteColored
		if interleaved {
			cfg.Routing = addr.RouteInterleaved
		}
		diffLoops(t, cfg)
	})
}

// TestFastForwardActuallySkipsMultiChannel is the fabric's anti-vacuity
// guard: on an idle-heavy mix the multi-channel kernel must genuinely
// jump, in both routing modes, or the equivalence suite above proves
// nothing.
func TestFastForwardActuallySkipsMultiChannel(t *testing.T) {
	mix, err := workload.Rate("xalancbmk", 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, routing := range []addr.Routing{addr.RouteColored, addr.RouteInterleaved} {
		routing := routing
		t.Run(routing.String(), func(t *testing.T) {
			cfg := DefaultConfig(mix, FSRankPart)
			cfg.TargetReads = 1500
			cfg.Channels = 2
			cfg.Routing = routing
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res := s.Run()
			jumps, skipped := s.FastForward()
			if jumps == 0 || skipped == 0 {
				t.Errorf("multi-channel fast-forward never skipped (jumps=%d skipped=%d over %d bus cycles)",
					jumps, skipped, res.Run.BusCycles)
			}
		})
	}
}

// TestFastForwardEquivalenceFeatures covers the configuration corners with
// their own horizon sources: refresh deadlines, the prefetch buffer's
// immediate completions, FS energy optimizations (power-down, suppressed
// dummies), weighted SLAs, and fixed-duration runs whose idle tail is the
// kernel's best case.
func TestFastForwardEquivalenceFeatures(t *testing.T) {
	mix, err := workload.Rate("xalancbmk", 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"baseline-refresh", func(c *Config) { c.Scheduler = Baseline; c.RefreshEnabled = true }},
		{"fs-refresh", func(c *Config) { c.Scheduler = FSRankPart; c.RefreshEnabled = true }},
		{"baseline-prefetch", func(c *Config) { c.Scheduler = Baseline; c.Prefetch = true }},
		{"fs-prefetch", func(c *Config) { c.Scheduler = FSRankPart; c.Prefetch = true }},
		{"fs-energy", func(c *Config) {
			c.Scheduler = FSRankPart
			c.Energy = core.EnergyOpts{SuppressDummies: true, RowBufferBoost: true, PowerDown: true}
		}},
		{"fs-weighted-sla", func(c *Config) { c.Scheduler = FSRankPart; c.SLAWeights = []int{2, 1, 1, 1} }},
		{"fixed-duration", func(c *Config) { c.TargetReads = 0; c.MaxBusCycles = 300_000 }},
		{"watchdog-truncated", func(c *Config) { c.TargetReads = 1 << 40; c.MaxBusCycles = 200_000 }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(mix, FSRankPart)
			cfg.TargetReads = 1500
			cfg.Observe = &obs.Options{}
			tc.mutate(&cfg)
			diffLoops(t, cfg)
		})
	}
}

// TestFastForwardEquivalenceFaulted pins the fault layer: queue-pressure
// spikes (their own horizon), refresh storms (injector extras), command
// delays (injector replays), and timing derates must all land on identical
// cycles under both loops.
func TestFastForwardEquivalenceFaulted(t *testing.T) {
	mix, err := workload.Rate("xalancbmk", 4)
	if err != nil {
		t.Fatal(err)
	}
	plans := []*fault.Plan{
		{Name: "spike", Seed: 7, Loads: []fault.LoadFault{
			{Kind: fault.LoadQueueSpike, Domain: 1, AtCycle: 60_000, Count: 24},
		}},
		{Name: "storm", Seed: 7, Loads: []fault.LoadFault{
			{Kind: fault.LoadRefreshStorm, Rank: 0, AtCycle: 50_000, Count: 4},
		}},
		{Name: "delay", Seed: 7, Commands: []fault.CommandFault{
			{AtCycle: 40_000, Action: fault.ActionDelay, Delay: 200},
		}},
		{Name: "derate", Seed: 7, Derates: []fault.RankDerate{
			{Rank: -1, Derate: fault.Derate{TRCD: 2}},
		}},
	}
	for _, k := range []SchedulerKind{Baseline, FSRankPart} {
		for _, plan := range plans {
			k, plan := k, plan
			t.Run(k.String()+"/"+plan.Name, func(t *testing.T) {
				t.Parallel()
				cfg := DefaultConfig(mix, k)
				cfg.TargetReads = 1500
				cfg.Fault = plan
				diffLoops(t, cfg)
			})
		}
	}
}

// TestFastForwardActuallySkips guards against the kernel silently
// degenerating to dense stepping (every horizon returning the current
// cycle): on an idle-heavy mix the jump counters must move, otherwise the
// equivalence suite passes vacuously and the ≥2× benchmark gate is the only
// thing left to notice.
func TestFastForwardActuallySkips(t *testing.T) {
	mix, err := workload.Rate("xalancbmk", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range allKinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			cfg := DefaultConfig(mix, k)
			cfg.TargetReads = 1500
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res := s.Run()
			jumps, skipped := s.FastForward()
			if jumps == 0 || skipped == 0 {
				t.Errorf("fast-forward kernel never skipped (jumps=%d skipped=%d over %d bus cycles)",
					jumps, skipped, res.Run.BusCycles)
			}
		})
	}
}

// ctlFingerprint captures every controller-side observable: the shell and
// scheduler metric emissions (queue depths, retired counts, drain state,
// FS energy tallies), the channel's command counters, and the per-domain
// statistics updated by request completion. If a Tick changes any of this,
// the cycle it ran on was a state change the horizon had to predict.
type ctlFingerprint struct {
	metrics  map[string]float64
	counters dram.Counters
	dom      []stats.Domain
}

func fingerprint(c *mem.Controller) ctlFingerprint {
	fp := ctlFingerprint{metrics: make(map[string]float64)}
	emit := func(name string, v float64) { fp.metrics[name] = v }
	c.ObsMetrics(emit)
	if src, ok := c.Scheduler().(interface {
		ObsMetrics(func(string, float64))
	}); ok {
		src.ObsMetrics(emit)
	}
	fp.counters = c.Chan.Counters
	fp.dom = append([]stats.Domain(nil), c.Dom...)
	return fp
}

// TestNextEventNeverLate is the table-driven horizon-correctness check for
// the controller side: after warming the system up with real traffic, the
// controller is ticked alone (no core enqueues) and every observable state
// change must land on a cycle NextEvent predicted — i.e. the horizon may
// only ever be early. Tick-only draining walks the schedulers through
// drain-mode settling, completion delivery, refresh deadlines, and FS
// planning boundaries with idle slots.
func TestNextEventNeverLate(t *testing.T) {
	mix, err := workload.Rate("xalancbmk", 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"baseline", func(c *Config) { c.Scheduler = Baseline }},
		{"baseline-refresh", func(c *Config) { c.Scheduler = Baseline; c.RefreshEnabled = true }},
		{"tp-bank", func(c *Config) { c.Scheduler = TPBank }},
		{"fs-rank", func(c *Config) { c.Scheduler = FSRankPart }},
		{"fs-rank-refresh", func(c *Config) { c.Scheduler = FSRankPart; c.RefreshEnabled = true }},
		{"fs-reordered", func(c *Config) { c.Scheduler = FSReorderedBank }},
		{"fs-energy", func(c *Config) {
			c.Scheduler = FSRankPart
			c.Energy = core.EnergyOpts{SuppressDummies: true, RowBufferBoost: true, PowerDown: true}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(mix, Baseline)
			tc.mutate(&cfg)
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Warm up with cores attached so queues carry real traffic.
			for i := 0; i < 2000; i++ {
				s.Step()
			}
			// Tick-only phase: drain the queues and run well past the next
			// refresh deadline / planning boundary, checking the horizon
			// against every observable transition. Early horizons (h == now
			// with nothing happening) are allowed — they cost one dense step
			// — but a change on a cycle NextEvent placed in the future means
			// fast-forward would have jumped over real work.
			changes := 0
			for i := 0; i < 30_000; i++ {
				now := s.ctl.Cycle
				h := s.ctl.NextEvent()
				if h < now {
					t.Fatalf("cycle %d: NextEvent returned the past (%d)", now, h)
				}
				before := fingerprint(s.ctl)
				s.ctl.Tick()
				if !reflect.DeepEqual(before, fingerprint(s.ctl)) {
					changes++
					if h != now {
						t.Fatalf("state changed on cycle %d but NextEvent said the next event was at %d (horizon too late)", now, h)
					}
				}
				// Top the queues back up occasionally (outside the checked
				// window, so core enqueues never masquerade as Tick effects):
				// long eventless stretches are exactly where horizons matter,
				// but a fully drained TP system would make the test vacuous.
				if i%512 == 0 {
					for cc := 0; cc < 8*s.cfg.DRAM.CPUCyclesPerBusCycle; cc++ {
						for _, c := range s.cores {
							c.Cycle()
						}
					}
				}
			}
			if changes == 0 {
				t.Fatal("tick-only phase never changed controller state: the property was tested vacuously")
			}
		})
	}
}

// TestDenseEnvOverride pins the FSMEM_DENSE escape hatch's plumbing: the
// package-level flag forces the dense loop even when the config asks for
// fast-forward.
func TestDenseEnvOverride(t *testing.T) {
	mix, err := workload.Rate("xalancbmk", 2)
	if err != nil {
		t.Fatal(err)
	}
	old := envDense
	envDense = true
	defer func() { envDense = old }()
	cfg := DefaultConfig(mix, FSRankPart)
	cfg.TargetReads = 200
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if jumps, _ := s.FastForward(); jumps != 0 {
		t.Errorf("FSMEM_DENSE set but the kernel still jumped %d times", jumps)
	}
}
