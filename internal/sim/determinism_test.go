package sim

import (
	"reflect"
	"testing"

	"fsmem/internal/workload"
)

// TestSimulateDeterminism pins the regression the fault campaign depends
// on: the simulator is a pure function of its Config — two runs with an
// identical configuration and seed must agree bit for bit on every
// statistic and every monitor trace. Any hidden nondeterminism (map
// iteration, wall-clock coupling, shared mutable state) breaks the
// campaign's reference-vs-faulted trace comparison.
func TestSimulateDeterminism(t *testing.T) {
	mix, err := workload.Rate("milc", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []SchedulerKind{Baseline, TPBank, FSRankPart, FSReorderedBank} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			cfg := DefaultConfig(mix, k)
			cfg.TargetReads = 2000
			a, err := Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Run, b.Run) {
				t.Error("run statistics diverged between identical configurations")
			}
			if !reflect.DeepEqual(a.Monitor, b.Monitor) {
				t.Error("monitor reports diverged between identical configurations")
			}
			if !reflect.DeepEqual(a.FS, b.FS) {
				t.Error("FS counters diverged between identical configurations")
			}
			if a.Truncated != b.Truncated {
				t.Error("truncation flags diverged between identical configurations")
			}
		})
	}
}

// TestSimulateSeedSensitivity is the complement: a different seed must
// actually move the observable timing, otherwise the determinism test above
// could pass vacuously on a seed-blind simulator.
func TestSimulateSeedSensitivity(t *testing.T) {
	mix, err := workload.Rate("milc", 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(mix, FSRankPart)
	cfg.TargetReads = 2000
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed++
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Monitor.DomainTraces, b.Monitor.DomainTraces) {
		t.Error("delivery traces identical across seeds: simulator ignores Config.Seed")
	}
}
