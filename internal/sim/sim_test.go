package sim

import (
	"testing"

	"fsmem/internal/stats"
	"fsmem/internal/workload"
)

func smallConfig(t *testing.T, name string, k SchedulerKind) Config {
	t.Helper()
	mix, err := workload.Rate(name, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(mix, k)
	cfg.TargetReads = 4000
	return cfg
}

func runOrFatal(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBaselineRunsAndRetires(t *testing.T) {
	res := runOrFatal(t, smallConfig(t, "mcf", Baseline))
	run := res.Run
	if run.TotalReads() < 4000 {
		t.Fatalf("completed %d reads, want >= 4000", run.TotalReads())
	}
	if run.TotalInstructions() == 0 {
		t.Fatal("no instructions retired")
	}
	for d, dom := range run.Domains {
		if dom.IPC() <= 0 {
			t.Errorf("domain %d IPC = %v", d, dom.IPC())
		}
	}
	if run.BusUtilization() <= 0 || run.BusUtilization() > 1 {
		t.Errorf("bus utilization %v out of range", run.BusUtilization())
	}
	// The open-page baseline on mcf-with-locality should see some row hits.
	var hits int64
	for _, d := range run.Domains {
		hits += d.RowHits
	}
	if hits == 0 {
		t.Error("baseline saw zero row hits")
	}
}

func TestEverySchedulerCompletes(t *testing.T) {
	for _, k := range []SchedulerKind{Baseline, TPBank, TPNone, FSRankPart, FSBankPart, FSReorderedBank, FSNoPart, FSNoPartTriple} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			cfg := smallConfig(t, "milc", k)
			cfg.TargetReads = 2000
			res := runOrFatal(t, cfg)
			if got := res.Run.TotalReads(); got < 2000 {
				t.Fatalf("%v: completed %d reads before the safety stop", k, got)
			}
		})
	}
}

func TestSecureSchedulersOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("ordering check needs full runs")
	}
	// The paper's headline ordering (Figure 3): baseline > FS_RP >
	// FS_Reordered_BP > TP_BP and FS_NP_Optimized > TP_NP.
	wipc := map[SchedulerKind]float64{}
	base := runOrFatal(t, smallConfig(t, "milc", Baseline))
	for _, k := range AllSecure() {
		res := runOrFatal(t, smallConfig(t, "milc", k))
		w, err := stats.WeightedIPC(res.Run, base.Run)
		if err != nil {
			t.Fatal(err)
		}
		wipc[k] = w
	}
	t.Logf("weighted IPC: %v", wipc)
	if !(wipc[FSRankPart] > wipc[FSReorderedBank]) {
		t.Errorf("FS_RP (%v) should beat FS_Reordered_BP (%v)", wipc[FSRankPart], wipc[FSReorderedBank])
	}
	if !(wipc[FSReorderedBank] > wipc[TPBank]) {
		t.Errorf("FS_Reordered_BP (%v) should beat TP_BP (%v)", wipc[FSReorderedBank], wipc[TPBank])
	}
	if !(wipc[FSNoPartTriple] > wipc[TPNone]) {
		t.Errorf("FS_NP_Optimized (%v) should beat TP_NP (%v)", wipc[FSNoPartTriple], wipc[TPNone])
	}
	for k, w := range wipc {
		if w > 8.01 {
			t.Errorf("%v: weighted IPC %v exceeds the 8-core bound", k, w)
		}
	}
}

func TestFSShapesDummies(t *testing.T) {
	// xalancbmk is light; FS must fill most slots with dummies. libquantum
	// is heavy; dummies should be rare (the paper: 87% vs 2.3%).
	light := runOrFatal(t, smallConfig(t, "xalancbmk", FSRankPart))
	heavy := runOrFatal(t, smallConfig(t, "libquantum", FSRankPart))
	lf, hf := light.Run.DummyFraction(), heavy.Run.DummyFraction()
	if lf < 0.5 {
		t.Errorf("xalancbmk dummy fraction %v, want > 0.5", lf)
	}
	if hf > 0.3 {
		t.Errorf("libquantum dummy fraction %v, want < 0.3", hf)
	}
	if lf <= hf {
		t.Errorf("dummy fractions inverted: light %v <= heavy %v", lf, hf)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := smallConfig(t, "mcf", FSRankPart)
	cfg.TargetReads = 1500
	a := runOrFatal(t, cfg)
	b := runOrFatal(t, cfg)
	if a.Run.BusCycles != b.Run.BusCycles {
		t.Fatalf("bus cycles differ across identical runs: %d vs %d", a.Run.BusCycles, b.Run.BusCycles)
	}
	for d := range a.Run.Domains {
		if a.Run.Domains[d] != b.Run.Domains[d] {
			t.Fatalf("domain %d stats differ across identical runs", d)
		}
	}
}
