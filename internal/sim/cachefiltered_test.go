package sim

import (
	"testing"

	"fsmem/internal/addr"
	"fsmem/internal/cache"
	"fsmem/internal/trace"
	"fsmem/internal/workload"
)

// TestCacheFilteredStreams drives the full system from PRE-cache address
// streams filtered through the Table 1 L1/L2 hierarchy — the alternative
// front end to the default post-LLC generators. Each domain gets a private
// L1 over a private L2 slice (shared-L2 interference is a cache-side
// channel outside this paper's scope).
func TestCacheFilteredStreams(t *testing.T) {
	mix, err := workload.Rate("milc", 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(mix, FSRankPart)
	cfg.TargetReads = 1500
	mapper, err := addr.NewMapper(cfg.DRAM, addr.RowRankBankCol)
	if err != nil {
		t.Fatal(err)
	}
	cfg.StreamFactory = func(domain int, space addr.Space, seed uint64) trace.Stream {
		// Pre-cache stream: the raw generator at elevated intensity, as it
		// would look before the LLC filters it.
		pre := mix.Profiles[domain]
		pre.ReadMPKI *= 4
		pre.WriteMPKI *= 4
		pre.RowLocality = 0.9 // pre-cache streams are much more local
		gen := workload.NewGenerator(pre, space, cfg.DRAM, seed)
		l2, err := cache.New(cache.Config{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8})
		if err != nil {
			t.Fatal(err)
		}
		h, err := cache.NewHierarchy(l2)
		if err != nil {
			t.Fatal(err)
		}
		return cache.NewFilteredStream(gen, h, mapper)
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.TotalReads() < 1500 {
		t.Fatalf("cache-filtered run completed %d reads", res.Run.TotalReads())
	}
	// The caches must have filtered: post-LLC intensity below the pre-cache
	// stream's (writes include writebacks, so compare reads).
	var writes int64
	for _, d := range res.Run.Domains {
		writes += d.Writes
	}
	if writes == 0 {
		t.Error("no write-backs reached memory; the dirty-eviction path never fired")
	}
}
