// Package prefetch implements the sandbox prefetcher (Pugsley et al., HPCA
// 2014) the paper uses to fill Fixed Service dummy slots with useful work:
// candidate stride offsets are evaluated in a Bloom-filter "sandbox"
// without issuing real prefetches; offsets that would have covered enough
// demand misses are promoted, and promoted offsets generate a small queue
// of high-confidence prefetch addresses.
package prefetch

import "fsmem/internal/dram"

const (
	bloomBits    = 2048
	evalPeriod   = 256  // demand observations per sandbox evaluation
	scoreFrac    = 0.25 // promotion threshold: fraction of covered misses
	maxActive    = 4    // promoted offsets kept live
	maxQueue     = 4    // "a few-entry prefetch queue beside each transaction queue"
	demotePeriod = 16   // re-evaluate one active offset every N periods
)

var candidateOffsets = []int{1, -1, 2, -2, 3, -3, 4, -4, 8, -8}

type bloom struct {
	bits [bloomBits / 64]uint64
}

func (b *bloom) hash(v uint64) (uint, uint) {
	h1 := v * 0x9e3779b97f4a7c15
	h2 := (v ^ 0x5851f42d4c957f2d) * 0xbf58476d1ce4e5b9
	return uint(h1 % bloomBits), uint(h2 % bloomBits)
}

func (b *bloom) add(v uint64) {
	i, j := b.hash(v)
	b.bits[i/64] |= 1 << (i % 64)
	b.bits[j/64] |= 1 << (j % 64)
}

func (b *bloom) has(v uint64) bool {
	i, j := b.hash(v)
	return b.bits[i/64]&(1<<(i%64)) != 0 && b.bits[j/64]&(1<<(j%64)) != 0
}

func (b *bloom) reset() { b.bits = [bloomBits / 64]uint64{} }

type activeOffset struct {
	offset int
	score  int
}

// Sandbox is one domain's prefetch engine.
type Sandbox struct {
	geom dram.Params

	sandbox   bloom
	candIdx   int // index into candidateOffsets under evaluation
	trials    int
	score     int
	periods   int
	active    []activeOffset
	queue     []dram.Address
	lastAddrs []dram.Address // recent demand addresses for generation
}

// New builds a sandbox prefetcher for the given DRAM geometry.
func New(geom dram.Params) *Sandbox {
	return &Sandbox{geom: geom}
}

// lineIndex linearizes an address within its bank.
func (s *Sandbox) lineIndex(a dram.Address) uint64 {
	return (uint64(a.Rank)<<40 | uint64(a.Bank)<<32) + uint64(a.Row)*uint64(s.geom.ColsPerRow) + uint64(a.Col)
}

// offsetAddr applies a line offset within the same rank/bank, carrying
// across rows; ok=false when it walks off the bank.
func (s *Sandbox) offsetAddr(a dram.Address, off int) (dram.Address, bool) {
	lin := int64(a.Row)*int64(s.geom.ColsPerRow) + int64(a.Col) + int64(off)
	if lin < 0 || lin >= int64(s.geom.RowsPerBank)*int64(s.geom.ColsPerRow) {
		return a, false
	}
	a.Row = int(lin / int64(s.geom.ColsPerRow))
	a.Col = int(lin % int64(s.geom.ColsPerRow))
	return a, true
}

// Observe feeds one demand read. It scores the sandboxed candidate offset,
// advances the evaluation period, and generates prefetch candidates from
// promoted offsets.
func (s *Sandbox) Observe(a dram.Address) {
	// Score: would the sandboxed offset have prefetched this line?
	if s.sandbox.has(s.lineIndex(a)) {
		s.score++
	}
	s.trials++
	// Record the line this candidate would prefetch.
	if pa, ok := s.offsetAddr(a, candidateOffsets[s.candIdx]); ok {
		s.sandbox.add(s.lineIndex(pa))
	}
	if s.trials >= evalPeriod {
		s.finishPeriod()
	}

	// Generate prefetches from promoted offsets.
	for _, act := range s.active {
		if len(s.queue) >= maxQueue {
			break
		}
		if pa, ok := s.offsetAddr(a, act.offset); ok {
			s.push(pa)
		}
	}
}

func (s *Sandbox) finishPeriod() {
	off := candidateOffsets[s.candIdx]
	if float64(s.score) >= scoreFrac*float64(s.trials) {
		s.promote(off, s.score)
	} else {
		s.demote(off)
	}
	s.score, s.trials = 0, 0
	s.sandbox.reset()
	s.candIdx = (s.candIdx + 1) % len(candidateOffsets)
	s.periods++
}

func (s *Sandbox) promote(off, score int) {
	for i := range s.active {
		if s.active[i].offset == off {
			s.active[i].score = score
			return
		}
	}
	if len(s.active) < maxActive {
		s.active = append(s.active, activeOffset{offset: off, score: score})
		return
	}
	// Replace the weakest if the newcomer beats it.
	weakest := 0
	for i := range s.active {
		if s.active[i].score < s.active[weakest].score {
			weakest = i
		}
	}
	if s.active[weakest].score < score {
		s.active[weakest] = activeOffset{offset: off, score: score}
	}
}

func (s *Sandbox) demote(off int) {
	for i := range s.active {
		if s.active[i].offset == off {
			s.active = append(s.active[:i], s.active[i+1:]...)
			return
		}
	}
}

func (s *Sandbox) push(a dram.Address) {
	for _, q := range s.queue {
		if q == a {
			return
		}
	}
	s.queue = append(s.queue, a)
}

// NextCandidate pops the next queued high-confidence prefetch address.
func (s *Sandbox) NextCandidate() (dram.Address, bool) {
	if len(s.queue) == 0 {
		return dram.Address{}, false
	}
	a := s.queue[0]
	s.queue = s.queue[1:]
	return a, true
}

// ActiveOffsets returns the currently promoted stride offsets.
func (s *Sandbox) ActiveOffsets() []int {
	out := make([]int, len(s.active))
	for i, a := range s.active {
		out[i] = a.offset
	}
	return out
}
