package prefetch

import (
	"testing"

	"fsmem/internal/dram"
)

func TestSandboxPromotesUnitStride(t *testing.T) {
	s := New(dram.DDR3_1600())
	// A pure +1-stride stream: the +1 candidate scores ~100% in its
	// sandbox period and must be promoted.
	a := dram.Address{Rank: 0, Bank: 0, Row: 10, Col: 0}
	for i := 0; i < 4*evalPeriod; i++ {
		s.Observe(a)
		a.Col++
		if a.Col >= s.geom.ColsPerRow {
			a.Col = 0
			a.Row++
		}
		// Drain the queue so generation never blocks promotion observation.
		for {
			if _, ok := s.NextCandidate(); !ok {
				break
			}
		}
	}
	found := false
	for _, off := range s.ActiveOffsets() {
		if off == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("+1 stride not promoted; active = %v", s.ActiveOffsets())
	}
}

func TestSandboxGeneratesPrefetchesAfterPromotion(t *testing.T) {
	s := New(dram.DDR3_1600())
	a := dram.Address{Rank: 1, Bank: 2, Row: 5, Col: 0}
	var got []dram.Address
	for i := 0; i < 6*evalPeriod; i++ {
		s.Observe(a)
		a.Col = (a.Col + 1) % s.geom.ColsPerRow
		if a.Col == 0 {
			a.Row++
		}
		for {
			pa, ok := s.NextCandidate()
			if !ok {
				break
			}
			got = append(got, pa)
		}
	}
	if len(got) == 0 {
		t.Fatal("no prefetch candidates generated")
	}
	for _, pa := range got {
		if pa.Rank != 1 || pa.Bank != 2 {
			t.Fatalf("prefetch escaped its bank: %v", pa)
		}
	}
}

func TestSandboxIgnoresRandomStream(t *testing.T) {
	s := New(dram.DDR3_1600())
	seed := uint64(99)
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	for i := 0; i < 8*evalPeriod; i++ {
		s.Observe(dram.Address{
			Rank: int(next() % 8), Bank: int(next() % 8),
			Row: int(next() % 4096), Col: int(next() % 128),
		})
		for {
			if _, ok := s.NextCandidate(); !ok {
				break
			}
		}
	}
	if n := len(s.ActiveOffsets()); n > 1 {
		t.Errorf("random stream promoted %d offsets: %v", n, s.ActiveOffsets())
	}
}

func TestQueueBoundedAndDeduplicated(t *testing.T) {
	s := New(dram.DDR3_1600())
	// Force a promoted offset directly.
	s.promote(1, evalPeriod)
	a := dram.Address{Rank: 0, Bank: 0, Row: 1, Col: 1}
	for i := 0; i < 100; i++ {
		s.Observe(a) // same address repeatedly: queue must not grow or duplicate
	}
	if len(s.queue) > maxQueue {
		t.Fatalf("queue grew to %d (max %d)", len(s.queue), maxQueue)
	}
	seen := map[dram.Address]bool{}
	for {
		pa, ok := s.NextCandidate()
		if !ok {
			break
		}
		if seen[pa] {
			t.Fatalf("duplicate queued prefetch %v", pa)
		}
		seen[pa] = true
	}
}

func TestOffsetAddrBounds(t *testing.T) {
	s := New(dram.DDR3_1600())
	if _, ok := s.offsetAddr(dram.Address{Row: 0, Col: 0}, -1); ok {
		t.Error("offset below bank start should fail")
	}
	last := dram.Address{Row: s.geom.RowsPerBank - 1, Col: s.geom.ColsPerRow - 1}
	if _, ok := s.offsetAddr(last, 1); ok {
		t.Error("offset past bank end should fail")
	}
	got, ok := s.offsetAddr(dram.Address{Row: 3, Col: s.geom.ColsPerRow - 1}, 1)
	if !ok || got.Row != 4 || got.Col != 0 {
		t.Errorf("row carry broken: %v %v", got, ok)
	}
}

func TestPromotionEvictsWeakest(t *testing.T) {
	s := New(dram.DDR3_1600())
	for i, off := range []int{1, -1, 2, -2} {
		s.promote(off, 10+i)
	}
	s.promote(8, 100) // stronger than all
	offs := s.ActiveOffsets()
	if len(offs) != maxActive {
		t.Fatalf("active = %v", offs)
	}
	has := func(o int) bool {
		for _, x := range offs {
			if x == o {
				return true
			}
		}
		return false
	}
	if !has(8) {
		t.Error("strong offset not admitted")
	}
	if has(1) {
		t.Error("weakest offset not evicted")
	}
	s.demote(8)
	if has8 := func() bool {
		for _, x := range s.ActiveOffsets() {
			if x == 8 {
				return true
			}
		}
		return false
	}(); has8 {
		t.Error("demote failed")
	}
}
