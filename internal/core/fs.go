package core

import (
	"fmt"

	"fsmem/internal/addr"
	"fsmem/internal/dram"
	"fsmem/internal/fsmerr"
	"fsmem/internal/mem"
	"fsmem/internal/obs"
	"fsmem/internal/trace"
)

// Variant identifies one Fixed Service design point from the paper.
type Variant int

const (
	// FSRankPart: rank partitioning, fixed periodic data, l=7 (Section 3.1,
	// Figure 1). Q = l * domains.
	FSRankPart Variant = iota
	// FSBankPart: basic bank partitioning, fixed periodic RAS, l=15
	// (Section 4.2). Q = l * domains.
	FSBankPart
	// FSReorderedBank: reordered bank partitioning — reads first, then
	// writes, 6-cycle data slots, one 15-cycle write-to-read turnaround per
	// interval, reads released en masse at interval end (Section 4.2).
	// Q = 6*domains + 15.
	FSReorderedBank
	// FSNoPart: basic no-partitioning pipeline, fixed periodic RAS, l=43
	// (Section 4.3, Figure 2a). Q = l * domains.
	FSNoPart
	// FSNoPartTriple: triple alternation — three Q/3 subintervals with
	// rotating bank groups (bank id mod 3), restoring l=15 without any
	// spatial partitioning (Section 4.3, Figure 2b). Q = 3 * 15 * domains.
	FSNoPartTriple
)

// String names the variant with the paper's abbreviations.
func (v Variant) String() string {
	switch v {
	case FSRankPart:
		return "FS_RP"
	case FSBankPart:
		return "FS_BP"
	case FSReorderedBank:
		return "FS_Reordered_BP"
	case FSNoPart:
		return "FS_NP"
	case FSNoPartTriple:
		return "FS_NP_Optimized"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// PartitionKind returns the spatial partitioning the variant assumes.
func (v Variant) PartitionKind() addr.PartitionKind {
	switch v {
	case FSRankPart:
		return addr.PartitionRank
	case FSBankPart, FSReorderedBank:
		return addr.PartitionBank
	default:
		return addr.PartitionNone
	}
}

// Anchor returns the fixed-periodic anchor the variant uses.
func (v Variant) Anchor() Anchor {
	if v == FSRankPart || v == FSReorderedBank {
		return FixedData
	}
	return FixedRAS
}

// EnergyOpts enables the three energy optimizations of Section 5.2.
type EnergyOpts struct {
	// SuppressDummies elides the DRAM operations of dummy transactions
	// while preserving their timing footprint (optimization 1).
	SuppressDummies bool
	// RowBufferBoost elides the auto-precharge + activate pair when a
	// transaction targets the row most recently accessed in its bank
	// (optimization 2).
	RowBufferBoost bool
	// PowerDown powers a rank down for a whole interval when it has no
	// pending transactions at the interval start (optimization 3).
	PowerDown bool
}

// FSStats are engine-level counters the energy model consumes on top of
// the channel counters.
type FSStats struct {
	RowHitBoosts    int64   // ACT+PRE pairs elided by optimization 2
	PowerDownSlots  int64   // dummy slots replaced by rank power-down
	PowerDownCycles []int64 // per-rank cycles spent powered down (opt. 3)
}

// FS is the Fixed Service transaction scheduler. It implements
// mem.Scheduler: every security domain receives exactly one transaction
// slot per Q-cycle interval, dummy or prefetch operations fill unused
// slots, and the static command grid guarantees zero resource conflicts.
type FS struct {
	p       dram.Params
	variant Variant
	domains int
	spaces  []addr.Space

	l   int
	q   int64
	off Offsets

	anchor0 int64 // anchor of global slot 0 (so no command lands before cycle 0)

	// bankReadyAt[r][b] is the earliest cycle an ACT may target the bank,
	// tracking auto-precharge recovery across intervals. It guards the
	// paper's small-rank-count hazard (Section 7, sensitivity) and the
	// cross-interval write-to-read hazard under reordered bank
	// partitioning.
	bankReadyAt [][]int64
	lastRow     [][]int // most recent row per bank, for RowBufferBoost

	// Rank-level turnaround guards: with few domains the interval shrinks
	// below the write-to-read gap (Q=14 < 15 at 2 domains under FS_RP), and
	// weighted SLAs can give one domain adjacent slots, so a domain's
	// back-to-back transactions to the same rank must be steered apart —
	// exactly the paper's small-rank-count hazard, generalized.
	rankLastReadCAS  []int64
	rankLastWriteCAS []int64
	rankActHist      [][4]int64 // last four ACT cycles per rank (tRRD/tFAW)

	slotDomains []int // slot position within an interval -> domain

	reorderSpacing int64 // solved data-slot spacing for FSReorderedBank

	// Refresh-aware scheduling (rank partitioning): per-rank deadlines are
	// purely time-triggered, a due rank is quiesced (its slots go idle so
	// auto-precharges drain), and the REF is issued on one of the rank's
	// own command-bus cycles — the schedule stays behavior-independent.
	refreshEnabled  bool
	refreshDeadline []int64
	refreshUntil    []int64
	Refreshes       int64

	// Violations counts planned commands the live channel rejected. Always
	// zero on healthy hardware; every increment is also forwarded to the
	// controller's runtime monitor.
	Violations int64

	pending []plannedCmd
	// rngs holds one generator per domain: a domain's dummy-address draws
	// must never perturb another domain's, or the draws themselves would
	// become a cross-domain channel.
	rngs []*trace.RNG

	eopts EnergyOpts
	Stats FSStats

	nextSlot     int64 // next global slot to plan (slot-grid variants)
	nextInterval int64 // next interval to plan (reordered variant)

	// quiescing stops new slot planning so the pipeline can drain for an
	// SLA reconfiguration (§5.1).
	quiescing bool
}

type plannedCmd struct {
	cycle      int64
	cmd        dram.Command
	suppressed bool
	req        *mem.Request // non-nil on the transaction's CAS
	release    int64        // completion cycle for req
}

// Config configures an FS engine.
type Config struct {
	Variant Variant
	Domains int
	Seed    uint64
	Energy  EnergyOpts
	// L overrides the solver's slot spacing (0 = solve).
	L int
	// Weights assigns each domain a number of issue slots per interval
	// (§5.1: "a thread can also be statically assigned multiple issue
	// slots in a Q-cycle interval", driven by the SLA). Nil means one slot
	// per domain. Q grows with the total slot count.
	Weights []int
	// RefreshEnabled interleaves deterministic per-rank refresh windows
	// into the slot grid (rank partitioning only): a rank's own slots are
	// used to quiesce and refresh it, so the schedule stays behavior-
	// independent.
	RefreshEnabled bool
	// StartCycle places the first slot at or after this bus cycle, so a
	// freshly built engine can take over a controller mid-run (the §5.1
	// SLA-change drain-and-swap).
	StartCycle int64
}

// NewFS builds a Fixed Service scheduler. The slot spacing comes from the
// constraint solver unless overridden.
func NewFS(p dram.Params, cfg Config) (*FS, error) {
	if cfg.Domains <= 0 {
		return nil, fmt.Errorf("core: FS needs at least one domain, got %d", cfg.Domains)
	}
	f := &FS{
		p:       p,
		variant: cfg.Variant,
		domains: cfg.Domains,
		eopts:   cfg.Energy,
	}
	f.rngs = make([]*trace.RNG, cfg.Domains)
	for d := range f.rngs {
		f.rngs[d] = trace.NewRNG(cfg.Seed ^ 0xf5a5 ^ uint64(d)*0x9e3779b97f4a7c15)
	}
	if cfg.Weights == nil {
		for d := 0; d < cfg.Domains; d++ {
			f.slotDomains = append(f.slotDomains, d)
		}
	} else {
		if len(cfg.Weights) != cfg.Domains {
			return nil, fmt.Errorf("core: %d weights for %d domains", len(cfg.Weights), cfg.Domains)
		}
		if cfg.Variant == FSReorderedBank {
			return nil, fmt.Errorf("core: weighted slots are not supported under reordered bank partitioning (one transaction per domain per interval by construction)")
		}
		// Round-robin layout: domains with remaining weight are appended in
		// rounds, spreading a domain's slots as far apart as possible.
		remaining := append([]int(nil), cfg.Weights...)
		for {
			any := false
			for d, w := range remaining {
				if w > 0 {
					f.slotDomains = append(f.slotDomains, d)
					remaining[d] = w - 1
					any = true
				}
			}
			if !any {
				break
			}
		}
		if len(f.slotDomains) == 0 {
			return nil, fmt.Errorf("core: weights sum to zero")
		}
	}
	if cfg.RefreshEnabled && cfg.Variant != FSRankPart {
		return nil, fmt.Errorf("core: refresh-aware scheduling is only implemented for rank partitioning")
	}
	f.refreshEnabled = cfg.RefreshEnabled
	if cfg.Variant == FSNoPartTriple && len(f.slotDomains)%3 == 0 {
		// With a slot count divisible by 3 the slot-indexed bank-group
		// rotation assigns every one of a domain's slots the same group
		// forever, cutting it off from two thirds of its address space.
		return nil, fmt.Errorf("core: triple alternation requires a slot count not divisible by 3, got %d", len(f.slotDomains))
	}
	l := cfg.L
	if l == 0 {
		// Triple alternation's whole point is that consecutive slots are
		// bank-disjoint by construction, so it runs at the bank-partitioned
		// spacing (l=15) even though no spatial partitioning is assumed;
		// same-bank reuse only recurs at distance 3 (3*15=45 >= 43 cycles).
		solveMode := f.variant.PartitionKind()
		if f.variant == FSNoPartTriple {
			solveMode = addr.PartitionBank
		}
		var err error
		l, err = MinL(f.variant.Anchor(), solveMode, p)
		if err != nil {
			return nil, err
		}
	}
	f.l = l
	f.off = OffsetsFor(f.variant.Anchor(), p)

	slots := len(f.slotDomains)
	switch f.variant {
	case FSNoPartTriple:
		f.q = int64(3 * l * slots)
	case FSReorderedBank:
		spacing, err := ReorderedSlotSpacing(p, cfg.Domains)
		if err != nil {
			return nil, err
		}
		f.reorderSpacing = int64(spacing)
		f.q = f.reorderSpacing*int64(cfg.Domains) + int64(p.WriteToReadGap())
	default:
		f.q = int64(l * slots)
	}

	f.spaces = make([]addr.Space, cfg.Domains)
	for d := 0; d < cfg.Domains; d++ {
		s, err := addr.SpaceFor(f.variant.PartitionKind(), d, cfg.Domains, p)
		if err != nil {
			return nil, err
		}
		f.spaces[d] = s
	}

	f.rankLastReadCAS = make([]int64, p.RanksPerChan)
	f.rankLastWriteCAS = make([]int64, p.RanksPerChan)
	f.rankActHist = make([][4]int64, p.RanksPerChan)
	for r := range f.rankLastReadCAS {
		f.rankLastReadCAS[r] = dram.NeverCycle
		f.rankLastWriteCAS[r] = dram.NeverCycle
		for i := range f.rankActHist[r] {
			f.rankActHist[r][i] = dram.NeverCycle
		}
	}
	f.bankReadyAt = make([][]int64, p.RanksPerChan)
	f.lastRow = make([][]int, p.RanksPerChan)
	for r := range f.bankReadyAt {
		f.bankReadyAt[r] = make([]int64, p.BanksPerRank)
		f.lastRow[r] = make([]int, p.BanksPerRank)
		for b := range f.lastRow[r] {
			f.lastRow[r][b] = dram.ClosedRow
		}
	}

	if f.variant == FSReorderedBank {
		f.anchor0 = 0
		if cfg.StartCycle > 0 {
			f.nextInterval = (cfg.StartCycle + f.q - 1) / f.q
		}
	} else {
		f.anchor0 = int64(-f.off.MinOffset()) + cfg.StartCycle
	}
	f.Stats.PowerDownCycles = make([]int64, p.RanksPerChan)
	f.refreshDeadline = make([]int64, p.RanksPerChan)
	f.refreshUntil = make([]int64, p.RanksPerChan)
	for r := range f.refreshDeadline {
		// Stagger rank refreshes across the tREFI window like a real
		// controller, so at most one rank is quiesced at a time.
		f.refreshDeadline[r] = cfg.StartCycle + int64(p.TREFI) + int64(r)*int64(p.TREFI)/int64(p.RanksPerChan)
		f.refreshUntil[r] = dram.NeverCycle
	}
	return f, nil
}

// Name implements mem.Scheduler.
func (f *FS) Name() string { return f.variant.String() }

// Idle reports whether the engine has no planned commands outstanding —
// the drain condition before an SLA reconfiguration may swap engines.
func (f *FS) Idle() bool { return len(f.pending) == 0 }

// BeginDrain stops planning new slots. The slot grid keeps advancing
// silently, so already-planned transactions complete and the pipeline
// empties — the CPU-pipeline-drain analogue of §5.1.
func (f *FS) BeginDrain() { f.quiescing = true }

// CancelDrain resumes slot planning after a drain whose follow-up (e.g. an
// SLA reconfiguration) failed: the slot grid kept advancing while
// quiescing, so planning can restart on the same schedule with no gap in
// the static command stream.
func (f *FS) CancelDrain() { f.quiescing = false }

// L returns the slot spacing in use.
func (f *FS) L() int { return f.l }

// Q returns the interval length in bus cycles.
func (f *FS) Q() int64 { return f.q }

// Tick implements mem.Scheduler: plan any slot whose first command is due,
// then issue due planned commands.
func (f *FS) Tick(c *mem.Controller) {
	if f.variant == FSReorderedBank {
		for f.nextInterval*f.q <= c.Cycle {
			f.planReorderedInterval(c, f.nextInterval)
			f.nextInterval++
		}
	} else {
		for f.slotSelectCycle(f.nextSlot) <= c.Cycle {
			f.planSlot(c, f.nextSlot)
			f.nextSlot++
		}
	}

	for len(f.pending) > 0 && f.pending[0].cycle <= c.Cycle {
		pc := f.pending[0]
		f.pending = f.pending[1:]
		f.issue(c, pc)
	}
}

// NextEvent implements mem.EventSource. The FS schedule is static and
// precomputed, so the next tick that can do anything is exactly the earlier
// of the next planning boundary (interval start for reordered BP, slot
// select cycle for the grid variants) and the next planned command's issue
// cycle. Refresh, power-down, and dummy insertion are all folded into
// planning, so they need no horizon of their own.
func (f *FS) NextEvent(c *mem.Controller) int64 {
	var h int64
	if f.variant == FSReorderedBank {
		h = f.nextInterval * f.q
	} else {
		h = f.slotSelectCycle(f.nextSlot)
	}
	if len(f.pending) > 0 && f.pending[0].cycle < h {
		h = f.pending[0].cycle
	}
	if h < c.Cycle {
		h = c.Cycle
	}
	return h
}

func (f *FS) issue(c *mem.Controller, pc plannedCmd) {
	var err error
	if pc.suppressed {
		err = c.IssueSuppressed(pc.cmd)
	} else {
		err = c.Issue(pc.cmd)
	}
	if err != nil {
		// The static pipeline is proven conflict-free; a rejection here
		// means the proof's premises stopped holding (a fault, or a bug).
		// Hiding it would undermine the security argument, so it is
		// reported to the runtime monitor; the transaction still completes
		// so cores are not deadlocked waiting for data.
		f.Violations++
		c.ReportViolation(fsmerr.At(fsmerr.CodeTiming, "core.fs", pc.cycle, pc.cmd, err))
	}
	if pc.req != nil {
		c.CompleteAt(pc.req, pc.release)
	}
}

func (f *FS) insertPending(pc plannedCmd) {
	i := len(f.pending)
	for i > 0 && f.pending[i-1].cycle > pc.cycle {
		i--
	}
	f.pending = append(f.pending, plannedCmd{})
	copy(f.pending[i+1:], f.pending[i:])
	f.pending[i] = pc
}

// slotSelectCycle is when slot s must choose its transaction: the cycle of
// its earliest possible command.
func (f *FS) slotSelectCycle(s int64) int64 {
	return f.anchor0 + s*int64(f.l) + int64(f.off.MinOffset())
}

// slotDomain maps a global slot to its security domain.
func (f *FS) slotDomain(s int64) int {
	return f.slotDomains[int(s%int64(len(f.slotDomains)))]
}

// slotBankGroup returns the allowed bank group (bank mod 3) for the slot
// under triple alternation, or -1 when unrestricted. The rotation is keyed
// to the global slot index (not the domain id or the position within a
// subinterval) so any two slots sharing a group are exactly 3 apart —
// 3l >= the same-bank write-recovery turnaround, for EVERY legal slot
// count. Keying to (position - subinterval) instead collides at distance 2
// across subinterval boundaries when slots % 3 == 1 (e.g. 4 domains: slots
// 3 and 5 both land in group 0, 30 cycles apart < the 43-cycle write
// recovery), which lets one domain's write make another domain's
// transaction ineligible — a timing channel the leakage audit catches.
// For slots % 3 == 2 (the paper's 8 domains) the two keyings are
// identical. A domain's group still advances by (slots mod 3) != 0 every
// turn, so each domain reaches all three groups; slots % 3 == 0 is
// rejected at construction.
func (f *FS) slotBankGroup(s int64) int {
	if f.variant != FSNoPartTriple {
		return -1
	}
	return int(s % 3)
}

// planSlot selects and schedules one transaction for the slot-grid
// variants (FS_RP, FS_BP, FS_NP, FS_NP_Optimized).
func (f *FS) planSlot(c *mem.Controller, s int64) {
	if f.quiescing {
		return
	}
	anchor := f.anchor0 + s*int64(f.l)
	domain := f.slotDomain(s)
	group := f.slotBankGroup(s)

	if f.refreshEnabled && f.planRefresh(c, domain, anchor) {
		return // the slot carried a REF for one of the domain's ranks
	}
	elig := func(a dram.Address, write bool) bool { return f.eligible(a, group, anchor, write) }
	req := f.selectRequest(c, domain, elig)
	if req == nil {
		if f.eopts.PowerDown && f.variant == FSRankPart && f.rankIdle(c, domain) {
			// Optimization 3: the whole interval for this rank set is idle;
			// power down instead of issuing a dummy.
			f.Stats.PowerDownSlots++
			for _, r := range f.spaces[domain].Ranks {
				f.Stats.PowerDownCycles[r] += f.q - int64(f.p.TXP)
			}
			c.Dom[domain].Dummies++ // the slot is still consumed
			c.Obs.DummySlot(domain, anchor, obs.SlotPowerDown)
			return
		}
		req = f.dummyRequest(c, domain, group, elig)
		if req == nil {
			// No safe bank this slot (transient hazard): skip silently; the
			// slot grid is unchanged so nothing is revealed.
			c.Dom[domain].Dummies++
			c.Obs.DummySlot(domain, anchor, obs.SlotSkip)
			return
		}
		c.Obs.DummySlot(domain, anchor, obs.SlotDummy)
	}
	f.scheduleTransaction(c, req, anchor, 0, anchor)
}

// planRefresh issues a due refresh for one of the domain's ranks on this
// slot's first command cycle, if the rank has fully quiesced. It returns
// true when the slot was consumed by the REF.
func (f *FS) planRefresh(c *mem.Controller, domain int, anchor int64) bool {
	refCycle := anchor + int64(f.off.ReadACT)
	for _, r := range f.spaces[domain].Ranks {
		if refCycle < f.refreshDeadline[r] {
			continue
		}
		ready := true
		for b := range f.bankReadyAt[r] {
			if f.bankReadyAt[r][b] > refCycle {
				ready = false
				break
			}
		}
		if !ready {
			continue // still draining; the slot stays idle via eligibility
		}
		f.insertPending(plannedCmd{
			cycle: refCycle,
			cmd:   dram.Command{Kind: dram.KindRefresh, Rank: r, Domain: dram.NoDomain},
		})
		f.refreshUntil[r] = refCycle + int64(f.p.TRFC)
		f.refreshDeadline[r] += int64(f.p.TREFI)
		for b := range f.bankReadyAt[r] {
			f.bankReadyAt[r][b] = f.refreshUntil[r]
		}
		f.Refreshes++
		c.Dom[domain].Dummies++ // the slot is consumed without a transaction
		c.Obs.DummySlot(domain, refCycle, obs.SlotRefresh)
		return true
	}
	return false
}

// rankIdle reports whether the domain has no queued work (power-down test).
func (f *FS) rankIdle(c *mem.Controller, domain int) bool {
	return len(c.ReadQ[domain]) == 0 && len(c.WriteQ[domain]) == 0
}

// selectRequest picks the domain's transaction for a slot: demand reads
// first (writes when the write buffer is filling), then prefetches. The
// elig predicate decides whether a candidate may occupy the slot; the
// slot-grid variants check the full guard set at the slot anchor, while the
// reordered variant uses a mix-independent variant (eligibleReordered) so
// the verdict cannot leak other domains' read/write composition.
func (f *FS) selectRequest(c *mem.Controller, domain int, elig func(a dram.Address, write bool) bool) *mem.Request {
	preferWrites := len(c.WriteQ[domain]) >= c.Cfg.WriteCap*3/4
	qs := [][]*mem.Request{c.ReadQ[domain], c.WriteQ[domain]}
	if preferWrites {
		qs[0], qs[1] = qs[1], qs[0]
	}
	for _, q := range qs {
		for _, r := range q {
			if elig(r.Addr, r.Write) {
				var err error
				if r.Write {
					err = c.RemoveWrite(r)
				} else {
					err = c.RemoveRead(r)
				}
				if err != nil {
					c.ReportViolation(err)
					continue
				}
				return r
			}
		}
	}
	// Prefetch into the otherwise-dummy slot.
	if a, ok := c.NextPrefetch(domain); ok && f.spaces[domain].Contains(a.Rank, a.Bank) && elig(a, false) {
		return &mem.Request{Domain: domain, Addr: a, Arrive: c.Cycle, Prefetch: true}
	}
	return nil
}

// eligible checks bank-group membership, precharge recovery at the planned
// ACT cycle, and the rank-level read/write turnarounds at the planned CAS
// cycle. Under the solved pipelines these guards never bind across domains;
// they only steer a domain's own back-to-back transactions when the
// interval is shorter than a turnaround (small domain counts).
func (f *FS) eligible(a dram.Address, group int, anchor int64, write bool) bool {
	if group >= 0 && a.Bank%3 != group {
		return false
	}
	actCycle := anchor + int64(f.off.act(write))
	if f.refreshEnabled {
		// A rank past its refresh deadline is quiescing: no new activity
		// until its REF has issued and completed.
		if actCycle >= f.refreshDeadline[a.Rank] || actCycle < f.refreshUntil[a.Rank] {
			return false
		}
	}
	if actCycle < f.bankReadyAt[a.Rank][a.Bank] {
		return false
	}
	if actCycle < f.rankActHist[a.Rank][0]+int64(f.p.TRRD) {
		return false
	}
	if oldest := f.rankActHist[a.Rank][3]; oldest != dram.NeverCycle && actCycle < oldest+int64(f.p.TFAW) {
		return false
	}
	casCycle := anchor + int64(f.off.cas(write))
	if write {
		return casCycle >= f.rankLastReadCAS[a.Rank]+int64(f.p.ReadToWriteGap())
	}
	return casCycle >= f.rankLastWriteCAS[a.Rank]+int64(f.p.WriteToReadGap())
}

// eligibleReordered is the reordered-pipeline eligibility check. Its verdict
// must be a function of the domain's own state only: a transaction's actual
// slot follows the global read/write mix, so any guard whose outcome shifts
// with the slot anchor would couple the domains. The bank-recovery guard —
// the only one that legitimately binds on the solved grid (Q can be shorter
// than a same-bank turnaround) — is therefore evaluated at the fixed
// interval-start anchor, against recovery times that scheduleTransaction
// records at the worst-case last slot (see bankAnchor there): both sides are
// mix-independent, and ready-at-slot-0 implies ready at any later slot. The
// shared rank guards are evaluated at the exact slot anchor, where the
// ReorderedSlotSpacing solver proves they never bind; they stay as
// defense-in-depth, feeding the runtime monitor if the proof's premises
// break.
func (f *FS) eligibleReordered(a dram.Address, checkAnchor, exactAnchor int64, write bool) bool {
	if checkAnchor+int64(f.off.act(write)) < f.bankReadyAt[a.Rank][a.Bank] {
		return false
	}
	actCycle := exactAnchor + int64(f.off.act(write))
	if actCycle < f.rankActHist[a.Rank][0]+int64(f.p.TRRD) {
		return false
	}
	if oldest := f.rankActHist[a.Rank][3]; oldest != dram.NeverCycle && actCycle < oldest+int64(f.p.TFAW) {
		return false
	}
	casCycle := exactAnchor + int64(f.off.cas(write))
	if write {
		return casCycle >= f.rankLastReadCAS[a.Rank]+int64(f.p.ReadToWriteGap())
	}
	return casCycle >= f.rankLastWriteCAS[a.Rank]+int64(f.p.WriteToReadGap())
}

// dummyRequest fabricates a dummy read to a recovered bank in the domain's
// partition ("a read request to a random address within the rank [whose]
// returned value is simply discarded").
func (f *FS) dummyRequest(c *mem.Controller, domain, group int, elig func(a dram.Address, write bool) bool) *mem.Request {
	space := f.spaces[domain]
	rng := f.rngs[domain]
	rank := space.Ranks[rng.Intn(len(space.Ranks))]
	start := rng.Intn(len(space.Banks))
	for i := 0; i < len(space.Ranks)*len(space.Banks); i++ {
		rank = space.Ranks[(i/len(space.Banks))%len(space.Ranks)]
		bank := space.Banks[(start+i)%len(space.Banks)]
		if group >= 0 && bank%3 != group {
			continue
		}
		if !elig(dram.Address{Rank: rank, Bank: bank}, false) {
			continue
		}
		return &mem.Request{
			Domain: domain,
			Addr:   dram.Address{Rank: rank, Bank: bank, Row: rng.Intn(f.p.RowsPerBank), Col: rng.Intn(f.p.ColsPerRow)},
			Arrive: c.Cycle,
			Dummy:  true,
		}
	}
	return nil
}

// scheduleTransaction plans the ACT and CAS(+AP) of one transaction whose
// slot anchor is given; releaseAt overrides the completion cycle (0 = data
// end), used for en-masse release under reordered bank partitioning.
// bankAnchor is the anchor used to record the bank's precharge recovery: the
// slot-grid variants pass the slot anchor itself, while the reordered
// variant passes the interval's worst-case last slot so the recorded
// recovery time does not encode the transaction's mix-dependent slot
// position (see eligibleReordered).
func (f *FS) scheduleTransaction(c *mem.Controller, req *mem.Request, anchor, releaseAt, bankAnchor int64) {
	w := req.Write
	actCycle := anchor + int64(f.off.act(w))
	casCycle := anchor + int64(f.off.cas(w))
	dataEnd := anchor + int64(f.off.data(w)) + int64(f.p.TBURST)

	a := req.Addr
	suppress := req.Dummy && f.eopts.SuppressDummies
	boost := false
	if f.eopts.RowBufferBoost && !req.Dummy && f.lastRow[a.Rank][a.Bank] == a.Row {
		// Optimization 2: the row is still physically intact; the ACT and
		// the auto-precharge can be elided while timing state advances.
		boost = true
		f.Stats.RowHitBoosts++
		c.Dom[req.Domain].RowHitBoosts++
	}

	casKind := dram.KindReadAP
	if w {
		casKind = dram.KindWriteAP
	}

	f.insertPending(plannedCmd{
		cycle:      actCycle,
		cmd:        dram.Command{Kind: dram.KindActivate, Rank: a.Rank, Bank: a.Bank, Row: a.Row, Domain: req.Domain},
		suppressed: suppress || boost,
	})
	release := dataEnd
	if releaseAt > 0 {
		release = releaseAt
	}
	req.FirstCmd = actCycle
	req.DataEnd = dataEnd
	f.insertPending(plannedCmd{
		cycle:      casCycle,
		cmd:        dram.Command{Kind: casKind, Rank: a.Rank, Bank: a.Bank, Col: a.Col, Domain: req.Domain},
		suppressed: suppress,
		req:        req,
		release:    release,
	})

	// Track precharge recovery for the hazard guard, anchored at bankAnchor
	// (>= anchor, so the recorded recovery is never optimistic).
	bAct := bankAnchor + int64(f.off.act(w))
	bCas := bankAnchor + int64(f.off.cas(w))
	bDataEnd := bankAnchor + int64(f.off.data(w)) + int64(f.p.TBURST)
	preStart := bAct + int64(f.p.TRAS)
	if w {
		if s := bDataEnd + int64(f.p.TWR); s > preStart {
			preStart = s
		}
	} else {
		if s := bCas + int64(f.p.TRTP); s > preStart {
			preStart = s
		}
	}
	ready := preStart + int64(f.p.TRP)
	if trc := bAct + int64(f.p.TRC); trc > ready {
		ready = trc
	}
	f.bankReadyAt[a.Rank][a.Bank] = ready
	f.lastRow[a.Rank][a.Bank] = a.Row
	hist := &f.rankActHist[a.Rank]
	copy(hist[1:], hist[:3])
	hist[0] = actCycle
	if w {
		if casCycle > f.rankLastWriteCAS[a.Rank] {
			f.rankLastWriteCAS[a.Rank] = casCycle
		}
	} else if casCycle > f.rankLastReadCAS[a.Rank] {
		f.rankLastReadCAS[a.Rank] = casCycle
	}
}

// planReorderedInterval plans one full interval of the reordered
// bank-partitioned pipeline: every domain contributes one transaction at
// the interval start; reads are scheduled before writes on a 6-cycle data
// grid, and read results are released together at the interval end.
func (f *FS) planReorderedInterval(c *mem.Controller, interval int64) {
	if f.quiescing {
		return
	}
	base := interval * f.q
	slotSpacing := f.reorderSpacing        // solved data-slot spacing (6 on DDR3)
	dataLead := int64(f.p.TRCD + f.p.TCAS) // first read ACT lands at base

	// Collect one transaction (or dummy) per domain. The eligibility verdict
	// must not depend on which slot the candidate lands in — slot positions
	// follow the global read/write mix, so a slot-anchored guard would couple
	// the domains. eligibleReordered checks the bank guard at the fixed
	// interval-start anchor and the (never-binding) rank guards at the
	// candidate's exact grid position: a read's slot is the number of reads
	// selected before it (final — later selections only append after it), a
	// write's is its earliest possible slot (later reads only push writes
	// later, which relaxes the minimum-gap guards).
	checkAnchor := base + dataLead
	lastAnchor := base + dataLead + int64(f.domains-1)*slotSpacing
	reads := make([]*mem.Request, 0, f.domains)
	writes := make([]*mem.Request, 0, f.domains)
	for d := 0; d < f.domains; d++ {
		readAnchor := base + dataLead + int64(len(reads))*slotSpacing
		writeAnchor := base + dataLead + int64(len(reads)+len(writes))*slotSpacing
		elig := func(a dram.Address, write bool) bool {
			exact := readAnchor
			if write {
				exact = writeAnchor
			}
			return f.eligibleReordered(a, checkAnchor, exact, write)
		}
		req := f.selectRequest(c, d, elig)
		if req == nil {
			req = f.dummyRequest(c, d, -1, elig)
			if req == nil {
				c.Dom[d].Dummies++
				c.Obs.DummySlot(d, checkAnchor, obs.SlotSkip)
				continue
			}
			c.Obs.DummySlot(d, checkAnchor, obs.SlotDummy)
		}
		if req.Write {
			writes = append(writes, req)
		} else {
			reads = append(reads, req)
		}
	}

	// En-masse release cycle: after the last possible data transfer.
	releaseReads := base + dataLead + slotSpacing*int64(f.domains-1) + int64(f.p.TBURST)

	slot := int64(0)
	for _, r := range reads {
		anchor := base + dataLead + slot*slotSpacing
		f.scheduleTransaction(c, r, anchor, releaseReads, lastAnchor)
		slot++
	}
	for _, w := range writes {
		anchor := base + dataLead + slot*slotSpacing
		f.scheduleTransaction(c, w, anchor, 0, lastAnchor)
		slot++
	}
}

// ObsMetrics contributes the scheduler's static grid parameters and
// energy-optimization tallies to an observability snapshot (structurally
// satisfies obs.MetricSource).
func (f *FS) ObsMetrics(emit func(name string, value float64)) {
	emit("slot_width", float64(f.l))
	emit("interval", float64(f.q))
	emit("domains", float64(f.domains))
	emit("refreshes", float64(f.Refreshes))
	emit("row_hit_boosts", float64(f.Stats.RowHitBoosts))
	emit("power_down_slots", float64(f.Stats.PowerDownSlots))
	var pd int64
	for _, c := range f.Stats.PowerDownCycles {
		pd += c
	}
	emit("power_down_cycles", float64(pd))
}
