package core

import (
	"testing"
	"testing/quick"
)

// TestPipelinePropertyRandomMixes: for arbitrary read/write assignments,
// every variant's pipeline must verify conflict-free. This is the
// quick-check form of the paper's claim that the schedule is safe for ANY
// combination of reads and writes ("any combination of reads and writes to
// eight different ranks can be accommodated").
func TestPipelinePropertyRandomMixes(t *testing.T) {
	p := paperParams()
	for _, v := range []Variant{FSRankPart, FSBankPart, FSReorderedBank, FSNoPartTriple} {
		v := v
		check := func(pattern uint8, seed uint16) bool {
			writes := make([]bool, 8)
			for i := range writes {
				writes[i] = pattern&(1<<i) != 0
			}
			cmds, _, err := RecordPipeline(p, Config{Variant: v, Domains: 8, Seed: uint64(seed) + 1}, writes, 6)
			if err != nil {
				return false
			}
			return len(VerifyPipeline(p, cmds)) == 0 && CommandBusConflicts(cmds) == 0
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("%v: %v", v, err)
		}
	}
}

// TestPipelinePropertyRandomWeights: arbitrary small SLA weight vectors
// keep the rank-partitioned pipeline legal.
func TestPipelinePropertyRandomWeights(t *testing.T) {
	p := paperParams()
	check := func(w0, w1, w2, w3 uint8, pattern uint8) bool {
		weights := []int{int(w0%3) + 1, int(w1%3) + 1, int(w2%3) + 1, int(w3%3) + 1}
		writes := make([]bool, 4)
		for i := range writes {
			writes[i] = pattern&(1<<i) != 0
		}
		cmds, _, err := RecordPipeline(p, Config{Variant: FSRankPart, Domains: 4, Seed: 9, Weights: weights}, writes, 8)
		if err != nil {
			return false
		}
		return len(VerifyPipeline(p, cmds)) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPipelinePropertyDomainCounts: the rank-partitioned pipeline stays
// legal for every domain count that fits the rank budget, including the
// hazardous small counts.
func TestPipelinePropertyDomainCounts(t *testing.T) {
	p := paperParams()
	for domains := 1; domains <= 8; domains *= 2 {
		writes := make([]bool, domains)
		for i := range writes {
			writes[i] = i%2 == 0
		}
		cmds, fs, err := RecordPipeline(p, Config{Variant: FSRankPart, Domains: domains, Seed: 4}, writes, 10)
		if err != nil {
			t.Fatalf("domains=%d: %v", domains, err)
		}
		if errs := VerifyPipeline(p, cmds); len(errs) != 0 {
			t.Errorf("domains=%d (Q=%d): %v", domains, fs.Q(), errs[0])
		}
	}
}

// TestScheduleIsSlotPure: the command grid of an FS variant depends only on
// (variant, domains, weights) — never on the request contents. Two runs
// with opposite read/write mixes must use exactly the same set of ACT
// cycles (ACT offsets differ between reads and writes only under fixed
// periodic data, where the slot anchor set is still identical).
func TestScheduleIsSlotPure(t *testing.T) {
	p := paperParams()
	anchorSet := func(writes []bool) map[int64]bool {
		cmds, fs, err := RecordPipeline(p, Config{Variant: FSBankPart, Domains: 8, Seed: 2}, writes, 6)
		if err != nil {
			t.Fatal(err)
		}
		// Fixed periodic RAS: the ACT cycle IS the slot anchor.
		set := map[int64]bool{}
		for _, tc := range cmds {
			if tc.Cmd.Kind.String() == "ACT" {
				set[(tc.Cycle-fs.anchor0)%int64(fs.L())] = true
				if (tc.Cycle-fs.anchor0)%int64(fs.L()) != 0 {
					t.Fatalf("ACT off the slot grid at %d", tc.Cycle)
				}
				set[tc.Cycle] = true
			}
		}
		return set
	}
	allReads := anchorSet(make([]bool, 8))
	allWrites := anchorSet([]bool{true, true, true, true, true, true, true, true})
	if len(allReads) != len(allWrites) {
		t.Fatalf("anchor sets differ in size: %d vs %d", len(allReads), len(allWrites))
	}
	for a := range allReads {
		if !allWrites[a] {
			t.Fatalf("ACT anchor %d present for reads but not writes", a)
		}
	}
}
