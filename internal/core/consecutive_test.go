package core

import (
	"testing"

	"fsmem/internal/dram"
)

// TestConsecutiveNeverBeatsSingle pins the paper's Section 3.1 conclusion:
// letting each thread inject N consecutive transactions (which saves the
// rank-to-rank switching delay between them) does NOT yield a more
// efficient pipeline at the Table 1 timings, because the unconstrained
// write-then-read order inside a block forces a large intra-thread spacing.
func TestConsecutiveNeverBeatsSingle(t *testing.T) {
	p := dram.DDR3_1600()
	single, err := SolveConsecutive(1, p)
	if err != nil {
		t.Fatal(err)
	}
	if single.AvgSpacing() != 7 {
		t.Fatalf("N=1 average spacing %v, want 7", single.AvgSpacing())
	}
	for n := 2; n <= 4; n++ {
		plan, err := SolveConsecutive(n, p)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		t.Logf("%v", plan)
		if plan.AvgSpacing() < single.AvgSpacing() {
			t.Errorf("N=%d average spacing %.2f beats the N=1 pipeline (%v) — contradicts §3.1",
				n, plan.AvgSpacing(), single.AvgSpacing())
		}
		if plan.BlockPeriod() != (plan.N-1)*plan.IntraL+plan.InterL {
			t.Errorf("BlockPeriod inconsistent: %+v", plan)
		}
	}
}

// TestConsecutiveFeasibilityIsSound: the returned plan must actually be
// feasible, and shrinking either spacing by one must break it (minimality
// in at least one direction at the found point).
func TestConsecutiveFeasibilityIsSound(t *testing.T) {
	p := dram.DDR3_1600()
	for n := 2; n <= 3; n++ {
		plan, err := SolveConsecutive(n, p)
		if err != nil {
			t.Fatal(err)
		}
		if !consecutiveFeasible(n, plan.IntraL, plan.InterL, p) {
			t.Fatalf("N=%d: solver returned an infeasible plan %+v", n, plan)
		}
		better := false
		for intra := p.TBURST; intra <= plan.IntraL; intra++ {
			for inter := p.TBURST + p.TRTRS; inter <= plan.InterL; inter++ {
				if intra == plan.IntraL && inter == plan.InterL {
					continue
				}
				if (n-1)*intra+inter < plan.BlockPeriod() && consecutiveFeasible(n, intra, inter, p) {
					better = true
				}
			}
		}
		if better {
			t.Errorf("N=%d: a strictly better plan exists below %+v", n, plan)
		}
	}
}

func TestConsecutiveErrors(t *testing.T) {
	if _, err := SolveConsecutive(0, dram.DDR3_1600()); err == nil {
		t.Error("N=0 should error")
	}
}
