package core

import (
	"fmt"

	"fsmem/internal/dram"
)

// Group-rotation solving generalizes the paper's triple alternation: if the
// schedule guarantees that slots d apart target the same bank (group) only
// when d is a multiple of G, then only every G-th pair pays the same-bank
// recovery penalty, and the other pairs pay the cross-group (DDR4 "short")
// timings. Triple alternation is the special case G=3 on DDR3, where the
// short and long timings coincide and the cross-group constraint set is
// the bank-partitioned one.

// FeasibleRotation reports whether slot spacing l is conflict-free for a
// G-way group rotation with no spatial partitioning: pairs at distance
// d % G != 0 are bank-group-disjoint (short timings), pairs at multiples
// of G may reuse the same bank and need full precharge recovery.
func FeasibleRotation(l, groups int, a Anchor, p dram.Params) (bool, string) {
	if groups < 2 {
		return false, "rotation needs at least 2 groups"
	}
	o := OffsetsFor(a, p)
	types := []bool{false, true}
	for d := 1; d <= solveWindow; d++ {
		dl := d * l
		sameGroup := d%groups == 0
		for _, earlier := range types {
			for _, later := range types {
				// Command bus.
				for _, offL := range []int{o.act(later), o.cas(later)} {
					for _, offE := range []int{o.act(earlier), o.cas(earlier)} {
						if dl+offL == offE {
							return false, fmt.Sprintf("command bus collision (d=%d)", d)
						}
					}
				}
				// Data bus (worst case: different ranks).
				sep := p.TBURST + p.TRTRS
				gap := dl + o.data(later) - o.data(earlier)
				if gap < 0 {
					gap = -gap
				}
				if gap < sep {
					return false, fmt.Sprintf("data bus (d=%d: gap %d < %d)", d, gap, sep)
				}

				// Same-rank constraints, long or short per group distance.
				rrd, ccd, wtr := p.RRDOther(), p.CCDOther(), p.WTROther()
				if sameGroup {
					rrd, ccd, wtr = p.RRDSame(), p.CCDSame(), p.WTRSame()
				}
				if g := dl + o.act(later) - o.act(earlier); d == 1 && g < rrd {
					return false, fmt.Sprintf("tRRD (d=%d: %d < %d)", d, g, rrd)
				}
				if g := dl + o.act(later) - o.act(earlier); d == 4 && g < p.TFAW {
					return false, fmt.Sprintf("tFAW (d=%d: %d < %d)", d, g, p.TFAW)
				}
				if g := dl + o.cas(later) - o.cas(earlier); g < ccd {
					return false, fmt.Sprintf("tCCD (d=%d: %d < %d)", d, g, ccd)
				}
				if earlier && !later {
					if g := dl + o.cas(later) - o.cas(earlier); g < p.TCWD+p.TBURST+wtr {
						return false, fmt.Sprintf("tWTR (d=%d: %d < %d)", d, g, p.TCWD+p.TBURST+wtr)
					}
				}
				if !earlier && later {
					if g := dl + o.cas(later) - o.cas(earlier); g < p.ReadToWriteGap() {
						return false, fmt.Sprintf("Rd2Wr (d=%d: %d < %d)", d, g, p.ReadToWriteGap())
					}
				}
				if !sameGroup {
					continue
				}
				// Same bank possible: tRC and full precharge recovery.
				if g := dl + o.act(later) - o.act(earlier); g < p.TRC {
					return false, fmt.Sprintf("tRC (d=%d: %d < %d)", d, g, p.TRC)
				}
				preStart := o.act(earlier) + p.TRAS
				if earlier {
					if s := o.data(earlier) + p.TBURST + p.TWR; s > preStart {
						preStart = s
					}
				} else {
					if s := o.cas(earlier) + p.TRTP; s > preStart {
						preStart = s
					}
				}
				if g := dl + o.act(later); g < preStart+p.TRP {
					return false, fmt.Sprintf("precharge recovery (d=%d: %d < %d)", d, g, preStart+p.TRP)
				}
			}
		}
	}
	return true, ""
}

// MinLRotation computes the smallest slot spacing for a G-way rotation.
// For DDR3 at G=3 this recovers the paper's triple-alternation l=15; for
// DDR4's native bank groups the short cross-group timings shrink it
// further — a new design point the paper's framework admits.
func MinLRotation(groups int, a Anchor, p dram.Params) (int, error) {
	const maxL = 512
	for l := p.TBURST; l <= maxL; l++ {
		if ok, _ := FeasibleRotation(l, groups, a, p); ok {
			return l, nil
		}
	}
	return 0, fmt.Errorf("core: no feasible rotation l <= %d for G=%d/%v", maxL, groups, a)
}

// ReorderedSlotSpacing solves the data-slot spacing of the reordered
// bank-partitioned pipeline (§4.2): reads are scheduled before writes on a
// uniform data grid, so only the (R,R), (R then W), and (W,W) orders occur
// inside an interval, plus the write-to-read boundary into the next
// interval. On DDR3-1600 this yields the paper's 6-cycle slots; other
// parts (e.g. DDR4 with its different command offsets) need a different
// spacing, which is why it is solved rather than assumed.
func ReorderedSlotSpacing(p dram.Params, domains int) (int, error) {
	o := OffsetsFor(FixedData, p)
	const maxS = 64
	for s := p.TBURST + p.TRTRS; s <= maxS; s++ {
		if reorderedFeasible(s, domains, o, p) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("core: no feasible reordered slot spacing <= %d", maxS)
}

func reorderedFeasible(s, domains int, o Offsets, p dram.Params) bool {
	// orders lists the (earlier, later) type pairs that can occur within an
	// interval: reads always precede writes.
	orders := [][2]bool{{false, false}, {false, true}, {true, true}}
	checkPair := func(gap int, earlier, later bool) bool {
		// Command bus.
		for _, offL := range []int{o.act(later), o.cas(later)} {
			for _, offE := range []int{o.act(earlier), o.cas(earlier)} {
				if gap+offL == offE {
					return false
				}
			}
		}
		// Data bus, worst case cross-rank.
		dg := gap + o.data(later) - o.data(earlier)
		if dg < 0 {
			dg = -dg
		}
		if dg < p.TBURST+p.TRTRS {
			return false
		}
		// Same-rank worst case (bank partitioning can put every domain's
		// bank in one rank); bank groups are not guaranteed distinct, so
		// the long timings apply.
		if g := gap + o.act(later) - o.act(earlier); g < p.RRDSame() {
			return false
		}
		if g := gap + o.cas(later) - o.cas(earlier); g < p.CCDSame() {
			return false
		}
		if !earlier && later { // read then write
			if g := gap + o.cas(later) - o.cas(earlier); g < p.ReadToWriteGap() {
				return false
			}
		}
		if earlier && !later { // write then read (interval boundary only)
			if g := gap + o.cas(later) - o.cas(earlier); g < p.WriteToReadGap() {
				return false
			}
		}
		return true
	}
	for d := 1; d <= solveWindow; d++ {
		for _, ord := range orders {
			if !checkPair(d*s, ord[0], ord[1]) {
				return false
			}
		}
		// tFAW on the uniform ACT grid.
		if d == 4 {
			for _, ord := range orders {
				if g := d*s + o.act(ord[1]) - o.act(ord[0]); g < p.TFAW {
					return false
				}
			}
		}
	}
	// Interval boundary: the last write of interval i against the first
	// reads of interval i+1, at distance Q - (domains-1)*s.
	boundary := s + p.WriteToReadGap()
	for d := 0; d < solveWindow && d < domains; d++ {
		if !checkPair(boundary+d*s, true, false) {
			return false
		}
		if !checkPair(boundary+d*s, true, true) {
			return false
		}
	}
	return true
}
