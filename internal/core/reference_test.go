package core

import (
	"testing"

	"fsmem/internal/dram"
)

// TestPipelinesPassReferenceChecker replays each FS variant's command
// stream through the brute-force ReferenceChecker — an implementation of
// the DDR timing rules written independently of the Channel the engine
// already validates against. Two independent validators agreeing on zero
// violations is the strongest conflict-freedom evidence the repository
// produces.
func TestPipelinesPassReferenceChecker(t *testing.T) {
	for _, p := range []dram.Params{dram.DDR3_1600(), dram.DDR4_2400()} {
		p := p
		for _, v := range []Variant{FSRankPart, FSBankPart, FSReorderedBank, FSNoPart, FSNoPartTriple} {
			writes := []bool{false, true, false, false, true, false, true, true}
			cmds, fs, err := RecordPipeline(p, Config{Variant: v, Domains: 8, Seed: 31}, writes, 5)
			if err != nil {
				t.Fatalf("%v: %v", v, err)
			}
			ref := dram.NewReferenceChecker(p)
			for i, tc := range cmds {
				if err := ref.Check(tc.Cmd, tc.Cycle); err != nil {
					t.Fatalf("%v (groups=%d, l=%d): command %d: %v", v, p.BankGroups, fs.L(), i, err)
				}
				ref.Apply(tc.Cmd, tc.Cycle)
			}
		}
	}
}
