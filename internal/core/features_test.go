package core

import (
	"testing"

	"fsmem/internal/dram"
	"fsmem/internal/mem"
)

// TestWeightedSlotsLayout: §5.1 SLA weights expand the interval and spread
// a domain's slots round-robin.
func TestWeightedSlotsLayout(t *testing.T) {
	p := paperParams()
	fs, err := NewFS(p, Config{Variant: FSRankPart, Domains: 4, Seed: 1, Weights: []int{2, 1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(fs.slotDomains); got != 5 {
		t.Fatalf("slots = %d, want 5", got)
	}
	if fs.Q() != int64(5*fs.L()) {
		t.Fatalf("Q = %d, want %d", fs.Q(), 5*fs.L())
	}
	// Round-robin layout: 0,1,2,3 then the second slot of domain 0.
	want := []int{0, 1, 2, 3, 0}
	for i, d := range fs.slotDomains {
		if d != want[i] {
			t.Fatalf("slotDomains = %v, want %v", fs.slotDomains, want)
		}
	}
}

func TestWeightedSlotsErrors(t *testing.T) {
	p := paperParams()
	if _, err := NewFS(p, Config{Variant: FSRankPart, Domains: 4, Weights: []int{1, 1}}); err == nil {
		t.Error("weight count mismatch should fail")
	}
	if _, err := NewFS(p, Config{Variant: FSRankPart, Domains: 2, Weights: []int{0, 0}}); err == nil {
		t.Error("zero total weight should fail")
	}
	if _, err := NewFS(p, Config{Variant: FSReorderedBank, Domains: 4, Weights: []int{2, 1, 1, 1}}); err == nil {
		t.Error("weights under reordered BP should fail")
	}
	if _, err := NewFS(p, Config{Variant: FSNoPartTriple, Domains: 6, Seed: 1}); err == nil {
		t.Error("triple alternation with slots % 3 == 0 should fail")
	}
}

// TestWeightedSlotsConflictFree: a weighted FS_RP schedule must still pass
// the independent checker, including the adjacent same-domain slots the
// rank-level tRRD/tFAW guards protect.
func TestWeightedSlotsConflictFree(t *testing.T) {
	p := paperParams()
	for _, weights := range [][]int{
		{2, 1, 1, 1},
		{3, 1, 2, 1},
		{4, 1, 1, 1},
	} {
		writes := []bool{false, true, false, true}
		cfg := Config{Variant: FSRankPart, Domains: 4, Seed: 3, Weights: weights}
		cmds, _, err := RecordPipeline(p, cfg, writes, 12)
		if err != nil {
			t.Fatalf("%v: %v", weights, err)
		}
		if errs := VerifyPipeline(p, cmds); len(errs) != 0 {
			t.Fatalf("weights %v: %v", weights, errs[0])
		}
	}
}

// TestWeightedSlotsProportionalService: a weight-2 domain must receive about
// twice the service of weight-1 domains when all are saturated.
func TestWeightedSlotsProportionalService(t *testing.T) {
	p := paperParams()
	fs, err := NewFS(p, Config{Variant: FSRankPart, Domains: 4, Seed: 5, Weights: []int{2, 1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ctl := mem.NewController(p, mem.DefaultConfig(4), fs)
	row := 0
	for ctl.Cycle < fs.Q()*200 {
		for d := 0; d < 4; d++ {
			space := fs.spaces[d]
			for len(ctl.ReadQ[d]) < 8 {
				ctl.EnqueueRead(d, dram.Address{
					Rank: space.Ranks[row%len(space.Ranks)],
					Bank: space.Banks[row%len(space.Banks)],
					Row:  row % p.RowsPerBank,
				}, nil)
				row++
			}
		}
		ctl.Tick()
	}
	r0 := float64(ctl.Dom[0].Reads)
	r1 := float64(ctl.Dom[1].Reads)
	if r1 == 0 || r0/r1 < 1.7 || r0/r1 > 2.3 {
		t.Fatalf("service ratio %0.2f (reads %v/%v), want ~2.0", r0/r1, r0, r1)
	}
}

// TestRefreshAwareFS: refreshes appear at the tREFI rate, the command
// stream stays legal, and service continues.
func TestRefreshAwareFS(t *testing.T) {
	p := paperParams()
	fs, err := NewFS(p, Config{Variant: FSRankPart, Domains: 8, Seed: 7, RefreshEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	ctl := mem.NewController(p, mem.DefaultConfig(8), fs)
	var cmds []TimedCommand
	ctl.Chan.OnIssue = func(cmd dram.Command, cyc int64, sup bool) {
		cmds = append(cmds, TimedCommand{Cycle: cyc, Cmd: cmd, Suppressed: sup})
	}
	row := 0
	total := int64(p.TREFI) * 3
	for ctl.Cycle < total {
		for d := 0; d < 8; d++ {
			for len(ctl.ReadQ[d]) < 4 {
				ctl.EnqueueRead(d, dram.Address{Rank: d, Bank: row % p.BanksPerRank, Row: row % p.RowsPerBank}, nil)
				row++
			}
		}
		ctl.Tick()
	}
	if errs := VerifyPipeline(p, cmds); len(errs) != 0 {
		t.Fatalf("refresh-aware pipeline violation: %v", errs[0])
	}
	// ~3 refresh windows per rank over 3*tREFI (staggered start).
	refs := ctl.Chan.Counters.Refreshes
	if refs < 2*8 || refs > 4*8 {
		t.Fatalf("refreshes = %d over 3 tREFI windows x 8 ranks, want ~24", refs)
	}
	var served int64
	for d := range ctl.Dom {
		served += ctl.Dom[d].Reads
	}
	if served == 0 {
		t.Fatal("no reads served with refresh enabled")
	}
}

// TestRefreshRequiresRankPartitioning pins the documented restriction.
func TestRefreshRequiresRankPartitioning(t *testing.T) {
	p := paperParams()
	for _, v := range []Variant{FSBankPart, FSNoPart, FSNoPartTriple, FSReorderedBank} {
		if _, err := NewFS(p, Config{Variant: v, Domains: 8, RefreshEnabled: true}); err == nil {
			t.Errorf("%v: refresh should be rejected", v)
		}
	}
}

// TestRefreshPreservesNonInterference: with refresh on, a domain's service
// timing still must not depend on co-runner behavior (refresh windows are
// time-triggered and per-rank).
func TestRefreshPreservesNonInterference(t *testing.T) {
	p := paperParams()
	run := func(othersBusy bool) []int64 {
		fs, err := NewFS(p, Config{Variant: FSRankPart, Domains: 8, Seed: 9, RefreshEnabled: true})
		if err != nil {
			t.Fatal(err)
		}
		ctl := mem.NewController(p, mem.DefaultConfig(8), fs)
		var completions []int64
		rows := make([]int, 8) // per-domain counters: domain 0's address
		// stream must be identical across both runs
		for ctl.Cycle < int64(p.TREFI)*2 {
			for len(ctl.ReadQ[0]) < 4 {
				ctl.EnqueueRead(0, dram.Address{Rank: 0, Bank: rows[0] % p.BanksPerRank, Row: rows[0] % p.RowsPerBank}, nil)
				rows[0]++
			}
			if othersBusy {
				for d := 1; d < 8; d++ {
					for len(ctl.ReadQ[d]) < 4 {
						ctl.EnqueueRead(d, dram.Address{Rank: d, Bank: rows[d] % p.BanksPerRank, Row: rows[d] % p.RowsPerBank}, nil)
						rows[d]++
					}
				}
			}
			ctl.Tick()
			completions = append(completions, ctl.Dom[0].Reads)
		}
		return completions
	}
	quiet := run(false)
	busy := run(true)
	for i := range quiet {
		if quiet[i] != busy[i] {
			t.Fatalf("domain 0 service diverged at cycle %d with refresh enabled", i)
		}
	}
}
