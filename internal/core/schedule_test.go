package core

import (
	"strings"
	"testing"

	"fsmem/internal/addr"
	"fsmem/internal/dram"
)

func TestRenderDiagramShowsFigure1Shape(t *testing.T) {
	p := paperParams()
	cmds, fs, err := RecordPipeline(p, Config{Variant: FSRankPart, Domains: 8, Seed: 1}, figure1Pattern(), 4)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderDiagram(p, cmds, fs.Q(), fs.Q()*2)
	for _, lane := range []string{"ACT", "COL-RD", "COL-WR", "DATA"} {
		if !strings.Contains(out, lane) {
			t.Fatalf("diagram missing lane %q:\n%s", lane, out)
		}
	}
	// The data lane must show 8 four-cycle bursts in one 56-cycle interval:
	// 32 occupied columns.
	lines := strings.Split(out, "\n")
	var dataLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "DATA") {
			dataLine = l
		}
	}
	occupied := 0
	for _, ch := range dataLine {
		if ch >= '0' && ch <= '9' {
			occupied++
		}
	}
	if occupied != 32 {
		t.Fatalf("data lane occupies %d cycles per interval, want 32:\n%s", occupied, out)
	}
	if RenderDiagram(p, cmds, 10, 10) != "" {
		t.Error("empty window should render empty")
	}
}

func TestCommandBusConflictsDetects(t *testing.T) {
	cmds := []TimedCommand{
		{Cycle: 5, Cmd: dram.Command{Kind: dram.KindActivate}},
		{Cycle: 5, Cmd: dram.Command{Kind: dram.KindRead}},
		{Cycle: 6, Cmd: dram.Command{Kind: dram.KindRead}},
	}
	if got := CommandBusConflicts(cmds); got != 1 {
		t.Fatalf("conflicts = %d, want 1", got)
	}
	if got := CommandBusConflicts(cmds[2:]); got != 0 {
		t.Fatalf("conflicts = %d, want 0", got)
	}
}

func TestRecordPipelineRejectsBadPattern(t *testing.T) {
	p := paperParams()
	if _, _, err := RecordPipeline(p, Config{Variant: FSRankPart, Domains: 8, Seed: 1}, []bool{true}, 2); err == nil {
		t.Fatal("pattern length mismatch should fail")
	}
}

func TestSolverTableComplete(t *testing.T) {
	table := SolverTable(paperParams())
	if len(table) != 9 {
		t.Fatalf("table has %d entries, want 9 (3 modes x 3 anchors)", len(table))
	}
	for k, v := range table {
		if v <= 0 {
			t.Errorf("%s: l = %d", k, v)
		}
	}
	if table["rank/fixed-periodic-data"] != 7 {
		t.Errorf("table[rank/fixed-periodic-data] = %d", table["rank/fixed-periodic-data"])
	}
}

func TestVariantMetadata(t *testing.T) {
	for _, v := range []Variant{FSRankPart, FSBankPart, FSReorderedBank, FSNoPart, FSNoPartTriple} {
		if v.String() == "" || strings.Contains(v.String(), "Variant(") {
			t.Errorf("variant %d has no name", v)
		}
	}
	if Variant(99).String() == "" {
		t.Error("unknown variant should still format")
	}
	if FSRankPart.PartitionKind() != addr.PartitionRank ||
		FSBankPart.PartitionKind() != addr.PartitionBank ||
		FSNoPart.PartitionKind() != addr.PartitionNone {
		t.Error("partition kinds wrong")
	}
	if FSRankPart.Anchor() != FixedData || FSBankPart.Anchor() != FixedRAS {
		t.Error("anchors wrong")
	}
}
