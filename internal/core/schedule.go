package core

import (
	"fmt"
	"strings"

	"fsmem/internal/dram"
	"fsmem/internal/mem"
)

// TimedCommand is one issued command with its cycle, as observed on the
// command bus.
type TimedCommand struct {
	Cycle      int64
	Cmd        dram.Command
	Suppressed bool
}

// RecordPipeline runs the FS variant with every domain fully backlogged
// with the given per-domain request kind (writes[d] selects write vs read)
// for the given number of Q-cycle intervals, and returns every command it
// issued. It is the source for the Figure 1/2 diagrams and for the
// conflict-freedom proofs in the tests: the recorded stream can be replayed
// through an independent dram.Checker.
func RecordPipeline(p dram.Params, cfg Config, writes []bool, intervals int) ([]TimedCommand, *FS, error) {
	if len(writes) != cfg.Domains {
		return nil, nil, fmt.Errorf("core: writes pattern has %d entries for %d domains", len(writes), cfg.Domains)
	}
	fs, err := NewFS(p, cfg)
	if err != nil {
		return nil, nil, err
	}
	ctl := mem.NewController(p, mem.DefaultConfig(cfg.Domains), fs)

	var recorded []TimedCommand
	ctl.Chan.OnIssue = func(cmd dram.Command, cycle int64, suppressed bool) {
		recorded = append(recorded, TimedCommand{Cycle: cycle, Cmd: cmd, Suppressed: suppressed})
	}

	// Keep every domain's queue saturated with requests spread across its
	// partition (rows vary so no two transactions coalesce; banks cycle so
	// triple alternation always finds an eligible group).
	row := 0
	refill := func() {
		for d := 0; d < cfg.Domains; d++ {
			space := fs.spaces[d]
			for len(ctl.ReadQ[d])+len(ctl.WriteQ[d]) < 8 {
				a := dram.Address{
					Rank: space.Ranks[row%len(space.Ranks)],
					Bank: space.Banks[row%len(space.Banks)],
					Row:  row % p.RowsPerBank,
				}
				row++
				if writes[d] {
					ctl.EnqueueWrite(d, a)
				} else {
					ctl.EnqueueRead(d, a, nil)
				}
			}
		}
	}

	total := fs.Q() * int64(intervals)
	for ctl.Cycle < total {
		refill()
		ctl.Tick()
	}
	return recorded, fs, nil
}

// VerifyPipeline replays a recorded command stream through an independent
// checker and returns its violations (empty means provably conflict-free
// under the full DDR3 timing model).
func VerifyPipeline(p dram.Params, cmds []TimedCommand) []error {
	ck := dram.NewChecker(p)
	for _, tc := range cmds {
		ck.Feed(tc.Cmd, tc.Cycle)
	}
	return ck.Violations()
}

// RenderDiagram draws a Figure 1-style occupancy diagram of a cycle window:
// one lane per command class plus the data bus, one character column per
// cycle. Reads and writes are labeled with their rank.
func RenderDiagram(p dram.Params, cmds []TimedCommand, from, to int64) string {
	width := int(to - from)
	if width <= 0 {
		return ""
	}
	lanes := map[string][]byte{
		"ACT    ": blankLane(width),
		"COL-RD ": blankLane(width),
		"COL-WR ": blankLane(width),
		"DATA   ": blankLane(width),
	}
	mark := func(lane string, at int64, n int, ch byte) {
		row := lanes[lane]
		for i := 0; i < n; i++ {
			pos := at + int64(i) - from
			if pos >= 0 && pos < int64(width) {
				row[pos] = ch
			}
		}
	}
	for _, tc := range cmds {
		label := byte('0' + tc.Cmd.Rank%10)
		switch {
		case tc.Cmd.Kind == dram.KindActivate:
			mark("ACT    ", tc.Cycle, 1, label)
		case tc.Cmd.Kind.IsRead():
			mark("COL-RD ", tc.Cycle, 1, label)
			mark("DATA   ", tc.Cycle+int64(p.TCAS), p.TBURST, label)
		case tc.Cmd.Kind.IsWrite():
			mark("COL-WR ", tc.Cycle, 1, label)
			mark("DATA   ", tc.Cycle+int64(p.TCWD), p.TBURST, label)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cycles %d..%d (one column per memory cycle; digits are rank ids)\n", from, to)
	for _, lane := range []string{"ACT    ", "COL-RD ", "COL-WR ", "DATA   "} {
		b.WriteString(lane)
		b.WriteString("|")
		b.Write(lanes[lane])
		b.WriteString("|\n")
	}
	return b.String()
}

func blankLane(w int) []byte {
	row := make([]byte, w)
	for i := range row {
		row[i] = '.'
	}
	return row
}

// CommandBusConflicts counts cycles carrying more than one command — an
// explicit check of the paper's "a cycle can only accommodate one of the
// three commands" requirement.
func CommandBusConflicts(cmds []TimedCommand) int {
	seen := map[int64]int{}
	for _, tc := range cmds {
		seen[tc.Cycle]++
	}
	n := 0
	for _, k := range seen {
		if k > 1 {
			n += k - 1
		}
	}
	return n
}
