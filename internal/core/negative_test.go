package core

import (
	"testing"

	"fsmem/internal/addr"
	"fsmem/internal/dram"
	"fsmem/internal/fault"
	"fsmem/internal/mem"
)

// The conflict-freedom results are only meaningful if the validators would
// actually catch a broken schedule. These tests inject known-infeasible
// spacings and verify the machinery rejects them loudly.

// TestInfeasibleSpacingIsCaught runs FS_RP at l=6 — infeasible per
// Equation 1 (6 equals the ACT-read/ACT-write command-offset difference) —
// and requires the engine to report the resulting command-bus collision as
// a structured violation, both on its own counter and through the runtime
// monitor.
func TestInfeasibleSpacingIsCaught(t *testing.T) {
	p := paperParams()
	if ok, _ := Feasible(6, FixedData, addr.PartitionRank, p); ok {
		t.Fatal("l=6 should be infeasible (Equation 1)")
	}
	fs, err := NewFS(p, Config{Variant: FSRankPart, Domains: 8, Seed: 1, L: 6})
	if err != nil {
		t.Fatal(err)
	}
	ctl := mem.NewController(p, mem.DefaultConfig(8), fs)
	mon := fault.NewMonitor(p, 8)
	ctl.AttachMonitor(mon)
	// Mixed reads and writes provoke the colliding offsets.
	for d := 0; d < 8; d++ {
		for i := 0; i < 4; i++ {
			a := dram.Address{Rank: d, Bank: i, Row: i + 1}
			if d%2 == 0 {
				ctl.EnqueueRead(d, a, nil)
			} else {
				ctl.EnqueueWrite(d, a)
			}
		}
	}
	for ctl.Cycle < fs.Q()*4 {
		ctl.Tick()
	}
	if fs.Violations == 0 {
		t.Fatal("engine accepted an infeasible l=6 schedule without reporting a timing violation")
	}
	rep := mon.Finalize(nil)
	if rep.SchedulerViolations == 0 {
		t.Fatal("monitor never received the scheduler's violation report")
	}
	if rep.Ok() {
		t.Fatal("monitor report for a broken schedule must not be clean")
	}
}

// TestCheckerCatchesCorruptedPipeline takes a valid recorded pipeline,
// shifts one command by a cycle, and requires both validators to flag it.
func TestCheckerCatchesCorruptedPipeline(t *testing.T) {
	p := paperParams()
	cmds, _, err := RecordPipeline(p, Config{Variant: FSRankPart, Domains: 8, Seed: 2}, figure1Pattern(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if errs := VerifyPipeline(p, cmds); len(errs) != 0 {
		t.Fatalf("pristine pipeline should verify: %v", errs[0])
	}
	// Corrupt: move a mid-stream command onto its neighbor's cycle.
	corrupted := append([]TimedCommand(nil), cmds...)
	idx := len(corrupted) / 2
	corrupted[idx].Cycle = corrupted[idx+1].Cycle
	if errs := VerifyPipeline(p, corrupted); len(errs) == 0 {
		t.Fatal("checker missed a same-cycle command-bus collision")
	}

	ref := dram.NewReferenceChecker(p)
	caught := false
	for _, tc := range corrupted {
		if err := ref.Check(tc.Cmd, tc.Cycle); err != nil {
			caught = true
			break
		}
		ref.Apply(tc.Cmd, tc.Cycle)
	}
	if !caught {
		t.Fatal("reference checker missed the corruption")
	}
}

// TestCheckerCatchesTWTRCorruption shifts a read CAS early enough to break
// the write-to-read turnaround specifically.
func TestCheckerCatchesTWTRCorruption(t *testing.T) {
	p := paperParams()
	cmds, _, err := RecordPipeline(p, Config{Variant: FSBankPart, Domains: 8, Seed: 3},
		[]bool{true, false, true, false, true, false, true, false}, 6)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]TimedCommand(nil), cmds...)
	moved := false
	lastWrite := int64(-1)
	for i := 1; i < len(corrupted); i++ {
		if corrupted[i].Cmd.Kind == dram.KindWriteAP {
			lastWrite = corrupted[i].Cycle
		}
		if corrupted[i].Cmd.Kind == dram.KindReadAP && lastWrite >= 0 && i > len(corrupted)/2 {
			// Move the read CAS to lastWrite+8: inside the 15-cycle Wr2Rd
			// window, on an otherwise-free command-bus cycle of the l=15
			// grid (busy cycles are 0 and 11 of each slot).
			corrupted[i].Cycle = lastWrite + 8
			moved = true
			break
		}
	}
	if !moved {
		t.Skip("no write-then-read CAS pair in this window")
	}
	if errs := VerifyPipeline(p, corrupted); len(errs) == 0 {
		t.Fatal("checker missed a tWTR violation")
	}
}
