package core

import (
	"fmt"

	"fsmem/internal/addr"
	"fsmem/internal/dram"
)

// ConsecutivePlan is a candidate rank-partitioned pipeline in which every
// thread injects N consecutive transactions per interval (Section 3.1,
// "Improving bandwidth"): the N same-thread transactions are spaced IntraL
// cycles (no rank-to-rank switch needed between them), and InterL separates
// the last transaction of one thread from the first of the next.
type ConsecutivePlan struct {
	N      int
	IntraL int
	InterL int
}

// BlockPeriod returns the cycles one thread's block occupies.
func (c ConsecutivePlan) BlockPeriod() int { return (c.N-1)*c.IntraL + c.InterL }

// AvgSpacing returns the average cycles per transaction — the quantity to
// compare against the N=1 optimum (l=7 at the Table 1 timings).
func (c ConsecutivePlan) AvgSpacing() float64 { return float64(c.BlockPeriod()) / float64(c.N) }

// String formats the plan.
func (c ConsecutivePlan) String() string {
	return fmt.Sprintf("N=%d intra=%d inter=%d avg=%.2f cyc/txn", c.N, c.IntraL, c.InterL, c.AvgSpacing())
}

// consecutiveFeasible checks a (intra, inter) pair under fixed periodic
// data with rank partitioning: same-block pairs share a rank (tCCD, tRRD,
// tFAW, both read/write turnarounds, data non-overlap), cross-block pairs
// are on different ranks (command bus + tRTRS data separation). Like the
// paper's analysis, the R/W order inside a block is NOT constrained, so the
// worst-case type assignment must be feasible in both directions.
func consecutiveFeasible(n, intra, inter int, p dram.Params) bool {
	o := OffsetsFor(FixedData, p)
	block := (n-1)*intra + inter
	window := 3 * n // three blocks cover every binding pair
	anchor := func(k int) int {
		return (k/n)*block + (k%n)*intra
	}
	types := []bool{false, true}
	for later := 1; later < window; later++ {
		for earlier := 0; earlier < later; earlier++ {
			sameBlock := later/n == earlier/n
			for _, te := range types {
				for _, tl := range types {
					ae, al := anchor(earlier), anchor(later)
					// Command bus uniqueness.
					for _, offL := range []int{o.act(tl), o.cas(tl)} {
						for _, offE := range []int{o.act(te), o.cas(te)} {
							if al+offL == ae+offE {
								return false
							}
						}
					}
					// Data bus.
					sep := p.TBURST
					if !sameBlock {
						sep += p.TRTRS
					}
					gap := al + o.data(tl) - (ae + o.data(te))
					if gap < 0 {
						gap = -gap
					}
					if gap < sep {
						return false
					}
					if !sameBlock {
						continue
					}
					// Same rank: tRRD / tCCD / turnarounds.
					if g := al + o.act(tl) - (ae + o.act(te)); g < p.TRRD {
						return false
					}
					if g := al + o.cas(tl) - (ae + o.cas(te)); g < p.TCCD {
						return false
					}
					if te && !tl { // write then read
						if g := al + o.cas(tl) - (ae + o.cas(te)); g < p.WriteToReadGap() {
							return false
						}
					}
					if !te && tl { // read then write
						if g := al + o.cas(tl) - (ae + o.cas(te)); g < p.ReadToWriteGap() {
							return false
						}
					}
					// tFAW within the block (4 intervening ACTs).
					if later-earlier == 4 {
						if g := al + o.act(tl) - (ae + o.act(te)); g < p.TFAW {
							return false
						}
					}
				}
			}
		}
	}
	return true
}

// SolveConsecutive finds the minimum-average-spacing (intra, inter) pair
// for N consecutive transactions per thread under rank partitioning. The
// paper reports that for the Table 1 parameters this never beats the N=1
// pipeline ("our analysis shows that for our chosen parameters, this did
// not result in a more efficient pipeline") — the tests pin that result.
func SolveConsecutive(n int, p dram.Params) (ConsecutivePlan, error) {
	if n < 1 {
		return ConsecutivePlan{}, fmt.Errorf("core: N must be >= 1, got %d", n)
	}
	if n == 1 {
		l, err := MinL(FixedData, addr.PartitionRank, p)
		if err != nil {
			return ConsecutivePlan{}, err
		}
		return ConsecutivePlan{N: 1, IntraL: l, InterL: l}, nil
	}
	const maxL = 96
	best := ConsecutivePlan{}
	found := false
	for intra := p.TBURST; intra <= maxL; intra++ {
		for inter := p.TBURST + p.TRTRS; inter <= maxL; inter++ {
			if found && float64((n-1)*intra+inter)/float64(n) >= best.AvgSpacing() {
				continue
			}
			if consecutiveFeasible(n, intra, inter, p) {
				best = ConsecutivePlan{N: n, IntraL: intra, InterL: inter}
				found = true
			}
		}
	}
	if !found {
		return ConsecutivePlan{}, fmt.Errorf("core: no feasible N=%d pipeline up to spacing %d", n, maxL)
	}
	return best, nil
}
