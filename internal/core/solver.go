// Package core implements the paper's contribution: the Fixed Service (FS)
// memory controller family. It contains
//
//   - the constraint solver that generalizes Equations 1-4 — given the DRAM
//     timing parameters, a fixed-periodic anchor (data, RAS, or CAS), and a
//     spatial-partitioning mode, it computes the minimum slot spacing l for
//     which the static command pipeline is provably conflict-free;
//   - the static pipeline construction (slot grids, command offsets, the
//     triple-alternation bank-group rotation, and the reordered
//     bank-partitioned read/write schedule); and
//   - the FS transaction scheduler that shapes every security domain to one
//     transaction per interval, inserting dummy or prefetch operations in
//     unused slots, with the paper's three energy optimizations.
package core

import (
	"fmt"

	"fsmem/internal/addr"
	"fsmem/internal/dram"
)

// Anchor selects which event of a transaction sits on the fixed periodic
// grid (Section 3: "fixed periodic data", "fixed periodic RAS", "fixed
// periodic CAS").
type Anchor int

const (
	// FixedData anchors the start of the data burst at k*l.
	FixedData Anchor = iota
	// FixedRAS anchors the Activate at k*l.
	FixedRAS
	// FixedCAS anchors the column command at k*l.
	FixedCAS
)

// String names the anchor.
func (a Anchor) String() string {
	switch a {
	case FixedData:
		return "fixed-periodic-data"
	case FixedRAS:
		return "fixed-periodic-RAS"
	case FixedCAS:
		return "fixed-periodic-CAS"
	default:
		return fmt.Sprintf("Anchor(%d)", int(a))
	}
}

// Offsets are the command and data times of one transaction relative to
// its slot anchor, for reads and writes.
type Offsets struct {
	ReadACT, ReadCAS, ReadData    int
	WriteACT, WriteCAS, WriteData int
}

// OffsetsFor derives the command offsets for an anchor from the timing
// parameters. For the paper's DDR3-1600 numbers and FixedData these are the
// values in Section 3: ACT at kl-22 / kl-16 and CAS at kl-11 / kl-5 for
// reads / writes.
func OffsetsFor(a Anchor, p dram.Params) Offsets {
	switch a {
	case FixedData:
		return Offsets{
			ReadACT: -p.TCAS - p.TRCD, ReadCAS: -p.TCAS, ReadData: 0,
			WriteACT: -p.TCWD - p.TRCD, WriteCAS: -p.TCWD, WriteData: 0,
		}
	case FixedCAS:
		return Offsets{
			ReadACT: -p.TRCD, ReadCAS: 0, ReadData: p.TCAS,
			WriteACT: -p.TRCD, WriteCAS: 0, WriteData: p.TCWD,
		}
	default: // FixedRAS
		return Offsets{
			ReadACT: 0, ReadCAS: p.TRCD, ReadData: p.TRCD + p.TCAS,
			WriteACT: 0, WriteCAS: p.TRCD, WriteData: p.TRCD + p.TCWD,
		}
	}
}

// act/cas/data pick the offset for a transaction type.
func (o Offsets) act(write bool) int {
	if write {
		return o.WriteACT
	}
	return o.ReadACT
}
func (o Offsets) cas(write bool) int {
	if write {
		return o.WriteCAS
	}
	return o.ReadCAS
}
func (o Offsets) data(write bool) int {
	if write {
		return o.WriteData
	}
	return o.ReadData
}

// MinOffset returns the earliest command offset (used to place the slot
// grid so no command is scheduled before cycle zero).
func (o Offsets) MinOffset() int {
	min := o.ReadACT
	for _, v := range []int{o.ReadCAS, o.WriteACT, o.WriteCAS} {
		if v < min {
			min = v
		}
	}
	return min
}

// Constraint records one inequality the solver checked, for reporting.
type Constraint struct {
	Name string // e.g. "tWTR (W then R, d=1)"
	MinL int    // the slot spacing this constraint alone requires (0 if it is an inequality on products)
}

// solveWindow is how many slot distances d = k-k' the solver examines.
// Command offsets and timing windows are all far below window*l for any
// feasible l, so 8 covers every binding pair.
const solveWindow = 8

// Feasible reports whether slot spacing l yields a conflict-free pipeline
// for the anchor and partitioning mode, and if not, which constraint fails.
//
// The check enumerates, for every slot distance d in [1, solveWindow] and
// every (earlier, later) transaction type pair in {read, write}^2:
//
//   - command-bus uniqueness (the paper's Equation 1): no two commands of
//     different transactions may occupy the same cycle;
//   - data-bus separation: bursts must not overlap, with tRTRS between
//     transfers worst-case assumed to be on different ranks;
//   - under bank partitioning (same rank worst case, Equations 2-4): tRRD,
//     tFAW, tCCD, and the write-to-read / read-to-write turnarounds;
//   - under no partitioning (same bank worst case): tRC and full
//     precharge recovery (the write-then-read case that forces l=43).
func Feasible(l int, a Anchor, mode addr.PartitionKind, p dram.Params) (bool, string) {
	o := OffsetsFor(a, p)
	types := []bool{false, true} // read, write

	for d := 1; d <= solveWindow; d++ {
		dl := d * l
		for _, earlier := range types {
			for _, later := range types {
				// Command bus: later commands at dl+off must not collide
				// with earlier commands at off'.
				for _, offL := range []int{o.act(later), o.cas(later)} {
					for _, offE := range []int{o.act(earlier), o.cas(earlier)} {
						if dl+offL == offE {
							return false, fmt.Sprintf("command bus collision (d=%d, %s/%s)", d, typeName(earlier), typeName(later))
						}
					}
				}

				// Data bus: bursts [start, start+tBURST) must be disjoint
				// with tRTRS margin (worst case: different ranks). The gap
				// may be negative when a later write's short tCWD puts its
				// burst before an earlier read's; separation must hold in
				// whichever order the bursts land.
				sep := p.TBURST + p.TRTRS
				gap := dl + o.data(later) - o.data(earlier)
				if gap < 0 {
					gap = -gap
				}
				if gap < sep {
					return false, fmt.Sprintf("data bus (d=%d, %s then %s: gap %d < %d)", d, typeName(earlier), typeName(later), gap, sep)
				}

				if mode == addr.PartitionRank || mode == addr.PartitionChannel {
					continue // disjoint ranks: only buses are shared
				}

				// Same rank worst case (bank partitioning).
				if g := dl + o.act(later) - o.act(earlier); d == 1 && g < p.TRRD {
					return false, fmt.Sprintf("tRRD (d=1, %s/%s: gap %d < %d)", typeName(earlier), typeName(later), g, p.TRRD)
				}
				if g := dl + o.act(later) - o.act(earlier); d == 4 && g < p.TFAW {
					return false, fmt.Sprintf("tFAW (d=4, %s/%s: gap %d < %d)", typeName(earlier), typeName(later), g, p.TFAW)
				}
				if g := dl + o.cas(later) - o.cas(earlier); g < p.TCCD {
					return false, fmt.Sprintf("tCCD (d=%d: gap %d < %d)", d, g, p.TCCD)
				}
				if earlier && !later { // write then read: tWTR from write data end
					g := dl + o.cas(later) - o.cas(earlier)
					if g < p.WriteToReadGap() {
						return false, fmt.Sprintf("tWTR (d=%d: CAS gap %d < %d)", d, g, p.WriteToReadGap())
					}
				}
				if !earlier && later { // read then write: data-bus turnaround
					g := dl + o.cas(later) - o.cas(earlier)
					if g < p.ReadToWriteGap() {
						return false, fmt.Sprintf("Rd2Wr (d=%d: CAS gap %d < %d)", d, g, p.ReadToWriteGap())
					}
				}

				if mode != addr.PartitionNone {
					continue
				}

				// Same bank worst case (no partitioning): the later ACT must
				// wait for the earlier transaction's full auto-precharge.
				if g := dl + o.act(later) - o.act(earlier); g < p.TRC {
					return false, fmt.Sprintf("tRC (d=%d: ACT gap %d < %d)", d, g, p.TRC)
				}
				preStart := o.act(earlier) + p.TRAS
				if earlier { // write: precharge after write recovery
					if s := o.data(earlier) + p.TBURST + p.TWR; s > preStart {
						preStart = s
					}
				} else { // read: precharge after tRTP
					if s := o.cas(earlier) + p.TRTP; s > preStart {
						preStart = s
					}
				}
				if g := dl + o.act(later); g < preStart+p.TRP {
					return false, fmt.Sprintf("precharge recovery (d=%d, %s then %s: ACT at %d < %d)",
						d, typeName(earlier), typeName(later), g, preStart+p.TRP)
				}
			}
		}
	}
	return true, ""
}

func typeName(write bool) string {
	if write {
		return "W"
	}
	return "R"
}

// MinL computes the smallest feasible slot spacing for the anchor and
// partitioning mode — the paper's l. It returns an error if nothing up to
// maxL works.
func MinL(a Anchor, mode addr.PartitionKind, p dram.Params) (int, error) {
	const maxL = 512
	lo := p.TBURST // a burst must at least fit
	for l := lo; l <= maxL; l++ {
		if ok, _ := Feasible(l, a, mode, p); ok {
			return l, nil
		}
	}
	return 0, fmt.Errorf("core: no feasible l <= %d for %v/%v", maxL, a, mode)
}

// BestAnchor returns the anchor with the smallest feasible l for the mode,
// resolving the paper's observation that fixed periodic data wins under
// rank partitioning while fixed periodic RAS wins under bank partitioning
// and no partitioning.
func BestAnchor(mode addr.PartitionKind, p dram.Params) (Anchor, int, error) {
	best := Anchor(-1)
	bestL := 0
	for _, a := range []Anchor{FixedData, FixedRAS, FixedCAS} {
		l, err := MinL(a, mode, p)
		if err != nil {
			continue
		}
		if best < 0 || l < bestL {
			best, bestL = a, l
		}
	}
	if best < 0 {
		return 0, 0, fmt.Errorf("core: no feasible anchor for %v", mode)
	}
	return best, bestL, nil
}

// SolverTable summarizes minimal l for every anchor/mode combination; the
// cmd/pipeline tool prints it and the tests pin the paper's values.
func SolverTable(p dram.Params) map[string]int {
	out := map[string]int{}
	for _, mode := range []addr.PartitionKind{addr.PartitionRank, addr.PartitionBank, addr.PartitionNone} {
		for _, a := range []Anchor{FixedData, FixedRAS, FixedCAS} {
			l, err := MinL(a, mode, p)
			if err != nil {
				l = -1
			}
			out[fmt.Sprintf("%v/%v", mode, a)] = l
		}
	}
	return out
}
