package core

import (
	"testing"

	"fsmem/internal/addr"
	"fsmem/internal/dram"
)

func TestDDR4ParamsValidate(t *testing.T) {
	p := dram.DDR4_2400()
	if err := p.Validate(); err != nil {
		t.Fatalf("DDR4_2400 should validate: %v", err)
	}
	if p.BankGroup(0) != 0 || p.BankGroup(4) != 1 || p.BankGroup(15) != 3 {
		t.Errorf("bank-group mapping wrong: %d %d %d", p.BankGroup(0), p.BankGroup(4), p.BankGroup(15))
	}
	bad := p
	bad.TCCDS = p.TCCD + 1
	if err := bad.Validate(); err == nil {
		t.Error("tCCD_S > tCCD_L should be rejected")
	}
	bad = p
	bad.BankGroups = 3 // 16 banks don't split into 3
	if err := bad.Validate(); err == nil {
		t.Error("uneven bank-group split should be rejected")
	}
}

// TestDDR4BankGroupTiming exercises the short/long split directly on the
// channel: back-to-back CAS across groups at tCCD_S, within a group only
// at tCCD_L.
func TestDDR4BankGroupTiming(t *testing.T) {
	p := dram.DDR4_2400()
	ch := dram.NewChannel(p)
	must := func(cmd dram.Command, cyc int64) {
		t.Helper()
		if err := ch.Issue(cmd, cyc); err != nil {
			t.Fatalf("Issue(%v,%d): %v", cmd, cyc, err)
		}
	}
	// ACT to bank 0 (group 0): a same-group ACT at tRRD_S must be rejected
	// (tRRD_L binds), while a cross-group ACT at tRRD_S is legal.
	must(dram.Command{Kind: dram.KindActivate, Bank: 0, Row: 1}, 0)
	if err := ch.CanIssue(dram.Command{Kind: dram.KindActivate, Bank: 1, Row: 1}, int64(p.TRRDS)); err == nil {
		t.Fatal("same-group ACT at tRRD_S spacing should be rejected")
	}
	must(dram.Command{Kind: dram.KindActivate, Bank: 4, Row: 1}, int64(p.TRRDS))
	must(dram.Command{Kind: dram.KindActivate, Bank: 1, Row: 1}, int64(p.TRRDS)+int64(p.TRRDS))

	c0 := int64(p.TRCD + p.TRRD)
	must(dram.Command{Kind: dram.KindRead, Bank: 0}, c0)
	// Same-group CAS at tCCD_S must be rejected (tCCD_L binds)...
	if err := ch.CanIssue(dram.Command{Kind: dram.KindRead, Bank: 1}, c0+int64(p.TCCDS)); err == nil {
		t.Fatal("same-group CAS at tCCD_S spacing should be rejected")
	}
	// ...while the cross-group read at tCCD_S is legal.
	must(dram.Command{Kind: dram.KindRead, Bank: 4}, c0+int64(p.TCCDS))
	must(dram.Command{Kind: dram.KindRead, Bank: 1}, c0+int64(p.TCCDS)+int64(p.TCCDS)) // max(lastCAS+tCCD_S, group0CAS+tCCD_L)
}

// TestDDR4SolverValues: minimal slot spacings at DDR4-2400 timings, solved
// with the same machinery as the paper's DDR3 values. The rank-partitioned
// fixed-periodic-data pipeline is still bus-limited; the bank-partitioned
// and no-partitioning pipelines stretch with the slower (in cycles)
// turnarounds.
func TestDDR4SolverValues(t *testing.T) {
	p := dram.DDR4_2400()
	lRank, err := MinL(FixedData, addr.PartitionRank, p)
	if err != nil {
		t.Fatal(err)
	}
	// Data bus limit is tBURST+tRTRS = 6; command-bus offsets differ from
	// DDR3, so just pin the solved value and its bound.
	if lRank < p.TBURST+p.TRTRS || lRank > 12 {
		t.Errorf("DDR4 rank-partitioned l = %d out of expected band", lRank)
	}
	lBank, err := MinL(FixedRAS, addr.PartitionBank, p)
	if err != nil {
		t.Fatal(err)
	}
	if want := p.WriteToReadGap(); lBank != want {
		t.Errorf("DDR4 bank-partitioned l = %d, want the Wr2Rd turnaround %d", lBank, want)
	}
	lNone, err := MinL(FixedRAS, addr.PartitionNone, p)
	if err != nil {
		t.Fatal(err)
	}
	if want := p.TRCD + p.TCWD + p.TBURST + p.TWR + p.TRP; lNone != want {
		t.Errorf("DDR4 no-partitioning l = %d, want full recovery %d", lNone, want)
	}
	t.Logf("DDR4-2400 minimal l: rank=%d bank=%d none=%d", lRank, lBank, lNone)
}

// TestRotationRecoversTripleAlternation: on DDR3 (no bank groups), a 3-way
// rotation solves to the bank-partitioned l=15 — the paper's triple
// alternation.
func TestRotationRecoversTripleAlternation(t *testing.T) {
	p := dram.DDR3_1600()
	l, err := MinLRotation(3, FixedRAS, p)
	if err != nil {
		t.Fatal(err)
	}
	if l != 15 {
		t.Fatalf("DDR3 3-way rotation l = %d, want 15 (triple alternation)", l)
	}
	// 2-way rotation cannot satisfy the same-bank recovery at d=2 any
	// better; it must be at least ceil(43/2)=22.
	l2, err := MinLRotation(2, FixedRAS, p)
	if err != nil {
		t.Fatal(err)
	}
	if l2 < 22 {
		t.Errorf("2-way rotation l = %d, want >= 22", l2)
	}
}

// TestDDR4RotationBeatsWorstCase: rotating across DDR4's native bank groups
// exploits the short cross-group timings, beating the same-group worst-case
// bank-partitioned pipeline — a new design point the framework admits.
func TestDDR4RotationBeatsWorstCase(t *testing.T) {
	p := dram.DDR4_2400()
	worst, err := MinL(FixedRAS, addr.PartitionBank, p)
	if err != nil {
		t.Fatal(err)
	}
	rot, err := MinLRotation(p.BankGroups, FixedRAS, p)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("DDR4 bank-partitioned worst-case l=%d, %d-way group rotation l=%d", worst, p.BankGroups, rot)
	if rot >= worst {
		t.Errorf("group rotation (l=%d) should beat the same-group worst case (l=%d)", rot, worst)
	}
}

// TestFSVariantsConflictFreeOnDDR4: the engine, solved conservatively with
// the long timings, must drive a DDR4 channel without violations.
func TestFSVariantsConflictFreeOnDDR4(t *testing.T) {
	p := dram.DDR4_2400()
	writes := []bool{false, true, false, false, true, false, true, true}
	for _, v := range []Variant{FSRankPart, FSBankPart, FSReorderedBank, FSNoPart, FSNoPartTriple} {
		cmds, fs, err := RecordPipeline(p, Config{Variant: v, Domains: 8, Seed: 21}, writes, 8)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if errs := VerifyPipeline(p, cmds); len(errs) != 0 {
			t.Fatalf("%v (l=%d, Q=%d): %v", v, fs.L(), fs.Q(), errs[0])
		}
	}
}
