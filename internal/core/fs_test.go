package core

import (
	"testing"

	"fsmem/internal/dram"
	"fsmem/internal/mem"
)

func paperParams() dram.Params { return dram.DDR3_1600() }

// figure1Pattern is the Figure 1 example: reads and writes from eight
// threads (ranks R0-R7): RD, WR, RD, RD, RD, RD, WR, WR.
func figure1Pattern() []bool {
	return []bool{false, true, false, false, false, false, true, true}
}

func recordOrFatal(t *testing.T, cfg Config, writes []bool, intervals int) ([]TimedCommand, *FS) {
	t.Helper()
	cmds, fs, err := RecordPipeline(paperParams(), cfg, writes, intervals)
	if err != nil {
		t.Fatalf("RecordPipeline(%v): %v", cfg.Variant, err)
	}
	return cmds, fs
}

// TestFigure1PipelineConflictFree proves the rank-partitioned pipeline of
// Figure 1: eight mixed reads/writes to eight ranks complete every 56
// cycles with no command-bus, data-bus, or timing conflict.
func TestFigure1PipelineConflictFree(t *testing.T) {
	cfg := Config{Variant: FSRankPart, Domains: 8, Seed: 1}
	cmds, fs := recordOrFatal(t, cfg, figure1Pattern(), 20)

	if fs.L() != 7 {
		t.Fatalf("FS_RP slot spacing = %d, want 7", fs.L())
	}
	if fs.Q() != 56 {
		t.Fatalf("FS_RP Q = %d, want 56 (8 threads x 7)", fs.Q())
	}
	if errs := VerifyPipeline(paperParams(), cmds); len(errs) != 0 {
		t.Fatalf("pipeline violations: %v", errs[:min(3, len(errs))])
	}
	if n := CommandBusConflicts(cmds); n != 0 {
		t.Fatalf("command bus conflicts: %d", n)
	}
	// Steady state: exactly 8 transactions (16 commands) per 56-cycle
	// interval. Count commands in a mid-run window spanning two intervals.
	from, to := fs.Q()*5, fs.Q()*7
	n := 0
	for _, tc := range cmds {
		if tc.Cycle >= from && tc.Cycle < to {
			n++
		}
	}
	if n != 2*8*2 {
		t.Errorf("commands in a 2-interval window = %d, want %d", n, 2*8*2)
	}
}

// TestAllVariantsConflictFree drives every FS variant, fully backlogged,
// under several read/write mixes and requires zero violations from the
// independent checker — the executable form of the paper's security proof
// obligation that the pipelines never contend.
func TestAllVariantsConflictFree(t *testing.T) {
	patterns := map[string][]bool{
		"allreads":  {false, false, false, false, false, false, false, false},
		"allwrites": {true, true, true, true, true, true, true, true},
		"figure1":   figure1Pattern(),
		"alternate": {false, true, false, true, false, true, false, true},
	}
	for _, v := range []Variant{FSRankPart, FSBankPart, FSReorderedBank, FSNoPart, FSNoPartTriple} {
		for name, pat := range patterns {
			t.Run(v.String()+"/"+name, func(t *testing.T) {
				cfg := Config{Variant: v, Domains: 8, Seed: 7}
				cmds, _ := recordOrFatal(t, cfg, pat, 12)
				if len(cmds) == 0 {
					t.Fatal("no commands issued")
				}
				if errs := VerifyPipeline(paperParams(), cmds); len(errs) != 0 {
					t.Fatalf("%d violations, first: %v", len(errs), errs[0])
				}
				if n := CommandBusConflicts(cmds); n != 0 {
					t.Fatalf("command bus conflicts: %d", n)
				}
			})
		}
	}
}

// TestVariantIntervalLengths pins Q for the paper's 8-thread design points.
func TestVariantIntervalLengths(t *testing.T) {
	want := map[Variant]int64{
		FSRankPart:      56,  // §3.1
		FSBankPart:      120, // §4.2: "Q is 120 memory cycles"
		FSReorderedBank: 63,  // §4.2: "The value of Q is therefore 63 cycles"
		FSNoPart:        344, // §4.3: "an interval length of 344 memory cycles"
		FSNoPartTriple:  360, // §4.3: "in 360 memory cycles, every thread is guaranteed service"
	}
	for v, q := range want {
		fs, err := NewFS(paperParams(), Config{Variant: v, Domains: 8, Seed: 1})
		if err != nil {
			t.Fatalf("NewFS(%v): %v", v, err)
		}
		if fs.Q() != q {
			t.Errorf("%v: Q = %d, want %d", v, fs.Q(), q)
		}
	}
}

// TestPeakBandwidth checks the theoretical peak data-bus utilizations the
// paper quotes: 57% (FS_RP), 51% (reordered BP), 27% (BP and triple
// alternation), 9% (basic NP).
func TestPeakBandwidth(t *testing.T) {
	p := paperParams()
	cases := []struct {
		v        Variant
		transfer int64 // data cycles per interval
		lo, hi   float64
	}{
		{FSRankPart, 8 * 4, 0.56, 0.58},
		{FSReorderedBank, 8 * 4, 0.50, 0.52},
		{FSBankPart, 8 * 4, 0.26, 0.28},
		{FSNoPartTriple, 3 * 8 * 4, 0.26, 0.28},
		{FSNoPart, 8 * 4, 0.09, 0.10},
	}
	for _, c := range cases {
		fs, err := NewFS(p, Config{Variant: c.v, Domains: 8, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		util := float64(c.transfer) / float64(fs.Q())
		if util < c.lo || util > c.hi {
			t.Errorf("%v: peak utilization %.3f outside [%.2f, %.2f]", c.v, util, c.lo, c.hi)
		}
	}
}

// TestTripleAlternationGroups verifies the bank-group rotation: consecutive
// slots never share a group, and a domain's group rotates across the three
// subintervals.
func TestTripleAlternationGroups(t *testing.T) {
	fs, err := NewFS(paperParams(), Config{Variant: FSNoPartTriple, Domains: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for s := int64(0); s < 3*8*4; s++ {
		g1 := fs.slotBankGroup(s)
		g2 := fs.slotBankGroup(s + 1)
		if g1 < 0 || g1 > 2 {
			t.Fatalf("slot %d: group %d out of range", s, g1)
		}
		if g1 == g2 {
			t.Fatalf("slots %d and %d share bank group %d", s, s+1, g1)
		}
	}
	// A domain must see all three groups across the three subintervals.
	seen := map[int]bool{}
	for sub := int64(0); sub < 3; sub++ {
		seen[fs.slotBankGroup(sub*8+3)] = true // domain 3
	}
	if len(seen) != 3 {
		t.Errorf("domain 3 saw groups %v, want all three", seen)
	}
}

// TestTripleAlternationGroupSpacing pins the non-interference premise of
// triple alternation for EVERY legal slot count: two slots sharing a bank
// group are at least 3 apart (3l covers the same-bank write-recovery
// turnaround), and every domain still reaches all three groups. The
// previous (position - subinterval) keying collided at distance 2 across
// subinterval boundaries when slots % 3 == 1 — e.g. 4 domains — letting
// one domain's write delay another domain's transaction: a timing channel.
func TestTripleAlternationGroupSpacing(t *testing.T) {
	for _, domains := range []int{2, 4, 5, 7, 8} {
		fs, err := NewFS(paperParams(), Config{Variant: FSNoPartTriple, Domains: domains, Seed: 1})
		if err != nil {
			t.Fatalf("domains=%d: %v", domains, err)
		}
		horizon := int64(3 * domains * 6)
		last := map[int]int64{0: -3, 1: -3, 2: -3}
		for s := int64(0); s < horizon; s++ {
			g := fs.slotBankGroup(s)
			if g < 0 || g > 2 {
				t.Fatalf("domains=%d slot %d: group %d out of range", domains, s, g)
			}
			if d := s - last[g]; d < 3 {
				t.Fatalf("domains=%d: slots %d and %d share group %d at distance %d", domains, last[g], s, g, d)
			}
			last[g] = s
		}
		for d := 0; d < domains; d++ {
			seen := map[int]bool{}
			for turn := int64(0); turn < 3; turn++ {
				seen[fs.slotBankGroup(turn*int64(domains)+int64(d))] = true
			}
			if len(seen) != 3 {
				t.Errorf("domains=%d: domain %d saw groups %v, want all three", domains, d, seen)
			}
		}
	}
}

// TestTripleAlternationCommandsRespectGroups re-runs the engine and checks
// every issued transaction lands in its slot's bank group.
func TestTripleAlternationCommandsRespectGroups(t *testing.T) {
	cfg := Config{Variant: FSNoPartTriple, Domains: 8, Seed: 3}
	cmds, fs := recordOrFatal(t, cfg, figure1Pattern(), 6)
	l := int64(fs.L())
	for _, tc := range cmds {
		if tc.Cmd.Kind != dram.KindActivate {
			continue
		}
		slot := (tc.Cycle - fs.anchor0) / l
		if (tc.Cycle-fs.anchor0)%l != 0 {
			t.Fatalf("ACT at %d is off the slot grid (l=%d)", tc.Cycle, l)
		}
		want := fs.slotBankGroup(slot)
		if tc.Cmd.Bank%3 != want {
			t.Fatalf("slot %d: bank %d not in group %d", slot, tc.Cmd.Bank, want)
		}
	}
}

// TestDummiesFillIdleSlots: with empty queues, the engine still issues one
// transaction per slot (dummies), keeping the advertised pattern constant.
func TestDummiesFillIdleSlots(t *testing.T) {
	p := paperParams()
	fs, err := NewFS(p, Config{Variant: FSRankPart, Domains: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ctl := mem.NewController(p, mem.DefaultConfig(8), fs)
	var n int
	from, to := fs.Q()*2, fs.Q()*8
	ctl.Chan.OnIssue = func(_ dram.Command, cyc int64, _ bool) {
		if cyc >= from && cyc < to {
			n++
		}
	}
	for ctl.Cycle < fs.Q()*10 {
		ctl.Tick()
	}
	if want := int(6 * 8 * 2); n != want {
		t.Errorf("idle engine issued %d commands in a 6-interval window, want %d", n, want)
	}
	var dummies int64
	for d := range ctl.Dom {
		dummies += ctl.Dom[d].Dummies
	}
	if dummies < 8*8 {
		t.Errorf("dummies = %d, want at least %d", dummies, 8*8)
	}
}

// TestSuppressedDummiesKeepGrid: energy optimization 1 must not change the
// command grid, only the suppressed flags.
func TestSuppressedDummiesKeepGrid(t *testing.T) {
	p := paperParams()
	run := func(suppress bool) []TimedCommand {
		fs, err := NewFS(p, Config{Variant: FSRankPart, Domains: 8, Seed: 11,
			Energy: EnergyOpts{SuppressDummies: suppress}})
		if err != nil {
			t.Fatal(err)
		}
		ctl := mem.NewController(p, mem.DefaultConfig(8), fs)
		var cmds []TimedCommand
		ctl.Chan.OnIssue = func(cmd dram.Command, cyc int64, sup bool) {
			cmds = append(cmds, TimedCommand{Cycle: cyc, Cmd: cmd, Suppressed: sup})
		}
		for ctl.Cycle < fs.Q()*6 {
			ctl.Tick()
		}
		return cmds
	}
	plain := run(false)
	supp := run(true)
	if len(plain) != len(supp) {
		t.Fatalf("command counts differ: %d vs %d", len(plain), len(supp))
	}
	for i := range plain {
		if plain[i].Cycle != supp[i].Cycle || plain[i].Cmd != supp[i].Cmd {
			t.Fatalf("grid differs at %d: %v vs %v", i, plain[i], supp[i])
		}
		if !supp[i].Suppressed {
			t.Errorf("command %d not suppressed on an idle engine", i)
		}
	}
}

// TestSmallRankCountHazard: with 4 domains/ranks under FS_RP, Q = 28 < 43,
// so back-to-back same-bank transactions are a real hazard; the engine must
// still produce a conflict-free schedule (by steering to other banks or
// inserting dummies).
func TestSmallRankCountHazard(t *testing.T) {
	p := paperParams()
	for _, domains := range []int{2, 4, 6} {
		writes := make([]bool, domains)
		for i := range writes {
			writes[i] = i%2 == 1
		}
		cfg := Config{Variant: FSRankPart, Domains: domains, Seed: 5}
		cmds, fs, err := RecordPipeline(p, cfg, writes, 16)
		if err != nil {
			t.Fatalf("domains=%d: %v", domains, err)
		}
		if errs := VerifyPipeline(p, cmds); len(errs) != 0 {
			t.Fatalf("domains=%d (Q=%d): violations: %v", domains, fs.Q(), errs[0])
		}
	}
}

// TestReorderedReadsReleaseEnMasse: all reads of an interval complete at
// the same cycle, which is what prevents read/write-ratio leakage (§4.2).
func TestReorderedReadsReleaseEnMasse(t *testing.T) {
	p := paperParams()
	fs, err := NewFS(p, Config{Variant: FSReorderedBank, Domains: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ctl := mem.NewController(p, mem.DefaultConfig(8), fs)
	release := map[int]int64{}
	for d := 0; d < 8; d++ {
		d := d
		space := fs.spaces[d]
		ctl.EnqueueRead(d, dram.Address{Rank: 0, Bank: space.Banks[0], Row: d}, func() {
			release[d] = ctl.Cycle
		})
	}
	for ctl.Cycle < fs.Q()*3 {
		ctl.Tick()
	}
	if len(release) != 8 {
		t.Fatalf("only %d of 8 reads completed", len(release))
	}
	first := release[0]
	for d, c := range release {
		if c != first {
			t.Fatalf("read releases differ: domain 0 at %d, domain %d at %d", first, d, c)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
