package core

import (
	"testing"
	"testing/quick"

	"fsmem/internal/addr"
	"fsmem/internal/dram"
)

// TestSolverPaperValues pins the minimal slot spacings the paper derives in
// Sections 3 and 4 for the Table 1 timing parameters.
func TestSolverPaperValues(t *testing.T) {
	p := dram.DDR3_1600()
	cases := []struct {
		anchor Anchor
		mode   addr.PartitionKind
		want   int
	}{
		{FixedData, addr.PartitionRank, 7},  // §3.1: "the minimum feasible value of l is 7"
		{FixedRAS, addr.PartitionRank, 12},  // §3.1: "we would have arrived at an l = 12"
		{FixedCAS, addr.PartitionRank, 12},  // §3.1: same
		{FixedData, addr.PartitionBank, 21}, // §4.2 Eq. 4b: "l >= 21"
		{FixedRAS, addr.PartitionBank, 15},  // §4.2: "solving these equations gives an l >= 15"
		{FixedRAS, addr.PartitionNone, 43},  // §4.3: "the best l = 43 cycles"
		{FixedData, addr.PartitionNone, 49}, // §4.3: fixed data is worse without partitioning
	}
	for _, c := range cases {
		got, err := MinL(c.anchor, c.mode, p)
		if err != nil {
			t.Errorf("MinL(%v, %v): %v", c.anchor, c.mode, err)
			continue
		}
		if got != c.want {
			t.Errorf("MinL(%v, %v) = %d, want %d", c.anchor, c.mode, got, c.want)
		}
	}
}

// TestBestAnchor confirms the paper's observation: fixed periodic data wins
// under rank partitioning, fixed periodic RAS under bank and no
// partitioning.
func TestBestAnchor(t *testing.T) {
	p := dram.DDR3_1600()
	a, l, err := BestAnchor(addr.PartitionRank, p)
	if err != nil || a != FixedData || l != 7 {
		t.Errorf("BestAnchor(rank) = %v/%d, %v; want fixed-periodic-data/7", a, l, err)
	}
	a, l, err = BestAnchor(addr.PartitionBank, p)
	if err != nil || l != 15 {
		t.Errorf("BestAnchor(bank) = %v/%d, %v; want l=15", a, l, err)
	}
	a, l, err = BestAnchor(addr.PartitionNone, p)
	if err != nil || l != 43 {
		t.Errorf("BestAnchor(none) = %v/%d, %v; want l=43", a, l, err)
	}
}

// TestFeasibleMonotone: if l is feasible, every larger multiple-free l need
// not be, but the solver's minimum must itself be feasible and l-1 must not.
func TestMinLBoundary(t *testing.T) {
	p := dram.DDR3_1600()
	for _, mode := range []addr.PartitionKind{addr.PartitionRank, addr.PartitionBank, addr.PartitionNone} {
		for _, a := range []Anchor{FixedData, FixedRAS, FixedCAS} {
			l, err := MinL(a, mode, p)
			if err != nil {
				t.Fatalf("MinL(%v,%v): %v", a, mode, err)
			}
			if ok, why := Feasible(l, a, mode, p); !ok {
				t.Errorf("MinL(%v,%v)=%d reported feasible but Feasible says %s", a, mode, l, why)
			}
			if ok, _ := Feasible(l-1, a, mode, p); ok {
				t.Errorf("Feasible(%d) holds below MinL(%v,%v)=%d", l-1, a, mode, l)
			}
		}
	}
}

// TestEquation1Inequalities re-derives the paper's Equation 1 directly: for
// rank partitioning with fixed periodic data, l is infeasible exactly when
// some multiple of l equals one of the command-offset differences
// {5, 6, 11, 17} (or the data bus needs more room).
func TestEquation1Inequalities(t *testing.T) {
	p := dram.DDR3_1600()
	forbidden := map[int]bool{5: true, 6: true, 11: true, 17: true}
	for l := p.TBURST + p.TRTRS; l <= 30; l++ {
		bad := false
		for d := 1; d*l <= 17; d++ {
			if forbidden[d*l] {
				bad = true
			}
		}
		got, _ := Feasible(l, FixedData, addr.PartitionRank, p)
		if got == bad {
			t.Errorf("l=%d: Feasible=%v but Equation 1 forbids=%v", l, got, bad)
		}
	}
}

// TestSolverScalesWithTimings: slower parts must never shrink l.
func TestSolverScalesWithTimings(t *testing.T) {
	base := dram.DDR3_1600()
	slow := base
	slow.TWTR += 4
	slow.TCAS += 2
	slow.TCWD += 2
	for _, mode := range []addr.PartitionKind{addr.PartitionRank, addr.PartitionBank, addr.PartitionNone} {
		lb, err := MinL(FixedRAS, mode, base)
		if err != nil {
			t.Fatal(err)
		}
		ls, err := MinL(FixedRAS, mode, slow)
		if err != nil {
			t.Fatal(err)
		}
		if ls < lb {
			t.Errorf("%v: slower timings shrank l: %d -> %d", mode, lb, ls)
		}
	}
}

// TestFeasibleProperty uses randomized timing parameters to check a solver
// invariant: scheduling a concrete all-pairs window at the solver's l
// never violates the same constraints it claims to satisfy (internal
// consistency between MinL and Feasible).
func TestFeasibleProperty(t *testing.T) {
	check := func(dTWTR, dTCAS, dTRRD uint8) bool {
		p := dram.DDR3_1600()
		p.TWTR += int(dTWTR % 8)
		p.TCAS += int(dTCAS % 8)
		p.TRRD += int(dTRRD % 8)
		for _, mode := range []addr.PartitionKind{addr.PartitionRank, addr.PartitionBank, addr.PartitionNone} {
			l, err := MinL(FixedRAS, mode, p)
			if err != nil {
				return false
			}
			if ok, _ := Feasible(l, FixedRAS, mode, p); !ok {
				return false
			}
			if l > p.TBURST {
				if ok, _ := Feasible(l-1, FixedRAS, mode, p); ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestOffsetsPaperValues pins the command offsets of Section 3 (Figure 1).
func TestOffsetsPaperValues(t *testing.T) {
	p := dram.DDR3_1600()
	o := OffsetsFor(FixedData, p)
	if o.ReadACT != -22 || o.ReadCAS != -11 || o.WriteACT != -16 || o.WriteCAS != -5 {
		t.Errorf("fixed-data offsets = %+v, want ACT/CAS = -22/-11 (rd), -16/-5 (wr)", o)
	}
	if o.MinOffset() != -22 {
		t.Errorf("MinOffset = %d, want -22", o.MinOffset())
	}
	r := OffsetsFor(FixedRAS, p)
	if r.ReadACT != 0 || r.ReadCAS != 11 || r.ReadData != 22 || r.WriteData != 16 {
		t.Errorf("fixed-RAS offsets = %+v", r)
	}
	c := OffsetsFor(FixedCAS, p)
	if c.ReadCAS != 0 || c.ReadACT != -11 || c.ReadData != 11 || c.WriteData != 5 {
		t.Errorf("fixed-CAS offsets = %+v", c)
	}
}
