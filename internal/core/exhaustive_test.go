package core

import (
	"testing"

	"fsmem/internal/dram"
	"fsmem/internal/mem"
)

// TestExhaustivePatternVerification enumerates EVERY 8-thread read/write
// assignment (all 256 patterns) for every FS variant and replays each
// pipeline through the independent checker: the strongest executable form
// of the paper's "any combination of reads and writes can be accommodated"
// claim. Skipped under -short (it runs ~1280 pipelines).
func TestExhaustivePatternVerification(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration: run without -short")
	}
	p := paperParams()
	for _, v := range []Variant{FSRankPart, FSBankPart, FSReorderedBank, FSNoPart, FSNoPartTriple} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			t.Parallel()
			intervals := 4
			if v == FSNoPart || v == FSNoPartTriple {
				intervals = 2 // long intervals; keep runtime bounded
			}
			for pattern := 0; pattern < 256; pattern++ {
				writes := make([]bool, 8)
				for i := range writes {
					writes[i] = pattern&(1<<i) != 0
				}
				cmds, _, err := RecordPipeline(p, Config{Variant: v, Domains: 8, Seed: uint64(pattern) + 1}, writes, intervals)
				if err != nil {
					t.Fatalf("pattern %08b: %v", pattern, err)
				}
				if errs := VerifyPipeline(p, cmds); len(errs) != 0 {
					t.Fatalf("pattern %08b: %v", pattern, errs[0])
				}
				if n := CommandBusConflicts(cmds); n != 0 {
					t.Fatalf("pattern %08b: %d command bus conflicts", pattern, n)
				}
			}
		})
	}
}

// TestExhaustiveMixedPatternsPerInterval goes further than static per-domain
// kinds: each domain alternates read/write per interval on its own schedule,
// so consecutive intervals exercise different global mixes.
func TestExhaustiveMixedPatternsPerInterval(t *testing.T) {
	if testing.Short() {
		t.Skip("run without -short")
	}
	p := paperParams()
	// Drive via a controller where each domain's queue alternates R and W.
	for _, v := range []Variant{FSRankPart, FSBankPart, FSReorderedBank} {
		fs, err := NewFS(p, Config{Variant: v, Domains: 8, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		cmds, errs := driveAlternating(t, fs, p, 40)
		if len(errs) != 0 {
			t.Fatalf("%v: %v", v, errs[0])
		}
		if len(cmds) == 0 {
			t.Fatalf("%v: no commands", v)
		}
	}
}

func driveAlternating(t *testing.T, fs *FS, p dram.Params, intervals int64) ([]TimedCommand, []error) {
	t.Helper()
	ctl := mem.NewController(p, mem.DefaultConfig(8), fs)
	var cmds []TimedCommand
	ctl.Chan.OnIssue = func(cmd dram.Command, cyc int64, sup bool) {
		cmds = append(cmds, TimedCommand{Cycle: cyc, Cmd: cmd, Suppressed: sup})
	}
	seq := 0
	for ctl.Cycle < fs.Q()*intervals {
		for d := 0; d < 8; d++ {
			space := fs.spaces[d]
			for len(ctl.ReadQ[d])+len(ctl.WriteQ[d]) < 6 {
				a := dram.Address{
					Rank: space.Ranks[seq%len(space.Ranks)],
					Bank: space.Banks[seq%len(space.Banks)],
					Row:  seq % p.RowsPerBank,
				}
				if (seq/8+d)%2 == 0 {
					ctl.EnqueueRead(d, a, nil)
				} else {
					ctl.EnqueueWrite(d, a)
				}
				seq++
			}
		}
		ctl.Tick()
	}
	return cmds, VerifyPipeline(p, cmds)
}
