package fsmerr

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"fsmem/internal/dram"
)

func TestWrapPreservesInnerCodes(t *testing.T) {
	inner := New(CodeTiming, "dram.Issue", "tRCD violated")
	outer := Wrap(CodeExperiment, "experiments.run", fmt.Errorf("figure 6: %w", inner))
	if got := CodeOf(outer); got != CodeTiming {
		t.Errorf("outer wrap clobbered the inner code: got %q, want %q", got, CodeTiming)
	}

	plain := Wrap(CodeConfig, "sim.New", errors.New("bad params"))
	if got := CodeOf(plain); got != CodeConfig {
		t.Errorf("plain error not coded: got %q, want %q", got, CodeConfig)
	}
	if Wrap(CodeConfig, "sim.New", nil) != nil {
		t.Error("Wrap(nil) must stay nil")
	}
}

func TestCodeOfForeignError(t *testing.T) {
	if got := CodeOf(errors.New("foreign")); got != "" {
		t.Errorf("CodeOf(foreign) = %q, want empty", got)
	}
	if got := CodeOf(nil); got != "" {
		t.Errorf("CodeOf(nil) = %q, want empty", got)
	}
}

func TestAtPinsCycleAndCommand(t *testing.T) {
	cmd := dram.Command{Kind: dram.KindActivate, Rank: 1, Bank: 3, Row: 9}
	e := At(CodeSchedule, "fault.monitor", 1234, cmd, errors.New("off schedule"))
	if e.Cycle != 1234 || e.Cmd == nil || *e.Cmd != cmd {
		t.Fatalf("At did not pin cycle/command: %+v", e)
	}
	// At copies the command, so the caller's value cannot be aliased.
	cmd.Row = 0
	if e.Cmd.Row != 9 {
		t.Error("At aliased the caller's command value")
	}
	msg := e.Error()
	for _, want := range []string{"fault.monitor", "schedule", "cycle 1234", "off schedule"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
}

func TestErrorsJoinSurvivesCodeExtraction(t *testing.T) {
	// RunFigures aggregates with errors.Join; errors.As must still find the
	// first structured error inside the joined tree.
	joined := errors.Join(New(CodeExperiment, "experiments.Figure6", "boom"), errors.New("other"))
	if got := CodeOf(joined); got != CodeExperiment {
		t.Errorf("CodeOf(joined) = %q, want %q", got, CodeExperiment)
	}
}
