// Package fsmerr defines the structured error type shared across the
// simulator's library paths. Every error that can escape the public fsmem
// API carries a Code classifying the failure and, where meaningful, the
// offending bus cycle and DRAM command — so a caller sweeping thousands of
// design points can aggregate failures mechanically instead of parsing
// message strings, and the fault-injection harness can distinguish "the
// schedule broke" from "the configuration was malformed".
package fsmerr

import (
	"errors"
	"fmt"

	"fsmem/internal/dram"
)

// Code classifies an error for programmatic handling.
type Code string

// The error-code taxonomy (see DESIGN.md §7).
const (
	// CodeConfig: a Config, Params, or engine parameter set is malformed.
	CodeConfig Code = "config"
	// CodeWorkload: a workload profile or mix is invalid or unknown.
	CodeWorkload Code = "workload"
	// CodeTiming: a command violated a DRAM timing constraint at issue.
	CodeTiming Code = "timing"
	// CodeSchedule: the observed command stream diverged from the static
	// Fixed Service schedule (the non-interference monitor's verdict).
	CodeSchedule Code = "schedule"
	// CodeQueue: controller queue bookkeeping failed (e.g. removing a
	// request that is not queued).
	CodeQueue Code = "queue"
	// CodeDrain: a controller drain (SLA reconfiguration) did not complete.
	CodeDrain Code = "drain"
	// CodeTruncated: a run stopped on a watchdog (cycle or wall-clock
	// budget) before reaching its target.
	CodeTruncated Code = "truncated"
	// CodeExperiment: a figure or ablation could not be regenerated.
	CodeExperiment Code = "experiment"
	// CodeFault: an injected fault could not be applied as planned.
	CodeFault Code = "fault"
	// CodeCanceled: the caller's context was canceled before the run (or
	// sweep cell) completed; partial state was discarded, not cached.
	CodeCanceled Code = "canceled"
	// CodePanic: a worker-pool cell panicked; the pool isolated it and
	// converted the panic into this error instead of crashing the sweep.
	CodePanic Code = "panic"
	// CodeStorage: the daemon's durability layer (job journal or disk
	// result store) could not persist or recover state.
	CodeStorage Code = "storage"
)

// NoCycle marks an error that is not tied to a specific bus cycle.
const NoCycle = int64(-1)

// Error is the structured error type of the fsmem library.
type Error struct {
	Code  Code
	Op    string // the operation that failed, e.g. "sim.New" or "fs.issue"
	Cycle int64  // offending bus cycle, or NoCycle
	Cmd   *dram.Command
	Err   error  // wrapped cause, may be nil
	Msg   string // human-readable detail
}

// Error implements the error interface.
func (e *Error) Error() string {
	s := fmt.Sprintf("%s [%s]", e.Op, e.Code)
	if e.Msg != "" {
		s += ": " + e.Msg
	}
	if e.Cmd != nil {
		s += fmt.Sprintf(" (cmd %v)", *e.Cmd)
	}
	if e.Cycle != NoCycle {
		s += fmt.Sprintf(" (cycle %d)", e.Cycle)
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap returns the wrapped cause.
func (e *Error) Unwrap() error { return e.Err }

// New builds an Error with a formatted message and no cycle/command.
func New(code Code, op, format string, args ...interface{}) *Error {
	return &Error{Code: code, Op: op, Cycle: NoCycle, Msg: fmt.Sprintf(format, args...)}
}

// Wrap attaches a code and operation to an existing error. A nil err
// returns nil; an err that already is an *Error is returned unchanged so
// codes assigned close to the failure survive outer wrapping.
func Wrap(code Code, op string, err error) error {
	if err == nil {
		return nil
	}
	var fe *Error
	if errors.As(err, &fe) {
		return err
	}
	return &Error{Code: code, Op: op, Cycle: NoCycle, Err: err}
}

// At builds a timing-class error pinned to a cycle and command.
func At(code Code, op string, cycle int64, cmd dram.Command, err error) *Error {
	c := cmd
	return &Error{Code: code, Op: op, Cycle: cycle, Cmd: &c, Err: err}
}

// CodeOf extracts the Code of an error, or "" when it is not an *Error.
func CodeOf(err error) Code {
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Code
	}
	return ""
}
