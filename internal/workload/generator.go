package workload

import (
	"fsmem/internal/addr"
	"fsmem/internal/dram"
	"fsmem/internal/trace"
)

// Generator turns a Profile into an unbounded post-LLC reference stream
// confined to a domain's partition space. It implements trace.Stream.
type Generator struct {
	Profile Profile

	rng     *trace.RNG
	geom    dram.Params
	space   addr.Space
	slots   []streamSlot
	meanGap float64
	rows    int // usable rows per bank
}

// streamSlot is one independent access stream (one "walker"): tiled and
// streaming codes keep several banks in flight, pointer chasers few.
type streamSlot struct {
	rank, bank, row, col int
}

const burstGapMax = 8 // instructions inside an MLP cluster

// NewGenerator builds a deterministic stream for the profile within the
// given partition space.
func NewGenerator(p Profile, space addr.Space, geom dram.Params, seed uint64) *Generator {
	g := &Generator{
		Profile: p,
		rng:     trace.NewRNG(seed),
		geom:    geom,
		space:   space,
	}
	g.rows = p.FootprintRows
	if g.rows > geom.RowsPerBank {
		g.rows = geom.RowsPerBank
	}
	// Mean instruction gap so that the overall rate matches MPKI:
	// mean = burstiness*burstMean + (1-burstiness)*slackMean.
	target := 1000.0 / p.MPKI()
	burstMean := float64(burstGapMax) / 2
	slack := (target - p.Burstiness*burstMean) / (1 - p.Burstiness + 1e-12)
	if slack < 0 {
		slack = 0
	}
	g.meanGap = slack

	g.slots = make([]streamSlot, p.BankSpread)
	for i := range g.slots {
		g.slots[i] = streamSlot{
			rank: g.space.Ranks[(i*7+g.rng.Intn(len(space.Ranks)))%len(space.Ranks)],
			bank: g.space.Banks[(i*3+g.rng.Intn(len(space.Banks)))%len(space.Banks)],
			row:  g.rng.Intn(g.rows),
			col:  g.rng.Intn(geom.ColsPerRow),
		}
	}
	return g
}

// Next produces the next memory reference.
func (g *Generator) Next() trace.Ref {
	p := g.Profile
	var gap int
	if g.rng.Bool(p.Burstiness) {
		gap = g.rng.Intn(burstGapMax)
	} else {
		gap = g.rng.Geometric(g.meanGap)
	}

	s := &g.slots[g.rng.Intn(len(g.slots))]
	if g.rng.Bool(p.RowLocality) {
		s.col++
		if s.col >= g.geom.ColsPerRow {
			s.col = 0
			s.row = g.rng.Intn(g.rows)
		}
	} else {
		s.row = g.rng.Intn(g.rows)
		s.col = g.rng.Intn(g.geom.ColsPerRow)
		// Occasionally migrate the stream to another (rank, bank) in the
		// partition to spread bank-level pressure.
		if g.rng.Bool(0.3) {
			s.rank = g.space.Ranks[g.rng.Intn(len(g.space.Ranks))]
			s.bank = g.space.Banks[g.rng.Intn(len(g.space.Banks))]
		}
	}

	return trace.Ref{
		Gap:   gap,
		Write: g.rng.Bool(p.WriteFraction()),
		Addr: dram.Address{
			Rank: s.rank,
			Bank: s.bank,
			Row:  s.row,
			Col:  s.col,
		},
	}
}
