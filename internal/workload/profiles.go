// Package workload defines the synthetic SPEC CPU2006 / NAS workload models
// the evaluation runs, and the generator that turns a profile into a
// post-LLC memory-reference stream.
//
// The paper runs SPEC binaries under Simics; the figures depend only on
// each workload's memory-stream statistics. Profiles therefore capture, per
// benchmark: memory intensity (read/write misses per kilo-instruction),
// row-buffer locality, bank-level spread, burstiness (memory-level
// parallelism), and footprint. Values are calibrated to published SPEC2006
// memory characterizations; see DESIGN.md for the substitution rationale.
package workload

import (
	"fmt"

	"fsmem/internal/fsmerr"
)

// Profile is the statistical model of one benchmark's post-LLC memory
// behavior.
type Profile struct {
	Name string

	ReadMPKI  float64 // demand read misses per 1000 instructions
	WriteMPKI float64 // dirty write-backs per 1000 instructions

	// RowLocality is the probability that a stream's next access falls in
	// its current DRAM row (the open-page hit opportunity a baseline
	// scheduler exploits and FS deliberately forgoes).
	RowLocality float64

	// BankSpread is the number of independent access streams (≈ concurrent
	// banks touched); pointer-chasing codes have low spread, tiled/streaming
	// codes have high spread.
	BankSpread int

	// Burstiness is the probability that a miss is followed almost
	// immediately by another miss (memory-level parallelism clusters).
	Burstiness float64

	// FootprintRows bounds the number of distinct rows per bank the
	// workload touches.
	FootprintRows int
}

// MPKI returns total misses per kilo-instruction.
func (p Profile) MPKI() float64 { return p.ReadMPKI + p.WriteMPKI }

// WriteFraction returns the fraction of memory traffic that is writes.
func (p Profile) WriteFraction() float64 {
	t := p.MPKI()
	if t == 0 {
		return 0
	}
	return p.WriteMPKI / t
}

// Validate reports whether the profile is self-consistent.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile has no name")
	case p.ReadMPKI < 0 || p.WriteMPKI < 0:
		return fmt.Errorf("workload %s: negative MPKI", p.Name)
	case p.RowLocality < 0 || p.RowLocality > 1:
		return fmt.Errorf("workload %s: RowLocality %v outside [0,1]", p.Name, p.RowLocality)
	case p.Burstiness < 0 || p.Burstiness > 1:
		return fmt.Errorf("workload %s: Burstiness %v outside [0,1]", p.Name, p.Burstiness)
	case p.BankSpread < 1:
		return fmt.Errorf("workload %s: BankSpread must be >= 1", p.Name)
	case p.FootprintRows < 1:
		return fmt.Errorf("workload %s: FootprintRows must be >= 1", p.Name)
	}
	return nil
}

// The benchmark profiles used throughout the evaluation. Intensities and
// localities follow the well-known SPEC2006 memory characterization
// ordering: libquantum/mcf/milc/lbm are memory bound, xalancbmk/astar are
// comparatively light; libquantum and lbm stream with high row locality,
// mcf pointer-chases with poor locality.
var profiles = []Profile{
	{Name: "mcf", ReadMPKI: 32, WriteMPKI: 9, RowLocality: 0.18, BankSpread: 6, Burstiness: 0.55, FootprintRows: 4096},
	{Name: "libquantum", ReadMPKI: 26, WriteMPKI: 8, RowLocality: 0.93, BankSpread: 2, Burstiness: 0.70, FootprintRows: 2048},
	{Name: "milc", ReadMPKI: 18, WriteMPKI: 8, RowLocality: 0.50, BankSpread: 4, Burstiness: 0.45, FootprintRows: 2048},
	{Name: "lbm", ReadMPKI: 20, WriteMPKI: 12, RowLocality: 0.85, BankSpread: 4, Burstiness: 0.60, FootprintRows: 2048},
	{Name: "GemsFDTD", ReadMPKI: 15, WriteMPKI: 6, RowLocality: 0.60, BankSpread: 4, Burstiness: 0.40, FootprintRows: 2048},
	{Name: "astar", ReadMPKI: 4, WriteMPKI: 1.2, RowLocality: 0.30, BankSpread: 3, Burstiness: 0.25, FootprintRows: 1024},
	{Name: "zeusmp", ReadMPKI: 6, WriteMPKI: 2.5, RowLocality: 0.55, BankSpread: 4, Burstiness: 0.35, FootprintRows: 1024},
	{Name: "xalancbmk", ReadMPKI: 0.3, WriteMPKI: 0.1, RowLocality: 0.45, BankSpread: 3, Burstiness: 0.20, FootprintRows: 512},
	{Name: "omnetpp", ReadMPKI: 9, WriteMPKI: 3, RowLocality: 0.30, BankSpread: 4, Burstiness: 0.35, FootprintRows: 1024},
	{Name: "soplex", ReadMPKI: 16, WriteMPKI: 6, RowLocality: 0.50, BankSpread: 4, Burstiness: 0.45, FootprintRows: 2048},
	{Name: "CG", ReadMPKI: 14, WriteMPKI: 4, RowLocality: 0.35, BankSpread: 5, Burstiness: 0.50, FootprintRows: 2048},
	{Name: "SP", ReadMPKI: 11, WriteMPKI: 5, RowLocality: 0.70, BankSpread: 4, Burstiness: 0.45, FootprintRows: 2048},

	// Additional SPEC CPU2006 profiles beyond the paper's evaluation list,
	// for broader studies (not part of EvaluationSuite).
	{Name: "bwaves", ReadMPKI: 18, WriteMPKI: 5, RowLocality: 0.80, BankSpread: 4, Burstiness: 0.55, FootprintRows: 4096},
	{Name: "leslie3d", ReadMPKI: 13, WriteMPKI: 6, RowLocality: 0.70, BankSpread: 4, Burstiness: 0.45, FootprintRows: 2048},
	{Name: "cactusADM", ReadMPKI: 7, WriteMPKI: 3, RowLocality: 0.55, BankSpread: 4, Burstiness: 0.35, FootprintRows: 2048},
	{Name: "sphinx3", ReadMPKI: 10, WriteMPKI: 1.5, RowLocality: 0.60, BankSpread: 3, Burstiness: 0.40, FootprintRows: 1024},
	{Name: "wrf", ReadMPKI: 6, WriteMPKI: 2.5, RowLocality: 0.65, BankSpread: 4, Burstiness: 0.35, FootprintRows: 1024},
	{Name: "bzip2", ReadMPKI: 3, WriteMPKI: 1.5, RowLocality: 0.40, BankSpread: 3, Burstiness: 0.30, FootprintRows: 512},
	{Name: "gcc", ReadMPKI: 2, WriteMPKI: 0.8, RowLocality: 0.35, BankSpread: 3, Burstiness: 0.25, FootprintRows: 512},
	{Name: "hmmer", ReadMPKI: 1, WriteMPKI: 0.3, RowLocality: 0.55, BankSpread: 2, Burstiness: 0.20, FootprintRows: 256},
	{Name: "sjeng", ReadMPKI: 0.8, WriteMPKI: 0.3, RowLocality: 0.25, BankSpread: 2, Burstiness: 0.20, FootprintRows: 512},
	{Name: "gobmk", ReadMPKI: 0.8, WriteMPKI: 0.35, RowLocality: 0.30, BankSpread: 2, Burstiness: 0.20, FootprintRows: 512},
	{Name: "h264ref", ReadMPKI: 1.2, WriteMPKI: 0.4, RowLocality: 0.55, BankSpread: 3, Burstiness: 0.30, FootprintRows: 512},
	{Name: "perlbench", ReadMPKI: 1, WriteMPKI: 0.5, RowLocality: 0.40, BankSpread: 3, Burstiness: 0.25, FootprintRows: 512},
}

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// All returns every defined profile.
func All() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// Mix is a named multiprogrammed workload: one profile per core.
type Mix struct {
	Name     string
	Profiles []Profile
}

// MaxCores bounds the number of domains a mix may describe. The paper's
// largest configuration is 16 cores; 512 leaves room for scaling studies
// while keeping untrusted configs from requesting absurd allocations.
const MaxCores = 512

// Rate builds the paper's rate-mode workload: n copies of one benchmark.
func Rate(name string, n int) (Mix, error) {
	if n < 1 || n > MaxCores {
		return Mix{}, fmt.Errorf("workload: core count %d out of range [1, %d]", n, MaxCores)
	}
	p, err := ByName(name)
	if err != nil {
		return Mix{}, err
	}
	m := Mix{Name: name, Profiles: make([]Profile, n)}
	for i := range m.Profiles {
		m.Profiles[i] = p
	}
	return m, nil
}

func pairedMix(name string, names []string) (Mix, error) {
	var ps []Profile
	for _, n := range names {
		p, err := ByName(n)
		if err != nil {
			return Mix{}, fsmerr.Wrap(fsmerr.CodeWorkload, "workload."+name, err)
		}
		ps = append(ps, p, p)
	}
	return Mix{Name: name, Profiles: ps}, nil
}

// Mix1 is the paper's mix1: two copies each of xalancbmk, soplex, mcf,
// omnetpp.
func Mix1() (Mix, error) {
	return pairedMix("mix1", []string{"xalancbmk", "soplex", "mcf", "omnetpp"})
}

// Mix2 is the paper's mix2: two copies each of milc, lbm, xalancbmk, zeusmp.
func Mix2() (Mix, error) {
	return pairedMix("mix2", []string{"milc", "lbm", "xalancbmk", "zeusmp"})
}

// EvaluationSuite returns the paper's Figure 5-9 workload list for a given
// core count: mix1, mix2, CG, SP, and the rate-mode SPEC benchmarks.
func EvaluationSuite(cores int) ([]Mix, error) {
	suite := []Mix{}
	if cores == 8 {
		m1, err := Mix1()
		if err != nil {
			return nil, err
		}
		m2, err := Mix2()
		if err != nil {
			return nil, err
		}
		suite = append(suite, m1, m2)
	}
	for _, n := range []string{"CG", "SP", "astar", "lbm", "libquantum", "mcf", "milc", "zeusmp", "GemsFDTD", "xalancbmk"} {
		m, err := Rate(n, cores)
		if err != nil {
			return nil, fsmerr.Wrap(fsmerr.CodeWorkload, "workload.EvaluationSuite", err)
		}
		suite = append(suite, m)
	}
	return suite, nil
}

// Synthetic builds an artificial profile, used by the leakage experiments:
// intensity in misses per kilo-instruction with streaming behavior.
func Synthetic(name string, mpki float64) Profile {
	return Profile{
		Name:          name,
		ReadMPKI:      mpki * 0.7,
		WriteMPKI:     mpki * 0.3,
		RowLocality:   0.5,
		BankSpread:    4,
		Burstiness:    0.5,
		FootprintRows: 1024,
	}
}
