package workload

import (
	"math"
	"testing"

	"fsmem/internal/addr"
	"fsmem/internal/dram"
)

func TestAllProfilesValidate(t *testing.T) {
	if len(All()) < 10 {
		t.Fatalf("only %d profiles defined", len(All()))
	}
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	bad := []Profile{
		{},
		{Name: "x", ReadMPKI: -1, BankSpread: 1, FootprintRows: 1},
		{Name: "x", RowLocality: 1.5, BankSpread: 1, FootprintRows: 1},
		{Name: "x", Burstiness: -0.1, BankSpread: 1, FootprintRows: 1},
		{Name: "x", BankSpread: 0, FootprintRows: 1},
		{Name: "x", BankSpread: 1, FootprintRows: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d validated", i)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("mcf")
	if err != nil || p.Name != "mcf" {
		t.Fatalf("ByName(mcf) = %v, %v", p, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}

func TestRateAndMixes(t *testing.T) {
	m, err := Rate("milc", 8)
	if err != nil || len(m.Profiles) != 8 {
		t.Fatalf("Rate: %v, %v", m, err)
	}
	for _, p := range m.Profiles {
		if p.Name != "milc" {
			t.Fatal("rate mode must replicate the same profile")
		}
	}
	if _, err := Rate("nope", 8); err == nil {
		t.Fatal("Rate with unknown benchmark should error")
	}
	m1, err1 := Mix1()
	m2, err2 := Mix2()
	if err1 != nil || err2 != nil {
		t.Fatalf("mixes: %v, %v", err1, err2)
	}
	for _, mix := range []Mix{m1, m2} {
		if len(mix.Profiles) != 8 {
			t.Errorf("%s has %d profiles, want 8", mix.Name, len(mix.Profiles))
		}
	}
	s8, err := EvaluationSuite(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(s8) < 10 {
		t.Error("8-core suite too small")
	}
	s4, err := EvaluationSuite(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s4) >= len(s8) {
		t.Error("4-core suite should omit the 8-thread mixes")
	}
}

func TestWriteFraction(t *testing.T) {
	p := Profile{Name: "x", ReadMPKI: 6, WriteMPKI: 2, BankSpread: 1, FootprintRows: 1}
	if got := p.WriteFraction(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("WriteFraction = %v, want 0.25", got)
	}
	if (Profile{}).WriteFraction() != 0 {
		t.Error("zero-MPKI write fraction should be 0")
	}
}

func genFor(t *testing.T, name string, seed uint64) *Generator {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	geom := dram.DDR3_1600()
	space, err := addr.SpaceFor(addr.PartitionRank, 0, 8, geom)
	if err != nil {
		t.Fatal(err)
	}
	return NewGenerator(p, space, geom, seed)
}

func TestGeneratorStaysInPartition(t *testing.T) {
	g := genFor(t, "mcf", 1)
	geom := dram.DDR3_1600()
	for i := 0; i < 20000; i++ {
		r := g.Next()
		if r.Addr.Rank != 0 {
			t.Fatalf("ref %d escaped its rank partition: %v", i, r.Addr)
		}
		if r.Addr.Bank < 0 || r.Addr.Bank >= geom.BanksPerRank ||
			r.Addr.Row < 0 || r.Addr.Row >= geom.RowsPerBank ||
			r.Addr.Col < 0 || r.Addr.Col >= geom.ColsPerRow {
			t.Fatalf("ref %d out of geometry: %v", i, r.Addr)
		}
	}
}

func TestGeneratorMatchesMPKI(t *testing.T) {
	for _, name := range []string{"mcf", "libquantum", "xalancbmk"} {
		g := genFor(t, name, 2)
		p := g.Profile
		var instr, refs int64
		for refs < 20000 {
			r := g.Next()
			instr += int64(r.Gap) + 1
			refs++
		}
		gotMPKI := float64(refs) / float64(instr) * 1000
		if math.Abs(gotMPKI-p.MPKI()) > p.MPKI()*0.15 {
			t.Errorf("%s: generated MPKI %.2f, profile %.2f", name, gotMPKI, p.MPKI())
		}
	}
}

func TestGeneratorWriteFraction(t *testing.T) {
	g := genFor(t, "lbm", 3)
	writes, n := 0, 30000
	for i := 0; i < n; i++ {
		if g.Next().Write {
			writes++
		}
	}
	got := float64(writes) / float64(n)
	want := g.Profile.WriteFraction()
	if math.Abs(got-want) > 0.03 {
		t.Errorf("write fraction %.3f, want %.3f", got, want)
	}
}

func TestGeneratorRowLocalityOrdering(t *testing.T) {
	// libquantum (0.93 locality) must produce far more same-row successive
	// accesses per bank than mcf (0.18).
	sameRowRate := func(name string) float64 {
		g := genFor(t, name, 4)
		last := map[[2]int]int{}
		same, total := 0, 0
		for i := 0; i < 30000; i++ {
			r := g.Next()
			key := [2]int{r.Addr.Rank, r.Addr.Bank}
			if prev, ok := last[key]; ok {
				total++
				if prev == r.Addr.Row {
					same++
				}
			}
			last[key] = r.Addr.Row
		}
		return float64(same) / float64(total)
	}
	lq, mcf := sameRowRate("libquantum"), sameRowRate("mcf")
	if lq < mcf+0.3 {
		t.Errorf("row locality not reflected: libquantum %.2f vs mcf %.2f", lq, mcf)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, b := genFor(t, "milc", 9), genFor(t, "milc", 9)
	for i := 0; i < 5000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestSynthetic(t *testing.T) {
	p := Synthetic("s", 20)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.MPKI()-20) > 1e-9 {
		t.Errorf("Synthetic MPKI = %v", p.MPKI())
	}
}
