// Package experiments regenerates every figure of the paper's evaluation
// (Section 7). Each FigureN function returns a Table whose rows mirror the
// figure's data series; cmd/sweep prints them, the benchmarks time them,
// and EXPERIMENTS.md records them against the paper's numbers.
//
// Execution model: every figure is a grid of independent simulations
// (workload mix x scheduler x configuration mutation). Each figure first
// shards its grid across the runner's worker pool (Runner.Prefetch, built
// on internal/parallel), which memoizes every cell, then assembles its
// table by replaying the original serial loops against the warm cache.
// Because assembly only reads memoized cells in figure order, the emitted
// tables — values, row order, and error text alike — are byte-identical
// for every worker count, including Workers=1 (the serial path is the same
// code with a one-wide pool).
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"fsmem/internal/addr"
	"fsmem/internal/core"
	"fsmem/internal/energy"
	"fsmem/internal/fsmerr"
	"fsmem/internal/leakage"
	"fsmem/internal/obs"
	"fsmem/internal/parallel"
	"fsmem/internal/sim"
	"fsmem/internal/stats"
	"fsmem/internal/workload"
)

// Table is one figure's regenerated data.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    []Row
	Notes   []string
}

// Row is one x-axis entry (usually a workload).
type Row struct {
	Label  string
	Values []float64
}

// CSV renders the table as comma-separated values for plotting.
func (t Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, ",%s", c)
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	width := 14
	for _, c := range t.Columns {
		if len(c)+2 > width {
			width = len(c) + 2
		}
	}
	fmt.Fprintf(&b, "%-14s", "workload")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", width+2, c)
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%*.3f", width+2, v)
		}
		b.WriteString("\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Settings scales the experiments: the paper runs 1M reads per workload;
// tests and benches run smaller budgets.
type Settings struct {
	Cores       int
	TargetReads int64
	Seed        uint64

	// Channels selects the memory-fabric width every cell simulates (0 or
	// 1 = the classic single-channel machine); Routing maps requests to
	// channels. Both are part of every memo key: a 4-channel cell must
	// never answer a single-channel request.
	Channels int
	Routing  addr.Routing

	// Workers bounds the worker pool the figure grids are sharded across
	// (0 = GOMAXPROCS). Every table is byte-identical for every value; 1
	// is the serial path.
	Workers int

	// Observe, when non-nil, attaches a per-run tracer and metrics snapshot
	// to every simulated cell (each run gets its own tracer, so parallel
	// cell fills never share observability state and worker count cannot
	// perturb what a cell records). Export with Runner.ExportTraces.
	Observe *obs.Options

	// DenseLoop runs every cell on the dense per-cycle loop instead of the
	// fast-forward kernel (sim.Config.DenseLoop). Like Observe it is
	// excluded from the memo key: the two loops produce byte-identical
	// results, so the flag must never decide which cell a cache hit serves.
	DenseLoop bool

	// OnCell, when non-nil, is invoked once per grid cell the runner
	// actually simulates (cache hits never fire it), with the cell's
	// canonical memo key. Calls come from whichever pool worker computed
	// the cell, so the callback must be safe for concurrent use. It is a
	// progress hook only: it must not mutate the runner, and it never
	// affects what any cell computes (the daemon's SSE job-progress
	// stream is fed from it).
	OnCell func(key string)
}

// DefaultSettings returns the 8-core evaluation configuration.
func DefaultSettings() Settings {
	return Settings{Cores: 8, TargetReads: 20_000, Seed: 42}
}

type runKey struct {
	workload string
	sched    sim.SchedulerKind
	prefetch bool
	energy   core.EnergyOpts
	turn     int64
	cores    int
	slotL    int
	refresh  bool
	weights  string
	dram     int // bank groups disambiguate DDR3 vs DDR4 runs
	channels int // effective fabric width (1 = single-channel)
	routing  addr.Routing
}

// cellValue is one memoized grid cell: the simulation result or the error
// it failed with (errors memoize too, so a failed cell reports the same
// failure whether it was computed by the pool or inline).
type cellValue struct {
	res sim.Result
	err error
}

// Runner executes and memoizes simulation runs (every figure normalizes
// against the same baseline runs). The memo cache is safe for the
// concurrent cell fills Prefetch performs.
type Runner struct {
	S Settings

	// Ctx, when non-nil, cancels in-flight sweeps: pool dispatch stops and
	// running simulations truncate at their next watchdog check. Canceled
	// cells are never memoized.
	Ctx context.Context

	mu    sync.Mutex
	cache map[runKey]cellValue
}

// NewRunner builds a runner.
func NewRunner(s Settings) *Runner {
	return &Runner{S: s, cache: map[runKey]cellValue{}}
}

func (r *Runner) ctx() context.Context {
	if r.Ctx != nil {
		return r.Ctx
	}
	return context.Background()
}

// Spec names one grid cell: a workload mix, a scheduler, and an optional
// configuration mutation (turn length, slot spacing, energy options, ...).
type Spec struct {
	Mix    workload.Mix
	Kind   sim.SchedulerKind
	Mutate func(*sim.Config)
}

// keyOf normalizes a fully-expanded simulation config into its memo key.
// Everything that can change a cell's output is in the key; observability
// (Settings.Observe) deliberately is not — observation must never decide
// which simulation a cell runs.
func keyOf(cfg sim.Config) runKey {
	// Normalize the fabric shape the way sim.New resolves it, so the
	// spellings "Channels: 2", "DRAM.Channels: 2", and "Channels: 0 with a
	// 1-channel DRAM" address the cells they actually run. Routing is
	// meaningless on one channel; pin it so it cannot fragment the cache.
	channels := cfg.Channels
	if channels == 0 {
		channels = cfg.DRAM.Channels
	}
	if channels <= 1 {
		channels = 1
	}
	routing := cfg.Routing
	if channels == 1 {
		routing = addr.RouteColored
	}
	return runKey{
		workload: cfg.Mix.Name, sched: cfg.Scheduler, prefetch: cfg.Prefetch, energy: cfg.Energy,
		turn: cfg.TPTurnLength, cores: len(cfg.Mix.Profiles),
		slotL: cfg.FSSlotSpacing, refresh: cfg.RefreshEnabled,
		weights:  fmt.Sprint(cfg.SLAWeights),
		dram:     cfg.DRAM.BankGroups,
		channels: channels,
		routing:  routing,
	}
}

// MemoKey returns the canonical memo-key string for a fully-expanded
// simulation config: the same normalization the runner's cell cache uses,
// extended with the per-runner fields (seed and run budget) a long-lived
// daemon must distinguish. Two configs with equal MemoKeys produce
// byte-identical results, so the string is safe to use as a
// content-addressed cache key and as the basis of deterministic job IDs.
func MemoKey(cfg sim.Config) string {
	return fmt.Sprintf("%+v|seed=%d|reads=%d|maxcycles=%d",
		keyOf(cfg), cfg.Seed, cfg.TargetReads, cfg.MaxBusCycles)
}

// configFor expands a spec into its full simulation config and memo key.
func (r *Runner) configFor(sp Spec) (sim.Config, runKey) {
	cfg := sim.DefaultConfig(sp.Mix, sp.Kind)
	cfg.Seed = r.S.Seed
	cfg.TargetReads = r.S.TargetReads
	cfg.Observe = r.S.Observe
	cfg.DenseLoop = r.S.DenseLoop
	cfg.Channels = r.S.Channels
	cfg.Routing = r.S.Routing
	if sp.Mutate != nil {
		sp.Mutate(&cfg)
	}
	return cfg, keyOf(cfg)
}

func (r *Runner) lookup(key runKey) (cellValue, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.cache[key]
	return v, ok
}

func (r *Runner) store(key runKey, v cellValue) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache[key] = v
}

// simulate runs one cell, wrapping failures the way every caller reports
// them. Shared by the pool fill and the inline (cache-miss) path so both
// produce identical errors.
func (r *Runner) simulate(ctx context.Context, sp Spec, cfg sim.Config) cellValue {
	res, err := sim.SimulateContext(ctx, cfg)
	if err != nil {
		err = fsmerr.Wrap(fsmerr.CodeExperiment,
			fmt.Sprintf("experiments.run(%s/%v)", sp.Mix.Name, sp.Kind), err)
	}
	if r.S.OnCell != nil && fsmerr.CodeOf(err) != fsmerr.CodeCanceled {
		r.S.OnCell(MemoKey(cfg))
	}
	return cellValue{res: res, err: err}
}

// Prefetch shards the given grid cells across the runner's worker pool and
// memoizes every cell's result or error. Cells already cached (or listed
// twice) are simulated once. The pool only warms the cache — tables are
// always assembled afterwards by the serial figure loops reading memoized
// cells in figure order — so output is independent of worker count and
// scheduling order by construction. The returned error is non-nil only
// for cancellation or a panicking cell; ordinary simulation failures are
// memoized and surface during assembly exactly where the serial path
// would have hit them.
func (r *Runner) Prefetch(specs []Spec) error {
	seen := map[runKey]bool{}
	var cells []parallel.Cell[struct{}]
	for _, sp := range specs {
		sp := sp
		cfg, key := r.configFor(sp)
		if seen[key] {
			continue
		}
		seen[key] = true
		if _, ok := r.lookup(key); ok {
			continue
		}
		cells = append(cells, parallel.Cell[struct{}]{
			Key: fmt.Sprintf("%s/%v", sp.Mix.Name, sp.Kind),
			Run: func(ctx context.Context) (struct{}, error) {
				v := r.simulate(ctx, sp, cfg)
				if fsmerr.CodeOf(v.err) == fsmerr.CodeCanceled {
					// A canceled cell's partial state must not poison the
					// cache: a later retry with a live context re-runs it.
					return struct{}{}, v.err
				}
				r.store(key, v)
				return struct{}{}, nil
			},
		})
	}
	_, err := parallel.Map(r.ctx(), r.S.Workers, cells)
	return err
}

func (r *Runner) run(mix workload.Mix, k sim.SchedulerKind, mutate func(*sim.Config)) (sim.Result, error) {
	sp := Spec{Mix: mix, Kind: k, Mutate: mutate}
	cfg, key := r.configFor(sp)
	if v, ok := r.lookup(key); ok {
		return v.res, v.err
	}
	v := r.simulate(r.ctx(), sp, cfg)
	if fsmerr.CodeOf(v.err) != fsmerr.CodeCanceled {
		r.store(key, v)
	}
	return v.res, v.err
}

// weighted returns the sum of weighted IPCs for the scheme, normalized
// against the non-secure baseline on the same mix (the paper's metric).
func (r *Runner) weighted(mix workload.Mix, k sim.SchedulerKind, mutate func(*sim.Config)) (float64, error) {
	base, err := r.run(mix, sim.Baseline, nil)
	if err != nil {
		return 0, err
	}
	res, err := r.run(mix, k, mutate)
	if err != nil {
		return 0, err
	}
	w, err := stats.WeightedIPC(res.Run, base.Run)
	if err != nil {
		return 0, fsmerr.Wrap(fsmerr.CodeExperiment,
			fmt.Sprintf("experiments.weighted(%s/%v)", mix.Name, k), err)
	}
	return w, nil
}

func (r *Runner) suite() ([]workload.Mix, error) { return workload.EvaluationSuite(r.S.Cores) }

// ExportTraces writes the command traces of every successfully memoized
// cell as concatenated JSONL documents, each preceded by a cell-label
// line. Cells are emitted in sorted key order, so the output bytes are
// independent of the worker count and fill order that populated the cache
// — the determinism CI job diffs this output across -j values.
func (r *Runner) ExportTraces(w io.Writer) error {
	r.mu.Lock()
	type cell struct {
		label string
		v     cellValue
	}
	cells := make([]cell, 0, len(r.cache))
	for k, v := range r.cache {
		cells = append(cells, cell{label: fmt.Sprintf("%+v", k), v: v})
	}
	r.mu.Unlock()
	sort.Slice(cells, func(i, j int) bool { return cells[i].label < cells[j].label })
	for _, c := range cells {
		if c.v.err != nil || c.v.res.Trace == nil {
			continue
		}
		if _, err := fmt.Fprintf(w, "{\"cell\":%q}\n", c.label); err != nil {
			return err
		}
		if err := obs.WriteJSONL(w, c.v.res.Trace); err != nil {
			return err
		}
	}
	return nil
}

// weightedSpecs builds the prefetch grid for figures that normalize each
// scheme against the non-secure baseline on the same mix.
func weightedSpecs(suite []workload.Mix, schemes []sim.SchedulerKind, mutate func(*sim.Config)) []Spec {
	var specs []Spec
	for _, mix := range suite {
		specs = append(specs, Spec{Mix: mix, Kind: sim.Baseline})
		for _, k := range schemes {
			specs = append(specs, Spec{Mix: mix, Kind: k, Mutate: mutate})
		}
	}
	return specs
}

// Figure3 regenerates the design-space summary: arithmetic-mean normalized
// throughput (baseline = 1.0) for the five secure design points.
func Figure3(r *Runner) (Table, error) {
	t := Table{
		ID:    "Figure 3",
		Title: "Design-space summary: normalized throughput (baseline = 1.0)",
		Columns: []string{
			"Baseline", "FS_RP", "FS_Reordered_BP", "TP_BP", "FS_NP_Optimized", "TP_NP",
		},
	}
	schemes := []sim.SchedulerKind{sim.FSRankPart, sim.FSReorderedBank, sim.TPBank, sim.FSNoPartTriple, sim.TPNone}
	sums := make([]float64, len(schemes))
	n := 0
	suite, err := r.suite()
	if err != nil {
		return Table{}, err
	}
	if err := r.Prefetch(weightedSpecs(suite, schemes, nil)); err != nil {
		return Table{}, err
	}
	for _, mix := range suite {
		for i, k := range schemes {
			w, err := r.weighted(mix, k, nil)
			if err != nil {
				return Table{}, err
			}
			sums[i] += w / float64(r.S.Cores)
		}
		n++
	}
	row := Row{Label: "AM", Values: []float64{1.0}}
	for i := range schemes {
		row.Values = append(row.Values, sums[i]/float64(n))
	}
	t.Rows = append(t.Rows, row)
	t.Notes = append(t.Notes, "paper: 1.0 / 0.74 / 0.48 / 0.43 / 0.40 / 0.20")
	return t, nil
}

// Figure4 regenerates the execution-profile experiment: mcf against idle
// and memory-intensive co-runners, under the baseline and FS_RP. It
// returns the four profiles and a divergence summary table. The four
// profile collections are independent and run on the worker pool; the
// table is assembled from the ordered results.
func Figure4(r *Runner) (Table, []leakage.Profile, error) {
	att, err := workload.ByName("mcf")
	if err != nil {
		return Table{}, nil, fsmerr.Wrap(fsmerr.CodeExperiment, "experiments.Figure4", err)
	}
	milestone := int64(10_000)
	total := int64(40) * milestone
	t := Table{
		ID:      "Figure 4",
		Title:   "mcf execution profiles: divergence vs co-runner intensity",
		Columns: []string{"max divergence", "identical"},
	}
	scheds := []sim.SchedulerKind{sim.Baseline, sim.FSRankPart}
	coRunners := []workload.Profile{workload.Synthetic("idle", 0.01), workload.Synthetic("streaming", 45)}
	var cells []parallel.Cell[leakage.Profile]
	for _, k := range scheds {
		for _, co := range coRunners {
			k, co := k, co
			cells = append(cells, parallel.Cell[leakage.Profile]{
				Key: fmt.Sprintf("Figure4/%v/%s", k, co.Name),
				Run: func(context.Context) (leakage.Profile, error) {
					return leakage.CollectProfile(k, att, co, r.S.Cores, milestone, total, r.S.Seed, r.S.Channels, r.S.Routing)
				},
			})
		}
	}
	profiles, err := parallel.Map(r.ctx(), r.S.Workers, cells)
	if err != nil {
		return Table{}, nil, fsmerr.Wrap(fsmerr.CodeExperiment, "experiments.Figure4", err)
	}
	for i, k := range scheds {
		quiet, loud := profiles[2*i], profiles[2*i+1]
		div, err := leakage.Divergence(quiet, loud)
		if err != nil {
			return Table{}, nil, fsmerr.Wrap(fsmerr.CodeExperiment, "experiments.Figure4", err)
		}
		ident := 0.0
		if leakage.Identical(quiet, loud) {
			ident = 1.0
		}
		t.Rows = append(t.Rows, Row{Label: k.String(), Values: []float64{div, ident}})
	}
	t.Notes = append(t.Notes, "paper: baseline curves diverge; FS curves overlap perfectly")
	return t, profiles, nil
}

// Figure5 regenerates the TP turn-length sweep: weighted IPC per workload
// for bank-partitioned and no-partitioned TP at three turn lengths each.
func Figure5(r *Runner) (Table, error) {
	bpTurns := []int64{15, 25, 39} // the paper's 60/100/156 CPU cycles
	npTurns := []int64{43, 53, 67} // the paper's 172/212/268 CPU cycles

	t := Table{
		ID:    "Figure 5",
		Title: "TP turn-length sweep: sum of weighted IPCs (8 threads)",
	}
	for _, turn := range bpTurns {
		t.Columns = append(t.Columns, fmt.Sprintf("T_TURN_BP_%d", turn*4))
	}
	for _, turn := range npTurns {
		t.Columns = append(t.Columns, fmt.Sprintf("T_TURN_NP_%d", turn*4))
	}
	sums := make([]float64, 6)
	suite, err := r.suite()
	if err != nil {
		return Table{}, err
	}
	var specs []Spec
	for _, mix := range suite {
		specs = append(specs, Spec{Mix: mix, Kind: sim.Baseline})
		for _, turn := range bpTurns {
			turn := turn
			specs = append(specs, Spec{Mix: mix, Kind: sim.TPBank,
				Mutate: func(c *sim.Config) { c.TPTurnLength = turn }})
		}
		for _, turn := range npTurns {
			turn := turn
			specs = append(specs, Spec{Mix: mix, Kind: sim.TPNone,
				Mutate: func(c *sim.Config) { c.TPTurnLength = turn }})
		}
	}
	if err := r.Prefetch(specs); err != nil {
		return Table{}, err
	}
	for _, mix := range suite {
		row := Row{Label: mix.Name}
		for _, turn := range bpTurns {
			turn := turn
			w, err := r.weighted(mix, sim.TPBank, func(c *sim.Config) { c.TPTurnLength = turn })
			if err != nil {
				return Table{}, err
			}
			row.Values = append(row.Values, w)
		}
		for _, turn := range npTurns {
			turn := turn
			w, err := r.weighted(mix, sim.TPNone, func(c *sim.Config) { c.TPTurnLength = turn })
			if err != nil {
				return Table{}, err
			}
			row.Values = append(row.Values, w)
		}
		for i, v := range row.Values {
			sums[i] += v
		}
		t.Rows = append(t.Rows, row)
	}
	am := Row{Label: "AM"}
	for _, s := range sums {
		am.Values = append(am.Values, s/float64(len(t.Rows)))
	}
	t.Rows = append(t.Rows, am)
	t.Notes = append(t.Notes, "paper: minimum turn lengths are best on average; non-secure baseline = 8.0")
	return t, nil
}

// Figure6 regenerates the headline comparison: weighted IPC per workload
// for FS_RP, FS_Reordered_BP, TP_BP, FS_NP_Optimized, TP_NP.
func Figure6(r *Runner) (Table, error) {
	t := Table{
		ID:      "Figure 6",
		Title:   "FS vs TP: sum of weighted IPCs (8 cores)",
		Columns: []string{"FS_RP", "FS_Reordered_BP", "TP_BP", "FS_NP_Optimized", "TP_NP"},
	}
	schemes := []sim.SchedulerKind{sim.FSRankPart, sim.FSReorderedBank, sim.TPBank, sim.FSNoPartTriple, sim.TPNone}
	sums := make([]float64, len(schemes))
	suite, err := r.suite()
	if err != nil {
		return Table{}, err
	}
	if err := r.Prefetch(weightedSpecs(suite, schemes, nil)); err != nil {
		return Table{}, err
	}
	for _, mix := range suite {
		row := Row{Label: mix.Name}
		for i, k := range schemes {
			w, err := r.weighted(mix, k, nil)
			if err != nil {
				return Table{}, err
			}
			row.Values = append(row.Values, w)
			sums[i] += w
		}
		t.Rows = append(t.Rows, row)
	}
	am := Row{Label: "AM"}
	for _, s := range sums {
		am.Values = append(am.Values, s/float64(len(t.Rows)))
	}
	t.Rows = append(t.Rows, am)
	t.Notes = append(t.Notes,
		"paper AM: FS_RP 69.3% above TP_BP; FS_Reordered_BP 11.3% above TP_BP; FS_NP_Optimized 2x TP_NP",
		"paper: best FS is 27% below the non-secure baseline (baseline = 8.0 here)")
	return t, nil
}

// Figure6Detail reports the section 7 side statistics for the Figure 6
// runs: average read latency, effective bus utilization, dummy fraction.
func Figure6Detail(r *Runner) (Table, error) {
	t := Table{
		ID:      "Figure 6 detail",
		Title:   "FS_RP and TP_BP derived statistics",
		Columns: []string{"FS_RP lat", "FS_RP util", "FS_RP dummy%", "TP_BP lat", "TP_BP util"},
	}
	var latF, utilF, dumF, latT, utilT float64
	n := 0.0
	suite, err := r.suite()
	if err != nil {
		return Table{}, err
	}
	var specs []Spec
	for _, mix := range suite {
		specs = append(specs,
			Spec{Mix: mix, Kind: sim.FSRankPart},
			Spec{Mix: mix, Kind: sim.TPBank})
	}
	if err := r.Prefetch(specs); err != nil {
		return Table{}, err
	}
	for _, mix := range suite {
		fr, err := r.run(mix, sim.FSRankPart, nil)
		if err != nil {
			return Table{}, err
		}
		tr, err := r.run(mix, sim.TPBank, nil)
		if err != nil {
			return Table{}, err
		}
		f, tp := fr.Run, tr.Run
		t.Rows = append(t.Rows, Row{Label: mix.Name, Values: []float64{
			f.AvgReadLatency(), f.BusUtilization(), f.DummyFraction() * 100,
			tp.AvgReadLatency(), tp.BusUtilization(),
		}})
		latF += f.AvgReadLatency()
		utilF += f.BusUtilization()
		dumF += f.DummyFraction() * 100
		latT += tp.AvgReadLatency()
		utilT += tp.BusUtilization()
		n++
	}
	t.Rows = append(t.Rows, Row{Label: "AM", Values: []float64{latF / n, utilF / n, dumF / n, latT / n, utilT / n}})
	t.Notes = append(t.Notes, "paper: FS_RP avg latency 288 cycles, 37% effective utilization, 36% dummies; best TP_BP latency 683 cycles, 17% utilization")
	return t, nil
}

// Figure7 regenerates the prefetch experiment: baseline+prefetch, FS_RP
// with and without prefetch.
func Figure7(r *Runner) (Table, error) {
	t := Table{
		ID:      "Figure 7",
		Title:   "Prefetching into dummy slots (8 threads, rank partitioning)",
		Columns: []string{"Baseline_Prefetch", "FS_RP-Prefetch", "FS_RP"},
	}
	pf := func(c *sim.Config) { c.Prefetch = true }
	sums := make([]float64, 3)
	suite, err := r.suite()
	if err != nil {
		return Table{}, err
	}
	var specs []Spec
	for _, mix := range suite {
		specs = append(specs,
			Spec{Mix: mix, Kind: sim.Baseline},
			Spec{Mix: mix, Kind: sim.Baseline, Mutate: pf},
			Spec{Mix: mix, Kind: sim.FSRankPart, Mutate: pf},
			Spec{Mix: mix, Kind: sim.FSRankPart})
	}
	if err := r.Prefetch(specs); err != nil {
		return Table{}, err
	}
	for _, mix := range suite {
		row := Row{Label: mix.Name}
		for _, job := range []struct {
			k      sim.SchedulerKind
			mutate func(*sim.Config)
		}{{sim.Baseline, pf}, {sim.FSRankPart, pf}, {sim.FSRankPart, nil}} {
			w, err := r.weighted(mix, job.k, job.mutate)
			if err != nil {
				return Table{}, err
			}
			row.Values = append(row.Values, w)
		}
		for i, v := range row.Values {
			sums[i] += v
		}
		t.Rows = append(t.Rows, row)
	}
	am := Row{Label: "AM"}
	for _, s := range sums {
		am.Values = append(am.Values, s/float64(len(t.Rows)))
	}
	t.Rows = append(t.Rows, am)
	t.Notes = append(t.Notes, "paper: prefetching improves FS_RP by 11% and the baseline by 6.3%")
	return t, nil
}

// Figure8 regenerates the energy comparison: memory energy per demand read
// normalized to the baseline, for the five secure schemes.
func Figure8(r *Runner) (Table, error) {
	t := Table{
		ID:      "Figure 8",
		Title:   "Normalized memory energy (baseline = 1.0)",
		Columns: []string{"FS_RP", "FS_Reordered_BP", "TP_BP", "FS_NP_Optimized", "TP_NP"},
	}
	model := energy.NewModel(sim.DefaultConfig(workload.Mix{Name: "x"}, sim.Baseline).DRAM, energy.DDR3_4Gb())
	schemes := []sim.SchedulerKind{sim.FSRankPart, sim.FSReorderedBank, sim.TPBank, sim.FSNoPartTriple, sim.TPNone}
	sums := make([]float64, len(schemes))
	suite, err := r.suite()
	if err != nil {
		return Table{}, err
	}
	if err := r.Prefetch(weightedSpecs(suite, schemes, nil)); err != nil {
		return Table{}, err
	}
	for _, mix := range suite {
		base, err := r.run(mix, sim.Baseline, nil)
		if err != nil {
			return Table{}, err
		}
		basePer := energy.PerRead(model.ForRun(base.Run, nil), base.Run)
		row := Row{Label: mix.Name}
		for i, k := range schemes {
			res, err := r.run(mix, k, nil)
			if err != nil {
				return Table{}, err
			}
			per := energy.PerRead(model.ForRun(res.Run, res.FS), res.Run)
			row.Values = append(row.Values, per/basePer)
			sums[i] += per / basePer
		}
		t.Rows = append(t.Rows, row)
	}
	am := Row{Label: "AM"}
	for _, s := range sums {
		am.Values = append(am.Values, s/float64(len(t.Rows)))
	}
	t.Rows = append(t.Rows, am)
	t.Notes = append(t.Notes, "paper: FS energy 11.4% below TP, within 19% of the baseline")
	return t, nil
}

// Figure9 regenerates the FS energy optimizations: FS_RP plain, then
// cumulatively suppressed dummies, row-buffer boost, and power-down.
func Figure9(r *Runner) (Table, error) {
	t := Table{
		ID:      "Figure 9",
		Title:   "FS_RP energy optimizations (normalized to baseline = 1.0)",
		Columns: []string{"FS_RP", "Suppressed_Dummy", "Row-buffer-opt", "Power-Down"},
	}
	model := energy.NewModel(sim.DefaultConfig(workload.Mix{Name: "x"}, sim.Baseline).DRAM, energy.DDR3_4Gb())
	opts := []core.EnergyOpts{
		{},
		{SuppressDummies: true},
		{SuppressDummies: true, RowBufferBoost: true},
		{SuppressDummies: true, RowBufferBoost: true, PowerDown: true},
	}
	sums := make([]float64, len(opts))
	suite, err := r.suite()
	if err != nil {
		return Table{}, err
	}
	var specs []Spec
	for _, mix := range suite {
		specs = append(specs, Spec{Mix: mix, Kind: sim.Baseline})
		for _, o := range opts {
			o := o
			specs = append(specs, Spec{Mix: mix, Kind: sim.FSRankPart,
				Mutate: func(c *sim.Config) { c.Energy = o }})
		}
	}
	if err := r.Prefetch(specs); err != nil {
		return Table{}, err
	}
	for _, mix := range suite {
		base, err := r.run(mix, sim.Baseline, nil)
		if err != nil {
			return Table{}, err
		}
		basePer := energy.PerRead(model.ForRun(base.Run, nil), base.Run)
		row := Row{Label: mix.Name}
		for i, o := range opts {
			o := o
			res, err := r.run(mix, sim.FSRankPart, func(c *sim.Config) { c.Energy = o })
			if err != nil {
				return Table{}, err
			}
			per := energy.PerRead(model.ForRun(res.Run, res.FS), res.Run)
			row.Values = append(row.Values, per/basePer)
			sums[i] += per / basePer
		}
		t.Rows = append(t.Rows, row)
	}
	am := Row{Label: "AM"}
	for _, s := range sums {
		am.Values = append(am.Values, s/float64(len(t.Rows)))
	}
	t.Rows = append(t.Rows, am)
	t.Notes = append(t.Notes, "paper: the three optimizations cut FS memory energy by 52.5%, to within 3.4% of the baseline")
	return t, nil
}

// Figure10 regenerates the scalability study: FS_RP, FS_Reordered_BP, and
// TP_BP at 8, 4, and 2 cores (normalized per core count). Each core count
// gets its own sub-runner (different suites), inheriting the parent's
// worker pool and cancellation context.
func Figure10(r *Runner) (Table, error) {
	t := Table{
		ID:      "Figure 10",
		Title:   "Scalability: sum of weighted IPCs at 8/4/2 cores",
		Columns: []string{"FS_RP", "FS_Reordered_BP", "TP"},
	}
	schemes := []sim.SchedulerKind{sim.FSRankPart, sim.FSReorderedBank, sim.TPBank}
	for _, cores := range []int{8, 4, 2} {
		subSettings := r.S
		subSettings.Cores = cores
		sub := NewRunner(subSettings)
		sub.Ctx = r.Ctx
		var sums [3]float64
		n := 0.0
		suite, err := sub.suite()
		if err != nil {
			return Table{}, err
		}
		if err := sub.Prefetch(weightedSpecs(suite, schemes, nil)); err != nil {
			return Table{}, err
		}
		for _, mix := range suite {
			for i, k := range schemes {
				w, err := sub.weighted(mix, k, nil)
				if err != nil {
					return Table{}, err
				}
				sums[i] += w
			}
			n++
		}
		t.Rows = append(t.Rows, Row{
			Label:  fmt.Sprintf("%d cores", cores),
			Values: []float64{sums[0] / n, sums[1] / n, sums[2] / n},
		})
	}
	t.Notes = append(t.Notes, "paper: FS beats TP by 85% at 4 threads and 18% at 2 threads despite the same-rank hazard")
	return t, nil
}

// Section6 regenerates the paper's full target system (Section 6): 32
// cores over a 4-channel fabric. The conventional configuration stripes
// every domain across all channels (interleaved routing) under the
// FR-FCFS baseline — the fast but leaky machine — while the secure
// configuration page-colors domains onto disjoint channels, each running
// its own Fixed Service schedule. Both run the same 32-thread mix; the
// interleaved read budget is scaled by the channel count so the two
// configurations retire comparable work (colored targets are per
// channel).
func Section6(r *Runner) (Table, error) {
	const channels = 4
	cores := r.S.Cores * channels
	mix, err := workload.Rate("milc", cores)
	if err != nil {
		return Table{}, fsmerr.Wrap(fsmerr.CodeExperiment, "experiments.Section6", err)
	}
	t := Table{
		ID:      "Section 6",
		Title:   fmt.Sprintf("Target system: %d cores, %d channels", cores, channels),
		Columns: []string{"sum IPC", "avg read latency", "bus utilization"},
	}
	cases := []struct {
		label   string
		kind    sim.SchedulerKind
		routing addr.Routing
	}{
		{"baseline/interleaved", sim.Baseline, addr.RouteInterleaved},
		{"fs_rp/colored", sim.FSRankPart, addr.RouteColored},
	}
	var specs []Spec
	for _, c := range cases {
		c := c
		specs = append(specs, Spec{Mix: mix, Kind: c.kind, Mutate: func(cfg *sim.Config) {
			cfg.Channels = channels
			cfg.Routing = c.routing
			if c.routing == addr.RouteInterleaved {
				cfg.TargetReads = r.S.TargetReads * channels
			}
		}})
	}
	if err := r.Prefetch(specs); err != nil {
		return Table{}, err
	}
	for i, c := range cases {
		res, err := r.run(mix, c.kind, specs[i].Mutate)
		if err != nil {
			return Table{}, err
		}
		var ipc float64
		for _, d := range res.Run.Domains {
			ipc += d.IPC()
		}
		t.Rows = append(t.Rows, Row{Label: c.label, Values: []float64{
			ipc, res.Run.AvgReadLatency(), res.Run.BusUtilization(),
		}})
	}
	t.Notes = append(t.Notes,
		"interleaved baseline shares every channel across domains (leaky, audited LEAKY); colored FS is the product of 4 independent secure machines")
	return t, nil
}

// capture runs one figure, converting a panic anywhere below it into a
// structured experiment error so one broken figure cannot abort the whole
// regeneration.
func capture(id string, f func() (Table, error)) (t Table, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fsmerr.New(fsmerr.CodeExperiment, "experiments."+id, "panic: %v", p)
		}
	}()
	return f()
}

// All regenerates every figure in order. Figure 4's profile series are
// folded into its table. Figures that fail are skipped and their errors
// aggregated, so a partial regeneration still returns every healthy table.
// Figures run sequentially — each one shards its own simulation grid
// across the runner's worker pool, and later figures reuse the memoized
// baseline runs of earlier ones — so the table sequence is identical for
// every worker count.
func All(r *Runner) ([]Table, error) {
	figures := []struct {
		id string
		f  func() (Table, error)
	}{
		{"Figure3", func() (Table, error) { return Figure3(r) }},
		{"Figure4", func() (Table, error) { t, _, err := Figure4(r); return t, err }},
		{"Figure5", func() (Table, error) { return Figure5(r) }},
		{"Figure6", func() (Table, error) { return Figure6(r) }},
		{"Figure6Detail", func() (Table, error) { return Figure6Detail(r) }},
		{"Figure7", func() (Table, error) { return Figure7(r) }},
		{"Figure8", func() (Table, error) { return Figure8(r) }},
		{"Figure9", func() (Table, error) { return Figure9(r) }},
		{"Figure10", func() (Table, error) { return Figure10(r) }},
		{"Section6", func() (Table, error) { return Section6(r) }},
	}
	var tables []Table
	var errs []error
	for _, fig := range figures {
		t, err := capture(fig.id, fig.f)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		tables = append(tables, t)
	}
	return tables, errors.Join(errs...)
}

// Names lists the available figure IDs. "s6" is the Section 6 target
// system (32 cores over a 4-channel fabric).
func Names() []string {
	n := []string{"3", "4", "5", "6", "7", "8", "9", "10", "s6"}
	sort.Strings(n)
	return n
}
