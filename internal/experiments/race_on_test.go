//go:build race

package experiments

// raceEnabled reports that this binary was built with -race; the full
// serial-vs-parallel sweep comparison is skipped there (the race detector
// multiplies its minutes-long runtime several-fold) — the engine's
// concurrency is race-tested by the cheaper cancellation/dedup tests and
// internal/parallel's own suite, and byte-equality is race-independent.
const raceEnabled = true
