package experiments

import "testing"

func TestAblationSlotSpacingMonotone(t *testing.T) {
	tab, err := AblationSlotSpacing(smallRunner())
	if err != nil {
		t.Fatal(err)
	}
	am := tab.Rows[len(tab.Rows)-1]
	if !(am.Values[0] > am.Values[1] && am.Values[1] > am.Values[2]) {
		t.Errorf("throughput not monotone in l: %v", am.Values)
	}
	t.Logf("Ablation A1 AM: l=15 %.2f, l=21 %.2f, l=43 %.2f", am.Values[0], am.Values[1], am.Values[2])
}

func TestAblationSLAWeights(t *testing.T) {
	tab, err := AblationSLAWeights(smallRunner())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		d0, d1 := row.Values[0], row.Values[1]
		t.Logf("%s: weighted domain %.2fx, unweighted %.2fx", row.Label, d0, d1)
		if row.Label == "milc" || row.Label == "mcf" {
			// Memory-bound: the weight-2 domain must gain and the weight-1
			// domains must not. The IPC gain is bounded below 2x by the
			// ROB's memory-level parallelism (the raw 2x service ratio is
			// proven by TestWeightedSlotsProportionalService in core).
			if d0 < 1.05 {
				t.Errorf("%s: weighted domain ratio %.2f, want > 1.05", row.Label, d0)
			}
			if d1 > 1.02 || d0 < d1+0.05 {
				t.Errorf("%s: unweighted domain %.2f vs weighted %.2f", row.Label, d1, d0)
			}
		}
	}
}

func TestAblationRefreshSmallTax(t *testing.T) {
	tab, err := AblationRefresh(smallRunner())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		slowdown := row.Values[2]
		if slowdown < -2 || slowdown > 25 {
			t.Errorf("%s: refresh slowdown %.1f%% implausible", row.Label, slowdown)
		}
	}
}

func TestAblationConsecutiveTable(t *testing.T) {
	tab, err := AblationConsecutive(smallRunner())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0].Values[2] != 7 {
		t.Errorf("N=1 average %.2f, want 7", tab.Rows[0].Values[2])
	}
	for _, row := range tab.Rows[1:] {
		if row.Values[2] < 7 {
			t.Errorf("%s: average %.2f beats N=1", row.Label, row.Values[2])
		}
	}
}
