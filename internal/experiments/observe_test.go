package experiments

import (
	"bytes"
	"strings"
	"testing"

	"fsmem/internal/obs"
	"fsmem/internal/sim"
	"fsmem/internal/workload"
)

// observedRunner prefetches a small grid with tracing on and exports it.
func observedRunner(t *testing.T, workers int) []byte {
	t.Helper()
	r := NewRunner(Settings{
		Cores: 2, TargetReads: 300, Seed: 42, Workers: workers,
		Observe: &obs.Options{TraceCap: 4096},
	})
	milc, err := workload.ByName("milc")
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.Mix{Name: "milc-rate", Profiles: []workload.Profile{milc, milc}}
	specs := []Spec{
		{Mix: mix, Kind: sim.Baseline},
		{Mix: mix, Kind: sim.FSRankPart},
		{Mix: mix, Kind: sim.FSBankPart},
		{Mix: mix, Kind: sim.TPBank},
	}
	if err := r.Prefetch(specs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.ExportTraces(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestExportTracesDeterministicAcrossWorkers is the observability layer's
// core determinism guarantee: the exported trace bytes are identical
// whether the grid was filled serially or by 4 or 8 pool workers.
func TestExportTracesDeterministicAcrossWorkers(t *testing.T) {
	ref := observedRunner(t, 1)
	if len(ref) == 0 {
		t.Fatal("empty trace export")
	}
	for _, workers := range []int{4, 8} {
		got := observedRunner(t, workers)
		if !bytes.Equal(ref, got) {
			t.Fatalf("trace export differs between Workers=1 and Workers=%d", workers)
		}
	}
}

// TestExportTracesCellOrderAndContent checks the export structure: one
// label line per cell in sorted key order, each followed by a JSONL trace.
func TestExportTracesCellOrderAndContent(t *testing.T) {
	out := string(observedRunner(t, 2))
	var labels []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `{"cell":`) {
			labels = append(labels, line)
		}
	}
	if len(labels) != 4 {
		t.Fatalf("got %d cell labels, want 4:\n%s", len(labels), strings.Join(labels, "\n"))
	}
	for i := 1; i < len(labels); i++ {
		if labels[i-1] >= labels[i] {
			t.Fatalf("cell labels not sorted: %q before %q", labels[i-1], labels[i])
		}
	}
	if !strings.Contains(out, `{"fsmem_trace":1,`) {
		t.Fatal("export contains no JSONL trace header")
	}
}

// TestObservedCellsCarryMetrics checks that observed runs produce metrics
// snapshots and traces without perturbing the simulation itself.
func TestObservedCellsCarryMetrics(t *testing.T) {
	milc, err := workload.ByName("milc")
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.Mix{Name: "milc-rate", Profiles: []workload.Profile{milc, milc}}

	plain := NewRunner(Settings{Cores: 2, TargetReads: 300, Seed: 42, Workers: 1})
	observed := NewRunner(Settings{Cores: 2, TargetReads: 300, Seed: 42, Workers: 1,
		Observe: &obs.Options{}})

	p, err := plain.run(mix, sim.FSRankPart, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := observed.run(mix, sim.FSRankPart, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Trace != nil || p.Metrics != nil {
		t.Fatal("unobserved run carries observability state")
	}
	if o.Trace == nil || len(o.Metrics) == 0 {
		t.Fatal("observed run missing trace or metrics")
	}
	if p.Run.BusCycles != o.Run.BusCycles {
		t.Fatalf("observation changed the simulation: %d vs %d bus cycles",
			p.Run.BusCycles, o.Run.BusCycles)
	}
	cycles, ok := o.Metrics.Get("sim.bus_cycles")
	if !ok || int64(cycles) != o.Run.BusCycles {
		t.Fatalf("sim.bus_cycles metric %v (ok=%v), want %d", cycles, ok, o.Run.BusCycles)
	}
	if n, _ := o.Metrics.Get("dram.reads"); n == 0 {
		t.Fatal("dram.reads metric is zero after a 300-read run")
	}
}
