package experiments

import (
	"strings"
	"testing"
)

func smallRunner() *Runner {
	return NewRunner(Settings{Cores: 8, TargetReads: 3000, Seed: 42})
}

// TestFigure3Shape checks the design-space ordering the paper's Figure 3
// summarizes: baseline > FS_RP > FS_Reordered_BP > TP_BP > TP_NP, and
// triple alternation roughly doubling TP_NP.
func TestFigure3Shape(t *testing.T) {
	tab, err := Figure3(smallRunner())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || len(tab.Rows[0].Values) != 6 {
		t.Fatalf("Figure3 shape: %+v", tab)
	}
	v := tab.Rows[0].Values
	base, fsRP, fsReord, tpBP, fsTA, tpNP := v[0], v[1], v[2], v[3], v[4], v[5]
	t.Logf("Figure 3: base=%.3f FS_RP=%.3f FS_ReordBP=%.3f TP_BP=%.3f FS_NP_TA=%.3f TP_NP=%.3f",
		base, fsRP, fsReord, tpBP, fsTA, tpNP)
	if base != 1.0 {
		t.Errorf("baseline = %v, want 1.0", base)
	}
	if !(fsRP > fsReord && fsReord > tpBP && tpBP > tpNP) {
		t.Errorf("ordering violated: FS_RP %.3f > FS_ReordBP %.3f > TP_BP %.3f > TP_NP %.3f", fsRP, fsReord, tpBP, tpNP)
	}
	if !(fsTA > 1.5*tpNP) {
		t.Errorf("triple alternation %.3f should be well above TP_NP %.3f (paper: 2x)", fsTA, tpNP)
	}
	if fsRP >= 1.0 || fsRP <= 0.4 {
		t.Errorf("FS_RP %.3f implausible (paper: 0.74)", fsRP)
	}
}

func TestFigure4NonInterferenceSummary(t *testing.T) {
	r := NewRunner(Settings{Cores: 8, TargetReads: 3000, Seed: 42})
	tab, profiles, err := Figure4(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 4 {
		t.Fatalf("want 4 profiles, got %d", len(profiles))
	}
	var baseDiv, fsDiv, fsIdent float64
	for _, row := range tab.Rows {
		switch row.Label {
		case "Baseline":
			baseDiv = row.Values[0]
		case "FS_RP":
			fsDiv, fsIdent = row.Values[0], row.Values[1]
		}
	}
	if fsDiv != 0 || fsIdent != 1 {
		t.Errorf("FS_RP divergence %v identical=%v, want 0 and 1", fsDiv, fsIdent)
	}
	if baseDiv <= 0.01 {
		t.Errorf("baseline divergence %v, want visible divergence", baseDiv)
	}
}

// TestFigure5MinimumTurnCompetitive: the paper concludes the smallest turn
// length is best on average (wait time dominates bandwidth). On our
// synthetic suite the coarse-grained turn occasionally edges ahead by a few
// percent (the workloads saturate harder than SPEC; see EXPERIMENTS.md), so
// the robust assertion is that the fine-grained turn is within 15% of the
// best and clearly beats the longest turn for BP.
func TestFigure5MinimumTurnCompetitive(t *testing.T) {
	tab, err := Figure5(smallRunner())
	if err != nil {
		t.Fatal(err)
	}
	am := tab.Rows[len(tab.Rows)-1]
	if am.Label != "AM" {
		t.Fatalf("last row %q, want AM", am.Label)
	}
	check := func(name string, v []float64) {
		best := v[0]
		for _, x := range v {
			if x > best {
				best = x
			}
		}
		if v[0] < best*0.85 {
			t.Errorf("%s: fine-grained turn %v more than 15%% below best %v (sweep %v)", name, v[0], best, v)
		}
	}
	bp := am.Values[0:3]
	np := am.Values[3:6]
	check("BP", bp)
	check("NP", np)
	if bp[0] <= bp[2] {
		t.Errorf("BP: fine-grained %v should beat the longest turn %v", bp[0], bp[2])
	}
	t.Logf("Figure 5 AM: BP %v NP %v", bp, np)
}

func TestFigure6HeadlineRatios(t *testing.T) {
	tab, err := Figure6(smallRunner())
	if err != nil {
		t.Fatal(err)
	}
	am := tab.Rows[len(tab.Rows)-1]
	fsRP, fsReord, tpBP, fsTA, tpNP := am.Values[0], am.Values[1], am.Values[2], am.Values[3], am.Values[4]
	t.Logf("Figure 6 AM: FS_RP=%.2f FS_ReordBP=%.2f TP_BP=%.2f FS_NP_TA=%.2f TP_NP=%.2f", fsRP, fsReord, tpBP, fsTA, tpNP)
	// Paper: FS_RP ~69% over TP_BP. Accept a generous band: >25%.
	if fsRP < tpBP*1.25 {
		t.Errorf("FS_RP %.2f not clearly above TP_BP %.2f (paper: +69%%)", fsRP, tpBP)
	}
	if fsReord < tpBP*1.02 {
		t.Errorf("FS_Reordered_BP %.2f should edge out TP_BP %.2f (paper: +11%%)", fsReord, tpBP)
	}
	if fsTA < tpNP*1.5 {
		t.Errorf("FS_NP_Optimized %.2f should be well above TP_NP %.2f (paper: 2x)", fsTA, tpNP)
	}
}

func TestFigure7PrefetchHelps(t *testing.T) {
	tab, err := Figure7(smallRunner())
	if err != nil {
		t.Fatal(err)
	}
	am := tab.Rows[len(tab.Rows)-1]
	basePF, fsPF, fs := am.Values[0], am.Values[1], am.Values[2]
	t.Logf("Figure 7 AM: Baseline+PF=%.2f FS_RP+PF=%.2f FS_RP=%.2f", basePF, fsPF, fs)
	if fsPF < fs*0.99 {
		t.Errorf("prefetching hurt FS_RP: %.3f vs %.3f", fsPF, fs)
	}
	if basePF < 7.0 {
		t.Errorf("baseline+prefetch AM %.2f implausibly low", basePF)
	}
}

func TestFigure8EnergyOrdering(t *testing.T) {
	tab, err := Figure8(smallRunner())
	if err != nil {
		t.Fatal(err)
	}
	am := tab.Rows[len(tab.Rows)-1]
	fsRP, tpBP, tpNP := am.Values[0], am.Values[2], am.Values[4]
	t.Logf("Figure 8 AM: FS_RP=%.2f TP_BP=%.2f TP_NP=%.2f", fsRP, tpBP, tpNP)
	if fsRP <= 1.0 {
		t.Errorf("FS_RP normalized energy %.3f should exceed the baseline's 1.0", fsRP)
	}
	if fsRP >= tpBP {
		t.Errorf("FS_RP energy %.3f should undercut TP_BP %.3f (paper: 11.4%% lower)", fsRP, tpBP)
	}
	if tpBP >= tpNP {
		t.Errorf("TP_BP energy %.3f should undercut TP_NP %.3f", tpBP, tpNP)
	}
}

func TestFigure9OptimizationsMonotone(t *testing.T) {
	tab, err := Figure9(smallRunner())
	if err != nil {
		t.Fatal(err)
	}
	am := tab.Rows[len(tab.Rows)-1]
	for i := 1; i < len(am.Values); i++ {
		if am.Values[i] > am.Values[i-1]+1e-9 {
			t.Errorf("energy optimization %d increased energy: %v", i, am.Values)
		}
	}
	if last, first := am.Values[len(am.Values)-1], am.Values[0]; last > first*0.9 {
		t.Errorf("optimizations only reduced energy from %.3f to %.3f (paper: -52.5%%)", first, last)
	}
}

func TestFigure10Scales(t *testing.T) {
	tab, err := Figure10(smallRunner())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("want 3 core counts, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		fsRP, tp := row.Values[0], row.Values[2]
		if fsRP <= tp {
			t.Errorf("%s: FS_RP %.2f should beat TP %.2f", row.Label, fsRP, tp)
		}
	}
}

func TestTableFormat(t *testing.T) {
	tab := Table{
		ID: "T", Title: "title", Columns: []string{"a", "b"},
		Rows:  []Row{{Label: "w", Values: []float64{1, 2}}},
		Notes: []string{"n"},
	}
	s := tab.Format()
	for _, want := range []string{"T", "title", "a", "b", "w", "1.000", "2.000", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format missing %q in:\n%s", want, s)
		}
	}
}
