package experiments

import (
	"errors"
	"fmt"

	"fsmem/internal/core"
	"fsmem/internal/dram"
	"fsmem/internal/fsmerr"
	"fsmem/internal/sim"
	"fsmem/internal/stats"
	"fsmem/internal/workload"
)

// AblationSlotSpacing quantifies why the solver's minimal l matters: it
// runs the bank-partitioned FS pipeline at the fixed-periodic-RAS optimum
// (l=15), at the fixed-periodic-data spacing (l=21, Equation 4b), and at
// the no-partitioning worst case (l=43). DESIGN.md calls this the "anchor
// choice" ablation — the entire gap between the anchors is the slot
// spacing they admit.
func AblationSlotSpacing(r *Runner) (Table, error) {
	t := Table{
		ID:      "Ablation A1",
		Title:   "FS_BP throughput vs slot spacing l (8 threads)",
		Columns: []string{"l=15 (RAS)", "l=21 (data)", "l=43 (pessimistic)"},
	}
	sums := make([]float64, 3)
	n := 0.0
	suite, err := r.suite()
	if err != nil {
		return Table{}, err
	}
	var specs []Spec
	for _, mix := range suite {
		specs = append(specs, Spec{Mix: mix, Kind: sim.Baseline})
		for _, l := range []int{15, 21, 43} {
			l := l
			specs = append(specs, Spec{Mix: mix, Kind: sim.FSBankPart,
				Mutate: func(c *sim.Config) { c.FSSlotSpacing = l }})
		}
	}
	if err := r.Prefetch(specs); err != nil {
		return Table{}, err
	}
	for _, mix := range suite {
		row := Row{Label: mix.Name}
		for i, l := range []int{15, 21, 43} {
			l := l
			w, err := r.weighted(mix, sim.FSBankPart, func(c *sim.Config) { c.FSSlotSpacing = l })
			if err != nil {
				return Table{}, err
			}
			row.Values = append(row.Values, w)
			sums[i] += w
		}
		t.Rows = append(t.Rows, row)
		n++
	}
	am := Row{Label: "AM"}
	for _, s := range sums {
		am.Values = append(am.Values, s/n)
	}
	t.Rows = append(t.Rows, am)
	t.Notes = append(t.Notes, "throughput should fall monotonically with l: the solver's minimum is the whole win")
	return t, nil
}

// AblationSLAWeights demonstrates §5.1 service-level agreements: domain 0
// receives twice the issue slots of its peers under FS_RP, and its service
// scales accordingly while the schedule stays conflict-free.
func AblationSLAWeights(r *Runner) (Table, error) {
	t := Table{
		ID:      "Ablation A2",
		Title:   "Weighted SLA slots under FS_RP (4 domains, weights 2:1:1:1)",
		Columns: []string{"dom0 IPC ratio", "dom1 IPC ratio", "interval Q"},
	}
	weights := func(c *sim.Config) { c.SLAWeights = []int{2, 1, 1, 1} }
	mixes := make([]workload.Mix, 0, 3)
	var specs []Spec
	for _, name := range []string{"milc", "mcf", "libquantum"} {
		mix, err := workload.Rate(name, 4)
		if err != nil {
			return Table{}, fsmerr.Wrap(fsmerr.CodeExperiment, "experiments.AblationSLAWeights", err)
		}
		mixes = append(mixes, mix)
		specs = append(specs,
			Spec{Mix: mix, Kind: sim.FSRankPart},
			Spec{Mix: mix, Kind: sim.FSRankPart, Mutate: weights})
	}
	if err := r.Prefetch(specs); err != nil {
		return Table{}, err
	}
	for _, mix := range mixes {
		equal, err := r.run(mix, sim.FSRankPart, nil)
		if err != nil {
			return Table{}, err
		}
		weighted, err := r.run(mix, sim.FSRankPart, weights)
		if err != nil {
			return Table{}, err
		}
		q := 7.0 * 5 // l * total slots
		t.Rows = append(t.Rows, Row{Label: mix.Name, Values: []float64{
			weighted.Run.Domains[0].IPC() / equal.Run.Domains[0].IPC(),
			weighted.Run.Domains[1].IPC() / equal.Run.Domains[1].IPC(),
			q,
		}})
	}
	t.Notes = append(t.Notes, "memory-bound domains with weight 2 should approach a 2x IPC ratio (note Q also grows 4->5 slots)")
	return t, nil
}

// AblationRefresh measures the throughput cost of folding deterministic
// refresh windows into the FS_RP slot grid.
func AblationRefresh(r *Runner) (Table, error) {
	t := Table{
		ID:      "Ablation A3",
		Title:   "FS_RP with deterministic refresh windows",
		Columns: []string{"no refresh", "refresh", "slowdown %"},
	}
	refresh := func(c *sim.Config) { c.RefreshEnabled = true }
	mixes := make([]workload.Mix, 0, 3)
	var specs []Spec
	for _, name := range []string{"milc", "mcf", "xalancbmk"} {
		mix, err := workload.Rate(name, 8)
		if err != nil {
			return Table{}, fsmerr.Wrap(fsmerr.CodeExperiment, "experiments.AblationRefresh", err)
		}
		mixes = append(mixes, mix)
		specs = append(specs,
			Spec{Mix: mix, Kind: sim.Baseline},
			Spec{Mix: mix, Kind: sim.FSRankPart},
			Spec{Mix: mix, Kind: sim.FSRankPart, Mutate: refresh})
	}
	if err := r.Prefetch(specs); err != nil {
		return Table{}, err
	}
	for _, mix := range mixes {
		off, err := r.weighted(mix, sim.FSRankPart, nil)
		if err != nil {
			return Table{}, err
		}
		on, err := r.weighted(mix, sim.FSRankPart, refresh)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, Row{Label: mix.Name, Values: []float64{off, on, (1 - on/off) * 100}})
	}
	t.Notes = append(t.Notes, "tRFC/tREFI = 208/6240 bounds the refresh tax near 3-4% plus quiesce slots")
	return t, nil
}

// AblationConsecutive reports the §3.1 N-consecutive-transactions study
// from the analytical solver (no simulation needed: the pipeline's peak
// service rate is its average slot spacing).
func AblationConsecutive(r *Runner) (Table, error) {
	t := Table{
		ID:      "Ablation A4",
		Title:   "N consecutive transactions per thread (rank partitioning)",
		Columns: []string{"intra l", "inter l", "avg cycles/txn"},
	}
	for n := 1; n <= 4; n++ {
		plan, err := core.SolveConsecutive(n, dram.DDR3_1600())
		if err != nil {
			return Table{}, fsmerr.Wrap(fsmerr.CodeExperiment, "experiments.AblationConsecutive", err)
		}
		t.Rows = append(t.Rows, Row{
			Label:  fmt.Sprintf("N=%d", n),
			Values: []float64{float64(plan.IntraL), float64(plan.InterL), plan.AvgSpacing()},
		})
	}
	t.Notes = append(t.Notes, "§3.1: N>1 never beats the N=1 pipeline at the Table 1 timings (the in-block write-to-read turnaround dominates)")
	return t, nil
}

// Ablations runs every ablation study, skipping failed ones and aggregating
// their errors like All does for the figures.
func Ablations(r *Runner) ([]Table, error) {
	studies := []struct {
		id string
		f  func() (Table, error)
	}{
		{"AblationSlotSpacing", func() (Table, error) { return AblationSlotSpacing(r) }},
		{"AblationSLAWeights", func() (Table, error) { return AblationSLAWeights(r) }},
		{"AblationRefresh", func() (Table, error) { return AblationRefresh(r) }},
		{"AblationConsecutive", func() (Table, error) { return AblationConsecutive(r) }},
		{"AblationDDR4", func() (Table, error) { return AblationDDR4(r) }},
	}
	var tables []Table
	var errs []error
	for _, st := range studies {
		t, err := capture(st.id, st.f)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		tables = append(tables, t)
	}
	return tables, errors.Join(errs...)
}

// AblationDDR4 re-runs the design-space comparison on DDR4-2400: every
// pipeline is re-solved from the JESD79-4 timings (the paper's Table 1
// cites the DDR4 standard but evaluates DDR3), demonstrating that the
// framework — not a fixed schedule — is the contribution.
func AblationDDR4(r *Runner) (Table, error) {
	t := Table{
		ID:      "Ablation A5",
		Title:   "Design space on DDR4-2400 (normalized to the DDR4 baseline)",
		Columns: []string{"FS_RP", "FS_Reordered_BP", "TP_BP", "FS_NP_Optimized", "TP_NP"},
	}
	ddr4 := func(c *sim.Config) { c.DRAM = dram.DDR4_2400() }
	schemes := []sim.SchedulerKind{sim.FSRankPart, sim.FSReorderedBank, sim.TPBank, sim.FSNoPartTriple, sim.TPNone}
	sums := make([]float64, len(schemes))
	n := 0.0
	mixes := make([]workload.Mix, 0, 4)
	var specs []Spec
	for _, name := range []string{"milc", "mcf", "libquantum", "zeusmp"} {
		mix, err := workload.Rate(name, 8)
		if err != nil {
			return Table{}, fsmerr.Wrap(fsmerr.CodeExperiment, "experiments.AblationDDR4", err)
		}
		mixes = append(mixes, mix)
		specs = append(specs, Spec{Mix: mix, Kind: sim.Baseline, Mutate: ddr4})
		for _, k := range schemes {
			specs = append(specs, Spec{Mix: mix, Kind: k, Mutate: ddr4})
		}
	}
	if err := r.Prefetch(specs); err != nil {
		return Table{}, err
	}
	for _, mix := range mixes {
		base, err := r.run(mix, sim.Baseline, ddr4)
		if err != nil {
			return Table{}, err
		}
		row := Row{Label: mix.Name}
		for i, k := range schemes {
			res, err := r.run(mix, k, ddr4)
			if err != nil {
				return Table{}, err
			}
			w, err := stats.WeightedIPC(res.Run, base.Run)
			if err != nil {
				return Table{}, fsmerr.Wrap(fsmerr.CodeExperiment, "experiments.AblationDDR4", err)
			}
			row.Values = append(row.Values, w/8)
			sums[i] += w / 8
		}
		t.Rows = append(t.Rows, row)
		n++
	}
	am := Row{Label: "AM"}
	for _, s := range sums {
		am.Values = append(am.Values, s/n)
	}
	t.Rows = append(t.Rows, am)
	t.Notes = append(t.Notes, "DDR4's longer (in cycles) turnarounds widen FS_RP's advantage: l stays bus-bound at 7 while l_BP grows 15->25 and l_NP 43->66")
	return t, nil
}
