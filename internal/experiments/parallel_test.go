package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"fsmem/internal/fsmerr"
	"fsmem/internal/sim"
)

// renderAll regenerates every figure and ablation table at the given worker
// count and returns the concatenated rendered output — the exact bytes
// cmd/sweep would print.
func renderAll(t *testing.T, workers int) string {
	t.Helper()
	r := NewRunner(Settings{Cores: 8, TargetReads: 800, Seed: 42, Workers: workers})
	var b strings.Builder
	tables, err := All(r)
	if err != nil {
		t.Fatalf("workers=%d: All: %v", workers, err)
	}
	for _, tab := range tables {
		b.WriteString(tab.Format())
	}
	tables, err = Ablations(r)
	if err != nil {
		t.Fatalf("workers=%d: Ablations: %v", workers, err)
	}
	for _, tab := range tables {
		b.WriteString(tab.Format())
	}
	return b.String()
}

// TestParallelSweepMatchesSerial is the determinism claim the whole engine
// stands on, mechanically checked: regenerating every figure and ablation
// with an 8-wide worker pool yields byte-identical tables to the 1-wide
// (serial) pool. Reproducibility is the security argument for fixed
// service policies, so the parallel engine must not perturb a single byte.
func TestParallelSweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep comparison in -short mode")
	}
	if raceEnabled {
		t.Skip("full sweep comparison under the race detector")
	}
	serial := renderAll(t, 1)
	parallel := renderAll(t, 8)
	if serial != parallel {
		t.Fatalf("parallel sweep diverged from serial sweep:\n-- serial --\n%s\n-- parallel --\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "Figure 6") || !strings.Contains(serial, "Ablation A5") {
		t.Fatalf("sweep output incomplete:\n%s", serial)
	}
}

// TestSweepCancellation: a canceled runner context aborts the sweep with a
// structured CodeCanceled error instead of hanging or caching partial
// cells.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner(Settings{Cores: 8, TargetReads: 5000, Seed: 42, Workers: 4})
	r.Ctx = ctx
	_, err := All(r)
	if err == nil {
		t.Fatal("canceled sweep returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if fsmerr.CodeOf(err) != fsmerr.CodeCanceled {
		t.Fatalf("want CodeCanceled, got %v", err)
	}
	r.mu.Lock()
	cached := len(r.cache)
	r.mu.Unlock()
	if cached != 0 {
		t.Errorf("canceled sweep memoized %d partial cells", cached)
	}
}

// TestPrefetchDedup: listing the same cell many times (and re-prefetching
// an already-warm grid) performs each simulation once.
func TestPrefetchDedup(t *testing.T) {
	r := NewRunner(Settings{Cores: 4, TargetReads: 300, Seed: 42, Workers: 4})
	suite, err := r.suite()
	if err != nil {
		t.Fatal(err)
	}
	mix := suite[0]
	specs := []Spec{}
	for i := 0; i < 6; i++ {
		specs = append(specs, Spec{Mix: mix, Kind: sim.Baseline})
	}
	if err := r.Prefetch(specs); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	cached := len(r.cache)
	r.mu.Unlock()
	if cached != 1 {
		t.Fatalf("6 duplicate specs filled %d cells, want 1", cached)
	}
	if err := r.Prefetch(specs); err != nil {
		t.Fatal(err)
	}
}
