// Package cpu models an out-of-order core at the fidelity the evaluation
// needs: a reorder buffer that fills behind outstanding memory reads, a
// fixed fetch/retire width, and non-blocking writes. This is the USIMM
// processor model: IPC responds to memory latency and bandwidth, which is
// the coupling every figure in the paper measures.
package cpu

import (
	"fsmem/internal/dram"
	"fsmem/internal/stats"
	"fsmem/internal/trace"
)

// Memory is the post-LLC memory system as seen by one core. Enqueue
// operations return false under backpressure (full controller queues), in
// which case the core stalls and retries.
type Memory interface {
	EnqueueRead(domain int, a dram.Address, done func()) bool
	EnqueueWrite(domain int, a dram.Address) bool
}

type pendingRead struct {
	idx  int64 // instruction index occupying the ROB slot
	done bool
}

// Core is one simulated core running one security domain's stream.
type Core struct {
	ID      int
	Width   int // fetch/retire width per CPU cycle
	ROBSize int

	stream trace.Stream
	mem    Memory
	stats  *stats.Domain

	fetchIdx  int64 // next instruction index to fetch
	retireIdx int64 // next instruction index to retire
	reads     []pendingRead

	ref      trace.Ref
	refAt    int64 // instruction index of the next memory reference
	haveRef  bool
	stalled  bool // could not enqueue last cycle; retry
	finished bool
}

// NewCore builds a core with the paper's parameters (64-entry ROB, 4-wide).
func NewCore(id int, stream trace.Stream, mem Memory, st *stats.Domain) *Core {
	c := &Core{
		ID:      id,
		Width:   4,
		ROBSize: 64,
		stream:  stream,
		mem:     mem,
		stats:   st,
	}
	c.loadNextRef()
	return c
}

func (c *Core) loadNextRef() {
	c.ref = c.stream.Next()
	c.refAt = c.fetchIdx + int64(c.ref.Gap)
	c.haveRef = true
}

// Retired returns the number of retired instructions.
func (c *Core) Retired() int64 { return c.retireIdx }

// Cycle advances the core by one CPU cycle.
func (c *Core) Cycle() {
	c.stats.CPUCycles++

	// Retire stage: up to Width instructions, blocking at the oldest
	// outstanding read.
	retired := 0
	for retired < c.Width && c.retireIdx < c.fetchIdx {
		if len(c.reads) > 0 && c.reads[0].idx == c.retireIdx {
			if !c.reads[0].done {
				break
			}
			c.reads = c.reads[1:]
		}
		c.retireIdx++
		c.stats.Instructions++
		retired++
	}

	// Fetch stage: up to Width instructions, bounded by ROB occupancy.
	fetched := 0
	for fetched < c.Width && c.fetchIdx-c.retireIdx < int64(c.ROBSize) {
		if c.haveRef && c.fetchIdx == c.refAt {
			if !c.issueRef() {
				return // backpressure: retry next cycle
			}
			c.fetchIdx++
			fetched++
			c.loadNextRef()
			continue
		}
		c.fetchIdx++
		fetched++
	}
}

// issueRef submits the current memory reference; false means backpressure.
func (c *Core) issueRef() bool {
	if c.ref.Write {
		// Writes drain through the write buffer and never block retirement;
		// a full write queue stalls fetch only.
		return c.mem.EnqueueWrite(c.ID, c.ref.Addr)
	}
	idx := c.fetchIdx
	pos := len(c.reads)
	c.reads = append(c.reads, pendingRead{idx: idx})
	ok := c.mem.EnqueueRead(c.ID, c.ref.Addr, func() {
		// Completion callback: mark the (still ordered) entry done.
		for i := range c.reads {
			if c.reads[i].idx == idx {
				c.reads[i].done = true
				return
			}
		}
	})
	if !ok {
		c.reads = c.reads[:pos]
		return false
	}
	return true
}

// OutstandingReads returns the number of reads in flight (ROB pressure).
func (c *Core) OutstandingReads() int {
	n := 0
	for _, r := range c.reads {
		if !r.done {
			n++
		}
	}
	return n
}
