// Package cpu models an out-of-order core at the fidelity the evaluation
// needs: a reorder buffer that fills behind outstanding memory reads, a
// fixed fetch/retire width, and non-blocking writes. This is the USIMM
// processor model: IPC responds to memory latency and bandwidth, which is
// the coupling every figure in the paper measures.
package cpu

import (
	"math"

	"fsmem/internal/dram"
	"fsmem/internal/stats"
	"fsmem/internal/trace"
)

// Memory is the post-LLC memory system as seen by one core. Enqueue
// operations return false under backpressure (full controller queues), in
// which case the core stalls and retries.
type Memory interface {
	EnqueueRead(domain int, a dram.Address, done func()) bool
	EnqueueWrite(domain int, a dram.Address) bool
}

type pendingRead struct {
	idx  int64 // instruction index occupying the ROB slot
	done bool
}

// Core is one simulated core running one security domain's stream.
type Core struct {
	ID      int
	Width   int // fetch/retire width per CPU cycle
	ROBSize int

	stream trace.Stream
	mem    Memory
	stats  *stats.Domain

	fetchIdx  int64 // next instruction index to fetch
	retireIdx int64 // next instruction index to retire
	reads     []pendingRead

	ref      trace.Ref
	refAt    int64 // instruction index of the next memory reference
	haveRef  bool
	stalled  bool // could not enqueue last cycle; retry
	finished bool
}

// NewCore builds a core with the paper's parameters (64-entry ROB, 4-wide).
func NewCore(id int, stream trace.Stream, mem Memory, st *stats.Domain) *Core {
	c := &Core{
		ID:      id,
		Width:   4,
		ROBSize: 64,
		stream:  stream,
		mem:     mem,
		stats:   st,
	}
	c.loadNextRef()
	return c
}

func (c *Core) loadNextRef() {
	c.ref = c.stream.Next()
	c.refAt = c.fetchIdx + int64(c.ref.Gap)
	c.haveRef = true
}

// Retired returns the number of retired instructions.
func (c *Core) Retired() int64 { return c.retireIdx }

// Cycle advances the core by one CPU cycle.
func (c *Core) Cycle() {
	c.stats.CPUCycles++

	// Retire stage: up to Width instructions, blocking at the oldest
	// outstanding read.
	retired := 0
	for retired < c.Width && c.retireIdx < c.fetchIdx {
		if len(c.reads) > 0 && c.reads[0].idx == c.retireIdx {
			if !c.reads[0].done {
				break
			}
			c.reads = c.reads[1:]
		}
		c.retireIdx++
		c.stats.Instructions++
		retired++
	}

	// Fetch stage: up to Width instructions, bounded by ROB occupancy.
	fetched := 0
	for fetched < c.Width && c.fetchIdx-c.retireIdx < int64(c.ROBSize) {
		if c.haveRef && c.fetchIdx == c.refAt {
			if !c.issueRef() {
				return // backpressure: retry next cycle
			}
			c.fetchIdx++
			fetched++
			c.loadNextRef()
			continue
		}
		c.fetchIdx++
		fetched++
	}
}

// issueRef submits the current memory reference; false means backpressure.
func (c *Core) issueRef() bool {
	if c.ref.Write {
		// Writes drain through the write buffer and never block retirement;
		// a full write queue stalls fetch only.
		return c.mem.EnqueueWrite(c.ID, c.ref.Addr)
	}
	idx := c.fetchIdx
	pos := len(c.reads)
	c.reads = append(c.reads, pendingRead{idx: idx})
	ok := c.mem.EnqueueRead(c.ID, c.ref.Addr, func() {
		// Completion callback: mark the (still ordered) entry done.
		for i := range c.reads {
			if c.reads[i].idx == idx {
				c.reads[i].done = true
				return
			}
		}
	})
	if !ok {
		c.reads = c.reads[:pos]
		return false
	}
	return true
}

// OutstandingReads returns the number of reads in flight (ROB pressure).
func (c *Core) OutstandingReads() int {
	n := 0
	for _, r := range c.reads {
		if !r.done {
			n++
		}
	}
	return n
}

// Forever is the NextInteraction result of a core that cannot reach its
// next memory reference without an external read completion: retirement is
// blocked on an outstanding read and the ROB leaves no room to fetch up to
// the reference.
const Forever = int64(math.MaxInt64)

// blockIdx returns the instruction index retirement will block at — the
// oldest outstanding (not yet completed) read — or -1 when no read blocks.
// Entries are idx-ordered and completed heads pop as retirement passes, so
// a scan for the first undone entry suffices.
func (c *Core) blockIdx() int64 {
	for i := range c.reads {
		if !c.reads[i].done {
			return c.reads[i].idx
		}
	}
	return -1
}

// NextInteraction returns how many CPU cycles from now until this core next
// attempts a memory enqueue (1 = the very next Cycle call may touch the
// memory system, so nothing can be skipped), assuming no outstanding read
// completes in the meantime. Returns Forever when the core is stalled until
// an external completion. The enqueue attempt is the only point a core
// observes or mutates anything outside its own registers — including the
// side effects of a rejected enqueue (reject counters, queue-full trace
// events) — so every cycle before it is provably free of interaction.
func (c *Core) NextInteraction() int64 {
	if !c.haveRef {
		return Forever
	}
	_, _, used, interact := ffScan(c.retireIdx, c.fetchIdx, c.blockIdx(), c.refAt,
		int64(c.Width), int64(c.ROBSize), Forever)
	if !interact {
		return Forever
	}
	return used + 1
}

// Skip advances the core by n CPU cycles in one arithmetic batch,
// reproducing exactly what n Cycle calls would have done. The caller must
// guarantee the span is interaction-free (n < NextInteraction()) and that
// no outstanding read completes inside it; the simulator's event horizon
// provides both.
func (c *Core) Skip(n int64) {
	if n <= 0 {
		return
	}
	c.stats.CPUCycles += n
	if !c.haveRef {
		return
	}
	nr, nf, _, _ := ffScan(c.retireIdx, c.fetchIdx, c.blockIdx(), c.refAt,
		int64(c.Width), int64(c.ROBSize), n)
	c.stats.Instructions += nr - c.retireIdx
	c.retireIdx, c.fetchIdx = nr, nf
	pop := 0
	for pop < len(c.reads) && c.reads[pop].idx < nr {
		pop++ // retirement passed it, so it was complete: Cycle would have popped it
	}
	c.reads = c.reads[pop:]
}

// ffScan runs the retire/fetch arithmetic of up to n interaction-free CPU
// cycles from retire index r and fetch index f, with retirement blocked at
// index b (-1 = unblocked) and the next memory reference at index t. It
// mirrors Cycle exactly: per cycle, retirement advances to
// min(r+w, f, b) and fetch to min(f+w, retired+rob, t), and a cycle
// interacts when the fetch loop reaches t with ROB room (t-f < w and
// t-retired < rob). It stops just before the first interacting cycle
// (interact=true), when no further cycle can change state (stall,
// interact=false), or when the budget runs out. Runs of full-speed cycles
// (both stages advancing w) are applied closed-form, so the scan costs
// O(phase changes), not O(cycles).
func ffScan(r, f, b, t, w, rob, n int64) (nr, nf, used int64, interact bool) {
	for used < n {
		ret := r + w
		if ret > f {
			ret = f
		}
		if b >= 0 && ret > b {
			ret = b
		}
		if t-f < w && t-ret < rob {
			return r, f, used, true
		}
		fet := f + w
		if lim := ret + rob; fet > lim {
			fet = lim
		}
		if fet > t {
			fet = t
		}
		if fet < f {
			fet = f // ROB already full: the fetch loop never runs
		}
		if ret == r && fet == f {
			return r, f, used, false
		}
		if ret == r+w && fet == f+w {
			// Full speed persists while the fetch front stays w short of the
			// reference and retirement stays clear of the blocking read; the
			// ROB margin f-r is invariant under equal advance.
			m := (t - f) / w
			if b >= 0 {
				if mb := (b - r) / w; mb < m {
					m = mb
				}
			}
			if rem := n - used; m > rem {
				m = rem
			}
			if m > 1 {
				r += w * m
				f += w * m
				used += m
				continue
			}
		}
		r, f = ret, fet
		used++
	}
	return r, f, used, false
}
