package cpu

import (
	"testing"

	"fsmem/internal/dram"
	"fsmem/internal/stats"
	"fsmem/internal/trace"
)

// attemptMem counts every enqueue attempt — the interaction NextInteraction
// predicts — on top of fakeMem's completion control.
type attemptMem struct {
	fakeMem
	attempts int
}

func (m *attemptMem) EnqueueRead(d int, a dram.Address, done func()) bool {
	m.attempts++
	return m.fakeMem.EnqueueRead(d, a, done)
}

func (m *attemptMem) EnqueueWrite(d int, a dram.Address) bool {
	m.attempts++
	return m.fakeMem.EnqueueWrite(d, a)
}

func newAttemptMem() *attemptMem {
	return &attemptMem{fakeMem: fakeMem{readCap: 1 << 30, writeCap: 1 << 30}}
}

// fanoutMem spreads one core's requests over N per-channel attemptMems by
// column bits — the interleaved fabric's routing policy — so the
// fast-forward twins are exercised with reads in flight on several
// channels at once, completing out of order across them.
type fanoutMem struct {
	chans []*attemptMem
}

func newFanoutMem(n int) *fanoutMem {
	m := &fanoutMem{}
	for i := 0; i < n; i++ {
		m.chans = append(m.chans, newAttemptMem())
	}
	return m
}

func (m *fanoutMem) route(a dram.Address) *attemptMem { return m.chans[a.Col%len(m.chans)] }

func (m *fanoutMem) EnqueueRead(d int, a dram.Address, done func()) bool {
	return m.route(a).EnqueueRead(d, a, done)
}

func (m *fanoutMem) EnqueueWrite(d int, a dram.Address) bool {
	return m.route(a).EnqueueWrite(d, a)
}

func (m *fanoutMem) attempts() int {
	n := 0
	for _, c := range m.chans {
		n += c.attempts
	}
	return n
}

// pendingChans lists the channels with an outstanding completion, in
// channel order (identical on both twins, so a pseudo-random pick from it
// injects the same completion into both).
func (m *fanoutMem) pendingChans() []int {
	var out []int
	for i, c := range m.chans {
		if len(c.pending) > 0 {
			out = append(out, i)
		}
	}
	return out
}

func (m *fanoutMem) setRejectAll(v bool) {
	for _, c := range m.chans {
		c.rejectNext = v
	}
}

// TestNextInteractionExact drives each scenario to an interesting state and
// then checks NextInteraction is exact: no enqueue attempt happens in the
// k-1 cycles it declares free (a late horizon would silently change
// simulation results), and the attempt really lands on cycle k (a
// conservative horizon would only cost speed, but exactness is what ffScan
// promises).
func TestNextInteractionExact(t *testing.T) {
	cases := []struct {
		name  string
		refs  []trace.Ref
		setup func(c *Core, m *attemptMem)
	}{
		{"immediate-read", []trace.Ref{{Gap: 0}, {Gap: 1 << 20}}, nil},
		{"near-read", []trace.Ref{{Gap: 10}, {Gap: 1 << 20}}, nil},
		{"far-read", []trace.Ref{{Gap: 3000}, {Gap: 1 << 20}}, nil},
		{"write", []trace.Ref{{Gap: 5, Write: true}, {Gap: 1 << 20}}, nil},
		{"pure-compute", nil, nil}, // SliceStream with no refs: one huge gap
		{"mid-flight", []trace.Ref{{Gap: 4}, {Gap: 4}, {Gap: 4}, {Gap: 1 << 20}},
			func(c *Core, m *attemptMem) {
				for i := 0; i < 3; i++ {
					c.Cycle()
				}
			}},
		{"after-completion", []trace.Ref{{Gap: 0}, {Gap: 200}, {Gap: 1 << 20}},
			func(c *Core, m *attemptMem) {
				for i := 0; i < 20; i++ {
					c.Cycle()
				}
				m.completeOldest()
			}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m := newAttemptMem()
			var st stats.Domain
			c := NewCore(0, &trace.SliceStream{Refs: tc.refs}, m, &st)
			if tc.setup != nil {
				tc.setup(c, m)
			}
			k := c.NextInteraction()
			if k == Forever {
				t.Fatalf("NextInteraction = Forever, expected a reachable interaction")
			}
			before := m.attempts
			for i := int64(0); i < k-1; i++ {
				c.Cycle()
				if m.attempts != before {
					t.Fatalf("enqueue attempt on declared-free cycle %d of %d (horizon too late)", i+1, k)
				}
			}
			c.Cycle()
			if m.attempts != before+1 {
				t.Fatalf("no enqueue attempt on cycle %d (horizon too early: attempts %d -> %d)",
					k, before, m.attempts)
			}
		})
	}
}

// TestNextInteractionForever pins the stalled states: a core whose
// retirement is blocked on an outstanding read with no ROB room to reach
// the next reference can never interact without an external completion.
func TestNextInteractionForever(t *testing.T) {
	m := newAttemptMem()
	var st stats.Domain
	// Read at instruction 0 blocks retirement; the next reference sits a
	// full gap beyond anything a 64-entry ROB can fetch.
	c := NewCore(0, &trace.SliceStream{Refs: []trace.Ref{{Gap: 0}, {Gap: 1 << 20}}}, m, &st)
	for i := 0; i < 30; i++ {
		c.Cycle()
	}
	if k := c.NextInteraction(); k != Forever {
		t.Fatalf("blocked core reports NextInteraction %d, want Forever", k)
	}
	before := m.attempts
	for i := 0; i < 5000; i++ {
		c.Cycle()
	}
	if m.attempts != before {
		t.Fatal("blocked core interacted without a completion")
	}
	m.completeOldest()
	if k := c.NextInteraction(); k == Forever {
		t.Fatal("core still Forever after its read completed")
	}
}

// TestNextInteractionBackpressure: a rejected enqueue is retried — with
// per-cycle side effects in the real controller — so a core stalled on
// backpressure must report the very next cycle as interacting.
func TestNextInteractionBackpressure(t *testing.T) {
	m := newAttemptMem()
	m.rejectNext = true
	var st stats.Domain
	c := NewCore(0, &trace.SliceStream{Refs: []trace.Ref{{Gap: 2}, {Gap: 1 << 20}}}, m, &st)
	for i := 0; i < 5; i++ {
		c.Cycle()
	}
	if m.attempts == 0 {
		t.Fatal("setup failed: no rejected attempt yet")
	}
	if k := c.NextInteraction(); k != 1 {
		t.Fatalf("backpressured core reports NextInteraction %d, want 1 (retry every cycle)", k)
	}
	before := m.attempts
	c.Cycle()
	if m.attempts != before+1 {
		t.Fatal("backpressured core did not retry on the next cycle")
	}
}

// TestSkipMatchesDense: Skip(n) must leave the core in exactly the state n
// Cycle calls would, for spans the horizon declares interaction-free.
func TestSkipMatchesDense(t *testing.T) {
	refs := []trace.Ref{{Gap: 37}, {Gap: 120, Write: true}, {Gap: 9}, {Gap: 1 << 20}}
	for _, warm := range []int{0, 3, 11} {
		for _, frac := range []int64{1, 2, 3} {
			ma, mb := newAttemptMem(), newAttemptMem()
			var sa, sb stats.Domain
			a := NewCore(0, &trace.SliceStream{Refs: refs}, ma, &sa)
			b := NewCore(0, &trace.SliceStream{Refs: refs}, mb, &sb)
			for i := 0; i < warm; i++ {
				a.Cycle()
				b.Cycle()
			}
			k := a.NextInteraction()
			if k == Forever || k < 2 {
				continue
			}
			n := (k - 1) / frac
			if n == 0 {
				continue
			}
			for i := int64(0); i < n; i++ {
				a.Cycle()
			}
			b.Skip(n)
			if a.retireIdx != b.retireIdx || a.fetchIdx != b.fetchIdx || len(a.reads) != len(b.reads) {
				t.Fatalf("warm=%d n=%d: dense (r=%d f=%d reads=%d) vs skip (r=%d f=%d reads=%d)",
					warm, n, a.retireIdx, a.fetchIdx, len(a.reads), b.retireIdx, b.fetchIdx, len(b.reads))
			}
			if sa != sb {
				t.Fatalf("warm=%d n=%d: stats diverged: dense %+v vs skip %+v", warm, n, sa, sb)
			}
			if ma.attempts != mb.attempts {
				t.Fatalf("warm=%d n=%d: skip performed %d attempts, dense %d", warm, n, mb.attempts, ma.attempts)
			}
		}
	}
}

// FuzzNextEvent is the property harness for the fast-forward arithmetic:
// one core advances densely, its twin jumps via NextInteraction + Skip, and
// after every jump the two must agree on every observable — indices,
// outstanding reads, enqueue attempts, and statistics. Completions and
// backpressure are injected pseudo-randomly (identically on both) to reach
// the stall/resume transitions where off-by-one horizons hide. The
// channels parameter fans the core's requests out over 1, 2, or 4
// column-interleaved memories, so the same property holds when reads are
// in flight — and complete out of order — across a multi-channel fabric.
func FuzzNextEvent(f *testing.F) {
	f.Add(uint64(1), uint8(40), uint8(0))
	f.Add(uint64(0xdeadbeef), uint8(200), uint8(0))
	f.Add(uint64(42), uint8(255), uint8(0))
	f.Add(uint64(7), uint8(120), uint8(1))
	f.Add(uint64(0xfab), uint8(200), uint8(2))
	f.Add(uint64(0xdeadbeef), uint8(200), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, rounds uint8, channels uint8) {
		widths := []int{1, 2, 4}
		n := widths[int(channels)%len(widths)]
		rng := trace.NewRNG(seed)
		refs := make([]trace.Ref, 1+rng.Intn(16))
		for i := range refs {
			refs[i] = trace.Ref{
				Gap:   rng.Intn(200),
				Write: rng.Bool(0.3),
				Addr:  dram.Address{Col: rng.Intn(1024)},
			}
		}
		ma, mb := newFanoutMem(n), newFanoutMem(n)
		var sa, sb stats.Domain
		dense := NewCore(0, &trace.SliceStream{Refs: refs}, ma, &sa)
		jump := NewCore(0, &trace.SliceStream{Refs: refs}, mb, &sb)
		for r := 0; r < int(rounds); r++ {
			ka, kb := dense.NextInteraction(), jump.NextInteraction()
			if ka != kb {
				t.Fatalf("round %d: NextInteraction diverged: dense %d vs jump %d", r, ka, kb)
			}
			if ka == Forever {
				busy := ma.pendingChans()
				if len(busy) == 0 {
					break // truly finished (stream drained into a stall with nothing in flight)
				}
				c := busy[rng.Intn(len(busy))]
				ma.chans[c].completeOldest()
				mb.chans[c].completeOldest()
				continue
			}
			if rng.Bool(0.2) {
				// Backpressure one pseudo-random channel (or, sometimes, all
				// of them) on both twins.
				if rng.Bool(0.5) {
					ma.setRejectAll(true)
					mb.setRejectAll(true)
				} else {
					c := rng.Intn(n)
					ma.chans[c].rejectNext = true
					mb.chans[c].rejectNext = true
				}
			}
			// Dense twin: ka single cycles. Jump twin: one fast-forward jump
			// over the free span, then the interacting cycle.
			for i := int64(0); i < ka; i++ {
				dense.Cycle()
			}
			jump.Skip(ka - 1)
			jump.Cycle()
			ma.setRejectAll(false)
			mb.setRejectAll(false)
			if rng.Bool(0.3) {
				if busy := ma.pendingChans(); len(busy) > 0 {
					c := busy[rng.Intn(len(busy))]
					ma.chans[c].completeOldest()
					mb.chans[c].completeOldest()
				}
			}
			if dense.retireIdx != jump.retireIdx || dense.fetchIdx != jump.fetchIdx {
				t.Fatalf("round %d: indices diverged: dense (r=%d f=%d) vs jump (r=%d f=%d)",
					r, dense.retireIdx, dense.fetchIdx, jump.retireIdx, jump.fetchIdx)
			}
			if len(dense.reads) != len(jump.reads) || dense.OutstandingReads() != jump.OutstandingReads() {
				t.Fatalf("round %d: outstanding reads diverged", r)
			}
			if ma.attempts() != mb.attempts() {
				t.Fatalf("round %d: attempts diverged: dense %d vs jump %d", r, ma.attempts(), mb.attempts())
			}
			for c := range ma.chans {
				if ma.chans[c].attempts != mb.chans[c].attempts ||
					len(ma.chans[c].pending) != len(mb.chans[c].pending) {
					t.Fatalf("round %d: channel %d diverged: dense (att=%d pend=%d) vs jump (att=%d pend=%d)",
						r, c, ma.chans[c].attempts, len(ma.chans[c].pending),
						mb.chans[c].attempts, len(mb.chans[c].pending))
				}
			}
			if sa != sb {
				t.Fatalf("round %d: stats diverged: dense %+v vs jump %+v", r, sa, sb)
			}
		}
	})
}
