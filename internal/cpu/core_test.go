package cpu

import (
	"testing"

	"fsmem/internal/dram"
	"fsmem/internal/stats"
	"fsmem/internal/trace"
)

// fakeMem is a controllable memory system: reads complete when the test
// releases them; capacity limits exercise backpressure.
type fakeMem struct {
	pending    []func()
	readCap    int
	writeCap   int
	writes     int
	rejectNext bool
}

func newFakeMem() *fakeMem { return &fakeMem{readCap: 1 << 30, writeCap: 1 << 30} }

func (m *fakeMem) EnqueueRead(domain int, a dram.Address, done func()) bool {
	if m.rejectNext || len(m.pending) >= m.readCap {
		return false
	}
	m.pending = append(m.pending, done)
	return true
}

func (m *fakeMem) EnqueueWrite(domain int, a dram.Address) bool {
	if m.writes >= m.writeCap {
		return false
	}
	m.writes++
	return true
}

func (m *fakeMem) completeOldest() {
	if len(m.pending) == 0 {
		return
	}
	done := m.pending[0]
	m.pending = m.pending[1:]
	done()
}

func TestPureComputeRetiresAtWidth(t *testing.T) {
	var st stats.Domain
	c := NewCore(0, trace.IdleStream{}, newFakeMem(), &st)
	for i := 0; i < 100; i++ {
		c.Cycle()
	}
	// 4-wide with a 64-entry ROB: steady state retires 4 per cycle (the
	// first cycle retires nothing because fetch happens after retire).
	if got := c.Retired(); got < 4*99-8 || got > 4*100 {
		t.Errorf("retired %d in 100 cycles, want ~396", got)
	}
	if st.Instructions != c.Retired() {
		t.Errorf("stats.Instructions %d != Retired %d", st.Instructions, c.Retired())
	}
	if st.CPUCycles != 100 {
		t.Errorf("CPUCycles = %d", st.CPUCycles)
	}
}

func TestReadBlocksRetirement(t *testing.T) {
	var st stats.Domain
	mem := newFakeMem()
	// One read after 10 instructions, then pure compute.
	s := &trace.SliceStream{Refs: []trace.Ref{{Gap: 10}, {Gap: 1 << 20}}}
	c := NewCore(0, s, mem, &st)
	for i := 0; i < 50; i++ {
		c.Cycle()
	}
	// Retirement must be stuck just before the read (10 instructions).
	if got := c.Retired(); got != 10 {
		t.Fatalf("retired %d while read outstanding, want 10", got)
	}
	if c.OutstandingReads() != 1 {
		t.Fatalf("outstanding reads = %d", c.OutstandingReads())
	}
	mem.completeOldest()
	for i := 0; i < 10; i++ {
		c.Cycle()
	}
	if got := c.Retired(); got <= 10 {
		t.Errorf("retirement did not resume after completion: %d", got)
	}
}

func TestROBLimitsFetchAhead(t *testing.T) {
	var st stats.Domain
	mem := newFakeMem()
	s := &trace.SliceStream{Refs: []trace.Ref{{Gap: 0}, {Gap: 1 << 20}}}
	c := NewCore(0, s, mem, &st)
	for i := 0; i < 100; i++ {
		c.Cycle()
	}
	// The read at instruction 0 blocks retirement entirely; fetch may run
	// at most ROBSize ahead.
	if got := c.Retired(); got != 0 {
		t.Fatalf("retired %d with blocked head, want 0", got)
	}
	if ahead := c.fetchIdx - c.retireIdx; ahead != int64(c.ROBSize) {
		t.Errorf("fetch ran %d ahead, want exactly ROB size %d", ahead, c.ROBSize)
	}
}

func TestMemoryLevelParallelism(t *testing.T) {
	var st stats.Domain
	mem := newFakeMem()
	// Four reads 4 instructions apart: all fit in the ROB window, so all
	// four must be outstanding simultaneously.
	s := &trace.SliceStream{Refs: []trace.Ref{
		{Gap: 4}, {Gap: 4}, {Gap: 4}, {Gap: 4}, {Gap: 1 << 20},
	}}
	c := NewCore(0, s, mem, &st)
	for i := 0; i < 20; i++ {
		c.Cycle()
	}
	if got := c.OutstandingReads(); got != 4 {
		t.Errorf("outstanding reads = %d, want 4 (MLP)", got)
	}
}

func TestWritesDoNotBlockRetirement(t *testing.T) {
	var st stats.Domain
	mem := newFakeMem()
	s := &trace.SliceStream{Refs: []trace.Ref{{Gap: 5, Write: true}, {Gap: 1 << 20}}}
	c := NewCore(0, s, mem, &st)
	for i := 0; i < 30; i++ {
		c.Cycle()
	}
	if got := c.Retired(); got < 60 {
		t.Errorf("write should not block retirement: retired %d", got)
	}
	if mem.writes != 1 {
		t.Errorf("writes enqueued = %d", mem.writes)
	}
}

func TestWriteBackpressureStallsFetch(t *testing.T) {
	var st stats.Domain
	mem := newFakeMem()
	mem.writeCap = 0
	s := &trace.SliceStream{Refs: []trace.Ref{{Gap: 5, Write: true}, {Gap: 1 << 20}}}
	c := NewCore(0, s, mem, &st)
	for i := 0; i < 20; i++ {
		c.Cycle()
	}
	// Fetch is stuck at the write; only the 5 prior instructions retire.
	if got := c.Retired(); got != 5 {
		t.Fatalf("retired %d under write backpressure, want 5", got)
	}
	mem.writeCap = 1
	for i := 0; i < 20; i++ {
		c.Cycle()
	}
	if got := c.Retired(); got <= 5 {
		t.Errorf("fetch did not resume after backpressure cleared: %d", got)
	}
}

func TestReadBackpressureRetries(t *testing.T) {
	var st stats.Domain
	mem := newFakeMem()
	mem.rejectNext = true
	s := &trace.SliceStream{Refs: []trace.Ref{{Gap: 2}, {Gap: 1 << 20}}}
	c := NewCore(0, s, mem, &st)
	for i := 0; i < 5; i++ {
		c.Cycle()
	}
	if len(mem.pending) != 0 {
		t.Fatal("read should have been rejected")
	}
	if c.OutstandingReads() != 0 {
		t.Fatal("rejected read left a ROB entry behind")
	}
	mem.rejectNext = false
	for i := 0; i < 5; i++ {
		c.Cycle()
	}
	if len(mem.pending) != 1 {
		t.Error("read not retried after backpressure cleared")
	}
}
