// Package addr translates between flat physical addresses and DRAM
// coordinates (channel, rank, bank, row, column), and expresses the spatial
// partitioning policies of the paper (Section 4): channel, rank, and bank
// partitioning are page-coloring constraints on which coordinates a
// security domain's data may occupy.
package addr

import (
	"fmt"

	"fsmem/internal/dram"
)

// LineBytes is the cache-line size; the low 6 address bits are the line offset.
const LineBytes = 64

// Interleave selects the bit order used to scatter consecutive lines.
type Interleave int

const (
	// RowRankBankCol places column bits lowest: consecutive lines walk a row
	// (maximizing row-buffer hits), then banks, then ranks. This is the
	// baseline-friendly open-page mapping.
	RowRankBankCol Interleave = iota
	// RowColRankBank places rank/bank bits lowest: consecutive lines scatter
	// across ranks and banks (maximizing parallelism, minimizing row hits).
	RowColRankBank
)

// String names the interleave policy.
func (iv Interleave) String() string {
	switch iv {
	case RowRankBankCol:
		return "row:rank:bank:col"
	case RowColRankBank:
		return "row:col:rank:bank"
	default:
		return fmt.Sprintf("Interleave(%d)", int(iv))
	}
}

// Mapper converts between physical addresses and DRAM coordinates for a
// given geometry. All geometry dimensions must be powers of two.
type Mapper struct {
	P  dram.Params
	IV Interleave

	chanBits, rankBits, bankBits, rowBits, colBits uint
}

func log2(n int) (uint, error) {
	if n <= 0 || n&(n-1) != 0 {
		return 0, fmt.Errorf("addr: %d is not a positive power of two", n)
	}
	var b uint
	for n > 1 {
		n >>= 1
		b++
	}
	return b, nil
}

// NewMapper builds a mapper; it fails if any geometry dimension is not a
// power of two.
func NewMapper(p dram.Params, iv Interleave) (Mapper, error) {
	m := Mapper{P: p, IV: iv}
	var err error
	if m.chanBits, err = log2(p.Channels); err != nil {
		return m, fmt.Errorf("channels: %w", err)
	}
	if m.rankBits, err = log2(p.RanksPerChan); err != nil {
		return m, fmt.Errorf("ranks: %w", err)
	}
	if m.bankBits, err = log2(p.BanksPerRank); err != nil {
		return m, fmt.Errorf("banks: %w", err)
	}
	if m.rowBits, err = log2(p.RowsPerBank); err != nil {
		return m, fmt.Errorf("rows: %w", err)
	}
	if m.colBits, err = log2(p.ColsPerRow); err != nil {
		return m, fmt.Errorf("cols: %w", err)
	}
	return m, nil
}

// Bits returns the number of meaningful physical address bits.
func (m Mapper) Bits() uint {
	return 6 + m.chanBits + m.rankBits + m.bankBits + m.rowBits + m.colBits
}

// Decode splits a physical address into DRAM coordinates.
func (m Mapper) Decode(phys uint64) dram.Address {
	line := phys >> 6
	take := func(bits uint) int {
		v := int(line & ((1 << bits) - 1))
		line >>= bits
		return v
	}
	var a dram.Address
	switch m.IV {
	case RowColRankBank:
		a.Bank = take(m.bankBits)
		a.Rank = take(m.rankBits)
		a.Channel = take(m.chanBits)
		a.Col = take(m.colBits)
	default: // RowRankBankCol
		a.Col = take(m.colBits)
		a.Bank = take(m.bankBits)
		a.Rank = take(m.rankBits)
		a.Channel = take(m.chanBits)
	}
	a.Row = take(m.rowBits)
	return a
}

// Encode is the inverse of Decode.
func (m Mapper) Encode(a dram.Address) uint64 {
	var line uint64
	var shift uint
	put := func(v int, bits uint) {
		line |= uint64(v) << shift
		shift += bits
	}
	switch m.IV {
	case RowColRankBank:
		put(a.Bank, m.bankBits)
		put(a.Rank, m.rankBits)
		put(a.Channel, m.chanBits)
		put(a.Col, m.colBits)
	default:
		put(a.Col, m.colBits)
		put(a.Bank, m.bankBits)
		put(a.Rank, m.rankBits)
		put(a.Channel, m.chanBits)
	}
	put(a.Row, m.rowBits)
	return line << 6
}

// PartitionKind is the spatial-partitioning policy of Section 4.
type PartitionKind int

const (
	// PartitionNone shares every rank and bank among all domains.
	PartitionNone PartitionKind = iota
	// PartitionRank dedicates disjoint rank sets to domains (page coloring
	// on rank bits); requires domains ≤ ranks.
	PartitionRank
	// PartitionBank dedicates disjoint bank indices (across all ranks) to
	// domains; requires domains ≤ banks per rank for the worst-case
	// same-rank pipeline the paper analyzes.
	PartitionBank
	// PartitionChannel dedicates whole channels to domains (no sharing, no
	// timing channel); requires domains ≤ channels.
	PartitionChannel
)

// String names the partition kind.
func (k PartitionKind) String() string {
	switch k {
	case PartitionNone:
		return "none"
	case PartitionRank:
		return "rank"
	case PartitionBank:
		return "bank"
	case PartitionChannel:
		return "channel"
	default:
		return fmt.Sprintf("PartitionKind(%d)", int(k))
	}
}

// Space is the set of (rank, bank) pairs a domain may occupy within one
// channel. Ranks and Banks are each non-empty; the space is their product.
type Space struct {
	Ranks []int
	Banks []int
}

// Contains reports whether the (rank, bank) pair lies in the space.
func (s Space) Contains(rank, bank int) bool {
	return containsInt(s.Ranks, rank) && containsInt(s.Banks, bank)
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func seq(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	return xs
}

// SpaceFor computes the page-coloring space for one domain under the given
// partitioning, mirroring the OS allocation policy described in §5.1.
func SpaceFor(kind PartitionKind, domain, numDomains int, p dram.Params) (Space, error) {
	if domain < 0 || domain >= numDomains {
		return Space{}, fmt.Errorf("addr: domain %d out of range [0,%d)", domain, numDomains)
	}
	switch kind {
	case PartitionNone, PartitionChannel:
		// Channel partitioning separates domains across channels; within its
		// own channel a domain sees everything.
		return Space{Ranks: seq(p.RanksPerChan), Banks: seq(p.BanksPerRank)}, nil
	case PartitionRank:
		if numDomains > p.RanksPerChan {
			return Space{}, fmt.Errorf("addr: rank partitioning needs domains (%d) <= ranks (%d)", numDomains, p.RanksPerChan)
		}
		per := p.RanksPerChan / numDomains
		ranks := make([]int, 0, per)
		for r := domain * per; r < (domain+1)*per; r++ {
			ranks = append(ranks, r)
		}
		return Space{Ranks: ranks, Banks: seq(p.BanksPerRank)}, nil
	case PartitionBank:
		if numDomains > p.BanksPerRank {
			return Space{}, fmt.Errorf("addr: bank partitioning needs domains (%d) <= banks per rank (%d)", numDomains, p.BanksPerRank)
		}
		per := p.BanksPerRank / numDomains
		banks := make([]int, 0, per)
		for b := domain * per; b < (domain+1)*per; b++ {
			banks = append(banks, b)
		}
		return Space{Ranks: seq(p.RanksPerChan), Banks: banks}, nil
	default:
		return Space{}, fmt.Errorf("addr: unknown partition kind %v", kind)
	}
}

// Disjoint reports whether two spaces can never map to the same bank.
func Disjoint(a, b Space) bool {
	for _, r := range a.Ranks {
		if containsInt(b.Ranks, r) {
			for _, bk := range a.Banks {
				if containsInt(b.Banks, bk) {
					return false
				}
			}
		}
	}
	return true
}
