package addr

import (
	"fmt"

	"fsmem/internal/dram"
)

// Routing selects how the multi-channel fabric assigns a memory request to
// a channel. It is the fabric-level analogue of PartitionKind: colored
// routing is the page-coloring policy of Section 4.1 applied at channel
// granularity, interleaved routing is the conventional shared mapping.
type Routing int

const (
	// RouteColored dedicates whole channels to contiguous blocks of
	// security domains (channel partitioning). Domains on different
	// channels share no hardware at all, so the composition is trivially
	// leakage-free: the system is the product of independent per-channel
	// machines.
	RouteColored Routing = iota
	// RouteInterleaved scatters every domain's lines across all channels
	// by address bits, the way commodity controllers stripe for bandwidth.
	// Channels become cross-domain shared resources, so a non-fixed
	// scheduler leaks timing information through channel contention.
	RouteInterleaved
)

// String names the routing policy.
func (r Routing) String() string {
	switch r {
	case RouteColored:
		return "colored"
	case RouteInterleaved:
		return "interleaved"
	default:
		return fmt.Sprintf("Routing(%d)", int(r))
	}
}

// RoutingByName parses a routing-policy name.
func RoutingByName(name string) (Routing, error) {
	switch name {
	case "colored":
		return RouteColored, nil
	case "interleaved":
		return RouteInterleaved, nil
	default:
		return 0, fmt.Errorf("addr: unknown routing %q (want colored or interleaved)", name)
	}
}

// RouteChannel computes the channel a request targets. Colored routing
// keys on the security domain alone (domains are assigned to channels in
// contiguous blocks, matching the legacy SimulateChannels layout);
// interleaved routing keys on the address's column bits, so consecutive
// lines of every domain stripe across all channels.
func RouteChannel(r Routing, domain, numDomains, channels int, a dram.Address) int {
	if channels <= 1 {
		return 0
	}
	switch r {
	case RouteInterleaved:
		return a.Col % channels
	default: // RouteColored
		return domain / (numDomains / channels)
	}
}
