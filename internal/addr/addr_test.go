package addr

import (
	"testing"
	"testing/quick"

	"fsmem/internal/dram"
)

func mapperOrFatal(t *testing.T, iv Interleave) Mapper {
	t.Helper()
	m, err := NewMapper(dram.DDR3_1600(), iv)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMapperRejectsNonPowerOfTwo(t *testing.T) {
	p := dram.DDR3_1600()
	p.RanksPerChan = 6
	if _, err := NewMapper(p, RowRankBankCol); err == nil {
		t.Fatal("6 ranks should be rejected")
	}
	p = dram.DDR3_1600()
	p.ColsPerRow = 0
	if _, err := NewMapper(p, RowRankBankCol); err == nil {
		t.Fatal("0 columns should be rejected")
	}
}

func TestMapperBits(t *testing.T) {
	m := mapperOrFatal(t, RowRankBankCol)
	// 6 offset + 7 col + 3 bank + 3 rank + 0 chan + 16 row = 35 bits.
	if got := m.Bits(); got != 35 {
		t.Errorf("Bits = %d, want 35", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, iv := range []Interleave{RowRankBankCol, RowColRankBank} {
		m := mapperOrFatal(t, iv)
		check := func(rank, bank, row, col uint16) bool {
			a := dram.Address{
				Rank: int(rank) % m.P.RanksPerChan,
				Bank: int(bank) % m.P.BanksPerRank,
				Row:  int(row) % m.P.RowsPerBank,
				Col:  int(col) % m.P.ColsPerRow,
			}
			return m.Decode(m.Encode(a)) == a
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%v: %v", iv, err)
		}
	}
}

func TestInterleavePlacesConsecutiveLines(t *testing.T) {
	// Under RowRankBankCol, consecutive lines walk columns of one row.
	m := mapperOrFatal(t, RowRankBankCol)
	a0 := m.Decode(0)
	a1 := m.Decode(64)
	if a1.Col != a0.Col+1 || a1.Bank != a0.Bank || a1.Row != a0.Row {
		t.Errorf("row-major interleave broken: %v -> %v", a0, a1)
	}
	// Under RowColRankBank, consecutive lines switch banks.
	m2 := mapperOrFatal(t, RowColRankBank)
	b0 := m2.Decode(0)
	b1 := m2.Decode(64)
	if b1.Bank != b0.Bank+1 {
		t.Errorf("bank interleave broken: %v -> %v", b0, b1)
	}
}

func TestInterleaveString(t *testing.T) {
	if RowRankBankCol.String() == "" || RowColRankBank.String() == "" || Interleave(99).String() == "" {
		t.Error("empty interleave names")
	}
}

func TestSpaceForRankPartitioning(t *testing.T) {
	p := dram.DDR3_1600()
	seen := map[int]bool{}
	for d := 0; d < 8; d++ {
		s, err := SpaceFor(PartitionRank, d, 8, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Ranks) != 1 || len(s.Banks) != p.BanksPerRank {
			t.Fatalf("domain %d space %+v, want 1 rank x all banks", d, s)
		}
		if seen[s.Ranks[0]] {
			t.Fatalf("rank %d assigned twice", s.Ranks[0])
		}
		seen[s.Ranks[0]] = true
	}
	// 2 domains, 8 ranks: 4 ranks each, disjoint.
	a, _ := SpaceFor(PartitionRank, 0, 2, p)
	b, _ := SpaceFor(PartitionRank, 1, 2, p)
	if len(a.Ranks) != 4 || len(b.Ranks) != 4 {
		t.Fatalf("2-domain rank split: %v / %v", a.Ranks, b.Ranks)
	}
	if !Disjoint(a, b) {
		t.Error("2-domain rank spaces overlap")
	}
}

func TestSpaceForBankPartitioning(t *testing.T) {
	p := dram.DDR3_1600()
	for d := 0; d < 8; d++ {
		s, err := SpaceFor(PartitionBank, d, 8, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Banks) != 1 || len(s.Ranks) != p.RanksPerChan {
			t.Fatalf("domain %d space %+v, want all ranks x 1 bank", d, s)
		}
	}
	a, _ := SpaceFor(PartitionBank, 0, 8, p)
	b, _ := SpaceFor(PartitionBank, 1, 8, p)
	if !Disjoint(a, b) {
		t.Error("bank partitions overlap")
	}
}

func TestSpaceForNoneIsEverything(t *testing.T) {
	p := dram.DDR3_1600()
	s, err := SpaceFor(PartitionNone, 3, 8, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Ranks) != p.RanksPerChan || len(s.Banks) != p.BanksPerRank {
		t.Fatalf("none-partition space %+v", s)
	}
	if !s.Contains(7, 7) || s.Contains(8, 0) {
		t.Error("Contains wrong")
	}
}

func TestSpaceForErrors(t *testing.T) {
	p := dram.DDR3_1600()
	if _, err := SpaceFor(PartitionRank, 0, 9, p); err == nil {
		t.Error("9 domains on 8 ranks should fail")
	}
	if _, err := SpaceFor(PartitionBank, 0, 9, p); err == nil {
		t.Error("9 domains on 8 banks should fail")
	}
	if _, err := SpaceFor(PartitionRank, 8, 8, p); err == nil {
		t.Error("domain out of range should fail")
	}
	if _, err := SpaceFor(PartitionKind(42), 0, 8, p); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestPartitionKindString(t *testing.T) {
	names := map[PartitionKind]string{
		PartitionNone: "none", PartitionRank: "rank", PartitionBank: "bank", PartitionChannel: "channel",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

// TestPartitionDisjointnessProperty: for any valid (kind, count), all
// domain spaces are pairwise disjoint under rank/bank partitioning.
func TestPartitionDisjointnessProperty(t *testing.T) {
	p := dram.DDR3_1600()
	for _, kind := range []PartitionKind{PartitionRank, PartitionBank} {
		for _, n := range []int{2, 4, 8} {
			spaces := make([]Space, n)
			for d := 0; d < n; d++ {
				s, err := SpaceFor(kind, d, n, p)
				if err != nil {
					t.Fatal(err)
				}
				spaces[d] = s
			}
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if !Disjoint(spaces[i], spaces[j]) {
						t.Errorf("%v/%d: domains %d and %d overlap", kind, n, i, j)
					}
				}
			}
		}
	}
}
