package model

import (
	"math"
	"testing"

	"fsmem/internal/dram"
	"fsmem/internal/sim"
	"fsmem/internal/workload"
)

func TestServiceRateAndUtilization(t *testing.T) {
	d := FSDomain{Q: 56, Slots: 1}
	if got := d.ServiceRate(); math.Abs(got-1.0/56) > 1e-12 {
		t.Errorf("ServiceRate = %v", got)
	}
	if got := d.Utilization(0.5 / 56); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Utilization = %v", got)
	}
	zero := FSDomain{}
	if zero.ServiceRate() != 0 || !math.IsInf(zero.Utilization(1), 1) {
		t.Error("degenerate domain handling")
	}
}

func TestReadLatencyShape(t *testing.T) {
	p := dram.DDR3_1600()
	d := FSDomain{Q: 56, Slots: 1}
	// At zero load the latency is the slot residual plus the pipeline.
	idle := d.ReadLatency(0, p)
	want := 28.0 + float64(p.TRCD+p.TCAS+p.TBURST)
	if math.Abs(idle-want) > 1e-9 {
		t.Errorf("idle latency %v, want %v", idle, want)
	}
	// Monotone in load, diverging at saturation.
	prev := idle
	for _, rho := range []float64{0.2, 0.5, 0.8, 0.95} {
		l := d.ReadLatency(rho/56, p)
		if l <= prev {
			t.Errorf("latency not increasing at rho=%v: %v <= %v", rho, l, prev)
		}
		prev = l
	}
	if !math.IsInf(d.ReadLatency(1.0/56, p), 1) {
		t.Error("latency at saturation should be infinite")
	}
}

func TestSaturationLambdaInvertsLatency(t *testing.T) {
	p := dram.DDR3_1600()
	d := FSDomain{Q: 56, Slots: 1}
	for _, bound := range []float64{100, 200, 500} {
		lambda := d.SaturationLambda(bound, p)
		if lambda <= 0 {
			t.Fatalf("bound %v: lambda %v", bound, lambda)
		}
		got := d.ReadLatency(lambda, p)
		if math.Abs(got-bound) > 1e-6 {
			t.Errorf("bound %v: ReadLatency(SaturationLambda) = %v", bound, got)
		}
	}
	if d.SaturationLambda(10, p) != 0 {
		t.Error("unreachable bound should return 0")
	}
}

func TestPeakBusUtilizationMatchesPaper(t *testing.T) {
	p := dram.DDR3_1600()
	if got := PeakBusUtilization(7, p); math.Abs(got-4.0/7) > 1e-12 {
		t.Errorf("l=7 peak = %v", got)
	}
	if got := PeakBusUtilization(43, p); math.Abs(got-4.0/43) > 1e-12 {
		t.Errorf("l=43 peak = %v", got)
	}
	if PeakBusUtilization(0, p) != 0 {
		t.Error("degenerate spacing")
	}
}

// TestModelAgainstSimulator validates the analytical latency against the
// cycle-accurate simulator at a sub-saturation load: the model is a
// lower-bound estimate (Poisson-ish arrivals), so the simulator should land
// at or above it but within a small factor.
func TestModelAgainstSimulator(t *testing.T) {
	p := dram.DDR3_1600()
	// A light workload keeps FS_RP in the open-queue regime the model
	// assumes (the ROB closes the loop near saturation and self-throttles
	// below any open-arrival prediction, so validation belongs at low rho).
	prof := workload.Synthetic("light", 0.5)
	prof.Burstiness = 0.05 // keep arrivals close to the model's assumption
	mix := workload.Mix{Name: "model", Profiles: make([]workload.Profile, 8)}
	for i := range mix.Profiles {
		mix.Profiles[i] = prof
	}
	cfg := sim.DefaultConfig(mix, sim.FSRankPart)
	cfg.TargetReads = 4000
	res, err := sim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := res.Run
	dom := run.Domains[0]
	lambda := float64(dom.Reads+dom.Writes) / float64(run.BusCycles)
	d := FSDomain{Q: 56, Slots: 1}
	rho := d.Utilization(lambda)
	predicted := d.ReadLatency(lambda, p)
	measured := dom.AvgReadLatency()
	t.Logf("lambda=%.5f rho=%.2f predicted=%.1f measured=%.1f", lambda, rho, predicted, measured)
	if rho > 0.7 {
		t.Fatalf("test workload too heavy for the open-queue regime: rho=%.2f", rho)
	}
	if measured < predicted*0.6 || measured > predicted*1.8 {
		t.Errorf("simulator (%.1f) outside [0.6, 1.8]x the model (%.1f)", measured, predicted)
	}
}

func TestTPRoundLatencyConsistency(t *testing.T) {
	p := dram.DDR3_1600()
	// TP with turn 15 over 8 domains has the same slotted form as FS with
	// Q=120 — and must be slower than FS_RP's Q=56 at equal load.
	lambda := 0.3 / 120
	tp := TPRoundLatency(15, 8, lambda, p)
	fs := FSDomain{Q: 56, Slots: 1}.ReadLatency(lambda, p)
	if tp <= fs {
		t.Errorf("TP latency %v should exceed FS_RP latency %v", tp, fs)
	}
}
