// Package model provides first-order analytical predictions for the Fixed
// Service pipelines — closed-form latency and bandwidth expressions that
// the tests validate against the cycle-accurate simulator. They are useful
// for SLA planning (how much bandwidth does a domain need before its
// latency explodes?) without running a simulation.
package model

import (
	"math"

	"fsmem/internal/dram"
)

// FSDomain describes one domain's service under a Fixed Service schedule.
type FSDomain struct {
	Q     float64 // interval length in bus cycles
	Slots float64 // issue slots per interval for this domain
}

// ServiceRate returns the domain's guaranteed transactions per bus cycle.
func (d FSDomain) ServiceRate() float64 {
	if d.Q <= 0 {
		return 0
	}
	return d.Slots / d.Q
}

// Utilization returns the offered load as a fraction of the guaranteed
// service (rho).
func (d FSDomain) Utilization(lambda float64) float64 {
	mu := d.ServiceRate()
	if mu <= 0 {
		return math.Inf(1)
	}
	return lambda / mu
}

// ReadLatency predicts the mean demand-read latency in bus cycles for a
// domain injecting lambda transactions per bus cycle:
//
//	latency = queue wait (M/D/1) + slot residual + pipeline delay
//	        = rho*T/(2(1-rho))  + T/2           + tRCD + tCAS + tBURST
//
// where T = Q/Slots is the per-slot period. The M/D/1 form follows from
// deterministic service at fixed slots. It assumes OPEN arrivals: a real
// core's reorder buffer closes the loop and self-throttles near
// saturation, so the prediction is accurate at low utilization and an
// overestimate as rho approaches 1 (the simulator's closed-loop latency
// plateaus around MLP x T instead of diverging). The tests validate the
// low-rho regime against the cycle-accurate simulator.
func (d FSDomain) ReadLatency(lambda float64, p dram.Params) float64 {
	mu := d.ServiceRate()
	if mu <= 0 {
		return math.Inf(1)
	}
	rho := lambda / mu
	if rho >= 1 {
		return math.Inf(1)
	}
	t := 1 / mu
	queue := rho * t / (2 * (1 - rho))
	residual := t / 2
	pipeline := float64(p.TRCD + p.TCAS + p.TBURST)
	return queue + residual + pipeline
}

// SaturationLambda returns the injection rate at which the predicted
// latency crosses the given bound — the knee of the latency curve.
func (d FSDomain) SaturationLambda(latencyBound float64, p dram.Params) float64 {
	mu := d.ServiceRate()
	if mu <= 0 {
		return 0
	}
	// Solve rho*T/(2(1-rho)) + T/2 + c = bound for rho.
	t := 1 / mu
	c := float64(p.TRCD + p.TCAS + p.TBURST)
	rhs := latencyBound - t/2 - c
	if rhs <= 0 {
		return 0
	}
	// rho = 2*rhs / (t + 2*rhs)
	rho := 2 * rhs / (t + 2*rhs)
	return rho * mu
}

// PeakBusUtilization returns the theoretical peak data-bus utilization of
// a uniform-slot FS schedule with the given slot spacing.
func PeakBusUtilization(slotSpacing int, p dram.Params) float64 {
	if slotSpacing <= 0 {
		return 0
	}
	return float64(p.TBURST) / float64(slotSpacing)
}

// TPRoundLatency predicts the mean read latency under fine-grained
// temporal partitioning with the given turn length and domain count: the
// owner's slot recurs every turn*domains cycles, so the same slotted-
// service form applies with T = turn * domains.
func TPRoundLatency(turn float64, domains int, lambda float64, p dram.Params) float64 {
	d := FSDomain{Q: turn * float64(domains), Slots: 1}
	return d.ReadLatency(lambda, p)
}
