package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"fsmem/internal/dram"
)

// Trace files are JSONL: a header object on the first line, then one event
// object per line. Fields are emitted in a fixed order by hand so exports
// are byte-deterministic (encoding/json map iteration never touches them).
//
//	{"fsmem_trace":1,"events":123,"dropped":0}
//	{"c":40,"k":"cmd","dom":0,"cmd":"ACT","rank":0,"bank":1,"row":17,"col":0,"arg":0,"sup":0,"w":0}
//
// The Chrome exporter emits the same events in the trace_event JSON-array
// format, loadable in Perfetto / chrome://tracing: commands and slot events
// as 1-cycle slices, delivered reads as latency-long slices, reconfiguration
// as instants. Cycle numbers are mapped 1:1 onto microseconds.

// jsonlEvent is the parse shape of one exported line (reader side only; the
// writer formats by hand).
type jsonlEvent struct {
	C   int64  `json:"c"`
	K   string `json:"k"`
	Dom int16  `json:"dom"`
	Ch  int16  `json:"ch"` // absent in pre-fabric traces; defaults to 0

	Cmd  string `json:"cmd"`
	Rank int16  `json:"rank"`
	Bank int16  `json:"bank"`
	Row  int32  `json:"row"`
	Col  int32  `json:"col"`
	Arg  int64  `json:"arg"`
	Sup  int    `json:"sup"`
	W    int    `json:"w"`
}

type jsonlHeader struct {
	Version int   `json:"fsmem_trace"`
	Events  int   `json:"events"`
	Dropped int64 `json:"dropped"`
}

var kindByName = func() map[string]EventKind {
	m := make(map[string]EventKind, len(eventNames))
	for k, n := range eventNames {
		m[n] = EventKind(k)
	}
	return m
}()

var cmdByName = func() map[string]dram.Kind {
	m := map[string]dram.Kind{}
	for k := dram.KindActivate; k <= dram.KindPowerUp; k++ {
		m[k.String()] = k
	}
	return m
}()

// WriteJSONL serializes the tracer's events (header line first).
func WriteJSONL(w io.Writer, t *Tracer) error {
	bw := bufio.NewWriter(w)
	events := t.Events()
	if _, err := fmt.Fprintf(bw, `{"fsmem_trace":1,"events":%d,"dropped":%d}`+"\n",
		len(events), t.Dropped()); err != nil {
		return err
	}
	for _, e := range events {
		sup, wr := 0, 0
		if e.Flags&FlagSuppressed != 0 {
			sup = 1
		}
		if e.Flags&FlagWrite != 0 {
			wr = 1
		}
		cmd := ""
		if e.Kind == EvCmd {
			cmd = e.Cmd.String()
		}
		if _, err := fmt.Fprintf(bw,
			`{"c":%d,"k":"%s","dom":%d,"ch":%d,"cmd":"%s","rank":%d,"bank":%d,"row":%d,"col":%d,"arg":%d,"sup":%d,"w":%d}`+"\n",
			e.Cycle, e.Kind, e.Domain, e.Chan, cmd, e.Rank, e.Bank, e.Row, e.Col, e.Arg, sup, wr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace (cmd/tracedump's ingestion path). The
// header line is validated when present; unknown event kinds are an error
// so a corrupted file cannot silently render as an empty timeline.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if lineNo == 1 && strings.Contains(line, `"fsmem_trace"`) {
			var h jsonlHeader
			if err := json.Unmarshal([]byte(line), &h); err != nil {
				return nil, fmt.Errorf("obs: trace header: %w", err)
			}
			if h.Version != 1 {
				return nil, fmt.Errorf("obs: unsupported trace version %d", h.Version)
			}
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal([]byte(line), &je); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		kind, ok := kindByName[je.K]
		if !ok {
			return nil, fmt.Errorf("obs: trace line %d: unknown event kind %q", lineNo, je.K)
		}
		e := Event{
			Cycle: je.C, Kind: kind, Arg: je.Arg, Domain: je.Dom, Chan: je.Ch,
			Rank: je.Rank, Bank: je.Bank, Row: je.Row, Col: je.Col,
		}
		if je.Sup != 0 {
			e.Flags |= FlagSuppressed
		}
		if je.W != 0 {
			e.Flags |= FlagWrite
		}
		if kind == EvCmd {
			ck, ok := cmdByName[je.Cmd]
			if !ok {
				return nil, fmt.Errorf("obs: trace line %d: unknown command %q", lineNo, je.Cmd)
			}
			e.Cmd = ck
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("obs: trace has no events")
	}
	return out, nil
}

// WriteChrome serializes the tracer's events in Chrome trace_event format.
func WriteChrome(w io.Writer, t *Tracer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprint(bw, "[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...interface{}) error {
		if !first {
			if _, err := fmt.Fprint(bw, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := fmt.Fprintf(bw, format, args...)
		return err
	}
	for _, e := range t.Events() {
		var err error
		switch e.Kind {
		case EvCmd:
			name := e.Cmd.String()
			if e.Flags&FlagSuppressed != 0 {
				name += "*"
			}
			err = emit(`{"name":"%s","cat":"bus","ph":"X","ts":%d,"dur":1,"pid":0,"tid":%d,"args":{"rank":%d,"bank":%d,"row":%d,"col":%d}}`,
				name, e.Cycle, e.Domain, e.Rank, e.Bank, e.Row, e.Col)
		case EvDeliver:
			err = emit(`{"name":"read","cat":"req","ph":"X","ts":%d,"dur":%d,"pid":1,"tid":%d,"args":{"rank":%d,"bank":%d,"row":%d,"col":%d}}`,
				e.Cycle-e.Arg, e.Arg, e.Domain, e.Rank, e.Bank, e.Row, e.Col)
		case EvDummySlot:
			err = emit(`{"name":"slot:%s","cat":"fs","ph":"i","ts":%d,"pid":0,"tid":%d,"s":"t"}`,
				slotSubName(e.Arg), e.Cycle, e.Domain)
		case EvReconfigure:
			err = emit(`{"name":"reconfigure:%s","cat":"ctl","ph":"i","ts":%d,"pid":0,"tid":0,"s":"g"}`,
				reconfigPhaseName(e.Arg), e.Cycle)
		case EvQueueFull:
			err = emit(`{"name":"queue-full","cat":"mem","ph":"i","ts":%d,"pid":1,"tid":%d,"s":"t"}`,
				e.Cycle, e.Domain)
		default:
			// Enqueue/first-command/write/dummy/prefetch retirements add
			// little over the slices above; keep the Chrome view compact.
			continue
		}
		if err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(bw, "\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func slotSubName(arg int64) string {
	switch arg {
	case SlotDummy:
		return "dummy"
	case SlotPowerDown:
		return "powerdown"
	case SlotSkip:
		return "skip"
	case SlotRefresh:
		return "refresh"
	}
	return "?"
}

func reconfigPhaseName(arg int64) string {
	switch arg {
	case ReconfigBegin:
		return "begin"
	case ReconfigDrained:
		return "drained"
	case ReconfigDone:
		return "done"
	}
	return "?"
}

// Timeline renders events as a human-readable per-cycle listing — the
// schedule-deviation forensics view cmd/tracedump prints. Events stay in
// recording order; each line carries the bus cycle, the owning domain, and
// a one-line description.
func Timeline(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	// The channel column only appears for multi-channel traces, so
	// single-channel timelines render exactly as they always have.
	multiChan := false
	for _, e := range events {
		if e.Chan != 0 {
			multiChan = true
			break
		}
	}
	for _, e := range events {
		dom := fmt.Sprintf("dom%d", e.Domain)
		if e.Domain < 0 {
			dom = "-"
		}
		if multiChan {
			dom = fmt.Sprintf("ch%d/%s", e.Chan, dom)
		}
		var desc string
		switch e.Kind {
		case EvCmd:
			sup := ""
			if e.Flags&FlagSuppressed != 0 {
				sup = " (suppressed)"
			}
			switch e.Cmd {
			case dram.KindRefresh, dram.KindPowerDown, dram.KindPowerUp:
				desc = fmt.Sprintf("%-4s r%d%s", e.Cmd, e.Rank, sup)
			case dram.KindActivate:
				desc = fmt.Sprintf("%-4s r%d/b%d/row%d%s", e.Cmd, e.Rank, e.Bank, e.Row, sup)
			case dram.KindPrecharge:
				desc = fmt.Sprintf("%-4s r%d/b%d%s", e.Cmd, e.Rank, e.Bank, sup)
			default:
				desc = fmt.Sprintf("%-4s r%d/b%d/col%d%s", e.Cmd, e.Rank, e.Bank, e.Col, sup)
			}
		case EvEnqueue:
			desc = fmt.Sprintf("enqueue read r%d/b%d/row%d/col%d", e.Rank, e.Bank, e.Row, e.Col)
		case EvFirstCmd:
			op := "read"
			if e.Flags&FlagWrite != 0 {
				op = "write"
			}
			desc = fmt.Sprintf("first cmd for %s r%d/b%d/row%d (queued %d cycles)", op, e.Rank, e.Bank, e.Row, e.Arg)
		case EvDeliver:
			desc = fmt.Sprintf("deliver read r%d/b%d/row%d/col%d latency=%d", e.Rank, e.Bank, e.Row, e.Col, e.Arg)
		case EvWriteDone:
			desc = fmt.Sprintf("write retired r%d/b%d/row%d", e.Rank, e.Bank, e.Row)
		case EvDummy:
			desc = fmt.Sprintf("dummy retired r%d/b%d", e.Rank, e.Bank)
		case EvPrefetchFill:
			desc = fmt.Sprintf("prefetch filled r%d/b%d/row%d/col%d", e.Rank, e.Bank, e.Row, e.Col)
		case EvDummySlot:
			desc = fmt.Sprintf("slot substituted: %s", slotSubName(e.Arg))
		case EvQueueFull:
			q := "read queue"
			if e.Arg == 1 {
				q = "write buffer"
			}
			desc = fmt.Sprintf("enqueue rejected: %s full", q)
		case EvReconfigure:
			desc = fmt.Sprintf("reconfigure %s", reconfigPhaseName(e.Arg))
		default:
			desc = fmt.Sprintf("event kind %d", e.Kind)
		}
		if _, err := fmt.Fprintf(bw, "cycle %10d  %-6s %s\n", e.Cycle, dom, desc); err != nil {
			return err
		}
	}
	return bw.Flush()
}
