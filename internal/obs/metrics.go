// Package obs is the simulator's observability layer: a zero-allocation
// metrics registry, a bounded ring-buffer command/event tracer, and the
// profiling hooks the command-line tools expose.
//
// Design constraints (see DESIGN.md §9):
//
//   - The hot path never allocates and never locks. Metric primitives are
//     plain struct fields incremented in place; the tracer writes fixed-size
//     Event values into a preallocated ring. Registration and snapshotting
//     happen outside the cycle loop.
//   - Everything costs nothing when disabled: every Tracer method nil-checks
//     its receiver first, so an unobserved run pays one predictable branch
//     per instrumentation point (verified by BenchmarkSimulateTraceOff).
//   - Output is deterministic: snapshots are sorted by name, traces replay
//     in recording order, and the exporters emit hand-formatted lines so a
//     run's trace is byte-identical across worker counts and repeat runs.
package obs

import (
	"fmt"
	"sort"
)

// Counter is a monotonically increasing count. The zero value is ready to
// use; incrementing is a plain field add, safe for single-goroutine hot
// paths (one simulation runs on one goroutine by construction).
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d.
func (c *Counter) Add(d int64) { c.n += d }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Gauge is a point-in-time value, overwritten rather than accumulated.
type Gauge struct{ v float64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Hist is a fixed-bucket histogram: bounds are chosen at registration and
// never reallocated, so Observe is a linear scan over a handful of int64
// fields — no allocation, no locking.
type Hist struct {
	bounds  []int64 // upper bounds, ascending; an implicit +Inf bucket follows
	buckets []int64 // len(bounds)+1
	count   int64
	sum     int64
}

// NewHist builds a histogram with the given ascending upper bounds.
func NewHist(bounds []int64) *Hist {
	b := append([]int64(nil), bounds...)
	return &Hist{bounds: b, buckets: make([]int64, len(b)+1)}
}

// Observe records one value.
func (h *Hist) Observe(v int64) {
	h.count++
	h.sum += v
	for i, ub := range h.bounds {
		if v <= ub {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(h.bounds)]++
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count }

// Sum returns the sum of observations.
func (h *Hist) Sum() int64 { return h.sum }

// Metric is one named value in a snapshot.
type Metric struct {
	Name  string
	Value float64
}

// Snapshot is an end-of-run reading of every registered metric, sorted by
// name.
type Snapshot []Metric

// Get returns the metric by name.
func (s Snapshot) Get(name string) (float64, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i].Name >= name })
	if i < len(s) && s[i].Name == name {
		return s[i].Value, true
	}
	return 0, false
}

// Format renders the snapshot as aligned "name value" lines.
func (s Snapshot) Format() string {
	w := 0
	for _, m := range s {
		if len(m.Name) > w {
			w = len(m.Name)
		}
	}
	out := make([]byte, 0, len(s)*(w+16))
	for _, m := range s {
		out = append(out, fmt.Sprintf("%-*s %g\n", w, m.Name, m.Value)...)
	}
	return string(out)
}

// MetricSource is anything that can contribute named values to a snapshot.
// Subsystems that already keep plain-struct counters (dram channel counters,
// per-domain statistics, scheduler internals) implement this instead of
// migrating their fields into registry-owned primitives: the hot path stays
// exactly as cheap, and the registry reads the fields once at end of run.
type MetricSource interface {
	ObsMetrics(emit func(name string, value float64))
}

// SourceFunc adapts a function to MetricSource.
type SourceFunc func(emit func(name string, value float64))

// ObsMetrics implements MetricSource.
func (f SourceFunc) ObsMetrics(emit func(name string, value float64)) { f(emit) }

type entry struct {
	name string
	read func() float64
}

type sourceEntry struct {
	prefix string
	src    MetricSource
}

// Registry collects metric primitives and sources for an end-of-run
// snapshot. It is not safe for concurrent use; one registry belongs to one
// simulation run (the parallel engine gives every shard its own).
//
// A nil *Registry is valid everywhere: registration returns detached (but
// usable) primitives and Snapshot returns nil, so code paths can register
// unconditionally.
type Registry struct {
	entries []entry
	sources []sourceEntry
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers and returns a named counter.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	if r != nil {
		r.entries = append(r.entries, entry{name, func() float64 { return float64(c.n) }})
	}
	return c
}

// Gauge registers and returns a named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{}
	if r != nil {
		r.entries = append(r.entries, entry{name, func() float64 { return g.v }})
	}
	return g
}

// Histogram registers and returns a named fixed-bucket histogram. The
// snapshot carries cumulative per-bucket counts (name_le_<bound>,
// name_le_inf) plus name_count and name_sum.
func (r *Registry) Histogram(name string, bounds []int64) *Hist {
	h := NewHist(bounds)
	if r != nil {
		r.sources = append(r.sources, sourceEntry{"", SourceFunc(func(emit func(string, float64)) {
			cum := int64(0)
			for i, ub := range h.bounds {
				cum += h.buckets[i]
				emit(fmt.Sprintf("%s_le_%d", name, ub), float64(cum))
			}
			emit(name+"_le_inf", float64(h.count))
			emit(name+"_count", float64(h.count))
			emit(name+"_sum", float64(h.sum))
		})})
	}
	return h
}

// Source registers a metric source; every name it emits is prefixed with
// "prefix." (unless prefix is empty).
func (r *Registry) Source(prefix string, src MetricSource) {
	if r == nil || src == nil {
		return
	}
	r.sources = append(r.sources, sourceEntry{prefix, src})
}

// Snapshot reads every registered primitive and source into a sorted
// Snapshot. Call it after the run; it is the only allocating operation.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	out := make(Snapshot, 0, len(r.entries)+4*len(r.sources))
	for _, e := range r.entries {
		out = append(out, Metric{e.name, e.read()})
	}
	for _, s := range r.sources {
		prefix := s.prefix
		s.src.ObsMetrics(func(name string, v float64) {
			if prefix != "" {
				name = prefix + "." + name
			}
			out = append(out, Metric{name, v})
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
