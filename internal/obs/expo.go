package obs

import (
	"io"
	"strconv"
	"strings"
)

// expoName maps a snapshot metric name onto the Prometheus exposition
// grammar: [a-zA-Z_:][a-zA-Z0-9_:]*. The registry's dotted, per-domain
// names ("dram.acts", "dom3.ipc") become underscore-separated; anything
// else outside the grammar is folded to '_' too.
func expoName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (untyped samples, one per line). The snapshot is already sorted
// by name and every name is sanitized deterministically, so two equal
// snapshots serialize to identical bytes — the daemon's /metrics endpoint
// and its tests rely on that.
func WritePrometheus(w io.Writer, s Snapshot) error {
	var b strings.Builder
	for _, m := range s {
		b.WriteString(expoName(m.Name))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(m.Value, 'g', -1, 64))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
