package obs

import (
	"io"
	"strconv"
	"strings"
)

// expoName maps a snapshot metric name onto the Prometheus exposition
// grammar: [a-zA-Z_:][a-zA-Z0-9_:]*. The registry's dotted, per-domain
// names ("dram.acts", "dom3.ipc") become underscore-separated; anything
// else outside the grammar is folded to '_' too.
func expoName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// LabelName folds an arbitrary instance string (a worker URL, a file
// path) into a token safe to embed inside a dotted metric name:
// lowercase letters and digits survive, every other byte becomes '_',
// and runs of '_' collapse so "http://10.0.0.7:8377" and
// "http://10.0.0.7:8377/" map to the same label. Deterministic, so two
// registries over the same fleet emit identical metric names.
func LabelName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	lastUnderscore := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			b.WriteByte(c)
			lastUnderscore = false
		case c >= 'A' && c <= 'Z':
			b.WriteByte(c - 'A' + 'a')
			lastUnderscore = false
		default:
			if !lastUnderscore {
				b.WriteByte('_')
			}
			lastUnderscore = true
		}
	}
	return strings.Trim(b.String(), "_")
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (untyped samples, one per line). The snapshot is already sorted
// by name and every name is sanitized deterministically, so two equal
// snapshots serialize to identical bytes — the daemon's /metrics endpoint
// and its tests rely on that.
func WritePrometheus(w io.Writer, s Snapshot) error {
	var b strings.Builder
	for _, m := range s {
		b.WriteString(expoName(m.Name))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(m.Value, 'g', -1, 64))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
