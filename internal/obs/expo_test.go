package obs

import (
	"strings"
	"testing"
)

func TestExpoName(t *testing.T) {
	cases := map[string]string{
		"dram.acts":          "dram_acts",
		"dom3.ipc":           "dom3_ipc",
		"fsmemd.jobs.done":   "fsmemd_jobs_done",
		"lat_le_128":         "lat_le_128",
		"3cores":             "_3cores",
		"a-b c":              "a_b_c",
		"already_legal:name": "already_legal:name",
	}
	for in, want := range cases {
		if got := expoName(in); got != want {
			t.Errorf("expoName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	s := Snapshot{
		{Name: "fsmemd.cache.hit_ratio", Value: 0.5},
		{Name: "fsmemd.jobs.executed", Value: 3},
	}
	var b strings.Builder
	if err := WritePrometheus(&b, s); err != nil {
		t.Fatal(err)
	}
	want := "fsmemd_cache_hit_ratio 0.5\nfsmemd_jobs_executed 3\n"
	if b.String() != want {
		t.Fatalf("exposition:\n%q\nwant:\n%q", b.String(), want)
	}
	// Determinism: equal snapshots serialize to identical bytes.
	var b2 strings.Builder
	WritePrometheus(&b2, s)
	if b.String() != b2.String() {
		t.Fatal("exposition is not deterministic")
	}
}
