package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// StartProfiling turns on whichever of the three Go profilers the caller
// named (empty path = off) and returns a stop function that flushes and
// closes them. The command-line tools share it so -cpuprofile /
// -memprofile / execution-trace flags behave identically everywhere.
//
// The CPU profile and execution trace run from this call until stop; the
// heap profile is written at stop time (after a GC, so it reflects live
// memory, not transient garbage).
func StartProfiling(cpuPath, memPath, tracePath string) (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	if tracePath != "" {
		traceFile, err = os.Create(tracePath)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("obs: execution trace: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("obs: execution trace: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
					firstErr = err
				}
				if err := f.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		return firstErr
	}, nil
}
