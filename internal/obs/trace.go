package obs

import "fsmem/internal/dram"

// EventKind classifies a trace event.
type EventKind uint8

// The event taxonomy. Command events mirror the DRAM bus; span events mark
// the per-domain request lifecycle (enqueue -> first command -> delivery);
// the remaining kinds record FS slot substitutions and controller-visible
// control-plane transitions.
const (
	// EvCmd is one command on the channel's command bus (Cmd/Rank/Bank/
	// Row/Col from the command; FlagSuppressed marks energy-elided ops).
	EvCmd EventKind = iota
	// EvEnqueue is a demand read entering its domain's transaction queue.
	EvEnqueue
	// EvFirstCmd is a request's first DRAM command issuing; Arg is the
	// queue delay in bus cycles.
	EvFirstCmd
	// EvDeliver is demand-read data delivered to the core; Arg is the full
	// arrival-to-delivery latency in bus cycles.
	EvDeliver
	// EvWriteDone is a write-back retiring from the controller.
	EvWriteDone
	// EvDummy is a completed dummy operation (FS shaping traffic).
	EvDummy
	// EvPrefetchFill is a completed prefetch filling the prefetch buffer.
	EvPrefetchFill
	// EvDummySlot is a Fixed Service slot that carried no demand
	// transaction; Arg distinguishes the substitution (SlotDummy,
	// SlotPowerDown, SlotSkip, SlotRefresh).
	EvDummySlot
	// EvQueueFull is a rejected enqueue (Arg 0 = read queue, 1 = write
	// buffer).
	EvQueueFull
	// EvReconfigure marks SLA reconfiguration phases; Arg is a
	// Reconfig* phase constant.
	EvReconfigure
)

var eventNames = [...]string{
	EvCmd:          "cmd",
	EvEnqueue:      "enq",
	EvFirstCmd:     "first",
	EvDeliver:      "deliver",
	EvWriteDone:    "wdone",
	EvDummy:        "dummy",
	EvPrefetchFill: "pfill",
	EvDummySlot:    "slot",
	EvQueueFull:    "qfull",
	EvReconfigure:  "reconf",
}

// String names the kind as it appears in exports.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "ev?"
}

// EvDummySlot substitution codes (Event.Arg).
const (
	SlotDummy     = 0 // a fabricated dummy transaction filled the slot
	SlotPowerDown = 1 // the slot's rank set powered down instead (energy opt. 3)
	SlotSkip      = 2 // transient hazard: the slot idled, grid unchanged
	SlotRefresh   = 3 // the slot carried a refresh for one of the domain's ranks
)

// EvReconfigure phase codes (Event.Arg).
const (
	ReconfigBegin   = 0 // drain requested, cores stalled
	ReconfigDrained = 1 // controller and pipeline fully quiesced
	ReconfigDone    = 2 // new FS engine installed
)

// Event flags.
const (
	// FlagSuppressed marks a command whose timing footprint was modeled but
	// whose DRAM operation was elided (FS energy optimizations).
	FlagSuppressed uint8 = 1 << iota
	// FlagWrite marks the request as a write where the kind is ambiguous.
	FlagWrite
)

// Event is one fixed-size trace record. It deliberately contains no
// pointers: recording is a single struct copy into the ring.
type Event struct {
	Cycle  int64
	Arg    int64
	Kind   EventKind
	Cmd    dram.Kind
	Flags  uint8
	Domain int16
	Chan   int16 // memory channel the event occurred on (0 in single-channel runs)
	Rank   int16
	Bank   int16
	Row    int32
	Col    int32
}

// DefaultTraceCap is the ring capacity used when Options.TraceCap is 0:
// large enough to hold the full tail of a schedule deviation, small enough
// that per-shard tracers stay cheap.
const DefaultTraceCap = 1 << 14

// Options configures observation for one run.
type Options struct {
	// TraceCap bounds the tracer's event ring (0 = DefaultTraceCap). When
	// the ring is full the oldest events are overwritten — forensics wants
	// the run's tail — and Tracer.Dropped() reports how many.
	TraceCap int
}

// Tracer records simulation events into a bounded preallocated ring.
// A nil *Tracer is the disabled state: every method returns immediately
// after a nil check, so instrumentation points cost one branch when
// tracing is off.
//
// A tracer belongs to one simulation run (single goroutine); determinism
// across the parallel engine's worker counts follows from each run owning
// its own tracer and the simulation itself being deterministic.
type Tracer struct {
	ring    []Event
	head    int // next overwrite position once len(ring) == cap(ring)
	dropped int64
	channel int16 // stamped into every record (multi-channel fabric)
}

// SetChannel sets the memory-channel id stamped into every subsequent
// event. The fabric gives each channel's controller its own tracer and
// tags it here; single-channel runs leave the default 0.
func (t *Tracer) SetChannel(ch int) {
	if t == nil {
		return
	}
	t.channel = int16(ch)
}

// NewTracer builds a tracer per the options (nil options = defaults).
func NewTracer(o *Options) *Tracer {
	cap := DefaultTraceCap
	if o != nil && o.TraceCap > 0 {
		cap = o.TraceCap
	}
	return &Tracer{ring: make([]Event, 0, cap)}
}

// Enabled reports whether the tracer records (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Dropped returns how many events were overwritten after the ring filled.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the recorded events in recording order. The slice aliases
// the ring; callers must not record concurrently (runs are over when
// exporting).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if len(t.ring) < cap(t.ring) || t.head == 0 {
		return t.ring
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.head:]...)
	out = append(out, t.ring[:t.head]...)
	return out
}

func (t *Tracer) record(e Event) {
	e.Chan = t.channel
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
		return
	}
	t.ring[t.head] = e
	t.head++
	if t.head == len(t.ring) {
		t.head = 0
	}
	t.dropped++
}

// Merge combines per-channel tracers into one chronological trace. Each
// tracer's events are already cycle-ordered (recording follows the
// simulation clock), so this is a k-way merge: ties resolve in argument
// order, which the fabric passes in channel order — deterministic for a
// deterministic simulation. Dropped counts sum. Nil tracers are skipped;
// the result is never nil.
func Merge(ts ...*Tracer) *Tracer {
	var events [][]Event
	var dropped int64
	total := 0
	for _, t := range ts {
		if t == nil {
			continue
		}
		es := t.Events()
		events = append(events, es)
		dropped += t.Dropped()
		total += len(es)
	}
	merged := &Tracer{ring: make([]Event, 0, total), dropped: dropped}
	idx := make([]int, len(events))
	for len(merged.ring) < total {
		best := -1
		for i, es := range events {
			if idx[i] >= len(es) {
				continue
			}
			if best < 0 || es[idx[i]].Cycle < events[best][idx[best]].Cycle {
				best = i
			}
		}
		merged.ring = append(merged.ring, events[best][idx[best]])
		idx[best]++
	}
	return merged
}

// Command records one bus command.
func (t *Tracer) Command(cmd dram.Command, cycle int64, suppressed bool) {
	if t == nil {
		return
	}
	var flags uint8
	if suppressed {
		flags |= FlagSuppressed
	}
	t.record(Event{
		Cycle: cycle, Kind: EvCmd, Cmd: cmd.Kind, Flags: flags,
		Domain: int16(cmd.Domain), Rank: int16(cmd.Rank), Bank: int16(cmd.Bank),
		Row: int32(cmd.Row), Col: int32(cmd.Col),
	})
}

// Enqueue records a demand read entering the controller.
func (t *Tracer) Enqueue(domain int, a dram.Address, cycle int64) {
	if t == nil {
		return
	}
	t.record(Event{
		Cycle: cycle, Kind: EvEnqueue, Domain: int16(domain),
		Rank: int16(a.Rank), Bank: int16(a.Bank), Row: int32(a.Row), Col: int32(a.Col),
	})
}

// FirstCommand records a request's first DRAM command; wait is the queue
// delay in bus cycles.
func (t *Tracer) FirstCommand(domain int, a dram.Address, cycle, wait int64, write bool) {
	if t == nil {
		return
	}
	var flags uint8
	if write {
		flags |= FlagWrite
	}
	t.record(Event{
		Cycle: cycle, Kind: EvFirstCmd, Arg: wait, Flags: flags, Domain: int16(domain),
		Rank: int16(a.Rank), Bank: int16(a.Bank), Row: int32(a.Row), Col: int32(a.Col),
	})
}

// Complete records a request retiring from the controller as the given
// lifecycle kind (EvDeliver, EvWriteDone, EvDummy, EvPrefetchFill); arg is
// the arrival-to-delivery latency for EvDeliver.
func (t *Tracer) Complete(kind EventKind, domain int, a dram.Address, cycle, arg int64) {
	if t == nil {
		return
	}
	t.record(Event{
		Cycle: cycle, Kind: kind, Arg: arg, Domain: int16(domain),
		Rank: int16(a.Rank), Bank: int16(a.Bank), Row: int32(a.Row), Col: int32(a.Col),
	})
}

// DummySlot records an FS slot substitution (a Slot* code).
func (t *Tracer) DummySlot(domain int, cycle int64, sub int64) {
	if t == nil {
		return
	}
	t.record(Event{Cycle: cycle, Kind: EvDummySlot, Arg: sub, Domain: int16(domain)})
}

// QueueFull records a rejected enqueue (write selects the write buffer).
func (t *Tracer) QueueFull(domain int, cycle int64, write bool) {
	if t == nil {
		return
	}
	arg := int64(0)
	if write {
		arg = 1
	}
	t.record(Event{Cycle: cycle, Kind: EvQueueFull, Arg: arg, Domain: int16(domain)})
}

// Reconfigure records an SLA reconfiguration phase (a Reconfig* code).
func (t *Tracer) Reconfigure(cycle int64, phase int64) {
	if t == nil {
		return
	}
	t.record(Event{Cycle: cycle, Kind: EvReconfigure, Arg: phase, Domain: -1})
}
