package obs

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"fsmem/internal/dram"
)

// TestNilTracerIsSafe exercises every recording method on a nil tracer —
// the disabled fast path every instrumentation site relies on.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Command(dram.Command{Kind: dram.KindActivate}, 1, false)
	tr.Enqueue(0, dram.Address{}, 2)
	tr.FirstCommand(0, dram.Address{}, 3, 1, false)
	tr.Complete(EvDeliver, 0, dram.Address{}, 4, 2)
	tr.DummySlot(0, 5, SlotDummy)
	tr.QueueFull(0, 6, true)
	tr.Reconfigure(7, ReconfigBegin)
	if tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer accumulated state")
	}
}

func TestRingWraparound(t *testing.T) {
	tr := NewTracer(&Options{TraceCap: 4})
	for i := 0; i < 10; i++ {
		tr.Command(dram.Command{Kind: dram.KindActivate, Row: i}, int64(i), false)
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("got %d events, want ring cap 4", len(ev))
	}
	// The ring keeps the tail: cycles 6..9 in recording order.
	for i, e := range ev {
		if want := int64(6 + i); e.Cycle != want {
			t.Fatalf("event %d at cycle %d, want %d", i, e.Cycle, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(nil)
	tr.Command(dram.Command{Kind: dram.KindActivate, Rank: 1, Bank: 2, Row: 3, Domain: 0}, 10, false)
	tr.Command(dram.Command{Kind: dram.KindReadAP, Rank: 1, Bank: 2, Col: 4, Domain: 0}, 21, true)
	tr.Enqueue(1, dram.Address{Rank: 0, Bank: 5, Row: 6, Col: 7}, 22)
	tr.FirstCommand(1, dram.Address{Rank: 0, Bank: 5, Row: 6, Col: 7}, 30, 8, true)
	tr.Complete(EvDeliver, 1, dram.Address{Rank: 0, Bank: 5, Row: 6, Col: 7}, 44, 22)
	tr.DummySlot(0, 45, SlotRefresh)
	tr.QueueFull(1, 46, false)
	tr.Reconfigure(47, ReconfigDone)

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("round trip: %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestJSONLDeterministicBytes(t *testing.T) {
	build := func() *bytes.Buffer {
		tr := NewTracer(nil)
		tr.Command(dram.Command{Kind: dram.KindActivate, Rank: 1, Row: 3}, 10, false)
		tr.Complete(EvDeliver, 0, dram.Address{Bank: 2}, 20, 10)
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	if !bytes.Equal(build().Bytes(), build().Bytes()) {
		t.Fatal("identical tracers serialized to different bytes")
	}
}

func TestReadJSONLRejectsCorruption(t *testing.T) {
	cases := map[string]string{
		"unknown kind":    "{\"fsmem_trace\":1,\"events\":1,\"dropped\":0}\n{\"c\":1,\"k\":\"bogus\"}\n",
		"unknown command": "{\"fsmem_trace\":1,\"events\":1,\"dropped\":0}\n{\"c\":1,\"k\":\"cmd\",\"cmd\":\"XYZ\"}\n",
		"bad version":     "{\"fsmem_trace\":9,\"events\":0,\"dropped\":0}\n",
		"empty":           "",
		"garbage":         "{\"fsmem_trace\":1,\"events\":1,\"dropped\":0}\nnot json\n",
	}
	for name, in := range cases {
		if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: corrupted trace parsed without error", name)
		}
	}
}

func TestChromeExportIsValidJSON(t *testing.T) {
	tr := NewTracer(nil)
	tr.Command(dram.Command{Kind: dram.KindActivate, Rank: 1, Row: 3}, 10, true)
	tr.Complete(EvDeliver, 0, dram.Address{Bank: 2}, 20, 10)
	tr.DummySlot(1, 30, SlotPowerDown)
	tr.Reconfigure(40, ReconfigBegin)
	tr.QueueFull(0, 50, true)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome export is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 5 {
		t.Fatalf("chrome export has %d events, want 5", len(events))
	}
	for _, e := range events {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				t.Fatalf("chrome event missing %q: %v", key, e)
			}
		}
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zeta").Add(3)
	reg.Gauge("alpha").Set(1.5)
	reg.Source("mid", SourceFunc(func(emit func(string, float64)) {
		emit("b", 2)
		emit("a", 1)
	}))
	h := reg.Histogram("hist", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	s := reg.Snapshot()
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i].Name < s[j].Name }) {
		t.Fatalf("snapshot not sorted: %v", s)
	}
	for name, want := range map[string]float64{
		"zeta":        3,
		"alpha":       1.5,
		"mid.a":       1,
		"mid.b":       2,
		"hist_le_10":  1,
		"hist_le_100": 2,
		"hist_count":  3,
		"hist_sum":    555,
		"hist_le_inf": 3,
	} {
		got, ok := s.Get(name)
		if !ok {
			t.Fatalf("snapshot missing %q: %v", name, s)
		}
		if got != want {
			t.Fatalf("%s = %g, want %g", name, got, want)
		}
	}
}

func TestNilRegistry(t *testing.T) {
	var reg *Registry
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1)
	reg.Histogram("h", []int64{1}).Observe(1)
	reg.Source("s", SourceFunc(func(func(string, float64)) {}))
	if snap := reg.Snapshot(); snap != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", snap)
	}
}
