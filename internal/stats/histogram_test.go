package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram metrics should be zero")
	}
	for _, v := range []int64{10, 20, 40, 80, 100000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Max() != 100000 {
		t.Errorf("Max = %d", h.Max())
	}
	if got, want := h.Mean(), float64(10+20+40+80+100000)/5; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewLatencyHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i) // uniform on [1,1000]
	}
	// The q-quantile upper bound must be >= the true quantile and within
	// one power-of-two bucket of it.
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		truth := int64(q * 1000)
		got := h.Quantile(q)
		if got < truth {
			t.Errorf("Quantile(%v) = %d below true %d", q, got, truth)
		}
		if got > truth*2+16 {
			t.Errorf("Quantile(%v) = %d too far above true %d", q, got, truth)
		}
	}
	// Clamped arguments.
	if h.Quantile(-1) == 0 || h.Quantile(2) < h.Quantile(0.5) {
		t.Error("quantile clamping broken")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewLatencyHistogram(), NewLatencyHistogram()
	a.Observe(10)
	b.Observe(1000)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 2 || a.Max() != 1000 {
		t.Errorf("merged: count=%d max=%d", a.Count(), a.Max())
	}
	c := NewHistogram([]int64{1, 2})
	if err := a.Merge(c); err == nil {
		t.Error("merging different bucketings should fail")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewLatencyHistogram()
	if h.String() != "(empty)" {
		t.Errorf("empty String = %q", h.String())
	}
	h.Observe(100)
	s := h.String()
	for _, want := range []string{"n=1", "mean=100.0", "#"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

// TestHistogramConservation: counts always sum to the number of samples and
// the mean matches the running sum, for arbitrary inputs.
func TestHistogramConservation(t *testing.T) {
	check := func(vals []uint16) bool {
		h := NewLatencyHistogram()
		var sum int64
		for _, v := range vals {
			h.Observe(int64(v))
			sum += int64(v)
		}
		if h.Count() != int64(len(vals)) {
			return false
		}
		if len(vals) > 0 && h.Mean() != float64(sum)/float64(len(vals)) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
