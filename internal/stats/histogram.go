package stats

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-bucket latency histogram with power-of-two bucket
// boundaries, cheap enough to update on every completed read and precise
// enough for tail quantiles (the paper reports averages; tails are where
// secure schedulers differ most visibly).
type Histogram struct {
	bounds []int64 // bucket upper bounds, ascending; last bucket is open
	counts []int64
	total  int64
	sum    int64
	max    int64
}

// NewLatencyHistogram covers 1..65536 bus cycles in power-of-two buckets.
func NewLatencyHistogram() *Histogram {
	var bounds []int64
	for b := int64(16); b <= 65536; b *= 2 {
		bounds = append(bounds, b)
	}
	return NewHistogram(bounds)
}

// NewHistogram builds a histogram over the given ascending upper bounds
// plus an open top bucket.
func NewHistogram(bounds []int64) *Histogram {
	bs := append([]int64(nil), bounds...)
	return &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Max returns the largest observed sample.
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// upper bound of the bucket containing it (Max for the open top bucket).
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// Merge adds another histogram's samples (bounds must match).
func (h *Histogram) Merge(o *Histogram) error {
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("stats: merging histograms with different bucketing")
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			return fmt.Errorf("stats: merging histograms with different bucketing")
		}
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.total += o.total
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
	return nil
}

// String renders a compact ASCII histogram.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "(empty)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f p50<=%d p95<=%d p99<=%d max=%d\n",
		h.total, h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.max)
	peak := int64(1)
	for _, c := range h.counts {
		if c > peak {
			peak = c
		}
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		label := "   +inf"
		if i < len(h.bounds) {
			label = fmt.Sprintf("%7d", h.bounds[i])
		}
		bar := strings.Repeat("#", int(c*40/peak))
		fmt.Fprintf(&b, "<=%s %8d %s\n", label, c, bar)
	}
	return b.String()
}
