package stats

import (
	"math"
	"testing"

	"fsmem/internal/dram"
)

func TestDomainDerivedMetrics(t *testing.T) {
	d := Domain{
		Instructions:     1000,
		CPUCycles:        500,
		Reads:            60,
		Writes:           20,
		Dummies:          20,
		ReadLatencySum:   600,
		ReadLatencyCount: 60,
	}
	if got := d.IPC(); got != 2.0 {
		t.Errorf("IPC = %v, want 2", got)
	}
	if got := d.AvgReadLatency(); got != 10.0 {
		t.Errorf("AvgReadLatency = %v, want 10", got)
	}
	if got := d.DummyFraction(); got != 0.2 {
		t.Errorf("DummyFraction = %v, want 0.2", got)
	}
	var zero Domain
	if zero.IPC() != 0 || zero.AvgReadLatency() != 0 || zero.DummyFraction() != 0 {
		t.Error("zero-value domain should yield zero metrics")
	}
}

func sampleRun() Run {
	return Run{
		Scheduler: "x",
		BusCycles: 1000,
		Domains: []Domain{
			{Instructions: 800, CPUCycles: 4000, Reads: 50, ReadLatencySum: 500, ReadLatencyCount: 50},
			{Instructions: 400, CPUCycles: 4000, Reads: 30, Writes: 10, Dummies: 10, ReadLatencySum: 600, ReadLatencyCount: 30},
		},
		Channel: dram.Counters{DataBusBusy: 320},
	}
}

func TestRunAggregates(t *testing.T) {
	r := sampleRun()
	if r.TotalReads() != 80 {
		t.Errorf("TotalReads = %d", r.TotalReads())
	}
	if r.TotalInstructions() != 1200 {
		t.Errorf("TotalInstructions = %d", r.TotalInstructions())
	}
	if got := r.BusUtilization(); got != 0.32 {
		t.Errorf("BusUtilization = %v", got)
	}
	if got := r.AvgReadLatency(); math.Abs(got-1100.0/80) > 1e-12 {
		t.Errorf("AvgReadLatency = %v", got)
	}
	if got := r.DummyFraction(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("DummyFraction = %v", got)
	}
}

func TestWeightedIPC(t *testing.T) {
	base := sampleRun()
	run := sampleRun()
	// Same run: every domain normalizes to 1.
	w, err := WeightedIPC(run, base)
	if err != nil || math.Abs(w-2.0) > 1e-12 {
		t.Fatalf("WeightedIPC(same) = %v, %v; want 2", w, err)
	}
	// Halve one domain's IPC.
	run.Domains[0].Instructions = 400
	w, err = WeightedIPC(run, base)
	if err != nil || math.Abs(w-1.5) > 1e-12 {
		t.Fatalf("WeightedIPC = %v, %v; want 1.5", w, err)
	}
	// Mismatched domain counts error.
	short := Run{Domains: base.Domains[:1]}
	if _, err := WeightedIPC(short, base); err == nil {
		t.Error("mismatched domains should error")
	}
	// Zero baseline IPC errors.
	zero := sampleRun()
	zero.Domains[0].Instructions = 0
	if _, err := WeightedIPC(run, zero); err == nil {
		t.Error("zero baseline IPC should error")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}
