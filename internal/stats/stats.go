// Package stats collects per-domain and per-channel statistics: retired
// instructions, cycles, memory traffic, latencies, and the derived metrics
// (IPC, weighted IPC, bandwidth utilization) that the paper's figures report.
package stats

import (
	"fmt"

	"fsmem/internal/dram"
)

// Domain accumulates one security domain's activity.
type Domain struct {
	Instructions int64 // retired instructions
	CPUCycles    int64 // CPU cycles elapsed while the domain ran

	Reads, Writes    int64 // demand transactions serviced by the channel
	Dummies          int64 // dummy operations injected on the domain's behalf
	Prefetches       int64 // prefetch operations injected into dummy slots
	UsefulPrefetches int64 // prefetches later hit by a demand access
	RowHits          int64 // demand accesses that hit an open row (baseline)
	RowHitBoosts     int64 // FS energy-opt-2 row-buffer boosts

	ReadLatencySum   int64 // bus cycles, arrival at MC -> data delivered
	ReadLatencyCount int64
	QueueDelaySum    int64 // bus cycles, arrival -> first command issued
}

// IPC returns retired instructions per CPU cycle.
func (d Domain) IPC() float64 {
	if d.CPUCycles == 0 {
		return 0
	}
	return float64(d.Instructions) / float64(d.CPUCycles)
}

// AvgReadLatency returns the mean read latency in bus cycles.
func (d Domain) AvgReadLatency() float64 {
	if d.ReadLatencyCount == 0 {
		return 0
	}
	return float64(d.ReadLatencySum) / float64(d.ReadLatencyCount)
}

// DummyFraction returns the fraction of all injected memory operations that
// were dummies.
func (d Domain) DummyFraction() float64 {
	total := d.Reads + d.Writes + d.Dummies + d.Prefetches
	if total == 0 {
		return 0
	}
	return float64(d.Dummies) / float64(total)
}

// Add accumulates another domain's counters into d. The multi-channel
// fabric uses it under interleaved routing, where one domain's traffic is
// striped across every channel: the CPU-side fields live in a
// system-owned accumulator and the memory-side fields in each channel's
// controller, so a plain field-wise sum merges them without double
// counting.
func (d *Domain) Add(o Domain) {
	d.Instructions += o.Instructions
	d.CPUCycles += o.CPUCycles
	d.Reads += o.Reads
	d.Writes += o.Writes
	d.Dummies += o.Dummies
	d.Prefetches += o.Prefetches
	d.UsefulPrefetches += o.UsefulPrefetches
	d.RowHits += o.RowHits
	d.RowHitBoosts += o.RowHitBoosts
	d.ReadLatencySum += o.ReadLatencySum
	d.ReadLatencyCount += o.ReadLatencyCount
	d.QueueDelaySum += o.QueueDelaySum
}

// ObsMetrics contributes the domain's accumulators and derived metrics to
// an observability snapshot (structurally satisfies obs.MetricSource).
func (d Domain) ObsMetrics(emit func(name string, value float64)) {
	emit("instructions", float64(d.Instructions))
	emit("cpu_cycles", float64(d.CPUCycles))
	emit("reads", float64(d.Reads))
	emit("writes", float64(d.Writes))
	emit("dummies", float64(d.Dummies))
	emit("prefetches", float64(d.Prefetches))
	emit("useful_prefetches", float64(d.UsefulPrefetches))
	emit("row_hits", float64(d.RowHits))
	emit("queue_delay_sum", float64(d.QueueDelaySum))
	emit("ipc", d.IPC())
	emit("avg_read_latency", d.AvgReadLatency())
}

// Run is the complete result of one simulation.
type Run struct {
	Scheduler string
	Workload  string
	BusCycles int64 // DRAM bus cycles simulated
	Domains   []Domain
	Channel   dram.Counters
	// Latency holds per-domain demand-read latency histograms (may be nil
	// for hand-built Runs).
	Latency []*Histogram
	// ChannelCycles holds each memory channel's own bus-cycle count in a
	// multi-channel run (nil for single-channel runs). Channels freeze
	// independently, so BusCycles is the max — the wall-clock span —
	// while busy counters in Channel are summed across channels; ratios
	// like BusUtilization must therefore divide by the summed per-channel
	// cycles, not by the max.
	ChannelCycles []int64
}

// TotalReads sums demand reads across domains.
func (r Run) TotalReads() int64 {
	var n int64
	for _, d := range r.Domains {
		n += d.Reads
	}
	return n
}

// TotalInstructions sums retired instructions across domains.
func (r Run) TotalInstructions() int64 {
	var n int64
	for _, d := range r.Domains {
		n += d.Instructions
	}
	return n
}

// BusUtilization returns the fraction of bus cycles the data bus was busy.
// In a multi-channel run the busy counters are summed across channels
// while BusCycles is the max, so the denominator is the total of the
// per-channel cycle counts instead.
func (r Run) BusUtilization() float64 {
	cycles := r.BusCycles
	if len(r.ChannelCycles) > 0 {
		cycles = 0
		for _, c := range r.ChannelCycles {
			cycles += c
		}
	}
	if cycles == 0 {
		return 0
	}
	return float64(r.Channel.DataBusBusy) / float64(cycles)
}

// AvgReadLatency returns the mean demand-read latency across domains.
func (r Run) AvgReadLatency() float64 {
	var sum, n int64
	for _, d := range r.Domains {
		sum += d.ReadLatencySum
		n += d.ReadLatencyCount
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// DummyFraction returns the dummy fraction across all domains.
func (r Run) DummyFraction() float64 {
	var dummies, total int64
	for _, d := range r.Domains {
		dummies += d.Dummies
		total += d.Reads + d.Writes + d.Dummies + d.Prefetches
	}
	if total == 0 {
		return 0
	}
	return float64(dummies) / float64(total)
}

// WeightedIPC returns the sum of per-domain IPCs normalized against the
// same domain's IPC in the baseline run, the paper's throughput metric
// ("sum of weighted IPCs"; equals the domain count when run == baseline).
func WeightedIPC(run, baseline Run) (float64, error) {
	if len(run.Domains) != len(baseline.Domains) {
		return 0, fmt.Errorf("stats: domain count mismatch %d vs %d", len(run.Domains), len(baseline.Domains))
	}
	var sum float64
	for i := range run.Domains {
		b := baseline.Domains[i].IPC()
		if b == 0 {
			return 0, fmt.Errorf("stats: baseline IPC for domain %d is zero", i)
		}
		sum += run.Domains[i].IPC() / b
	}
	return sum, nil
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
