package dram

import "fmt"

// Kind identifies a DRAM command.
type Kind uint8

// DRAM command kinds. ReadAP/WriteAP carry an automatic precharge that the
// device performs internally once tRTP/tWR allow, exactly as the paper's
// Fixed Service pipelines assume ("Column-Reads and Column-Writes are
// issued with an auto-precharge").
const (
	KindActivate Kind = iota
	KindRead
	KindReadAP
	KindWrite
	KindWriteAP
	KindPrecharge
	KindRefresh
	KindPowerDown
	KindPowerUp
)

var kindNames = [...]string{
	KindActivate:  "ACT",
	KindRead:      "RD",
	KindReadAP:    "RDAP",
	KindWrite:     "WR",
	KindWriteAP:   "WRAP",
	KindPrecharge: "PRE",
	KindRefresh:   "REF",
	KindPowerDown: "PDN",
	KindPowerUp:   "PUP",
}

// String returns the conventional mnemonic for the command kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsCAS reports whether the kind is a column access (read or write).
func (k Kind) IsCAS() bool {
	return k == KindRead || k == KindReadAP || k == KindWrite || k == KindWriteAP
}

// IsRead reports whether the kind is a column read.
func (k Kind) IsRead() bool { return k == KindRead || k == KindReadAP }

// IsWrite reports whether the kind is a column write.
func (k Kind) IsWrite() bool { return k == KindWrite || k == KindWriteAP }

// AutoPrecharge reports whether the kind carries an automatic precharge.
func (k Kind) AutoPrecharge() bool { return k == KindReadAP || k == KindWriteAP }

// Address locates a cache-line-sized piece of data in a channel.
type Address struct {
	Channel int
	Rank    int
	Bank    int
	Row     int
	Col     int
}

// String formats the address as ch/rank/bank/row/col.
func (a Address) String() string {
	return fmt.Sprintf("c%d/r%d/b%d/row%d/col%d", a.Channel, a.Rank, a.Bank, a.Row, a.Col)
}

// NoDomain marks a command that serves no particular security domain
// (refresh, power management, injected faults).
const NoDomain = -1

// Command is one entry on a channel's command bus.
// Refresh, PowerDown and PowerUp address a whole rank; Bank/Row/Col are
// ignored for them.
//
// Domain attributes the command to the security domain it serves; it has
// no effect on timing and exists for the runtime non-interference monitor,
// which tracks per-domain command-issue traces. Schedulers should set it
// (NoDomain for unattributed commands); the zero value attributes to
// domain 0, which is harmless for code that never consults the monitor.
type Command struct {
	Kind   Kind
	Rank   int
	Bank   int
	Row    int
	Col    int
	Domain int
}

// String formats the command with its target.
func (c Command) String() string {
	switch c.Kind {
	case KindRefresh, KindPowerDown, KindPowerUp:
		return fmt.Sprintf("%s r%d", c.Kind, c.Rank)
	case KindActivate:
		return fmt.Sprintf("%s r%d/b%d/row%d", c.Kind, c.Rank, c.Bank, c.Row)
	case KindPrecharge:
		return fmt.Sprintf("%s r%d/b%d", c.Kind, c.Rank, c.Bank)
	default:
		return fmt.Sprintf("%s r%d/b%d/col%d", c.Kind, c.Rank, c.Bank, c.Col)
	}
}
