package dram

import (
	"testing"
)

// differentialDrive issues a pseudo-random command stream, asking both the
// incremental Channel and the brute-force ReferenceChecker for a verdict on
// every attempt, and fails on the first disagreement. Accepted commands are
// applied to both so their states stay in lockstep.
func differentialDrive(t *testing.T, p Params, seed uint64, attempts int) (accepted int) {
	t.Helper()
	ch := NewChannel(p)
	ref := NewReferenceChecker(p)
	s := seed
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	cycle := int64(0)
	for i := 0; i < attempts; i++ {
		r := next()
		cmd := Command{
			Rank: int(r % uint64(p.RanksPerChan)),
			Bank: int((r >> 8) % uint64(p.BanksPerRank)),
			Row:  int((r >> 16) % 64),
			Col:  int((r >> 24) % uint64(p.ColsPerRow)),
		}
		switch (r >> 32) % 6 {
		case 0:
			cmd.Kind = KindActivate
		case 1:
			cmd.Kind = KindRead
		case 2:
			cmd.Kind = KindReadAP
		case 3:
			cmd.Kind = KindWrite
		case 4:
			cmd.Kind = KindWriteAP
		case 5:
			cmd.Kind = KindPrecharge
		}
		cycle += int64(1 + (r>>40)%8)

		chErr := ch.CanIssue(cmd, cycle)
		refErr := ref.Check(cmd, cycle)
		if (chErr == nil) != (refErr == nil) {
			t.Fatalf("attempt %d: verdicts disagree on %v at %d:\n  channel:   %v\n  reference: %v",
				i, cmd, cycle, chErr, refErr)
		}
		if chErr == nil {
			if err := ch.Issue(cmd, cycle); err != nil {
				t.Fatalf("accepted command failed to apply: %v", err)
			}
			ref.Apply(cmd, cycle)
			accepted++
		}
	}
	return accepted
}

// TestDifferentialDDR3 drives random streams through both timing-model
// implementations on DDR3 and requires bit-identical verdicts.
func TestDifferentialDDR3(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		acc := differentialDrive(t, DDR3_1600(), seed, 1500)
		if acc < 100 {
			t.Fatalf("seed %d: only %d commands accepted; stream too adversarial to be meaningful", seed, acc)
		}
	}
}

// TestDifferentialDDR4 repeats the differential check with bank-group
// timings in play.
func TestDifferentialDDR4(t *testing.T) {
	for seed := uint64(11); seed <= 14; seed++ {
		acc := differentialDrive(t, DDR4_2400(), seed, 1200)
		if acc < 80 {
			t.Fatalf("seed %d: only %d commands accepted", seed, acc)
		}
	}
}

// TestDifferentialDenseCycles uses 1-cycle steps so bus-ordering and
// same-cycle hazards dominate.
func TestDifferentialDenseCycles(t *testing.T) {
	p := DDR3_1600()
	ch := NewChannel(p)
	ref := NewReferenceChecker(p)
	cmds := []struct {
		cmd   Command
		cycle int64
	}{
		{Command{Kind: KindActivate, Rank: 0, Bank: 0, Row: 1}, 1},
		{Command{Kind: KindActivate, Rank: 0, Bank: 1, Row: 1}, 2},  // tRRD violation
		{Command{Kind: KindActivate, Rank: 1, Bank: 0, Row: 1}, 2},  // other rank: legal
		{Command{Kind: KindRead, Rank: 0, Bank: 0}, 5},              // tRCD violation
		{Command{Kind: KindRead, Rank: 0, Bank: 0}, 12},             // legal
		{Command{Kind: KindRead, Rank: 1, Bank: 0}, 14},             // tRTRS data-bus violation
		{Command{Kind: KindRead, Rank: 1, Bank: 0}, 18},             // legal
		{Command{Kind: KindPrecharge, Rank: 0, Bank: 0}, 20},        // tRAS violation
		{Command{Kind: KindPrecharge, Rank: 0, Bank: 0}, 29},        // legal
		{Command{Kind: KindActivate, Rank: 0, Bank: 0, Row: 2}, 35}, // tRP violation
		{Command{Kind: KindActivate, Rank: 0, Bank: 0, Row: 2}, 40}, // legal
	}
	for i, c := range cmds {
		chErr := ch.CanIssue(c.cmd, c.cycle)
		refErr := ref.Check(c.cmd, c.cycle)
		if (chErr == nil) != (refErr == nil) {
			t.Fatalf("step %d (%v at %d): channel=%v reference=%v", i, c.cmd, c.cycle, chErr, refErr)
		}
		if chErr == nil {
			if err := ch.Issue(c.cmd, c.cycle); err != nil {
				t.Fatal(err)
			}
			ref.Apply(c.cmd, c.cycle)
		}
	}
}
