package dram

// DDR4 bank-group support. JESD79-4 (which Table 1 of the paper cites)
// splits each rank's banks into bank groups; back-to-back column or
// activate commands pay a long timing (tCCD_L, tRRD_L, tWTR_L) within a
// group and a short one (tCCD_S, tRRD_S, tWTR_S) across groups. A Params
// with BankGroups <= 1 behaves exactly like DDR3: the short values are
// ignored and the base TCCD/TRRD/TWTR apply everywhere.

// BankGroup returns the bank-group index of a bank (0 when bank groups are
// disabled).
func (p Params) BankGroup(bank int) int {
	if p.BankGroups <= 1 {
		return 0
	}
	return bank / (p.BanksPerRank / p.BankGroups)
}

// CCDSame / CCDOther return the CAS-to-CAS spacing within and across bank
// groups.
func (p Params) CCDSame() int { return p.TCCD }
func (p Params) CCDOther() int {
	if p.BankGroups <= 1 {
		return p.TCCD
	}
	return p.TCCDS
}

// RRDSame / RRDOther return the ACT-to-ACT spacing within and across bank
// groups.
func (p Params) RRDSame() int { return p.TRRD }
func (p Params) RRDOther() int {
	if p.BankGroups <= 1 {
		return p.TRRD
	}
	return p.TRRDS
}

// WTRSame / WTROther return the write-data-end-to-read-CAS spacing within
// and across bank groups.
func (p Params) WTRSame() int { return p.TWTR }
func (p Params) WTROther() int {
	if p.BankGroups <= 1 {
		return p.TWTR
	}
	return p.TWTRS
}

// DDR4_2400 returns a DDR4-2400 (1200 MHz bus) parameter set for an 8Gb
// x8 part: 16 banks in 4 bank groups, JESD79-4 speed-bin timings expressed
// in bus cycles.
func DDR4_2400() Params {
	return Params{
		Channels:     1,
		RanksPerChan: 8,
		BanksPerRank: 16,
		BankGroups:   4,
		RowsPerBank:  1 << 17,
		ColsPerRow:   128,

		TRC:    55, // 45.75ns
		TRCD:   16, // 13.32ns
		TRAS:   39, // 32ns
		TRP:    16,
		TRTP:   9,  // 7.5ns
		TWR:    18, // 15ns
		TFAW:   26, // 21ns (2KB page x8)
		TRRD:   6,  // tRRD_L
		TRRDS:  4,  // tRRD_S
		TCCD:   6,  // tCCD_L
		TCCDS:  4,  // tCCD_S
		TWTR:   9,  // tWTR_L, 7.5ns
		TWTRS:  3,  // tWTR_S, 2.5ns
		TCAS:   16, // CL 16
		TCWD:   12, // CWL 12
		TBURST: 4,  // BL8
		TRTRS:  2,

		TREFI: 9360, // 7.8us at 1200MHz
		TRFC:  420,  // 350ns for 8Gb

		TXP: 8, // ~6.5ns fast exit

		CPUCyclesPerBusCycle: 3, // 3.6 GHz core / 1200 MHz bus
	}
}
