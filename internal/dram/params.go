// Package dram implements a cycle-accurate DDR3 device and channel model:
// banks, ranks, command/data buses, the full JEDEC timing-constraint set
// used by the paper (Table 1), refresh, and power-down states.
//
// All times are expressed in DRAM bus cycles (800 MHz for DDR3-1600).
// The model is scheduler-agnostic: schedulers ask CanIssue/Issue, and an
// independent Checker re-validates complete command streams so that the
// Fixed Service pipelines can be proven conflict-free in tests.
package dram

import "fmt"

// Params holds the organization and timing parameters of a memory channel.
// Timing fields mirror Table 1 of the paper and are in DRAM bus cycles
// unless noted otherwise.
type Params struct {
	// Organization.
	Channels     int // memory channels (the paper simulates 1 for most runs)
	RanksPerChan int // ranks per channel
	BanksPerRank int // banks per rank
	BankGroups   int // DDR4 bank groups per rank (<= 1 disables group timing)
	RowsPerBank  int // rows per bank
	ColsPerRow   int // cache-line columns per row (row size / 64B)

	// Core timing constraints.
	TRC    int // ACT -> ACT, same bank
	TRCD   int // ACT -> CAS (read or write), same bank
	TRAS   int // ACT -> PRE, same bank
	TRP    int // PRE -> ACT, same bank
	TRTP   int // READ -> PRE, same bank
	TWR    int // end of write data -> PRE, same bank (write recovery)
	TFAW   int // window in which at most 4 ACTs may issue, per rank
	TRRD   int // ACT -> ACT, same rank (same bank group when groups enabled: tRRD_L)
	TRRDS  int // DDR4: ACT -> ACT across bank groups (tRRD_S)
	TCCD   int // CAS -> CAS, same rank (same bank group when groups enabled: tCCD_L)
	TCCDS  int // DDR4: CAS -> CAS across bank groups (tCCD_S)
	TWTR   int // end of write data -> READ CAS, same rank (same group: tWTR_L)
	TWTRS  int // DDR4: write data end -> READ CAS across bank groups (tWTR_S)
	TCAS   int // READ CAS -> first data beat (a.k.a. CL)
	TCWD   int // WRITE CAS -> first data beat (a.k.a. CWL)
	TBURST int // data beats per column access (burst length 8 = 4 bus cycles)
	TRTRS  int // rank-to-rank data-bus switching delay

	// Refresh.
	TREFI int // average refresh interval
	TRFC  int // refresh cycle time

	// Power-down.
	TXP int // power-down exit latency (fast-exit precharge power-down)

	// Clocking.
	CPUCyclesPerBusCycle int // CPU clock / DRAM bus clock ratio (3.2GHz / 800MHz = 4)
}

// DDR3_1600 returns the DDR3-1600 (800 MHz bus) parameter set used
// throughout the paper's evaluation (Table 1), with a 4Gb-part geometry.
func DDR3_1600() Params {
	return Params{
		Channels:     1,
		RanksPerChan: 8,
		BanksPerRank: 8,
		RowsPerBank:  1 << 16,
		ColsPerRow:   128, // 8KB row / 64B lines

		TRC:    39,
		TRCD:   11,
		TRAS:   28,
		TRP:    11,
		TRTP:   6,
		TWR:    12,
		TFAW:   24,
		TRRD:   5,
		TCCD:   4,
		TWTR:   6,
		TCAS:   11,
		TCWD:   5,
		TBURST: 4,
		TRTRS:  2,

		TREFI: 6240, // 7.8us at 800MHz
		TRFC:  208,  // 260ns at 800MHz

		TXP: 10, // "lighter power-down modes have transition latencies of 10 memory cycles"

		CPUCyclesPerBusCycle: 4,
	}
}

// Validate reports whether the parameter set is internally consistent.
func (p Params) Validate() error {
	switch {
	case p.Channels <= 0:
		return fmt.Errorf("dram: Channels must be positive, got %d", p.Channels)
	case p.RanksPerChan <= 0:
		return fmt.Errorf("dram: RanksPerChan must be positive, got %d", p.RanksPerChan)
	case p.BanksPerRank <= 0:
		return fmt.Errorf("dram: BanksPerRank must be positive, got %d", p.BanksPerRank)
	case p.RowsPerBank <= 0 || p.ColsPerRow <= 0:
		return fmt.Errorf("dram: geometry must be positive (rows=%d cols=%d)", p.RowsPerBank, p.ColsPerRow)
	case p.TBURST <= 0:
		return fmt.Errorf("dram: TBURST must be positive, got %d", p.TBURST)
	case p.TRAS+p.TRP > p.TRC:
		return fmt.Errorf("dram: tRAS+tRP (%d) must not exceed tRC (%d)", p.TRAS+p.TRP, p.TRC)
	case p.TRCD > p.TRAS:
		return fmt.Errorf("dram: tRCD (%d) must not exceed tRAS (%d)", p.TRCD, p.TRAS)
	case p.CPUCyclesPerBusCycle <= 0:
		return fmt.Errorf("dram: CPUCyclesPerBusCycle must be positive, got %d", p.CPUCyclesPerBusCycle)
	}
	if p.BankGroups > 1 {
		if p.BanksPerRank%p.BankGroups != 0 {
			return fmt.Errorf("dram: %d banks do not split into %d bank groups", p.BanksPerRank, p.BankGroups)
		}
		if p.TCCDS <= 0 || p.TRRDS <= 0 || p.TWTRS <= 0 {
			return fmt.Errorf("dram: bank groups require positive tCCD_S/tRRD_S/tWTR_S")
		}
		if p.TCCDS > p.TCCD || p.TRRDS > p.TRRD || p.TWTRS > p.TWTR {
			return fmt.Errorf("dram: short bank-group timings must not exceed the long ones")
		}
	}
	return nil
}

// ReadToWriteGap returns the minimum spacing, in cycles, between a READ CAS
// and a following WRITE CAS on the same channel so that the write burst does
// not collide with the read burst on the data bus. This is the paper's
// Rd2Wr delay: tCAS + tBURST - tCWD.
func (p Params) ReadToWriteGap() int { return p.TCAS + p.TBURST - p.TCWD }

// WriteToReadGap returns the minimum spacing between a WRITE CAS and a
// following READ CAS targeting the same rank. This is the paper's Wr2Rd
// delay: tCWD + tBURST + tWTR.
func (p Params) WriteToReadGap() int { return p.TCWD + p.TBURST + p.TWTR }

// ReadDataStart returns the offset from a READ CAS to its first data beat.
func (p Params) ReadDataStart() int { return p.TCAS }

// WriteDataStart returns the offset from a WRITE CAS to its first data beat.
func (p Params) WriteDataStart() int { return p.TCWD }

// TotalBanks returns the number of banks in one channel.
func (p Params) TotalBanks() int { return p.RanksPerChan * p.BanksPerRank }
