package dram

import "fmt"

// Checker independently validates a stream of (command, cycle) pairs
// against the full timing model. It is deliberately unaware of any
// scheduler: the Fixed Service tests feed whole statically generated
// pipelines through a Checker to prove them conflict-free, which is the
// executable counterpart of the paper's Section 3 equations.
type Checker struct {
	ch         *Channel
	violations []error
	fed        int
}

// NewChecker builds a checker over a fresh, all-banks-precharged channel.
func NewChecker(p Params) *Checker {
	return &Checker{ch: NewChannel(p)}
}

// Feed validates and applies one command. Invalid commands are recorded as
// violations and not applied, so one bad command does not cascade.
func (c *Checker) Feed(cmd Command, cycle int64) {
	c.fed++
	if err := c.ch.Issue(cmd, cycle); err != nil {
		c.violations = append(c.violations, fmt.Errorf("command %d: %w", c.fed, err))
	}
}

// Violations returns every violation seen so far.
func (c *Checker) Violations() []error { return c.violations }

// Commands returns the number of commands fed.
func (c *Checker) Commands() int { return c.fed }

// Counters exposes the underlying channel's activity counters.
func (c *Checker) Counters() Counters { return c.ch.Counters }

// Ok reports whether no violations have been recorded.
func (c *Checker) Ok() bool { return len(c.violations) == 0 }
