package dram

// Derate is a set of additive per-rank timing margins, in bus cycles. The
// fault-injection harness uses derates to model marginal hardware: a rank
// whose effective tRCD or tWR is longer than the datasheet value the
// scheduler planned with. A derated channel enforces the lengthened
// constraints, so a schedule solved at nominal timings that no longer fits
// is rejected — which is exactly how the runtime monitor detects that a
// Fixed Service pipeline's conflict-freedom proof has been invalidated.
//
// The zero value derates nothing.
type Derate struct {
	TRCD int
	TRP  int
	TRAS int
	TRC  int
	TRTP int
	TWR  int
	TFAW int
	TRRD int
	TCCD int
	TWTR int
}

// IsZero reports whether the derate changes no constraint.
func (d Derate) IsZero() bool { return d == Derate{} }

// SetDerate installs additive timing margins for one rank. Rank -1 applies
// the derate to every rank. Derating after commands have been issued only
// affects constraints checked from then on.
func (ch *Channel) SetDerate(rank int, d Derate) {
	if ch.derate == nil {
		ch.derate = make([]Derate, len(ch.ranks))
	}
	if rank < 0 {
		for r := range ch.derate {
			ch.derate[r] = d
		}
		return
	}
	if rank < len(ch.derate) {
		ch.derate[rank] = d
	}
}

// der returns the rank's derate (zero when none installed).
func (ch *Channel) der(rank int) Derate {
	if ch.derate == nil || rank < 0 || rank >= len(ch.derate) {
		return Derate{}
	}
	return ch.derate[rank]
}

// SetDerate installs additive timing margins on the checker's shadow
// channel (rank -1 = all ranks), so a Checker can validate a command stream
// against derated hardware while the live channel runs nominal timings.
func (c *Checker) SetDerate(rank int, d Derate) { c.ch.SetDerate(rank, d) }
