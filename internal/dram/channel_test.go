package dram

import (
	"errors"
	"strings"
	"testing"
)

func testParams() Params { return DDR3_1600() }

func mustIssue(t *testing.T, ch *Channel, cmd Command, cycle int64) {
	t.Helper()
	if err := ch.Issue(cmd, cycle); err != nil {
		t.Fatalf("Issue(%v, %d): %v", cmd, cycle, err)
	}
}

func wantReject(t *testing.T, ch *Channel, cmd Command, cycle int64, substr string) *TimingError {
	t.Helper()
	err := ch.CanIssue(cmd, cycle)
	if err == nil {
		t.Fatalf("CanIssue(%v, %d): expected rejection containing %q, got nil", cmd, cycle, substr)
	}
	var te *TimingError
	if !errors.As(err, &te) {
		t.Fatalf("CanIssue(%v, %d): error %v is not a *TimingError", cmd, cycle, err)
	}
	if !strings.Contains(te.Constraint, substr) {
		t.Fatalf("CanIssue(%v, %d): constraint %q does not contain %q", cmd, cycle, te.Constraint, substr)
	}
	return te
}

func act(rank, bank, row int) Command {
	return Command{Kind: KindActivate, Rank: rank, Bank: bank, Row: row}
}
func rd(rank, bank int) Command   { return Command{Kind: KindRead, Rank: rank, Bank: bank} }
func rdap(rank, bank int) Command { return Command{Kind: KindReadAP, Rank: rank, Bank: bank} }
func wr(rank, bank int) Command   { return Command{Kind: KindWrite, Rank: rank, Bank: bank} }
func wrap(rank, bank int) Command { return Command{Kind: KindWriteAP, Rank: rank, Bank: bank} }
func pre(rank, bank int) Command  { return Command{Kind: KindPrecharge, Rank: rank, Bank: bank} }

func TestParamsValidate(t *testing.T) {
	if err := testParams().Validate(); err != nil {
		t.Fatalf("DDR3_1600 should validate: %v", err)
	}
	bad := testParams()
	bad.TRAS = bad.TRC // tRAS+tRP > tRC
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error for tRAS+tRP > tRC")
	}
	bad = testParams()
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error for zero channels")
	}
	bad = testParams()
	bad.TBURST = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error for zero tBURST")
	}
}

func TestDerivedGaps(t *testing.T) {
	p := testParams()
	// The paper: Rd2Wr = tCAS + tBURST - tCWD = 10, Wr2Rd = tCWD + tBURST + tWTR = 15.
	if got := p.ReadToWriteGap(); got != 10 {
		t.Errorf("ReadToWriteGap = %d, want 10", got)
	}
	if got := p.WriteToReadGap(); got != 15 {
		t.Errorf("WriteToReadGap = %d, want 15", got)
	}
	if p.TotalBanks() != 64 {
		t.Errorf("TotalBanks = %d, want 64", p.TotalBanks())
	}
}

func TestKindPredicates(t *testing.T) {
	for _, k := range []Kind{KindRead, KindReadAP} {
		if !k.IsCAS() || !k.IsRead() || k.IsWrite() {
			t.Errorf("%v: wrong read predicates", k)
		}
	}
	for _, k := range []Kind{KindWrite, KindWriteAP} {
		if !k.IsCAS() || k.IsRead() || !k.IsWrite() {
			t.Errorf("%v: wrong write predicates", k)
		}
	}
	if KindActivate.IsCAS() || KindPrecharge.IsCAS() {
		t.Error("ACT/PRE must not be CAS")
	}
	if !KindReadAP.AutoPrecharge() || !KindWriteAP.AutoPrecharge() || KindRead.AutoPrecharge() {
		t.Error("auto-precharge predicate wrong")
	}
	if got := KindActivate.String(); got != "ACT" {
		t.Errorf("KindActivate.String() = %q", got)
	}
}

func TestReadNeedsOpenRowAndTRCD(t *testing.T) {
	ch := NewChannel(testParams())
	wantReject(t, ch, rd(0, 0), 10, "closed bank")
	mustIssue(t, ch, act(0, 0, 5), 10)
	wantReject(t, ch, rd(0, 0), 10+int64(ch.P.TRCD)-1, "tRCD")
	mustIssue(t, ch, rd(0, 0), 10+int64(ch.P.TRCD))
}

func TestActivateToOpenBankRejected(t *testing.T) {
	ch := NewChannel(testParams())
	mustIssue(t, ch, act(0, 0, 5), 0)
	wantReject(t, ch, act(0, 0, 6), 100, "already open")
}

func TestTRCBetweenActivates(t *testing.T) {
	ch := NewChannel(testParams())
	p := ch.P
	mustIssue(t, ch, act(0, 0, 1), 0)
	mustIssue(t, ch, pre(0, 0), int64(p.TRAS))
	// tRP satisfied at tRAS+tRP = 39 = tRC, so tRC is the binding constraint
	// if we try one cycle early after a shorter precharge path.
	wantReject(t, ch, act(0, 0, 2), int64(p.TRC)-1, "tRP")
	mustIssue(t, ch, act(0, 0, 2), int64(p.TRC))
}

func TestPrechargeConstraints(t *testing.T) {
	p := testParams()

	t.Run("tRAS", func(t *testing.T) {
		ch := NewChannel(p)
		mustIssue(t, ch, act(0, 0, 1), 0)
		wantReject(t, ch, pre(0, 0), int64(p.TRAS)-1, "tRAS")
		mustIssue(t, ch, pre(0, 0), int64(p.TRAS))
	})
	t.Run("tRTP", func(t *testing.T) {
		ch := NewChannel(p)
		mustIssue(t, ch, act(0, 0, 1), 0)
		rdCycle := int64(p.TRAS) // read late so tRAS is already met
		mustIssue(t, ch, rd(0, 0), rdCycle)
		wantReject(t, ch, pre(0, 0), rdCycle+int64(p.TRTP)-1, "tRTP")
		mustIssue(t, ch, pre(0, 0), rdCycle+int64(p.TRTP))
	})
	t.Run("tWR", func(t *testing.T) {
		ch := NewChannel(p)
		mustIssue(t, ch, act(0, 0, 1), 0)
		wrCycle := int64(p.TRAS)
		mustIssue(t, ch, wr(0, 0), wrCycle)
		dataEnd := wrCycle + int64(p.TCWD) + int64(p.TBURST)
		wantReject(t, ch, pre(0, 0), dataEnd+int64(p.TWR)-1, "tWR")
		mustIssue(t, ch, pre(0, 0), dataEnd+int64(p.TWR))
	})
	t.Run("closed bank", func(t *testing.T) {
		ch := NewChannel(p)
		wantReject(t, ch, pre(0, 0), 0, "closed bank")
	})
}

func TestReadAutoPrecharge(t *testing.T) {
	p := testParams()
	ch := NewChannel(p)
	mustIssue(t, ch, act(0, 0, 1), 0)
	mustIssue(t, ch, rdap(0, 0), int64(p.TRCD))
	if ch.OpenRow(0, 0) != ClosedRow {
		t.Fatal("RDAP should close the row")
	}
	// Auto-precharge begins at max(ACT+tRAS, RD+tRTP) = max(28, 11+6) = 28,
	// so the next ACT is legal at 28 + tRP = 39 (= tRC here).
	preStart := int64(p.TRAS)
	wantReject(t, ch, act(0, 0, 2), preStart+int64(p.TRP)-1, "tR")
	mustIssue(t, ch, act(0, 0, 2), preStart+int64(p.TRP))
}

func TestWriteAutoPrechargeTiming(t *testing.T) {
	p := testParams()
	ch := NewChannel(p)
	mustIssue(t, ch, act(0, 0, 1), 0)
	wrCycle := int64(p.TRCD)
	mustIssue(t, ch, wrap(0, 0), wrCycle)
	// Precharge begins at write data end + tWR = 11+5+4+12 = 32 > tRAS.
	preStart := wrCycle + int64(p.TCWD) + int64(p.TBURST) + int64(p.TWR)
	nextAct := preStart + int64(p.TRP)
	wantReject(t, ch, act(0, 0, 2), nextAct-1, "tRP")
	mustIssue(t, ch, act(0, 0, 2), nextAct)
}

func TestTRRDAndTFAW(t *testing.T) {
	p := testParams()
	ch := NewChannel(p)
	// Four activates to different banks of rank 0 spaced exactly tRRD.
	var cycles []int64
	for i := 0; i < 4; i++ {
		c := int64(i * p.TRRD)
		mustIssue(t, ch, act(0, i, 1), c)
		cycles = append(cycles, c)
	}
	// Fifth ACT: tRRD would allow 4*tRRD=20, but tFAW requires cycles[0]+24.
	wantReject(t, ch, act(0, 4, 1), cycles[3]+int64(p.TRRD), "tFAW")
	mustIssue(t, ch, act(0, 4, 1), cycles[0]+int64(p.TFAW))

	// tRRD alone.
	wantReject(t, ch, act(0, 5, 1), cycles[0]+int64(p.TFAW)+int64(p.TRRD)-1, "tRRD")
}

func TestTCCDSameRank(t *testing.T) {
	p := testParams()
	ch := NewChannel(p)
	mustIssue(t, ch, act(0, 0, 1), 0)
	mustIssue(t, ch, act(0, 1, 1), int64(p.TRRD))
	c0 := int64(p.TRCD + p.TRRD)
	mustIssue(t, ch, rd(0, 0), c0)
	wantReject(t, ch, rd(0, 1), c0+int64(p.TCCD)-1, "tCCD")
	mustIssue(t, ch, rd(0, 1), c0+int64(p.TCCD))
}

func TestWriteToReadTWTR(t *testing.T) {
	p := testParams()
	ch := NewChannel(p)
	mustIssue(t, ch, act(0, 0, 1), 0)
	mustIssue(t, ch, act(0, 1, 1), int64(p.TRRD))
	wrCycle := int64(p.TRCD + p.TRRD)
	mustIssue(t, ch, wr(0, 0), wrCycle)
	dataEnd := wrCycle + int64(p.TCWD) + int64(p.TBURST)
	// Read to the same rank must wait tWTR after write data; total spacing
	// equals the paper's Wr2Rd = tCWD + tBURST + tWTR = 15.
	wantReject(t, ch, rd(0, 1), dataEnd+int64(p.TWTR)-1, "tWTR")
	mustIssue(t, ch, rd(0, 1), wrCycle+int64(p.WriteToReadGap()))
}

func TestReadToWriteDataBus(t *testing.T) {
	p := testParams()
	ch := NewChannel(p)
	mustIssue(t, ch, act(0, 0, 1), 0)
	mustIssue(t, ch, act(0, 1, 1), int64(p.TRRD))
	c0 := int64(p.TRCD + p.TRRD)
	mustIssue(t, ch, rd(0, 0), c0)
	// A write CAS one cycle before Rd2Wr collides on the data bus.
	wantReject(t, ch, wr(0, 1), c0+int64(p.ReadToWriteGap())-1, "data bus")
	mustIssue(t, ch, wr(0, 1), c0+int64(p.ReadToWriteGap()))
}

func TestRankToRankSwitchTRTRS(t *testing.T) {
	p := testParams()
	ch := NewChannel(p)
	mustIssue(t, ch, act(0, 0, 1), 0)
	mustIssue(t, ch, act(1, 0, 1), 1)
	c0 := int64(p.TRCD + 1)
	mustIssue(t, ch, rd(0, 0), c0)
	// Back-to-back reads on different ranks need tBURST+tRTRS spacing.
	wantReject(t, ch, rd(1, 0), c0+int64(p.TBURST+p.TRTRS)-1, "data bus")
	mustIssue(t, ch, rd(1, 0), c0+int64(p.TBURST+p.TRTRS))
}

func TestSameRankBackToBackReadsNeedOnlyTCCD(t *testing.T) {
	p := testParams()
	ch := NewChannel(p)
	mustIssue(t, ch, act(0, 0, 1), 0)
	mustIssue(t, ch, act(0, 1, 1), int64(p.TRRD))
	c0 := int64(p.TRCD + p.TRRD)
	mustIssue(t, ch, rd(0, 0), c0)
	mustIssue(t, ch, rd(0, 1), c0+int64(p.TCCD)) // contiguous bursts, same rank
}

func TestCommandBusOneCommandPerCycle(t *testing.T) {
	ch := NewChannel(testParams())
	mustIssue(t, ch, act(0, 0, 1), 5)
	wantReject(t, ch, act(1, 0, 1), 5, "command bus")
	wantReject(t, ch, act(1, 0, 1), 4, "command bus") // also out of order
	mustIssue(t, ch, act(1, 0, 1), 6)
}

func TestRefresh(t *testing.T) {
	p := testParams()
	ch := NewChannel(p)
	mustIssue(t, ch, act(0, 0, 1), 0)
	wantReject(t, ch, Command{Kind: KindRefresh, Rank: 0}, 100, "open")
	mustIssue(t, ch, pre(0, 0), int64(p.TRAS))
	refCycle := int64(p.TRAS + p.TRP)
	mustIssue(t, ch, Command{Kind: KindRefresh, Rank: 0}, refCycle)
	wantReject(t, ch, act(0, 0, 1), refCycle+int64(p.TRFC)-1, "tRFC")
	mustIssue(t, ch, act(0, 0, 1), refCycle+int64(p.TRFC))
	if ch.Counters.Refreshes != 1 {
		t.Errorf("Refreshes = %d, want 1", ch.Counters.Refreshes)
	}
	// Refresh must not block other ranks.
	ch2 := NewChannel(p)
	mustIssue(t, ch2, Command{Kind: KindRefresh, Rank: 0}, 0)
	mustIssue(t, ch2, act(1, 0, 1), 1)
}

func TestPowerDownUp(t *testing.T) {
	p := testParams()
	ch := NewChannel(p)
	mustIssue(t, ch, Command{Kind: KindPowerDown, Rank: 0}, 10)
	if !ch.PoweredDown(0) {
		t.Fatal("rank 0 should be powered down")
	}
	wantReject(t, ch, act(0, 0, 1), 20, "powered down")
	mustIssue(t, ch, Command{Kind: KindPowerUp, Rank: 0}, 50)
	if ch.PoweredDown(0) {
		t.Fatal("rank 0 should be powered up")
	}
	if got := ch.PowerDownCycles(0); got != 40 {
		t.Errorf("PowerDownCycles = %d, want 40", got)
	}
	wantReject(t, ch, act(0, 0, 1), 50+int64(p.TXP)-1, "tXP")
	mustIssue(t, ch, act(0, 0, 1), 50+int64(p.TXP))
	// Power-down of a rank with an open bank is illegal.
	wantReject(t, ch, Command{Kind: KindPowerDown, Rank: 0}, 200, "open")
	// Power-up of a powered-up rank is illegal.
	wantReject(t, ch, Command{Kind: KindPowerUp, Rank: 0}, 200, "powered-up")
}

func TestSuppressedIssueKeepsTimingButSplitsCounters(t *testing.T) {
	p := testParams()
	ch := NewChannel(p)
	if err := ch.IssueEx(act(0, 0, 1), 0, true); err != nil {
		t.Fatal(err)
	}
	if err := ch.IssueEx(rdap(0, 0), int64(p.TRCD), true); err != nil {
		t.Fatal(err)
	}
	if ch.Counters.Acts != 0 || ch.Counters.SuppressedActs != 1 {
		t.Errorf("Acts=%d SuppressedActs=%d, want 0/1", ch.Counters.Acts, ch.Counters.SuppressedActs)
	}
	if ch.Counters.Reads != 0 || ch.Counters.SuppressedReads != 1 {
		t.Errorf("Reads=%d SuppressedReads=%d, want 0/1", ch.Counters.Reads, ch.Counters.SuppressedReads)
	}
	if ch.Counters.DataBusBusy != 0 {
		t.Errorf("suppressed read must not count data bus busy, got %d", ch.Counters.DataBusBusy)
	}
	// The timing footprint is identical to a real RDAP: same-bank ACT must
	// still wait for the auto-precharge.
	wantReject(t, ch, act(0, 0, 2), int64(p.TRAS+p.TRP)-1, "tR")
}

func TestCheckerRecordsWithoutCascading(t *testing.T) {
	p := testParams()
	c := NewChecker(p)
	c.Feed(rd(0, 0), 0) // invalid: closed bank
	c.Feed(act(0, 0, 1), 1)
	c.Feed(rd(0, 0), 1+int64(p.TRCD))
	if c.Ok() {
		t.Fatal("checker should have recorded the closed-bank read")
	}
	if len(c.Violations()) != 1 {
		t.Fatalf("violations = %d, want 1: %v", len(c.Violations()), c.Violations())
	}
	if c.Commands() != 3 {
		t.Errorf("Commands = %d, want 3", c.Commands())
	}
	if c.Counters().Reads != 1 {
		t.Errorf("valid read should have applied, Reads = %d", c.Counters().Reads)
	}
}

func TestTimingErrorMessage(t *testing.T) {
	ch := NewChannel(testParams())
	err := ch.CanIssue(rd(0, 0), 3)
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	for _, want := range []string{"RD", "cycle 3", "closed bank"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestBadTargetsRejected(t *testing.T) {
	ch := NewChannel(testParams())
	if err := ch.CanIssue(act(99, 0, 1), 0); err == nil {
		t.Error("rank out of range should be rejected")
	}
	if err := ch.CanIssue(act(0, 99, 1), 0); err == nil {
		t.Error("bank out of range should be rejected")
	}
}

// TestGreedyClosedPageStreamIsLegal drives a long pseudo-random closed-page
// request stream through the channel using a greedy earliest-issue policy and
// requires that every command eventually issues and passes validation.
func TestGreedyClosedPageStreamIsLegal(t *testing.T) {
	p := testParams()
	ch := NewChannel(p)
	seed := uint64(12345)
	next := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	cycle := int64(0)
	issueASAP := func(cmd Command) int64 {
		for tries := 0; tries < 10000; tries++ {
			err := ch.Issue(cmd, cycle)
			if err == nil {
				return cycle
			}
			var te *TimingError
			if errors.As(err, &te) && te.ReadyAt > cycle && te.ReadyAt != NeverCycle {
				cycle = te.ReadyAt
				continue
			}
			cycle++
		}
		t.Fatalf("command %v never became issuable", cmd)
		return 0
	}
	for i := 0; i < 500; i++ {
		r := next()
		rank := int(r % uint64(p.RanksPerChan))
		bank := int((r >> 8) % uint64(p.BanksPerRank))
		row := int((r >> 16) % uint64(p.RowsPerBank))
		write := (r>>40)&1 == 0
		issueASAP(act(rank, bank, row))
		if write {
			issueASAP(wrap(rank, bank))
		} else {
			issueASAP(rdap(rank, bank))
		}
	}
	got := ch.Counters.Acts
	if got != 500 {
		t.Fatalf("Acts = %d, want 500", got)
	}
	if ch.Counters.Reads+ch.Counters.Writes != 500 {
		t.Fatalf("CAS count = %d, want 500", ch.Counters.Reads+ch.Counters.Writes)
	}
}
