package dram

import (
	"strings"
	"testing"
)

// TestCheckerCascadeIsolation pins the checker property the runtime monitor
// relies on: an invalid command is recorded and NOT applied, so one fault
// yields one violation instead of poisoning the channel state and
// cascading into spurious violations on every later command.
func TestCheckerCascadeIsolation(t *testing.T) {
	p := DDR3_1600()
	c := NewChecker(p)

	act := Command{Kind: KindActivate, Rank: 0, Bank: 0, Row: 5}
	c.Feed(act, 10)
	if !c.Ok() {
		t.Fatalf("legal ACT rejected: %v", c.Violations())
	}

	// Illegal: the bank is already open. Must be flagged — and must NOT
	// overwrite the open row or the activate timestamp.
	bad := Command{Kind: KindActivate, Rank: 0, Bank: 0, Row: 9}
	c.Feed(bad, 12)
	if n := len(c.Violations()); n != 1 {
		t.Fatalf("premature ACT produced %d violations, want 1", n)
	}
	if v := c.Violations()[0].Error(); !strings.Contains(v, "already open") {
		t.Errorf("violation %q does not name the broken constraint", v)
	}

	// This read is legal only against the pre-fault state (row 5 open since
	// cycle 10). If the bad ACT had been applied, tRCD from cycle 12 would
	// reject it and the row would be 9.
	read := Command{Kind: KindRead, Rank: 0, Bank: 0, Row: 5}
	c.Feed(read, 10+int64(p.TRCD))
	if n := len(c.Violations()); n != 1 {
		t.Fatalf("bad command cascaded: read after isolated fault flagged, violations=%v", c.Violations())
	}
	if c.Commands() != 3 {
		t.Errorf("Commands() = %d, want 3 (rejected commands still count as fed)", c.Commands())
	}
}

// TestCheckerDerate: the same stream that is legal at nominal timings must
// be flagged by a derated checker — the mechanism the fault campaign uses
// to model marginal hardware behind a nominally planned schedule.
func TestCheckerDerate(t *testing.T) {
	p := DDR3_1600()
	feed := func(c *Checker) {
		c.Feed(Command{Kind: KindActivate, Rank: 0, Bank: 0, Row: 5}, 10)
		c.Feed(Command{Kind: KindRead, Rank: 0, Bank: 0, Row: 5}, 10+int64(p.TRCD))
	}

	nominal := NewChecker(p)
	feed(nominal)
	if !nominal.Ok() {
		t.Fatalf("nominal stream rejected: %v", nominal.Violations())
	}

	derated := NewChecker(p)
	derated.SetDerate(-1, Derate{TRCD: 2})
	feed(derated)
	if derated.Ok() {
		t.Fatal("tRCD-derated checker accepted a nominal-tRCD stream")
	}
	if v := derated.Violations()[0].Error(); !strings.Contains(v, "tRCD") {
		t.Errorf("violation %q does not name tRCD", v)
	}

	// The derate is per-rank: rank 1 keeps nominal timings.
	ranked := NewChecker(p)
	ranked.SetDerate(0, Derate{TRCD: 2})
	ranked.Feed(Command{Kind: KindActivate, Rank: 1, Bank: 0, Row: 5}, 10)
	ranked.Feed(Command{Kind: KindRead, Rank: 1, Bank: 0, Row: 5}, 10+int64(p.TRCD))
	if !ranked.Ok() {
		t.Fatalf("rank-0 derate leaked into rank 1: %v", ranked.Violations())
	}
}
