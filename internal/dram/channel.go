package dram

import (
	"errors"
	"fmt"
)

// NeverCycle is a sentinel for "has not happened"; it is far enough in the
// past that no timing constraint measured from it can ever block.
const NeverCycle = int64(-1) << 60

// ClosedRow marks a bank with no open row.
const ClosedRow = -1

// TimingError describes a rejected command: which constraint failed and
// the earliest cycle at which the command could legally issue (best effort).
type TimingError struct {
	Cmd        Command
	Cycle      int64
	Constraint string
	ReadyAt    int64
}

// Error implements the error interface.
func (e *TimingError) Error() string {
	return fmt.Sprintf("dram: %v at cycle %d violates %s (ready at %d)", e.Cmd, e.Cycle, e.Constraint, e.ReadyAt)
}

type bankState struct {
	openRow        int   // ClosedRow when precharged/precharging
	lastAct        int64 // cycle of last ACT
	prechargeStart int64 // cycle the most recent precharge began (explicit or auto)
	lastReadCAS    int64
	writeDataEnd   int64 // end (exclusive) of the most recent write burst
}

type rankState struct {
	banks            []bankState
	actHist          [4]int64 // most recent ACT cycles, actHist[0] newest
	lastCAS          int64
	lastWriteDataEnd int64
	refreshUntil     int64 // rank busy with refresh until this cycle (exclusive)
	poweredDown      bool
	powerDownStart   int64
	powerUpReady     int64
	pdCycles         int64 // accumulated powered-down cycles

	// Per-bank-group state for DDR4 long timings (length BankGroups, or 1).
	groupLastAct          []int64
	groupLastCAS          []int64
	groupLastWriteDataEnd []int64
}

type dataSlot struct {
	start, end int64 // [start, end) on the data bus
	rank       int
}

// Counters aggregates channel activity for statistics and the energy model.
// Suppressed counts record commands whose timing footprint was modeled but
// whose DRAM operation was elided (energy optimization 1 and 2 in §5.2).
type Counters struct {
	Acts, Reads, Writes, Precharges, Refreshes        int64
	SuppressedActs, SuppressedReads, SuppressedWrites int64
	SuppressedPrecharges                              int64
	CmdBusBusy                                        int64
	DataBusBusy                                       int64
	PowerDowns, PowerUps                              int64
}

// Add accumulates another channel's counters into c — every field, so a
// multi-channel aggregate stays self-consistent (the legacy merge summed
// only a subset, leaving ratios over the rest silently wrong).
func (c *Counters) Add(o Counters) {
	c.Acts += o.Acts
	c.Reads += o.Reads
	c.Writes += o.Writes
	c.Precharges += o.Precharges
	c.Refreshes += o.Refreshes
	c.SuppressedActs += o.SuppressedActs
	c.SuppressedReads += o.SuppressedReads
	c.SuppressedWrites += o.SuppressedWrites
	c.SuppressedPrecharges += o.SuppressedPrecharges
	c.CmdBusBusy += o.CmdBusBusy
	c.DataBusBusy += o.DataBusBusy
	c.PowerDowns += o.PowerDowns
	c.PowerUps += o.PowerUps
}

// ObsMetrics contributes the channel counters to an observability snapshot
// (structurally satisfies obs.MetricSource without importing it).
func (c Counters) ObsMetrics(emit func(name string, value float64)) {
	emit("acts", float64(c.Acts))
	emit("reads", float64(c.Reads))
	emit("writes", float64(c.Writes))
	emit("precharges", float64(c.Precharges))
	emit("refreshes", float64(c.Refreshes))
	emit("suppressed_acts", float64(c.SuppressedActs))
	emit("suppressed_reads", float64(c.SuppressedReads))
	emit("suppressed_writes", float64(c.SuppressedWrites))
	emit("suppressed_precharges", float64(c.SuppressedPrecharges))
	emit("cmd_bus_busy", float64(c.CmdBusBusy))
	emit("data_bus_busy", float64(c.DataBusBusy))
	emit("power_downs", float64(c.PowerDowns))
	emit("power_ups", float64(c.PowerUps))
}

// Channel models one DDR3 channel: its command bus, data bus, and the
// ranks/banks behind them. The zero value is not usable; use NewChannel.
type Channel struct {
	P Params

	ranks        []rankState
	derate       []Derate // per-rank additive timing margins (nil = nominal)
	lastCmdCycle int64
	dataOcc      []dataSlot // ring of recent/future data-bus occupancy
	dataHead     int
	now          int64 // latest cycle seen (for power-down accounting)

	Counters Counters

	// OnIssue, when non-nil, observes every successfully issued command.
	OnIssue func(cmd Command, cycle int64, suppressed bool)
}

const dataOccWindow = 16

// NewChannel builds a channel in the all-banks-precharged state.
func NewChannel(p Params) *Channel {
	ch := &Channel{P: p, lastCmdCycle: NeverCycle}
	groups := p.BankGroups
	if groups < 1 {
		groups = 1
	}
	ch.ranks = make([]rankState, p.RanksPerChan)
	for r := range ch.ranks {
		rk := &ch.ranks[r]
		rk.banks = make([]bankState, p.BanksPerRank)
		rk.lastCAS = NeverCycle
		rk.lastWriteDataEnd = NeverCycle
		rk.refreshUntil = NeverCycle
		rk.powerUpReady = NeverCycle
		for i := range rk.actHist {
			rk.actHist[i] = NeverCycle
		}
		rk.groupLastAct = make([]int64, groups)
		rk.groupLastCAS = make([]int64, groups)
		rk.groupLastWriteDataEnd = make([]int64, groups)
		for g := 0; g < groups; g++ {
			rk.groupLastAct[g] = NeverCycle
			rk.groupLastCAS[g] = NeverCycle
			rk.groupLastWriteDataEnd[g] = NeverCycle
		}
		for b := range rk.banks {
			bk := &rk.banks[b]
			bk.openRow = ClosedRow
			bk.lastAct = NeverCycle
			bk.prechargeStart = NeverCycle
			bk.lastReadCAS = NeverCycle
			bk.writeDataEnd = NeverCycle
		}
	}
	ch.dataOcc = make([]dataSlot, 0, dataOccWindow)
	return ch
}

// OpenRow returns the row currently open in the bank, or ClosedRow.
func (ch *Channel) OpenRow(rank, bank int) int { return ch.ranks[rank].banks[bank].openRow }

// PoweredDown reports whether the rank is in a power-down state.
func (ch *Channel) PoweredDown(rank int) bool { return ch.ranks[rank].poweredDown }

// PowerDownCycles returns the accumulated powered-down cycles for the rank,
// counting an ongoing power-down up to the most recent command cycle seen.
func (ch *Channel) PowerDownCycles(rank int) int64 {
	rk := &ch.ranks[rank]
	c := rk.pdCycles
	if rk.poweredDown && ch.now > rk.powerDownStart {
		c += ch.now - rk.powerDownStart
	}
	return c
}

func (ch *Channel) bank(cmd Command) *bankState { return &ch.ranks[cmd.Rank].banks[cmd.Bank] }

// errNotReady is the shared rejection value of the allocation-free probe
// path: schedulers that poll legality every cycle and back off on failure
// never read the constraint detail, so building a TimingError for them
// would allocate on every failed probe of the hot loop.
var errNotReady = errors.New("dram: command not ready (probe)")

func reject(explain bool, cmd Command, cycle int64, constraint string, readyAt int64) error {
	if !explain {
		return errNotReady
	}
	return &TimingError{Cmd: cmd, Cycle: cycle, Constraint: constraint, ReadyAt: readyAt}
}

// CanIssue reports whether cmd may legally issue on the command bus at the
// given cycle, checking bus availability and every timing constraint. The
// returned error carries the violated constraint and the ready-at cycle.
func (ch *Channel) CanIssue(cmd Command, cycle int64) error {
	return ch.canIssue(cmd, cycle, true)
}

// Ready is CanIssue as an allocation-free predicate, for schedulers that
// probe legality in their hot loop and treat a rejection as back-off.
func (ch *Channel) Ready(cmd Command, cycle int64) bool {
	return ch.canIssue(cmd, cycle, false) == nil
}

// canIssue is the shared check body; explain selects between detailed
// TimingError construction and the shared errNotReady sentinel.
func (ch *Channel) canIssue(cmd Command, cycle int64, explain bool) error {
	if cmd.Rank < 0 || cmd.Rank >= len(ch.ranks) {
		return fmt.Errorf("dram: rank %d out of range [0,%d)", cmd.Rank, len(ch.ranks))
	}
	if cmd.Kind != KindRefresh && cmd.Kind != KindPowerDown && cmd.Kind != KindPowerUp {
		if cmd.Bank < 0 || cmd.Bank >= ch.P.BanksPerRank {
			return fmt.Errorf("dram: bank %d out of range [0,%d)", cmd.Bank, ch.P.BanksPerRank)
		}
	}
	if cycle <= ch.lastCmdCycle {
		return reject(explain, cmd, cycle, "command bus (one command per cycle, in order)", ch.lastCmdCycle+1)
	}
	rk := &ch.ranks[cmd.Rank]
	if rk.poweredDown && cmd.Kind != KindPowerUp {
		return reject(explain, cmd, cycle, "rank powered down", cycle)
	}
	if !rk.poweredDown && cycle < rk.powerUpReady && cmd.Kind != KindPowerDown {
		return reject(explain, cmd, cycle, "tXP (power-up exit)", rk.powerUpReady)
	}
	if cycle < rk.refreshUntil && cmd.Kind != KindPowerDown && cmd.Kind != KindPowerUp {
		return reject(explain, cmd, cycle, "tRFC (refresh in progress)", rk.refreshUntil)
	}

	p := ch.P
	der := ch.der(cmd.Rank)
	switch cmd.Kind {
	case KindActivate:
		bk := ch.bank(cmd)
		if bk.openRow != ClosedRow {
			return reject(explain, cmd, cycle, "bank already open (needs PRE)", NeverCycle)
		}
		if bk.prechargeStart != NeverCycle && cycle < bk.prechargeStart+int64(p.TRP+der.TRP) {
			return reject(explain, cmd, cycle, "tRP", bk.prechargeStart+int64(p.TRP+der.TRP))
		}
		if cycle < bk.lastAct+int64(p.TRC+der.TRC) {
			return reject(explain, cmd, cycle, "tRC", bk.lastAct+int64(p.TRC+der.TRC))
		}
		if cycle < rk.actHist[0]+int64(p.RRDOther()+der.TRRD) {
			return reject(explain, cmd, cycle, "tRRD", rk.actHist[0]+int64(p.RRDOther()+der.TRRD))
		}
		if g := p.BankGroup(cmd.Bank); cycle < rk.groupLastAct[g]+int64(p.RRDSame()+der.TRRD) {
			return reject(explain, cmd, cycle, "tRRD_L (same bank group)", rk.groupLastAct[g]+int64(p.RRDSame()+der.TRRD))
		}
		if oldest := rk.actHist[3]; oldest != NeverCycle && cycle < oldest+int64(p.TFAW+der.TFAW) {
			return reject(explain, cmd, cycle, "tFAW", oldest+int64(p.TFAW+der.TFAW))
		}

	case KindRead, KindReadAP:
		bk := ch.bank(cmd)
		if bk.openRow == ClosedRow {
			return reject(explain, cmd, cycle, "read to closed bank", NeverCycle)
		}
		if cycle < bk.lastAct+int64(p.TRCD+der.TRCD) {
			return reject(explain, cmd, cycle, "tRCD", bk.lastAct+int64(p.TRCD+der.TRCD))
		}
		if cycle < rk.lastCAS+int64(p.CCDOther()+der.TCCD) {
			return reject(explain, cmd, cycle, "tCCD", rk.lastCAS+int64(p.CCDOther()+der.TCCD))
		}
		if cycle < rk.lastWriteDataEnd+int64(p.WTROther()+der.TWTR) {
			return reject(explain, cmd, cycle, "tWTR", rk.lastWriteDataEnd+int64(p.WTROther()+der.TWTR))
		}
		if g := p.BankGroup(cmd.Bank); true {
			if cycle < rk.groupLastCAS[g]+int64(p.CCDSame()+der.TCCD) {
				return reject(explain, cmd, cycle, "tCCD_L (same bank group)", rk.groupLastCAS[g]+int64(p.CCDSame()+der.TCCD))
			}
			if cycle < rk.groupLastWriteDataEnd[g]+int64(p.WTRSame()+der.TWTR) {
				return reject(explain, cmd, cycle, "tWTR_L (same bank group)", rk.groupLastWriteDataEnd[g]+int64(p.WTRSame()+der.TWTR))
			}
		}
		if err := ch.checkDataBus(cmd, cycle, cycle+int64(p.TCAS), explain); err != nil {
			return err
		}

	case KindWrite, KindWriteAP:
		bk := ch.bank(cmd)
		if bk.openRow == ClosedRow {
			return reject(explain, cmd, cycle, "write to closed bank", NeverCycle)
		}
		if cycle < bk.lastAct+int64(p.TRCD+der.TRCD) {
			return reject(explain, cmd, cycle, "tRCD", bk.lastAct+int64(p.TRCD+der.TRCD))
		}
		if cycle < rk.lastCAS+int64(p.CCDOther()+der.TCCD) {
			return reject(explain, cmd, cycle, "tCCD", rk.lastCAS+int64(p.CCDOther()+der.TCCD))
		}
		if g := p.BankGroup(cmd.Bank); cycle < rk.groupLastCAS[g]+int64(p.CCDSame()+der.TCCD) {
			return reject(explain, cmd, cycle, "tCCD_L (same bank group)", rk.groupLastCAS[g]+int64(p.CCDSame()+der.TCCD))
		}
		if err := ch.checkDataBus(cmd, cycle, cycle+int64(p.TCWD), explain); err != nil {
			return err
		}

	case KindPrecharge:
		bk := ch.bank(cmd)
		if bk.openRow == ClosedRow {
			return reject(explain, cmd, cycle, "precharge to closed bank", NeverCycle)
		}
		if cycle < bk.lastAct+int64(p.TRAS+der.TRAS) {
			return reject(explain, cmd, cycle, "tRAS", bk.lastAct+int64(p.TRAS+der.TRAS))
		}
		if cycle < bk.lastReadCAS+int64(p.TRTP+der.TRTP) {
			return reject(explain, cmd, cycle, "tRTP", bk.lastReadCAS+int64(p.TRTP+der.TRTP))
		}
		if cycle < bk.writeDataEnd+int64(p.TWR+der.TWR) {
			return reject(explain, cmd, cycle, "tWR", bk.writeDataEnd+int64(p.TWR+der.TWR))
		}

	case KindRefresh:
		for b := range rk.banks {
			bk := &rk.banks[b]
			if bk.openRow != ClosedRow {
				if !explain {
					return errNotReady
				}
				return reject(explain, cmd, cycle, fmt.Sprintf("refresh with bank %d open", b), NeverCycle)
			}
			if bk.prechargeStart != NeverCycle && cycle < bk.prechargeStart+int64(p.TRP+der.TRP) {
				return reject(explain, cmd, cycle, "tRP before refresh", bk.prechargeStart+int64(p.TRP+der.TRP))
			}
		}

	case KindPowerDown:
		for b := range rk.banks {
			if rk.banks[b].openRow != ClosedRow {
				if !explain {
					return errNotReady
				}
				return reject(explain, cmd, cycle, fmt.Sprintf("power-down with bank %d open", b), NeverCycle)
			}
		}
		if cycle < rk.refreshUntil {
			return reject(explain, cmd, cycle, "power-down during refresh", rk.refreshUntil)
		}

	case KindPowerUp:
		if !rk.poweredDown {
			return reject(explain, cmd, cycle, "power-up of powered-up rank", NeverCycle)
		}

	default:
		return fmt.Errorf("dram: unknown command kind %v", cmd.Kind)
	}
	return nil
}

// checkDataBus validates a burst starting at dataStart against recent and
// scheduled transfers: bursts must not overlap, and transfers on different
// ranks must be separated by tRTRS.
func (ch *Channel) checkDataBus(cmd Command, cycle, dataStart int64, explain bool) error {
	p := ch.P
	end := dataStart + int64(p.TBURST)
	for _, s := range ch.dataOcc {
		gap := int64(0)
		if s.rank != cmd.Rank {
			gap = int64(p.TRTRS)
		}
		if dataStart < s.end+gap && s.start < end+gap {
			if !explain {
				return errNotReady
			}
			return reject(explain, cmd, cycle,
				fmt.Sprintf("data bus conflict with rank %d burst [%d,%d)", s.rank, s.start, s.end),
				s.end+gap-int64(p.TCAS))
		}
	}
	return nil
}

// Issue applies cmd at cycle, first validating it with CanIssue.
func (ch *Channel) Issue(cmd Command, cycle int64) error {
	return ch.IssueEx(cmd, cycle, false)
}

// IssueEx is Issue with control over suppression: a suppressed command
// advances all timing state (so the pipeline shape is unchanged) but is
// counted separately so the energy model can elide the DRAM operation.
func (ch *Channel) IssueEx(cmd Command, cycle int64, suppressed bool) error {
	if err := ch.CanIssue(cmd, cycle); err != nil {
		return err
	}
	p := ch.P
	rk := &ch.ranks[cmd.Rank]
	ch.lastCmdCycle = cycle
	if cycle > ch.now {
		ch.now = cycle
	}
	ch.Counters.CmdBusBusy++

	switch cmd.Kind {
	case KindActivate:
		bk := ch.bank(cmd)
		bk.openRow = cmd.Row
		bk.lastAct = cycle
		bk.prechargeStart = NeverCycle
		copy(rk.actHist[1:], rk.actHist[:3])
		rk.actHist[0] = cycle
		rk.groupLastAct[p.BankGroup(cmd.Bank)] = cycle
		if suppressed {
			ch.Counters.SuppressedActs++
		} else {
			ch.Counters.Acts++
		}

	case KindRead, KindReadAP:
		bk := ch.bank(cmd)
		bk.lastReadCAS = cycle
		rk.lastCAS = cycle
		rk.groupLastCAS[p.BankGroup(cmd.Bank)] = cycle
		ch.recordData(cmd.Rank, cycle+int64(p.TCAS))
		if cmd.Kind == KindReadAP {
			der := ch.der(cmd.Rank)
			start := cycle + int64(p.TRTP+der.TRTP)
			if s := bk.lastAct + int64(p.TRAS+der.TRAS); s > start {
				start = s
			}
			bk.prechargeStart = start
			bk.openRow = ClosedRow
			if suppressed {
				ch.Counters.SuppressedPrecharges++
			} else {
				ch.Counters.Precharges++
			}
		}
		if suppressed {
			ch.Counters.SuppressedReads++
		} else {
			ch.Counters.Reads++
			ch.Counters.DataBusBusy += int64(p.TBURST)
		}

	case KindWrite, KindWriteAP:
		bk := ch.bank(cmd)
		rk.lastCAS = cycle
		rk.groupLastCAS[p.BankGroup(cmd.Bank)] = cycle
		dataEnd := cycle + int64(p.TCWD) + int64(p.TBURST)
		bk.writeDataEnd = dataEnd
		rk.lastWriteDataEnd = dataEnd
		rk.groupLastWriteDataEnd[p.BankGroup(cmd.Bank)] = dataEnd
		ch.recordData(cmd.Rank, cycle+int64(p.TCWD))
		if cmd.Kind == KindWriteAP {
			der := ch.der(cmd.Rank)
			start := dataEnd + int64(p.TWR+der.TWR)
			if s := bk.lastAct + int64(p.TRAS+der.TRAS); s > start {
				start = s
			}
			bk.prechargeStart = start
			bk.openRow = ClosedRow
			if suppressed {
				ch.Counters.SuppressedPrecharges++
			} else {
				ch.Counters.Precharges++
			}
		}
		if suppressed {
			ch.Counters.SuppressedWrites++
		} else {
			ch.Counters.Writes++
			ch.Counters.DataBusBusy += int64(p.TBURST)
		}

	case KindPrecharge:
		bk := ch.bank(cmd)
		bk.prechargeStart = cycle
		bk.openRow = ClosedRow
		if suppressed {
			ch.Counters.SuppressedPrecharges++
		} else {
			ch.Counters.Precharges++
		}

	case KindRefresh:
		rk.refreshUntil = cycle + int64(p.TRFC)
		// After tRFC, banks are precharged and immediately activatable.
		for b := range rk.banks {
			rk.banks[b].prechargeStart = rk.refreshUntil - int64(p.TRP)
		}
		ch.Counters.Refreshes++

	case KindPowerDown:
		rk.poweredDown = true
		rk.powerDownStart = cycle
		ch.Counters.PowerDowns++

	case KindPowerUp:
		rk.poweredDown = false
		rk.pdCycles += cycle - rk.powerDownStart
		rk.powerUpReady = cycle + int64(p.TXP)
		ch.Counters.PowerUps++
	}

	if ch.OnIssue != nil {
		ch.OnIssue(cmd, cycle, suppressed)
	}
	return nil
}

func (ch *Channel) recordData(rank int, start int64) {
	slot := dataSlot{start: start, end: start + int64(ch.P.TBURST), rank: rank}
	if len(ch.dataOcc) < dataOccWindow {
		ch.dataOcc = append(ch.dataOcc, slot)
		return
	}
	// Replace the slot with the smallest end (it constrains nothing new).
	min := 0
	for i := 1; i < len(ch.dataOcc); i++ {
		if ch.dataOcc[i].end < ch.dataOcc[min].end {
			min = i
		}
	}
	ch.dataOcc[min] = slot
}
