package dram

import "fmt"

// ReferenceChecker is a second, independently written validator for DRAM
// command streams. Where Channel keeps incremental per-bank state machines
// (fast, used inside the simulator), the reference keeps the ENTIRE
// command history and re-derives every constraint by brute-force scanning
// on each command. The two implementations share no code paths beyond the
// Params struct; the differential tests drive random and adversarial
// streams through both and require identical accept/reject verdicts. The
// timing model is the security-critical component — this is its N-version
// check.
type ReferenceChecker struct {
	P Params

	history []refEvent
}

type refEvent struct {
	cmd   Command
	cycle int64
}

// NewReferenceChecker builds an empty reference validator.
func NewReferenceChecker(p Params) *ReferenceChecker {
	return &ReferenceChecker{P: p}
}

// dataInterval returns the [start, end) data-bus occupancy of a CAS event.
func (r *ReferenceChecker) dataInterval(e refEvent) (int64, int64, bool) {
	switch {
	case e.cmd.Kind.IsRead():
		s := e.cycle + int64(r.P.TCAS)
		return s, s + int64(r.P.TBURST), true
	case e.cmd.Kind.IsWrite():
		s := e.cycle + int64(r.P.TCWD)
		return s, s + int64(r.P.TBURST), true
	}
	return 0, 0, false
}

// rowOpenAt reconstructs the open row of (rank, bank) at the given cycle
// by scanning the history: the last ACT opens it, the first later PRE /
// auto-precharge / refresh closes it.
func (r *ReferenceChecker) rowOpenAt(rank, bank int, cycle int64) (int, bool) {
	row := ClosedRow
	open := false
	for _, e := range r.history {
		if e.cycle >= cycle {
			continue
		}
		switch {
		case e.cmd.Kind == KindActivate && e.cmd.Rank == rank && e.cmd.Bank == bank:
			row, open = e.cmd.Row, true
		case e.cmd.Kind == KindPrecharge && e.cmd.Rank == rank && e.cmd.Bank == bank:
			row, open = ClosedRow, false
		case e.cmd.Kind.AutoPrecharge() && e.cmd.Rank == rank && e.cmd.Bank == bank:
			row, open = ClosedRow, false
		case e.cmd.Kind == KindRefresh && e.cmd.Rank == rank:
			row, open = ClosedRow, false
		}
	}
	if !open {
		return ClosedRow, false
	}
	return row, true
}

// prechargeStart derives when the bank's most recent precharge began.
func (r *ReferenceChecker) prechargeStart(rank, bank int, before int64) (int64, bool) {
	start := int64(NeverCycle)
	found := false
	var lastAct int64 = NeverCycle
	for _, e := range r.history {
		if e.cycle >= before || e.cmd.Rank != rank {
			continue
		}
		switch {
		case e.cmd.Kind == KindActivate && e.cmd.Bank == bank:
			lastAct = e.cycle
			found = false // an ACT re-opens; prior precharge no longer pending
		case e.cmd.Kind == KindPrecharge && e.cmd.Bank == bank:
			start, found = e.cycle, true
		case e.cmd.Kind == KindReadAP && e.cmd.Bank == bank:
			s := e.cycle + int64(r.P.TRTP)
			if lastAct != NeverCycle && lastAct+int64(r.P.TRAS) > s {
				s = lastAct + int64(r.P.TRAS)
			}
			start, found = s, true
		case e.cmd.Kind == KindWriteAP && e.cmd.Bank == bank:
			s := e.cycle + int64(r.P.TCWD) + int64(r.P.TBURST) + int64(r.P.TWR)
			if lastAct != NeverCycle && lastAct+int64(r.P.TRAS) > s {
				s = lastAct + int64(r.P.TRAS)
			}
			start, found = s, true
		case e.cmd.Kind == KindRefresh:
			start, found = e.cycle+int64(r.P.TRFC)-int64(r.P.TRP), true
		}
	}
	return start, found
}

// Check validates one command against the whole history; nil means legal.
// It covers the constraint set the simulator's schedulers exercise (it
// does not model power-down, which the FS engine accounts for outside the
// command stream).
func (r *ReferenceChecker) Check(cmd Command, cycle int64) error {
	p := r.P
	fail := func(what string) error {
		return fmt.Errorf("reference: %v at %d violates %s", cmd, cycle, what)
	}

	// Command bus: strictly increasing cycles.
	for _, e := range r.history {
		if e.cycle >= cycle {
			return fail("command bus ordering")
		}
	}

	// Refresh busy window.
	for _, e := range r.history {
		if e.cmd.Kind == KindRefresh && e.cmd.Rank == cmd.Rank && cycle < e.cycle+int64(p.TRFC) {
			return fail("tRFC")
		}
	}

	switch cmd.Kind {
	case KindActivate:
		if _, open := r.rowOpenAt(cmd.Rank, cmd.Bank, cycle+1); open {
			return fail("bank open")
		}
		if s, ok := r.prechargeStart(cmd.Rank, cmd.Bank, cycle); ok && cycle < s+int64(p.TRP) {
			return fail("tRP")
		}
		acts := []int64{}
		for _, e := range r.history {
			if e.cmd.Kind != KindActivate || e.cmd.Rank != cmd.Rank {
				continue
			}
			if e.cmd.Bank == cmd.Bank && cycle < e.cycle+int64(p.TRC) {
				return fail("tRC")
			}
			if cycle < e.cycle+int64(p.RRDOther()) {
				return fail("tRRD")
			}
			if p.BankGroup(e.cmd.Bank) == p.BankGroup(cmd.Bank) && cycle < e.cycle+int64(p.RRDSame()) {
				return fail("tRRD_L")
			}
			acts = append(acts, e.cycle)
		}
		// tFAW: the new ACT plus any 4 prior within the window.
		inWindow := 0
		for _, a := range acts {
			if a > cycle-int64(p.TFAW) {
				inWindow++
			}
		}
		if inWindow >= 4 {
			return fail("tFAW")
		}

	case KindRead, KindReadAP, KindWrite, KindWriteAP:
		row, open := r.rowOpenAt(cmd.Rank, cmd.Bank, cycle+1)
		_ = row
		if !open {
			return fail("closed bank")
		}
		// tRCD from the opening ACT.
		var act int64 = NeverCycle
		for _, e := range r.history {
			if e.cmd.Kind == KindActivate && e.cmd.Rank == cmd.Rank && e.cmd.Bank == cmd.Bank && e.cycle < cycle {
				act = e.cycle
			}
		}
		if cycle < act+int64(p.TRCD) {
			return fail("tRCD")
		}
		for _, e := range r.history {
			if !e.cmd.Kind.IsCAS() || e.cmd.Rank != cmd.Rank {
				continue
			}
			if cycle < e.cycle+int64(p.CCDOther()) {
				return fail("tCCD")
			}
			if p.BankGroup(e.cmd.Bank) == p.BankGroup(cmd.Bank) && cycle < e.cycle+int64(p.CCDSame()) {
				return fail("tCCD_L")
			}
			if cmd.Kind.IsRead() && e.cmd.Kind.IsWrite() {
				end := e.cycle + int64(p.TCWD) + int64(p.TBURST)
				if cycle < end+int64(p.WTROther()) {
					return fail("tWTR")
				}
				if p.BankGroup(e.cmd.Bank) == p.BankGroup(cmd.Bank) && cycle < end+int64(p.WTRSame()) {
					return fail("tWTR_L")
				}
			}
		}
		// Data bus against every prior transfer.
		ns, ne, _ := r.dataInterval(refEvent{cmd: cmd, cycle: cycle})
		for _, e := range r.history {
			s, en, ok := r.dataInterval(e)
			if !ok {
				continue
			}
			gap := int64(0)
			if e.cmd.Rank != cmd.Rank {
				gap = int64(p.TRTRS)
			}
			if ns < en+gap && s < ne+gap {
				return fail("data bus")
			}
		}

	case KindPrecharge:
		if _, open := r.rowOpenAt(cmd.Rank, cmd.Bank, cycle+1); !open {
			return fail("closed bank")
		}
		for _, e := range r.history {
			if e.cmd.Rank != cmd.Rank || e.cmd.Bank != cmd.Bank {
				continue
			}
			switch {
			case e.cmd.Kind == KindActivate && cycle < e.cycle+int64(p.TRAS):
				return fail("tRAS")
			case e.cmd.Kind.IsRead() && cycle < e.cycle+int64(p.TRTP):
				return fail("tRTP")
			case e.cmd.Kind.IsWrite() && cycle < e.cycle+int64(p.TCWD)+int64(p.TBURST)+int64(p.TWR):
				return fail("tWR")
			}
		}

	case KindRefresh:
		for b := 0; b < p.BanksPerRank; b++ {
			if _, open := r.rowOpenAt(cmd.Rank, b, cycle+1); open {
				return fail("bank open before refresh")
			}
			if s, ok := r.prechargeStart(cmd.Rank, b, cycle); ok && cycle < s+int64(p.TRP) {
				return fail("tRP before refresh")
			}
		}

	default:
		return fail("unsupported command kind")
	}
	return nil
}

// Apply records the command (call after a successful Check, or to force
// history for adversarial tests).
func (r *ReferenceChecker) Apply(cmd Command, cycle int64) {
	r.history = append(r.history, refEvent{cmd: cmd, cycle: cycle})
}
