package fault

import (
	"reflect"
	"testing"

	"fsmem/internal/dram"
	"fsmem/internal/trace"
)

func TestInjectorFiresEachFaultOnce(t *testing.T) {
	plan := &Plan{
		Name: "once",
		Commands: []CommandFault{
			{AtCycle: 100, Kinds: []dram.Kind{dram.KindActivate}, Action: ActionDrop},
		},
	}
	in := NewInjector(plan, dram.DDR3_1600())
	act := dram.Command{Kind: dram.KindActivate, Rank: 0, Bank: 1, Domain: 2}

	if d, _ := in.Decide(act, 50); d != Pass {
		t.Fatal("fault fired before AtCycle")
	}
	if d, _ := in.Decide(dram.Command{Kind: dram.KindRead, Domain: 0}, 150); d != Pass {
		t.Fatal("fault fired on a non-matching kind")
	}
	if d, _ := in.Decide(act, 200); d != Drop {
		t.Fatal("matching command past AtCycle not dropped")
	}
	if d, _ := in.Decide(act, 300); d != Pass {
		t.Fatal("single-shot fault fired twice")
	}
	if in.Stats.Drops != 1 {
		t.Errorf("Drops = %d, want 1", in.Stats.Drops)
	}
	if got := in.FaultedDomains(); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("FaultedDomains = %v, want [2]", got)
	}
	if in.Active() {
		t.Error("injector still active with every fault fired and nothing queued")
	}
}

func TestInjectorDelayAndReplay(t *testing.T) {
	plan := &Plan{
		Commands: []CommandFault{
			{AtCycle: 10, Action: ActionDelay}, // Delay 0 clamps to 1
			{AtCycle: 10, Action: ActionDuplicate, Delay: 5},
		},
	}
	in := NewInjector(plan, dram.DDR3_1600())
	cmd := dram.Command{Kind: dram.KindRead, Domain: 1}

	d, at := in.Decide(cmd, 20)
	if d != Delay || at != 21 {
		t.Fatalf("Decide = %v at %d, want Delay at 21 (Delay<1 clamps to 1)", d, at)
	}
	in.AddReplay(cmd, at)

	d, at = in.Decide(cmd, 30)
	if d != Duplicate || at != 35 {
		t.Fatalf("Decide = %v at %d, want Duplicate at 35", d, at)
	}
	in.AddReplay(cmd, at)

	if due := in.Due(20); len(due) != 0 {
		t.Fatalf("Due(20) popped %d commands before their cycle", len(due))
	}
	if due := in.Due(21); len(due) != 1 || due[0].Cycle != 21 {
		t.Fatalf("Due(21) = %v, want the delayed command", due)
	}
	if due := in.Due(100); len(due) != 1 || due[0].Cycle != 35 {
		t.Fatalf("Due(100) = %v, want the duplicate", due)
	}
	if in.Stats.Delays != 1 || in.Stats.Duplicates != 1 {
		t.Errorf("stats = %+v, want one delay and one duplicate", in.Stats)
	}
}

func TestInjectorRefreshStormExpansion(t *testing.T) {
	p := dram.DDR3_1600()
	plan := &Plan{
		Loads: []LoadFault{{Kind: LoadRefreshStorm, Rank: 1, AtCycle: 500, Count: 3}},
	}
	in := NewInjector(plan, p)
	if !in.Active() {
		t.Fatal("injector with pending extras reports inactive")
	}
	due := in.Due(500 + 10*int64(p.TRFC+p.TRP))
	if len(due) != 3 {
		t.Fatalf("storm expanded to %d REFs, want 3", len(due))
	}
	spacing := int64(p.TRFC + p.TRP)
	for i, tc := range due {
		if tc.Cmd.Kind != dram.KindRefresh || tc.Cmd.Rank != 1 || tc.Cmd.Domain != dram.NoDomain {
			t.Errorf("extra %d = %+v, want an unattributed REF to rank 1", i, tc.Cmd)
		}
		if want := 500 + int64(i)*spacing; tc.Cycle != want {
			t.Errorf("extra %d at cycle %d, want %d (tRFC+tRP spacing)", i, tc.Cycle, want)
		}
	}
	if in.Stats.Extras != 3 {
		t.Errorf("Extras = %d, want 3", in.Stats.Extras)
	}
	if in.Active() {
		t.Error("drained storm still reports active")
	}
}

func TestZeroPlanInjectsNothing(t *testing.T) {
	in := NewInjector(&Plan{Name: "zero"}, dram.DDR3_1600())
	if in.Active() {
		t.Fatal("zero plan must be inert")
	}
	if d, _ := in.Decide(dram.Command{Kind: dram.KindActivate}, 1000); d != Pass {
		t.Fatal("zero plan perturbed a command")
	}
}

func TestPlanTargetDomains(t *testing.T) {
	plan := &Plan{Loads: []LoadFault{
		{Kind: LoadJitter, Domain: 1, Magnitude: 100},
		{Kind: LoadQueueSpike, Domain: 3, Count: 8},
		{Kind: LoadRefreshStorm, Rank: 0, Count: 2}, // domain-neutral: no target
	}}
	got := plan.TargetDomains()
	if !reflect.DeepEqual(got, map[int]bool{1: true, 3: true}) {
		t.Errorf("TargetDomains = %v, want {1,3}", got)
	}
}

func TestCampaignPlansDeterministic(t *testing.T) {
	a := CampaignPlans(4, 7)
	b := CampaignPlans(4, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (domains, seed) produced different campaign plans")
	}
	names := map[string]bool{}
	for _, p := range a {
		if names[p.Name] {
			t.Errorf("duplicate plan name %q", p.Name)
		}
		names[p.Name] = true
	}
	if len(a) < 8 {
		t.Errorf("campaign has only %d plans; all three fault layers should be covered", len(a))
	}
	// Single-domain configs must still get valid (self-targeting) plans.
	for _, p := range CampaignPlans(1, 7) {
		for _, l := range p.Loads {
			if l.Domain != 0 {
				t.Errorf("plan %s targets domain %d of a 1-domain config", p.Name, l.Domain)
			}
		}
	}
}

type fixedStream struct{ gap int }

func (f fixedStream) Next() trace.Ref { return trace.Ref{Gap: f.gap} }

func TestJitterStreamShiftsOnlyTargets(t *testing.T) {
	plan := &Plan{Seed: 9, Loads: []LoadFault{{Kind: LoadJitter, Domain: 1, Magnitude: 50}}}

	if s := plan.StreamFor(0, fixedStream{gap: 3}); s.Next().Gap != 3 {
		t.Fatal("jitter leaked into an untargeted domain")
	}

	jittered := plan.StreamFor(1, fixedStream{gap: 3})
	grew, n := 0, 200
	for i := 0; i < n; i++ {
		if jittered.Next().Gap > 3 {
			grew++
		}
	}
	if grew == 0 {
		t.Fatal("jittered stream never inflated a gap")
	}

	// Determinism: same plan, same domain, same draws.
	x, y := plan.StreamFor(1, fixedStream{gap: 3}), plan.StreamFor(1, fixedStream{gap: 3})
	for i := 0; i < 100; i++ {
		if x.Next() != y.Next() {
			t.Fatal("jitter streams with identical seeds diverged")
		}
	}
}
