package fault

import (
	"fsmem/internal/trace"
)

// jitterSeedSalt decorrelates the jitter RNG from every simulation RNG so a
// fault plan never perturbs unrelated random draws.
const jitterSeedSalt = 0x6a69747465727331

type jitterStream struct {
	inner trace.Stream
	rng   *trace.RNG
	mag   int
}

// JitterStream wraps one domain's reference stream, inflating every
// instruction gap by a seeded geometric draw with the given mean. The
// wrapped stream's own draws are untouched, so the jittered domain replays
// the same addresses on a shifted arrival process.
func JitterStream(inner trace.Stream, seed uint64, magnitude int) trace.Stream {
	if magnitude <= 0 {
		return inner
	}
	return &jitterStream{
		inner: inner,
		rng:   trace.NewRNG(seed ^ jitterSeedSalt),
		mag:   magnitude,
	}
}

func (j *jitterStream) Next() trace.Ref {
	r := j.inner.Next()
	r.Gap += j.rng.Geometric(float64(j.mag))
	return r
}

// StreamFor applies the plan's jitter faults to one domain's stream,
// returning the stream unchanged when the plan does not target the domain.
func (p *Plan) StreamFor(domain int, inner trace.Stream) trace.Stream {
	if p == nil {
		return inner
	}
	for _, l := range p.Loads {
		if l.Kind == LoadJitter && l.Domain == domain {
			inner = JitterStream(inner, p.Seed+uint64(domain), l.Magnitude)
		}
	}
	return inner
}

// Spikes returns the plan's queue-spike faults (the simulator turns each
// into a burst of extra demand reads at AtCycle).
func (p *Plan) Spikes() []LoadFault {
	if p == nil {
		return nil
	}
	var out []LoadFault
	for _, l := range p.Loads {
		if l.Kind == LoadQueueSpike {
			out = append(out, l)
		}
	}
	return out
}
