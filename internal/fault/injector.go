package fault

import (
	"math"
	"sort"

	"fsmem/internal/dram"
)

// Decision is the injector's verdict on one scheduler command.
type Decision int

const (
	// Pass lets the command through unperturbed.
	Pass Decision = iota
	// Drop elides the command (the scheduler still believes it issued).
	Drop
	// Delay elides the command now and replays it at the returned cycle.
	Delay
	// Duplicate lets the command through and replays a copy later.
	Duplicate
)

// TimedCommand is a command pinned to a bus cycle.
type TimedCommand struct {
	Cycle int64
	Cmd   dram.Command
}

// Counts tallies what the injector actually did during a run.
type Counts struct {
	Drops, Delays, Duplicates int
	Extras                    int // storm commands injected straight onto the bus
	ReplayRejects             int // replayed/extra commands the device refused
}

// Injector sits between the memory controller and the channel, perturbing
// the command stream per a Plan. It is deterministic: decisions depend only
// on the plan and the command stream itself.
type Injector struct {
	faults  []CommandFault
	fired   []bool
	replays []TimedCommand // pending delayed/duplicated commands, sorted
	extras  []TimedCommand // plan-scheduled injections (refresh storms), sorted

	// faulted marks domains whose own command a fault directly perturbed;
	// the non-interference verdict treats them like load-fault targets.
	faulted map[int]bool

	// dueScratch backs the slice Due returns, reused across ticks so the
	// controller's per-cycle poll does not allocate.
	dueScratch []TimedCommand

	Stats Counts
}

// NewInjector compiles a plan's command-layer faults. Refresh-storm load
// faults are expanded here into extra REF commands because they bypass the
// scheduler entirely; jitter and queue spikes are applied by the simulator.
func NewInjector(plan *Plan, p dram.Params) *Injector {
	in := &Injector{
		faults:  append([]CommandFault(nil), plan.Commands...),
		fired:   make([]bool, len(plan.Commands)),
		faulted: map[int]bool{},
	}
	for _, l := range plan.Loads {
		if l.Kind != LoadRefreshStorm {
			continue
		}
		for i := 0; i < l.Count; i++ {
			in.extras = append(in.extras, TimedCommand{
				Cycle: l.AtCycle + int64(i)*int64(p.TRFC+p.TRP),
				Cmd:   dram.Command{Kind: dram.KindRefresh, Rank: l.Rank, Domain: dram.NoDomain},
			})
		}
	}
	sort.Slice(in.extras, func(i, j int) bool { return in.extras[i].Cycle < in.extras[j].Cycle })
	return in
}

// Active reports whether the injector can still perturb anything.
func (in *Injector) Active() bool {
	if len(in.replays) > 0 || len(in.extras) > 0 {
		return true
	}
	for i := range in.faults {
		if !in.fired[i] {
			return true
		}
	}
	return false
}

// Decide classifies one scheduler command about to issue at cycle. For
// Delay and Duplicate the second return value is the replay cycle.
func (in *Injector) Decide(cmd dram.Command, cycle int64) (Decision, int64) {
	for i, f := range in.faults {
		if in.fired[i] || cycle < f.AtCycle || !f.matches(cmd.Kind) {
			continue
		}
		in.fired[i] = true
		if cmd.Domain != dram.NoDomain {
			in.faulted[cmd.Domain] = true
		}
		d := f.Delay
		if d < 1 {
			d = 1
		}
		switch f.Action {
		case ActionDrop:
			in.Stats.Drops++
			return Drop, 0
		case ActionDelay:
			in.Stats.Delays++
			return Delay, cycle + d
		case ActionDuplicate:
			in.Stats.Duplicates++
			return Duplicate, cycle + d
		}
	}
	return Pass, 0
}

// FaultedDomains returns, sorted, the domains whose own command a fired
// fault directly perturbed. Their traces legitimately change; silent
// divergence in any *other* domain is cross-domain leakage.
func (in *Injector) FaultedDomains() []int {
	out := make([]int, 0, len(in.faulted))
	for d := range in.faulted {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// AddReplay queues a command for re-injection at the given cycle.
func (in *Injector) AddReplay(cmd dram.Command, cycle int64) {
	in.replays = append(in.replays, TimedCommand{Cycle: cycle, Cmd: cmd})
	sort.Slice(in.replays, func(i, j int) bool { return in.replays[i].Cycle < in.replays[j].Cycle })
}

// Due pops every replay and extra command scheduled at or before cycle.
// The returned slice is valid until the next call.
func (in *Injector) Due(cycle int64) []TimedCommand {
	due := in.dueScratch[:0]
	for len(in.replays) > 0 && in.replays[0].Cycle <= cycle {
		due = append(due, in.replays[0])
		in.replays = in.replays[1:]
	}
	for len(in.extras) > 0 && in.extras[0].Cycle <= cycle {
		due = append(due, in.extras[0])
		in.extras = in.extras[1:]
		in.Stats.Extras++
	}
	in.dueScratch = due
	return due
}

// NoDue is NextDue's answer when the injector has nothing scheduled.
const NoDue = int64(math.MaxInt64)

// NextDue returns the cycle of the earliest queued replay or extra
// command, or NoDue when none are pending. Faults that trigger on
// scheduler commands need no horizon of their own: commands only issue on
// densely simulated cycles.
func (in *Injector) NextDue() int64 {
	h := NoDue
	if len(in.replays) > 0 {
		h = in.replays[0].Cycle
	}
	if len(in.extras) > 0 && in.extras[0].Cycle < h {
		h = in.extras[0].Cycle
	}
	return h
}
