package fault

import (
	"fmt"
	"os"

	"fsmem/internal/trace"
)

// DiskFaultKind selects how CorruptFile damages a file on disk.
type DiskFaultKind int

const (
	// DiskTruncate cuts the file to a fraction of its length — models a
	// crash mid-write on a filesystem without atomic rename.
	DiskTruncate DiskFaultKind = iota
	// DiskBitFlip flips one bit at a deterministic offset — models media
	// rot that slips past the filesystem.
	DiskBitFlip
	// DiskGarbage overwrites a deterministic span with pseudorandom
	// bytes — models a torn sector.
	DiskGarbage
)

// String names the fault for logs and test output.
func (k DiskFaultKind) String() string {
	switch k {
	case DiskTruncate:
		return "truncate"
	case DiskBitFlip:
		return "bitflip"
	case DiskGarbage:
		return "garbage"
	}
	return fmt.Sprintf("DiskFaultKind(%d)", int(k))
}

// CorruptFile damages path in place per kind. The damage location is
// deterministic in (seed, file length) so tests replay bit-for-bit; the
// file's length is preserved for DiskBitFlip and DiskGarbage so the
// corruption is only detectable by checksum, not by size. Corrupting an
// empty file is a no-op for the in-place kinds.
func CorruptFile(path string, kind DiskFaultKind, seed uint64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	rng := trace.NewRNG(seed)
	switch kind {
	case DiskTruncate:
		// Keep at least one byte when possible so the reader sees a
		// short file, not a missing one.
		n := int64(0)
		if len(data) > 1 {
			n = 1 + int64(rng.Float64()*float64(len(data)-1))
		}
		return os.Truncate(path, n)
	case DiskBitFlip:
		if len(data) == 0 {
			return nil
		}
		off := int(rng.Float64() * float64(len(data)))
		bit := uint(rng.Float64() * 8)
		data[off] ^= 1 << (bit & 7)
	case DiskGarbage:
		if len(data) == 0 {
			return nil
		}
		off := int(rng.Float64() * float64(len(data)))
		span := 1 + int(rng.Float64()*16)
		for i := 0; i < span && off+i < len(data); i++ {
			data[off+i] = byte(rng.Float64() * 256)
		}
	default:
		return fmt.Errorf("fault: unknown disk fault kind %d", int(kind))
	}
	return os.WriteFile(path, data, info.Mode())
}
