package fault

import (
	"fsmem/internal/dram"
	"fsmem/internal/fsmerr"
)

// maxStoredViolations caps the errors a Report keeps verbatim; the counts
// keep accumulating past the cap so a violation storm cannot eat memory.
const maxStoredViolations = 32

// Report is the monitor's verdict on one run. A clean run has Ok() true;
// any recorded violation means the observed command stream was not the
// statically proven one (or broke the derated hardware's constraints).
type Report struct {
	Commands int64 // commands observed on the bus

	// TimingViolations counts shadow-checker rejections: commands that the
	// (possibly derated) independent timing model refused.
	TimingViolations int
	// ScheduleViolations counts divergences between the scheduler's planned
	// stream and the bus: dropped, delayed, duplicated, or alien commands.
	// Only tracked for schedulers with a static schedule (Fixed Service).
	ScheduleViolations int
	// SchedulerViolations counts violations reported by the scheduler
	// itself (a planned command the live channel rejected).
	SchedulerViolations int

	// Violations holds the first maxStoredViolations structured errors.
	Violations []*fsmerr.Error

	// DomainTraces is a per-domain FNV-1a hash over the cycles at which
	// the domain's demand reads were delivered — the observable a core can
	// actually time, and the one the paper's security argument fixes
	// (reordered bank partitioning releases reads en masse precisely so
	// this trace is independent of other domains' load). The fault
	// campaign compares it across runs to prove non-interference.
	DomainTraces []uint64
	// DomainBusTraces hashes each domain's (cycle, kind) command-bus
	// footprint. Diagnostic only: invariant for the slot-grid FS variants,
	// but legitimately load-dependent under reordered bank partitioning
	// (slot order follows the global read/write mix) and under FR-FCFS.
	// Addresses are excluded: FS hides *which* line is touched behind
	// dummy traffic; only when/what-kind matters.
	DomainBusTraces []uint64
	// OtherTrace hashes unattributed bus commands (refresh, injected
	// extras).
	OtherTrace uint64

	// Injected mirrors the injector's tally (zero for unfaulted runs).
	Injected Counts
	// FaultedDomains lists domains whose own command a fired fault directly
	// perturbed (sorted). The campaign excludes them — like load-fault
	// targets — from the cross-domain leak verdict: a dropped command
	// corrupting its own domain is an integrity fault, not interference.
	FaultedDomains []int
}

// ObsMetrics contributes the verification verdict counters to an
// observability snapshot (structurally satisfies obs.MetricSource).
func (r *Report) ObsMetrics(emit func(name string, value float64)) {
	emit("commands", float64(r.Commands))
	emit("timing_violations", float64(r.TimingViolations))
	emit("schedule_violations", float64(r.ScheduleViolations))
	emit("scheduler_violations", float64(r.SchedulerViolations))
	emit("injected_drops", float64(r.Injected.Drops))
	emit("injected_delays", float64(r.Injected.Delays))
	emit("injected_duplicates", float64(r.Injected.Duplicates))
	emit("injected_extras", float64(r.Injected.Extras))
	emit("injected_replay_rejects", float64(r.Injected.ReplayRejects))
}

// Ok reports whether the monitor saw a perfectly clean run.
func (r *Report) Ok() bool {
	return r.TimingViolations == 0 && r.ScheduleViolations == 0 && r.SchedulerViolations == 0
}

// Detected reports whether the monitor flagged anything.
func (r *Report) Detected() bool { return !r.Ok() }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func foldTrace(h uint64, cycle int64, kind dram.Kind) uint64 {
	x := uint64(cycle)<<8 | uint64(kind)
	for i := 0; i < 8; i++ {
		h ^= (x >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	return h
}

// Monitor is the always-on runtime verifier. It shadows the live channel
// with an independent dram.Checker (optionally derated to the "true"
// hardware timings) and, for Fixed Service schedulers, cross-checks every
// bus command against the stream the scheduler planned.
type Monitor struct {
	checker *dram.Checker
	checked int // checker violations already converted into the report

	domains       int
	scheduleCheck bool
	intended      []TimedCommand

	rep Report
}

// NewMonitor builds a monitor for one channel at nominal parameters.
func NewMonitor(p dram.Params, domains int) *Monitor {
	m := &Monitor{checker: dram.NewChecker(p), domains: domains}
	m.rep.DomainTraces = make([]uint64, domains)
	m.rep.DomainBusTraces = make([]uint64, domains)
	for d := 0; d < domains; d++ {
		m.rep.DomainTraces[d] = fnvOffset
		m.rep.DomainBusTraces[d] = fnvOffset
	}
	m.rep.OtherTrace = fnvOffset
	return m
}

// ApplyDerates installs the plan's "true hardware" timing margins on the
// shadow checker.
func (m *Monitor) ApplyDerates(ds []RankDerate) {
	for _, d := range ds {
		m.checker.SetDerate(d.Rank, d.Derate)
	}
}

// EnableScheduleCheck turns on planned-vs-observed stream matching. Only
// meaningful for schedulers whose command stream is statically determined
// (the Fixed Service family); FR-FCFS-style schedulers have no schedule to
// check against.
func (m *Monitor) EnableScheduleCheck() { m.scheduleCheck = true }

// ScheduleChecked reports whether schedule matching is active.
func (m *Monitor) ScheduleChecked() bool { return m.scheduleCheck }

func (m *Monitor) violation(e *fsmerr.Error) {
	if len(m.rep.Violations) < maxStoredViolations {
		m.rep.Violations = append(m.rep.Violations, e)
	}
}

// Intended records a command the scheduler legally planned for this cycle,
// before any injection can perturb it.
func (m *Monitor) Intended(cmd dram.Command, cycle int64) {
	if !m.scheduleCheck {
		return
	}
	m.intended = append(m.intended, TimedCommand{Cycle: cycle, Cmd: cmd})
}

// Applied observes a command that actually reached the bus. It feeds the
// shadow checker, folds the per-domain trace, and (for FS) matches the
// command against the planned stream.
func (m *Monitor) Applied(cmd dram.Command, cycle int64, suppressed bool) {
	m.rep.Commands++
	m.checker.Feed(cmd, cycle)
	if v := m.checker.Violations(); len(v) > m.checked {
		for _, err := range v[m.checked:] {
			m.rep.TimingViolations++
			m.violation(fsmerr.At(fsmerr.CodeTiming, "fault.monitor", cycle, cmd, err))
		}
		m.checked = len(v)
	}
	if cmd.Domain >= 0 && cmd.Domain < m.domains {
		m.rep.DomainBusTraces[cmd.Domain] = foldTrace(m.rep.DomainBusTraces[cmd.Domain], cycle, cmd.Kind)
	} else {
		m.rep.OtherTrace = foldTrace(m.rep.OtherTrace, cycle, cmd.Kind)
	}

	if !m.scheduleCheck {
		return
	}
	// Planned commands whose cycle has passed without reaching the bus were
	// dropped (or delayed past this point): flag them, then match.
	for len(m.intended) > 0 && m.intended[0].Cycle < cycle && m.intended[0].Cmd != cmd {
		p := m.intended[0]
		m.intended = m.intended[1:]
		m.rep.ScheduleViolations++
		m.violation(fsmerr.At(fsmerr.CodeSchedule, "fault.monitor", p.Cycle, p.Cmd,
			fsmerr.New(fsmerr.CodeSchedule, "fault.monitor", "planned command never reached the bus")))
	}
	if len(m.intended) > 0 && m.intended[0].Cmd == cmd {
		p := m.intended[0]
		m.intended = m.intended[1:]
		if p.Cycle != cycle {
			m.rep.ScheduleViolations++
			m.violation(fsmerr.At(fsmerr.CodeSchedule, "fault.monitor", cycle, cmd,
				fsmerr.New(fsmerr.CodeSchedule, "fault.monitor",
					"command issued off schedule (planned cycle %d)", p.Cycle)))
		}
		return
	}
	m.rep.ScheduleViolations++
	m.violation(fsmerr.At(fsmerr.CodeSchedule, "fault.monitor", cycle, cmd,
		fsmerr.New(fsmerr.CodeSchedule, "fault.monitor", "unplanned command on the bus")))
}

// ReadCompleted observes the delivery of one demand read to its core —
// the core-visible timing the non-interference verdict is built on.
func (m *Monitor) ReadCompleted(domain int, cycle int64) {
	if domain >= 0 && domain < m.domains {
		m.rep.DomainTraces[domain] = foldTrace(m.rep.DomainTraces[domain], cycle, 0)
	}
}

// SchedulerViolation records a violation the scheduler itself reported
// (a planned command the live channel refused).
func (m *Monitor) SchedulerViolation(err error) {
	m.rep.SchedulerViolations++
	if e, ok := err.(*fsmerr.Error); ok {
		m.violation(e)
		return
	}
	m.violation(&fsmerr.Error{Code: fsmerr.CodeTiming, Op: "scheduler", Cycle: fsmerr.NoCycle, Err: err})
}

// Finalize flushes planned-but-never-issued commands, folds in the
// injector's tally, and returns the report. The monitor must not be fed
// after Finalize.
func (m *Monitor) Finalize(in *Injector) *Report {
	for _, p := range m.intended {
		m.rep.ScheduleViolations++
		m.violation(fsmerr.At(fsmerr.CodeSchedule, "fault.monitor", p.Cycle, p.Cmd,
			fsmerr.New(fsmerr.CodeSchedule, "fault.monitor", "planned command never reached the bus")))
	}
	m.intended = nil
	if in != nil {
		m.rep.Injected = in.Stats
		m.rep.FaultedDomains = in.FaultedDomains()
	}
	return &m.rep
}
