// Package fault is the deterministic fault-injection and runtime-
// verification subsystem. It perturbs a simulation at three layers —
// DRAM timing derating (marginal hardware), command-stream faults (a
// scheduled command dropped, delayed, or duplicated between the controller
// and the device), and load faults (arrival jitter, queue-pressure spikes,
// refresh storms) — and shadows every run with an always-on monitor that
// re-validates the observed command stream against an independent checker
// and, for Fixed Service schedulers, against the static schedule itself.
//
// The design goal mirrors the operational-verification argument of "Can We
// Prove Time Protection?": the FS pipelines are *statically* conflict-free,
// but a deployed controller must also *detect* when the proof's premises
// stop holding. A fault campaign (see internal/sim.RunCampaign and
// cmd/chaos) asserts that under every injected fault an FS scheduler either
// raises a monitor violation or provably leaves per-domain command timing
// unchanged — while the non-secure baseline visibly fails the same test.
//
// Everything is seeded and replayable: the same Plan against the same
// Config yields byte-identical results.
package fault

import (
	"fmt"

	"fsmem/internal/dram"
)

// Action is what a command fault does to the matched command.
type Action int

const (
	// ActionDrop removes the command between controller and device: the
	// scheduler believes it issued, the DRAM never sees it.
	ActionDrop Action = iota
	// ActionDelay removes the command and replays it Delay cycles later.
	ActionDelay
	// ActionDuplicate lets the command through and replays a copy Delay
	// cycles later.
	ActionDuplicate
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActionDrop:
		return "drop"
	case ActionDelay:
		return "delay"
	case ActionDuplicate:
		return "duplicate"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// CommandFault perturbs the first scheduler command matching Kinds that is
// issued at or after AtCycle. Each fault fires exactly once.
type CommandFault struct {
	AtCycle int64
	Kinds   []dram.Kind // empty = match any command
	Action  Action
	Delay   int64 // replay offset for ActionDelay/ActionDuplicate (min 1)
}

func (f CommandFault) matches(k dram.Kind) bool {
	if len(f.Kinds) == 0 {
		return true
	}
	for _, want := range f.Kinds {
		if k == want {
			return true
		}
	}
	return false
}

// Derate re-exports the DRAM timing margin type so fault plans can be
// authored without importing internal/dram.
type Derate = dram.Derate

// RankDerate lengthens one rank's effective timing constraints (Rank -1 =
// every rank). Derates are applied to the monitor's shadow checker — the
// "true hardware" view — while the scheduler keeps planning with nominal
// parameters, modeling a part whose datasheet the controller no longer
// matches.
type RankDerate struct {
	Rank   int
	Derate dram.Derate
}

// LoadKind selects a load-fault flavor.
type LoadKind int

const (
	// LoadJitter inflates the instruction gaps of one domain's reference
	// stream by a seeded random amount, shifting its arrival process.
	LoadJitter LoadKind = iota
	// LoadQueueSpike enqueues a burst of extra demand reads for one domain
	// at AtCycle, modeling a sudden queue-pressure spike.
	LoadQueueSpike
	// LoadRefreshStorm injects Count extra REF commands to Rank, spaced
	// tRFC apart starting at AtCycle, bypassing the scheduler entirely.
	LoadRefreshStorm
)

// String names the load kind.
func (k LoadKind) String() string {
	switch k {
	case LoadJitter:
		return "jitter"
	case LoadQueueSpike:
		return "queue-spike"
	case LoadRefreshStorm:
		return "refresh-storm"
	default:
		return fmt.Sprintf("LoadKind(%d)", int(k))
	}
}

// LoadFault perturbs the offered load rather than the schedule.
type LoadFault struct {
	Kind    LoadKind
	Domain  int   // jitter/spike target domain
	Rank    int   // refresh-storm target rank
	AtCycle int64 // spike/storm start cycle
	Count   int   // spike: extra requests; storm: extra REFs
	// Magnitude scales jitter: the mean extra instruction gap per reference.
	Magnitude int
}

// Plan is one deterministic fault scenario. The zero plan injects nothing;
// running it must reproduce the unfaulted simulation exactly.
type Plan struct {
	Name string
	// Seed drives every random draw the plan's faults make (spike
	// addresses, jitter gaps), independent of the simulation seed.
	Seed     uint64
	Derates  []RankDerate
	Commands []CommandFault
	Loads    []LoadFault
}

// TargetDomains returns the set of domains whose *own* traffic the plan
// intentionally perturbs. The non-interference verdict excludes them: a
// jittered domain's command trace legitimately changes, every other
// domain's must not.
func (p *Plan) TargetDomains() map[int]bool {
	t := map[int]bool{}
	for _, l := range p.Loads {
		if l.Kind == LoadJitter || l.Kind == LoadQueueSpike {
			t[l.Domain] = true
		}
	}
	return t
}

// CampaignPlans returns the standard deterministic fault campaign for a
// configuration: one plan per fault class, covering all three layers. The
// same (domains, seed) pair always yields the same plans.
func CampaignPlans(domains int, seed uint64) []*Plan {
	at := int64(2000) // mid-run, well past warm-up, well before typical end
	cas := []dram.Kind{dram.KindRead, dram.KindReadAP, dram.KindWrite, dram.KindWriteAP}
	jitterDom, spikeDom := 1%domains, 1%domains
	return []*Plan{
		{
			Name: "derate-trcd", Seed: seed,
			Derates: []RankDerate{{Rank: 0, Derate: dram.Derate{TRCD: 2}}},
		},
		{
			Name: "derate-tfaw-slack", Seed: seed,
			Derates: []RankDerate{{Rank: -1, Derate: dram.Derate{TFAW: 2}}},
		},
		{
			Name: "derate-twr", Seed: seed,
			Derates: []RankDerate{{Rank: 0, Derate: dram.Derate{TWR: 3}}},
		},
		{
			Name: "drop-act", Seed: seed,
			Commands: []CommandFault{{AtCycle: at, Kinds: []dram.Kind{dram.KindActivate}, Action: ActionDrop}},
		},
		{
			Name: "drop-cas", Seed: seed,
			Commands: []CommandFault{{AtCycle: at, Kinds: cas, Action: ActionDrop}},
		},
		{
			Name: "delay-cas-2", Seed: seed,
			Commands: []CommandFault{{AtCycle: at, Kinds: cas, Action: ActionDelay, Delay: 2}},
		},
		{
			Name: "dup-act", Seed: seed,
			Commands: []CommandFault{{AtCycle: at, Kinds: []dram.Kind{dram.KindActivate}, Action: ActionDuplicate, Delay: 1}},
		},
		{
			Name: "jitter-dom1", Seed: seed,
			Loads: []LoadFault{{Kind: LoadJitter, Domain: jitterDom, Magnitude: 300}},
		},
		{
			Name: "spike-dom1", Seed: seed,
			Loads: []LoadFault{{Kind: LoadQueueSpike, Domain: spikeDom, AtCycle: at, Count: 24}},
		},
		{
			Name: "refresh-storm", Seed: seed,
			Loads: []LoadFault{{Kind: LoadRefreshStorm, Rank: 0, AtCycle: at, Count: 2}},
		},
	}
}

// PlanByName resolves one plan from the standard campaign by its name —
// the lookup the audit engine and the daemon's audit job kind use to turn
// a wire-level fault-plan string into the same deterministic Plan the
// chaos campaign would run.
func PlanByName(name string, domains int, seed uint64) (*Plan, bool) {
	for _, p := range CampaignPlans(domains, seed) {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}
