package cache

import (
	"testing"
	"testing/quick"

	"fsmem/internal/addr"
	"fsmem/internal/dram"
	"fsmem/internal/trace"
)

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func tiny() Config { return Config{SizeBytes: 1024, LineBytes: 64, Ways: 2} } // 8 sets

func TestNewRejectsBadGeometry(t *testing.T) {
	for _, cfg := range []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 2},
		{SizeBytes: 1024, LineBytes: 0, Ways: 2},
		{SizeBytes: 1024, LineBytes: 64, Ways: 0},
		{SizeBytes: 3 * 64 * 2, LineBytes: 64, Ways: 2}, // 3 sets: not a power of two
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) should fail", cfg)
		}
	}
	if _, err := New(L1Config()); err != nil {
		t.Errorf("L1Config should build: %v", err)
	}
	if _, err := New(L2Config()); err != nil {
		t.Errorf("L2Config should build: %v", err)
	}
}

func TestHitAfterFill(t *testing.T) {
	c := mustCache(t, tiny())
	if hit, _, _ := c.Access(0x1000, false); hit {
		t.Fatal("cold cache should miss")
	}
	if hit, _, _ := c.Access(0x1000, false); !hit {
		t.Fatal("second access should hit")
	}
	if hit, _, _ := c.Access(0x1004, false); !hit {
		t.Fatal("same-line access should hit")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustCache(t, tiny()) // 8 sets, 2 ways; stride 512 collides in set 0
	a := func(i int) uint64 { return uint64(i) * 512 }
	c.Access(a(1), false)
	c.Access(a(2), false)
	c.Access(a(1), false) // touch 1: now 2 is LRU
	c.Access(a(3), false) // evicts 2
	if !c.Contains(a(1)) {
		t.Error("line 1 (MRU) was evicted")
	}
	if c.Contains(a(2)) {
		t.Error("line 2 (LRU) should have been evicted")
	}
	if !c.Contains(a(3)) {
		t.Error("line 3 missing after fill")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := mustCache(t, tiny())
	a := func(i int) uint64 { return uint64(i) * 512 }
	c.Access(a(1), true) // dirty
	c.Access(a(2), false)
	_, wb, has := c.Access(a(3), false) // evicts dirty line 1
	if !has {
		t.Fatal("expected a writeback")
	}
	if wb != a(1) {
		t.Fatalf("writeback addr %#x, want %#x", wb, a(1))
	}
	if c.Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", c.Writebacks)
	}
	// Clean eviction produces none.
	_, _, has = c.Access(a(4), false)
	if has {
		t.Error("clean eviction should not write back")
	}
}

func TestHierarchyLevels(t *testing.T) {
	l2 := mustCache(t, Config{SizeBytes: 4096, LineBytes: 64, Ways: 4})
	h, err := NewHierarchy(l2)
	if err != nil {
		t.Fatal(err)
	}
	if lvl, _, _ := h.Access(0x40, false); lvl != 0 {
		t.Fatalf("cold access level %d, want 0 (memory)", lvl)
	}
	if lvl, _, _ := h.Access(0x40, false); lvl != 1 {
		t.Fatalf("hot access level %d, want 1", lvl)
	}
	// Push the line out of tiny L1 but keep it in L2: walk one L1 set.
	for i := 1; i <= 2; i++ {
		h.Access(uint64(0x40+i*32*1024), false) // hmm: L1 is 32KB/2w -> 256 sets, stride 16KB collides
	}
	// Access pattern above may or may not evict depending on geometry; use
	// an explicit collision stride for L1 (sets = 256, line 64 -> 16KB).
	base := uint64(0x40)
	h2l2 := mustCache(t, Config{SizeBytes: 1 << 20, LineBytes: 64, Ways: 8})
	h2, _ := NewHierarchy(h2l2)
	h2.Access(base, false)
	h2.Access(base+16*1024, false)
	h2.Access(base+2*16*1024, false) // L1 set now holds the two newer lines
	if lvl, _, _ := h2.Access(base, false); lvl != 2 {
		t.Fatalf("L1-evicted line should hit L2, got level %d", lvl)
	}
}

func TestFilteredStreamEmitsMissesAndWritebacks(t *testing.T) {
	p := dram.DDR3_1600()
	mapper, err := addr.NewMapper(p, addr.RowRankBankCol)
	if err != nil {
		t.Fatal(err)
	}
	l2 := mustCache(t, Config{SizeBytes: 2048, LineBytes: 64, Ways: 2})
	h, err := NewHierarchy(l2)
	if err != nil {
		t.Fatal(err)
	}
	// A repeating two-line stream: first pass misses, later passes hit.
	src := &trace.SliceStream{Refs: []trace.Ref{
		{Gap: 3, Addr: dram.Address{Row: 1, Col: 0}},
		{Gap: 3, Addr: dram.Address{Row: 1, Col: 1}},
	}}
	f := NewFilteredStream(src, h, mapper)
	r1 := f.Next()
	if r1.Addr != (dram.Address{Row: 1, Col: 0}) {
		t.Fatalf("first miss %v", r1.Addr)
	}
	r2 := f.Next()
	if r2.Addr != (dram.Address{Row: 1, Col: 1}) {
		t.Fatalf("second miss %v", r2.Addr)
	}
	// Subsequent passes hit; the filter should eventually return a huge-gap
	// idle reference rather than spinning forever.
	r3 := f.Next()
	if r3.Gap < 1<<15 {
		t.Fatalf("cache-resident stream should yield an idle ref, got gap %d", r3.Gap)
	}
}

// TestCacheInclusionProperty: after any access sequence, an address that
// just hit must still be resident.
func TestCacheInclusionProperty(t *testing.T) {
	c := mustCache(t, tiny())
	check := func(addrs []uint16) bool {
		for _, a := range addrs {
			phys := uint64(a) << 4
			c.Access(phys, a%3 == 0)
			if !c.Contains(phys) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestStatsConservation: hits + misses equals total accesses.
func TestStatsConservation(t *testing.T) {
	c := mustCache(t, tiny())
	rng := trace.NewRNG(3)
	const n = 10_000
	for i := 0; i < n; i++ {
		c.Access(uint64(rng.Intn(1<<14))&^0x3f, rng.Bool(0.3))
	}
	if c.Hits+c.Misses != n {
		t.Fatalf("hits %d + misses %d != %d", c.Hits, c.Misses, n)
	}
	if c.HitRate() <= 0 || c.HitRate() >= 1 {
		t.Errorf("hit rate %v suspicious for this mix", c.HitRate())
	}
}
