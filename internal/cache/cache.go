// Package cache implements the on-chip cache hierarchy of Table 1: private
// L1s (32KB, 2-way) in front of a shared L2 (4MB, 8-way), with LRU
// replacement and dirty write-back. The main experiments drive the memory
// controller with post-LLC streams directly (the USIMM methodology); this
// package exists so pre-cache address traces can be filtered to post-LLC
// streams (FilteredStream), and is exercised by examples and tests.
package cache

import (
	"fmt"

	"fsmem/internal/addr"
	"fsmem/internal/trace"
)

// Config sizes one cache.
type Config struct {
	SizeBytes int
	LineBytes int
	Ways      int
	// LatencyCycles is the hit latency in CPU cycles (informational; the
	// ROB model folds small hit latencies into the instruction stream).
	LatencyCycles int
}

// L1Config returns Table 1's L1 data cache: 32KB, 2-way, 1 cycle.
func L1Config() Config { return Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 2, LatencyCycles: 1} }

// L2Config returns Table 1's shared L2: 4MB, 8-way, 10 cycles.
func L2Config() Config { return Config{SizeBytes: 4 << 20, LineBytes: 64, Ways: 8, LatencyCycles: 10} }

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// lastUse orders LRU within a set.
	lastUse uint64
}

// Cache is one set-associative write-back cache. Not safe for concurrent
// use; the simulator is single-threaded by design.
type Cache struct {
	cfg     Config
	sets    [][]line
	setMask uint64
	shift   uint
	clock   uint64

	Hits, Misses, Writebacks int64
}

// New builds a cache; the geometry must divide evenly into power-of-two
// sets.
func New(cfg Config) (*Cache, error) {
	if cfg.LineBytes <= 0 || cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry %+v", cfg)
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: %d sets is not a positive power of two", sets)
	}
	var shift uint
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		shift++
	}
	c := &Cache{cfg: cfg, setMask: uint64(sets - 1), shift: shift}
	c.sets = make([][]line, sets)
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c, nil
}

// Access looks up the address; on a miss it fills the line, evicting LRU.
// It returns whether the access hit and, when a dirty victim was evicted,
// its address.
func (c *Cache) Access(a uint64, write bool) (hit bool, writeback uint64, hasWB bool) {
	c.clock++
	lineAddr := a >> c.shift
	set := c.sets[lineAddr&c.setMask]
	// The tag stores the full line address so evicted victims can be
	// reconstructed without re-deriving the set index.
	tag := lineAddr

	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.clock
			if write {
				set[i].dirty = true
			}
			c.Hits++
			return true, 0, false
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	c.Misses++
	v := &set[victim]
	if v.valid && v.dirty {
		writeback = v.tag << c.shift
		hasWB = true
		c.Writebacks++
	}
	*v = line{tag: tag, valid: true, dirty: write, lastUse: c.clock}
	return false, writeback, hasWB
}

// Contains reports whether the address is resident (no LRU update).
func (c *Cache) Contains(a uint64) bool {
	lineAddr := a >> c.shift
	set := c.sets[lineAddr&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return true
		}
	}
	return false
}

// HitRate returns hits / (hits + misses).
func (c *Cache) HitRate() float64 {
	t := c.Hits + c.Misses
	if t == 0 {
		return 0
	}
	return float64(c.Hits) / float64(t)
}

// Hierarchy is one core's view of the cache hierarchy: a private L1 over a
// (possibly shared) L2.
type Hierarchy struct {
	L1 *Cache
	L2 *Cache
}

// NewHierarchy builds a private L1 over the given shared L2.
func NewHierarchy(shared *Cache) (*Hierarchy, error) {
	l1, err := New(L1Config())
	if err != nil {
		return nil, err
	}
	return &Hierarchy{L1: l1, L2: shared}, nil
}

// Access runs one reference through L1 then L2. It returns the hit level
// (1, 2, or 0 for memory) and any dirty L2 victim that must be written
// back to memory.
func (h *Hierarchy) Access(a uint64, write bool) (level int, writeback uint64, hasWB bool) {
	if hit, wb, has := h.L1.Access(a, write); hit {
		return 1, 0, false
	} else if has {
		// L1 victim write-back lands in L2 (allocate-on-write-back).
		if _, l2wb, l2has := h.L2.Access(wb, true); l2has {
			return 1, l2wb, true // rare double eviction; surface the L2 victim
		}
	}
	if hit, wb, has := h.L2.Access(a, write); hit {
		return 2, 0, false
	} else if has {
		return 0, wb, true
	}
	return 0, 0, false
}

// FilteredStream adapts a pre-cache reference stream into a post-LLC
// stream: cache hits are folded into the instruction gap, misses and dirty
// write-backs are emitted as memory references.
type FilteredStream struct {
	src    trace.Stream
	h      *Hierarchy
	mapper addr.Mapper

	queued []trace.Ref // pending writebacks
	gap    int
}

// NewFilteredStream builds the filter. The mapper translates line addresses
// to DRAM coordinates for the emitted references.
func NewFilteredStream(src trace.Stream, h *Hierarchy, mapper addr.Mapper) *FilteredStream {
	return &FilteredStream{src: src, h: h, mapper: mapper}
}

// Next produces the next post-LLC reference.
func (f *FilteredStream) Next() trace.Ref {
	if len(f.queued) > 0 {
		r := f.queued[0]
		f.queued = f.queued[1:]
		return r
	}
	for i := 0; i < 1<<16; i++ {
		r := f.src.Next()
		f.gap += r.Gap
		phys := f.mapper.Encode(r.Addr)
		level, wb, hasWB := f.h.Access(phys, r.Write)
		if hasWB {
			f.queued = append(f.queued, trace.Ref{Write: true, Addr: f.mapper.Decode(wb)})
		}
		if level == 0 {
			out := trace.Ref{Gap: f.gap, Write: r.Write, Addr: r.Addr}
			f.gap = 0
			return out
		}
		f.gap++ // the hit instruction itself
	}
	// Pathologically cache-resident stream: behave like an idle thread.
	out := trace.Ref{Gap: f.gap + 1<<16}
	f.gap = 0
	return out
}
