package fsmem_test

import (
	"errors"
	"testing"

	"fsmem"
)

// TestMalformedConfigsReturnTypedErrors is the fuzz-ish robustness table:
// every malformed configuration reachable through the public API must come
// back as a structured *fsmem.Error with the right code — never a panic,
// never an untyped string error.
func TestMalformedConfigsReturnTypedErrors(t *testing.T) {
	goodMix, err := fsmem.RateWorkload("milc", 4)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		cfg  func() fsmem.Config
		code fsmem.ErrorCode
	}{
		{
			"zero-dram-params",
			func() fsmem.Config {
				cfg := fsmem.NewConfig(goodMix, fsmem.FSRankPart)
				cfg.DRAM = fsmem.DRAMParams{}
				return cfg
			},
			fsmem.ErrConfig,
		},
		{
			"empty-mix",
			func() fsmem.Config {
				return fsmem.NewConfig(fsmem.Mix{Name: "hollow"}, fsmem.Baseline)
			},
			fsmem.ErrWorkload,
		},
		{
			"invalid-profile",
			func() fsmem.Config {
				mix := fsmem.Mix{Name: "bad", Profiles: []fsmem.Profile{{Name: "neg", ReadMPKI: -4}}}
				return fsmem.NewConfig(mix, fsmem.FSRankPart)
			},
			fsmem.ErrWorkload,
		},
		{
			"sla-weights-wrong-length",
			func() fsmem.Config {
				cfg := fsmem.NewConfig(goodMix, fsmem.FSRankPart)
				cfg.SLAWeights = []int{1, 2}
				return cfg
			},
			fsmem.ErrConfig,
		},
		{
			"sla-weights-zero-sum",
			func() fsmem.Config {
				cfg := fsmem.NewConfig(goodMix, fsmem.FSRankPart)
				cfg.SLAWeights = []int{0, 0, 0, 0}
				return cfg
			},
			fsmem.ErrConfig,
		},
		{
			"weighted-reordered",
			func() fsmem.Config {
				cfg := fsmem.NewConfig(goodMix, fsmem.FSReorderedBank)
				cfg.SLAWeights = []int{2, 1, 1, 1}
				return cfg
			},
			fsmem.ErrConfig,
		},
		{
			"refresh-without-rank-partitioning",
			func() fsmem.Config {
				cfg := fsmem.NewConfig(goodMix, fsmem.FSBankPart)
				cfg.RefreshEnabled = true
				return cfg
			},
			fsmem.ErrConfig,
		},
		{
			"negative-tp-turn",
			func() fsmem.Config {
				cfg := fsmem.NewConfig(goodMix, fsmem.TPBank)
				cfg.TPTurnLength = -5
				return cfg
			},
			fsmem.ErrConfig,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := fsmem.Simulate(tc.cfg())
			if err == nil {
				t.Fatal("malformed config accepted")
			}
			var fe *fsmem.Error
			if !errors.As(err, &fe) {
				t.Fatalf("error %v (%T) is not a structured *fsmem.Error", err, err)
			}
			if got := fsmem.ErrorCodeOf(err); got != tc.code {
				t.Errorf("error code %q, want %q (%v)", got, tc.code, err)
			}
		})
	}
}

// TestMalformedFaultPlansReturnTypedErrors extends the table to the chaos
// entry point: fault plans referencing nonexistent domains must be rejected
// with ErrFault before the run starts.
func TestMalformedFaultPlansReturnTypedErrors(t *testing.T) {
	mix, err := fsmem.RateWorkload("milc", 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fsmem.NewConfig(mix, fsmem.FSRankPart)
	plans := []*fsmem.FaultPlan{
		{Name: "spike-out-of-range", Loads: []fsmem.LoadFault{
			{Kind: fsmem.LoadQueueSpike, Domain: 99, AtCycle: 100, Count: 4},
		}},
		{Name: "spike-empty", Loads: []fsmem.LoadFault{
			{Kind: fsmem.LoadQueueSpike, Domain: 0, AtCycle: 100, Count: 0},
		}},
	}
	for _, plan := range plans {
		_, err := fsmem.SimulateChaos(cfg, plan)
		if err == nil {
			t.Fatalf("%s: malformed fault plan accepted", plan.Name)
		}
		if got := fsmem.ErrorCodeOf(err); got != fsmem.ErrFault {
			t.Errorf("%s: error code %q, want %q (%v)", plan.Name, got, fsmem.ErrFault, err)
		}
	}
}
