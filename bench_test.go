// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 7). Each benchmark runs its experiment at a reduced read budget
// and reports the figure's headline metric via b.ReportMetric, so
// `go test -bench=. -benchmem` both times the harness and reproduces the
// result shapes. cmd/sweep prints the same tables at larger budgets.
package fsmem

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fsmem/internal/addr"
	"fsmem/internal/audit"
	"fsmem/internal/config"
	"fsmem/internal/core"
	"fsmem/internal/dram"
	"fsmem/internal/experiments"
	"fsmem/internal/leakage"
	"fsmem/internal/server"
	"fsmem/internal/server/client"
	"fsmem/internal/server/cluster"
	"fsmem/internal/sim"
	"fsmem/internal/stats"
	"fsmem/internal/trace"
	"fsmem/internal/workload"
)

func benchSettings() experiments.Settings {
	return experiments.Settings{Cores: 8, TargetReads: 2500, Seed: 42}
}

func table(b *testing.B, f func(*experiments.Runner) (experiments.Table, error)) experiments.Table {
	b.Helper()
	tab, err := f(experiments.NewRunner(benchSettings()))
	if err != nil {
		b.Fatal(err)
	}
	return tab
}

// BenchmarkTable1Solver regenerates the Section 3/4 l values (the paper's
// Equations 1-4) and reports the rank-partitioned minimum.
func BenchmarkTable1Solver(b *testing.B) {
	p := dram.DDR3_1600()
	var l int
	for i := 0; i < b.N; i++ {
		var err error
		l, err = core.MinL(core.FixedData, addr.PartitionRank, p)
		if err != nil {
			b.Fatal(err)
		}
		core.SolverTable(p)
	}
	b.ReportMetric(float64(l), "l_rank_fixed_data")
}

// BenchmarkFigure1Pipeline constructs and verifies the rank-partitioned
// pipeline of Figure 1 and reports commands scheduled per second.
func BenchmarkFigure1Pipeline(b *testing.B) {
	p := dram.DDR3_1600()
	writes := []bool{false, true, false, false, false, false, true, true}
	total := 0
	for i := 0; i < b.N; i++ {
		cmds, _, err := core.RecordPipeline(p, core.Config{Variant: core.FSRankPart, Domains: 8, Seed: 1}, writes, 50)
		if err != nil {
			b.Fatal(err)
		}
		if errs := core.VerifyPipeline(p, cmds); len(errs) != 0 {
			b.Fatalf("violations: %v", errs[0])
		}
		total = len(cmds)
	}
	b.ReportMetric(float64(total), "commands")
}

// BenchmarkFigure2TripleAlternation verifies the no-partitioning pipelines
// of Figure 2 (naive l=43 and triple alternation l=15).
func BenchmarkFigure2TripleAlternation(b *testing.B) {
	p := dram.DDR3_1600()
	writes := []bool{false, true, false, false, false, false, true, true}
	for i := 0; i < b.N; i++ {
		for _, v := range []core.Variant{core.FSNoPart, core.FSNoPartTriple} {
			cmds, _, err := core.RecordPipeline(p, core.Config{Variant: v, Domains: 8, Seed: 1}, writes, 10)
			if err != nil {
				b.Fatal(err)
			}
			if errs := core.VerifyPipeline(p, cmds); len(errs) != 0 {
				b.Fatalf("%v violations: %v", v, errs[0])
			}
		}
	}
}

// BenchmarkFigure3DesignSpace reports the design-space summary ratios.
func BenchmarkFigure3DesignSpace(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = table(b, experiments.Figure3)
	}
	v := tab.Rows[0].Values
	b.ReportMetric(v[1], "FS_RP")
	b.ReportMetric(v[3], "TP_BP")
	b.ReportMetric(v[5], "TP_NP")
}

// BenchmarkFigure4Leakage reports the attacker-profile divergence under the
// baseline (positive) and FS_RP (exactly zero).
func BenchmarkFigure4Leakage(b *testing.B) {
	att, err := workload.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	var baseDiv, fsDiv float64
	for i := 0; i < b.N; i++ {
		for _, k := range []sim.SchedulerKind{sim.Baseline, sim.FSRankPart} {
			quiet, err := leakage.CollectProfile(k, att, workload.Synthetic("idle", 0.01), 8, 10_000, 150_000, 42, 1, addr.RouteColored)
			if err != nil {
				b.Fatal(err)
			}
			loud, err := leakage.CollectProfile(k, att, workload.Synthetic("streaming", 45), 8, 10_000, 150_000, 42, 1, addr.RouteColored)
			if err != nil {
				b.Fatal(err)
			}
			d, err := leakage.Divergence(quiet, loud)
			if err != nil {
				b.Fatal(err)
			}
			if k == sim.Baseline {
				baseDiv = d
			} else {
				fsDiv = d
			}
		}
	}
	b.ReportMetric(baseDiv, "baseline_divergence")
	b.ReportMetric(fsDiv, "fs_divergence")
}

// BenchmarkFigure5TPTurnLength reports the fine-grained TP_BP throughput.
func BenchmarkFigure5TPTurnLength(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = table(b, experiments.Figure5)
	}
	am := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(am.Values[0], "TP_BP_minturn_wipc")
	b.ReportMetric(am.Values[3], "TP_NP_minturn_wipc")
}

// BenchmarkFigure6FSvsTP reports the headline weighted-IPC comparison.
func BenchmarkFigure6FSvsTP(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = table(b, experiments.Figure6)
	}
	am := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(am.Values[0], "FS_RP_wipc")
	b.ReportMetric(am.Values[2], "TP_BP_wipc")
	b.ReportMetric(am.Values[0]/am.Values[2], "FS_over_TP")
}

// BenchmarkFigure7Prefetch reports the FS_RP prefetching gain.
func BenchmarkFigure7Prefetch(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = table(b, experiments.Figure7)
	}
	am := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(am.Values[1]/am.Values[2], "prefetch_speedup")
}

// BenchmarkFigure8Energy reports normalized memory energy.
func BenchmarkFigure8Energy(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = table(b, experiments.Figure8)
	}
	am := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(am.Values[0], "FS_RP_energy")
	b.ReportMetric(am.Values[2], "TP_BP_energy")
}

// BenchmarkFigure9EnergyOpts reports the cumulative energy-optimization
// reduction.
func BenchmarkFigure9EnergyOpts(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = table(b, experiments.Figure9)
	}
	am := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(am.Values[0], "FS_RP")
	b.ReportMetric(am.Values[len(am.Values)-1], "all_opts")
}

// BenchmarkFigure10Scalability reports the 2-core FS/TP ratio (the paper's
// hardest case for FS).
func BenchmarkFigure10Scalability(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = table(b, experiments.Figure10)
	}
	last := tab.Rows[len(tab.Rows)-1] // 2 cores
	b.ReportMetric(last.Values[0]/last.Values[2], "FS_over_TP_2core")
}

// BenchmarkSimulatorThroughput measures raw simulator speed: DRAM bus
// cycles simulated per wall-clock second under the busiest scheduler.
func BenchmarkSimulatorThroughput(b *testing.B) {
	mix, err := workload.Rate("milc", 8)
	if err != nil {
		b.Fatal(err)
	}
	var cycles int64
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(mix, sim.Baseline)
		cfg.TargetReads = 5000
		res, err := sim.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Run.BusCycles
	}
	b.ReportMetric(float64(cycles), "bus_cycles/run")
}

// benchLoop times one full simulation of the idle-heavy xalancbmk rate-2
// mix — the event-horizon kernel's home turf: two low-MPKI cores leave long
// interaction-free stretches for the clock to jump over.
func benchLoop(b *testing.B, dense bool) {
	mix, err := workload.Rate("xalancbmk", 2)
	if err != nil {
		b.Fatal(err)
	}
	var cycles int64
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(mix, sim.Baseline)
		cfg.TargetReads = 5000
		cfg.DenseLoop = dense
		res, err := sim.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Run.BusCycles
	}
	b.ReportMetric(float64(cycles), "bus_cycles/run")
}

// BenchmarkSimulateDenseXalanRate2 pins the dense per-cycle loop on the
// idle-heavy workload. Its only purpose is to serve as the denominator for
// the fast-forward speedup gate (benchdiff -ratio-max in CI), which makes
// the ≥2× claim immune to runner-speed drift: both sides run on the same
// machine in the same invocation.
func BenchmarkSimulateDenseXalanRate2(b *testing.B) { benchLoop(b, true) }

// BenchmarkSimulateFastForwardXalanRate2 is the same workload under the
// event-horizon kernel (DESIGN.md §13). CI gates
// fast-forward ≤ 0.5 × dense on this pair.
func BenchmarkSimulateFastForwardXalanRate2(b *testing.B) { benchLoop(b, false) }

// benchFabric runs an 8-core workload through a 4-channel fabric under
// the given routing policy — the multi-channel counterpart of
// BenchmarkSimulatorThroughput. Colored routing is four independent
// machines (near-linear speedup per channel); interleaved routing stripes
// every domain over all channels and pays fabric-level contention.
func benchFabric(b *testing.B, routing addr.Routing) {
	mix, err := workload.Rate("milc", 8)
	if err != nil {
		b.Fatal(err)
	}
	var cycles int64
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(mix, sim.FSRankPart)
		cfg.TargetReads = 5000
		cfg.Channels = 4
		cfg.Routing = routing
		res, err := sim.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Run.BusCycles
	}
	b.ReportMetric(float64(cycles), "bus_cycles/run")
}

// BenchmarkSimulate4ChColored pins the page-colored 4-channel fabric.
func BenchmarkSimulate4ChColored(b *testing.B) { benchFabric(b, addr.RouteColored) }

// BenchmarkSimulate4ChInterleaved pins the address-interleaved 4-channel
// fabric.
func BenchmarkSimulate4ChInterleaved(b *testing.B) { benchFabric(b, addr.RouteInterleaved) }

// benchObserved runs the BenchmarkSimulatorThroughput workload with the
// given observability options (nil = tracing compiled in but disabled).
func benchObserved(b *testing.B, o *ObserveOptions) {
	mix, err := workload.Rate("milc", 8)
	if err != nil {
		b.Fatal(err)
	}
	var cycles int64
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(mix, sim.Baseline)
		cfg.TargetReads = 5000
		if o != nil {
			Observe(&cfg, *o)
		}
		res, err := sim.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Run.BusCycles
	}
	b.ReportMetric(float64(cycles), "bus_cycles/run")
}

// BenchmarkSimulateTraceOff is BenchmarkSimulatorThroughput with the tracer
// hooks present but nil — the observability layer's zero-cost-when-off
// claim. Its time must track BenchmarkSimulatorThroughput within noise.
func BenchmarkSimulateTraceOff(b *testing.B) { benchObserved(b, nil) }

// BenchmarkSimulateTraceOn runs the same workload with a live ring-buffer
// tracer and metrics snapshot, bounding the cost of full observation.
func BenchmarkSimulateTraceOn(b *testing.B) {
	benchObserved(b, &ObserveOptions{TraceCap: 1 << 14})
}

// BenchmarkWeightedIPCMetric exercises the statistics path.
func BenchmarkWeightedIPCMetric(b *testing.B) {
	mix, err := workload.Rate("zeusmp", 8)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig(mix, sim.FSRankPart)
	cfg.TargetReads = 2000
	res, err := sim.Simulate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	base, err := sim.Simulate(sim.Config{
		DRAM: cfg.DRAM, Mix: mix, Scheduler: sim.Baseline, Seed: cfg.Seed, TargetReads: 2000, MaxBusCycles: cfg.MaxBusCycles,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var w float64
	for i := 0; i < b.N; i++ {
		w, err = stats.WeightedIPC(res.Run, base.Run)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(w, "wipc")
}

// BenchmarkAblationDDR4 reports the DDR4-2400 design-space study (beyond
// the paper's DDR3 evaluation; see EXPERIMENTS.md Ablation A5).
func BenchmarkAblationDDR4(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = table(b, experiments.AblationDDR4)
	}
	am := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(am.Values[0], "FS_RP_ddr4")
	b.ReportMetric(am.Values[2], "TP_BP_ddr4")
}

// BenchmarkDifferentialChecker measures the two independent DDR timing
// validators agreeing over a random command stream (commands per second).
func BenchmarkDifferentialChecker(b *testing.B) {
	p := dram.DDR3_1600()
	for i := 0; i < b.N; i++ {
		ch := dram.NewChannel(p)
		ref := dram.NewReferenceChecker(p)
		seed := uint64(i + 1)
		next := func() uint64 {
			seed += 0x9e3779b97f4a7c15
			z := seed
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return z ^ (z >> 31)
		}
		cycle := int64(0)
		for n := 0; n < 400; n++ {
			r := next()
			cmd := dram.Command{
				Kind: dram.Kind(1 + r%5),
				Rank: int((r >> 8) % 8), Bank: int((r >> 16) % 8), Row: int((r >> 24) % 64),
			}
			if r%6 == 0 {
				cmd.Kind = dram.KindActivate
			}
			cycle += int64(1 + (r>>40)%8)
			chErr := ch.CanIssue(cmd, cycle)
			refErr := ref.Check(cmd, cycle)
			if (chErr == nil) != (refErr == nil) {
				b.Fatalf("validators disagree on %v at %d", cmd, cycle)
			}
			if chErr == nil {
				if err := ch.Issue(cmd, cycle); err != nil {
					b.Fatal(err)
				}
				ref.Apply(cmd, cycle)
			}
		}
	}
}

// BenchmarkSolverDDR4 times re-solving the full design space at DDR4
// timings, including the bank-group rotation design point.
func BenchmarkSolverDDR4(b *testing.B) {
	p := dram.DDR4_2400()
	var rot int
	for i := 0; i < b.N; i++ {
		core.SolverTable(p)
		var err error
		rot, err = core.MinLRotation(p.BankGroups, core.FixedRAS, p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rot), "l_group_rotation")
}

// benchSweep regenerates every evaluation figure on a fresh runner with the
// given pool width. A fresh runner per iteration keeps the memo cache cold,
// so the benchmark times real simulation work, not cache hits.
func benchSweep(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Settings{Cores: 8, TargetReads: 800, Seed: 42, Workers: workers})
		tables, err := experiments.All(r)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("sweep produced no tables")
		}
	}
	b.ReportMetric(float64(workers), "workers")
}

// BenchmarkSweepParallel1 is the serial reference: the full figure sweep on
// a 1-wide pool. BenchmarkSweepParallel4 and 8 time the identical grid on
// wider pools; the speedup ratio is the parallel engine's scaling headline
// (bounded by GOMAXPROCS — a single-core machine shows ~1x by design).
func BenchmarkSweepParallel1(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel4 shards the sweep across 4 workers.
func BenchmarkSweepParallel4(b *testing.B) { benchSweep(b, 4) }

// BenchmarkSweepParallel8 shards the sweep across 8 workers.
func BenchmarkSweepParallel8(b *testing.B) { benchSweep(b, 8) }

// BenchmarkServerCacheHit times the daemon's warmed hot path: an
// identical POST /v1/jobs answered from the result cache plus the GET
// of its cached document, through a real HTTP round trip. The paper
// grid is regenerated often with identical configs, so this path must
// stay well under 10ms per request. The daemon runs with durability
// enabled (DataDir set) to pin that layering the disk store under the
// LRU leaves the warmed in-memory hit path unchanged.
func BenchmarkServerCacheHit(b *testing.B) {
	s, err := server.New(server.Options{Workers: 1, RatePerSec: 1e9, DataDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		s.Drain(context.Background())
		ts.Close()
	}()
	cl := client.New(ts.URL, ts.Client())
	ctx := context.Background()

	e := config.Default()
	e.Workload = "mcf"
	e.Scheduler = "fs_bp"
	e.Cores = 2
	e.Reads = 500
	req := server.JobRequest{Kind: server.KindSimulate, Simulate: &e}

	// Warm the cache with the one real simulation.
	st, err := cl.Submit(ctx, req)
	if err != nil {
		b.Fatal(err)
	}
	if st, err = cl.Wait(ctx, st.ID, time.Millisecond); err != nil || st.State != server.StateDone {
		b.Fatalf("warmup: %v (state %s)", err, st.State)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := cl.Submit(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if !st.State.Terminal() {
			b.Fatal("warmed submission was not answered from cache")
		}
		if _, err := cl.Result(ctx, st.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreReadVerify times one verified read from the disk result
// store: open, header parse, length check, and SHA-256 over a
// result-document-sized payload. This is the per-entry cost a restarted
// daemon pays to re-serve persisted results, so it bounds recovery time
// per recovered job.
func BenchmarkStoreReadVerify(b *testing.B) {
	st, err := server.OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte(`{"metric":"wipc","value":0.8125},`), 128) // ~4KB, a typical result doc
	const key = "sim|bench|store|read|verify"
	if err := st.Put(key, payload); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, ok, err := st.Get(key)
		if err != nil || !ok || len(got) != len(payload) {
			b.Fatalf("Get: ok=%v err=%v len=%d", ok, err, len(got))
		}
	}
	b.ReportMetric(float64(len(payload)), "payload_bytes")
}

// BenchmarkServerColdRecovery times a daemon boot over a data directory
// holding 16 accepted-but-unresolved journaled jobs whose results are
// already in the disk store: journal replay, 16 verified store reads,
// and the startup compaction. This is the restart-latency cost of the
// durability layer (the dominant recovery shape after a SIGKILL: the
// journal records accepts, the store holds the finished bytes).
func BenchmarkServerColdRecovery(b *testing.B) {
	dir := b.TempDir()
	const jobs = 16

	// Seed the store and journal through a real daemon run.
	seedReq := func(seed uint64) server.JobRequest {
		e := config.Default()
		e.Workload = "mcf"
		e.Scheduler = "fs_bp"
		e.Cores = 2
		e.Reads = 300
		e.Seed = seed
		return server.JobRequest{Kind: server.KindSimulate, Simulate: &e}
	}
	s, err := server.New(server.Options{Workers: 4, RatePerSec: 1e9, DataDir: dir})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	cl := client.New(ts.URL, ts.Client())
	ctx := context.Background()
	for seed := uint64(1); seed <= jobs; seed++ {
		st, err := cl.Submit(ctx, seedReq(seed))
		if err != nil {
			b.Fatal(err)
		}
		if st, err = cl.Wait(ctx, st.ID, time.Millisecond); err != nil || st.State != server.StateDone {
			b.Fatalf("seeding: %v (state %s)", err, st.State)
		}
	}
	s.Drain(ctx)
	ts.Close()

	// Keep only the accept records (journal lines are independently
	// checksummed), so every job replays as accepted-but-unresolved and
	// recovery must re-serve it from the store.
	journalPath := filepath.Join(dir, "journal.jsonl")
	raw, err := os.ReadFile(journalPath)
	if err != nil {
		b.Fatal(err)
	}
	var accepts []string
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.Contains(line, `"op":"accept"`) {
			accepts = append(accepts, line)
		}
	}
	if len(accepts) != jobs {
		b.Fatalf("seeded journal has %d accept records, want %d", len(accepts), jobs)
	}
	snapshot := []byte(strings.Join(accepts, "\n") + "\n")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := os.WriteFile(journalPath, snapshot, 0o644); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		s, err := server.New(server.Options{Workers: 2, RatePerSec: 1e9, DataDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		s.Drain(ctx)
	}
	b.StopTimer()
	b.ReportMetric(jobs, "jobs_recovered")

	// Guard: a recovered daemon must answer the seeded work from the
	// store, not by re-simulating.
	if err := os.WriteFile(journalPath, snapshot, 0o644); err != nil {
		b.Fatal(err)
	}
	s2, err := server.New(server.Options{Workers: 2, RatePerSec: 1e9, DataDir: dir})
	if err != nil {
		b.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		s2.Drain(ctx)
		ts2.Close()
	}()
	cl2 := client.New(ts2.URL, ts2.Client())
	st2, err := cl2.Submit(ctx, seedReq(1))
	if err != nil {
		b.Fatal(err)
	}
	if !st2.State.Terminal() || !st2.CacheHit {
		b.Fatalf("recovered daemon did not serve seeded work from the store: %+v", st2)
	}
}

// BenchmarkClusterRouting times the coordinator's routing hot path: one
// consistent-hash Owner lookup per content-addressed job ID over an
// 8-worker ring. Every submission and every retry walk pays this cost,
// so it must stay allocation-free and well under a microsecond.
func BenchmarkClusterRouting(b *testing.B) {
	ring := cluster.NewRing(0)
	for i := 0; i < 8; i++ {
		ring.Add(fmt.Sprintf("http://worker-%d:8377", i))
	}
	ids := make([]string, 1024)
	for i := range ids {
		ids[i] = fmt.Sprintf("j%016x", uint64(i)*0x9e3779b97f4a7c15)
	}
	spread := map[string]bool{}
	for _, id := range ids {
		spread[ring.Owner(id)] = true
	}
	if len(spread) != 8 {
		b.Fatalf("1024 IDs landed on %d/8 workers", len(spread))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ring.Owner(ids[i%len(ids)]) == "" {
			b.Fatal("empty owner")
		}
	}
}

// BenchmarkKolmogorovSmirnov times the two-sample KS statistic on
// realistic campaign-sized inputs. The statistic sits inside the
// permutation-test loop (hundreds of evaluations per certificate), so
// the sort.Float64s implementation must hold its O(n log n) shape.
func BenchmarkKolmogorovSmirnov(b *testing.B) {
	class0, class1 := ksBenchInput(4096)
	b.ReportAllocs()
	b.ResetTimer()
	var d float64
	for i := 0; i < b.N; i++ {
		d = leakage.KolmogorovSmirnov(class0, class1)
	}
	b.ReportMetric(d, "ks_stat")
}

// BenchmarkKolmogorovSmirnovInsertionSort is the reference the sorted
// implementation is gated against: the same statistic over the
// quadratic insertion sort KolmogorovSmirnov used to ship with. The
// ratio-max gate in CI keeps the O(n log n) win locked in.
func BenchmarkKolmogorovSmirnovInsertionSort(b *testing.B) {
	class0, class1 := ksBenchInput(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s0 := append([]float64(nil), class0...)
		s1 := append([]float64(nil), class1...)
		insertionSortRef(s0)
		insertionSortRef(s1)
	}
}

func insertionSortRef(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func ksBenchInput(n int) (class0, class1 []float64) {
	rng := trace.NewRNG(99)
	class0, class1 = make([]float64, n), make([]float64, n)
	for i := 0; i < n; i++ {
		class0[i] = rng.Float64()
		class1[i] = 0.1 + rng.Float64()
	}
	return class0, class1
}

// BenchmarkAuditCampaign runs a reduced adversarial leakage audit end to
// end — strategy library, one adaptive refinement round, multi-seed
// certification, permutation tests — and reports the certificate size.
// This is the hot path of CI's audit-smoke job and the fsmemd "audit"
// job kind.
func BenchmarkAuditCampaign(b *testing.B) {
	o := audit.Options{Domains: 4, Bits: 8, Seeds: 2, Permutations: 49, Rounds: 1, Seed: 42}
	var n int
	for i := 0; i < b.N; i++ {
		cert, err := audit.Run(context.Background(), sim.FSNoPart, o)
		if err != nil {
			b.Fatal(err)
		}
		if cert.Verdict != audit.VerdictSecure {
			b.Fatalf("FS_NP verdict %s, want SECURE", cert.Verdict)
		}
		raw, err := audit.MarshalCertificate(cert)
		if err != nil {
			b.Fatal(err)
		}
		n = len(raw)
	}
	b.ReportMetric(float64(n), "cert_bytes")
}
