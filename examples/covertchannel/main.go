// Covert channel demo (Section 2.2): a firewalled sender leaks a secret to
// a co-scheduled receiver by modulating its memory intensity; the receiver
// decodes it by timing its own progress. The channel works on the
// non-secure baseline and collapses to coin-flipping under Fixed Service.
//
//	go run ./examples/covertchannel
package main

import (
	"fmt"
	"log"

	"fsmem"
	"fsmem/internal/leakage"
	"fsmem/internal/sim"
)

func main() {
	// The secret: one byte, MSB first.
	secret := byte(0xA7)
	message := make([]bool, 8)
	for i := range message {
		message[i] = secret&(1<<(7-i)) != 0
	}
	fmt.Printf("sender wants to exfiltrate the byte %#02x = %08b\n\n", secret, secret)

	for _, k := range []fsmem.SchedulerKind{fsmem.Baseline, fsmem.FSRankPart} {
		res, err := leakage.CovertChannel(sim.SchedulerKind(k), 8, message, 40_000, 7)
		if err != nil {
			log.Fatal(err)
		}
		var decoded byte
		for i, rx := range res.Decoded {
			if rx {
				decoded |= 1 << (7 - i)
			}
		}
		fmt.Printf("== %s ==\n", k)
		fmt.Printf("received: %08b (bit error rate %.2f)\n", decoded, res.BitErrorRate)
		if decoded == secret {
			fmt.Println("SECRET LEAKED: the receiver recovered the byte exactly")
		} else {
			fmt.Printf("secret protected: %d of 8 bits wrong\n", res.Errors)
		}
		fmt.Println()
	}
	fmt.Println("Fixed Service gives every domain an unchanging service schedule, so the")
	fmt.Println("receiver's timing carries no information about the sender's behavior.")
}
