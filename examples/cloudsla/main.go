// Cloud SLA demo (Section 5.1): a hypervisor co-schedules VMs from
// mutually distrustful tenants. The OS picks a spatial partitioning and a
// Fixed Service schedule from the domain count, and every tenant receives a
// fixed, interference-free level of memory service — swapping one tenant's
// workload for a memory hog leaves every other tenant's progress
// bit-identical.
//
//	go run ./examples/cloudsla
package main

import (
	"fmt"
	"log"

	"fsmem"
)

// pickPolicy is the OS allocation decision of Section 4.1: channel
// partitioning when domains fit on channels, rank partitioning up to the
// rank count, then bank partitioning, then triple alternation.
func pickPolicy(domains int, p fsmem.DRAMParams) (fsmem.SchedulerKind, string) {
	totalRanks := p.Channels * p.RanksPerChan
	switch {
	case domains <= p.Channels:
		return fsmem.Baseline, "channel partitioning: domains share nothing, no timing channel to close"
	case domains <= totalRanks:
		return fsmem.FSRankPart, "rank partitioning + FS (l=7): each VM owns its ranks"
	case domains <= p.Channels*p.RanksPerChan*p.BanksPerRank:
		return fsmem.FSReorderedBank, "bank partitioning + reordered FS: each VM owns banks"
	default:
		return fsmem.FSNoPartTriple, "no partitioning + triple alternation: no page-coloring burden"
	}
}

func run(mix fsmem.Mix, k fsmem.SchedulerKind) fsmem.Result {
	cfg := fsmem.NewConfig(mix, k)
	cfg.TargetReads = 0
	cfg.MaxBusCycles = 400_000 // fixed wall-clock window: compare progress
	res, err := fsmem.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	p := fsmem.DDR3x1600()
	for _, n := range []int{1, 8, 64, 1024} {
		k, why := pickPolicy(n, p)
		fmt.Printf("%4d tenant VMs -> %-16s %s\n", n, k, why)
	}
	fmt.Println()

	// Eight tenants with heterogeneous SLAs (the paper's mix1 shape).
	tenants, err := fsmem.Mix1()
	if err != nil {
		log.Fatal(err)
	}
	k, _ := pickPolicy(len(tenants.Profiles), p)
	before := run(tenants, k)

	// Tenant 7 deploys a memory hog.
	noisy := tenants
	noisy.Profiles = append([]fsmem.Profile(nil), tenants.Profiles...)
	noisy.Profiles[7] = fsmem.SyntheticWorkload("hog", 50)
	after := run(noisy, k)

	fmt.Printf("scheduler: %s — tenant 7 swaps %q for a memory hog\n\n", k, tenants.Profiles[7].Name)
	fmt.Println("tenant  workload    instructions(before)  instructions(after)  isolated?")
	allIsolated := true
	for d := 0; d < 7; d++ {
		b := before.Run.Domains[d].Instructions
		a := after.Run.Domains[d].Instructions
		iso := b == a
		allIsolated = allIsolated && iso
		fmt.Printf("%6d  %-10s %20d %20d  %v\n", d, tenants.Profiles[d].Name, b, a, iso)
	}
	fmt.Printf("%6d  %-10s %20d %20d  (the hog itself)\n", 7, "->hog",
		before.Run.Domains[7].Instructions, after.Run.Domains[7].Instructions)
	if allIsolated {
		fmt.Println("\nevery other tenant made bit-identical progress: the SLA holds under any neighbor")
	} else {
		fmt.Println("\nISOLATION VIOLATED — this would be a bug in the FS schedule")
	}
}
