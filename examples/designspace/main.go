// Design-space exploration: reproduce the Figure 3 trade-off curve on
// DDR3-1600 and then re-run the same exploration on DDR4-2400 — the
// framework re-solves every pipeline's slot spacing from the new timing
// parameters, including a DDR4-only design point (bank-group rotation)
// that the paper's machinery admits but could not evaluate in 2015.
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"fsmem"
)

func main() {
	for _, gen := range []struct {
		name string
		p    fsmem.DRAMParams
	}{
		{"DDR3-1600 (the paper's Table 1)", fsmem.DDR3x1600()},
		{"DDR4-2400 (JESD79-4, 4 bank groups)", fsmem.DDR4x2400()},
	} {
		fmt.Printf("== %s ==\n", gen.name)
		fmt.Println("solved slot spacings:")
		for _, mode := range []fsmem.PartitionKind{fsmem.PartitionRank, fsmem.PartitionBank, fsmem.PartitionNone} {
			best := ""
			bestL := 1 << 30
			for _, a := range []fsmem.Anchor{fsmem.FixedData, fsmem.FixedRAS, fsmem.FixedCAS} {
				l, err := fsmem.MinSlotSpacing(a, mode, gen.p)
				if err != nil {
					continue
				}
				if l < bestL {
					bestL, best = l, a.String()
				}
			}
			fmt.Printf("  %-8v partitioning: l=%-3d (%s)\n", mode, bestL, best)
		}
		if gen.p.BankGroups > 1 {
			if l, err := fsmem.MinSlotSpacingRotation(gen.p.BankGroups, fsmem.FixedRAS, gen.p); err == nil {
				fmt.Printf("  %d-way bank-group rotation:  l=%-3d (exploits tCCD_S/tRRD_S — beyond the paper)\n",
					gen.p.BankGroups, l)
			}
		}

		mix, err := fsmem.RateWorkload("milc", 8)
		if err != nil {
			log.Fatal(err)
		}
		baseCfg := fsmem.NewConfig(mix, fsmem.Baseline)
		baseCfg.DRAM = gen.p
		baseCfg.TargetReads = 8000
		base, err := fsmem.Simulate(baseCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("normalized throughput (8x milc):")
		for _, k := range []fsmem.SchedulerKind{fsmem.FSRankPart, fsmem.FSReorderedBank, fsmem.TPBank, fsmem.FSNoPartTriple, fsmem.TPNone} {
			cfg := fsmem.NewConfig(mix, k)
			cfg.DRAM = gen.p
			cfg.TargetReads = 8000
			res, err := fsmem.Simulate(cfg)
			if err != nil {
				log.Fatal(err)
			}
			w, err := fsmem.WeightedIPC(res.Run, base.Run)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-18s %.2f of %d (%.0f%%)\n", k, w, len(mix.Profiles), w/8*100)
		}
		fmt.Println()
	}
}
