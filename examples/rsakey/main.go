// RSA key side channel (Section 2.2): Wang et al. showed that an RSA
// victim's memory traffic is correlated with the 1-bits of its private key
// (square-and-multiply performs the extra multiply — and its extra memory
// accesses — only for 1-bits). A co-scheduled attacker measures nothing but
// its own progress, window by window, and recovers the key through the memory
// controller's queuing delays. Fixed Service reduces the attack to guessing.
//
//	go run ./examples/rsakey
package main

import (
	"fmt"
	"log"

	"fsmem"
	"fsmem/internal/leakage"
	"fsmem/internal/sim"
)

func main() {
	// A 24-bit toy private exponent.
	key := uint32(0b101101_110010_001011_011101)
	const bits = 24
	window := make([]bool, bits)
	for i := 0; i < bits; i++ {
		window[i] = key&(1<<(bits-1-i)) != 0
	}
	fmt.Printf("victim private exponent: %0*b\n", bits, key)
	fmt.Println("victim runs square-and-multiply; each 1-bit adds a memory-heavy multiply phase")
	fmt.Println()

	for _, k := range []fsmem.SchedulerKind{fsmem.Baseline, fsmem.FSRankPart} {
		// Each exponent bit is one timing window: the victim's memory
		// intensity is high during multiply (bit=1) and low otherwise. The
		// attacker times its own probe loop per window.
		res, err := leakage.CovertChannel(sim.SchedulerKind(k), 8, window, 30_000, 11)
		if err != nil {
			log.Fatal(err)
		}
		var recovered uint32
		correct := 0
		for i, rx := range res.Decoded {
			if rx {
				recovered |= 1 << (bits - 1 - i)
			}
			if rx == window[i] {
				correct++
			}
		}
		fmt.Printf("== %s ==\n", k)
		fmt.Printf("attacker recovered:      %0*b\n", bits, recovered)
		fmt.Printf("correct bits:            %d/%d (search space left: 2^%d)\n", correct, bits, bits-correct)
		switch {
		case recovered == key:
			fmt.Println("KEY FULLY RECOVERED through memory-controller timing alone")
		case correct > bits*3/4:
			fmt.Println("key mostly recovered; the remainder brute-forces trivially")
		default:
			fmt.Println("attack defeated: recovered bits are indistinguishable from guessing")
		}
		fmt.Println()
	}
}
