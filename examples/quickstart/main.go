// Quickstart: run one memory-intensive workload (eight copies of mcf) under
// the non-secure baseline and under the paper's best secure design point
// (Fixed Service with rank partitioning), and compare throughput.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fsmem"
)

func main() {
	mix, err := fsmem.RateWorkload("mcf", 8)
	if err != nil {
		log.Fatal(err)
	}

	// Non-secure baseline: out-of-order FR-FCFS scheduling, open pages,
	// shared queues — fast, and it leaks timing information across domains.
	baseCfg := fsmem.NewConfig(mix, fsmem.Baseline)
	baseCfg.TargetReads = 30_000
	base, err := fsmem.Simulate(baseCfg)
	if err != nil {
		log.Fatal(err)
	}

	// Fixed Service with rank partitioning: every domain owns a rank and
	// gets exactly one transaction slot every Q = 56 cycles, provably
	// without resource conflicts — zero information leakage.
	fsCfg := fsmem.NewConfig(mix, fsmem.FSRankPart)
	fsCfg.TargetReads = 30_000
	secure, err := fsmem.Simulate(fsCfg)
	if err != nil {
		log.Fatal(err)
	}

	w, err := fsmem.WeightedIPC(secure.Run, base.Run)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("workload: 8x mcf (rate mode), DDR3-1600, 1 channel, 8 ranks")
	fmt.Printf("%-22s %12s %14s %12s\n", "scheduler", "read latency", "bus utilization", "dummies")
	for _, r := range []fsmem.Result{base, secure} {
		fmt.Printf("%-22s %9.0f cyc %13.1f%% %11.1f%%\n",
			r.Run.Scheduler, r.Run.AvgReadLatency(), r.Run.BusUtilization()*100, r.Run.DummyFraction()*100)
	}
	fmt.Printf("\nsecure throughput: %.2f of %d (%.0f%% of the non-secure baseline)\n",
		w, len(mix.Profiles), w/float64(len(mix.Profiles))*100)
	fmt.Println("the paper's best FS design point runs at ~73% of the baseline — with zero timing leakage")
}
