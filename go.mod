module fsmem

go 1.22
