package fsmem_test

import (
	"fmt"
	"log"

	"fsmem"
)

// ExampleSimulate runs one secure and one non-secure simulation and
// compares throughput with the paper's weighted-IPC metric.
func ExampleSimulate() {
	mix, err := fsmem.RateWorkload("mcf", 8)
	if err != nil {
		log.Fatal(err)
	}

	secureCfg := fsmem.NewConfig(mix, fsmem.FSRankPart)
	secureCfg.TargetReads = 5000
	secure, err := fsmem.Simulate(secureCfg)
	if err != nil {
		log.Fatal(err)
	}

	baseCfg := fsmem.NewConfig(mix, fsmem.Baseline)
	baseCfg.TargetReads = 5000
	base, err := fsmem.Simulate(baseCfg)
	if err != nil {
		log.Fatal(err)
	}

	w, err := fsmem.WeightedIPC(secure.Run, base.Run)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FS_RP retains most of the baseline's throughput: %v\n", w > 4.0 && w < 8.0)
	// Output: FS_RP retains most of the baseline's throughput: true
}

// ExampleMinSlotSpacing reproduces the paper's central Section 3 result:
// the minimum conflict-free slot spacing under rank partitioning with
// fixed periodic data is 7 cycles at the Table 1 timings.
func ExampleMinSlotSpacing() {
	l, err := fsmem.MinSlotSpacing(fsmem.FixedData, fsmem.PartitionRank, fsmem.DDR3x1600())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(l)
	// Output: 7
}

// ExampleSolveConsecutive reproduces the Section 3.1 bandwidth study: N
// consecutive transactions per thread never beat the one-per-slot pipeline.
func ExampleSolveConsecutive() {
	one, _ := fsmem.SolveConsecutive(1, fsmem.DDR3x1600())
	two, _ := fsmem.SolveConsecutive(2, fsmem.DDR3x1600())
	fmt.Printf("N=1: %.0f cycles/txn; N=2 is worse: %v\n", one.AvgSpacing(), two.AvgSpacing() > one.AvgSpacing())
	// Output: N=1: 7 cycles/txn; N=2 is worse: true
}

// ExampleCollectLeakageProfile demonstrates the non-interference check at
// the heart of the paper: an attacker's timing is bit-identical under any
// co-runner behavior.
func ExampleCollectLeakageProfile() {
	attacker := fsmem.SyntheticWorkload("attacker", 30)
	quiet, err := fsmem.CollectLeakageProfile(fsmem.FSRankPart, attacker,
		fsmem.SyntheticWorkload("idle", 0.01), 8, 10000, 50000, 1)
	if err != nil {
		log.Fatal(err)
	}
	loud, err := fsmem.CollectLeakageProfile(fsmem.FSRankPart, attacker,
		fsmem.SyntheticWorkload("streaming", 45), 8, 10000, 50000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fsmem.ProfilesIdentical(quiet, loud))
	// Output: true
}
