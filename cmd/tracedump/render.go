package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"fsmem/internal/obs"
)

// render converts one or more concatenated JSONL trace documents into
// per-cycle timelines. A plain export (memsim -cmd-trace) is a single
// document; a sweep -trace-out export interleaves {"cell":...} label lines
// between documents, which become section headers. Factored out of main
// for the golden-file test.
func render(in io.Reader, out io.Writer) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var doc strings.Builder
	sections, rendered := 0, 0
	flush := func() error {
		if doc.Len() == 0 {
			return nil
		}
		events, err := obs.ReadJSONL(strings.NewReader(doc.String()))
		doc.Reset()
		if err != nil {
			return err
		}
		rendered++
		return obs.Timeline(out, events)
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, `{"cell":`) {
			if err := flush(); err != nil {
				return err
			}
			var label struct {
				Cell string `json:"cell"`
			}
			if err := json.Unmarshal([]byte(line), &label); err != nil {
				return fmt.Errorf("tracedump: cell label: %w", err)
			}
			if sections > 0 {
				fmt.Fprintln(out)
			}
			if _, err := fmt.Fprintf(out, "== %s ==\n", label.Cell); err != nil {
				return err
			}
			sections++
			continue
		}
		if strings.HasPrefix(line, `{"fsmem_trace":`) && doc.Len() > 0 {
			// A new header without a cell label: concatenated plain documents.
			if err := flush(); err != nil {
				return err
			}
		}
		doc.WriteString(line)
		doc.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	if rendered == 0 {
		return fmt.Errorf("tracedump: input contains no trace")
	}
	return nil
}
