package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// TestRenderGolden renders a checked-in FS_BP trace (memsim -workload mcf
// -sched fs_bp -cores 2 -reads 120 -seed 7 -trace-cap 512) and compares
// against the golden timeline. Regenerate both files with the same memsim
// invocation plus `go run ./cmd/tracedump` if the trace format changes.
func TestRenderGolden(t *testing.T) {
	in, err := os.Open("testdata/fs_bp_small.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	want, err := os.ReadFile("testdata/fs_bp_small.golden")
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := render(in, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("timeline differs from golden file (got %d bytes, want %d);\nfirst got lines:\n%s",
			got.Len(), len(want), firstLines(got.String(), 5))
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// TestRenderMultiDocument checks the sweep -trace-out shape: cell label
// lines become section headers between per-cell timelines.
func TestRenderMultiDocument(t *testing.T) {
	in := strings.Join([]string{
		`{"cell":"{workload:A sched:0}"}`,
		`{"fsmem_trace":1,"events":1,"dropped":0}`,
		`{"c":5,"k":"cmd","dom":0,"cmd":"ACT","rank":1,"bank":2,"row":3,"col":0,"arg":0,"sup":0,"w":0}`,
		`{"cell":"{workload:B sched:3}"}`,
		`{"fsmem_trace":1,"events":1,"dropped":0}`,
		`{"c":9,"k":"slot","dom":1,"cmd":"","rank":0,"bank":0,"row":0,"col":0,"arg":2,"sup":0,"w":0}`,
	}, "\n") + "\n"
	var got bytes.Buffer
	if err := render(strings.NewReader(in), &got); err != nil {
		t.Fatal(err)
	}
	out := got.String()
	for _, want := range []string{
		"== {workload:A sched:0} ==",
		"== {workload:B sched:3} ==",
		"cycle          5  dom0   ACT  r1/b2/row3",
		"cycle          9  dom1   slot substituted: skip",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("multi-doc render missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "workload:A") > strings.Index(out, "workload:B") {
		t.Fatal("sections rendered out of order")
	}
}

// TestRenderMultiChannel: a trace carrying nonzero channel ids grows the
// ch prefix on every line, while an all-zero trace (every pre-fabric
// export) renders without it — the golden file above pins that case.
func TestRenderMultiChannel(t *testing.T) {
	in := strings.Join([]string{
		`{"fsmem_trace":1,"events":2,"dropped":0}`,
		`{"c":5,"k":"cmd","dom":0,"ch":0,"cmd":"ACT","rank":1,"bank":2,"row":3,"col":0,"arg":0,"sup":0,"w":0}`,
		`{"c":7,"k":"cmd","dom":3,"ch":2,"cmd":"ACT","rank":0,"bank":1,"row":9,"col":0,"arg":0,"sup":0,"w":0}`,
	}, "\n") + "\n"
	var got bytes.Buffer
	if err := render(strings.NewReader(in), &got); err != nil {
		t.Fatal(err)
	}
	out := got.String()
	for _, want := range []string{
		"cycle          5  ch0/dom0 ACT  r1/b2/row3",
		"cycle          7  ch2/dom3 ACT  r0/b1/row9",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("multi-channel render missing %q:\n%s", want, out)
		}
	}
}

// TestRenderRejectsCorruption: a corrupted document must error, not render
// an empty timeline.
func TestRenderRejectsCorruption(t *testing.T) {
	for name, in := range map[string]string{
		"empty":        "",
		"unknown kind": "{\"fsmem_trace\":1,\"events\":1,\"dropped\":0}\n{\"c\":1,\"k\":\"zzz\"}\n",
		"bad label":    "{\"cell\":\n",
	} {
		var out bytes.Buffer
		if err := render(strings.NewReader(in), &out); err == nil {
			t.Errorf("%s: rendered without error", name)
		}
	}
}
