// Command tracedump renders a JSONL command/event trace (produced by
// memsim -cmd-trace, sweep -trace-out, or fsmem.TraceExport) as a
// human-readable per-cycle timeline.
//
// Usage:
//
//	tracedump run.jsonl
//	memsim -workload mcf -sched fs_bp -cmd-trace /dev/stdout | tracedump -
//
// Multi-trace exports (sweep -trace-out concatenates one JSONL document
// per grid cell, each preceded by a {"cell":...} label line) are rendered
// as consecutive timelines with their cell labels as headers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tracedump <trace.jsonl | ->\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracedump:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := render(in, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
}
