// Command leakage runs the paper's security experiments: the Figure 4
// execution profiles (an attacker timed against idle vs memory-intensive
// co-runners), a mutual-information estimate of the channel, and a covert
// channel encode/decode attempt.
//
// Usage:
//
//	leakage                         # Figure 4 profiles + MI, baseline vs FS_RP
//	leakage -sched fs_np_optimized  # any scheduler
//	leakage -covert                 # covert channel bit-error-rate comparison
//	leakage -covert -json           # ... as machine-readable certificate fragments
//	leakage -j 4                    # shard profile collection across 4 workers
//
// The -j flag bounds the worker pool the profile collections are
// sharded across (0 = GOMAXPROCS). Output is byte-identical for every
// value: results are merged in input order, never completion order.
//
// Profiling: -cpuprofile, -memprofile, and -exectrace write the
// standard Go profiles (inspect with `go tool pprof` / `go tool trace`).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"fsmem"
	"fsmem/internal/addr"
	"fsmem/internal/audit"
	"fsmem/internal/leakage"
	"fsmem/internal/obs"
	"fsmem/internal/parallel"
	"fsmem/internal/sim"
	"fsmem/internal/workload"
)

var schedNames = map[string]fsmem.SchedulerKind{
	"baseline":        fsmem.Baseline,
	"tp_bp":           fsmem.TPBank,
	"tp_np":           fsmem.TPNone,
	"fs_rp":           fsmem.FSRankPart,
	"fs_bp":           fsmem.FSBankPart,
	"fs_reordered_bp": fsmem.FSReorderedBank,
	"fs_np":           fsmem.FSNoPart,
	"fs_np_optimized": fsmem.FSNoPartTriple,
}

func main() {
	attackerName := flag.String("attacker", "mcf", "attacker benchmark (Figure 4 uses mcf)")
	schedName := flag.String("sched", "", "single scheduler to test (default: baseline and fs_rp)")
	samples := flag.Int64("samples", 40, "profile samples (x10K instructions)")
	covert := flag.Bool("covert", false, "run the covert-channel experiment instead")
	jsonOut := flag.Bool("json", false, "with -covert, emit one certificate fragment per scheduler on stdout (the cmd/audit schema)")
	seed := flag.Uint64("seed", 42, "random seed")
	channels := flag.Int("channels", 1, "memory channels (1 = classic single-channel system)")
	routingName := flag.String("routing", "colored", "multi-channel request routing: colored or interleaved")
	workers := flag.Int("j", 0, "parallel profile-collection workers (0 = GOMAXPROCS); output is identical for every value")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	exectrace := flag.String("exectrace", "", "write a Go execution trace to this file")
	flag.Parse()

	routing, err := addr.RoutingByName(*routingName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakage:", err)
		os.Exit(2)
	}
	stopProf, err := obs.StartProfiling(*cpuprofile, *memprofile, *exectrace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakage:", err)
		os.Exit(2)
	}
	code := run(*attackerName, *schedName, *samples, *seed, *workers, *covert, *jsonOut, *channels, routing)
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "leakage: profiling: %v\n", err)
	}
	os.Exit(code)
}

func run(attackerName, schedName string, samples int64, seed uint64, workers int, covert, jsonOut bool, channels int, routing addr.Routing) int {
	if covert {
		return runCovert(seed, jsonOut, channels, routing)
	}

	attacker, err := workload.ByName(attackerName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	kinds := []sim.SchedulerKind{sim.Baseline, sim.FSRankPart}
	if schedName != "" {
		k, ok := schedNames[schedName]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown -sched %q\n", schedName)
			return 2
		}
		kinds = []sim.SchedulerKind{k}
	}

	milestone := int64(10_000)
	total := samples * milestone
	coRunners := []workload.Profile{workload.Synthetic("idle", 0.01), workload.Synthetic("streaming", 45)}

	// The quiet/loud collections are independent; shard them across the
	// pool and assemble output from the ordered results.
	var cells []parallel.Cell[leakage.Profile]
	for _, k := range kinds {
		for _, co := range coRunners {
			k, co := k, co
			cells = append(cells, parallel.Cell[leakage.Profile]{
				Key: fmt.Sprintf("leakage/%v/%s", k, co.Name),
				Run: func(context.Context) (leakage.Profile, error) {
					return leakage.CollectProfile(k, attacker, co, 8, milestone, total, seed, channels, routing)
				},
			})
		}
	}
	profiles, err := parallel.Map(context.Background(), workers, cells)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	fmt.Printf("attacker %s, 7 co-runners, sampled every %d instructions\n\n", attacker.Name, milestone)
	for i, k := range kinds {
		quiet, loud := profiles[2*i], profiles[2*i+1]
		div, _ := leakage.Divergence(quiet, loud)
		mi := leakage.MutualInformationBits(leakage.EpochDurations(quiet), leakage.EpochDurations(loud), 16)
		fmt.Printf("== %s ==\n", k)
		fmt.Printf("profiles identical:  %v\n", leakage.Identical(quiet, loud))
		fmt.Printf("max divergence:      %.4f\n", div)
		fmt.Printf("mutual information:  %.4f bits\n", mi)
		fmt.Println("instr(x10K)  cycles(idle co-runners)  cycles(streaming co-runners)")
		step := len(quiet.CyclesAt) / 8
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(quiet.CyclesAt) && i < len(loud.CyclesAt); i += step {
			fmt.Printf("%10d  %22d  %27d\n", (i + 1), quiet.CyclesAt[i], loud.CyclesAt[i])
		}
		fmt.Println()
	}
	return 0
}

func runCovert(seed uint64, jsonOut bool, channels int, routing addr.Routing) int {
	message := []bool{true, false, true, true, false, false, true, false, true, true, false, true, false, false, true, false}
	// The attack mirrors leakage.CovertChannel's intensity modulation so
	// -json and the plain output describe the exact same experiment.
	attack := audit.Attack{
		Name:            "intensity",
		Probe:           workload.Synthetic("probe", 25),
		On:              workload.Synthetic("burst", 40),
		Off:             workload.Synthetic("quiet", 0.01),
		WindowBusCycles: 40_000,
	}
	if !jsonOut {
		fmt.Printf("covert channel: %d-bit message, sender modulates memory intensity per window\n\n", len(message))
	}
	for _, k := range []sim.SchedulerKind{sim.Baseline, sim.FSRankPart} {
		run, err := leakage.RunChannel(k, message, leakage.ChannelParams{
			Domains:         8,
			Probe:           attack.Probe,
			On:              attack.On,
			Off:             attack.Off,
			WindowBusCycles: attack.WindowBusCycles,
			Seed:            seed,
			Channels:        channels,
			Routing:         routing,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if jsonOut {
			frag := audit.FragmentFor(attack, run, audit.DefaultPermutations, seed)
			b, err := audit.MarshalFragment(frag)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			os.Stdout.Write(b)
			continue
		}
		res := run.Result
		fmt.Printf("%-16s bit error rate %.2f (%d/%d wrong)\n", res.Scheduler, res.BitErrorRate, res.Errors, res.Bits)
	}
	if !jsonOut {
		fmt.Println("\n0.00 = perfect covert channel; ~0.50 = receiver learns nothing")
	}
	return 0
}
