// Command audit runs the adversarial leakage auditor: a library of
// parameterized covert-channel attackers plus an adaptive search loop
// is thrown at a scheduler, the best strategy is re-certified across
// independent seeds, and the result is emitted as a machine-readable
// LeakageCertificate (verdict SECURE, LEAKY, or FAIL).
//
// Usage:
//
//	audit                         # audit every scheduler
//	audit -sched fs_np            # a single scheduler
//	audit -fault derate-trcd      # inject a timing fault (FS must FAIL)
//	audit -expect secure          # exit 1 unless every verdict is SECURE
//	audit -j 4                    # shard the campaign across 4 workers
//
// One certificate is printed per line on stdout (JSONL); the human
// summary goes to stderr. Certificates are byte-identical for every -j
// value: work is keyed and merged deterministically, never by
// completion order.
//
// Profiling: -cpuprofile, -memprofile, and -exectrace write the
// standard Go profiles (inspect with `go tool pprof` / `go tool trace`).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"fsmem"
	"fsmem/internal/audit"
	"fsmem/internal/obs"
	"fsmem/internal/sim"
)

// auditOrder fixes the -sched all certificate order (the sim enum order,
// baseline first) so JSONL output is stable across releases.
var auditOrder = []fsmem.SchedulerKind{
	fsmem.Baseline,
	fsmem.TPBank,
	fsmem.TPNone,
	fsmem.FSRankPart,
	fsmem.FSBankPart,
	fsmem.FSReorderedBank,
	fsmem.FSNoPart,
	fsmem.FSNoPartTriple,
}

var schedNames = map[string]fsmem.SchedulerKind{
	"baseline":        fsmem.Baseline,
	"tp_bp":           fsmem.TPBank,
	"tp_np":           fsmem.TPNone,
	"fs_rp":           fsmem.FSRankPart,
	"fs_bp":           fsmem.FSBankPart,
	"fs_reordered_bp": fsmem.FSReorderedBank,
	"fs_np":           fsmem.FSNoPart,
	"fs_np_optimized": fsmem.FSNoPartTriple,
}

func main() {
	schedName := flag.String("sched", "all", "scheduler to audit, or \"all\"")
	cores := flag.Int("cores", audit.DefaultDomains, "cores (= security domains)")
	bits := flag.Int("bits", audit.DefaultBits, "covert message length (rounded up to even)")
	window := flag.Int64("window", audit.DefaultWindow, "base signalling window in bus cycles")
	seeds := flag.Int("seeds", audit.DefaultSeeds, "independent certification seeds")
	perms := flag.Int("perms", audit.DefaultPermutations, "permutation-test rounds")
	rounds := flag.Int("rounds", audit.DefaultRounds, "adaptive search refinement rounds")
	seed := flag.Uint64("seed", 42, "base random seed")
	faultName := flag.String("fault", "", "fault plan to inject (anti-vacuity check); see cmd/chaos for names")
	faultSeed := flag.Uint64("faultseed", 7, "fault plan seed")
	channels := flag.Int("channels", 1, "memory-fabric width to audit (1 = classic single channel)")
	routing := flag.String("routing", "colored", "multi-channel routing: colored or interleaved")
	expect := flag.String("expect", "", "exit 1 unless every verdict matches (secure|leaky|fail)")
	workers := flag.Int("j", 0, "parallel campaign workers (0 = GOMAXPROCS); certificates are identical for every value")
	verbose := flag.Bool("v", false, "log campaign progress to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	exectrace := flag.String("exectrace", "", "write a Go execution trace to this file")
	flag.Parse()

	stopProf, err := obs.StartProfiling(*cpuprofile, *memprofile, *exectrace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "audit:", err)
		os.Exit(2)
	}
	route, err := fsmem.RoutingByName(*routing)
	if err != nil {
		fmt.Fprintln(os.Stderr, "audit:", err)
		os.Exit(2)
	}
	o := audit.Options{
		Domains:         *cores,
		Bits:            *bits,
		WindowBusCycles: *window,
		Seed:            *seed,
		Seeds:           *seeds,
		Permutations:    *perms,
		Rounds:          *rounds,
		Workers:         *workers,
		FaultPlan:       *faultName,
		FaultSeed:       *faultSeed,
		Channels:        *channels,
		Routing:         route,
	}
	if *verbose {
		o.Progress = func(stage string, done, total int) {
			fmt.Fprintf(os.Stderr, "audit: %-12s %d/%d\n", stage, done, total)
		}
	}
	code := run(*schedName, *expect, o)
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "audit: profiling: %v\n", err)
	}
	os.Exit(code)
}

func run(schedName, expect string, o audit.Options) int {
	var want audit.Verdict
	switch strings.ToLower(expect) {
	case "":
	case "secure":
		want = audit.VerdictSecure
	case "leaky":
		want = audit.VerdictLeaky
	case "fail":
		want = audit.VerdictFail
	default:
		fmt.Fprintf(os.Stderr, "unknown -expect %q (want secure, leaky, or fail)\n", expect)
		return 2
	}

	kinds := auditOrder
	if schedName != "all" {
		k, ok := schedNames[schedName]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown -sched %q\n", schedName)
			return 2
		}
		kinds = []sim.SchedulerKind{k}
	}

	mismatched := false
	for _, k := range kinds {
		cert, err := audit.Run(context.Background(), k, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "audit:", err)
			return 1
		}
		b, err := audit.MarshalCertificate(cert)
		if err != nil {
			fmt.Fprintln(os.Stderr, "audit:", err)
			return 1
		}
		os.Stdout.Write(b)
		fmt.Fprintf(os.Stderr, "%-16s %-6s  best=%s ber=%.3f mi=%.3f(p=%.3f) ks=%.3f(p=%.3f) cap=%.0fb/s viol=%d attacks=%d\n",
			cert.Scheduler, cert.Verdict, cert.BestAttack.Name,
			cert.Stats.BitErrorRate, cert.Stats.MIBits, cert.Stats.MIPValue,
			cert.Stats.KSStat, cert.Stats.KSPValue,
			cert.CapacityBitsPerSec, cert.MonitorViolations, len(cert.Attacks))
		if want != "" && cert.Verdict != want {
			mismatched = true
		}
	}
	if mismatched {
		fmt.Fprintf(os.Stderr, "audit: verdict mismatch: expected every scheduler to be %s\n", strings.ToUpper(expect))
		return 1
	}
	return 0
}
