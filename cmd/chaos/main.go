// Command chaos runs the deterministic fault-injection campaign against one
// or more memory scheduling policies and reports, per fault plan, whether
// the always-on runtime monitor detected the fault, proved it harmless, or
// let a victim domain's timing silently change (an undetected leak).
//
// The Fixed Service schedulers must show zero undetected faults — their
// statically proven schedule plus the shadow timing checker catches every
// perturbation that could reach another domain. The non-secure FR-FCFS
// baseline visibly fails: dropped or delayed commands and load spikes
// propagate into other domains' read-delivery times without any monitor
// flag, which is exactly the timing channel the paper closes. Temporal
// Partitioning sits between the two: it isolates domains from each other
// but has no static schedule, so domain-neutral hardware faults (a refresh
// storm, say) shift timing without any flag — reported as a NOTE, not a
// failure.
//
// Usage:
//
//	chaos                         # campaign across every scheduler
//	chaos -sched fs_rp            # one scheduler
//	chaos -workload milc -seed 7  # different traffic and fault seed
//	chaos -j 8                    # shard each campaign across 8 workers
//
// The -j flag bounds the worker pool each campaign's runs are sharded
// across (0 = GOMAXPROCS). Verdicts are byte-identical for every -j
// value: every run is a pure function of its configuration and plan.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"fsmem"
	"fsmem/internal/obs"
)

var schedNames = map[string]fsmem.SchedulerKind{
	"baseline":        fsmem.Baseline,
	"tp_bp":           fsmem.TPBank,
	"tp_np":           fsmem.TPNone,
	"fs_rp":           fsmem.FSRankPart,
	"fs_bp":           fsmem.FSBankPart,
	"fs_reordered_bp": fsmem.FSReorderedBank,
	"fs_np":           fsmem.FSNoPart,
	"fs_np_optimized": fsmem.FSNoPartTriple,
}

// isFS reports whether the scheduler has a static schedule the monitor can
// fully verify — the tier that must show zero undetected faults.
func isFS(k fsmem.SchedulerKind) bool {
	switch k {
	case fsmem.FSRankPart, fsmem.FSBankPart, fsmem.FSReorderedBank, fsmem.FSNoPart, fsmem.FSNoPartTriple:
		return true
	}
	return false
}

func keys() []string {
	var out []string
	for k := range schedNames {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func main() {
	schedName := flag.String("sched", "all", "scheduler to attack: "+strings.Join(keys(), ", ")+", or all")
	wl := flag.String("workload", "milc", "benchmark name (rate mode)")
	cores := flag.Int("cores", 4, "cores / security domains")
	seed := flag.Uint64("seed", 7, "fault-plan seed")
	verbose := flag.Bool("v", false, "print stored violation details for detected faults")
	workers := flag.Int("j", 0, "parallel campaign workers (0 = GOMAXPROCS); verdicts are identical for every value")
	cycles := flag.Int64("cycles", 0, "fixed bus cycles per campaign run (0 = the standard 24k; the nightly CI job raises this)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	exectrace := flag.String("exectrace", "", "write a Go execution trace to this file")
	flag.Parse()

	stopProf, err := obs.StartProfiling(*cpuprofile, *memprofile, *exectrace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(2)
	}
	// run does the work so the profilers flush before os.Exit.
	code := run(*schedName, *wl, *cores, *seed, *cycles, *workers, *verbose)
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "chaos: profiling: %v\n", err)
	}
	os.Exit(code)
}

func run(schedName, wl string, cores int, seed uint64, cycles int64, workers int, verbose bool) int {

	var scheds []string
	if schedName == "all" {
		scheds = keys()
	} else if _, ok := schedNames[schedName]; ok {
		scheds = []string{schedName}
	} else {
		fmt.Fprintf(os.Stderr, "unknown -sched %q (options: %s, all)\n", schedName, strings.Join(keys(), ", "))
		return 2
	}

	mix, err := fsmem.RateWorkload(wl, cores)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	exit := 0
	for _, name := range scheds {
		k := schedNames[name]
		cfg := fsmem.NewConfig(mix, k)
		cfg.Seed = 1
		if cycles > 0 {
			// A fixed-duration config (TargetReads 0, MaxBusCycles set) is kept
			// by the campaign instead of the standard 24k-cycle window.
			cfg.TargetReads = 0
			cfg.MaxBusCycles = cycles
		}
		plans := fsmem.StandardFaultPlans(cores, seed)
		res, err := fsmem.RunFaultCampaignContext(context.Background(), cfg, plans, workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %s: %v\n", name, err)
			exit = 1
			continue
		}
		fmt.Printf("== %s (%d cycles per run) ==\n", res.Scheduler, res.Cycles)
		for _, o := range res.Outcomes {
			fmt.Printf("  %-18s %-10s timing=%-3d schedule=%-3d scheduler=%-3d",
				o.Plan, o.Verdict, o.TimingViolations, o.ScheduleViolations, o.SchedulerViolations)
			if len(o.ChangedDomains) > 0 {
				fmt.Printf(" victim-domains=%v", o.ChangedDomains)
			}
			fmt.Println()
		}
		und := res.Undetected()
		switch {
		case isFS(k) && und == 0:
			fmt.Printf("  -> PASS: no undetected faults\n\n")
		case isFS(k):
			fmt.Printf("  -> FAIL: %d undetected faults on a verifiable FS scheduler\n\n", und)
			exit = 1
		case k == fsmem.Baseline && und > 0:
			fmt.Printf("  -> EXPECTED LEAK: %d silent non-interference failures (non-secure baseline)\n\n", und)
		case k == fsmem.Baseline:
			fmt.Printf("  -> note: baseline showed no silent failures on this workload/seed\n\n")
		case und > 0:
			fmt.Printf("  -> NOTE: %d undetected — TP isolates domains but has no static schedule for the monitor to check\n\n", und)
		default:
			fmt.Printf("  -> PASS: no undetected faults (TP, isolation only)\n\n")
		}
		if verbose {
			for _, o := range res.Outcomes {
				if o.Verdict != fsmem.FaultDetected {
					continue
				}
				fmt.Printf("  detail %s: injected %+v\n", o.Plan, o.Injected)
			}
		}
	}
	return exit
}
