package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: fsmem
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSolver-8   	     100	   1200000 ns/op	     512 B/op	      12 allocs/op	        21.00 l_rank
BenchmarkSolver-8   	     100	   1000000 ns/op	     512 B/op	      12 allocs/op	        21.00 l_rank
BenchmarkSolver-8   	     100	   1100000 ns/op	     520 B/op	      13 allocs/op	        21.00 l_rank
BenchmarkSweepParallel8-8   	       1	9000000000 ns/op	         8.000 workers
PASS
ok  	fsmem	35.0s
`

func parseSample(t *testing.T) map[string]Entry {
	t.Helper()
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestParseMinAcrossCounts(t *testing.T) {
	got := parseSample(t)
	s, ok := got["BenchmarkSolver"]
	if !ok {
		t.Fatalf("CPU suffix not stripped: %v", got)
	}
	if s.NsPerOp != 1_000_000 {
		t.Errorf("ns/op = %v, want min across counts 1e6", s.NsPerOp)
	}
	if s.Metrics["B/op"] != 512 || s.Metrics["allocs/op"] != 12 {
		t.Errorf("timing metrics not minimized: %v", s.Metrics)
	}
	if s.Metrics["l_rank"] != 21 {
		t.Errorf("custom metric lost: %v", s.Metrics)
	}
	if got["BenchmarkSweepParallel8"].Metrics["workers"] != 8 {
		t.Errorf("workers label lost: %v", got["BenchmarkSweepParallel8"])
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok fsmem 1s\n")); err == nil {
		t.Fatal("no benchmark lines should be an error")
	}
}

func TestCompareCleanRun(t *testing.T) {
	got := parseSample(t)
	base := Baseline{Benchmarks: got}
	if p := compare(base, got, 0.15, 0.01); len(p) != 0 {
		t.Fatalf("identical run flagged: %v", p)
	}
}

func TestCompareTimeRegressionOneSided(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Entry{
		"BenchmarkSolver": {NsPerOp: 1_000_000},
	}}
	// 10% slower: within the +15% band.
	ok := map[string]Entry{"BenchmarkSolver": {NsPerOp: 1_100_000}}
	if p := compare(base, ok, 0.15, 0.01); len(p) != 0 {
		t.Fatalf("+10%% flagged at 15%% tolerance: %v", p)
	}
	// 20% slower: regression.
	slow := map[string]Entry{"BenchmarkSolver": {NsPerOp: 1_200_000}}
	if p := compare(base, slow, 0.15, 0.01); len(p) != 1 {
		t.Fatalf("+20%% not flagged: %v", p)
	}
	// 50% faster: improvements never fail.
	fast := map[string]Entry{"BenchmarkSolver": {NsPerOp: 500_000}}
	if p := compare(base, fast, 0.15, 0.01); len(p) != 0 {
		t.Fatalf("improvement flagged: %v", p)
	}
}

func TestCompareMetricDriftTwoSided(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Entry{
		"BenchmarkFig6": {NsPerOp: 1, Metrics: map[string]float64{"wipc": 2.00}},
	}}
	for _, tc := range []struct {
		v    float64
		want int
	}{
		{2.00, 0}, // exact
		{2.01, 0}, // +0.5%: inside 1%
		{2.10, 1}, // +5%: drift up fails
		{1.90, 1}, // -5%: drift down fails too (two-sided)
	} {
		got := map[string]Entry{"BenchmarkFig6": {NsPerOp: 1, Metrics: map[string]float64{"wipc": tc.v}}}
		if p := compare(base, got, 0.15, 0.01); len(p) != tc.want {
			t.Errorf("wipc=%v: %d problems, want %d: %v", tc.v, len(p), tc.want, p)
		}
	}
}

func TestCompareWorkersMetricExempt(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Entry{
		"BenchmarkSweepParallel8": {NsPerOp: 1, Metrics: map[string]float64{"workers": 8}},
	}}
	got := map[string]Entry{
		"BenchmarkSweepParallel8": {NsPerOp: 1, Metrics: map[string]float64{"workers": 1}},
	}
	if p := compare(base, got, 0.15, 0.01); len(p) != 0 {
		t.Fatalf("workers label compared as a measurement: %v", p)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Entry{
		"BenchmarkGone": {NsPerOp: 10},
	}}
	p := compare(base, map[string]Entry{"BenchmarkOther": {NsPerOp: 1}}, 0.15, 0.01)
	if len(p) != 1 || !strings.Contains(p[0], "missing") {
		t.Fatalf("missing benchmark not flagged: %v", p)
	}
}

func TestCompareMissingMetricFails(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Entry{
		"BenchmarkFig6": {NsPerOp: 1, Metrics: map[string]float64{"wipc": 2}},
	}}
	p := compare(base, map[string]Entry{"BenchmarkFig6": {NsPerOp: 1}}, 0.15, 0.01)
	if len(p) != 1 || !strings.Contains(p[0], "gone") {
		t.Fatalf("dropped metric not flagged: %v", p)
	}
}

func TestCompareUnitSetChangeFails(t *testing.T) {
	// A benchmark that starts reporting units the baseline has never seen
	// (say -benchmem turned on, adding B/op and allocs/op) must fail with
	// a pointer at -write, not pass with the new units ungated.
	base := Baseline{Benchmarks: map[string]Entry{
		"BenchmarkSolver": {NsPerOp: 1_000_000},
	}}
	got := map[string]Entry{
		"BenchmarkSolver": {NsPerOp: 1_000_000, Metrics: map[string]float64{"B/op": 512, "allocs/op": 12}},
	}
	p := compare(base, got, 0.15, 0.01)
	if len(p) != 1 {
		t.Fatalf("unit set change produced %d problems, want 1: %v", len(p), p)
	}
	if !strings.Contains(p[0], "unit set changed") || !strings.Contains(p[0], "-write") {
		t.Fatalf("unit-set failure lacks a clear message: %q", p[0])
	}
}

func TestCheckRatio(t *testing.T) {
	got := map[string]Entry{
		"BenchmarkFast":  {NsPerOp: 400},
		"BenchmarkDense": {NsPerOp: 1000},
	}
	if p, err := checkRatio("BenchmarkFast:BenchmarkDense:0.5", got); err != nil || p != "" {
		t.Fatalf("2.5x speedup failed a 2x gate: p=%q err=%v", p, err)
	}
	if p, err := checkRatio("BenchmarkFast:BenchmarkDense:0.25", got); err != nil || p == "" {
		t.Fatalf("2.5x speedup passed a 4x gate: err=%v", err)
	}
	if p, err := checkRatio("BenchmarkMissing:BenchmarkDense:0.5", got); err != nil || !strings.Contains(p, "missing") {
		t.Fatalf("missing numerator not flagged: p=%q err=%v", p, err)
	}
	if _, err := checkRatio("malformed", got); err == nil {
		t.Fatal("malformed spec accepted")
	}
	if _, err := checkRatio("a:b:zero", got); err == nil {
		t.Fatal("non-numeric limit accepted")
	}
}

func TestPrintTrend(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Entry{
		"BenchmarkOld":    {NsPerOp: 1000},
		"BenchmarkShared": {NsPerOp: 1000},
	}}
	got := map[string]Entry{
		"BenchmarkShared": {NsPerOp: 1200},
		"BenchmarkNew":    {NsPerOp: 500},
	}
	var sb strings.Builder
	printTrend(&sb, base, got)
	out := sb.String()
	for _, want := range []string{"BenchmarkOld", "gone", "BenchmarkNew", "new", "BenchmarkShared", "+20.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("trend table missing %q:\n%s", want, out)
		}
	}
}

func TestScanBenchmarksFindsTreeDeclarations(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("bench_test.go", "package x\n\nfunc BenchmarkRoot(b *testing.B) {}\n")
	write("internal/ring/ring_test.go", "package ring\n\nfunc BenchmarkRouting(b *testing.B) {}\nfunc TestNotABench(t *testing.T) {}\n")
	write("internal/ring/ring.go", "package ring\n\nfunc BenchmarkImpostor() {}\n") // not a _test.go file
	write("vendor/dep_test.go", "package dep\n\nfunc BenchmarkVendored(b *testing.B) {}\n")

	got, err := scanBenchmarks(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"BenchmarkRoot", "BenchmarkRouting"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("scanBenchmarks = %v, want %v", got, want)
	}
}

func TestUngatedFailsTreeBenchmarksMissingFromBaseline(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Entry{
		"BenchmarkGated":       {NsPerOp: 1},
		"BenchmarkParent/slow": {NsPerOp: 1}, // sub-benchmark key gates its parent
	}}
	tree := []string{"BenchmarkGated", "BenchmarkParent", "BenchmarkUngated"}
	got := ungated(tree, base)
	if len(got) != 1 || got[0] != "BenchmarkUngated" {
		t.Fatalf("ungated = %v, want [BenchmarkUngated]", got)
	}
}

// TestRepoBaselineCoversTree pins the repo's own invariant: every
// benchmark declared anywhere in this module has a baseline entry, so
// the CI gate can never silently skip one.
func TestRepoBaselineCoversTree(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	tree, err := scanBenchmarks("../..")
	if err != nil {
		t.Fatal(err)
	}
	if missing := ungated(tree, base); len(missing) != 0 {
		t.Fatalf("benchmarks without a baseline entry: %v (regenerate BENCH_baseline.json with -write)", missing)
	}
}

func TestRelDiff(t *testing.T) {
	if d := relDiff(0, 0); d != 0 {
		t.Errorf("relDiff(0,0) = %v", d)
	}
	if d := relDiff(0, 1); d != 1 {
		t.Errorf("relDiff(0,1) = %v", d)
	}
	if d := relDiff(100, 101); d > 0.011 || d < 0.009 {
		t.Errorf("relDiff(100,101) = %v", d)
	}
}
